// Offline causal-chain diagnosis over a cross-tier event trace.
//
// Input: the JSONL trace written by `ntier_run --trace FILE` (or any bench
// run with a trace path). Output: the reconstructed chain per OS episode —
// pdflush -> iowait spike -> frozen lb_value -> committed-queue spike ->
// retransmission cluster — plus a per-VLRT attribution table (which episode
// explains each very-long-response-time request and which hop dominated it).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "millib/causal_chain.h"
#include "millib/online_detector.h"
#include "obs/trace_io.h"
#include "probe/freshness.h"

namespace {

void usage(std::ostream& os) {
  os << R"(ntier_trace — causal-chain diagnosis of a cross-tier event trace

usage: ntier_trace TRACE.jsonl [flags]

  --window-ms X   committed-queue reconstruction window   (default 50)
  --slack-ms X    episode-join temporal slack             (default 150)
  --vlrt-ms X     VLRT response-time threshold            (default 1000)
  --freeze-ms X   frozen-lb_value minimum gap             (default 100)
  --kv-slow-ms X  slow-KV-quorum wait threshold           (default 50)
  --probe-staleness-ms X  probe-result lifetime used for the freshness
                  stats; match the run's --probe-staleness (default 400)
  --compare-online  replay the trace through the streaming OnlineDetector
                  and score it against this offline analysis: matched
                  episodes, spurious detections, per-episode and median
                  detection latency
  --json FILE     also write the report as JSON ("-" = stdout)
  --quiet         suppress the human-readable report
  --help          this text

The trace is produced with:  ntier_run --trace run.jsonl
)";
}

bool parse_ms(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end && *end == '\0' && out > 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string json_path;
  bool quiet = false;
  bool compare_online = false;
  ntier::millib::CausalChainConfig cfg;
  double probe_staleness_ms = 400;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    double x = 0;
    if (a == "--help" || a == "-h") {
      usage(std::cout);
      return 0;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--compare-online") {
      compare_online = true;
    } else if (a == "--json") {
      if (++i >= argc) { std::cerr << "missing --json value\n"; return 2; }
      json_path = argv[i];
    } else if (a == "--window-ms") {
      if (++i >= argc || !parse_ms(argv[i], x)) { std::cerr << "bad --window-ms\n"; return 2; }
      cfg.window = ntier::sim::SimTime::from_millis(x);
    } else if (a == "--slack-ms") {
      if (++i >= argc || !parse_ms(argv[i], x)) { std::cerr << "bad --slack-ms\n"; return 2; }
      cfg.slack = ntier::sim::SimTime::from_millis(x);
    } else if (a == "--vlrt-ms") {
      if (++i >= argc || !parse_ms(argv[i], x)) { std::cerr << "bad --vlrt-ms\n"; return 2; }
      cfg.vlrt_threshold_ms = x;
    } else if (a == "--freeze-ms") {
      if (++i >= argc || !parse_ms(argv[i], x)) { std::cerr << "bad --freeze-ms\n"; return 2; }
      cfg.lb_freeze_min = ntier::sim::SimTime::from_millis(x);
    } else if (a == "--kv-slow-ms") {
      if (++i >= argc || !parse_ms(argv[i], x)) { std::cerr << "bad --kv-slow-ms\n"; return 2; }
      cfg.kv_slow_quorum_ms = x;
    } else if (a == "--probe-staleness-ms") {
      if (++i >= argc || !parse_ms(argv[i], x)) { std::cerr << "bad --probe-staleness-ms\n"; return 2; }
      probe_staleness_ms = x;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown flag: " << a << "\n";
      usage(std::cerr);
      return 2;
    } else if (trace_path.empty()) {
      trace_path = a;
    } else {
      std::cerr << "unexpected argument: " << a << "\n";
      return 2;
    }
  }
  if (trace_path.empty()) {
    usage(std::cerr);
    return 2;
  }

  std::vector<ntier::obs::TraceEvent> events;
  try {
    events = ntier::obs::read_jsonl_file(trace_path);
  } catch (const std::exception& err) {
    std::cerr << "cannot read trace " << trace_path << ": " << err.what()
              << "\n";
    return 1;
  }

  const auto report = ntier::millib::CausalChainAnalyzer(cfg).analyze(events);
  if (!quiet) report.print(std::cout);

  if (compare_online) {
    // Same signature thresholds as the offline join, fed one event at a time
    // the way a live run would stream them.
    ntier::millib::OnlineDetectorConfig dc;
    dc.window = cfg.window;
    dc.iowait_threshold = cfg.iowait_threshold;
    dc.lb_freeze_min = cfg.lb_freeze_min;
    dc.vlrt_threshold_ms = cfg.vlrt_threshold_ms;
    ntier::millib::OnlineDetector det(dc);
    ntier::sim::SimTime last;
    for (const auto& e : events) {
      det.observe(e);
      if (e.at > last) last = e.at;
    }
    det.finish(last + dc.window);

    std::vector<std::vector<std::pair<ntier::sim::SimTime, ntier::sim::SimTime>>>
        truth;
    for (const auto& c : report.chains) {
      if (c.tier != ntier::obs::Tier::kTomcat || c.node < 0) continue;
      if (truth.size() <= static_cast<std::size_t>(c.node))
        truth.resize(static_cast<std::size_t>(c.node) + 1);
      truth[static_cast<std::size_t>(c.node)].emplace_back(c.start, c.end);
    }
    const auto score = ntier::millib::OnlineDetector::score(det.episodes(), truth);
    std::cout << "\nonline vs offline detection\n"
              << "  offline episodes (tomcat tier): " << score.truth << "\n"
              << "  matched online: " << score.matched << " ("
              << 100.0 * score.match_fraction() << "%), missed "
              << score.missed << ", spurious " << score.false_positives
              << "\n"
              << "  median detection latency: " << score.median_latency_ms()
              << " ms\n";
    for (const auto& ep : det.episodes()) {
      std::cout << "  tomcat" << ep.node << " onset "
                << ep.onset.to_seconds() << " s, detected +"
                << ep.detection_latency_ms() << " ms, queue peak "
                << ep.queue_peak << ", iowait peak " << ep.iowait_peak
                << ", vlrts " << ep.vlrts << "\n";
    }
  }

  // Probe-freshness block, only for traces from probe-enabled runs.
  const auto freshness = ntier::probe::probe_freshness(
      events, ntier::sim::SimTime::from_millis(probe_staleness_ms));
  if (!quiet && freshness.any_probe_events()) {
    std::cout << "\nprobe freshness (staleness bound " << probe_staleness_ms
              << " ms)\n"
              << "  probes: " << freshness.probes_sent << " sent ("
              << freshness.probes_per_sec << "/s), " << freshness.probe_replies
              << " replies, " << freshness.probe_timeouts << " timeouts\n"
              << "  pool expiry: " << freshness.expired_stale << " stale, "
              << freshness.expired_budget << " reuse-budget\n"
              << "  decisions: " << freshness.fresh_decisions
              << " probe-fresh (median staleness "
              << freshness.median_staleness_ms << " ms), "
              << freshness.fallback_decisions << " fallbacks\n";
  }
  if (!json_path.empty()) {
    if (json_path == "-") {
      report.to_json(std::cout);
    } else {
      std::ofstream f(json_path);
      if (!f) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
      }
      report.to_json(f);
    }
  }
  return 0;
}
