// Command-line front-end of the simulator: configure a run with flags,
// get a human-readable report plus optional JSON/CSV artefacts.
#include <iostream>

#include "cli/cli.h"

int main(int argc, char** argv) {
  const auto parsed = ntier::cli::parse_cli(argc, argv);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.error << "\n\n" << ntier::cli::usage_text();
    return 2;
  }
  return ntier::cli::run_cli(*parsed.options);
}
