#include "workload/client.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace ntier::workload {
namespace {

using sim::SimTime;
using sim::Simulation;

/// Front-end test double: scripted accept/deny with instant responses.
class FakeFrontEnd : public proto::FrontEnd {
 public:
  explicit FakeFrontEnd(Simulation& s) : sim_(s) {}

  bool try_submit(const proto::RequestPtr& req, RespondFn respond) override {
    ++attempts_;
    if (deny_remaining_ > 0) {
      --deny_remaining_;
      return false;
    }
    ++accepted_;
    sim_.after(service_time_, [req, respond = std::move(respond)] {
      respond(req, true);
    });
    return true;
  }

  Simulation& sim_;
  SimTime service_time_ = SimTime::millis(2);
  int deny_remaining_ = 0;
  int attempts_ = 0;
  int accepted_ = 0;
};

ClientParams quick_params(int n) {
  ClientParams p;
  p.num_clients = n;
  p.think_mean = SimTime::millis(100);
  p.ramp = SimTime::millis(100);
  return p;
}

TEST(ClientPopulation, ClosedLoopIssuesAndRecords) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  FakeFrontEnd fe(s);
  ClientPopulation clients(s, quick_params(10), w, {&fe}, log);
  clients.start();
  s.run_until(SimTime::seconds(2));
  EXPECT_GT(clients.issued(), 100u);
  EXPECT_EQ(clients.completed_ok() + clients.in_flight(), clients.issued());
  EXPECT_EQ(log.completed(), static_cast<std::int64_t>(clients.completed_ok()));
  EXPECT_EQ(log.dropped(), 0);
  // RT = 2 links + 2ms service.
  EXPECT_NEAR(log.mean_response_ms(), 2.2, 0.05);
}

TEST(ClientPopulation, ThroughputMatchesLittlesLaw) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  FakeFrontEnd fe(s);
  fe.service_time_ = SimTime::millis(1);
  ClientPopulation clients(s, quick_params(100), w, {&fe}, log);
  clients.start();
  s.run_until(SimTime::seconds(10));
  // 100 clients / (100ms think + ~1.2ms rt) ≈ 988 req/s.
  const double rate = static_cast<double>(clients.completed_ok()) / 10.0;
  EXPECT_NEAR(rate, 988.0, 60.0);
}

TEST(ClientPopulation, RetransmitsAfterDrop) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  FakeFrontEnd fe(s);
  fe.deny_remaining_ = 1;  // first SYN dropped
  ClientParams p = quick_params(1);
  p.ramp = SimTime::zero();
  ClientPopulation clients(s, p, w, {&fe}, log);
  clients.start();
  s.run_until(SimTime::seconds(5));
  EXPECT_EQ(clients.connection_drops(), 1u);
  ASSERT_GE(log.completed(), 1);
  // First completion: dropped SYN + 1s RTO + accepted attempt ≈ 1s + 2.2ms.
  EXPECT_GT(log.vlrt_count(), 0);
  EXPECT_NEAR(log.histogram().max_recorded(), 1002.2, 5.0);
  EXPECT_EQ(log.total_retransmissions(),
            static_cast<std::int64_t>(log.completed() > 1 ? 1 : 1));
}

TEST(ClientPopulation, GivesUpAfterScheduleExhausted) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  FakeFrontEnd fe(s);
  fe.deny_remaining_ = 1'000'000;  // never accepts
  ClientParams p = quick_params(1);
  p.ramp = SimTime::zero();
  p.retransmit = net::RetransmitSchedule::constant(SimTime::seconds(1), 3);
  ClientPopulation clients(s, p, w, {&fe}, log);
  clients.start();
  s.run_until(SimTime::from_seconds(3.5));
  EXPECT_EQ(clients.dropped(), 1u);
  EXPECT_EQ(log.dropped(), 1);
  // Initial attempt + 3 retries; the closed loop may already have issued the
  // *next* interaction by now, so allow additional attempts beyond 4.
  EXPECT_GE(fe.attempts_, 4);
  // The client continues its session after the failure (closed loop).
  s.run_until(SimTime::seconds(20));
  EXPECT_GT(clients.issued(), 1u);
}

TEST(ClientPopulation, BalancerErrorCountsAsFailure) {
  class ErrorFrontEnd : public proto::FrontEnd {
   public:
    explicit ErrorFrontEnd(Simulation& s) : sim_(s) {}
    bool try_submit(const proto::RequestPtr& req, RespondFn respond) override {
      sim_.after(SimTime::millis(1),
                 [req, respond = std::move(respond)] { respond(req, false); });
      return true;
    }
    Simulation& sim_;
  };
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  ErrorFrontEnd fe(s);
  ClientParams p = quick_params(1);
  p.ramp = SimTime::zero();
  ClientPopulation clients(s, p, w, {&fe}, log);
  clients.start();
  s.run_until(SimTime::millis(50));
  EXPECT_EQ(clients.failed(), 1u);
  EXPECT_EQ(log.balancer_errors(), 1);
}

TEST(ClientPopulation, SpreadsClientsAcrossFrontEnds) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  FakeFrontEnd fe1(s), fe2(s);
  ClientPopulation clients(s, quick_params(100), w, {&fe1, &fe2}, log);
  clients.start();
  s.run_until(SimTime::seconds(2));
  EXPECT_NEAR(static_cast<double>(fe1.accepted_) / fe2.accepted_, 1.0, 0.1);
}

TEST(ClientPopulation, WarmupSuppressesEarlyRecords) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  FakeFrontEnd fe(s);
  ClientParams p = quick_params(10);
  p.warmup = SimTime::seconds(1);
  ClientPopulation clients(s, p, w, {&fe}, log);
  clients.start();
  s.run_until(SimTime::seconds(2));
  EXPECT_LT(log.completed(), static_cast<std::int64_t>(clients.completed_ok()));
  // No recorded completion started before the warmup boundary.
  const auto& rt = log.response_time_series();
  for (std::size_t i = 0; i < 19; ++i) EXPECT_EQ(rt.count(i), 0) << i;
}

TEST(ClientPopulation, RejectsEmptyConfig) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  FakeFrontEnd fe(s);
  EXPECT_THROW(ClientPopulation(s, quick_params(0), w, {&fe}, log),
               std::invalid_argument);
  EXPECT_THROW(ClientPopulation(s, quick_params(1), w, {}, log),
               std::invalid_argument);
}

}  // namespace
}  // namespace ntier::workload
