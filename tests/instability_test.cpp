// Integration tests for the paper's central claims: under millibottlenecks,
// total_request/total_traffic + the stock blocking get_endpoint funnel
// requests into the stalled Tomcat and amplify VLRT requests; either remedy
// (current_load policy, or the modified non-blocking get_endpoint) removes
// the amplification.
#include <gtest/gtest.h>

#include <algorithm>

#include "experiment/experiment.h"
#include "experiment/report.h"
#include "millib/detector.h"
#include "test_util.h"

namespace ntier::experiment {
namespace {

using lb::MechanismKind;
using lb::PolicyKind;
using sim::SimTime;

constexpr auto kDuration = SimTime::seconds(15);

class InstabilityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    original_ = testing::run(testing::quick_config(PolicyKind::kTotalRequest,
                                                   MechanismKind::kBlocking,
                                                   true, kDuration))
                    .release();
    traffic_ = testing::run(testing::quick_config(PolicyKind::kTotalTraffic,
                                                  MechanismKind::kBlocking,
                                                  true, kDuration))
                   .release();
    remedy_policy_ = testing::run(testing::quick_config(
                                      PolicyKind::kCurrentLoad,
                                      MechanismKind::kBlocking, true, kDuration))
                         .release();
    remedy_mech_ = testing::run(testing::quick_config(
                                    PolicyKind::kTotalRequest,
                                    MechanismKind::kNonBlocking, true, kDuration))
                       .release();
  }
  static void TearDownTestSuite() {
    for (Experiment** e : {&original_, &traffic_, &remedy_policy_, &remedy_mech_}) {
      delete *e;
      *e = nullptr;
    }
  }

  /// Fraction of one Apache's assignments landing on `tomcat` during
  /// [t0, t1).
  static double assignment_share(Experiment& e, int apache, int tomcat,
                                 SimTime t0, SimTime t1) {
    const auto& bal = e.apache(apache).balancer();
    double target = 0, total = 0;
    for (int t = 0; t < e.num_tomcats(); ++t) {
      const auto counts = series_count(bal.assignment_trace(t),
                                       e.num_metric_windows());
      const double s =
          sum_of(slice(counts, e.config().metric_window, t0, t1));
      total += s;
      if (t == tomcat) target += s;
    }
    return total > 0 ? target / total : 0.0;
  }

  /// First pdflush episode after warmup, with the Tomcat that owns it.
  static bool first_flush(Experiment& e, int& tomcat, SimTime& start,
                          SimTime& end) {
    for (int t = 0; t < e.num_tomcats(); ++t) {
      for (const auto& [s, f] : e.flush_intervals(t)) {
        if (s > e.config().warmup && f < e.config().duration) {
          tomcat = t;
          start = s;
          end = f;
          return true;
        }
      }
    }
    return false;
  }

  static Experiment* original_;
  static Experiment* traffic_;
  static Experiment* remedy_policy_;
  static Experiment* remedy_mech_;
};

Experiment* InstabilityTest::original_ = nullptr;
Experiment* InstabilityTest::traffic_ = nullptr;
Experiment* InstabilityTest::remedy_policy_ = nullptr;
Experiment* InstabilityTest::remedy_mech_ = nullptr;

TEST_F(InstabilityTest, MillibottlenecksCreateVlrtUnderStockPolicies) {
  // Paper Table I: 5.33 % (total_request) and 6.89 % (total_traffic).
  EXPECT_GT(original_->log().vlrt_fraction(), 0.005);
  EXPECT_GT(traffic_->log().vlrt_fraction(), 0.005);
}

TEST_F(InstabilityTest, RemediesSlashVlrtFraction) {
  // Paper: 0.21 % / 0.55 % — at least an order of magnitude below stock.
  EXPECT_LT(remedy_policy_->log().vlrt_fraction(),
            original_->log().vlrt_fraction() / 4.0);
  EXPECT_LT(remedy_mech_->log().vlrt_fraction(),
            original_->log().vlrt_fraction() / 4.0);
}

TEST_F(InstabilityTest, RemediesImproveMeanResponseTime) {
  // Paper: 41 ms -> 3.6 ms (12×) and 4.9 ms (8×). Require ≥3× here to stay
  // robust to the scaled run.
  EXPECT_GT(original_->log().mean_response_ms(),
            3.0 * remedy_policy_->log().mean_response_ms());
  EXPECT_GT(original_->log().mean_response_ms(),
            3.0 * remedy_mech_->log().mean_response_ms());
}

TEST_F(InstabilityTest, StockPolicyFunnelsRequestsIntoStalledTomcat) {
  // Paper Fig. 6(c) phase 2: with Tomcat1 stalled, *all* requests are routed
  // to it even though the other three are idle. During the funnel the
  // assignment counters freeze (every worker is parked in get_endpoint), so
  // the observable signature is the committed queue: the stalled Tomcat's
  // committed requests dwarf every healthy Tomcat's.
  int tomcat;
  SimTime start, end;
  ASSERT_TRUE(first_flush(*original_, tomcat, start, end));
  const auto& cfg = original_->config();
  double stalled_peak = 0, healthy_peak = 0;
  for (int t = 0; t < original_->num_tomcats(); ++t) {
    const double peak = max_of(slice(original_->tomcat_committed_series(t),
                                     cfg.metric_window, start, end));
    if (t == tomcat)
      stalled_peak = peak;
    else
      healthy_peak = std::max(healthy_peak, peak);
  }
  EXPECT_GT(stalled_peak, 4.0 * healthy_peak)
      << "stalled tomcat " << tomcat << " during " << start.to_string()
      << ".." << end.to_string();

  // Phase 3 (recovery): once the millibottleneck resolves, the stalled
  // Tomcat's lb_value has jumped to the maximum, so *new* picks go to the
  // other three.
  const double late_share = assignment_share(
      *original_, 0, tomcat, end + SimTime::millis(200), end + SimTime::millis(400));
  EXPECT_LT(late_share, 0.5);
}

TEST_F(InstabilityTest, CurrentLoadAvoidsStalledTomcat) {
  // Paper Fig. 13(b): all requests go to the healthy Tomcats.
  int tomcat;
  SimTime start, end;
  ASSERT_TRUE(first_flush(*remedy_policy_, tomcat, start, end));
  const SimTime mid = start + (end - start) / 2;
  const double share = assignment_share(*remedy_policy_, 0, tomcat, mid, end);
  EXPECT_LT(share, 0.15);
}

TEST_F(InstabilityTest, ModifiedMechanismAvoidsStalledTomcat) {
  // Paper Fig. 9(b).
  int tomcat;
  SimTime start, end;
  ASSERT_TRUE(first_flush(*remedy_mech_, tomcat, start, end));
  const SimTime mid = start + (end - start) / 2;
  const double share = assignment_share(*remedy_mech_, 0, tomcat, mid, end);
  EXPECT_LT(share, 0.15);
}

TEST_F(InstabilityTest, CommittedQueuePeaksShrinkUnderRemedies) {
  // Paper: Tomcat queue peak ≈800 (stock) vs ≈200 (modified get_endpoint,
  // Fig. 9(a)) vs <40 (current_load, Fig. 13(a)).
  const double stock = max_of(original_->tomcat_tier_queue());
  const double mech = max_of(remedy_mech_->tomcat_tier_queue());
  const double policy = max_of(remedy_policy_->tomcat_tier_queue());
  EXPECT_GT(stock, 2.0 * mech);
  EXPECT_GT(mech, policy);
}

TEST_F(InstabilityTest, ApacheTierQueueShrinksUnderModifiedMechanism) {
  // Paper Fig. 8: "Our remedy at mechanism [level] reduced the queued
  // requests by 75 %".
  const double stock = max_of(original_->apache_tier_queue());
  const double mech = max_of(remedy_mech_->apache_tier_queue());
  EXPECT_GT(stock, 2.0 * mech);
}

TEST_F(InstabilityTest, StalledTomcatHoldsMinimumLbValue) {
  // Paper Fig. 10(b): during the millibottleneck the stalled candidate's
  // lb_value is the lowest; in the recovery phase it becomes the highest.
  int tomcat;
  SimTime start, end;
  ASSERT_TRUE(first_flush(*original_, tomcat, start, end));
  const auto& bal = original_->apache(0).balancer();
  const auto w = static_cast<std::size_t>(
      ((start + end) / 2).ns() / original_->config().metric_window.ns());
  // Compare via the per-window lb_value traces (values are cumulative
  // counters under total_request, so compare levels, not maxima).
  const double stalled_value = bal.lb_value_trace(tomcat).max(w);
  int others_higher = 0;
  for (int t = 0; t < original_->num_tomcats(); ++t) {
    if (t == tomcat) continue;
    if (bal.lb_value_trace(t).max(w) >= stalled_value) ++others_higher;
  }
  EXPECT_EQ(others_higher, original_->num_tomcats() - 1);
}

TEST_F(InstabilityTest, VlrtClustersAtRetransmissionOffsets) {
  // Paper Fig. 4: VLRT response times cluster at ≈1 s / 2 s / 3 s.
  const auto& h = original_->log().histogram();
  std::int64_t near_clusters = 0, vlrt_total = 0;
  for (std::size_t b = 0; b < h.num_buckets(); ++b) {
    const double lo = h.bucket_lower(b);
    if (lo < 900.0) continue;
    vlrt_total += h.bucket_count(b);
    for (double c : {1000.0, 2000.0, 3000.0}) {
      if (lo >= c * 0.85 && lo <= c * 1.35) {
        near_clusters += h.bucket_count(b);
        break;
      }
    }
  }
  ASSERT_GT(vlrt_total, 0);
  EXPECT_GT(static_cast<double>(near_clusters) /
                static_cast<double>(vlrt_total),
            0.7);
}

TEST_F(InstabilityTest, DetectorFindsInjectedMillibottlenecks) {
  // The queue-spike methodology of §III-B applied to our own traces: every
  // detected Tomcat-tier spike overlaps a real pdflush episode.
  int tomcat;
  SimTime start, end;
  ASSERT_TRUE(first_flush(*original_, tomcat, start, end));
  metrics::GaugeSeries probe(original_->config().metric_window);
  const auto series = original_->tomcat_committed_series(tomcat);
  for (std::size_t i = 0; i < series.size(); ++i)
    probe.set(original_->config().metric_window * static_cast<std::int64_t>(i),
              series[i]);
  probe.finish(original_->config().duration);

  millib::MillibottleneckDetector detector;
  const auto spikes = detector.detect(probe);
  ASSERT_FALSE(spikes.empty());
  // Any spike — including the recovery-compensation surges that spill onto
  // healthy Tomcats — must sit near *some* real pdflush episode.
  std::vector<std::pair<SimTime, SimTime>> truth;
  for (int t = 0; t < original_->num_tomcats(); ++t)
    for (const auto& iv : original_->flush_intervals(t)) truth.push_back(iv);
  for (const auto& spike : spikes)
    EXPECT_TRUE(millib::overlaps_any(spike, truth, SimTime::millis(1100)))
        << spike.start.to_string();
}

TEST_F(InstabilityTest, MySqlTierStaysQuiet) {
  // Paper Fig. 2(b): no queue peak in the MySQL tier — its transient
  // concurrency during recovery surges stays an order of magnitude below
  // the Tomcat-tier funnel.
  EXPECT_LT(max_of(original_->mysql_tier_queue()),
            0.15 * max_of(original_->tomcat_tier_queue()));
}

}  // namespace
}  // namespace ntier::experiment
