#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace ntier::sim {
namespace {

TEST(Simulation, ClockAdvancesWithEvents) {
  Simulation s;
  std::vector<std::int64_t> seen;
  s.after(SimTime::millis(5), [&] { seen.push_back(s.now().ms()); });
  s.after(SimTime::millis(2), [&] { seen.push_back(s.now().ms()); });
  s.run();
  EXPECT_EQ(seen, (std::vector<std::int64_t>{2, 5}));
  EXPECT_EQ(s.now().ms(), 5);
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation s;
  int fired = 0;
  s.after(SimTime::seconds(1), [&] { ++fired; });
  s.after(SimTime::seconds(3), [&] { ++fired; });
  s.run_until(SimTime::seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), SimTime::seconds(2));  // clock lands on the horizon
  s.run_until(SimTime::seconds(4));
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsAtHorizonStillFire) {
  Simulation s;
  int fired = 0;
  s.after(SimTime::seconds(2), [&] { ++fired; });
  s.run_until(SimTime::seconds(2));
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, NestedScheduling) {
  Simulation s;
  std::vector<std::int64_t> seen;
  s.after(SimTime::millis(1), [&] {
    seen.push_back(s.now().ms());
    s.after(SimTime::millis(1), [&] { seen.push_back(s.now().ms()); });
  });
  s.run();
  EXPECT_EQ(seen, (std::vector<std::int64_t>{1, 2}));
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation s;
  s.after(SimTime::millis(10), [&] {
    EXPECT_THROW(s.at(SimTime::millis(5), [] {}), std::logic_error);
  });
  s.run();
}

TEST(Simulation, StopHaltsTheLoop) {
  Simulation s;
  int fired = 0;
  s.after(SimTime::millis(1), [&] {
    ++fired;
    s.stop();
  });
  s.after(SimTime::millis(2), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.pending());
}

TEST(Simulation, CancelledEventDoesNotFire) {
  Simulation s;
  int fired = 0;
  const EventId id = s.after(SimTime::millis(1), [&] { ++fired; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulation, DeterministicAcrossRunsWithSameSeed) {
  auto trace = [](std::uint64_t seed) {
    Simulation s(seed);
    std::vector<double> draws;
    for (int i = 0; i < 100; ++i)
      s.after(SimTime::millis(i), [&] { draws.push_back(s.rng().uniform01()); });
    s.run();
    return draws;
  };
  EXPECT_EQ(trace(7), trace(7));
  EXPECT_NE(trace(7), trace(8));
}

TEST(Simulation, CountsExecutedEvents) {
  Simulation s;
  for (int i = 0; i < 5; ++i) s.after(SimTime::millis(i), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 5u);
  EXPECT_EQ(s.events_scheduled(), 5u);
}

}  // namespace
}  // namespace ntier::sim
