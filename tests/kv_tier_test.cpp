#include "kv/tier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "kv/config.h"
#include "proto/request.h"
#include "sim/simulation.h"

namespace ntier::kv {
namespace {

using sim::SimTime;
using sim::Simulation;

// -- KvConfig parsing ---------------------------------------------------------

TEST(KvConfig, RoundTripsThroughString) {
  KvConfig c;
  c.replicas = 5;
  c.shards = 32;
  c.vnodes = 4;
  c.n = 3;
  c.r = 2;
  c.w = 2;
  std::string err;
  const auto parsed = kv_config_from_string(c.to_string(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->to_string(), c.to_string());
}

TEST(KvConfig, ParseAppliesPartialOverridesOverDefaults) {
  std::string err;
  const auto parsed = kv_config_from_string("replicas=6,hints=128", &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->replicas, 6);
  EXPECT_EQ(parsed->hint_capacity, 128u);
  EXPECT_EQ(parsed->n, 3);  // untouched default
}

TEST(KvConfig, RejectsNonIntersectingQuorum) {
  std::string err;
  EXPECT_FALSE(kv_config_from_string("n=3,r=1,w=1", &err).has_value());
  EXPECT_NE(err.find("r+w must exceed n"), std::string::npos) << err;
}

TEST(KvConfig, RejectsNExceedingReplicas) {
  std::string err;
  EXPECT_FALSE(kv_config_from_string("replicas=2,n=3,r=2,w=2", &err));
  EXPECT_NE(err.find("exceeds replicas"), std::string::npos) << err;
}

TEST(KvConfig, RejectsUnknownKeysAndMalformedItems) {
  std::string err;
  EXPECT_FALSE(kv_config_from_string("bogus=1", &err));
  EXPECT_NE(err.find("unknown key 'bogus'"), std::string::npos) << err;
  EXPECT_FALSE(kv_config_from_string("replicas", &err));
  EXPECT_NE(err.find("expected key=value"), std::string::npos) << err;
  EXPECT_FALSE(kv_config_from_string("r=two", &err));
  EXPECT_NE(err.find("bad integer"), std::string::npos) << err;
}

// -- KvTier quorum behaviour --------------------------------------------------

os::NodeConfig plain_node() {
  os::NodeConfig nc;
  nc.cores = 2;
  nc.pdflush.enabled = false;
  return nc;
}

/// A bare KV tier on plain nodes — the unit under test without the n-tier
/// stack above it.
struct Harness {
  Simulation s;
  std::vector<std::unique_ptr<os::Node>> nodes;
  std::vector<std::unique_ptr<KvReplica>> reps;
  std::unique_ptr<KvTier> tier;

  explicit Harness(KvConfig cfg = make_config()) {
    KvReplicaConfig rc;
    rc.hint_capacity = cfg.hint_capacity;
    for (int i = 0; i < cfg.replicas; ++i) {
      nodes.push_back(std::make_unique<os::Node>(s, plain_node()));
      reps.push_back(std::make_unique<KvReplica>(s, *nodes.back(), i, rc));
    }
    std::vector<KvReplica*> ptrs;
    for (auto& r : reps) ptrs.push_back(r.get());
    tier = std::make_unique<KvTier>(s, std::move(ptrs), cfg,
                                    SimTime::micros(100));
  }

  static KvConfig make_config() {
    KvConfig cfg;
    cfg.replicas = 5;
    cfg.n = 3;
    cfg.r = 2;
    cfg.w = 2;
    return cfg;
  }

  proto::RequestPtr request(std::uint64_t key) {
    auto req = std::make_shared<proto::Request>();
    req->key = key;
    return req;
  }
};

TEST(KvTier, QuorumWriteReachesEveryPreferenceMember) {
  Harness h;
  const std::uint64_t key = 42;
  const int shard = h.tier->shard_of(key);
  bool ok = false;
  h.tier->write(h.request(key), SimTime::micros(500), [&](bool v) { ok = v; });
  h.s.run();
  EXPECT_TRUE(ok);
  const auto& ks = h.tier->stats();
  EXPECT_EQ(ks.writes_issued, 1u);
  EXPECT_EQ(ks.quorum_writes, 1u);
  EXPECT_EQ(h.tier->ops_in_flight(), 0u);
  // The quorum completes at W=2, but all N=3 members eventually apply.
  for (int m : h.tier->shard_members(shard))
    EXPECT_GT(h.tier->replica(m).version_of(key), 0u) << "replica " << m;
}

TEST(KvTier, QuorumReadSeesTheCompletedWrite) {
  Harness h;
  bool write_ok = false, read_ok = false;
  h.tier->write(h.request(7), SimTime::micros(500),
                [&](bool v) { write_ok = v; });
  h.s.after(SimTime::millis(10), [&] {
    h.tier->read(h.request(7), SimTime::micros(300),
                 [&](bool v) { read_ok = v; });
  });
  h.s.run();
  EXPECT_TRUE(write_ok);
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(h.tier->stats().quorum_reads, 1u);
  EXPECT_EQ(h.tier->stats().quorum_failed_reads, 0u);
}

TEST(KvTier, CrashedMemberGetsAHintAndReplayOnRecovery) {
  Harness h;
  const std::uint64_t key = 42;
  const int shard = h.tier->shard_of(key);
  const int victim = h.tier->shard_members(shard)[0];

  h.tier->on_replica_crashed(victim);
  bool ok = false;
  h.tier->write(h.request(key), SimTime::micros(500), [&](bool v) { ok = v; });
  h.s.after(SimTime::millis(50),
            [&] { h.tier->on_replica_recovered(victim); });
  h.s.run();

  EXPECT_TRUE(ok);  // W=2 of the two live members still met
  const auto& ks = h.tier->stats();
  EXPECT_EQ(ks.quorum_failed_writes, 0u);
  EXPECT_EQ(ks.write_replicas_missed, 1u);
  EXPECT_EQ(ks.hints_created, 1u);
  EXPECT_EQ(ks.hints_replayed, 1u);
  EXPECT_EQ(ks.hints_pending(), 0u);
  EXPECT_EQ(ks.handoff_dropped, 0u);
  EXPECT_EQ(ks.crashed_dispatches, 0u);
  // The replayed hint brought the recovered replica up to date.
  EXPECT_GT(h.tier->replica(victim).version_of(key), 0u);
  EXPECT_EQ(h.tier->hints_held(), 0u);
  // Degraded time was accounted for the crash window.
  EXPECT_GT(h.tier->shard_degraded_ms(shard), 0.0);
}

TEST(KvTier, QuorumFailsWhenTooFewMembersAlive) {
  Harness h;
  const std::uint64_t key = 42;
  const auto members = h.tier->shard_members(h.tier->shard_of(key));
  h.tier->on_replica_crashed(members[0]);
  h.tier->on_replica_crashed(members[1]);

  bool read_ok = true, write_ok = true;
  h.tier->read(h.request(key), SimTime::micros(300),
               [&](bool v) { read_ok = v; });
  h.tier->write(h.request(key), SimTime::micros(500),
                [&](bool v) { write_ok = v; });
  h.s.run();

  EXPECT_FALSE(read_ok);
  EXPECT_FALSE(write_ok);
  EXPECT_EQ(h.tier->stats().quorum_failed_reads, 1u);
  EXPECT_EQ(h.tier->stats().quorum_failed_writes, 1u);
  EXPECT_EQ(h.tier->ops_in_flight(), 0u);
}

TEST(KvTier, HandoffDropsAreCountedWhenHoldersAreFull) {
  KvConfig cfg = Harness::make_config();
  cfg.hint_capacity = 0;  // every stash attempt overflows
  Harness h(cfg);
  const std::uint64_t key = 42;
  const int victim = h.tier->shard_members(h.tier->shard_of(key))[0];
  h.tier->on_replica_crashed(victim);
  h.tier->write(h.request(key), SimTime::micros(500), nullptr);
  h.s.run();
  const auto& ks = h.tier->stats();
  EXPECT_EQ(ks.write_replicas_missed, 1u);
  EXPECT_EQ(ks.hints_created, 0u);
  EXPECT_EQ(ks.handoff_dropped, 1u);
  EXPECT_EQ(ks.hints_pending(), 0u);  // the drop resolved the missed write
}

TEST(KvTier, ReadRepairConvergesAStaleReplica) {
  KvConfig cfg = Harness::make_config();
  cfg.hint_capacity = 0;  // lose the hint so the stale replica stays stale
  Harness h(cfg);
  const std::uint64_t key = 42;
  const int shard = h.tier->shard_of(key);
  const int stale = h.tier->shard_members(shard)[0];

  h.tier->write(h.request(key), SimTime::micros(500), nullptr);
  h.s.after(SimTime::millis(10), [&] { h.tier->on_replica_crashed(stale); });
  h.s.after(SimTime::millis(20),
            [&] { h.tier->write(h.request(key), SimTime::micros(500), nullptr); });
  h.s.after(SimTime::millis(30), [&] { h.tier->on_replica_recovered(stale); });
  // Read until the stale member lands in the first R repliers; one read is
  // enough here because dispatch order follows the preference list.
  h.s.after(SimTime::millis(40),
            [&] { h.tier->read(h.request(key), SimTime::micros(300), nullptr); });
  h.s.run();

  EXPECT_GE(h.tier->stats().read_repairs, 1u);
  std::uint64_t newest = 0;
  for (int m : h.tier->shard_members(shard))
    newest = std::max(newest, h.tier->replica(m).version_of(key));
  EXPECT_EQ(h.tier->replica(stale).version_of(key), newest);
}

TEST(KvTier, MigrationShedsHandoverWritesAndSwapsMembership) {
  Harness h;
  const std::uint64_t key = 42;
  const int shard = h.tier->shard_of(key);
  const auto before = h.tier->shard_members(shard);

  h.tier->begin_migration(shard, SimTime::millis(200), 1.0);
  // Outside the handover window: accepted.
  bool early_ok = false;
  h.s.after(SimTime::millis(20), [&] {
    h.tier->write(h.request(key), SimTime::micros(500),
                  [&](bool v) { early_ok = v; });
  });
  // Inside the final handover window (last 50 ms by default): shed.
  bool late_ok = true;
  h.s.after(SimTime::millis(180), [&] {
    h.tier->write(h.request(key), SimTime::micros(500),
                  [&](bool v) { late_ok = v; });
  });
  h.s.run();

  EXPECT_TRUE(early_ok);
  EXPECT_FALSE(late_ok);
  const auto& ks = h.tier->stats();
  EXPECT_EQ(ks.migration_shed, 1u);
  EXPECT_EQ(ks.migrations_started, 1u);
  EXPECT_EQ(ks.migrations_completed, 1u);
  EXPECT_GT(ks.migration_chunks, 0u);
  // Accounting identity: issued = met + failed + shed.
  EXPECT_EQ(ks.writes_issued,
            ks.quorum_writes + ks.quorum_failed_writes + ks.migration_shed);
  // The membership table swapped the source out for the ring successor.
  const auto after = h.tier->shard_members(shard);
  EXPECT_NE(before, after);
  EXPECT_EQ(after.size(), before.size());
}

TEST(KvTier, CompleteMigrationIsIdempotent) {
  Harness h;
  const int shard = h.tier->shard_of(42);
  h.tier->begin_migration(shard, SimTime::millis(100), 1.0);
  h.s.run();
  const auto members = h.tier->shard_members(shard);
  h.tier->complete_migration(shard);  // chaos-clear backstop: second call
  EXPECT_EQ(h.tier->shard_members(shard), members);
  EXPECT_EQ(h.tier->stats().migrations_completed, 1u);
}

}  // namespace
}  // namespace ntier::kv
