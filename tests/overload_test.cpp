// End-to-end tests of the overload-control subsystem (src/control) wired
// through every tier: deadline propagation, AIMD admission limiting with
// brownout, and CoDel sojourn shedding. These run the real 4A/4T/1M cluster
// at test scale — the unit behaviour lives in control_test.cpp.
#include <gtest/gtest.h>

#include "control/overload.h"
#include "experiment/summary.h"
#include "experiment/sweep.h"
#include "test_util.h"
#include "workload/rubbos.h"

namespace ntier::experiment {
namespace {

using control::OverloadMode;
using lb::MechanismKind;
using lb::PolicyKind;
using sim::SimTime;

ExperimentConfig overload_quick(OverloadMode mode, bool millibottlenecks,
                                SimTime budget = SimTime::seconds(1)) {
  ExperimentConfig c = testing::quick_config(
      PolicyKind::kTotalRequest, MechanismKind::kBlocking, millibottlenecks,
      SimTime::seconds(10));
  c.overload = control::make_overload(mode, budget);
  // The baseline cell still stamps deadlines so goodput is comparable.
  c.overload.stamp_deadlines = true;
  c.tracing = false;
  return c;
}

TEST(Overload, DeadlineModeShedsExpiredWorkAndConservesRequests) {
  auto e = testing::run(
      overload_quick(OverloadMode::kDeadline, true, SimTime::millis(500)));
  const auto s = summarize(*e);
  // The pdflush stall parks work past its 500 ms budget: some of it must be
  // shed as expired instead of executed, and shedding it saves CPU time.
  EXPECT_GT(s.deadline_sheds, 0u);
  EXPECT_GT(s.wasted_work_avoided_ms, 0.0);
  EXPECT_EQ(s.admission_sheds, 0u);  // only deadlines enforce in this mode
  EXPECT_EQ(s.sojourn_sheds, 0u);
  // Shed requests are answered, not lost: conservation still holds.
  const auto& cl = e->clients();
  EXPECT_EQ(cl.issued(),
            cl.completed_ok() + cl.failed() + cl.dropped() + cl.in_flight());
  // Every completion is classified against its stamped deadline.
  EXPECT_EQ(s.completed_within_deadline + s.missed_deadline, s.completed);
  EXPECT_GT(s.goodput_rps, 0.0);
}

TEST(Overload, AdmissionModeShedsAndClientsRetry) {
  auto cfg = overload_quick(OverloadMode::kAdmission, true);
  cfg.workload.priority_mix = workload::PriorityMix::kRubbos;
  auto e = testing::run(std::move(cfg));
  const auto s = summarize(*e);
  // The stall pushes queue delay past the AIMD threshold, the limit clamps,
  // and excess work is rejected with a retriable 503...
  EXPECT_GT(s.admission_sheds + s.brownout_sheds, 0u);
  EXPECT_EQ(s.deadline_sheds, 0u);
  // ...which clients re-attempt after backoff.
  EXPECT_GT(s.shed_retries, 0u);
  EXPECT_EQ(s.shed_retries, e->clients().shed_retries());
  const auto& cl = e->clients();
  EXPECT_EQ(cl.issued(),
            cl.completed_ok() + cl.failed() + cl.dropped() + cl.in_flight());
}

TEST(Overload, FullControlImprovesTailUnderMillibottleneck) {
  auto base = testing::run(overload_quick(OverloadMode::kNone, true));
  auto full = testing::run(overload_quick(OverloadMode::kFull, true));
  const auto sb = summarize(*base);
  const auto sf = summarize(*full);
  // The acceptance criterion of the bench, at test scale: shedding stale and
  // excess work during the stall beats executing it on both tail metrics.
  EXPECT_LT(sf.vlrt_fraction, sb.vlrt_fraction);
  EXPECT_LT(sf.p999_ms, sb.p999_ms);
  EXPECT_GT(sf.goodput_rps, sb.goodput_rps);
  EXPECT_GT(sf.admission_sheds + sf.brownout_sheds + sf.deadline_sheds +
                sf.sojourn_sheds,
            0u);
}

TEST(Overload, QuietRegimeCostsNothing) {
  auto base = testing::run(overload_quick(OverloadMode::kNone, false));
  auto full = testing::run(overload_quick(OverloadMode::kFull, false));
  const auto sb = summarize(*base);
  const auto sf = summarize(*full);
  // No stall, no standing queue: the limiter stays wide open and CoDel never
  // arms, so goodput must stay within 5% of the uncontrolled baseline.
  ASSERT_GT(sb.goodput_rps, 0.0);
  EXPECT_GE(sf.goodput_rps, 0.95 * sb.goodput_rps);
  EXPECT_EQ(sf.sojourn_sheds, 0u);
}

TEST(Overload, DescribeAndSummaryCarryOverloadFields) {
  auto cfg = overload_quick(OverloadMode::kFull, true, SimTime::millis(750));
  const std::string desc = describe(cfg);
  EXPECT_NE(desc.find("overload=full"), std::string::npos);
  EXPECT_NE(desc.find("750"), std::string::npos);
  auto e = testing::run(std::move(cfg));
  const std::string json = summarize(*e).to_json_string();
  for (const char* field :
       {"\"goodput_rps\"", "\"completed_within_deadline\"",
        "\"admission_sheds\"", "\"deadline_sheds\"", "\"sojourn_sheds\"",
        "\"wasted_work_avoided_ms\"", "\"shed_retries\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(Overload, SweepOutputIsJobsInvariantWithControlActive) {
  auto make_sweep = [](int jobs) {
    SweepConfig sc;
    sc.base = testing::quick_config(PolicyKind::kTotalRequest,
                                    MechanismKind::kBlocking, true,
                                    SimTime::seconds(6));
    sc.base.warmup = SimTime::seconds(1);
    sc.base.tracing = false;
    sc.base.overload = control::make_overload(OverloadMode::kFull);
    sc.num_runs = 4;
    sc.jobs = jobs;
    return SweepRunner(sc).run();
  };
  const auto seq = make_sweep(1);
  const auto par = make_sweep(3);
  // Byte-identical aggregation regardless of worker threads, sheds and all.
  EXPECT_EQ(seq.to_json_string(), par.to_json_string());
  EXPECT_GT(seq.total_sheds.mean, 0.0);
  EXPECT_GT(seq.goodput_rps.mean, 0.0);
}

}  // namespace
}  // namespace ntier::experiment
