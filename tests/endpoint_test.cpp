#include "lb/endpoint.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace ntier::lb {
namespace {

using sim::SimTime;
using sim::Simulation;

TEST(EndpointPool, AcquireRelease) {
  EndpointPool pool(2);
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_TRUE(pool.exhausted());
  EXPECT_FALSE(pool.try_acquire());
  pool.release();
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_TRUE(pool.try_acquire());
}

TEST(EndpointPool, ReleaseUnderflowThrows) {
  EndpointPool pool(1);
  EXPECT_THROW(pool.release(), std::logic_error);
}

TEST(BlockingAcquirer, SucceedsImmediatelyWhenFree) {
  Simulation s;
  EndpointPool pool(1);
  WorkerRecord rec;
  BlockingAcquirer acq;
  bool ok = false;
  acq.acquire(s, pool, rec, [&](bool r) { ok = r; });
  EXPECT_TRUE(ok);                       // no simulated time consumed
  EXPECT_EQ(s.now(), SimTime::zero());
  EXPECT_EQ(pool.in_use(), 1u);
}

TEST(BlockingAcquirer, FailsAfterExactTimeout) {
  // Algorithm 1 with defaults: polls at 0/100/200 ms, gives up at 300 ms.
  Simulation s;
  EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());  // exhaust
  WorkerRecord rec;
  BlockingAcquirer acq;
  bool done = false, ok = true;
  acq.acquire(s, pool, rec, [&](bool r) {
    done = true;
    ok = r;
  });
  EXPECT_FALSE(done);
  s.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(s.now(), SimTime::millis(300));
}

TEST(BlockingAcquirer, GrabsSlotFreedBetweenPolls) {
  Simulation s;
  EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());
  WorkerRecord rec;
  BlockingAcquirer acq;
  SimTime got;
  acq.acquire(s, pool, rec, [&](bool r) {
    ASSERT_TRUE(r);
    got = s.now();
  });
  s.after(SimTime::millis(150), [&] { pool.release(); });
  s.run();
  // Freed at 150 ms; the next poll is at 200 ms.
  EXPECT_EQ(got, SimTime::millis(200));
  EXPECT_EQ(pool.in_use(), 1u);
}

TEST(BlockingAcquirer, CustomTimeoutParams) {
  Simulation s;
  EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());
  WorkerRecord rec;
  BlockingAcquirer acq(BlockingAcquirer::Params{SimTime::millis(50),
                                                SimTime::millis(150)});
  bool done = false;
  acq.acquire(s, pool, rec, [&](bool) { done = true; });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(s.now(), SimTime::millis(150));
}

TEST(BlockingAcquirer, ConcurrentWaitersDrainFreedSlotsInPollOrder) {
  Simulation s;
  EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());
  WorkerRecord rec;
  BlockingAcquirer acq;
  int successes = 0, failures = 0;
  for (int i = 0; i < 3; ++i)
    acq.acquire(s, pool, rec, [&](bool r) { (r ? successes : failures)++; });
  s.after(SimTime::millis(120), [&] { pool.release(); });
  s.run();
  EXPECT_EQ(successes, 1);  // only one slot became free
  EXPECT_EQ(failures, 2);
}

TEST(NonBlockingAcquirer, NeverConsumesTime) {
  Simulation s;
  EndpointPool pool(1);
  WorkerRecord rec;
  NonBlockingAcquirer acq;
  bool ok = false;
  acq.acquire(s, pool, rec, [&](bool r) { ok = r; });
  EXPECT_TRUE(ok);
  bool ok2 = true;
  acq.acquire(s, pool, rec, [&](bool r) { ok2 = r; });
  EXPECT_FALSE(ok2);  // pool now exhausted: immediate failure
  EXPECT_EQ(s.now(), SimTime::zero());
  EXPECT_FALSE(s.pending());
}

TEST(Acquirer, FactoryAndNames) {
  auto a = make_acquirer(MechanismKind::kBlocking);
  auto b = make_acquirer(MechanismKind::kNonBlocking);
  EXPECT_EQ(a->kind(), MechanismKind::kBlocking);
  EXPECT_EQ(b->kind(), MechanismKind::kNonBlocking);
  EXPECT_EQ(a->name(), "blocking_get_endpoint");
  EXPECT_EQ(b->name(), "modified_get_endpoint");
}

}  // namespace
}  // namespace ntier::lb
