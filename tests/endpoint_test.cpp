#include "lb/endpoint.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace ntier::lb {
namespace {

using sim::SimTime;
using sim::Simulation;

TEST(EndpointPool, AcquireRelease) {
  EndpointPool pool(2);
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_TRUE(pool.try_acquire());
  EXPECT_TRUE(pool.exhausted());
  EXPECT_FALSE(pool.try_acquire());
  pool.release();
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_TRUE(pool.try_acquire());
}

TEST(EndpointPool, ReleaseUnderflowThrows) {
  EndpointPool pool(1);
  EXPECT_THROW(pool.release(), std::logic_error);
}

TEST(BlockingAcquirer, SucceedsImmediatelyWhenFree) {
  Simulation s;
  EndpointPool pool(1);
  WorkerRecord rec;
  BlockingAcquirer acq;
  bool ok = false;
  acq.acquire(s, pool, rec, [&](bool r) { ok = r; });
  EXPECT_TRUE(ok);                       // no simulated time consumed
  EXPECT_EQ(s.now(), SimTime::zero());
  EXPECT_EQ(pool.in_use(), 1u);
}

TEST(BlockingAcquirer, FailsAfterExactTimeout) {
  // Algorithm 1 with defaults: polls at 0/100/200 ms, gives up at 300 ms.
  Simulation s;
  EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());  // exhaust
  WorkerRecord rec;
  BlockingAcquirer acq;
  bool done = false, ok = true;
  acq.acquire(s, pool, rec, [&](bool r) {
    done = true;
    ok = r;
  });
  EXPECT_FALSE(done);
  s.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(s.now(), SimTime::millis(300));
}

TEST(BlockingAcquirer, GrabsSlotFreedBetweenPolls) {
  Simulation s;
  EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());
  WorkerRecord rec;
  BlockingAcquirer acq;
  SimTime got;
  acq.acquire(s, pool, rec, [&](bool r) {
    ASSERT_TRUE(r);
    got = s.now();
  });
  s.after(SimTime::millis(150), [&] { pool.release(); });
  s.run();
  // Freed at 150 ms; the next poll is at 200 ms.
  EXPECT_EQ(got, SimTime::millis(200));
  EXPECT_EQ(pool.in_use(), 1u);
}

TEST(BlockingAcquirer, CustomTimeoutParams) {
  Simulation s;
  EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());
  WorkerRecord rec;
  BlockingAcquirer acq(BlockingAcquirer::Params{SimTime::millis(50),
                                                SimTime::millis(150)});
  bool done = false;
  acq.acquire(s, pool, rec, [&](bool) { done = true; });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(s.now(), SimTime::millis(150));
}

TEST(BlockingAcquirer, ConcurrentWaitersDrainFreedSlotsInPollOrder) {
  Simulation s;
  EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());
  WorkerRecord rec;
  BlockingAcquirer acq;
  int successes = 0, failures = 0;
  for (int i = 0; i < 3; ++i)
    acq.acquire(s, pool, rec, [&](bool r) { (r ? successes : failures)++; });
  s.after(SimTime::millis(120), [&] { pool.release(); });
  s.run();
  EXPECT_EQ(successes, 1);  // only one slot became free
  EXPECT_EQ(failures, 2);
}

TEST(NonBlockingAcquirer, NeverConsumesTime) {
  Simulation s;
  EndpointPool pool(1);
  WorkerRecord rec;
  NonBlockingAcquirer acq;
  bool ok = false;
  acq.acquire(s, pool, rec, [&](bool r) { ok = r; });
  EXPECT_TRUE(ok);
  bool ok2 = true;
  acq.acquire(s, pool, rec, [&](bool r) { ok2 = r; });
  EXPECT_FALSE(ok2);  // pool now exhausted: immediate failure
  EXPECT_EQ(s.now(), SimTime::zero());
  EXPECT_FALSE(s.pending());
}

TEST(Acquirer, FactoryAndNames) {
  auto a = make_acquirer(MechanismKind::kBlocking);
  auto b = make_acquirer(MechanismKind::kNonBlocking);
  EXPECT_EQ(a->kind(), MechanismKind::kBlocking);
  EXPECT_EQ(b->kind(), MechanismKind::kNonBlocking);
  EXPECT_EQ(a->name(), "blocking_get_endpoint");
  EXPECT_EQ(b->name(), "modified_get_endpoint");
}

TEST(EndpointPool, CancelWaiterPreventsGrant) {
  EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());
  bool granted_ran = false;
  const auto id = pool.acquire_or_wait([&](bool) { granted_ran = true; });
  ASSERT_NE(id, 0u);
  EXPECT_EQ(pool.waiting(), 1u);
  EXPECT_TRUE(pool.cancel_waiter(id));
  EXPECT_EQ(pool.waiting(), 0u);
  // The released slot must go back to the pool, not to the cancelled waiter.
  pool.release();
  EXPECT_FALSE(granted_ran);
  EXPECT_EQ(pool.in_use(), 0u);
  // Second cancel of the same id reports the waiter is already gone.
  EXPECT_FALSE(pool.cancel_waiter(id));
}

TEST(EndpointPool, SynchronousGrantReturnsZeroId) {
  EndpointPool pool(1);
  bool ok = false;
  EXPECT_EQ(pool.acquire_or_wait([&](bool r) { ok = r; }), 0u);
  EXPECT_TRUE(ok);
  EXPECT_EQ(pool.in_use(), 1u);
}

TEST(EndpointPool, DrainFailsAllWaitersAndKeepsHeldSlots) {
  EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());
  int granted = 0, failed = 0;
  pool.acquire_or_wait([&](bool r) { (r ? granted : failed)++; });
  pool.acquire_or_wait([&](bool r) { (r ? granted : failed)++; });
  EXPECT_EQ(pool.waiting(), 2u);
  pool.drain();
  EXPECT_EQ(failed, 2);
  EXPECT_EQ(granted, 0);
  EXPECT_EQ(pool.waiting(), 0u);
  // The held slot is untouched; its eventual release finds no waiters.
  EXPECT_EQ(pool.in_use(), 1u);
  pool.release();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(EndpointPool, GrowingCapacityAdmitsWaiters) {
  EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());
  int granted = 0;
  pool.acquire_or_wait([&](bool r) { granted += r ? 1 : 0; });
  pool.acquire_or_wait([&](bool r) { granted += r ? 1 : 0; });
  pool.set_capacity(3);
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(pool.in_use(), 3u);
  EXPECT_EQ(pool.waiting(), 0u);
}

TEST(EndpointPool, ShrunkCapacityRetiresSlotsOnRelease) {
  EndpointPool pool(3);
  ASSERT_TRUE(pool.try_acquire());
  ASSERT_TRUE(pool.try_acquire());
  ASSERT_TRUE(pool.try_acquire());
  pool.set_capacity(1);
  bool granted = false;
  pool.acquire_or_wait([&](bool r) { granted = r; });
  // First two releases retire over-capacity slots instead of waking the
  // waiter (satellite fix: release re-checks capacity after a fault-injected
  // change); the third hands the (now-legal) slot over.
  pool.release();
  pool.release();
  EXPECT_FALSE(granted);
  EXPECT_EQ(pool.in_use(), 1u);
  pool.release();
  EXPECT_TRUE(granted);
  EXPECT_EQ(pool.in_use(), 1u);
}

TEST(QueueingAcquirer, WaitsForReleaseUnbounded) {
  Simulation s;
  EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());
  WorkerRecord rec;
  QueueingAcquirer acq;
  SimTime got;
  bool ok = false;
  acq.acquire(s, pool, rec, [&](bool r) {
    ok = r;
    got = s.now();
  });
  s.after(SimTime::millis(750), [&] { pool.release(); });
  s.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, SimTime::millis(750));  // condvar hand-off, no polling lag
}

TEST(QueueingAcquirer, BoundedWaitTimesOutAndCancelsWaiter) {
  Simulation s;
  EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());
  WorkerRecord rec;
  QueueingAcquirer acq(QueueingAcquirer::Params{SimTime::millis(100)});
  bool done = false, ok = true;
  acq.acquire(s, pool, rec, [&](bool r) {
    done = true;
    ok = r;
  });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(s.now(), SimTime::millis(100));
  // The timed-out waiter withdrew: a later release must not double-grant.
  EXPECT_EQ(pool.waiting(), 0u);
  pool.release();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(QueueingAcquirer, BoundedWaitStillGrantsBeforeTimeout) {
  Simulation s;
  EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());
  WorkerRecord rec;
  QueueingAcquirer acq(QueueingAcquirer::Params{SimTime::millis(100)});
  int calls = 0;
  bool ok = false;
  acq.acquire(s, pool, rec, [&](bool r) {
    ++calls;
    ok = r;
  });
  s.after(SimTime::millis(40), [&] { pool.release(); });
  s.run();
  EXPECT_EQ(calls, 1);  // the timeout event must not fire a second outcome
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace ntier::lb
