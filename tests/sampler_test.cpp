#include "metrics/sampler.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulation.h"

namespace ntier::metrics {
namespace {

using sim::SimTime;

TEST(PeriodicSampler, SamplesOnTheConfiguredInterval) {
  sim::Simulation simu;
  int calls = 0;
  PeriodicSampler s(simu, SimTime::millis(50), [&] {
    ++calls;
    return static_cast<double>(calls);
  });
  simu.run_until(SimTime::millis(501));
  EXPECT_EQ(calls, 10);
  // The t=50ms probe measured the [0, 50ms) interval: window index 0.
  EXPECT_DOUBLE_EQ(s.series().avg(0), 1.0);
  EXPECT_DOUBLE_EQ(s.series().avg(1), 2.0);
}

TEST(PeriodicSampler, FinalProbeAtRunEndLandsInTheLastWindow) {
  // A run of duration D with interval w has windows [0, D/w). The probe that
  // fires exactly at t = D measures window D/w - 1 and must be recorded
  // there — not silently dropped into an empty window past the run that no
  // consumer reads.
  sim::Simulation simu;
  int calls = 0;
  PeriodicSampler s(simu, SimTime::millis(50), [&] {
    ++calls;
    return static_cast<double>(calls);
  });
  simu.run_until(SimTime::millis(500));  // events at exactly t=500ms fire
  EXPECT_EQ(calls, 10);
  ASSERT_EQ(s.series().num_windows(), 10u);  // windows 0..9, none past the run
  EXPECT_EQ(s.series().count(9), 1);
  EXPECT_DOUBLE_EQ(s.series().avg(9), 10.0);
  EXPECT_EQ(s.series().total_count(), 10);
}

TEST(PeriodicSampler, DestructionCancelsThePendingProbe) {
  // Teardown ordering: a sampler's probe typically captures raw pointers
  // into sibling objects (servers, the trace collector). Destroying the
  // sampler must cancel its in-flight event, so the simulation can keep
  // running without the probe firing into freed state.
  sim::Simulation simu;
  int calls = 0;
  auto s = std::make_unique<PeriodicSampler>(simu, SimTime::millis(50),
                                             [&] { return ++calls, 1.0; });
  simu.run_until(SimTime::millis(120));
  EXPECT_EQ(calls, 2);
  s.reset();  // probe target dies here
  simu.run_until(SimTime::millis(500));
  EXPECT_EQ(calls, 2);  // the armed event never fired
}

TEST(PeriodicSampler, SamplerOutlivedBySimulationThenDestroyedFirst) {
  // The Experiment owns samplers and the simulation in one struct; member
  // order means samplers die before the simulation. Exercise exactly that
  // sequence: sampler destroyed first, simulation destroyed after, with the
  // cancellation happening against a simulation that still holds queued
  // events from other sources.
  auto simu = std::make_unique<sim::Simulation>();
  bool other_fired = false;
  simu->after(SimTime::millis(400), [&] { other_fired = true; });
  {
    PeriodicSampler s(*simu, SimTime::millis(100), [] { return 1.0; });
    simu->run_until(SimTime::millis(250));
    EXPECT_EQ(s.series().count(1), 1);  // the t=200ms probe measured window 1
  }  // sampler destroyed; its pending event cancelled
  simu->run_until(SimTime::millis(500));
  EXPECT_TRUE(other_fired);
  simu.reset();  // no dangling sampler events left behind
}

}  // namespace
}  // namespace ntier::metrics
