// Tests for the synthetic production-day trace generator: spec parsing,
// diurnal/flash rate curves, determinism, and session structure.
#include "workload/trace_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

namespace ntier::workload {
namespace {

TEST(TraceGenSpec, ParsesKeyValueListAndRoundTrips) {
  std::string err;
  const auto spec = trace_gen_spec_from_string(
      "seed=7,duration=30,base-rps=500,diurnal-amplitude=0.4,"
      "flash-at=10,flash-duration=2,flash-multiplier=3,session-mean=4,"
      "think-mean=0.5,abandon-p=0.1",
      &err);
  ASSERT_TRUE(spec.has_value()) << err;
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->duration_s, 30.0);
  EXPECT_DOUBLE_EQ(spec->base_rps, 500.0);
  EXPECT_DOUBLE_EQ(spec->diurnal_amplitude, 0.4);
  EXPECT_DOUBLE_EQ(spec->flash_at_s, 10.0);
  EXPECT_DOUBLE_EQ(spec->flash_multiplier, 3.0);
  EXPECT_DOUBLE_EQ(spec->abandon_p, 0.1);
  // Canonical form re-parses to the same spec.
  const auto again = trace_gen_spec_from_string(spec->to_string(), &err);
  ASSERT_TRUE(again.has_value()) << err;
  EXPECT_EQ(again->to_string(), spec->to_string());
}

TEST(TraceGenSpec, RejectsBadInput) {
  std::string err;
  EXPECT_FALSE(trace_gen_spec_from_string("duration", &err));
  EXPECT_NE(err.find("key=value"), std::string::npos);
  EXPECT_FALSE(trace_gen_spec_from_string("duration=abc", &err));
  EXPECT_FALSE(trace_gen_spec_from_string("duration=60x", &err));  // garbage
  EXPECT_FALSE(trace_gen_spec_from_string("frobnicate=1", &err));
  EXPECT_NE(err.find("unknown key"), std::string::npos);
  EXPECT_FALSE(trace_gen_spec_from_string("duration=0", &err));
  EXPECT_FALSE(trace_gen_spec_from_string("base-rps=-5", &err));
  EXPECT_FALSE(trace_gen_spec_from_string("diurnal-amplitude=1.5", &err));
  EXPECT_FALSE(trace_gen_spec_from_string("session-mean=0.5", &err));
  EXPECT_FALSE(trace_gen_spec_from_string("abandon-p=1", &err));
  EXPECT_FALSE(
      trace_gen_spec_from_string("flash-at=5,flash-multiplier=0.5", &err));
}

TEST(TraceGenerator, RateCurveHasDiurnalTroughPeakAndFlash) {
  TraceGenSpec spec;
  spec.duration_s = 100;
  spec.base_rps = 1000;
  spec.diurnal_amplitude = 0.5;
  spec.flash_at_s = 30;
  spec.flash_duration_s = 10;
  spec.flash_multiplier = 2.0;
  TraceGenerator gen(spec);
  // One cycle over the duration: trough at t=0 and t=100, peak mid-run
  // (t=50 is past the flash window [30, 40), so no multiplier there).
  EXPECT_NEAR(gen.rate_at(0), 500.0, 1.0);
  EXPECT_NEAR(gen.rate_at(50), 1500.0, 1.0);
  EXPECT_NEAR(gen.rate_at(100), 500.0, 1.0);
  // Crossing into the flash window doubles the curve.
  const double just_before = gen.rate_at(29.999);
  const double inside = gen.rate_at(30.001);
  EXPECT_GT(inside, just_before * 1.8);
  EXPECT_NEAR(inside, just_before * 2.0, just_before * 0.01);
}

TEST(TraceGenerator, GeneratesSortedRichDeterministicTraces) {
  TraceGenSpec spec;
  spec.seed = 11;
  spec.duration_s = 20;
  spec.base_rps = 300;
  spec.diurnal_amplitude = 0.3;
  spec.session_mean = 5;
  spec.think_mean_s = 0.5;
  WorkloadParams wp;
  wp.key_space = 5000;
  RubbosWorkload w(wp);
  TraceGenerator gen(spec);
  const auto a = gen.generate(w);
  const auto b = gen.generate(w);

  EXPECT_TRUE(a.rich());
  EXPECT_TRUE(a.sorted());
  EXPECT_GT(a.size(), 1000u);  // ~300 rps * 20 s = ~6000 expected
  EXPECT_LT(a.size(), 20'000u);
  // Same spec + workload => byte-identical artifact.
  std::stringstream sa, sb;
  a.save(sa);
  b.save(sb);
  EXPECT_EQ(sa.str(), sb.str());
  // A different seed produces a different trace.
  spec.seed = 12;
  std::stringstream sc;
  TraceGenerator(spec).generate(w).save(sc);
  EXPECT_NE(sa.str(), sc.str());
  // Every arrival sits inside the horizon.
  for (const auto& e : a.events()) {
    EXPECT_GE(e.at.ns(), 0);
    EXPECT_LT(e.at.to_seconds(), spec.duration_s);
    EXPECT_LE(e.priority, 2);
  }
}

TEST(TraceGenerator, SessionsHaveGeometricLengthAndDistinctClients) {
  TraceGenSpec spec;
  spec.seed = 3;
  spec.duration_s = 30;
  spec.base_rps = 400;
  spec.session_mean = 4;
  spec.think_mean_s = 0.2;
  RubbosWorkload w;
  const auto trace = TraceGenerator(spec).generate(w);
  std::map<std::uint32_t, int> per_client;
  for (const auto& e : trace.events()) ++per_client[e.client];
  ASSERT_GT(per_client.size(), 100u);
  double mean_len = static_cast<double>(trace.size()) /
                    static_cast<double>(per_client.size());
  // Horizon truncation clips some sessions, so the observed mean sits a bit
  // below the nominal 4.
  EXPECT_GT(mean_len, 2.0);
  EXPECT_LT(mean_len, 6.0);
}

TEST(TraceGenerator, FlashCrowdConcentratesArrivals) {
  TraceGenSpec spec;
  spec.seed = 5;
  spec.duration_s = 40;
  spec.base_rps = 500;
  spec.flash_at_s = 20;
  spec.flash_duration_s = 5;
  spec.flash_multiplier = 3.0;
  spec.session_mean = 1;  // single-shot sessions keep the shape crisp
  RubbosWorkload w;
  const auto trace = TraceGenerator(spec).generate(w);
  auto count_in = [&](double lo, double hi) {
    return std::count_if(trace.events().begin(), trace.events().end(),
                         [&](const ArrivalEvent& e) {
                           const double t = e.at.to_seconds();
                           return t >= lo && t < hi;
                         });
  };
  const auto flash = count_in(20, 25);
  const auto before = count_in(10, 15);
  EXPECT_GT(static_cast<double>(flash), 2.0 * static_cast<double>(before));
}

TEST(TraceGenerator, InvalidSpecThrows) {
  TraceGenSpec spec;
  spec.duration_s = -1;
  RubbosWorkload w;
  EXPECT_THROW(TraceGenerator(spec).generate(w), std::invalid_argument);
}

}  // namespace
}  // namespace ntier::workload
