#include "obs/trace.h"

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <stdexcept>

#include "obs/trace_io.h"
#include "test_util.h"

namespace ntier::obs {
namespace {

using sim::SimTime;

TraceEvent make_event(std::int64_t t_ms, EventKind kind, std::uint64_t req) {
  TraceEvent e;
  e.at = SimTime::millis(t_ms);
  e.kind = kind;
  e.tier = Tier::kBalancer;
  e.node = 2;
  e.worker = 1;
  e.request = req;
  e.value = 0.5 * static_cast<double>(req);
  e.aux = 7;
  return e;
}

TEST(TraceCollector, RingOverwritesOldestAndCountsDrops) {
  TraceCollector trace({.capacity = 4});
  for (std::uint64_t i = 0; i < 10; ++i)
    trace.push(make_event(static_cast<std::int64_t>(i), EventKind::kClientSend, i));

  EXPECT_EQ(trace.emitted(), 10u);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);

  // The retained window is the most recent 4 events, in chronological order.
  const auto snap = trace.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < snap.size(); ++i)
    EXPECT_EQ(snap[i].request, 6 + i);
}

TEST(TraceCollector, EmitMacroIsNullSafe) {
  [[maybe_unused]] TraceCollector* none = nullptr;
  // Must neither crash nor evaluate into anything: the macro null-checks.
  NTIER_TRACE_EVENT(none, SimTime::millis(1), EventKind::kClientSend,
                    Tier::kClient, 0, 0, 1u);
  TraceCollector trace;
  [[maybe_unused]] TraceCollector* some = &trace;
  NTIER_TRACE_EVENT(some, SimTime::millis(1), EventKind::kClientSend,
                    Tier::kClient, 0, 0, 1u);
#ifndef NTIER_OBS_DISABLED
  EXPECT_EQ(trace.size(), 1u);
#else
  EXPECT_EQ(trace.size(), 0u);
#endif
}

TEST(TraceIo, JsonlRoundTripPreservesEveryField) {
  TraceCollector trace;
  trace.push(make_event(3, EventKind::kGetEndpointSkip, 42));
  trace.push(make_event(5, EventKind::kLbValue, 0));
  TraceEvent negative = make_event(7, EventKind::kIoWait, 0);
  negative.worker = -1;
  negative.node = -1;
  negative.value = 0.97;
  trace.push(negative);

  std::ostringstream os;
  write_jsonl(os, trace);
  std::istringstream is(os.str());
  const auto back = read_jsonl(is);

  ASSERT_EQ(back.size(), 3u);
  const auto orig = trace.snapshot();
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].at.ns(), orig[i].at.ns());
    EXPECT_EQ(back[i].kind, orig[i].kind);
    EXPECT_EQ(back[i].tier, orig[i].tier);
    EXPECT_EQ(back[i].node, orig[i].node);
    EXPECT_EQ(back[i].worker, orig[i].worker);
    EXPECT_EQ(back[i].request, orig[i].request);
    EXPECT_DOUBLE_EQ(back[i].value, orig[i].value);
    EXPECT_EQ(back[i].aux, orig[i].aux);
  }
}

// Every kind in the enum — including the newest additions at the tail —
// must survive the serialise/parse round trip; parse_kind iterating up to a
// stale "last kind" sentinel is exactly the regression this catches.
TEST(TraceIo, EveryEventKindRoundTrips) {
  TraceCollector trace;
  const int last = static_cast<int>(EventKind::kKvMigration);
  for (int k = 0; k <= last; ++k)
    trace.push(make_event(k + 1, static_cast<EventKind>(k), 1));
  std::ostringstream os;
  write_jsonl(os, trace);
  std::istringstream is(os.str());
  const auto back = read_jsonl(is);
  ASSERT_EQ(back.size(), static_cast<std::size_t>(last) + 1);
  for (int k = 0; k <= last; ++k)
    EXPECT_EQ(back[static_cast<std::size_t>(k)].kind, static_cast<EventKind>(k));
}

TEST(TraceIo, ReadRejectsMalformedLinesWithLineNumber) {
  std::istringstream is(
      "{\"t_ns\":1,\"kind\":\"client_send\",\"tier\":\"client\",\"node\":0,"
      "\"worker\":0,\"req\":1,\"value\":0,\"aux\":0}\n"
      "not json\n");
  try {
    read_jsonl(is);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("2"), std::string::npos);
  }
}

TEST(TraceIo, ParseTraceFormat) {
  EXPECT_EQ(parse_trace_format("jsonl"), TraceFormat::kJsonl);
  EXPECT_EQ(parse_trace_format("chrome"), TraceFormat::kChrome);
  EXPECT_FALSE(parse_trace_format("protobuf").has_value());
}

TEST(TraceIo, ChromeExportIsWellFormed) {
  TraceCollector trace;
  trace.push(make_event(1, EventKind::kPdflushStart, 0));
  trace.push(make_event(4, EventKind::kPdflushStop, 0));
  trace.push(make_event(2, EventKind::kServiceStart, 9));
  trace.push(make_event(3, EventKind::kServiceEnd, 9));
  std::ostringstream os;
  write_chrome_json(os, trace);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '{');
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("pdflush"), std::string::npos);
}

#ifndef NTIER_OBS_DISABLED
TEST(TraceDeterminism, SameSeedSameConfigYieldsByteIdenticalJsonl) {
  // The property scripts and the ntier_trace analyzer rely on: a trace is a
  // pure function of (seed, config), and its JSONL bytes are a pure function
  // of the trace.
  auto make = [] {
    auto cfg = experiment::testing::quick_config(
        lb::PolicyKind::kTotalRequest, lb::MechanismKind::kBlocking,
        /*millibottlenecks=*/true, sim::SimTime::seconds(6));
    cfg.event_trace = true;
    auto e = experiment::testing::run(std::move(cfg));
    std::ostringstream os;
    write_jsonl(os, *e->trace());
    return os.str();
  };
  const std::string a = make();
  const std::string b = make();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // byte-identical
}

TEST(TraceDeterminism, ExperimentEmitsTheWholeVocabularySpine) {
  auto cfg = experiment::testing::quick_config(
      lb::PolicyKind::kTotalRequest, lb::MechanismKind::kBlocking,
      /*millibottlenecks=*/true, sim::SimTime::seconds(8));
  cfg.event_trace = true;
  auto e = experiment::testing::run(std::move(cfg));
  ASSERT_NE(e->trace(), nullptr);

  std::array<std::uint64_t, 32> by_kind{};
  e->trace()->for_each([&](const TraceEvent& ev) {
    ++by_kind[static_cast<std::size_t>(ev.kind)];
  });
  for (EventKind k :
       {EventKind::kClientSend, EventKind::kSynRetransmit,
        EventKind::kWorkerPickup, EventKind::kGetEndpointAttempt,
        EventKind::kEndpointAcquire, EventKind::kEndpointRelease,
        EventKind::kBackendQueue, EventKind::kServiceStart,
        EventKind::kServiceEnd, EventKind::kPdflushStart,
        EventKind::kPdflushStop, EventKind::kLbValue, EventKind::kIoWait,
        EventKind::kClientDone})
    EXPECT_GT(by_kind[static_cast<std::size_t>(k)], 0u)
        << "missing " << to_string(k);
}
#endif  // NTIER_OBS_DISABLED

}  // namespace
}  // namespace ntier::obs
