// Property tests pitting the metrics structures against brute-force
// reference implementations on randomised inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "metrics/histogram.h"
#include "metrics/time_series.h"
#include "sim/rng.h"

namespace ntier::metrics {
namespace {

using sim::SimTime;

class GaugeVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaugeVsBruteForce, WindowAveragesAndMaximaMatchNaiveIntegration) {
  sim::Rng rng(GetParam());
  const SimTime window = SimTime::millis(50);
  const SimTime horizon = SimTime::seconds(2);

  // Generate a random step function.
  std::vector<std::pair<SimTime, double>> steps;  // (time, new value)
  SimTime t;
  double value = 0;
  steps.emplace_back(t, value);
  while (true) {
    t += SimTime::from_millis(rng.uniform(0.5, 120.0));
    if (t >= horizon) break;
    value = rng.uniform(0.0, 500.0);
    steps.emplace_back(t, value);
  }

  GaugeSeries gauge(window);
  for (const auto& [at, v] : steps) gauge.set(at, v);
  gauge.finish(horizon);

  // Brute force: integrate at 1 ms resolution.
  const auto windows = static_cast<std::size_t>(horizon.ns() / window.ns());
  std::vector<double> integral(windows, 0.0), maxima(windows, 0.0);
  std::size_t step_idx = 0;
  for (std::int64_t ms = 0; ms < horizon.ms(); ++ms) {
    const SimTime now = SimTime::millis(ms);
    while (step_idx + 1 < steps.size() && steps[step_idx + 1].first <= now)
      ++step_idx;
    const double v = steps[step_idx].second;
    const auto w = static_cast<std::size_t>(now.ns() / window.ns());
    integral[w] += v;  // 1 ms slices
    maxima[w] = std::max(maxima[w], v);
  }

  for (std::size_t w = 0; w < windows; ++w) {
    // 1 ms discretisation vs exact integration: allow a slice of slack.
    EXPECT_NEAR(gauge.time_avg(w), integral[w] / 50.0,
                500.0 / 50.0 + 1e-9)
        << "window " << w;
    EXPECT_GE(gauge.max(w) + 1e-9, maxima[w]) << "window " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaugeVsBruteForce,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

class HistogramVsSorted : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramVsSorted, PercentilesWithinBucketResolution) {
  sim::Rng rng(GetParam());
  LatencyHistogram h;
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    // Mixture: mostly fast, a heavy tail — like real response times.
    const double v = rng.bernoulli(0.9) ? rng.uniform(0.5, 20.0)
                                        : rng.uniform(100.0, 5000.0);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    const auto idx = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(values.size()) - 1,
                         p / 100.0 * static_cast<double>(values.size())));
    const double exact = values[idx];
    const double approx = h.percentile(p);
    // Geometric buckets with 20/decade: ±12.2 % plus one bucket of slack.
    EXPECT_GT(approx, exact * 0.85) << p;
    EXPECT_LT(approx, exact * 1.30) << p;
  }
}

TEST_P(HistogramVsSorted, CountAboveMatchesExactCount) {
  sim::Rng rng(GetParam() + 100);
  LatencyHistogram h;
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(1.0, 3000.0);
    values.push_back(v);
    h.record(v);
  }
  // Compare against exact counts at bucket boundaries (where the histogram
  // is exact by construction).
  for (std::size_t b = 10; b < h.num_buckets(); b += 17) {
    const double threshold = h.bucket_lower(b);
    const auto exact = static_cast<std::int64_t>(
        std::count_if(values.begin(), values.end(),
                      [&](double v) { return v > threshold; }));
    // Values inside the boundary bucket can fall on either side.
    const auto in_bucket = h.bucket_count(b > 0 ? b - 1 : 0);
    EXPECT_NEAR(static_cast<double>(h.count_above(threshold)),
                static_cast<double>(exact),
                static_cast<double>(in_bucket) + 1.0)
        << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramVsSorted,
                         ::testing::Values(11u, 12u, 13u));

class TimeSeriesVsMap : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimeSeriesVsMap, AggregationMatchesReference) {
  sim::Rng rng(GetParam());
  TimeSeries ts(SimTime::millis(50));
  std::map<std::size_t, std::vector<double>> ref;
  for (int i = 0; i < 3000; ++i) {
    const auto at = SimTime::from_millis(rng.uniform(0.0, 5000.0));
    const double v = rng.uniform(-10.0, 10.0);
    ts.record(at, v);
    ref[static_cast<std::size_t>(at.ns() / SimTime::millis(50).ns())].push_back(v);
  }
  for (const auto& [w, vals] : ref) {
    EXPECT_EQ(ts.count(w), static_cast<std::int64_t>(vals.size()));
    double sum = 0, mx = vals[0], mn = vals[0];
    for (double v : vals) {
      sum += v;
      mx = std::max(mx, v);
      mn = std::min(mn, v);
    }
    EXPECT_NEAR(ts.sum(w), sum, 1e-9);
    EXPECT_DOUBLE_EQ(ts.max(w), mx);
    EXPECT_DOUBLE_EQ(ts.min(w), mn);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeSeriesVsMap,
                         ::testing::Values(21u, 22u, 23u));

}  // namespace
}  // namespace ntier::metrics
