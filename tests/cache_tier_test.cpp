// Unit tests of the look-aside cache tier over a bare KV tier: hit/miss
// accounting, single-flight coalescing, invalidation broadcast with the
// bounded queue's counted drops, the TTL backstop, invalidation storms, and
// the accounting identities the chaos matrix enforces:
//   lookups == hits + misses
//   misses  == fills_started + coalesced_fills
//   invalidations_sent == delivered + dropped   (pending 0 after drain)
#include "cache/tier.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/config.h"
#include "kv/config.h"
#include "kv/tier.h"
#include "proto/request.h"
#include "sim/simulation.h"

namespace ntier::cache {
namespace {

using sim::SimTime;
using sim::Simulation;

os::NodeConfig plain_node() {
  os::NodeConfig nc;
  nc.cores = 2;
  nc.pdflush.enabled = false;
  return nc;
}

/// A cache tier over a bare 5-replica KV tier (N=3, R=W=2) — the unit under
/// test without the n-tier stack above it.
struct Harness {
  Simulation s;
  std::vector<std::unique_ptr<os::Node>> kv_nodes;
  std::vector<std::unique_ptr<kv::KvReplica>> reps;
  std::unique_ptr<kv::KvTier> kv;
  std::vector<std::unique_ptr<os::Node>> cache_nodes;
  std::unique_ptr<CacheTier> tier;

  explicit Harness(CacheConfig cc = make_cache_config()) {
    kv::KvConfig cfg;
    cfg.replicas = 5;
    cfg.n = 3;
    cfg.r = 2;
    cfg.w = 2;
    kv::KvReplicaConfig rc;
    rc.hint_capacity = cfg.hint_capacity;
    for (int i = 0; i < cfg.replicas; ++i) {
      kv_nodes.push_back(std::make_unique<os::Node>(s, plain_node()));
      reps.push_back(std::make_unique<kv::KvReplica>(s, *kv_nodes.back(), i, rc));
    }
    std::vector<kv::KvReplica*> ptrs;
    for (auto& r : reps) ptrs.push_back(r.get());
    kv = std::make_unique<kv::KvTier>(s, std::move(ptrs), cfg,
                                      SimTime::micros(100));
    for (int i = 0; i < cc.nodes; ++i)
      cache_nodes.push_back(std::make_unique<os::Node>(s, plain_node()));
    std::vector<os::Node*> cptrs;
    for (auto& n : cache_nodes) cptrs.push_back(n.get());
    tier = std::make_unique<CacheTier>(s, std::move(cptrs), kv.get(), cc);
  }

  static CacheConfig make_cache_config() {
    CacheConfig cc;
    cc.nodes = 2;
    return cc;
  }

  proto::RequestPtr request(std::uint64_t key) {
    auto req = std::make_shared<proto::Request>();
    req->key = key;
    return req;
  }
};

/// The identities every finished (drained) run must satisfy.
void expect_identities(const CacheTier& tier) {
  const CacheStats& cs = tier.stats();
  EXPECT_EQ(cs.lookups, cs.hits + cs.misses);
  EXPECT_EQ(cs.misses, cs.fills_started + cs.coalesced_fills);
  EXPECT_EQ(cs.invalidations_sent,
            cs.invalidations_delivered + cs.invalidations_dropped);
  EXPECT_EQ(tier.invalidations_pending(), 0u);
  EXPECT_EQ(tier.ops_in_flight(), 0u);
}

TEST(CacheTier, MissFillsFromBackingThenHits) {
  Harness h;
  int oks = 0;
  h.tier->read(0, h.request(7), SimTime::micros(500),
               [&](bool ok) { oks += ok; });
  h.s.after(SimTime::millis(50), [&] {
    h.tier->read(0, h.request(7), SimTime::micros(500),
                 [&](bool ok) { oks += ok; });
  });
  h.s.run();

  EXPECT_EQ(oks, 2);
  const CacheStats& cs = h.tier->stats();
  EXPECT_EQ(cs.lookups, 2u);
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.fills_started, 1u);
  EXPECT_EQ(cs.fills_completed, 1u);
  EXPECT_EQ(cs.inserts, 1u);
  EXPECT_EQ(cs.fill_failures, 0u);
  // The fill actually went through the backing quorum.
  EXPECT_EQ(h.kv->stats().quorum_reads, 1u);
  expect_identities(*h.tier);
}

TEST(CacheTier, CacheNodesHaveIndependentStores) {
  Harness h;
  int oks = 0;
  h.tier->read(0, h.request(7), SimTime::micros(500),
               [&](bool ok) { oks += ok; });
  h.s.after(SimTime::millis(50), [&] {
    // Same key at the other node: its store is cold, so this misses.
    h.tier->read(1, h.request(7), SimTime::micros(500),
                 [&](bool ok) { oks += ok; });
  });
  h.s.run();

  EXPECT_EQ(oks, 2);
  EXPECT_EQ(h.tier->stats().hits, 0u);
  EXPECT_EQ(h.tier->stats().fills_started, 2u);
  EXPECT_EQ(h.tier->store(0).size(), 1u);
  EXPECT_EQ(h.tier->store(1).size(), 1u);
  expect_identities(*h.tier);
}

TEST(CacheTier, SingleFlightCoalescesConcurrentMisses) {
  Harness h;
  int oks = 0;
  for (int i = 0; i < 3; ++i)
    h.tier->read(0, h.request(7), SimTime::micros(500),
                 [&](bool ok) { oks += ok; });
  h.s.run();

  EXPECT_EQ(oks, 3);
  const CacheStats& cs = h.tier->stats();
  EXPECT_EQ(cs.misses, 3u);
  EXPECT_EQ(cs.fills_started, 1u);  // one leader...
  EXPECT_EQ(cs.coalesced_fills, 2u);  // ...two joiners
  EXPECT_EQ(cs.fills_completed, 1u);
  // The backing store saw exactly one fetch — no stampede.
  EXPECT_EQ(h.kv->stats().reads_issued, 1u);
  expect_identities(*h.tier);
}

TEST(CacheTier, WithoutCoalescingEveryMissStampedesTheBacking) {
  CacheConfig cc = Harness::make_cache_config();
  cc.coalesce = false;
  Harness h(cc);
  int oks = 0;
  for (int i = 0; i < 3; ++i)
    h.tier->read(0, h.request(7), SimTime::micros(500),
                 [&](bool ok) { oks += ok; });
  h.s.run();

  EXPECT_EQ(oks, 3);
  const CacheStats& cs = h.tier->stats();
  EXPECT_EQ(cs.misses, 3u);
  EXPECT_EQ(cs.fills_started, 3u);
  EXPECT_EQ(cs.coalesced_fills, 0u);
  EXPECT_EQ(h.kv->stats().reads_issued, 3u);
  expect_identities(*h.tier);
}

TEST(CacheTier, QuorumCommittedWriteInvalidatesEveryHoldingNode) {
  Harness h;
  int oks = 0;
  // Warm the key on both cache nodes.
  h.tier->read(0, h.request(7), SimTime::micros(500),
               [&](bool ok) { oks += ok; });
  h.s.after(SimTime::millis(20), [&] {
    h.tier->read(1, h.request(7), SimTime::micros(500),
                 [&](bool ok) { oks += ok; });
  });
  h.s.after(SimTime::millis(40), [&] {
    h.tier->write(0, h.request(7), SimTime::micros(500),
                  [&](bool ok) { oks += ok; });
  });
  // Post-invalidation, the key is gone from both nodes: this read misses.
  h.s.after(SimTime::millis(80), [&] {
    h.tier->read(0, h.request(7), SimTime::micros(500),
                 [&](bool ok) { oks += ok; });
  });
  h.s.run();

  EXPECT_EQ(oks, 4);
  const CacheStats& cs = h.tier->stats();
  EXPECT_EQ(cs.writes_forwarded, 1u);
  EXPECT_EQ(cs.invalidations_sent, 2u);  // both nodes held the key
  EXPECT_EQ(cs.invalidations_delivered, 2u);
  EXPECT_EQ(cs.invalidations_dropped, 0u);
  EXPECT_EQ(cs.misses, 3u);  // two warming misses + one post-invalidation
  EXPECT_EQ(cs.hits, 0u);
  EXPECT_EQ(h.kv->stats().writes_issued, 1u);
  expect_identities(*h.tier);
}

TEST(CacheTier, WriteToUnheldKeySendsNoInvalidations) {
  Harness h;
  bool ok = false;
  h.tier->write(0, h.request(99), SimTime::micros(500),
                [&](bool v) { ok = v; });
  h.s.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(h.tier->stats().writes_forwarded, 1u);
  EXPECT_EQ(h.tier->stats().invalidations_sent, 0u);
  expect_identities(*h.tier);
}

TEST(CacheTier, TtlBackstopExpiresStaleEntries) {
  CacheConfig cc = Harness::make_cache_config();
  cc.ttl = SimTime::millis(20);
  Harness h(cc);
  int oks = 0;
  h.tier->read(0, h.request(7), SimTime::micros(500),
               [&](bool ok) { oks += ok; });
  // Well past the TTL: the entry is found dead, counted, and refilled.
  h.s.after(SimTime::millis(100), [&] {
    h.tier->read(0, h.request(7), SimTime::micros(500),
                 [&](bool ok) { oks += ok; });
  });
  h.s.run();

  EXPECT_EQ(oks, 2);
  const CacheStats& cs = h.tier->stats();
  EXPECT_EQ(cs.hits, 0u);
  EXPECT_EQ(cs.misses, 2u);
  EXPECT_EQ(cs.fills_started, 2u);
  EXPECT_EQ(cs.expirations, 1u);
  expect_identities(*h.tier);
}

TEST(CacheTier, LruEvictionsAreCountedThroughTierStats) {
  CacheConfig cc = Harness::make_cache_config();
  cc.bytes = 2 * cc.entry_bytes;  // two entries per node
  Harness h(cc);
  int oks = 0;
  for (std::uint64_t key = 1; key <= 3; ++key)
    h.s.after(SimTime::millis(20 * key), [&h, &oks, key] {
      h.tier->read(0, h.request(key), SimTime::micros(500),
                   [&](bool ok) { oks += ok; });
    });
  h.s.run();

  EXPECT_EQ(oks, 3);
  EXPECT_EQ(h.tier->store(0).size(), 2u);
  EXPECT_EQ(h.tier->stats().evictions, 1u);
  expect_identities(*h.tier);
}

TEST(CacheTier, FailedQuorumFetchSurfacesAsFillFailure) {
  Harness h;
  const std::uint64_t key = 7;
  const auto members = h.kv->shard_members(h.kv->shard_of(key));
  h.kv->on_replica_crashed(members[0]);
  h.kv->on_replica_crashed(members[1]);

  bool ok = true;
  h.tier->read(0, h.request(key), SimTime::micros(500),
               [&](bool v) { ok = v; });
  h.s.run();

  EXPECT_FALSE(ok);
  const CacheStats& cs = h.tier->stats();
  EXPECT_EQ(cs.fill_failures, 1u);
  EXPECT_EQ(cs.inserts, 0u);  // nothing cached on failure
  EXPECT_EQ(h.tier->store(0).size(), 0u);
  expect_identities(*h.tier);
}

TEST(CacheTier, InvalidationStormSweepsHotKeysAndDrains) {
  Harness h;
  int oks = 0;
  // Warm the hottest ranks on node 0 so the storm has keys to invalidate.
  for (std::uint64_t key = 0; key < 4; ++key)
    h.s.after(SimTime::millis(10 * (key + 1)), [&h, &oks, key] {
      h.tier->read(0, h.request(key), SimTime::micros(500),
                   [&](bool ok) { oks += ok; });
    });
  h.s.after(SimTime::millis(100), [&] {
    h.tier->begin_invalidation_storm(SimTime::millis(50), 1.0);
    EXPECT_TRUE(h.tier->storm_active());
  });
  h.s.run();

  EXPECT_EQ(oks, 4);
  EXPECT_FALSE(h.tier->storm_active());
  const CacheStats& cs = h.tier->stats();
  EXPECT_EQ(cs.storms, 1u);
  EXPECT_GE(cs.storm_ticks, 1u);
  // The first sweep invalidates all four resident hot keys.
  EXPECT_GE(cs.invalidations_sent, 4u);
  EXPECT_EQ(h.tier->store(0).size(), 0u);
  expect_identities(*h.tier);
}

TEST(CacheTier, BoundedQueueOverflowDropsAreCounted) {
  CacheConfig cc = Harness::make_cache_config();
  cc.invalidation_queue_capacity = 1;
  Harness h(cc);
  int oks = 0;
  // Warm many hot ranks on node 0, then sweep them all at one instant: the
  // first invalidation occupies the single slot, the rest are counted drops.
  for (std::uint64_t key = 0; key < 8; ++key)
    h.s.after(SimTime::millis(10 * (key + 1)), [&h, &oks, key] {
      h.tier->read(0, h.request(key), SimTime::micros(500),
                   [&](bool ok) { oks += ok; });
    });
  h.s.after(SimTime::millis(200), [&] {
    h.tier->begin_invalidation_storm(SimTime::millis(30), 1.0);
  });
  h.s.run();

  EXPECT_EQ(oks, 8);
  const CacheStats& cs = h.tier->stats();
  EXPECT_GT(cs.invalidations_dropped, 0u);
  EXPECT_GT(cs.invalidations_delivered, 0u);
  EXPECT_EQ(cs.invalidations_sent,
            cs.invalidations_delivered + cs.invalidations_dropped);
  expect_identities(*h.tier);
}

TEST(CacheTier, OverlappingStormsExtendRatherThanStack) {
  Harness h;
  h.tier->begin_invalidation_storm(SimTime::millis(40), 1.0);
  h.s.after(SimTime::millis(20), [&] {
    h.tier->begin_invalidation_storm(SimTime::millis(40), 2.0);
    EXPECT_TRUE(h.tier->storm_active());
  });
  h.s.run();
  EXPECT_FALSE(h.tier->storm_active());
  // Two storm applications, one contiguous episode's worth of ticks.
  EXPECT_EQ(h.tier->stats().storms, 2u);
  EXPECT_GE(h.tier->stats().storm_ticks, 4u);
  expect_identities(*h.tier);
}

}  // namespace
}  // namespace ntier::cache
