#include "metrics/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace ntier::metrics {
namespace {

TEST(LatencyHistogram, CountsAndMean) {
  LatencyHistogram h;
  h.record(1.0);
  h.record(2.0);
  h.record(3.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min_recorded(), 1.0);
  EXPECT_DOUBLE_EQ(h.max_recorded(), 3.0);
}

TEST(LatencyHistogram, PercentileWithinBucketResolution) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  // 20 buckets/decade => bucket ratio 10^(1/20) ≈ 1.122.
  EXPECT_NEAR(h.percentile(50), 500.0, 500.0 * 0.13);
  EXPECT_NEAR(h.percentile(99), 990.0, 990.0 * 0.13);
  EXPECT_NEAR(h.percentile(0), 1.0, 0.2);
}

TEST(LatencyHistogram, VlrtAndNormalFractions) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(5.0);     // normal (<10ms)
  for (int i = 0; i < 5; ++i) h.record(100.0);    // middle
  for (int i = 0; i < 5; ++i) h.record(2000.0);   // VLRT (>1000ms)
  EXPECT_EQ(h.count_above(1000.0), 5);
  EXPECT_NEAR(h.fraction_above(1000.0), 0.05, 1e-9);
  EXPECT_NEAR(h.fraction_below(10.0), 0.90, 1e-9);
}

TEST(LatencyHistogram, StraddlingBucketThresholdIsAPartition) {
  // Regression: a threshold strictly inside a bucket (1500 ms is not a
  // boundary of the default 20-buckets/decade grid) used to drop the whole
  // straddling bucket from BOTH count_above and fraction_below, so samples
  // recorded at ~1500 ms vanished from either side.
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(5.0);
  for (int i = 0; i < 10; ++i) h.record(1500.0);  // inside [1412.5, 1584.9)
  EXPECT_EQ(h.count_above(1500.0), 10);  // exact: the straddled bucket counts
  EXPECT_NEAR(h.fraction_above(1500.0), 0.10, 1e-12);
  EXPECT_NEAR(h.fraction_below(1500.0), 0.90, 1e-12);
  // Above/below partition the samples at any threshold.
  EXPECT_NEAR(h.fraction_above(1500.0) + h.fraction_below(1500.0), 1.0, 1e-12);
  EXPECT_NEAR(h.fraction_above(777.0) + h.fraction_below(777.0), 1.0, 1e-12);
}

TEST(LatencyHistogram, PartitionHoldsAcrossManyThresholds) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  for (double t : {0.05, 0.9, 1.0, 9.7, 10.0, 123.4, 999.9, 1000.0, 5e4, 2e5}) {
    EXPECT_NEAR(h.fraction_above(t) + h.fraction_below(t), 1.0, 1e-12)
        << "threshold " << t;
  }
}

TEST(LatencyHistogram, ClampsOutOfRangeValues) {
  LatencyHistogram h(0.1, 1000.0, 10);
  h.record(0.0001);
  h.record(1e9);
  EXPECT_EQ(h.count(), 2);
  EXPECT_GT(h.bucket_count(0), 0);
  EXPECT_GT(h.bucket_count(h.num_buckets() - 1), 0);
}

TEST(LatencyHistogram, BucketBoundsAreGeometric) {
  LatencyHistogram h(1.0, 1000.0, 10);
  const double r = h.bucket_upper(0) / h.bucket_lower(0);
  EXPECT_NEAR(r, std::pow(10.0, 0.1), 1e-9);
  EXPECT_NEAR(h.bucket_lower(10), 10.0, 1e-9);  // one decade
}

TEST(LatencyHistogram, MergeCombines) {
  LatencyHistogram a, b;
  a.record(1.0);
  b.record(100.0);
  b.record(2000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.count_above(1000.0), 1);
  EXPECT_DOUBLE_EQ(a.min_recorded(), 1.0);
  EXPECT_DOUBLE_EQ(a.max_recorded(), 2000.0);
}

TEST(LatencyHistogram, MergeRejectsIncompatible) {
  LatencyHistogram a(0.1, 1000.0, 10), b(0.1, 1000.0, 20);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LatencyHistogram, EmptyHistogramIsSane) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_above(1000.0), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(10.0), 0.0);
}

TEST(LatencyHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LatencyHistogram(-1.0, 10.0, 10), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram(10.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(LatencyHistogram, PercentileRejectsOutOfRangeP) {
  LatencyHistogram h;
  h.record(1.0);
  EXPECT_THROW(h.percentile(-1), std::invalid_argument);
  EXPECT_THROW(h.percentile(101), std::invalid_argument);
}

TEST(LatencyHistogram, CsvSkipsEmptyBuckets) {
  LatencyHistogram h;
  h.record(5.0);
  std::ostringstream os;
  h.to_csv(os, "rt");
  // exactly one data row plus two header lines
  int lines = 0;
  for (char c : os.str())
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 3);
}

}  // namespace
}  // namespace ntier::metrics
