#include "experiment/experiment.h"

#include <gtest/gtest.h>

#include "experiment/report.h"
#include "test_util.h"

namespace ntier::experiment {
namespace {

using lb::MechanismKind;
using lb::PolicyKind;
using sim::SimTime;

TEST(ExperimentConfig, PresetsDescribeThemselves) {
  const auto paper = ExperimentConfig::paper_scale();
  EXPECT_EQ(paper.num_clients, 70'000);
  EXPECT_NEAR(paper.offered_rps(), 10'000.0, 1.0);

  const auto scaled = ExperimentConfig::scaled(0.1);
  EXPECT_EQ(scaled.num_clients, 7'000);
  EXPECT_NEAR(scaled.offered_rps(), paper.offered_rps(), 1.0);

  const auto single = ExperimentConfig::single_node();
  EXPECT_EQ(single.num_apaches, 1);
  EXPECT_EQ(single.num_tomcats, 1);
  EXPECT_TRUE(single.apache_millibottlenecks);

  EXPECT_NE(describe(paper).find("70000 clients"), std::string::npos);
  EXPECT_NE(describe(paper).find("total_request"), std::string::npos);
}

TEST(Experiment, BuildsPaperTopology) {
  auto c = testing::quick_config(PolicyKind::kTotalRequest,
                                 MechanismKind::kBlocking, false,
                                 SimTime::seconds(1));
  Experiment e(std::move(c));
  EXPECT_EQ(e.num_apaches(), 4);
  EXPECT_EQ(e.num_tomcats(), 4);
  EXPECT_EQ(e.apache(0).balancer().num_workers(), 4);
  EXPECT_EQ(e.tomcat_node(0).name(), "tomcat1");
}

TEST(Experiment, RequestConservation) {
  auto e = testing::run(testing::quick_config(
      PolicyKind::kTotalRequest, MechanismKind::kBlocking, true,
      SimTime::seconds(10)));
  const auto& cl = e->clients();
  EXPECT_EQ(cl.issued(),
            cl.completed_ok() + cl.failed() + cl.dropped() + cl.in_flight());
  EXPECT_GT(cl.completed_ok(), 0u);
  // In-flight at the end of a run is at most the whole client population.
  EXPECT_LE(cl.in_flight(), 7'000u);
}

TEST(Experiment, ThroughputNearOfferedLoad) {
  auto e = testing::run(testing::quick_config(
      PolicyKind::kCurrentLoad, MechanismKind::kNonBlocking, false,
      SimTime::seconds(10)));
  const double rate =
      static_cast<double>(e->clients().completed_ok()) / 10.0;
  EXPECT_NEAR(rate, e->config().offered_rps(), e->config().offered_rps() * 0.1);
}

TEST(Experiment, RunTwiceThrows) {
  auto c = testing::quick_config(PolicyKind::kTotalRequest,
                                 MechanismKind::kBlocking, false,
                                 SimTime::seconds(1));
  Experiment e(std::move(c));
  e.run();
  EXPECT_THROW(e.run(), std::logic_error);
}

TEST(Experiment, DeterministicForSeed) {
  auto c1 = testing::quick_config(PolicyKind::kTotalRequest,
                                  MechanismKind::kBlocking, true,
                                  SimTime::seconds(8));
  auto c2 = c1;
  auto e1 = testing::run(std::move(c1));
  auto e2 = testing::run(std::move(c2));
  EXPECT_EQ(e1->clients().issued(), e2->clients().issued());
  EXPECT_EQ(e1->log().completed(), e2->log().completed());
  EXPECT_DOUBLE_EQ(e1->log().mean_response_ms(), e2->log().mean_response_ms());
  EXPECT_EQ(e1->log().vlrt_count(), e2->log().vlrt_count());
}

TEST(Experiment, SeedChangesRun) {
  auto c1 = testing::quick_config(PolicyKind::kTotalRequest,
                                  MechanismKind::kBlocking, true,
                                  SimTime::seconds(8));
  auto c2 = c1;
  c2.seed = 43;
  auto e1 = testing::run(std::move(c1));
  auto e2 = testing::run(std::move(c2));
  EXPECT_NE(e1->log().mean_response_ms(), e2->log().mean_response_ms());
}

TEST(Experiment, TierQueueSeriesHaveExpectedLength) {
  auto e = testing::run(testing::quick_config(
      PolicyKind::kTotalRequest, MechanismKind::kBlocking, true,
      SimTime::seconds(10)));
  const auto windows = e->num_metric_windows();
  EXPECT_EQ(windows, 200u);  // 10 s / 50 ms
  EXPECT_EQ(e->apache_tier_queue().size(), windows);
  EXPECT_EQ(e->tomcat_tier_queue().size(), windows);
  EXPECT_EQ(e->mysql_tier_queue().size(), windows);
  EXPECT_GT(max_of(e->tomcat_tier_queue()), 0.0);
}

TEST(Experiment, SamplersCoverTheRun) {
  auto e = testing::run(testing::quick_config(
      PolicyKind::kTotalRequest, MechanismKind::kBlocking, false,
      SimTime::seconds(5)));
  EXPECT_GE(e->tomcat_cpu_series(0).total_count(), 99);
  EXPECT_GE(e->apache_cpu_series(0).total_count(), 99);
  EXPECT_GE(e->mysql_cpu_series().total_count(), 99);
}

TEST(Experiment, PdflushEpisodesExistExactlyWhenEnabled) {
  auto on = testing::run(testing::quick_config(
      PolicyKind::kTotalRequest, MechanismKind::kBlocking, true,
      SimTime::seconds(12)));
  bool any = false;
  for (int t = 0; t < on->num_tomcats(); ++t)
    any |= !on->flush_intervals(t).empty();
  EXPECT_TRUE(any);

  auto off = testing::run(testing::quick_config(
      PolicyKind::kTotalRequest, MechanismKind::kBlocking, false,
      SimTime::seconds(12)));
  for (int t = 0; t < off->num_tomcats(); ++t)
    EXPECT_TRUE(off->flush_intervals(t).empty());
}

TEST(Experiment, FlushesAreStaggeredAcrossTomcats) {
  auto e = testing::run(testing::quick_config(
      PolicyKind::kCurrentLoad, MechanismKind::kNonBlocking, true,
      SimTime::seconds(12)));
  std::vector<double> first_starts;
  for (int t = 0; t < e->num_tomcats(); ++t) {
    const auto iv = e->flush_intervals(t);
    if (!iv.empty()) first_starts.push_back(iv.front().first.to_seconds());
  }
  ASSERT_GE(first_starts.size(), 2u);
  for (std::size_t i = 1; i < first_starts.size(); ++i)
    EXPECT_GT(std::abs(first_starts[i] - first_starts[0]), 0.5);
}

}  // namespace
}  // namespace ntier::experiment
