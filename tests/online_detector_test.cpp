#include "millib/online_detector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "millib/causal_chain.h"
#include "obs/trace.h"
#include "test_util.h"

namespace ntier::millib {
namespace {

using obs::EventKind;
using obs::Tier;
using obs::TraceEvent;
using sim::SimTime;

TraceEvent ev(std::int64_t t_ms, EventKind kind, Tier tier, int node,
              int worker = -1, std::uint64_t req = 0, double value = 0.0,
              std::int32_t aux = 0) {
  TraceEvent e;
  e.at = SimTime::millis(t_ms);
  e.kind = kind;
  e.tier = tier;
  e.node = static_cast<std::int16_t>(node);
  e.worker = worker;
  e.request = req;
  e.value = value;
  e.aux = aux;
  return e;
}

// Request ids congruent to 1 mod the default head_every (101), so nothing in
// these streams is retained by the head sample by accident.
std::uint64_t req_id(std::uint64_t i) { return 101'000 + i * 101 + 1; }

/// Healthy background: every 10 ms an attempt+release pair on worker 0
/// (committed queue bounces 0->1->0), lb_value updates from balancer 0 for
/// workers 0 and 1 every 20 ms, iowait samples at 5% every 50 ms.
void healthy(std::vector<TraceEvent>& out, std::int64_t t0, std::int64_t t1) {
  for (std::int64_t t = t0; t < t1; t += 10) {
    const std::uint64_t r = req_id(static_cast<std::uint64_t>(t));
    out.push_back(ev(t, EventKind::kGetEndpointAttempt, Tier::kBalancer, 0, 0, r));
    out.push_back(ev(t, EventKind::kEndpointRelease, Tier::kBalancer, 0, 0, r));
    if (t % 20 == 0) {
      out.push_back(ev(t, EventKind::kLbValue, Tier::kBalancer, 0, 0, 0, 1.0));
      out.push_back(ev(t, EventKind::kLbValue, Tier::kBalancer, 0, 1, 0, 1.0));
    }
    if (t % 50 == 0) {
      out.push_back(ev(t, EventKind::kIoWait, Tier::kTomcat, 0, -1, 0, 0.05));
      out.push_back(ev(t, EventKind::kIoWait, Tier::kTomcat, 1, -1, 0, 0.05));
    }
  }
}

/// The full millibottleneck signature on worker 0 at t=1000..1300 ms:
/// saturated iowait, lb_value frozen (silent 980 -> 1300), and 15 committed
/// requests that only release at t=1300.
std::vector<TraceEvent> episode_stream() {
  // Episode request ids start at req_id(5000), clear of the ids the healthy
  // background derives from its timestamps.
  std::vector<TraceEvent> out;
  healthy(out, 0, 1000);
  for (int i = 0; i < 15; ++i)
    out.push_back(ev(1000 + 2 * i, EventKind::kGetEndpointAttempt,
                     Tier::kBalancer, 0, 0, req_id(5000 + static_cast<std::uint64_t>(i))));
  for (std::int64_t t = 1000; t <= 1250; t += 50) {
    out.push_back(ev(t, EventKind::kIoWait, Tier::kTomcat, 0, -1, 0, 0.95));
    out.push_back(ev(t, EventKind::kIoWait, Tier::kTomcat, 1, -1, 0, 0.05));
  }
  for (std::int64_t t = 1000; t < 1300; t += 20)
    out.push_back(ev(t, EventKind::kLbValue, Tier::kBalancer, 0, 1, 0, 1.0));
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.at < b.at; });
  for (int i = 0; i < 15; ++i)
    out.push_back(ev(1300, EventKind::kEndpointRelease, Tier::kBalancer, 0, 0,
                     req_id(5000 + static_cast<std::uint64_t>(i))));
  // One VLRT completes during the drain.
  out.push_back(ev(1400, EventKind::kClientDone, Tier::kClient, 0, 3,
                   req_id(5000), 1'500.0, 0));
  healthy(out, 1450, 2000);
  return out;
}

TEST(OnlineDetector, DetectsTheHandCraftedEpisodeWithSubWindowLatency) {
  OnlineDetector det;
  for (const auto& e : episode_stream()) det.observe(e);
  det.finish(SimTime::millis(2000));

  ASSERT_EQ(det.episodes().size(), 1u);
  const OnlineEpisode& ep = det.episodes()[0];
  EXPECT_EQ(ep.node, 0);
  EXPECT_EQ(ep.onset, SimTime::millis(1000));
  // Confirmed at the end of the window in which the 100 ms lb freeze became
  // observable: two 50 ms windows after onset.
  EXPECT_EQ(ep.detected_at, SimTime::millis(1100));
  EXPECT_DOUBLE_EQ(ep.detection_latency_ms(), 100.0);
  EXPECT_DOUBLE_EQ(ep.queue_peak, 15.0);
  EXPECT_EQ(ep.vlrts, 1u);
  EXPECT_TRUE(ep.closed);
  EXPECT_GE(ep.end, ep.detected_at);
  EXPECT_GT(det.events_observed(), 0u);
  EXPECT_GT(det.windows_evaluated(), 0u);
}

TEST(OnlineDetector, QuietStreamRaisesNoEpisodes) {
  OnlineDetector det;
  std::vector<TraceEvent> out;
  healthy(out, 0, 5000);
  for (const auto& e : out) det.observe(e);
  det.finish(SimTime::millis(5000));
  EXPECT_TRUE(det.episodes().empty());
}

TEST(OnlineDetector, QueueSpikeAloneIsNotAnEpisode) {
  // The false-positive guard: the same queue spike with healthy iowait and a
  // live lb_value never confirms, and the candidate is dropped on lapse.
  OnlineDetector det;
  std::vector<TraceEvent> out;
  healthy(out, 0, 1000);
  for (int i = 0; i < 15; ++i)
    out.push_back(ev(1000 + 2 * i, EventKind::kGetEndpointAttempt,
                     Tier::kBalancer, 0, 0, req_id(700 + static_cast<std::uint64_t>(i))));
  // lb_values and healthy iowait continue right through the spike.
  for (std::int64_t t = 1000; t < 1300; t += 20)
    out.push_back(ev(t, EventKind::kLbValue, Tier::kBalancer, 0, 0, 0, 1.0));
  for (std::int64_t t = 1000; t <= 1250; t += 50)
    out.push_back(ev(t, EventKind::kIoWait, Tier::kTomcat, 0, -1, 0, 0.05));
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.at < b.at; });
  for (int i = 0; i < 15; ++i)
    out.push_back(ev(1300, EventKind::kEndpointRelease, Tier::kBalancer, 0, 0,
                     req_id(700 + static_cast<std::uint64_t>(i))));
  healthy(out, 1300, 3000);
  for (const auto& e : out) det.observe(e);
  det.finish(SimTime::millis(3000));
  EXPECT_TRUE(det.episodes().empty());
}

TEST(OnlineDetector, IsAPureFunctionOfTheEventStream) {
  const auto stream = episode_stream();
  OnlineDetector a, b;
  for (const auto& e : stream) a.observe(e);
  for (const auto& e : stream) b.observe(e);
  a.finish(SimTime::millis(2000));
  b.finish(SimTime::millis(2000));
  ASSERT_EQ(a.episodes().size(), b.episodes().size());
  for (std::size_t i = 0; i < a.episodes().size(); ++i) {
    EXPECT_EQ(a.episodes()[i].onset, b.episodes()[i].onset);
    EXPECT_EQ(a.episodes()[i].detected_at, b.episodes()[i].detected_at);
    EXPECT_EQ(a.episodes()[i].end, b.episodes()[i].end);
    EXPECT_EQ(a.episodes()[i].vlrts, b.episodes()[i].vlrts);
  }
}

TEST(OnlineDetector, ScoreMatchesMissesAndFlagsSpuriousEpisodes) {
  std::vector<OnlineEpisode> eps(2);
  eps[0].node = 0;
  eps[0].onset = SimTime::millis(1050);
  eps[0].detected_at = SimTime::millis(1150);
  eps[0].end = SimTime::millis(1400);
  eps[1].node = 0;
  eps[1].onset = SimTime::millis(9000);  // overlaps no truth: spurious
  eps[1].detected_at = SimTime::millis(9100);
  eps[1].end = SimTime::millis(9200);

  std::vector<std::vector<std::pair<SimTime, SimTime>>> truth(2);
  truth[0].emplace_back(SimTime::millis(1000), SimTime::millis(1300));
  truth[1].emplace_back(SimTime::millis(2000), SimTime::millis(2300));  // missed

  const OnlineScore s = OnlineDetector::score(eps, truth);
  EXPECT_EQ(s.truth, 2u);
  EXPECT_EQ(s.matched, 1u);
  EXPECT_EQ(s.missed, 1u);
  EXPECT_EQ(s.false_positives, 1u);
  EXPECT_DOUBLE_EQ(s.match_fraction(), 0.5);
  // Latency is measured against the truth episode's start.
  ASSERT_EQ(s.latency_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(s.latency_ms[0], 150.0);
  EXPECT_DOUBLE_EQ(s.median_latency_ms(), 150.0);
}

TEST(OnlineDetector, MarksEpisodeWindowsAndVlrtRequestsForTailSampling) {
  obs::TraceConfig tc;
  tc.ring = false;
  tc.tail.enabled = true;
  tc.tail.horizon = SimTime::seconds(30);  // decide everything at finish
  obs::TraceCollector trace(tc);
  OnlineDetector det({}, &trace);
  trace.add_sink(&det);

  auto stream = episode_stream();
  // The VLRT request's first event predates the episode: the request mark
  // must retain it end to end anyway.
  stream.push_back(
      ev(600, EventKind::kClientSend, Tier::kClient, 0, 3, req_id(5000)));
  std::stable_sort(stream.begin(), stream.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.at < b.at; });
  for (const auto& e : stream) trace.push(e);
  det.finish(SimTime::millis(2000));
  trace.finish_tail();

  bool kept_worker0_lb = false, kept_worker1_lb = false;
  bool kept_attempt_in_episode = false, kept_vlrt_send = false;
  std::uint64_t kept_healthy_attempts = 0;
  for (const auto& e : trace.tail_events()) {
    if (e.kind == EventKind::kLbValue) {
      if (e.worker == 0) kept_worker0_lb = true;
      if (e.worker == 1) kept_worker1_lb = true;
    }
    if (e.kind == EventKind::kGetEndpointAttempt && e.request == req_id(5005))
      kept_attempt_in_episode = true;
    if (e.kind == EventKind::kClientSend && e.request == req_id(5000))
      kept_vlrt_send = true;
    if (e.kind == EventKind::kGetEndpointAttempt &&
        e.at < SimTime::millis(500))
      ++kept_healthy_attempts;
  }
  // lb_values are node-scoped: the stalled worker's copies inside the marked
  // window survive, the healthy worker's do not.
  EXPECT_TRUE(kept_worker0_lb);
  EXPECT_FALSE(kept_worker1_lb);
  // The episode's committed-queue deltas survive; the VLRT request survives
  // end to end including its pre-episode client_send.
  EXPECT_TRUE(kept_attempt_in_episode);
  EXPECT_TRUE(kept_vlrt_send);
  // Far outside any mark, per-request traffic is dropped.
  EXPECT_EQ(kept_healthy_attempts, 0u);
  // Node-level signals (iowait) always survive as the chain skeleton.
  EXPECT_TRUE(std::any_of(
      trace.tail_events().begin(), trace.tail_events().end(),
      [](const TraceEvent& e) { return e.kind == EventKind::kIoWait; }));
  EXPECT_LT(trace.tail_kept(), trace.tail_seen());
}

TEST(OnlineDetector, MarkedContextIsCappedAtMarkMaxPastTheOnset) {
  // A drain that outlasts the stall: the detector keeps tracking it, but
  // marks at most mark_max (600 ms) of context past the onset — committed
  // deltas at t=2000 (1 s into the episode) must not survive.
  obs::TraceConfig tc;
  tc.ring = false;
  tc.tail.enabled = true;
  tc.tail.horizon = SimTime::seconds(30);
  obs::TraceCollector trace(tc);
  OnlineDetector det({}, &trace);
  trace.add_sink(&det);

  std::vector<TraceEvent> out;
  healthy(out, 0, 1000);
  // The queue spikes at t=1000 (15 committed at once) and keeps climbing
  // without draining until the stream goes healthy again at t=2500.
  for (int i = 0; i < 15; ++i)
    out.push_back(ev(1000, EventKind::kGetEndpointAttempt, Tier::kBalancer, 0,
                     0, req_id(800 + static_cast<std::uint64_t>(i))));
  for (std::int64_t t = 1000; t < 2400; t += 50) {
    if (t >= 1050)
      out.push_back(ev(t, EventKind::kGetEndpointAttempt, Tier::kBalancer, 0,
                       0, req_id(800 + static_cast<std::uint64_t>(t))));
    out.push_back(ev(t, EventKind::kIoWait, Tier::kTomcat, 0, -1, 0, 0.95));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.at < b.at; });
  healthy(out, 2500, 3500);
  for (const auto& e : out) trace.push(e);
  det.finish(SimTime::millis(3500));
  trace.finish_tail();

  ASSERT_GE(det.episodes().size(), 1u);
  EXPECT_EQ(det.episodes()[0].onset, SimTime::millis(1000));
  bool kept_early = false, kept_late = false;
  for (const auto& e : trace.tail_events()) {
    if (e.kind != EventKind::kGetEndpointAttempt) continue;
    if (e.request == req_id(800 + 1200)) kept_early = true;  // t=1200
    if (e.request == req_id(800 + 2000)) kept_late = true;   // t=2000
  }
  EXPECT_TRUE(kept_early);
  EXPECT_FALSE(kept_late);
}

#ifndef NTIER_OBS_DISABLED
TEST(OnlineDetector, AgreesWithTheOfflineAnalyzerOnTheFigure6Scenario) {
  // The acceptance experiment: stream the paper's unstable configuration
  // through the live detector and require >=90% agreement with the offline
  // causal-chain analysis, zero spurious episodes, and a median detection
  // latency within 250 ms.
  auto cfg = experiment::testing::quick_config(
      lb::PolicyKind::kTotalRequest, lb::MechanismKind::kBlocking,
      /*millibottlenecks=*/true, sim::SimTime::seconds(15));
  cfg.event_trace = true;
  cfg.online_detect = true;
  auto e = experiment::testing::run(std::move(cfg));
  ASSERT_NE(e->trace(), nullptr);
  ASSERT_NE(e->online_detector(), nullptr);

  const auto report =
      CausalChainAnalyzer().analyze(e->trace()->snapshot());
  std::vector<std::vector<std::pair<SimTime, SimTime>>> truth;
  for (const auto& c : report.chains) {
    if (c.tier != Tier::kTomcat || c.node < 0) continue;
    if (truth.size() <= static_cast<std::size_t>(c.node))
      truth.resize(static_cast<std::size_t>(c.node) + 1);
    truth[static_cast<std::size_t>(c.node)].emplace_back(c.start, c.end);
  }
  const auto score =
      OnlineDetector::score(e->online_detector()->episodes(), truth);
  ASSERT_GT(score.truth, 0u);
  EXPECT_GE(score.match_fraction(), 0.9);
  EXPECT_EQ(score.false_positives, 0u);
  EXPECT_LE(score.median_latency_ms(), 250.0);
}
#endif  // NTIER_OBS_DISABLED

}  // namespace
}  // namespace ntier::millib
