#include "recovery/orchestrator.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "experiment/chaos.h"
#include "experiment/config.h"
#include "experiment/experiment.h"
#include "experiment/metastable.h"
#include "experiment/summary.h"
#include "millib/fault_plan.h"
#include "obs/trace.h"
#include "obs/trace_io.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace ntier::experiment {
namespace {

using sim::SimTime;
using sim::Simulation;

// ---------------------------------------------------------------------------
// Orchestrator unit tests: drive the control loop with synthetic signals so
// every hysteresis edge is exercised on exact tick boundaries.
// ---------------------------------------------------------------------------

struct OrchHarness {
  Simulation s;
  double queue = 0;
  std::uint64_t retries = 0;
  std::uint64_t firsts = 0;
  int suppress_on = 0, suppress_off = 0;
  int shed_on = 0, shed_off = 0;
  int gate_on = 0, gate_off = 0;
  int resets = 0;
  std::unique_ptr<recovery::RecoveryOrchestrator> orch;

  OrchHarness() {
    recovery::RecoveryConfig cfg;
    cfg.enabled = true;
    cfg.warmup = SimTime::zero();
    recovery::RecoverySignals sig;
    sig.queue_depth = [this] { return queue; };
    sig.retries = [this] { return retries; };
    sig.first_attempts = [this] { return firsts; };
    recovery::RecoveryActions act;
    act.suppress_retries = [this](bool on) {
      ++(on ? suppress_on : suppress_off);
    };
    act.hard_shed = [this](bool on) { ++(on ? shed_on : shed_off); };
    act.gate_refills = [this](bool on) { ++(on ? gate_on : gate_off); };
    act.reset_breakers = [this] {
      ++resets;
      return 2;
    };
    orch = std::make_unique<recovery::RecoveryOrchestrator>(
        s, cfg, std::move(sig), std::move(act));
    orch->start();
  }

  /// Mid-window (tick k digests [k*100ms, (k+1)*100ms)), deliver `n`
  /// completions at `latency_ms` and advance the sampled signals. Call only
  /// before run_until (schedules at absolute times).
  void feed(int from_tick, int ticks, int n, double latency_ms, double q = 2.0,
            std::uint64_t d_firsts = 100, std::uint64_t d_retries = 0) {
    for (int k = from_tick; k < from_tick + ticks; ++k) {
      s.after(SimTime::millis(k * 100 + 50), [this, n, latency_ms, q, d_firsts,
                                              d_retries] {
        queue = q;
        firsts += d_firsts;
        retries += d_retries;
        obs::TraceEvent e;
        e.kind = obs::EventKind::kClientDone;
        e.value = latency_ms;
        for (int i = 0; i < n; ++i) orch->observe(e);
      });
    }
  }
};

TEST(RecoveryOrchestrator, EpisodeLifecycleAndStagedInterventions) {
  OrchHarness h;
  h.feed(0, 10, 20, 2.0);                       // healthy: baseline ~2 ms
  h.feed(10, 10, 20, 20.0, 20.0, 100, 50);      // 10x latency, retry storm
  h.feed(20, 12, 20, 2.0);                      // recovered
  // Stop with the last fed window digested: an unfed window would read as a
  // goodput collapse (starved) and count degraded.
  h.s.run_until(SimTime::millis(3250));

  const auto& st = h.orch->stats();
  EXPECT_EQ(st.episodes, 1u);
  EXPECT_EQ(st.degraded_ticks, 10u);
  EXPECT_GT(st.episode_ticks, 0u);
  EXPECT_FALSE(h.orch->episode_active());
  // Every stage tripped exactly once and was lifted again.
  EXPECT_EQ(h.suppress_on, 1);
  EXPECT_GE(h.suppress_off, 1);
  EXPECT_EQ(h.shed_on, 1);
  EXPECT_GE(h.shed_off, 1);
  EXPECT_EQ(h.gate_on, 1);
  EXPECT_EQ(h.gate_off, 1);
  // Step-down closed the breakers the episode left open (stubbed: 2).
  EXPECT_EQ(h.resets, 1);
  EXPECT_EQ(st.breaker_resets, 2u);
  EXPECT_EQ(st.retry_suppressions, 1u);
  EXPECT_EQ(st.hard_sheds, 1u);
  EXPECT_EQ(st.refill_gates, 1u);
  EXPECT_NEAR(h.orch->baseline_latency_ms(), 2.0, 0.5);
}

TEST(RecoveryOrchestrator, ReDegradationDuringStepDownExtendsTheEpisode) {
  OrchHarness h;
  h.feed(0, 10, 20, 2.0);
  h.feed(10, 5, 20, 20.0, 20.0, 100, 50);  // declare
  h.feed(15, 5, 20, 2.0);                  // 5 healthy ticks < exit_ticks(8)
  h.feed(20, 5, 20, 20.0, 20.0, 100, 50);  // trigger re-fires mid step-down
  h.feed(25, 12, 20, 2.0);                 // now exit for real
  h.s.run_until(SimTime::millis(3750));

  // The re-fire resets the healthy streak inside the SAME episode: exit
  // hysteresis exists precisely so this is one incident, not two.
  EXPECT_EQ(h.orch->stats().episodes, 1u);
  EXPECT_FALSE(h.orch->episode_active());
  // Per-stage hysteresis re-applied the paused interventions on the re-fire.
  EXPECT_EQ(h.suppress_on, 2);
  EXPECT_EQ(h.suppress_off, 2);
  EXPECT_EQ(h.shed_on, 2);
  EXPECT_EQ(h.shed_off, 2);
  // The refill gate spans the whole episode: one application, one lift.
  EXPECT_EQ(h.gate_on, 1);
  EXPECT_EQ(h.gate_off, 1);
  EXPECT_EQ(h.resets, 1);
}

TEST(RecoveryOrchestrator, ShortBlipsBelowEnterTicksNeverDeclare) {
  OrchHarness h;
  h.feed(0, 10, 20, 2.0);
  for (int k = 0; k < 4; ++k) {
    h.feed(10 + 3 * k, 2, 20, 20.0);  // 2 degraded ticks (enter needs 3)
    h.feed(12 + 3 * k, 1, 20, 2.0);   // ...and the streak resets
  }
  h.s.run_until(SimTime::millis(2250));
  EXPECT_EQ(h.orch->stats().episodes, 0u);
  EXPECT_GT(h.orch->stats().degraded_ticks, 0u);
  EXPECT_EQ(h.gate_on, 0);
  EXPECT_EQ(h.suppress_on, 0);
  EXPECT_EQ(h.resets, 0);
}

TEST(RecoveryOrchestrator, BaselineLearnsOnlyFromHealthyTicks) {
  OrchHarness h;
  h.feed(0, 10, 20, 2.0);
  h.feed(10, 20, 20, 60.0);  // long degraded plateau
  h.s.run_until(SimTime::millis(3050));
  EXPECT_EQ(h.orch->stats().episodes, 1u);
  // The plateau must not drag the learned baseline toward 60 ms — else the
  // orchestrator would declare the degraded state "recovered".
  EXPECT_LT(h.orch->baseline_latency_ms(), 3.0);
}

TEST(RecoveryOrchestrator, ZeroCompletionTicksCountAsDegraded) {
  OrchHarness h;
  h.feed(0, 10, 20, 2.0);
  // Then nothing: a full goodput collapse produces NO completions, which
  // must read as degraded (starved), not as "no data, all quiet".
  h.s.run_until(SimTime::millis(2100));
  EXPECT_EQ(h.orch->stats().episodes, 1u);
  EXPECT_TRUE(h.orch->episode_active());
}

// ---------------------------------------------------------------------------
// Gray faults end to end.
// ---------------------------------------------------------------------------

ExperimentConfig small_resilient_config() {
  ExperimentConfig c;
  c.label = "gray_e2e";
  c.num_clients = 400;
  c.think_mean = SimTime::millis(200);
  c.duration = SimTime::seconds(10);
  c.warmup = SimTime::seconds(2);
  c.tomcat_millibottlenecks = false;
  // Round robin keeps feeding the gray worker (a busyness policy would mask
  // the latency signal by routing around it — the bench quantifies both),
  // and little enough CPU headroom that a gray slowdown really queues.
  c.policy = lb::PolicyKind::kRoundRobin;
  c.workload.demand_scale = 2.0;
  c.enable_resilience();
  return c;
}

TEST(GrayFault, DataPathFaultEvadesProberAndBreaker) {
  auto healthy = small_resilient_config();
  Experiment base(healthy);
  base.run();
  const RunSummary base_sum = summarize(base);

  auto cfg = small_resilient_config();
  millib::FaultSpec f;
  f.kind = millib::FaultKind::kGrayDataPath;
  f.worker = 0;
  f.severity = 0.95;  // 20x data-path inflation, probe path untouched
  f.start = SimTime::seconds(3);
  f.duration = SimTime::seconds(6);
  cfg.fault_plan = millib::FaultPlan::single(f);
  Experiment gray(cfg);
  gray.run();
  const RunSummary gray_sum = summarize(gray);

  // The fault really degraded the data path...
  EXPECT_GT(gray_sum.gray_inflated_ops, 0u);
  EXPECT_GT(gray_sum.mean_rt_ms, 1.5 * base_sum.mean_rt_ms);
  // ...while every health signal stayed green: no probe ever timed out and
  // no breaker ever tripped (the defining property of a gray failure).
  for (int i = 0; i < gray.num_apaches(); ++i) {
    EXPECT_EQ(gray.apache(i).balancer().breaker_trips(), 0u);
    ASSERT_NE(gray.apache(i).prober(), nullptr);
    EXPECT_EQ(gray.apache(i).prober()->probes_timed_out(), 0u);
  }
}

TEST(GrayFault, TwoOverlappingFaultsApplyAndClearIndependently) {
  auto cfg = small_resilient_config();
  millib::FaultSpec a;
  a.kind = millib::FaultKind::kGrayDataPath;
  a.worker = 0;
  a.severity = 0.9;
  a.start = SimTime::seconds(3);
  a.duration = SimTime::seconds(4);
  millib::FaultSpec b = a;
  b.worker = 1;
  b.severity = 0.8;
  b.start = SimTime::seconds(5);  // overlaps [5,7) with worker 0's window
  cfg.fault_plan = millib::FaultPlan::single(a);
  cfg.fault_plan.specs.push_back(b);

  Experiment e(cfg);
  e.run();
  const RunSummary sum = summarize(e);
  EXPECT_GT(sum.completed, 0);
  // Both workers served gray-inflated requests...
  EXPECT_GT(e.tomcat(0).gray_inflated(), 0u);
  EXPECT_GT(e.tomcat(1).gray_inflated(), 0u);
  // ...and both faults cleared at their own end times.
  EXPECT_FALSE(e.tomcat(0).gray_degraded());
  EXPECT_FALSE(e.tomcat(1).gray_degraded());
}

// Satellite: gray cells of the chaos matrix with the recovery layer active —
// the safety invariants must survive its interventions in every cell.
TEST(GrayChaosMatrix, RecoveryOnCellsPreserveInvariants) {
  ChaosMatrixOptions opt;
  opt.chaos_seed = 42;
  opt.num_apaches = 2;
  opt.num_tomcats = 3;
  opt.num_clients = 200;
  opt.think_mean = SimTime::millis(200);
  opt.traffic = SimTime::seconds(6);
  opt.drain = SimTime::seconds(6);
  opt.resilience = true;
  opt.recovery = true;
  const auto results = run_gray_chaos_matrix(opt);
  ASSERT_FALSE(results.empty());
  std::uint64_t gray_ops = 0;
  for (const auto& r : results) {
    SCOPED_TRACE(r.label);
    EXPECT_TRUE(r.invariants.ok()) << r.invariants.to_string();
    EXPECT_GT(r.invariants.completed, 0u);
    gray_ops += r.summary.gray_inflated_ops;
  }
  EXPECT_GT(gray_ops, 0u);  // the gray schedule really ran
}

// ---------------------------------------------------------------------------
// CLI wiring.
// ---------------------------------------------------------------------------

cli::ParseResult parse(std::initializer_list<std::string> args) {
  return cli::parse_cli(std::vector<std::string>(args));
}

TEST(RecoveryCli, RecoveryFlagTogglesTheOrchestrator) {
  auto on = parse({"--recovery", "on"});
  ASSERT_TRUE(on.ok()) << on.error;
  EXPECT_TRUE(on.options->config.recovery.enabled);

  auto off = parse({"--recovery", "off"});
  ASSERT_TRUE(off.ok()) << off.error;
  EXPECT_FALSE(off.options->config.recovery.enabled);

  EXPECT_FALSE(parse({"--recovery", "maybe"}).ok());
  EXPECT_FALSE(parse({"--recovery"}).ok());
}

TEST(RecoveryCli, GrayFaultFlagParsesAndValidates) {
  auto ok = parse({"--gray-fault", "data_path"});
  ASSERT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(ok.options->gray_fault, "data_path");
  EXPECT_FALSE(parse({"--gray-fault", "bogus"}).ok());
  // The slow-replica gray fault only exists on the KV tier.
  EXPECT_FALSE(parse({"--gray-fault", "replica"}).ok());
}

TEST(RecoveryCli, OrchestratorOnlyBuiltWhenEnabled) {
  auto cfg = small_resilient_config();
  cfg.num_clients = 50;
  cfg.duration = SimTime::seconds(1);
  cfg.warmup = SimTime::millis(200);
  {
    Experiment e(cfg);
    EXPECT_EQ(e.recovery(), nullptr);
  }
  cfg.recovery.enabled = true;
  {
    Experiment e(cfg);
    EXPECT_NE(e.recovery(), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Byte-determinism of a full metastable run, event trace included.
// ---------------------------------------------------------------------------

TEST(MetastableDeterminism, FullRunIsByteIdenticalIncludingEventTrace) {
  MetastableOptions opt;
  opt.kind = MetastableKind::kRetryStorm;
  opt.vulnerable = true;
  opt.recovery = true;
  opt.duration = SimTime::seconds(12);
  opt.warmup = SimTime::seconds(2);
  opt.trigger_start = SimTime::seconds(5);
  opt.trigger_duration = SimTime::millis(1500);

  auto run_once = [&](std::string* summary_json, std::string* trace_bytes,
                      std::string* recovery_stats) {
    ExperimentConfig c = metastable_config(opt);
    c.event_trace = true;
    Experiment e(c);
    e.run();
    *summary_json = summarize(e).to_json_string();
    ASSERT_NE(e.trace(), nullptr);
    std::ostringstream os;
    obs::write_jsonl(os, *e.trace());
    *trace_bytes = os.str();
    ASSERT_NE(e.recovery(), nullptr);
    *recovery_stats = e.recovery()->stats().to_string();
  };

  std::string json1, trace1, rec1, json2, trace2, rec2;
  run_once(&json1, &trace1, &rec1);
  run_once(&json2, &trace2, &rec2);
  EXPECT_EQ(json1, json2);
  EXPECT_EQ(rec1, rec2);
  ASSERT_FALSE(trace1.empty());
  EXPECT_EQ(trace1, trace2);  // the full event stream, byte for byte
}

}  // namespace
}  // namespace ntier::experiment
