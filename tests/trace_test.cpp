// Tests for arrival-trace recording, CSV round-trip and open-loop replay.
#include "workload/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "experiment/experiment.h"
#include "test_util.h"
#include "workload/client.h"

namespace ntier::workload {
namespace {

using sim::SimTime;
using sim::Simulation;

TEST(ArrivalTrace, CsvRoundTrip) {
  ArrivalTrace trace;
  trace.add(SimTime::from_millis(12.5), 3, 7);
  trace.add(SimTime::seconds(2), 1, 0);
  std::stringstream ss;
  trace.save(ss);
  const auto loaded = ArrivalTrace::load(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.events()[0].at, SimTime::from_millis(12.5));
  EXPECT_EQ(loaded.events()[0].client, 3);
  EXPECT_EQ(loaded.events()[0].interaction, 7);
  EXPECT_EQ(loaded.events()[1].at, SimTime::seconds(2));
}

TEST(ArrivalTrace, LoadRejectsGarbage) {
  std::stringstream no_header("1,2,3\n");
  EXPECT_THROW(ArrivalTrace::load(no_header), std::invalid_argument);
  std::stringstream bad_row("at_s,client,interaction\n0.5,7\n");
  EXPECT_THROW(ArrivalTrace::load(bad_row), std::invalid_argument);
}

TEST(ArrivalTrace, SortAndScale) {
  ArrivalTrace trace;
  trace.add(SimTime::seconds(2), 0, 0);
  trace.add(SimTime::seconds(1), 1, 1);
  trace.sort();
  EXPECT_EQ(trace.events()[0].client, 1);
  trace.scale_time(0.5);
  EXPECT_EQ(trace.events()[0].at, SimTime::from_millis(500));
  EXPECT_EQ(trace.events()[1].at, SimTime::seconds(1));
  EXPECT_THROW(trace.scale_time(0.0), std::invalid_argument);
}

TEST(Recorder, ClientPopulationHookCapturesEveryIssue) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  // A front-end that answers instantly.
  class Fe : public proto::FrontEnd {
   public:
    explicit Fe(Simulation& simu) : sim_(simu) {}
    bool try_submit(const proto::RequestPtr& req, RespondFn respond) override {
      sim_.after(SimTime::millis(1),
                 [req, respond = std::move(respond)] { respond(req, true); });
      return true;
    }
    Simulation& sim_;
  } fe(s);

  ClientParams p;
  p.num_clients = 20;
  p.think_mean = SimTime::millis(100);
  p.ramp = SimTime::millis(100);
  ClientPopulation clients(s, p, w, {&fe}, log);

  ArrivalTrace trace;
  clients.set_issue_hook(
      [&](SimTime at, std::uint16_t client, std::uint16_t interaction) {
        trace.add(at, client, interaction);
      });
  clients.start();
  s.run_until(SimTime::seconds(2));
  EXPECT_EQ(trace.size(), clients.issued());
  // Recording order is already chronological.
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_LE(trace.events()[i - 1].at, trace.events()[i].at);
}

TEST(Replay, ReproducesTheRecordedMixExactly) {
  // Record a closed-loop run, then replay it open-loop against a fresh
  // instant front-end: same arrival count and identical interaction mix.
  Simulation rec_sim(5);
  RubbosWorkload w;
  metrics::RequestLog rec_log;
  class Fe : public proto::FrontEnd {
   public:
    explicit Fe(Simulation& simu) : sim_(simu) {}
    bool try_submit(const proto::RequestPtr& req, RespondFn respond) override {
      sim_.after(SimTime::millis(1),
                 [req, respond = std::move(respond)] { respond(req, true); });
      return true;
    }
    Simulation& sim_;
  };
  Fe rec_fe(rec_sim);
  ClientParams p;
  p.num_clients = 50;
  p.think_mean = SimTime::millis(50);
  p.ramp = SimTime::millis(50);
  ClientPopulation clients(rec_sim, p, w, {&rec_fe}, rec_log);
  ArrivalTrace trace;
  clients.set_issue_hook(
      [&](SimTime at, std::uint16_t c, std::uint16_t k) { trace.add(at, c, k); });
  clients.start();
  rec_sim.run_until(SimTime::seconds(3));

  std::map<std::uint16_t, int> recorded_mix;
  for (const auto& e : trace.events()) ++recorded_mix[e.interaction];

  Simulation rep_sim(99);  // different seed: only demands differ
  metrics::RequestLog rep_log(SimTime::millis(50), /*keep_records=*/true);
  Fe rep_fe(rep_sim);
  TraceReplayer replayer(rep_sim, trace, w, {&rep_fe}, rep_log);
  replayer.start();
  rep_sim.run_until(SimTime::seconds(4));

  EXPECT_EQ(replayer.issued(), trace.size());
  EXPECT_EQ(replayer.completed_ok(), trace.size());
  std::map<std::uint16_t, int> replayed_mix;
  for (const auto& r : rep_log.records()) ++replayed_mix[r.interaction];
  EXPECT_EQ(recorded_mix, replayed_mix);
}

TEST(Replay, OpenLoopAgainstTheFullTestbed) {
  // Build a synthetic constant-rate trace and run it through the real
  // 4A/4T/1M stack (no millibottlenecks): everything completes quickly.
  ArrivalTrace trace;
  sim::Rng mix_rng(3);
  RubbosWorkload w;
  for (int i = 0; i < 20'000; ++i) {
    trace.add(SimTime::from_millis(1 + i * 0.4),  // 2 500 req/s
              static_cast<std::uint16_t>(i % 997),
              static_cast<std::uint16_t>(w.next_interaction(mix_rng, -1)));
  }

  auto cfg = experiment::testing::quick_config(
      lb::PolicyKind::kCurrentLoad, lb::MechanismKind::kNonBlocking,
      /*millibottlenecks=*/false, SimTime::seconds(10));
  cfg.num_clients = 1;  // the closed loop idles; the replayer drives load
  cfg.think_mean = SimTime::seconds(1000);
  experiment::Experiment e(std::move(cfg));

  metrics::RequestLog log;
  std::vector<proto::FrontEnd*> fes;
  for (int a = 0; a < e.num_apaches(); ++a) fes.push_back(&e.apache(a));
  TraceReplayer replayer(e.simulation(), trace, w, fes, log);
  replayer.start();
  e.run();

  EXPECT_EQ(replayer.issued(), 20'000u);
  EXPECT_GT(log.completed(), 19'900);
  EXPECT_LT(log.mean_response_ms(), 10.0);
  EXPECT_EQ(replayer.connection_drops(), 0u);
}

}  // namespace
}  // namespace ntier::workload
