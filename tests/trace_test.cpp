// Tests for arrival-trace recording, strict CSV round-trip and open-loop
// replay (streaming scheduling, abandonment, retransmit exhaustion).
#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <sstream>

#include "experiment/experiment.h"
#include "experiment/summary.h"
#include "test_util.h"
#include "workload/client.h"

namespace ntier::workload {
namespace {

using sim::SimTime;
using sim::Simulation;

/// A front-end that answers every request after 1 ms.
class InstantFe : public proto::FrontEnd {
 public:
  explicit InstantFe(Simulation& simu) : sim_(simu) {}
  bool try_submit(const proto::RequestPtr& req, RespondFn respond) override {
    last_key = req->key;
    last_priority = req->priority;
    sim_.after(SimTime::millis(1),
               [req, respond = std::move(respond)] { respond(req, true); });
    return true;
  }
  std::uint64_t last_key = 0;
  std::uint8_t last_priority = 0;

 private:
  Simulation& sim_;
};

/// A front-end whose backlog is always full (every SYN silently dropped).
class RefusingFe : public proto::FrontEnd {
 public:
  bool try_submit(const proto::RequestPtr&, RespondFn) override {
    ++attempts;
    return false;
  }
  std::uint64_t attempts = 0;
};

/// A front-end that accepts but never responds (a hung server).
class BlackholeFe : public proto::FrontEnd {
 public:
  bool try_submit(const proto::RequestPtr&, RespondFn) override {
    return true;
  }
};

TEST(ArrivalTrace, CsvRoundTrip) {
  ArrivalTrace trace;
  trace.add(SimTime::from_millis(12.5), 3, 7);
  trace.add(SimTime::seconds(2), 1, 0);
  std::stringstream ss;
  trace.save(ss);
  const auto loaded = ArrivalTrace::load(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.events()[0].at, SimTime::from_millis(12.5));
  EXPECT_EQ(loaded.events()[0].client, 3u);
  EXPECT_EQ(loaded.events()[0].interaction, 7);
  EXPECT_EQ(loaded.events()[1].at, SimTime::seconds(2));
  EXPECT_FALSE(loaded.rich());
}

TEST(ArrivalTrace, SaveLoadSaveIsByteIdentical) {
  // The regression: default ostream formatting wrote 6 significant digits,
  // so past t=1000 s a saved-then-loaded trace shifted arrival times at the
  // millisecond level and the round trip was not byte-stable.
  ArrivalTrace trace;
  trace.add(SimTime::nanos(1), 0, 1);
  trace.add(SimTime::from_seconds(1234.567891234), 70'000, 23);
  trace.add(SimTime::from_seconds(86'399.999999999), 4'000'000'000u, 5);
  std::stringstream first;
  trace.save(first);
  auto loaded = ArrivalTrace::load(first);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(loaded.events()[i].at, trace.events()[i].at) << "row " << i;
  std::stringstream second;
  loaded.save(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(ArrivalTrace, RichSchemaRoundTripsKeysAndPriorities) {
  ArrivalTrace trace;
  trace.add_rich(SimTime::millis(5), 12, 3, 0xDEADBEEFCAFEull, 0);
  trace.add_rich(SimTime::millis(9), 13, 4, 17, 2);
  EXPECT_TRUE(trace.rich());
  std::stringstream ss;
  trace.save(ss);
  EXPECT_NE(ss.str().find("at_ns,client,interaction,key,priority"),
            std::string::npos);
  const auto loaded = ArrivalTrace::load(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded.rich());
  EXPECT_EQ(loaded.events()[0].key, 0xDEADBEEFCAFEull);
  EXPECT_EQ(loaded.events()[0].priority, 0);
  EXPECT_EQ(loaded.events()[1].key, 17u);
  EXPECT_EQ(loaded.events()[1].priority, 2);
  std::stringstream again;
  loaded.save(again);
  EXPECT_EQ(ss.str(), again.str());
}

TEST(ArrivalTrace, LegacyV1SecondsHeaderStillLoads) {
  std::stringstream legacy("at_s,client,interaction\n0.5,7,3\n2,1,0\n");
  const auto loaded = ArrivalTrace::load(legacy);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.events()[0].at, SimTime::from_millis(500));
  EXPECT_EQ(loaded.events()[0].client, 7u);
  EXPECT_EQ(loaded.events()[1].at, SimTime::seconds(2));
  EXPECT_FALSE(loaded.rich());
}

TEST(ArrivalTrace, LoadRejectsGarbage) {
  auto rejects = [](const std::string& text) {
    EXPECT_THROW(ArrivalTrace::parse(text), std::invalid_argument) << text;
  };
  rejects("");                                    // missing header
  rejects("1,2,3\n");                             // unknown header
  rejects("at_ns,client,interaction\n500,7\n");   // short row
  rejects("at_ns,client,interaction\n1,2,3,4\n"); // long row
  rejects("at_ns,client,interaction\n1.5,2,3\n"); // fractional at_ns
  rejects("at_ns,client,interaction\n-1,2,3\n");  // negative time
  rejects("at_s,client,interaction\n1.5abc,2,3\n");  // stod-era garbage
  rejects("at_s,client,interaction\nnan,2,3\n");
  // uint16-cast-era silent truncation: ids out of range now fail loudly.
  rejects("at_ns,client,interaction\n1,4294967296,3\n");  // client > u32
  rejects("at_ns,client,interaction\n1,2,65536\n");       // interaction > u16
  rejects("at_ns,client,interaction,key,priority\n1,2,3,4,9\n");  // bad class
}

TEST(ArrivalTrace, ParseErrorsNameOriginRowAndColumn) {
  try {
    ArrivalTrace::parse("at_ns,client,interaction\n5,1,0\nx,1,0\n", "day.csv");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("day.csv:3:1"), std::string::npos) << what;
  }
  try {
    ArrivalTrace::parse("at_ns,client,interaction\n5,1,99999\n", "day.csv");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("day.csv:2:3"), std::string::npos) << what;
  }
}

TEST(ArrivalTrace, FileRoundTripViaMmapLoader) {
  ArrivalTrace trace;
  trace.add_rich(SimTime::from_seconds(2000.123456789), 99'999, 11, 42, 1);
  trace.add_rich(SimTime::from_seconds(2000.123456789), 100'000, 12, 43, 2);
  const std::string path =
      ::testing::TempDir() + "/ntier_trace_roundtrip.csv";
  trace.save_file(path);
  const auto loaded = ArrivalTrace::load_file(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.events()[0].at, trace.events()[0].at);
  EXPECT_EQ(loaded.events()[1].key, 43u);
  std::stringstream a, b;
  trace.save(a);
  loaded.save(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_THROW(ArrivalTrace::load_file(path + ".does-not-exist"),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(ArrivalTrace, SortAndScale) {
  ArrivalTrace trace;
  trace.add(SimTime::seconds(2), 0, 0);
  trace.add(SimTime::seconds(1), 1, 1);
  EXPECT_FALSE(trace.sorted());
  trace.sort();
  EXPECT_TRUE(trace.sorted());
  EXPECT_EQ(trace.events()[0].client, 1u);
  trace.scale_time(0.5);
  EXPECT_EQ(trace.events()[0].at, SimTime::from_millis(500));
  EXPECT_EQ(trace.events()[1].at, SimTime::seconds(1));
  EXPECT_THROW(trace.scale_time(0.0), std::invalid_argument);
  EXPECT_THROW(trace.scale_time(-2.0), std::invalid_argument);
  EXPECT_THROW(trace.scale_time(std::nan("")), std::invalid_argument);
  EXPECT_THROW(trace.scale_time(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(Recorder, ClientPopulationHookCapturesEveryIssue) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  InstantFe fe(s);

  ClientParams p;
  p.num_clients = 20;
  p.think_mean = SimTime::millis(100);
  p.ramp = SimTime::millis(100);
  ClientPopulation clients(s, p, w, {&fe}, log);

  ArrivalTrace trace;
  clients.set_issue_hook([&](SimTime at, const proto::Request& req) {
    trace.add_rich(at, req.client, req.interaction, req.key, req.priority);
  });
  clients.start();
  s.run_until(SimTime::seconds(2));
  EXPECT_EQ(trace.size(), clients.issued());
  EXPECT_TRUE(trace.rich());
  // Recording order is already chronological.
  EXPECT_TRUE(trace.sorted());
}

TEST(Replay, ReproducesTheRecordedMixExactly) {
  // Record a closed-loop run, then replay it open-loop against a fresh
  // instant front-end: same arrival count and identical interaction mix.
  Simulation rec_sim(5);
  RubbosWorkload w;
  metrics::RequestLog rec_log;
  InstantFe rec_fe(rec_sim);
  ClientParams p;
  p.num_clients = 50;
  p.think_mean = SimTime::millis(50);
  p.ramp = SimTime::millis(50);
  ClientPopulation clients(rec_sim, p, w, {&rec_fe}, rec_log);
  ArrivalTrace trace;
  clients.set_issue_hook([&](SimTime at, const proto::Request& req) {
    trace.add(at, req.client, req.interaction);
  });
  clients.start();
  rec_sim.run_until(SimTime::seconds(3));

  std::map<std::uint16_t, int> recorded_mix;
  for (const auto& e : trace.events()) ++recorded_mix[e.interaction];

  Simulation rep_sim(99);  // different seed: only demands differ
  metrics::RequestLog rep_log(SimTime::millis(50), /*keep_records=*/true);
  InstantFe rep_fe(rep_sim);
  TraceReplayer replayer(rep_sim, trace, w, {&rep_fe}, rep_log);
  replayer.start();
  rep_sim.run_until(SimTime::seconds(4));

  EXPECT_EQ(replayer.issued(), trace.size());
  EXPECT_EQ(replayer.completed_ok(), trace.size());
  EXPECT_EQ(replayer.in_flight(), 0u);
  std::map<std::uint16_t, int> replayed_mix;
  for (const auto& r : rep_log.records()) ++replayed_mix[r.interaction];
  EXPECT_EQ(recorded_mix, replayed_mix);
}

TEST(Replay, RichTraceStampsRecordedKeyAndPriority) {
  WorkloadParams wp;
  wp.key_space = 1000;  // the generator would draw its own keys...
  RubbosWorkload w(wp);
  ArrivalTrace trace;
  trace.add_rich(SimTime::millis(1), 0, 3, 777'777, 2);

  Simulation s(1);
  metrics::RequestLog log(SimTime::millis(50), /*keep_records=*/true);
  InstantFe fe(s);
  TraceReplayer replayer(s, trace, w, {&fe}, log);
  replayer.start();
  s.run_until(SimTime::seconds(1));
  // ...but the rich trace's recorded key/priority win.
  EXPECT_EQ(fe.last_key, 777'777u);
  EXPECT_EQ(fe.last_priority, 2);
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].priority, 2);
}

TEST(Replay, EmptyTraceIsANoOp) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  InstantFe fe(s);
  ArrivalTrace trace;
  TraceReplayer replayer(s, trace, w, {&fe}, log);
  replayer.start();
  s.run_until(SimTime::seconds(1));
  EXPECT_EQ(replayer.issued(), 0u);
  EXPECT_EQ(replayer.in_flight(), 0u);
  EXPECT_EQ(log.completed(), 0);
}

TEST(Replay, RejectsUnsortedTraceAndEventsInThePast) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  InstantFe fe(s);

  ArrivalTrace unsorted;
  unsorted.add(SimTime::seconds(2), 0, 0);
  unsorted.add(SimTime::seconds(1), 1, 1);
  EXPECT_THROW(TraceReplayer(s, unsorted, w, {&fe}, log),
               std::invalid_argument);

  ArrivalTrace trace;
  trace.add(SimTime::millis(500), 0, 0);
  s.after(SimTime::seconds(1), [] {});
  s.run_until(SimTime::seconds(1));  // now = 1 s > first arrival
  TraceReplayer late(s, trace, w, {&fe}, log);
  EXPECT_THROW(late.start(), std::logic_error);

  Simulation s2;
  TraceReplayer no_fes_check(s2, trace, w, {&fe}, log);
  no_fes_check.start();
  EXPECT_THROW(no_fes_check.start(), std::logic_error);  // double start
  EXPECT_THROW(TraceReplayer(s2, trace, w, {}, log), std::invalid_argument);
}

TEST(Replay, RetransmitExhaustionCountsAsDropped) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log(SimTime::millis(50), /*keep_records=*/true);
  RefusingFe fe;
  ArrivalTrace trace;
  trace.add(SimTime::millis(1), 0, 0);
  trace.add(SimTime::millis(2), 1, 1);
  ReplayParams params;
  params.retransmit = net::RetransmitSchedule::constant(SimTime::millis(10), 2);
  TraceReplayer replayer(s, trace, w, {&fe}, log, params);
  replayer.start();
  s.run_until(SimTime::seconds(5));
  EXPECT_EQ(replayer.issued(), 2u);
  EXPECT_EQ(replayer.dropped(), 2u);
  EXPECT_EQ(replayer.completed_ok(), 0u);
  EXPECT_EQ(replayer.in_flight(), 0u);
  // initial attempt + 2 retries, per request
  EXPECT_EQ(replayer.connection_drops(), 6u);
  ASSERT_EQ(log.records().size(), 2u);
  for (const auto& r : log.records())
    EXPECT_EQ(r.outcome, metrics::RequestOutcome::kDropped);
}

TEST(Replay, ClientTimeoutAbandonsHungRequests) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log(SimTime::millis(50), /*keep_records=*/true);
  BlackholeFe fe;
  ArrivalTrace trace;
  trace.add(SimTime::millis(1), 0, 0);
  trace.add(SimTime::millis(2), 1, 1);
  ReplayParams params;
  params.client_timeout = SimTime::millis(250);
  TraceReplayer replayer(s, trace, w, {&fe}, log, params);
  replayer.start();
  s.run_until(SimTime::seconds(2));
  EXPECT_EQ(replayer.issued(), 2u);
  EXPECT_EQ(replayer.abandoned(), 2u);
  EXPECT_EQ(replayer.in_flight(), 0u);
  ASSERT_EQ(log.records().size(), 2u);
  for (const auto& r : log.records()) {
    EXPECT_EQ(r.outcome, metrics::RequestOutcome::kDropped);
    // The abandonment is recorded at the moment the client gave up.
    EXPECT_EQ(r.end - r.start, SimTime::millis(250));
  }
}

TEST(Replay, ArrivalsAreStreamedNotQueuedUpFront) {
  // The seed start() dumped every trace event into the queue at t=0; the
  // streaming replayer keeps O(1) pending arrivals regardless of length.
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  InstantFe fe(s);
  ArrivalTrace trace;
  for (int i = 0; i < 50'000; ++i)
    trace.add(SimTime::millis(1 + i), static_cast<std::uint32_t>(i), 0);
  TraceReplayer replayer(s, trace, w, {&fe}, log);
  const std::size_t before = s.events_scheduled();
  replayer.start();
  EXPECT_LE(s.events_scheduled(), before + 1);
}

TEST(Replay, OpenLoopAgainstTheFullTestbed) {
  // Build a synthetic constant-rate trace and run it through the real
  // 4A/4T/1M stack (no millibottlenecks) as a first-class config mode:
  // everything completes quickly and the summary reports open-loop counters.
  auto trace = std::make_shared<ArrivalTrace>();
  sim::Rng mix_rng(3);
  RubbosWorkload w;
  for (int i = 0; i < 20'000; ++i) {
    trace->add(SimTime::from_millis(1 + i * 0.4),  // 2 500 req/s
               static_cast<std::uint32_t>(i % 997),
               static_cast<std::uint16_t>(w.next_interaction(mix_rng, -1)));
  }

  auto cfg = experiment::testing::quick_config(
      lb::PolicyKind::kCurrentLoad, lb::MechanismKind::kNonBlocking,
      /*millibottlenecks=*/false, SimTime::seconds(10));
  cfg.replay_trace = trace;
  cfg.warmup = SimTime::zero();
  experiment::Experiment e(std::move(cfg));
  e.run();

  ASSERT_NE(e.replayer(), nullptr);
  EXPECT_EQ(e.replayer()->issued(), 20'000u);
  EXPECT_GT(e.log().completed(), 19'900);
  EXPECT_LT(e.log().mean_response_ms(), 10.0);
  EXPECT_EQ(e.replayer()->connection_drops(), 0u);
  // The idled closed loop issued nothing.
  EXPECT_EQ(e.clients().issued(), 0u);

  const auto summary = experiment::summarize(e);
  EXPECT_TRUE(summary.open_loop);
  EXPECT_EQ(summary.trace_arrivals, 20'000u);
  EXPECT_EQ(summary.replay_abandoned, 0u);
  EXPECT_GT(summary.offered_rps, 1900.0);
}

TEST(Replay, ExperimentModeIsByteDeterministic) {
  auto trace = std::make_shared<ArrivalTrace>();
  sim::Rng mix_rng(7);
  RubbosWorkload w;
  for (int i = 0; i < 2'000; ++i)
    trace->add(SimTime::from_millis(1 + i * 2.0),
               static_cast<std::uint32_t>(i % 311),
               static_cast<std::uint16_t>(w.next_interaction(mix_rng, -1)));

  auto make = [&] {
    auto cfg = experiment::testing::quick_config(
        lb::PolicyKind::kTotalRequest, lb::MechanismKind::kBlocking,
        /*millibottlenecks=*/true, SimTime::seconds(6));
    cfg.replay_trace = trace;
    cfg.replay_client_timeout = SimTime::seconds(8);
    experiment::Experiment e(std::move(cfg));
    e.run();
    return experiment::summarize(e).to_json_string();
  };
  EXPECT_EQ(make(), make());
}

}  // namespace
}  // namespace ntier::workload
