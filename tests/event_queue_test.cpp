#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ntier::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::millis(30), [&] { order.push_back(3); });
  q.push(SimTime::millis(10), [&] { order.push_back(1); });
  q.push(SimTime::millis(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.push(SimTime::millis(5), [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReflectsEarliestLiveEvent) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), SimTime::max());
  const EventId early = q.push(SimTime::millis(1), [] {});
  q.push(SimTime::millis(2), [] {});
  EXPECT_EQ(q.next_time(), SimTime::millis(1));
  EXPECT_TRUE(q.cancel(early));
  EXPECT_EQ(q.next_time(), SimTime::millis(2));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.push(SimTime::millis(1), [&] { ++fired; });
  q.push(SimTime::millis(2), [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  const EventId id = q.push(SimTime::millis(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double cancel

  const EventId id2 = q.push(SimTime::millis(1), [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id2));  // already fired
  EXPECT_FALSE(q.cancel(999999));  // never existed
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(SimTime::millis(1), [] {});
  q.push(SimTime::millis(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyInterleavedCancellations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i)
    ids.push_back(q.push(SimTime::micros(i), [] {}));
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  std::size_t fired = 0;
  while (!q.empty()) {
    q.pop();
    ++fired;
  }
  EXPECT_EQ(fired, 500u);
}

}  // namespace
}  // namespace ntier::sim
