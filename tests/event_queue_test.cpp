#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

namespace ntier::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::millis(30), [&] { order.push_back(3); });
  q.push(SimTime::millis(10), [&] { order.push_back(1); });
  q.push(SimTime::millis(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.push(SimTime::millis(5), [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReflectsEarliestLiveEvent) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), SimTime::max());
  const EventId early = q.push(SimTime::millis(1), [] {});
  q.push(SimTime::millis(2), [] {});
  EXPECT_EQ(q.next_time(), SimTime::millis(1));
  EXPECT_TRUE(q.cancel(early));
  EXPECT_EQ(q.next_time(), SimTime::millis(2));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.push(SimTime::millis(1), [&] { ++fired; });
  q.push(SimTime::millis(2), [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  const EventId id = q.push(SimTime::millis(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double cancel

  const EventId id2 = q.push(SimTime::millis(1), [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id2));  // already fired
  EXPECT_FALSE(q.cancel(999999));  // never existed
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(SimTime::millis(1), [] {});
  q.push(SimTime::millis(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyInterleavedCancellations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i)
    ids.push_back(q.push(SimTime::micros(i), [] {}));
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  std::size_t fired = 0;
  while (!q.empty()) {
    q.pop();
    ++fired;
  }
  EXPECT_EQ(fired, 500u);
}

TEST(EventQueue, StaleIdCannotCancelSlotReuse) {
  // After an event fires (or is cancelled) its id must never resolve again,
  // even when the internal slot is reused by a later push.
  EventQueue q;
  const EventId old1 = q.push(SimTime::millis(1), [] {});
  const EventId old2 = q.push(SimTime::millis(2), [] {});
  q.pop().fn();               // fires old1, releasing its slot
  EXPECT_TRUE(q.cancel(old2));  // releases old2's slot too
  int fired = 0;
  std::vector<EventId> fresh;
  for (int i = 0; i < 4; ++i)
    fresh.push_back(q.push(SimTime::millis(10 + i), [&] { ++fired; }));
  // The stale ids must not touch the reused slots' new occupants.
  EXPECT_FALSE(q.cancel(old1));
  EXPECT_FALSE(q.cancel(old2));
  EXPECT_EQ(q.size(), 4u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 4);
  for (EventId id : fresh) EXPECT_FALSE(q.cancel(id));  // all fired
}

TEST(EventQueue, FifoTieOrderSurvivesCancellations) {
  // Cancel every other simultaneous event; the survivors must still fire in
  // their original scheduling order.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(q.push(SimTime::millis(7), [&order, i] { order.push_back(i); }));
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 0; i + 1 < order.size(); ++i)
    EXPECT_LT(order[i], order[i + 1]);
  for (std::size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(order[i], static_cast<int>(2 * i + 1));
}

TEST(EventQueue, CancelledBacklogDrainsToEmpty) {
  // Cancelling everything must leave the queue observably empty and
  // next_time() at max, with no dead nodes resurfacing on later pushes.
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 5000; ++i)
    ids.push_back(q.push(SimTime::micros(i % 50), [] {}));
  for (EventId id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), SimTime::max());
  int fired = 0;
  q.push(SimTime::millis(1), [&] { ++fired; });
  EXPECT_EQ(q.next_time(), SimTime::millis(1));
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RandomInterleavingMatchesReferenceModel) {
  // Drive push/cancel/pop at scale against a std::multimap reference and
  // require identical fire sequences — the heap + generation-slot machinery
  // must be observationally equivalent to the obvious implementation.
  EventQueue q;
  std::multimap<std::pair<std::int64_t, std::uint64_t>, int> ref;  // (t, seq)
  std::map<EventId, decltype(ref)::iterator> live;
  std::mt19937_64 rnd(2024);
  std::vector<int> got, want;
  std::uint64_t seq = 0;
  int payload = 0;
  for (int step = 0; step < 200'000; ++step) {
    const auto roll = rnd() % 100;
    if (roll < 55 || q.empty()) {
      const auto t = static_cast<std::int64_t>(rnd() % 1000);
      const int p = payload++;
      const EventId id = q.push(SimTime::micros(t), [&got, p] { got.push_back(p); });
      live.emplace(id, ref.emplace(std::make_pair(t, seq++), p));
    } else if (roll < 75 && !live.empty()) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rnd() % live.size()));
      EXPECT_TRUE(q.cancel(it->first));
      EXPECT_FALSE(q.cancel(it->first));  // idempotent
      ref.erase(it->second);
      live.erase(it);
    } else {
      ASSERT_FALSE(ref.empty());
      EXPECT_EQ(q.next_time(), SimTime::micros(ref.begin()->first.first));
      auto fired = q.pop();
      fired.fn();
      want.push_back(ref.begin()->second);
      // The popped event is no longer cancellable.
      live.erase(live.find([&] {
        for (const auto& [id, rit] : live)
          if (rit == ref.begin()) return id;
        return kInvalidEventId;
      }()));
      ref.erase(ref.begin());
      ASSERT_EQ(got.size(), want.size());
      EXPECT_EQ(got.back(), want.back());
    }
    EXPECT_EQ(q.size(), ref.size());
  }
  while (!q.empty()) {
    auto fired = q.pop();
    fired.fn();
    want.push_back(ref.begin()->second);
    ref.erase(ref.begin());
  }
  EXPECT_EQ(got, want);
}

TEST(EventQueue, TotalScheduledCountsEveryPush) {
  EventQueue q;
  EXPECT_EQ(q.total_scheduled(), 0u);
  const EventId a = q.push(SimTime::millis(1), [] {});
  q.push(SimTime::millis(2), [] {});
  q.cancel(a);
  q.pop();
  q.push(SimTime::millis(3), [] {});
  EXPECT_EQ(q.total_scheduled(), 3u);  // cancels/pops don't rewind it
}

}  // namespace
}  // namespace ntier::sim
