#include "lb/health.h"

#include <gtest/gtest.h>

#include "experiment/chaos.h"
#include "experiment/experiment.h"
#include "lb/load_balancer.h"
#include "lb/retry.h"
#include "millib/fault_plan.h"
#include "sim/simulation.h"

namespace ntier::lb {
namespace {

using sim::SimTime;
using sim::Simulation;

proto::RequestPtr make_req(std::uint64_t id = 1) {
  auto r = std::make_shared<proto::Request>();
  r->id = id;
  r->request_bytes = 400;
  r->response_bytes = 1600;
  return r;
}

BalancerConfig breaker_config() {
  BalancerConfig cfg;
  cfg.breaker.enabled = true;
  cfg.breaker.ewma_alpha = 0.5;
  cfg.breaker.trip_threshold = 0.5;
  cfg.breaker.open_duration = SimTime::millis(500);
  cfg.breaker.half_open_trials = 2;
  return cfg;
}

std::unique_ptr<LoadBalancer> make_lb(Simulation& s, BalancerConfig cfg = {}) {
  return std::make_unique<LoadBalancer>(
      s, 4, make_policy(PolicyKind::kTotalRequest),
      make_acquirer(MechanismKind::kNonBlocking), cfg);
}

TEST(Breaker, ProbeOutcomesDriveHealthEwma) {
  Simulation s;
  auto lb = make_lb(s);  // breaker disabled: health still tracked
  EXPECT_DOUBLE_EQ(lb->record(0).health, 1.0);
  lb->report_probe(0, false, SimTime::millis(5));
  EXPECT_NEAR(lb->record(0).health, 0.7, 1e-9);  // default alpha 0.3
  lb->report_probe(0, true, SimTime::millis(2));
  EXPECT_NEAR(lb->record(0).health, 0.79, 1e-9);
  EXPECT_EQ(lb->record(0).probes, 2u);
  EXPECT_EQ(lb->record(0).probe_failures, 1u);
  EXPECT_DOUBLE_EQ(lb->record(0).probe_rtt_ms, 2.0);
  // Disabled breaker never trips, however low health goes.
  for (int i = 0; i < 20; ++i) lb->report_probe(0, false, SimTime::millis(5));
  EXPECT_FALSE(lb->record(0).breaker_open);
}

TEST(Breaker, TripsWorkerOutOfRotationOnProbeEvidence) {
  Simulation s;
  auto lb = make_lb(s, breaker_config());
  // alpha .5: two failed probes bring health to .25 < .5 -> trip.
  lb->report_probe(0, false, SimTime::millis(30));
  EXPECT_FALSE(lb->record(0).breaker_open);
  lb->report_probe(0, false, SimTime::millis(30));
  EXPECT_TRUE(lb->record(0).breaker_open);
  EXPECT_EQ(lb->breaker_trips(), 1u);
  // The tripped worker is skipped even though its mod_jk state is Available
  // and its pool has free endpoints.
  EXPECT_EQ(lb->record(0).state, WorkerState::kAvailable);
  for (int i = 0; i < 8; ++i) {
    auto req = make_req(static_cast<std::uint64_t>(i));
    lb->assign(req, [&, req](int idx) {
      ASSERT_GT(idx, 0);
      lb->on_response(idx, req);
    });
  }
}

TEST(Breaker, HalfOpenReadmissionAfterOpenDuration) {
  Simulation s;
  auto lb = make_lb(s, breaker_config());
  lb->report_probe(0, false, SimTime::millis(30));
  lb->report_probe(0, false, SimTime::millis(30));
  ASSERT_TRUE(lb->record(0).breaker_open);

  // A successful probe before open_duration elapses does not re-admit.
  s.after(SimTime::millis(100), [&] {
    lb->report_probe(0, true, SimTime::millis(1));
    EXPECT_TRUE(lb->record(0).breaker_open);
  });
  // After open_duration, a successful probe moves the worker to half-open
  // with trial requests, and it is assignable again.
  s.after(SimTime::millis(600), [&] {
    lb->report_probe(0, true, SimTime::millis(1));
    EXPECT_FALSE(lb->record(0).breaker_open);
    EXPECT_EQ(lb->record(0).half_open_left, 2);
    auto req = make_req();
    lb->assign(req, [&, req](int idx) {
      EXPECT_EQ(idx, 0);
      lb->on_response(idx, req);
    });
    EXPECT_EQ(lb->record(0).half_open_left, 1);
  });
  s.run();
  EXPECT_EQ(lb->breaker_trips(), 1u);
}

TEST(Breaker, FailedProbeWhileOpenExtendsTheOpenWindow) {
  Simulation s;
  auto lb = make_lb(s, breaker_config());
  lb->report_probe(0, false, SimTime::millis(30));
  lb->report_probe(0, false, SimTime::millis(30));
  ASSERT_TRUE(lb->record(0).breaker_open);
  // A failure at 400 ms pushes breaker_until to 900 ms, so a success at
  // 600 ms (past the original 500 ms window) must not re-admit yet.
  s.after(SimTime::millis(400), [&] {
    lb->report_probe(0, false, SimTime::millis(30));
  });
  s.after(SimTime::millis(600), [&] {
    lb->report_probe(0, true, SimTime::millis(1));
    EXPECT_TRUE(lb->record(0).breaker_open);
  });
  s.after(SimTime::millis(950), [&] {
    lb->report_probe(0, true, SimTime::millis(1));
    EXPECT_FALSE(lb->record(0).breaker_open);
  });
  s.run();
}

TEST(Breaker, FailureDuringHalfOpenReopensImmediately) {
  Simulation s;
  auto lb = make_lb(s, breaker_config());
  lb->report_probe(0, false, SimTime::millis(30));
  lb->report_probe(0, false, SimTime::millis(30));
  s.after(SimTime::millis(600), [&] {
    lb->report_probe(0, true, SimTime::millis(1));
    ASSERT_FALSE(lb->record(0).breaker_open);
    ASSERT_GT(lb->record(0).half_open_left, 0);
    // The trial request's backend refuses: straight back to open.
    lb->report_failure(0);
    EXPECT_TRUE(lb->record(0).breaker_open);
    EXPECT_EQ(lb->record(0).half_open_left, 0);
  });
  s.run();
  EXPECT_EQ(lb->breaker_trips(), 2u);
}

TEST(HealthProber, ProbesEveryWorkerAndTimesOutSilentOnes) {
  Simulation s;
  auto lb = make_lb(s, breaker_config());
  ProberConfig pc;
  pc.enabled = true;
  pc.interval = SimTime::millis(100);
  pc.timeout = SimTime::millis(30);
  // Worker 0 never answers; the rest answer in 1 ms.
  HealthProber prober(
      s, *lb,
      [&s](int worker, std::function<void(bool)> done) {
        if (worker == 0) return;  // silent — the prober's timeout must cover it
        s.after(SimTime::millis(1), [done = std::move(done)] { done(true); });
      },
      pc);
  s.run_until(SimTime::seconds(1));
  EXPECT_GT(prober.probes_sent(), 30u);   // 4 workers, ~10 rounds
  EXPECT_GE(prober.probes_timed_out(), 5u);
  EXPECT_GT(lb->record(0).probe_failures, 0u);
  EXPECT_EQ(lb->record(1).probe_failures, 0u);
  EXPECT_LT(lb->record(0).health, 0.1);
  EXPECT_GT(lb->record(1).health, 0.9);
  EXPECT_TRUE(lb->record(0).breaker_open);
  EXPECT_FALSE(lb->record(1).breaker_open);
}

TEST(RetryBudget, TokenBucketDepositAndDenial) {
  RetryBudget budget(0.5, 2.0);
  EXPECT_TRUE(budget.try_take());   // 2 -> 1
  EXPECT_TRUE(budget.try_take());   // 1 -> 0
  EXPECT_FALSE(budget.try_take());  // dry
  EXPECT_EQ(budget.taken(), 2u);
  EXPECT_EQ(budget.denied(), 1u);
  budget.deposit();
  EXPECT_FALSE(budget.try_take());  // 0.5 token is not a whole retry
  budget.deposit();
  EXPECT_TRUE(budget.try_take());
  for (int i = 0; i < 100; ++i) budget.deposit();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);  // capped at burst
}

// Satellite: sustained 100% failure must not turn into a retry storm. With
// ratio r, every arrival deposits r tokens and each retry costs one, so the
// steady-state retry rate is bounded by r * arrival rate no matter how long
// the outage lasts (plus the one-time burst allowance).
TEST(RetryBudget, SustainedTotalFailureClampsRetryStorm) {
  const double ratio = 0.2;
  const double burst = 20.0;
  RetryBudget budget(ratio, burst);
  const int arrivals = 10'000;
  std::uint64_t retries = 0;
  for (int i = 0; i < arrivals; ++i) {
    budget.deposit();            // the request arrives...
    if (budget.try_take()) ++retries;  // ...fails, and asks for a retry
  }
  // Bounded by ratio * arrivals + the initial burst, not by arrivals.
  EXPECT_LE(retries, static_cast<std::uint64_t>(ratio * arrivals + burst));
  EXPECT_GE(retries, static_cast<std::uint64_t>(ratio * arrivals * 0.9));
  EXPECT_EQ(budget.taken(), retries);
  EXPECT_EQ(budget.denied(), static_cast<std::uint64_t>(arrivals) - retries);
  // The bucket ends dry: each surviving token is immediately spent.
  EXPECT_LT(budget.tokens(), 1.0);
}

TEST(RetryConfig, BackoffDoublesAndCaps) {
  RetryConfig rc;
  rc.base_backoff = SimTime::millis(20);
  rc.max_backoff = SimTime::millis(100);
  EXPECT_EQ(rc.backoff(0), SimTime::millis(20));
  EXPECT_EQ(rc.backoff(1), SimTime::millis(40));
  EXPECT_EQ(rc.backoff(2), SimTime::millis(80));
  EXPECT_EQ(rc.backoff(3), SimTime::millis(100));
  EXPECT_EQ(rc.backoff(9), SimTime::millis(100));
}

// End-to-end: a backend crash under the stock blocking mechanism surfaces as
// client-visible errors; the resilience layer (prober + breaker + budgeted
// retries) absorbs the same crash.
TEST(Resilience, CrashRecoveryBeatsStockBlocking) {
  using experiment::ExperimentConfig;
  auto base = [] {
    ExperimentConfig c;
    c.label = "resilience_crash";
    c.num_apaches = 1;
    c.num_tomcats = 2;
    c.num_clients = 200;
    c.think_mean = SimTime::millis(200);
    c.warmup = SimTime::millis(500);
    c.tomcat_millibottlenecks = false;
    c.tracing = false;
    millib::FaultSpec crash;
    crash.kind = millib::FaultKind::kCrash;
    crash.worker = 0;
    crash.start = SimTime::seconds(2);
    crash.duration = SimTime::seconds(2);
    c.fault_plan = millib::FaultPlan::single(crash);
    return c;
  };

  auto stock = experiment::run_chaos(base(), SimTime::seconds(8),
                                     SimTime::seconds(6));
  auto resilient_cfg = base();
  resilient_cfg.enable_resilience();
  auto resilient = experiment::run_chaos(std::move(resilient_cfg),
                                         SimTime::seconds(8),
                                         SimTime::seconds(6));

  // Both runs stay safe...
  EXPECT_TRUE(stock.invariants.ok()) << stock.invariants.to_string();
  EXPECT_TRUE(resilient.invariants.ok()) << resilient.invariants.to_string();
  // ...but only the stock mechanism exposes the crash to clients.
  EXPECT_GT(stock.invariants.failed, 0u);
  EXPECT_LT(resilient.invariants.failed, stock.invariants.failed);
  EXPECT_GT(resilient.probes_sent, 0u);
  EXPECT_GE(resilient.breaker_trips, 1u);
  EXPECT_GT(resilient.retries, 0u);
  EXPECT_GT(resilient.retry_successes, 0u);
}

// Flap regression: a worker that passes its probes, gets re-admitted, and
// immediately fails on the data path again (the gray-failure signature) must
// not oscillate at the open_duration cadence — each flap doubles the dwell.
TEST(Breaker, FlapEscalatesOpenDwellExponentially) {
  Simulation s;
  auto lb = make_lb(s, breaker_config());  // open 500 ms, 2 half-open trials
  lb->report_probe(0, false, SimTime::millis(30));
  lb->report_probe(0, false, SimTime::millis(30));
  ASSERT_TRUE(lb->record(0).breaker_open);  // first trip: base dwell

  // Readmitted at 600 ms, fails its trial => flap #1, dwell 1000 ms.
  s.after(SimTime::millis(600), [&] {
    lb->report_probe(0, true, SimTime::millis(1));
    ASSERT_FALSE(lb->record(0).breaker_open);
    lb->report_failure(0);
    EXPECT_TRUE(lb->record(0).breaker_open);
    EXPECT_EQ(lb->record(0).breaker_flaps, 1u);
  });
  // 600 ms after the re-trip — past the BASE dwell — a good probe must NOT
  // re-admit: the escalated dwell runs to 1600 ms.
  s.after(SimTime::millis(1200), [&] {
    lb->report_probe(0, true, SimTime::millis(1));
    EXPECT_TRUE(lb->record(0).breaker_open);
  });
  // Readmitted after the doubled dwell, flaps again => dwell 2000 ms.
  s.after(SimTime::millis(1700), [&] {
    lb->report_probe(0, true, SimTime::millis(1));
    ASSERT_FALSE(lb->record(0).breaker_open);
    lb->report_failure(0);
    EXPECT_TRUE(lb->record(0).breaker_open);
    EXPECT_EQ(lb->record(0).breaker_flaps, 2u);
  });
  s.after(SimTime::millis(2500), [&] {  // 2500 < 1700 + 2000: still out
    lb->report_probe(0, true, SimTime::millis(1));
    EXPECT_TRUE(lb->record(0).breaker_open);
  });
  // The recovery step-down force-closes the breaker and clears the streak.
  s.after(SimTime::millis(2600), [&] {
    EXPECT_EQ(lb->reset_breakers(), 1);
    EXPECT_FALSE(lb->record(0).breaker_open);
  });
  // A fresh trip after the flap window has lapsed starts at the base dwell
  // again (the escalation is hysteresis, not a permanent penalty).
  s.after(SimTime::millis(5000), [&] {
    lb->report_probe(0, false, SimTime::millis(30));
    lb->report_probe(0, false, SimTime::millis(30));
    EXPECT_TRUE(lb->record(0).breaker_open);
    EXPECT_EQ(lb->record(0).breaker_flaps, 2u);  // unchanged: not a flap
  });
  s.after(SimTime::millis(5600), [&] {
    lb->report_probe(0, true, SimTime::millis(1));
    EXPECT_FALSE(lb->record(0).breaker_open);  // base 500 ms dwell elapsed
  });
  s.run();
  EXPECT_EQ(lb->breaker_trips(), 4u);
}

}  // namespace
}  // namespace ntier::lb
