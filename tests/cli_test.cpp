#include "cli/cli.h"

#include <gtest/gtest.h>

#include "cache/config.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ntier::cli {
namespace {

ParseResult parse(std::initializer_list<std::string> args) {
  return parse_cli(std::vector<std::string>(args));
}

TEST(Cli, DefaultsAreTheScaledPreset) {
  const auto r = parse({});
  ASSERT_TRUE(r.ok());
  const auto& c = r.options->config;
  EXPECT_EQ(c.num_clients, 7'000);
  EXPECT_EQ(c.num_apaches, 4);
  EXPECT_EQ(c.policy, lb::PolicyKind::kTotalRequest);
  EXPECT_EQ(c.mechanism, lb::MechanismKind::kBlocking);
  EXPECT_TRUE(c.tomcat_millibottlenecks);
  EXPECT_FALSE(r.options->quiet);
}

TEST(Cli, ParsesPolicyAndMechanism) {
  const auto r = parse({"--policy", "current_load", "--mechanism", "modified"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.options->config.policy, lb::PolicyKind::kCurrentLoad);
  EXPECT_EQ(r.options->config.mechanism, lb::MechanismKind::kNonBlocking);
}

TEST(Cli, ParsesEveryPolicyName) {
  for (const char* name : {"total_request", "total_traffic", "current_load",
                           "round_robin", "random", "two_choices"}) {
    const auto r = parse({"--policy", name});
    EXPECT_TRUE(r.ok()) << name;
  }
}

TEST(Cli, ParsesScaleFlags) {
  const auto r = parse({"--clients", "1000", "--think-ms", "100",
                        "--duration-s", "12.5", "--seed", "9", "--tomcats",
                        "8", "--mysql", "2"});
  ASSERT_TRUE(r.ok());
  const auto& c = r.options->config;
  EXPECT_EQ(c.num_clients, 1000);
  EXPECT_EQ(c.think_mean, sim::SimTime::millis(100));
  EXPECT_EQ(c.duration, sim::SimTime::from_seconds(12.5));
  EXPECT_EQ(c.seed, 9u);
  EXPECT_EQ(c.num_tomcats, 8);
  EXPECT_EQ(c.num_mysql, 2);
}

TEST(Cli, FullExpandsToPaperScale) {
  const auto r = parse({"--full"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.options->config.num_clients, 70'000);
  EXPECT_EQ(r.options->config.duration, sim::SimTime::seconds(180));
}

TEST(Cli, EnvironmentFlags) {
  const auto r = parse({"--no-millibottlenecks", "--sticky", "--bursty", "6",
                        "--mix", "browse_only", "--stall-source", "gc"});
  ASSERT_TRUE(r.ok());
  const auto& c = r.options->config;
  EXPECT_FALSE(c.tomcat_millibottlenecks);
  EXPECT_TRUE(c.sticky_sessions);
  EXPECT_TRUE(c.bursty_workload);
  EXPECT_DOUBLE_EQ(c.burst_multiplier, 6.0);
  EXPECT_EQ(c.workload.mix, workload::Mix::kBrowseOnly);
  EXPECT_EQ(c.tomcat_stall_source, experiment::StallSource::kGcPause);
}

TEST(Cli, OverloadFlagsParse) {
  const auto r = parse({"--overload", "full", "--deadline-ms", "500",
                        "--priority-mix", "rubbos"});
  ASSERT_TRUE(r.ok()) << r.error;
  const auto& ov = r.options->config.overload;
  EXPECT_EQ(ov.mode, control::OverloadMode::kFull);
  EXPECT_TRUE(ov.deadlines && ov.admission && ov.codel && ov.brownout);
  EXPECT_TRUE(ov.stamp_deadlines);
  EXPECT_EQ(ov.deadline_budget, sim::SimTime::millis(500));
  EXPECT_EQ(r.options->config.workload.priority_mix,
            workload::PriorityMix::kRubbos);
}

TEST(Cli, OverloadModeAloneDefaultsBudgetToOneSecond) {
  const auto r = parse({"--overload", "deadline"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.options->config.overload.mode, control::OverloadMode::kDeadline);
  EXPECT_EQ(r.options->config.overload.deadline_budget, sim::SimTime::seconds(1));
}

TEST(Cli, RejectsUnknownOverloadMode) {
  const auto r = parse({"--overload", "everything"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("unknown overload mode: everything"),
            std::string::npos);
  EXPECT_NE(r.error.find("none|deadline|admission|codel|full"),
            std::string::npos);
}

TEST(Cli, RejectsNonPositiveDeadline) {
  const auto r = parse({"--overload", "deadline", "--deadline-ms", "0"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("bad --deadline-ms"), std::string::npos);
}

TEST(Cli, RejectsDeadlineWithoutEnforcingMode) {
  // --deadline-ms without any mode, and with a mode that ignores deadlines.
  for (auto args : {std::vector<std::string>{"--deadline-ms", "500"},
                    std::vector<std::string>{"--overload", "admission",
                                             "--deadline-ms", "500"}}) {
    const auto r = parse_cli(args);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(
        r.error.find("--deadline-ms requires --overload deadline or "
                     "--overload full"),
        std::string::npos)
        << r.error;
  }
}

TEST(Cli, RejectsPriorityMixWithoutAdmission) {
  for (auto args :
       {std::vector<std::string>{"--priority-mix", "rubbos"},
        std::vector<std::string>{"--overload", "deadline", "--priority-mix",
                                 "rubbos"}}) {
    const auto r = parse_cli(args);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find(
                  "--priority-mix rubbos requires --overload admission"),
              std::string::npos)
        << r.error;
  }
}

TEST(Cli, RejectsUnknownPriorityMix) {
  const auto r = parse({"--overload", "admission", "--priority-mix", "fifo"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("unknown priority mix: fifo"), std::string::npos);
}

TEST(Cli, OutputFlags) {
  const auto r = parse({"--json", "/tmp/x.json", "--csv", "/tmp/d", "--quiet"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.options->json_path, "/tmp/x.json");
  EXPECT_EQ(r.options->csv_dir, "/tmp/d");
  EXPECT_TRUE(r.options->quiet);
}

TEST(Cli, HelpFlag) {
  const auto r = parse({"--help"});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.options->help);
  EXPECT_NE(usage_text().find("--policy"), std::string::npos);
}

TEST(Cli, RejectsUnknownFlag) {
  const auto r = parse({"--frobnicate"});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("unknown flag"), std::string::npos);
}

TEST(Cli, RejectsBadValues) {
  EXPECT_FALSE(parse({"--clients", "zero"}).ok());
  EXPECT_FALSE(parse({"--clients", "-5"}).ok());
  EXPECT_FALSE(parse({"--think-ms"}).ok());           // missing value
  EXPECT_FALSE(parse({"--policy", "bogus"}).ok());
  EXPECT_FALSE(parse({"--mechanism", "bogus"}).ok());
  EXPECT_FALSE(parse({"--stall-source", "cosmic_rays"}).ok());
  EXPECT_FALSE(parse({"--bursty", "0.5"}).ok());
  EXPECT_FALSE(parse({"--mix", "chaos"}).ok());
  EXPECT_FALSE(parse({"--duration-s", "12abc"}).ok());
}

TEST(Cli, DbRouterFlags) {
  const auto r = parse({"--db-policy", "current_load", "--db-mechanism",
                        "modified"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.options->config.db_router.policy, lb::PolicyKind::kCurrentLoad);
  EXPECT_EQ(r.options->config.db_router.mechanism,
            lb::MechanismKind::kNonBlocking);
}

TEST(Cli, KvTierFlagsParseAndRoundTrip) {
  const auto r = parse({"--db-tier", "kv", "--kv", "replicas=5,n=3,r=2,w=2",
                        "--zipf-s", "1.1", "--key-space", "5000",
                        "--kv-millibottlenecks"});
  ASSERT_TRUE(r.ok()) << r.error;
  const auto& c = r.options->config;
  EXPECT_EQ(c.db_tier, server::DbTier::kKv);
  EXPECT_EQ(c.kv.replicas, 5);
  EXPECT_EQ(c.kv.n, 3);
  EXPECT_EQ(c.kv.r, 2);
  EXPECT_EQ(c.kv.w, 2);
  // The parsed config round-trips through its canonical rendering.
  std::string err;
  const auto again = kv::kv_config_from_string(c.kv.to_string(), &err);
  ASSERT_TRUE(again.has_value()) << err;
  EXPECT_EQ(again->to_string(), c.kv.to_string());
  EXPECT_DOUBLE_EQ(c.workload.zipf_s, 1.1);
  EXPECT_EQ(c.workload.key_space, 5'000u);
  EXPECT_TRUE(c.kv_millibottlenecks);
}

TEST(Cli, DbTierParsesBothNames) {
  EXPECT_EQ(parse({"--db-tier", "mysql"}).options->config.db_tier,
            server::DbTier::kMysql);
  EXPECT_EQ(parse({"--db-tier", "kv"}).options->config.db_tier,
            server::DbTier::kKv);
}

TEST(Cli, RejectsUnknownDbTier) {
  const auto r = parse({"--db-tier", "postgres"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("unknown db tier: postgres"), std::string::npos);
  EXPECT_NE(r.error.find("expected mysql|kv"), std::string::npos);
}

TEST(Cli, RejectsBadKvConfig) {
  // The quorum-geometry reason surfaces through the CLI error verbatim.
  const auto r = parse({"--db-tier", "kv", "--kv", "n=3,r=1,w=1"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("bad --kv:"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("r+w must exceed n"), std::string::npos) << r.error;
  EXPECT_FALSE(parse({"--db-tier", "kv", "--kv", "bogus=1"}).ok());
  EXPECT_FALSE(parse({"--db-tier", "kv", "--zipf-s", "-1"}).ok());
  EXPECT_FALSE(parse({"--db-tier", "kv", "--key-space", "0"}).ok());
}

TEST(Cli, RejectsKvFlagsWithoutKvTier) {
  for (auto args : {std::vector<std::string>{"--zipf-s", "1.0"},
                    std::vector<std::string>{"--key-space", "1000"},
                    std::vector<std::string>{"--kv", "replicas=5"},
                    std::vector<std::string>{"--kv-millibottlenecks"}}) {
    const auto r = parse_cli(args);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("require --db-tier kv"), std::string::npos)
        << r.error;
  }
}

TEST(Cli, RunCliKvSmoke) {
  auto r = parse({"--db-tier", "kv", "--clients", "200", "--think-ms", "100",
                  "--duration-s", "1", "--quiet", "--no-millibottlenecks"});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(run_cli(*r.options), 0);
}

TEST(Cli, CacheTierFlagsParseAndRoundTrip) {
  const auto r = parse({"--db-tier", "kv", "--cache-tier", "--cache",
                        "nodes=3,entry=1024,inval_queue=256", "--cache-bytes",
                        "1048576", "--cache-ttl-ms", "2500",
                        "--cache-coalesce", "off"});
  ASSERT_TRUE(r.ok()) << r.error;
  const auto& c = r.options->config;
  EXPECT_TRUE(c.cache_tier);
  EXPECT_EQ(c.cache.nodes, 3);
  EXPECT_EQ(c.cache.bytes, 1'048'576u);
  EXPECT_EQ(c.cache.entry_bytes, 1'024u);
  EXPECT_EQ(c.cache.ttl, sim::SimTime::millis(2500));
  EXPECT_EQ(c.cache.invalidation_queue_capacity, 256u);
  EXPECT_FALSE(c.cache.coalesce);
  // The parsed config round-trips through its canonical rendering.
  std::string err;
  const auto again = cache::cache_config_from_string(c.cache.to_string(), &err);
  ASSERT_TRUE(again.has_value()) << err;
  EXPECT_EQ(again->to_string(), c.cache.to_string());
}

TEST(Cli, RejectsCacheTierWithoutKvTier) {
  const auto r = parse({"--cache-tier"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("--cache-tier requires --db-tier kv"),
            std::string::npos)
      << r.error;
  EXPECT_FALSE(parse({"--db-tier", "mysql", "--cache-tier"}).ok());
}

TEST(Cli, RejectsCacheFlagsWithoutCacheTier) {
  for (auto args :
       {std::vector<std::string>{"--cache", "nodes=2"},
        std::vector<std::string>{"--cache-bytes", "1048576"},
        std::vector<std::string>{"--cache-ttl-ms", "500"},
        std::vector<std::string>{"--cache-coalesce", "on"}}) {
    const auto r = parse_cli(args);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("require --cache-tier"), std::string::npos)
        << r.error;
  }
}

TEST(Cli, RejectsBadCacheConfig) {
  const auto r = parse({"--db-tier", "kv", "--cache-tier", "--cache",
                        "bogus=1"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("bad --cache:"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("unknown key"), std::string::npos) << r.error;
  // The geometry reason surfaces through the CLI error verbatim.
  const auto tiny = parse({"--db-tier", "kv", "--cache-tier", "--cache-bytes",
                           "16"});
  ASSERT_FALSE(tiny.ok());
  EXPECT_NE(tiny.error.find("cannot hold a single entry"), std::string::npos)
      << tiny.error;
  EXPECT_FALSE(parse({"--db-tier", "kv", "--cache-tier", "--cache-bytes",
                      "0"}).ok());
  EXPECT_FALSE(parse({"--db-tier", "kv", "--cache-tier", "--cache-ttl-ms",
                      "0"}).ok());
  const auto coalesce = parse({"--db-tier", "kv", "--cache-tier",
                               "--cache-coalesce", "maybe"});
  ASSERT_FALSE(coalesce.ok());
  EXPECT_NE(coalesce.error.find("expected on|off"), std::string::npos)
      << coalesce.error;
}

TEST(Cli, RunCliCacheSmoke) {
  auto r = parse({"--db-tier", "kv", "--cache-tier", "--clients", "200",
                  "--think-ms", "100", "--duration-s", "1", "--quiet",
                  "--no-millibottlenecks"});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(run_cli(*r.options), 0);
}

TEST(Cli, RunCliSmoke) {
  // A tiny end-to-end run through the CLI surface: 200 clients, 1 s.
  auto r = parse({"--clients", "200", "--think-ms", "100", "--duration-s", "1",
                  "--quiet", "--no-millibottlenecks"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(run_cli(*r.options), 0);
}

TEST(Cli, TraceFlags) {
  const auto rec = parse({"--record-trace", "/tmp/a.csv"});
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.options->record_trace_path, "/tmp/a.csv");
  const auto rep = parse({"--replay-trace", "/tmp/b.csv"});
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.options->replay_trace_path, "/tmp/b.csv");
  EXPECT_FALSE(parse({"--record-trace"}).ok());
  // Recording while replaying is rejected: the closed loop is idle during
  // replay, so there is nothing new to record.
  const auto both = parse({"--record-trace", "/tmp/a.csv", "--replay-trace",
                           "/tmp/b.csv"});
  ASSERT_FALSE(both.ok());
  EXPECT_NE(both.error.find("cannot be combined with a replay source"),
            std::string::npos)
      << both.error;
}

TEST(Cli, ParseDoubleIsStrict) {
  // from_chars semantics: no trailing garbage, no locale surprises.
  EXPECT_FALSE(parse({"--duration-s", "12abc"}).ok());
  EXPECT_FALSE(parse({"--duration-s", "1,5"}).ok());
  EXPECT_FALSE(parse({"--duration-s", ""}).ok());
  EXPECT_FALSE(parse({"--duration-s", "nan"}).ok());
  EXPECT_FALSE(parse({"--think-ms", "1e"}).ok());
  const auto ok = parse({"--duration-s", "1.5e1"});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.options->config.duration, sim::SimTime::from_seconds(15));
}

TEST(Cli, TraceGenFlagsParse) {
  const auto r = parse({"--trace-gen", "duration=30,base-rps=500",
                        "--trace-out", "/tmp/day.csv"});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.options->trace_gen_spec, "duration=30,base-rps=500");
  EXPECT_EQ(r.options->trace_out_path, "/tmp/day.csv");
}

TEST(Cli, RejectsBadTraceGenSpecAtParseTime) {
  const auto r = parse({"--trace-gen", "frobnicate=1"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("bad --trace-gen"), std::string::npos) << r.error;
  EXPECT_FALSE(parse({"--trace-gen", "duration=0"}).ok());
  EXPECT_FALSE(parse({"--trace-gen"}).ok());
}

TEST(Cli, TraceReplayAliasAndKnobs) {
  const auto r = parse({"--trace-replay", "/tmp/day.csv",
                        "--replay-timeout-ms", "8000", "--replay-scale",
                        "0.5"});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.options->replay_trace_path, "/tmp/day.csv");
  EXPECT_DOUBLE_EQ(r.options->replay_timeout_ms, 8000.0);
  EXPECT_DOUBLE_EQ(r.options->replay_scale, 0.5);
  EXPECT_FALSE(parse({"--replay-timeout-ms", "0", "--trace-replay",
                      "/tmp/d.csv"}).ok());
  EXPECT_FALSE(parse({"--replay-scale", "-1", "--trace-replay",
                      "/tmp/d.csv"}).ok());
}

TEST(Cli, ReplayKnobsRequireAReplaySource) {
  for (auto args : {std::vector<std::string>{"--replay-timeout-ms", "1000"},
                    std::vector<std::string>{"--replay-scale", "2"}}) {
    const auto r = parse_cli(args);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("require --replay-trace or --trace-gen"),
              std::string::npos)
        << r.error;
  }
}

TEST(Cli, RejectsConflictingTraceSources) {
  const auto both = parse({"--trace-gen", "duration=10", "--replay-trace",
                           "/tmp/d.csv"});
  ASSERT_FALSE(both.ok());
  EXPECT_NE(both.error.find("both name a replay source"), std::string::npos)
      << both.error;
  const auto out = parse({"--trace-out", "/tmp/d.csv"});
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.error.find("--trace-out requires --trace-gen"),
            std::string::npos)
      << out.error;
  const auto rec = parse({"--record-trace", "/tmp/a.csv", "--trace-gen",
                          "duration=10"});
  ASSERT_FALSE(rec.ok());
  EXPECT_NE(rec.error.find("cannot be combined with a replay source"),
            std::string::npos)
      << rec.error;
}

TEST(Cli, TraceGenToFileThenReplayRoundTrip) {
  const std::string path = "/tmp/ntier_cli_trace_gen_day.csv";
  auto gen = parse({"--quiet", "--trace-gen",
                    "seed=7,duration=2,base-rps=200,session-mean=2",
                    "--trace-out", path});
  ASSERT_TRUE(gen.ok()) << gen.error;
  ASSERT_EQ(run_cli(*gen.options), 0);
  ASSERT_TRUE(std::ifstream(path).good());

  auto rep = parse({"--duration-s", "3", "--quiet", "--no-millibottlenecks",
                    "--replay-trace", path, "--replay-timeout-ms", "2000"});
  ASSERT_TRUE(rep.ok()) << rep.error;
  EXPECT_EQ(run_cli(*rep.options), 0);
  std::remove(path.c_str());
}

TEST(Cli, UsageMentionsTraceWorkloadFlags) {
  const auto u = usage_text();
  for (const char* needle :
       {"--trace-gen", "--trace-out", "--replay-trace", "--trace-replay",
        "--replay-timeout-ms", "--replay-scale",
        "at_ns,client,interaction[,key,priority]"}) {
    EXPECT_NE(u.find(needle), std::string::npos) << needle;
  }
}

TEST(Cli, ObservabilityFlags) {
  const auto r = parse({"--telemetry", "--detect", "--trace", "/tmp/t.jsonl",
                        "--trace-sample", "tail"});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.options->config.telemetry.enabled);
  EXPECT_TRUE(r.options->config.online_detect);
  EXPECT_TRUE(r.options->config.event_trace);
  EXPECT_TRUE(r.options->config.trace_tail.enabled);

  // The explicit default keeps full ring retention.
  const auto full =
      parse({"--trace", "/tmp/t.jsonl", "--trace-sample", "full"});
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full.options->config.trace_tail.enabled);

  EXPECT_FALSE(parse({"--trace-sample", "sometimes"}).ok());
  EXPECT_FALSE(parse({"--trace-sample"}).ok());
  // Tail sampling needs the detector's marks and a place to write the sample.
  EXPECT_FALSE(parse({"--trace", "/tmp/t.jsonl", "--trace-sample", "tail"}).ok());
  EXPECT_FALSE(parse({"--detect", "--trace-sample", "tail"}).ok());
}

TEST(Cli, RecordThenReplayRoundTrip) {
  const std::string path = "/tmp/ntier_cli_trace_roundtrip.csv";
  auto rec = parse({"--clients", "200", "--think-ms", "100", "--duration-s",
                    "1", "--quiet", "--no-millibottlenecks", "--record-trace",
                    path});
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(run_cli(*rec.options), 0);

  auto rep = parse({"--duration-s", "2", "--quiet", "--no-millibottlenecks",
                    "--replay-trace", path});
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(run_cli(*rep.options), 0);
  std::remove(path.c_str());
}

TEST(Cli, ReplayMissingFileFails) {
  auto rep = parse({"--quiet", "--replay-trace", "/tmp/definitely_missing_42.csv"});
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(run_cli(*rep.options), 1);
}

TEST(Cli, SweepFlags) {
  const auto r = parse({"--sweep-seeds", "8", "--jobs", "4"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.options->sweep_seeds, 8);
  EXPECT_EQ(r.options->jobs, 4);
  EXPECT_FALSE(parse({"--sweep-seeds", "0"}).ok());
  EXPECT_FALSE(parse({"--jobs", "-1"}).ok());
  // Per-run trace artifacts make no sense for an aggregate sweep...
  EXPECT_FALSE(parse({"--sweep-seeds", "2", "--trace", "/tmp/t.jsonl"}).ok());
  EXPECT_FALSE(
      parse({"--sweep-seeds", "2", "--record-trace", "/tmp/t.csv"}).ok());
  // ...but replaying one trace across seed-forked replicas is fine.
  EXPECT_TRUE(
      parse({"--sweep-seeds", "2", "--replay-trace", "/tmp/t.csv"}).ok());
}

TEST(Cli, SweepRunWritesAggregateOutputs) {
  const std::string json = "/tmp/ntier_cli_sweep.json";
  const std::string csv_dir = "/tmp/ntier_cli_sweep_csv";
  auto r = parse({"--clients", "200", "--think-ms", "100", "--duration-s", "1",
                  "--quiet", "--no-millibottlenecks", "--sweep-seeds", "2",
                  "--jobs", "2", "--json", json, "--csv", csv_dir});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(run_cli(*r.options), 0);
  std::ifstream f(json);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("\"ci95_half\""), std::string::npos);
  EXPECT_NE(ss.str().find("\"per_run\""), std::string::npos);
  EXPECT_TRUE(std::ifstream(csv_dir + "/sweep_aggregate.csv").good());
  EXPECT_TRUE(std::ifstream(csv_dir + "/sweep_runs.csv").good());
  std::remove(json.c_str());
  std::filesystem::remove_all(csv_dir);
}

TEST(Cli, RunCliWritesJson) {
  const std::string path = "/tmp/ntier_cli_test_summary.json";
  auto r = parse({"--clients", "200", "--think-ms", "100", "--duration-s", "1",
                  "--quiet", "--no-millibottlenecks", "--json", path});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(run_cli(*r.options), 0);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("\"mean_rt_ms\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ntier::cli
