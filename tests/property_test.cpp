// Property-style sweeps (TEST_P) over policy × mechanism × seed: invariants
// that must hold for *every* combination, not just the paper's headline
// configurations.
#include <gtest/gtest.h>

#include <tuple>

#include "experiment/experiment.h"
#include "experiment/report.h"
#include "test_util.h"

namespace ntier::experiment {
namespace {

using lb::MechanismKind;
using lb::PolicyKind;
using sim::SimTime;

using Combo = std::tuple<PolicyKind, MechanismKind, std::uint64_t>;

class PolicyMechanismSweep : public ::testing::TestWithParam<Combo> {
 protected:
  static ExperimentConfig config_for(const Combo& combo, bool millib = true) {
    auto c = testing::quick_config(std::get<0>(combo), std::get<1>(combo),
                                   millib, SimTime::seconds(8));
    c.seed = std::get<2>(combo);
    return c;
  }
};

TEST_P(PolicyMechanismSweep, RequestsAreConserved) {
  auto e = testing::run(config_for(GetParam()));
  const auto& cl = e->clients();
  EXPECT_EQ(cl.issued(),
            cl.completed_ok() + cl.failed() + cl.dropped() + cl.in_flight());
}

TEST_P(PolicyMechanismSweep, BalancerAccountingIsConsistent) {
  auto e = testing::run(config_for(GetParam()));
  for (int a = 0; a < e->num_apaches(); ++a) {
    const auto& bal = e->apache(a).balancer();
    for (int t = 0; t < e->num_tomcats(); ++t) {
      const auto& rec = bal.record(t);
      EXPECT_EQ(rec.assigned,
                rec.completed + static_cast<std::uint64_t>(rec.outstanding))
          << "apache " << a << " tomcat " << t;
      EXPECT_GE(rec.committed, rec.outstanding);
      EXPECT_LE(static_cast<std::size_t>(rec.outstanding),
                bal.config().endpoint_pool_size);
      EXPECT_EQ(bal.pool(t).in_use(),
                static_cast<std::size_t>(rec.outstanding));
    }
  }
}

TEST_P(PolicyMechanismSweep, EveryTomcatServesSomeTraffic) {
  auto e = testing::run(config_for(GetParam()));
  for (int t = 0; t < e->num_tomcats(); ++t)
    EXPECT_GT(e->tomcat(t).served(), 0u) << t;
}

TEST_P(PolicyMechanismSweep, CleanEnvironmentMeansNoVlrtAndNoDrops) {
  auto e = testing::run(config_for(GetParam(), /*millib=*/false));
  EXPECT_EQ(e->clients().connection_drops(), 0u);
  EXPECT_LT(e->log().vlrt_fraction(), 1e-4);
  EXPECT_LT(e->log().mean_response_ms(), 10.0);
}

TEST_P(PolicyMechanismSweep, CurrentLoadLbValueMatchesOutstanding) {
  const auto combo = GetParam();
  if (std::get<0>(combo) != PolicyKind::kCurrentLoad) GTEST_SKIP();
  auto e = testing::run(config_for(combo));
  for (int a = 0; a < e->num_apaches(); ++a)
    for (int t = 0; t < e->num_tomcats(); ++t) {
      const auto& rec = e->apache(a).balancer().record(t);
      EXPECT_DOUBLE_EQ(rec.lb_value, static_cast<double>(rec.outstanding));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Combos, PolicyMechanismSweep,
    ::testing::Combine(
        ::testing::Values(PolicyKind::kTotalRequest, PolicyKind::kTotalTraffic,
                          PolicyKind::kCurrentLoad, PolicyKind::kRoundRobin,
                          PolicyKind::kTwoChoices),
        ::testing::Values(MechanismKind::kBlocking, MechanismKind::kNonBlocking),
        ::testing::Values(42u)),
    [](const ::testing::TestParamInfo<Combo>& param_info) {
      return lb::to_string(std::get<0>(param_info.param)) + "_" +
             (std::get<1>(param_info.param) == MechanismKind::kBlocking
                  ? "blocking"
                  : "modified") +
             "_s" + std::to_string(std::get<2>(param_info.param));
    });

// -- seed sweep: the paired remedy-beats-stock property ----------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, RemedyNeverLosesToStock) {
  auto stock_cfg = testing::quick_config(PolicyKind::kTotalRequest,
                                         MechanismKind::kBlocking, true,
                                         SimTime::seconds(10));
  stock_cfg.seed = GetParam();
  auto remedy_cfg = testing::quick_config(PolicyKind::kCurrentLoad,
                                          MechanismKind::kBlocking, true,
                                          SimTime::seconds(10));
  remedy_cfg.seed = GetParam();
  auto stock = testing::run(std::move(stock_cfg));
  auto remedy = testing::run(std::move(remedy_cfg));
  EXPECT_LE(remedy->log().vlrt_fraction(), stock->log().vlrt_fraction());
  EXPECT_LE(remedy->log().mean_response_ms(),
            stock->log().mean_response_ms());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1u, 7u, 1234u));

}  // namespace
}  // namespace ntier::experiment
