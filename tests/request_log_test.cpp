#include "metrics/request_log.h"

#include <gtest/gtest.h>

namespace ntier::metrics {
namespace {

using sim::SimTime;

RequestRecord make(std::uint64_t id, double rt_ms,
                   RequestOutcome outcome = RequestOutcome::kOk) {
  RequestRecord r;
  r.id = id;
  r.start = SimTime::seconds(1);
  r.end = r.start + SimTime::from_millis(rt_ms);
  r.outcome = outcome;
  return r;
}

TEST(RequestLog, AggregatesCompletions) {
  RequestLog log;
  log.on_complete(make(1, 5.0));
  log.on_complete(make(2, 15.0));
  log.on_complete(make(3, 2000.0));
  EXPECT_EQ(log.completed(), 3);
  EXPECT_NEAR(log.mean_response_ms(), (5.0 + 15.0 + 2000.0) / 3, 1e-9);
  EXPECT_EQ(log.vlrt_count(), 1);
  EXPECT_NEAR(log.vlrt_fraction(), 1.0 / 3, 1e-9);
  EXPECT_NEAR(log.normal_fraction(), 1.0 / 3, 1e-9);
}

TEST(RequestLog, DropsAndErrorsAreCountedSeparately) {
  RequestLog log;
  log.on_complete(make(1, 5.0));
  log.on_complete(make(2, 0.0, RequestOutcome::kDropped));
  log.on_complete(make(3, 0.0, RequestOutcome::kBalancerError));
  EXPECT_EQ(log.completed(), 1);
  EXPECT_EQ(log.dropped(), 1);
  EXPECT_EQ(log.balancer_errors(), 1);
}

TEST(RequestLog, VlrtSeriesCountsByCompletionWindow) {
  RequestLog log(SimTime::millis(50));
  auto r = make(1, 1500.0);
  log.on_complete(r);
  const auto& vlrt = log.vlrt_series();
  // completion at 2.5 s -> window 50
  EXPECT_EQ(vlrt.count(50), 1);
  EXPECT_EQ(vlrt.total_count(), 1);
}

TEST(RequestLog, ResponseTimeSeriesTracksAverage) {
  RequestLog log(SimTime::millis(50));
  log.on_complete(make(1, 4.0));
  log.on_complete(make(2, 6.0));
  const auto& rt = log.response_time_series();
  // both complete just after 1s (window 20)
  EXPECT_EQ(rt.count(20), 2);
  EXPECT_DOUBLE_EQ(rt.avg(20), 5.0);
}

TEST(RequestLog, RetransmissionsAccumulate) {
  RequestLog log;
  auto r = make(1, 1001.0);
  r.retransmissions = 2;
  log.on_complete(r);
  EXPECT_EQ(log.total_retransmissions(), 2);
}

TEST(RequestLog, KeepsRecordsWhenAsked) {
  RequestLog keep(SimTime::millis(50), /*keep_records=*/true);
  RequestLog drop(SimTime::millis(50), /*keep_records=*/false);
  keep.on_complete(make(1, 5.0));
  drop.on_complete(make(1, 5.0));
  EXPECT_EQ(keep.records().size(), 1u);
  EXPECT_TRUE(drop.records().empty());
}

TEST(RequestLog, SummaryRowContainsLabelAndNumbers) {
  RequestLog log;
  for (int i = 0; i < 95; ++i) log.on_complete(make(i, 5.0));
  for (int i = 0; i < 5; ++i) log.on_complete(make(100 + i, 1500.0));
  const std::string row = log.summary_row("current_load");
  EXPECT_NE(row.find("current_load"), std::string::npos);
  EXPECT_NE(row.find("100"), std::string::npos);   // total requests
  EXPECT_NE(row.find("5.00%"), std::string::npos); // VLRT fraction
}

TEST(RequestLog, PercentileDelegation) {
  RequestLog log;
  for (int i = 1; i <= 100; ++i) log.on_complete(make(i, i));
  EXPECT_NEAR(log.percentile_ms(50), 50.0, 8.0);
}

}  // namespace
}  // namespace ntier::metrics
