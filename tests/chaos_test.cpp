#include "experiment/chaos.h"

#include <gtest/gtest.h>

#include "experiment/config.h"
#include "experiment/experiment.h"
#include "millib/fault_plan.h"

namespace ntier::experiment {
namespace {

using sim::SimTime;

ChaosMatrixOptions small_matrix() {
  ChaosMatrixOptions opt;
  opt.chaos_seed = 42;
  opt.num_apaches = 2;
  opt.num_tomcats = 3;
  opt.num_clients = 200;
  opt.think_mean = SimTime::millis(200);
  opt.traffic = SimTime::seconds(6);
  // Drain must outlast the worst client retransmission chain (5 x 1 s) so
  // conservation can be checked with zero requests still in flight.
  opt.drain = SimTime::seconds(6);
  return opt;
}

TEST(ChaosMatrix, PlanIsSeedDeterministicAcrossCells) {
  const auto opt = small_matrix();
  EXPECT_EQ(matrix_plan(opt).trace_string(), matrix_plan(opt).trace_string());
  auto other = opt;
  other.chaos_seed = 43;
  EXPECT_NE(matrix_plan(opt).trace_string(), matrix_plan(other).trace_string());
}

// The headline safety check: one seeded fault schedule replayed against
// every policy x mechanism combination, with all three invariants holding
// in every cell.
TEST(ChaosMatrix, AllPoliciesAndMechanismsSurviveTheFaultSchedule) {
  const auto opt = small_matrix();
  const auto results = run_chaos_matrix(opt);
  ASSERT_EQ(results.size(), 21u);  // 7 policies x 3 mechanisms
  for (const auto& r : results) {
    SCOPED_TRACE(r.label);
    EXPECT_TRUE(r.invariants.conservation_ok()) << r.invariants.to_string();
    EXPECT_TRUE(r.invariants.pools_ok()) << r.invariants.to_string();
    EXPECT_TRUE(r.invariants.crash_ok()) << r.invariants.to_string();
    EXPECT_GT(r.invariants.issued, 0u);
    EXPECT_GT(r.invariants.completed, 0u);
    EXPECT_FALSE(r.fault_trace.empty());
  }
}

// Same matrix with the resilience layer on: the safety properties must be
// preserved when the prober, breaker and retry path are all active.
TEST(ChaosMatrix, ResilienceLayerPreservesInvariants) {
  auto opt = small_matrix();
  opt.resilience = true;
  opt.chaos_seed = 7;
  const auto results = run_chaos_matrix(opt);
  ASSERT_EQ(results.size(), 21u);
  std::uint64_t probes = 0;
  for (const auto& r : results) {
    SCOPED_TRACE(r.label);
    EXPECT_TRUE(r.invariants.ok()) << r.invariants.to_string();
    probes += r.probes_sent;
  }
  EXPECT_GT(probes, 0u);  // the prober really ran in the resilient cells
}

// Full overload control on top of the fault schedule: deadline, admission
// and CoDel sheds are answered (fast 503s), never lost, so conservation and
// the pool/crash invariants must hold in every cell exactly as before.
TEST(ChaosMatrix, OverloadControlPreservesInvariants) {
  auto opt = small_matrix();
  opt.overload = control::OverloadMode::kFull;
  opt.chaos_seed = 11;
  const auto results = run_chaos_matrix(opt);
  ASSERT_EQ(results.size(), 21u);
  for (const auto& r : results) {
    SCOPED_TRACE(r.label);
    EXPECT_TRUE(r.invariants.ok()) << r.invariants.to_string();
    EXPECT_GT(r.invariants.completed, 0u);
  }
}

// Satellite 4: identical seeds must give byte-identical runs — summary JSON
// and the applied/cleared fault trace both match.
TEST(ChaosDeterminism, IdenticalSeedsProduceIdenticalTraces) {
  auto make_config = [] {
    ExperimentConfig c;
    c.label = "chaos_determinism";
    c.seed = 99;
    c.num_apaches = 2;
    c.num_tomcats = 3;
    c.num_clients = 150;
    c.think_mean = SimTime::millis(200);
    c.warmup = SimTime::millis(500);
    c.tomcat_millibottlenecks = false;
    c.tracing = false;
    millib::FaultPlanConfig fc;
    fc.initial_offset = SimTime::seconds(1);
    fc.mean_gap = SimTime::millis(700);
    fc.max_duration = SimTime::millis(1000);
    fc.max_faults = 8;
    fc.horizon = SimTime::seconds(4);
    c.fault_plan = millib::FaultPlan::randomized(5, fc, 3);
    c.enable_resilience();
    return c;
  };

  const auto a =
      run_chaos(make_config(), SimTime::seconds(5), SimTime::seconds(6));
  const auto b =
      run_chaos(make_config(), SimTime::seconds(5), SimTime::seconds(6));

  EXPECT_GT(a.invariants.issued, 0u);
  EXPECT_FALSE(a.fault_trace.empty());
  EXPECT_EQ(a.fault_trace, b.fault_trace);
  EXPECT_EQ(a.summary.to_json_string(), b.summary.to_json_string());
  EXPECT_EQ(a.breaker_trips, b.breaker_trips);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  // And a different chaos seed actually changes the episode trace.
  auto c = make_config();
  millib::FaultPlanConfig fc;
  fc.initial_offset = SimTime::seconds(1);
  fc.mean_gap = SimTime::millis(700);
  fc.max_duration = SimTime::millis(1000);
  fc.max_faults = 8;
  fc.horizon = SimTime::seconds(4);
  c.fault_plan = millib::FaultPlan::randomized(6, fc, 3);
  const auto d = run_chaos(std::move(c), SimTime::seconds(5),
                           SimTime::seconds(6));
  EXPECT_NE(a.fault_trace, d.fault_trace);
}

// -- KV chaos matrix: replica-crash and shard-migration cells -----------------

KvChaosMatrixOptions small_kv_matrix() {
  KvChaosMatrixOptions opt;
  opt.chaos_seed = 42;
  opt.num_apaches = 2;
  opt.num_tomcats = 3;
  opt.kv_replicas = 5;
  opt.num_clients = 200;
  opt.think_mean = SimTime::millis(200);
  opt.traffic = SimTime::seconds(6);
  opt.drain = SimTime::seconds(6);
  return opt;
}

TEST(KvChaosMatrix, PlanIsSeedDeterministic) {
  const auto opt = small_kv_matrix();
  EXPECT_EQ(kv_matrix_plan(opt).trace_string(),
            kv_matrix_plan(opt).trace_string());
  auto other = opt;
  other.chaos_seed = 43;
  EXPECT_NE(kv_matrix_plan(opt).trace_string(),
            kv_matrix_plan(other).trace_string());
  // The schedule holds both KV fault families.
  const std::string trace = kv_matrix_plan(opt).trace_string();
  EXPECT_NE(trace.find(millib::to_string(millib::FaultKind::kReplicaCrash)),
            std::string::npos)
      << trace;
  EXPECT_NE(trace.find(millib::to_string(millib::FaultKind::kShardMigration)),
            std::string::npos)
      << trace;
}

// The hinted-handoff accounting invariant across the whole KV cell slice:
// every write issued is applied, shed by a handover, or counted as
// quorum-failed, and every missed per-replica write resolves to a replayed
// hint or a counted drop — no silent loss. The plan keeps the crashes
// non-overlapping, so with N=3, R=W=2 no quorum op may fail at all.
TEST(KvChaosMatrix, QuorumsAndHandoffAccountingHoldInEveryCell) {
  const auto results = run_kv_chaos_matrix(small_kv_matrix());
  ASSERT_EQ(results.size(), 8u);  // 4 policies x 2 mechanisms
  for (const auto& r : results) {
    SCOPED_TRACE(r.label);
    EXPECT_TRUE(r.invariants.ok()) << r.invariants.to_string();
    EXPECT_GT(r.invariants.kv_reads_issued, 0u);
    EXPECT_GT(r.invariants.kv_writes_issued, 0u);
    EXPECT_EQ(r.invariants.kv_quorum_failed_reads, 0u);
    EXPECT_EQ(r.invariants.kv_quorum_failed_writes, 0u);
    EXPECT_EQ(r.invariants.kv_hints_pending, 0u);
    EXPECT_EQ(r.invariants.kv_crashed_dispatches, 0u);
    EXPECT_EQ(r.invariants.kv_ops_in_flight, 0u);
    // Both crashes bit (missed writes replayed) and the shard spent time
    // below full replication.
    EXPECT_GT(r.summary.kv_hints_replayed, 0u);
    EXPECT_GT(r.summary.kv_degraded_ms, 0.0);
  }
}

TEST(KvChaosMatrix, CellsAreSeedDeterministic) {
  const auto opt = small_kv_matrix();
  const auto a = run_kv_chaos_matrix(opt);
  const auto b = run_kv_chaos_matrix(opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fault_trace, b[i].fault_trace);
    EXPECT_EQ(a[i].summary.to_json_string(), b[i].summary.to_json_string());
  }
}

}  // namespace
}  // namespace ntier::experiment
