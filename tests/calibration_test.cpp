// Verifies the simulated testbed sits at the paper's operating point in the
// absence of millibottlenecks (paper §II-B): mean response time in the low
// milliseconds, a negligible number of VLRT requests, every server well
// below saturation, and an even workload distribution across the Tomcats.
#include <gtest/gtest.h>

#include <algorithm>

#include "experiment/experiment.h"
#include "experiment/report.h"
#include "test_util.h"

namespace ntier::experiment {
namespace {

using lb::MechanismKind;
using lb::PolicyKind;
using sim::SimTime;

class CalibrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto c = testing::quick_config(PolicyKind::kTotalRequest,
                                   MechanismKind::kBlocking,
                                   /*millibottlenecks=*/false,
                                   SimTime::seconds(20));
    exp_ = testing::run(std::move(c)).release();
  }
  static void TearDownTestSuite() {
    delete exp_;
    exp_ = nullptr;
  }
  static Experiment* exp_;
};

Experiment* CalibrationTest::exp_ = nullptr;

TEST_F(CalibrationTest, BaselineMeanResponseTimeIsLowMilliseconds) {
  // Paper: 3.2 ms average under total_request with millibottlenecks removed.
  EXPECT_GT(exp_->log().mean_response_ms(), 1.0);
  EXPECT_LT(exp_->log().mean_response_ms(), 8.0);
}

TEST_F(CalibrationTest, BaselineHasNegligibleVlrt) {
  // Paper: 13 VLRT requests out of 1.8 M (≈0.0007 %).
  EXPECT_LT(exp_->log().vlrt_fraction(), 1e-4);
}

TEST_F(CalibrationTest, MostRequestsAreNormal) {
  // Paper Table I: ≈89-97 % of requests complete in under 10 ms.
  EXPECT_GT(exp_->log().normal_fraction(), 0.85);
}

TEST_F(CalibrationTest, NoServerSaturates) {
  // Paper Fig. 5: the highest average CPU among servers is 45 %.
  for (int i = 0; i < exp_->num_apaches(); ++i)
    EXPECT_LT(exp_->mean_cpu(exp_->apache_cpu_series(i)), 0.6) << "apache" << i;
  for (int i = 0; i < exp_->num_tomcats(); ++i)
    EXPECT_LT(exp_->mean_cpu(exp_->tomcat_cpu_series(i)), 0.6) << "tomcat" << i;
  EXPECT_LT(exp_->mean_cpu(exp_->mysql_cpu_series()), 0.6);
}

TEST_F(CalibrationTest, ServersAreNotIdleEither) {
  // The operating point is "moderate utilisation", not an idle system.
  EXPECT_GT(exp_->mean_cpu(exp_->tomcat_cpu_series(0)), 0.10);
  EXPECT_GT(exp_->mean_cpu(exp_->apache_cpu_series(0)), 0.10);
}

TEST_F(CalibrationTest, WorkloadSpreadEvenlyAcrossTomcats) {
  // Paper §II-B: "Apache server distributed the workload evenly among the
  // Tomcat servers".
  std::vector<std::uint64_t> per_tomcat(4, 0);
  for (int a = 0; a < exp_->num_apaches(); ++a)
    for (int t = 0; t < 4; ++t)
      per_tomcat[static_cast<std::size_t>(t)] +=
          exp_->apache(a).balancer().record(t).assigned;
  const auto [mn, mx] = std::minmax_element(per_tomcat.begin(), per_tomcat.end());
  EXPECT_GT(*mn, 0u);
  EXPECT_LT(static_cast<double>(*mx - *mn) / static_cast<double>(*mx), 0.02);
}

TEST_F(CalibrationTest, NoDropsWithoutMillibottlenecks) {
  EXPECT_EQ(exp_->clients().connection_drops(), 0u);
  EXPECT_EQ(exp_->clients().dropped(), 0u);
  EXPECT_EQ(exp_->clients().failed(), 0u);
}

TEST_F(CalibrationTest, QueuesStayShallow) {
  // Fig. 1's flat response time implies shallow queues: two orders of
  // magnitude below the >1000-deep funnels seen under millibottlenecks.
  EXPECT_LT(max_of(exp_->tomcat_tier_queue()), 150.0);
  EXPECT_LT(max_of(exp_->mysql_tier_queue()), 150.0);
}

}  // namespace
}  // namespace ntier::experiment
