#include "experiment/config.h"

#include <gtest/gtest.h>

namespace ntier::experiment {
namespace {

TEST(Config, StallSourceNames) {
  EXPECT_EQ(to_string(StallSource::kPdflush), "pdflush");
  EXPECT_EQ(to_string(StallSource::kGcPause), "gc_pause");
  EXPECT_EQ(to_string(StallSource::kDvfs), "dvfs");
  EXPECT_EQ(to_string(StallSource::kVmConsolidation), "vm_consolidation");
}

TEST(Config, DescribeMentionsEnvironment) {
  ExperimentConfig c = ExperimentConfig::scaled(0.1);
  c.tomcat_stall_source = StallSource::kGcPause;
  c.num_mysql = 2;
  c.sticky_sessions = true;
  c.bursty_workload = true;
  const std::string d = describe(c);
  EXPECT_NE(d.find("tomcat(gc_pause)"), std::string::npos);
  EXPECT_NE(d.find("2 DB replicas"), std::string::npos);
  EXPECT_NE(d.find("sticky"), std::string::npos);
  EXPECT_NE(d.find("bursty"), std::string::npos);
}

TEST(Config, DescribePristineEnvironment) {
  ExperimentConfig c = ExperimentConfig::scaled(0.1);
  c.tomcat_millibottlenecks = false;
  const std::string d = describe(c);
  EXPECT_NE(d.find("millibottlenecks=none"), std::string::npos);
  EXPECT_EQ(d.find("sticky"), std::string::npos);
}

TEST(Config, ScaledPreservesOfferedLoad) {
  for (double f : {0.05, 0.1, 0.5, 1.0}) {
    const auto c = ExperimentConfig::scaled(f);
    EXPECT_NEAR(c.offered_rps(), 10'000.0, 15.0) << f;
  }
}

TEST(Config, SingleNodeQuartersTheLoad) {
  const auto c = ExperimentConfig::single_node(0.1);
  EXPECT_EQ(c.num_apaches, 1);
  EXPECT_EQ(c.num_tomcats, 1);
  EXPECT_NEAR(c.offered_rps(), 2'500.0, 10.0);
  EXPECT_TRUE(c.apache_millibottlenecks);
}

TEST(Config, PaperScaleMatchesThePaper) {
  const auto c = ExperimentConfig::paper_scale();
  EXPECT_EQ(c.num_clients, 70'000);
  EXPECT_EQ(c.think_mean, sim::SimTime::seconds(7));
  EXPECT_EQ(c.duration, sim::SimTime::seconds(180));
  // ~1.8 M requests over the run, as in Table I.
  EXPECT_NEAR(c.offered_rps() * c.duration.to_seconds(), 1.8e6, 1e5);
}

TEST(Config, DefaultKnobsMatchTableIII) {
  const ExperimentConfig c;
  EXPECT_EQ(c.apache.max_clients, 200);
  EXPECT_EQ(c.tomcat.max_threads, 210);
  EXPECT_EQ(c.db_router.pool_per_replica, 48u);
  EXPECT_EQ(c.balancer.blocking.acquire_timeout, sim::SimTime::millis(300));
  EXPECT_EQ(c.balancer.blocking.sleep_interval, sim::SimTime::millis(100));
}

}  // namespace
}  // namespace ntier::experiment
