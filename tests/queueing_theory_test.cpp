// Statistical validation of the OS substrate against closed-form queueing
// theory: the simulator's processor-sharing CPU and FIFO disk must match
// textbook results for Poisson arrivals. These tests anchor the simulation
// to ground truth that is independent of the paper.
#include <gtest/gtest.h>

#include "os/cpu.h"
#include "os/disk.h"
#include "sim/simulation.h"

namespace ntier::os {
namespace {

using sim::SimTime;
using sim::Simulation;

/// Drive a single-core PS CPU with Poisson arrivals of exponential demands
/// and measure the mean sojourn time.
double mm1_ps_mean_sojourn_ms(double lambda_per_s, double mean_demand_ms,
                              double horizon_s, std::uint64_t seed) {
  Simulation s(seed);
  CpuResource cpu(s, 1);
  auto rng = s.rng().fork();
  double total_ms = 0;
  std::int64_t completed = 0;

  std::function<void()> arrival = [&] {
    const SimTime start = s.now();
    // Only count jobs that can finish well before the horizon (avoid
    // censoring bias).
    cpu.submit(SimTime::from_millis(rng.exponential(mean_demand_ms)), [&, start] {
      if (start.to_seconds() > 0.05 * horizon_s &&
          start.to_seconds() < 0.9 * horizon_s) {
        total_ms += (s.now() - start).to_millis();
        ++completed;
      }
    });
    s.after(rng.exponential_time(SimTime::from_seconds(1.0 / lambda_per_s)),
            arrival);
  };
  s.after(SimTime::zero(), arrival);
  s.run_until(SimTime::from_seconds(horizon_s));
  return completed ? total_ms / static_cast<double>(completed) : 0.0;
}

TEST(QueueingTheory, Mm1PsMeanSojournMatchesTheory) {
  // M/M/1-PS: E[T] = E[S] / (1 - rho), identical to M/M/1-FCFS in mean.
  // rho = 0.5, E[S] = 1 ms  =>  E[T] = 2 ms.
  const double measured = mm1_ps_mean_sojourn_ms(/*lambda=*/500.0,
                                                 /*demand=*/1.0,
                                                 /*horizon=*/200.0, 7);
  EXPECT_NEAR(measured, 2.0, 0.15);
}

TEST(QueueingTheory, Mm1PsHighLoad) {
  // rho = 0.8  =>  E[T] = 5 ms. Longer horizon: heavier tail.
  const double measured = mm1_ps_mean_sojourn_ms(800.0, 1.0, 400.0, 11);
  EXPECT_NEAR(measured, 5.0, 0.6);
}

TEST(QueueingTheory, PsIsInsensitiveToDemandDistribution) {
  // The PS queue's mean sojourn depends on the demand distribution only
  // through its mean (insensitivity property). Compare exponential demands
  // against deterministic demands at the same rho.
  Simulation s(13);
  CpuResource cpu(s, 1);
  auto rng = s.rng().fork();
  double total_ms = 0;
  std::int64_t completed = 0;
  std::function<void()> arrival = [&] {
    const SimTime start = s.now();
    cpu.submit(SimTime::from_millis(1.0), [&, start] {  // deterministic 1 ms
      if (start.to_seconds() > 10 && start.to_seconds() < 180) {
        total_ms += (s.now() - start).to_millis();
        ++completed;
      }
    });
    s.after(rng.exponential_time(SimTime::from_millis(2.0)), arrival);
  };
  s.after(SimTime::zero(), arrival);
  s.run_until(SimTime::from_seconds(200));
  const double det = total_ms / static_cast<double>(completed);
  EXPECT_NEAR(det, 2.0, 0.15);  // same E[T] = E[S]/(1-rho) as exponential
}

TEST(QueueingTheory, MultiCoreBelowSaturationAddsNoQueueing) {
  // 4 cores at per-job rate 1: with fewer than 4 concurrent jobs, each runs
  // at full speed; at rho-per-core = 0.3 queueing is negligible.
  Simulation s(17);
  CpuResource cpu(s, 4);
  auto rng = s.rng().fork();
  double total_ms = 0;
  std::int64_t completed = 0;
  std::function<void()> arrival = [&] {
    const SimTime start = s.now();
    cpu.submit(SimTime::from_millis(1.0), [&, start] {
      total_ms += (s.now() - start).to_millis();
      ++completed;
    });
    s.after(rng.exponential_time(SimTime::micros(833)), arrival);
  };
  s.after(SimTime::zero(), arrival);
  s.run_until(SimTime::from_seconds(50));
  EXPECT_NEAR(total_ms / static_cast<double>(completed), 1.0, 0.1);
}

TEST(QueueingTheory, Md1DiskWaitMatchesPollaczekKhinchine) {
  // M/D/1: Wq = rho * S / (2 (1 - rho)). Writes of 1 MiB at 100 MiB/s
  // => S = 10 ms; lambda = 50/s => rho = 0.5 => Wq = 5 ms, T = 15 ms.
  Simulation s(23);
  Disk disk(s, 100.0 * (1 << 20));
  auto rng = s.rng().fork();
  double total_ms = 0;
  std::int64_t completed = 0;
  std::function<void()> arrival = [&] {
    const SimTime start = s.now();
    disk.submit_write(1 << 20, [&, start] {
      if (start.to_seconds() > 10 && start.to_seconds() < 270) {
        total_ms += (s.now() - start).to_millis();
        ++completed;
      }
    });
    s.after(rng.exponential_time(SimTime::millis(20)), arrival);
  };
  s.after(SimTime::zero(), arrival);
  s.run_until(SimTime::from_seconds(300));
  EXPECT_NEAR(total_ms / static_cast<double>(completed), 15.0, 1.2);
}

}  // namespace
}  // namespace ntier::os
