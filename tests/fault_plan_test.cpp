#include "millib/fault_plan.h"

#include <gtest/gtest.h>

namespace ntier::millib {
namespace {

using sim::SimTime;

TEST(FaultPlan, RandomizedIsSeedDeterministic) {
  FaultPlanConfig cfg;
  const auto a = FaultPlan::randomized(1234, cfg, 4);
  const auto b = FaultPlan::randomized(1234, cfg, 4);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.trace_string(), b.trace_string());

  const auto c = FaultPlan::randomized(1235, cfg, 4);
  EXPECT_NE(a.trace_string(), c.trace_string());
}

TEST(FaultPlan, RandomizedRespectsConfigBounds) {
  FaultPlanConfig cfg;
  cfg.max_faults = 6;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto plan = FaultPlan::randomized(seed, cfg, 3);
    EXPECT_LE(plan.size(), cfg.max_faults);
    for (const auto& spec : plan.specs) {
      EXPECT_GE(spec.start, cfg.initial_offset);
      EXPECT_LT(spec.start, cfg.horizon);
      EXPECT_GE(spec.duration, cfg.min_duration);
      EXPECT_LE(spec.duration, cfg.max_duration);
      switch (spec.kind) {
        case FaultKind::kCorrelatedStall:
        case FaultKind::kLinkFault:
          EXPECT_EQ(spec.worker, -1);
          break;
        default:
          EXPECT_GE(spec.worker, 0);
          EXPECT_LT(spec.worker, 3);
          break;
      }
      if (spec.kind == FaultKind::kLinkFault) {
        EXPECT_GE(spec.loss_probability, 0.05);
        EXPECT_LE(spec.loss_probability, cfg.max_loss_probability);
        EXPECT_LE(spec.extra_latency, cfg.max_extra_latency);
      }
      if (spec.kind == FaultKind::kPoolLeak) {
        EXPECT_EQ(spec.leak_slots, cfg.leak_slots);
      }
    }
  }
}

TEST(FaultPlan, ZeroWeightDisablesAKind) {
  FaultPlanConfig cfg;
  // Capacity stalls only (one weight per FaultKind, gray kinds included).
  cfg.kind_weights = {1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  cfg.max_faults = 32;
  const auto plan = FaultPlan::randomized(7, cfg, 4);
  for (const auto& spec : plan.specs)
    EXPECT_EQ(spec.kind, FaultKind::kCapacityStall);
}

TEST(FaultPlan, PeriodicStallsMatchInjectorSchedule) {
  const auto plan = FaultPlan::periodic_stalls(
      /*worker=*/2, /*period=*/SimTime::seconds(1),
      /*duration=*/SimTime::millis(150), /*severity=*/1.0,
      /*initial_offset=*/SimTime::seconds(1), /*horizon=*/SimTime::seconds(5));
  ASSERT_EQ(plan.size(), 4u);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan.specs[i].kind, FaultKind::kCapacityStall);
    EXPECT_EQ(plan.specs[i].worker, 2);
    EXPECT_EQ(plan.specs[i].start,
              SimTime::seconds(1) * static_cast<std::int64_t>(i) +
                  SimTime::seconds(1));
    EXPECT_EQ(plan.specs[i].duration, SimTime::millis(150));
  }
}

TEST(FaultPlan, MergeKeepsScheduleOrder) {
  FaultSpec late;
  late.kind = FaultKind::kCrash;
  late.worker = 0;
  late.start = SimTime::seconds(9);
  late.duration = SimTime::seconds(1);
  auto plan = FaultPlan::single(late);
  plan.merge(FaultPlan::periodic_stalls(1, SimTime::seconds(2),
                                        SimTime::millis(100), 1.0,
                                        SimTime::seconds(1),
                                        SimTime::seconds(8)));
  ASSERT_GE(plan.size(), 2u);
  for (std::size_t i = 1; i < plan.size(); ++i)
    EXPECT_LE(plan.specs[i - 1].start, plan.specs[i].start);
  EXPECT_EQ(plan.specs.back().kind, FaultKind::kCrash);
}

TEST(FaultPlan, InvalidInputsThrow) {
  FaultPlanConfig cfg;
  EXPECT_THROW(FaultPlan::randomized(1, cfg, 0), std::invalid_argument);
  cfg.kind_weights = {1, 2, 3};  // must list all nine kinds
  EXPECT_THROW(FaultPlan::randomized(1, cfg, 4), std::invalid_argument);
}

TEST(FaultPlan, SpecToStringNamesEveryKind) {
  FaultSpec spec;
  spec.start = SimTime::seconds(1);
  spec.duration = SimTime::millis(100);
  for (auto kind :
       {FaultKind::kCapacityStall, FaultKind::kCorrelatedStall,
        FaultKind::kCrash, FaultKind::kLinkFault, FaultKind::kPoolLeak,
        FaultKind::kDiskDegrade, FaultKind::kReplicaCrash,
        FaultKind::kShardMigration, FaultKind::kInvalidationStorm}) {
    spec.kind = kind;
    EXPECT_NE(spec.to_string().find(to_string(kind)), std::string::npos);
  }
}

}  // namespace
}  // namespace ntier::millib
