#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/trace.h"

namespace ntier::obs {
namespace {

using sim::SimTime;

TelemetryConfig tiny_config() {
  TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.fine_window = SimTime::millis(50);
  cfg.coarse_window = SimTime::millis(200);  // 4 fine windows per coarse
  cfg.fine_retention = 4;
  cfg.coarse_retention = 2;
  return cfg;
}

TraceEvent ev(std::int64_t t_ms, EventKind kind, Tier tier, int node,
              int worker = -1, std::uint64_t req = 0, double value = 0.0,
              std::int32_t aux = 0) {
  TraceEvent e;
  e.at = SimTime::millis(t_ms);
  e.kind = kind;
  e.tier = tier;
  e.node = static_cast<std::int16_t>(node);
  e.worker = worker;
  e.request = req;
  e.value = value;
  e.aux = aux;
  return e;
}

TEST(MultiResTimeline, FineWindowsAccumulateStatsAndQuantiles) {
  MultiResTimeline tl(tiny_config());
  tl.record(SimTime::millis(10), 1.0);
  tl.record(SimTime::millis(20), 3.0);
  tl.record(SimTime::millis(60), 10.0);

  ASSERT_EQ(tl.fine_begin(), 0u);
  ASSERT_EQ(tl.fine_end(), 2u);
  const WindowStats* w0 = tl.fine_stats(0);
  ASSERT_NE(w0, nullptr);
  EXPECT_EQ(w0->count, 2);
  EXPECT_DOUBLE_EQ(w0->avg(), 2.0);
  EXPECT_DOUBLE_EQ(w0->max, 3.0);
  const WindowStats* w1 = tl.fine_stats(1);
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w1->count, 1);
  // Per-window quantiles straight from the per-window sketch.
  EXPECT_NEAR(tl.fine_quantile(1, 0.5), 10.0, 0.02 * 10.0);
  EXPECT_EQ(tl.fine_stats(7), nullptr);  // unseen window
  EXPECT_EQ(tl.recorded(), 3u);
}

TEST(MultiResTimeline, FineWindowsRollUpIntoCoarse) {
  // fine_retention = 4: recording into window 4 evicts window 0 into its
  // coarse parent (windows 0-3 -> coarse 0), preserving count/avg/max and
  // the mergeable sketch.
  MultiResTimeline tl(tiny_config());
  for (int w = 0; w < 8; ++w)
    tl.record(SimTime::millis(w * 50 + 10), static_cast<double>(w));

  EXPECT_EQ(tl.fine_begin(), 4u);
  EXPECT_EQ(tl.fine_end(), 8u);
  ASSERT_GE(tl.coarse_end(), 1u);
  const WindowStats* c0 = tl.coarse_stats(0);
  ASSERT_NE(c0, nullptr);
  EXPECT_EQ(c0->count, 4);  // fine windows 0..3
  EXPECT_DOUBLE_EQ(c0->avg(), (0.0 + 1.0 + 2.0 + 3.0) / 4.0);
  EXPECT_DOUBLE_EQ(c0->max, 3.0);
  const DDSketch* cs = tl.coarse_sketch(0);
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->count(), 4u);
  // The run-level totals cover everything ever recorded.
  EXPECT_EQ(tl.totals().count, 8);
  EXPECT_EQ(tl.sketch().count(), 8u);
}

TEST(MultiResTimeline, MemoryStaysBoundedAndDropsAreCounted) {
  // 100 s of samples through 4 fine + 2 coarse slots: the deques never
  // exceed their retention bounds, and evictions past the coarse bound are
  // counted rather than accumulated.
  MultiResTimeline tl(tiny_config());
  for (int i = 0; i < 2'000; ++i) {
    tl.record(SimTime::millis(i * 50 + 1), 1.0);
    EXPECT_LE(tl.fine_end() - tl.fine_begin(), 4u);
    EXPECT_LE(tl.coarse_end() - tl.coarse_begin(), 2u);
  }
  EXPECT_GT(tl.coarse_dropped(), 0u);
  EXPECT_EQ(tl.totals().count, 2'000);  // totals survive every eviction
}

TEST(MultiResTimeline, LateSampleIsClampedIntoTheOldestLiveWindow) {
  MultiResTimeline tl(tiny_config());
  tl.record(SimTime::millis(1'000), 5.0);  // window 20
  tl.record(SimTime::millis(0), 7.0);      // long past: clamps to window 20's
                                           // live region, not a crash
  const WindowStats* oldest = tl.fine_stats(tl.fine_begin());
  ASSERT_NE(oldest, nullptr);
  EXPECT_EQ(oldest->count, 2);
}

TEST(TelemetryRegistry, GetOrCreateReturnsStablePointers) {
  TelemetryRegistry reg(tiny_config());
  Instrument& a = reg.instrument("client.rt_ms", Tier::kClient);
  Instrument& again = reg.instrument("client.rt_ms", Tier::kClient);
  EXPECT_EQ(&a, &again);
  EXPECT_EQ(reg.size(), 1u);
  reg.instrument("tomcat0.iowait", Tier::kTomcat, 0);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.find("client.rt_ms"), &a);
  EXPECT_EQ(reg.find("missing"), nullptr);

  // Iteration (and therefore CSV export) is in name order.
  std::vector<std::string> names;
  reg.for_each([&](const Instrument& ins) { names.push_back(ins.name()); });
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "client.rt_ms");
  EXPECT_EQ(names[1], "tomcat0.iowait");
}

TEST(TelemetryRegistry, CsvCarriesPerWindowQuantileColumns) {
  TelemetryRegistry reg(tiny_config());
  Instrument& ins = reg.instrument("client.rt_ms");
  for (int i = 0; i < 100; ++i)
    ins.record(SimTime::millis(10 + i % 3), 10.0 + i);

  std::ostringstream os;
  reg.to_csv(os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("instrument,window_start_s,width_s,count,avg,max,p50,"
                      "p95,p99\n",
                      0),
            0u);
  EXPECT_NE(csv.find("client.rt_ms,0,0.05,100,"), std::string::npos);
  // Exports are byte-deterministic.
  std::ostringstream os2;
  reg.to_csv(os2);
  EXPECT_EQ(csv, os2.str());
}

TEST(TelemetryFeed, MapsTheEventStreamOntoTheStandardInstruments) {
  TelemetryRegistry reg(tiny_config());
  TelemetryFeed feed(reg, /*num_tomcats=*/2);
  TraceConfig tc;
  tc.ring = false;  // pure event bus
  TraceCollector bus(tc);
  bus.add_sink(&feed);

  // Successful and failed completions: only aux == 0 lands in rt_ms.
  bus.push(ev(10, EventKind::kClientDone, Tier::kClient, 0, 5, 1, 120.0, 0));
  bus.push(ev(11, EventKind::kClientDone, Tier::kClient, 0, 6, 2, 9'000.0, 2));
  bus.push(ev(12, EventKind::kSynRetransmit, Tier::kClient, 0, 5, 3, 0.0, 1));
  // Balancer deltas rebuild tomcat1's committed queue: +1, +1, -1.
  bus.push(ev(20, EventKind::kGetEndpointAttempt, Tier::kBalancer, 0, 1, 4));
  bus.push(ev(21, EventKind::kGetEndpointAttempt, Tier::kBalancer, 0, 1, 5));
  bus.push(ev(22, EventKind::kEndpointRelease, Tier::kBalancer, 0, 1, 4));
  // Out-of-range worker / non-tomcat iowait are ignored, valid one lands.
  bus.push(ev(23, EventKind::kGetEndpointAttempt, Tier::kBalancer, 0, 9, 6));
  bus.push(ev(30, EventKind::kIoWait, Tier::kMysql, 0, -1, 0, 0.9));
  bus.push(ev(31, EventKind::kIoWait, Tier::kTomcat, 1, -1, 0, 0.75));

  const Instrument* rt = reg.find("client.rt_ms");
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->timeline().totals().count, 1);
  EXPECT_DOUBLE_EQ(rt->timeline().totals().max, 120.0);

  const Instrument* retx = reg.find("client.syn_retransmit");
  ASSERT_NE(retx, nullptr);
  EXPECT_EQ(retx->timeline().totals().count, 1);

  const Instrument* committed = reg.find("tomcat1.committed");
  ASSERT_NE(committed, nullptr);
  EXPECT_EQ(committed->timeline().totals().count, 3);
  EXPECT_DOUBLE_EQ(committed->timeline().totals().max, 2.0);

  const Instrument* iowait = reg.find("tomcat1.iowait");
  ASSERT_NE(iowait, nullptr);
  EXPECT_EQ(iowait->timeline().totals().count, 1);
  EXPECT_DOUBLE_EQ(iowait->timeline().totals().max, 0.75);
  EXPECT_EQ(reg.find("tomcat0.iowait")->timeline().totals().count, 0);
}

}  // namespace
}  // namespace ntier::obs
