#include <gtest/gtest.h>

#include "net/bounded_queue.h"
#include "net/link.h"
#include "net/retransmit.h"
#include "sim/simulation.h"

namespace ntier::net {
namespace {

using sim::SimTime;
using sim::Simulation;

TEST(Link, DeliversAfterLatency) {
  Simulation s;
  Link link(SimTime::micros(100));
  SimTime arrived;
  link.deliver(s, [&] { arrived = s.now(); });
  s.run();
  EXPECT_EQ(arrived, SimTime::micros(100));
}

TEST(RetransmitSchedule, DefaultMatchesPaperClusters) {
  RetransmitSchedule sched;
  ASSERT_GE(sched.max_retries(), 3u);
  // Cumulative delays 1s, 2s, 3s: the VLRT clusters of Fig. 4.
  SimTime cum;
  for (std::size_t i = 0; i < 3; ++i) {
    cum += sched.delay(i);
    EXPECT_EQ(cum, SimTime::seconds(static_cast<std::int64_t>(i + 1)));
  }
}

TEST(RetransmitSchedule, ConstantFactory) {
  const auto sched = RetransmitSchedule::constant(SimTime::millis(500), 4);
  EXPECT_EQ(sched.max_retries(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(sched.delay(i), SimTime::millis(500));
}

TEST(RetransmitSchedule, ExponentialFactory) {
  const auto sched = RetransmitSchedule::exponential(SimTime::seconds(1), 4);
  EXPECT_EQ(sched.delay(0), SimTime::seconds(1));
  EXPECT_EQ(sched.delay(1), SimTime::seconds(2));
  EXPECT_EQ(sched.delay(2), SimTime::seconds(4));
  EXPECT_EQ(sched.delay(3), SimTime::seconds(8));
}

TEST(BoundedQueue, PushPopFifo) {
  BoundedQueue<int> q(3);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, OverflowDropsAndCounts) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4));
  EXPECT_EQ(q.drops(), 2u);
  q.try_pop();
  EXPECT_TRUE(q.try_push(5));  // space again
  EXPECT_EQ(q.drops(), 2u);
}

TEST(BoundedQueue, TimedPushPopCarriesEnqueueTime) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1, SimTime::millis(10)));
  EXPECT_TRUE(q.try_push(2, SimTime::millis(25)));
  EXPECT_EQ(q.front_enqueued(), SimTime::millis(10));
  auto a = q.try_pop_timed();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->first, 1);
  EXPECT_EQ(a->second, SimTime::millis(10));
  EXPECT_EQ(q.front_enqueued(), SimTime::millis(25));
  auto b = q.try_pop_timed();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->second, SimTime::millis(25));
  EXPECT_FALSE(q.try_pop_timed().has_value());
}

TEST(BoundedQueue, DropReasonBreakdown) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));  // overflow counts itself
  // Consumer-attributed sheds: items popped and then dropped by the
  // overload layer rather than served.
  q.count_drop(DropReason::kSojourn);
  q.count_drop(DropReason::kSojourn);
  q.count_drop(DropReason::kDeadline);
  EXPECT_EQ(q.drops(DropReason::kOverflow), 1u);
  EXPECT_EQ(q.drops(DropReason::kSojourn), 2u);
  EXPECT_EQ(q.drops(DropReason::kDeadline), 1u);
  EXPECT_EQ(q.drops(), 4u);  // total sums every reason
}

TEST(BoundedQueue, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> q(1);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(42)));
  auto out = q.try_pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 42);
}

}  // namespace
}  // namespace ntier::net
