// Integration tests for the extension features on the full testbed:
// synthetic millibottleneck causes (GC/DVFS), sticky sessions interacting
// with the instability, bursty workloads, heterogeneous Tomcats, DB
// replicas with a millibottleneck-aware router, and lb_value aging.
#include <gtest/gtest.h>

#include <algorithm>

#include "experiment/experiment.h"
#include "experiment/report.h"
#include "test_util.h"

namespace ntier::experiment {
namespace {

using lb::MechanismKind;
using lb::PolicyKind;
using sim::SimTime;

TEST(StallSources, GcPausesCreateInstabilityUnderStockPolicy) {
  auto cfg = testing::quick_config(PolicyKind::kTotalRequest,
                                   MechanismKind::kBlocking, true,
                                   SimTime::seconds(12));
  cfg.tomcat_stall_source = StallSource::kGcPause;
  cfg.injector = millib::gc_pause_profile(SimTime::seconds(4),
                                          SimTime::millis(400));
  cfg.injector.jitter = false;
  auto stock = testing::run(std::move(cfg));

  auto remedy_cfg = testing::quick_config(PolicyKind::kCurrentLoad,
                                          MechanismKind::kBlocking, true,
                                          SimTime::seconds(12));
  remedy_cfg.tomcat_stall_source = StallSource::kGcPause;
  remedy_cfg.injector = millib::gc_pause_profile(SimTime::seconds(4),
                                                 SimTime::millis(400));
  remedy_cfg.injector.jitter = false;
  auto remedy = testing::run(std::move(remedy_cfg));

  // The instability is cause-agnostic: GC pauses funnel like pdflush does.
  EXPECT_GT(max_of(stock->tomcat_tier_queue()),
            4.0 * max_of(remedy->tomcat_tier_queue()));
  EXPECT_GT(stock->log().mean_response_ms(),
            2.0 * remedy->log().mean_response_ms());
  // Ground truth comes from the injectors, not pdflush.
  EXPECT_FALSE(stock->flush_intervals(0).empty());
  EXPECT_TRUE(stock->tomcat_node(0).pdflush().episodes().empty());
}

TEST(StallSources, DvfsPartialStallsAreMilder) {
  auto half = testing::quick_config(PolicyKind::kTotalRequest,
                                    MechanismKind::kBlocking, true,
                                    SimTime::seconds(12));
  half.tomcat_stall_source = StallSource::kDvfs;
  half.injector = millib::dvfs_profile(SimTime::seconds(4),
                                       SimTime::millis(400), /*severity=*/0.5);
  half.injector.jitter = false;
  auto mild = testing::run(std::move(half));

  auto full = testing::quick_config(PolicyKind::kTotalRequest,
                                    MechanismKind::kBlocking, true,
                                    SimTime::seconds(12));
  full.tomcat_stall_source = StallSource::kGcPause;
  full.injector = millib::gc_pause_profile(SimTime::seconds(4),
                                           SimTime::millis(400));
  full.injector.jitter = false;
  auto severe = testing::run(std::move(full));

  // Factor (b) of §VI: severity of the millibottleneck drives the damage.
  EXPECT_LT(mild->log().mean_response_ms(), severe->log().mean_response_ms());
  EXPECT_LE(mild->log().vlrt_fraction(), severe->log().vlrt_fraction());
}

TEST(StickySessions, ForcedRoutesReintroduceVlrtUnderRemedy) {
  // current_load avoids the stalled Tomcat — unless sticky routes force
  // requests back to it.
  auto free_cfg = testing::quick_config(PolicyKind::kCurrentLoad,
                                        MechanismKind::kNonBlocking, true,
                                        SimTime::seconds(12));
  auto sticky_cfg = free_cfg;
  sticky_cfg.sticky_sessions = true;
  sticky_cfg.balancer.sticky_force = true;
  auto free_run = testing::run(std::move(free_cfg));
  auto sticky_run = testing::run(std::move(sticky_cfg));

  // With sticky_force the stalled Tomcat's sessions have nowhere to go:
  // requests queue on it (or 503), re-inflating its committed queue.
  int t;
  SimTime s0, s1;
  (void)t;
  (void)s0;
  (void)s1;
  EXPECT_GT(max_of(sticky_run->tomcat_tier_queue()),
            2.0 * max_of(free_run->tomcat_tier_queue()));
  EXPECT_GT(sticky_run->log().mean_response_ms(),
            free_run->log().mean_response_ms());
  // Sticky routing did engage.
  std::uint64_t hits = 0;
  for (int a = 0; a < sticky_run->num_apaches(); ++a)
    hits += sticky_run->apache(a).balancer().sticky_hits();
  EXPECT_GT(hits, 1000u);
}

TEST(BurstyWorkload, BurstsAloneCauseQueueSpikes) {
  // §III-A lists bursty workloads as a millibottleneck cause: even with
  // pdflush disabled, strong bursts saturate the tier transiently.
  auto calm_cfg = testing::quick_config(PolicyKind::kTotalRequest,
                                        MechanismKind::kBlocking, false,
                                        SimTime::seconds(12));
  auto burst_cfg = calm_cfg;
  burst_cfg.bursty_workload = true;
  burst_cfg.burst_multiplier = 10.0;
  auto calm = testing::run(std::move(calm_cfg));
  auto bursty = testing::run(std::move(burst_cfg));
  EXPECT_GT(max_of(bursty->apache_tier_queue()),
            3.0 * max_of(calm->apache_tier_queue()));
  EXPECT_GT(bursty->log().percentile_ms(99.9), calm->log().percentile_ms(99.9));
}

TEST(HeterogeneousTomcats, WeightsShiftTraffic) {
  // Run at half the standard offered load: a weight-3 worker asked for half
  // of ~10 k req/s sits at its capacity limit, where pool exhaustion clips
  // its achievable share and the outcome swings with the seed. Below
  // saturation the lbfactor accounting can actually deliver the 3:1:1:1
  // split it promises.
  auto cfg = testing::quick_config(PolicyKind::kTotalRequest,
                                   MechanismKind::kNonBlocking, false,
                                   SimTime::seconds(8));
  cfg.num_clients /= 2;
  cfg.tomcat_weights = {3.0, 1.0, 1.0, 1.0};
  auto e = testing::run(std::move(cfg));
  std::vector<std::uint64_t> served;
  for (int t = 0; t < e->num_tomcats(); ++t)
    served.push_back(e->tomcat(t).served());
  // Worker 0 should take ~half the traffic (3 of 6 weight units). Its share
  // runs slightly under the ideal because concurrency spikes occasionally
  // exhaust its endpoint pool and divert a burst to the others.
  const double total = static_cast<double>(served[0] + served[1] + served[2] + served[3]);
  EXPECT_NEAR(static_cast<double>(served[0]) / total, 0.5, 0.07);
  EXPECT_NEAR(static_cast<double>(served[1]) / total, 1.0 / 6, 0.05);
}

TEST(DbReplicas, RouterSpreadsQueriesAndSurvivesDbMillibottlenecks) {
  auto cfg = testing::quick_config(PolicyKind::kCurrentLoad,
                                   MechanismKind::kNonBlocking, false,
                                   SimTime::seconds(12));
  cfg.num_mysql = 2;
  cfg.mysql_millibottlenecks = true;
  cfg.mysql.log_bytes_per_query = 1200;  // fuel for DB-side pdflush
  cfg.db_router.policy = lb::PolicyKind::kCurrentLoad;
  cfg.db_router.mechanism = lb::MechanismKind::kNonBlocking;
  cfg.db_router.pool_per_replica = 24;  // 48 split across 2 replicas
  auto e = testing::run(std::move(cfg));

  // Both replicas served queries, DB-side flushes really happened, and the
  // aware router kept end-to-end latency in the healthy band.
  EXPECT_GT(e->mysql(0).queries_served(), 1000u);
  EXPECT_GT(e->mysql(1).queries_served(), 1000u);
  EXPECT_FALSE(e->mysql_flush_intervals(0).empty());
  EXPECT_LT(e->log().mean_response_ms(), 20.0);
  std::uint64_t routed = 0;
  for (int t = 0; t < e->num_tomcats(); ++t)
    routed += e->db_router(t).queries_routed();
  EXPECT_GT(routed, 10'000u);
}

TEST(DbReplicas, QueueingRouterSuffersWhenReplicaStalls) {
  auto stock_cfg = testing::quick_config(PolicyKind::kCurrentLoad,
                                         MechanismKind::kNonBlocking, false,
                                         SimTime::seconds(12));
  stock_cfg.num_mysql = 2;
  stock_cfg.mysql_millibottlenecks = true;
  stock_cfg.mysql.log_bytes_per_query = 1200;
  stock_cfg.db_router.policy = lb::PolicyKind::kTotalRequest;
  stock_cfg.db_router.mechanism = lb::MechanismKind::kQueueing;
  stock_cfg.db_router.pool_per_replica = 24;
  auto aware_cfg = stock_cfg;
  aware_cfg.db_router.policy = lb::PolicyKind::kCurrentLoad;
  aware_cfg.db_router.mechanism = lb::MechanismKind::kNonBlocking;

  auto stock = testing::run(std::move(stock_cfg));
  auto aware = testing::run(std::move(aware_cfg));
  // The paper's web-tier lesson transfers to the DB tier: the cumulative
  // policy + condvar pool queues behind the stalled replica.
  EXPECT_GT(stock->log().mean_response_ms(),
            1.5 * aware->log().mean_response_ms());
}

TEST(Aging, DecayDoesNotDefeatTheInstability) {
  // mod_jk's 60 s "maintain" aging is orders of magnitude too slow to help
  // against 300 ms millibottlenecks: results match the non-aged stock run.
  auto cfg = testing::quick_config(PolicyKind::kTotalRequest,
                                   MechanismKind::kBlocking, true,
                                   SimTime::seconds(12));
  cfg.balancer.decay_interval = SimTime::seconds(60);
  auto aged = testing::run(std::move(cfg));
  EXPECT_GT(aged->log().vlrt_fraction(), 0.005);
  EXPECT_GT(max_of(aged->tomcat_tier_queue()), 400.0);
}

}  // namespace
}  // namespace ntier::experiment
