#include "obs/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ntier::obs {
namespace {

// Deterministic value stream (no platform-dependent std:: distributions).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  double uniform01() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state_ >> 11) * 0x1p-53;
  }

 private:
  std::uint64_t state_;
};

/// Exact sample quantile under the sketch's own rank convention
/// (rank = q * (n - 1), first value whose cumulative count exceeds it).
double exact_quantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank)];
}

TEST(DDSketch, EmptyAndSingleValue) {
  DDSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);

  s.record(123.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_NEAR(s.quantile(0.5), 123.0, 0.02 * 123.0);
  EXPECT_NEAR(s.quantile(0.99), 123.0, 0.02 * 123.0);
  EXPECT_EQ(s.min(), 123.0);
  EXPECT_EQ(s.max(), 123.0);
}

TEST(DDSketch, RelativeErrorBoundAcrossMagnitudes) {
  // The headline property: every reported quantile is within
  // relative_accuracy of the true sample quantile, for samples spanning six
  // orders of magnitude and for samples clustered tightly.
  const double a = SketchConfig{}.relative_accuracy;
  struct Gen {
    const char* name;
    double (*next)(Lcg&);
  };
  const Gen gens[] = {
      {"uniform [1, 1000]",
       [](Lcg& r) { return 1.0 + 999.0 * r.uniform01(); }},
      {"log-uniform [1e-3, 1e3]",
       [](Lcg& r) { return std::pow(10.0, -3.0 + 6.0 * r.uniform01()); }},
      {"bimodal latencies",
       [](Lcg& r) {
         return r.uniform01() < 0.95 ? 20.0 + 10.0 * r.uniform01()
                                     : 1000.0 + 2000.0 * r.uniform01();
       }},
  };
  for (const Gen& g : gens) {
    Lcg rng(7);
    DDSketch s;
    std::vector<double> samples;
    for (int i = 0; i < 20'000; ++i) {
      const double v = g.next(rng);
      samples.push_back(v);
      s.record(v);
    }
    for (double q : {0.25, 0.5, 0.9, 0.95, 0.99, 0.999}) {
      const double exact = exact_quantile(samples, q);
      const double est = s.quantile(q);
      EXPECT_LE(std::abs(est - exact), a * exact + 1e-9)
          << g.name << " q=" << q << " exact=" << exact << " est=" << est;
    }
  }
}

TEST(DDSketch, MergeIsCommutativeAndAssociativeToTheByte) {
  // Values chosen exactly representable with exactly representable sums, so
  // merge order cannot perturb the serialized sum field; bucket counts are
  // integers and commute regardless.
  auto make = [](double base, int n) {
    DDSketch s;
    for (int i = 0; i < n; ++i) s.record(base + 0.5 * i);
    return s;
  };
  const DDSketch a = make(1.0, 50);
  const DDSketch b = make(300.0, 70);
  const DDSketch c = make(9000.0, 30);

  DDSketch ab = a;
  ab.merge(b);
  DDSketch ba = b;
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
  EXPECT_EQ(ab.serialize(), ba.serialize());

  DDSketch ab_c = ab;
  ab_c.merge(c);
  DDSketch bc = b;
  bc.merge(c);
  DDSketch a_bc = a;
  a_bc.merge(bc);
  EXPECT_TRUE(ab_c == a_bc);
  EXPECT_EQ(ab_c.serialize(), a_bc.serialize());

  // Merging the shards reproduces the bulk sketch.
  DDSketch bulk;
  for (int i = 0; i < 50; ++i) bulk.record(1.0 + 0.5 * i);
  for (int i = 0; i < 70; ++i) bulk.record(300.0 + 0.5 * i);
  for (int i = 0; i < 30; ++i) bulk.record(9000.0 + 0.5 * i);
  EXPECT_TRUE(ab_c == bulk);
  EXPECT_EQ(ab_c.count(), 150u);
}

TEST(DDSketch, ManyShardMergeOrderIsByteDeterministic) {
  // The sweep merges per-run sketches in run-index order; any fixed multiset
  // of shards must yield the same bytes no matter how the merge tree is
  // shaped (index order vs pairwise reduction).
  std::vector<DDSketch> shards;
  for (int s = 0; s < 8; ++s) {
    DDSketch sk;
    for (int i = 0; i < 200; ++i)
      sk.record(1.0 + 2.0 * s + 0.25 * i);  // exactly representable
    shards.push_back(sk);
  }
  DDSketch in_order;
  for (const DDSketch& s : shards) in_order.merge(s);
  DDSketch tree;
  {
    std::vector<DDSketch> level = shards;
    while (level.size() > 1) {
      std::vector<DDSketch> next;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        DDSketch m = level[i];
        m.merge(level[i + 1]);
        next.push_back(m);
      }
      if (level.size() % 2) next.push_back(level.back());
      level = next;
    }
    tree = level[0];
  }
  EXPECT_EQ(in_order.serialize(), tree.serialize());
}

TEST(DDSketch, SerializeRoundTrip) {
  Lcg rng(11);
  DDSketch s;
  s.record(0.0);  // zero bucket
  s.record(-3.0);
  for (int i = 0; i < 5'000; ++i)
    s.record(std::pow(10.0, -2.0 + 5.0 * rng.uniform01()));

  const std::string bytes = s.serialize();
  EXPECT_EQ(bytes.rfind("ddsk1 a=", 0), 0u);
  const auto back = DDSketch::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == s);
  EXPECT_EQ(back->serialize(), bytes);
  EXPECT_EQ(back->quantile(0.99), s.quantile(0.99));
}

TEST(DDSketch, DeserializeRejectsMalformedInput) {
  EXPECT_FALSE(DDSketch::deserialize("").has_value());
  EXPECT_FALSE(DDSketch::deserialize("junk").has_value());
  EXPECT_FALSE(DDSketch::deserialize("ddsk1 a=").has_value());
  EXPECT_FALSE(DDSketch::deserialize("ddsk1 a=0.02 b=1024").has_value());
  // Count mismatch between header and buckets.
  EXPECT_FALSE(
      DDSketch::deserialize(
          "ddsk1 a=0.02 b=1024 z=0 n=5 s=10 lo=1 hi=4 | 3:2")
          .has_value());
  // A valid empty sketch round-trips.
  const DDSketch empty;
  EXPECT_TRUE(DDSketch::deserialize(empty.serialize()).has_value());
}

TEST(DDSketch, CollapsePreservesUpperQuantilesUnderBucketBound) {
  SketchConfig cfg;
  cfg.max_buckets = 32;
  DDSketch s(cfg);
  Lcg rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 50'000; ++i) {
    const double v = std::pow(10.0, -3.0 + 7.0 * rng.uniform01());
    samples.push_back(v);
    s.record(v);
  }
  EXPECT_LE(s.num_buckets(), 32u);
  // The collapse eats the lowest buckets; p99/p99.9 keep their guarantee.
  for (double q : {0.99, 0.999}) {
    const double exact = exact_quantile(samples, q);
    EXPECT_LE(std::abs(s.quantile(q) - exact),
              cfg.relative_accuracy * exact + 1e-9)
        << "q=" << q;
  }
}

TEST(DDSketch, ZeroAndNegativeValuesLandInTheZeroBucket) {
  DDSketch s;
  s.record_n(0.0, 10);
  s.record_n(-5.0, 5);
  s.record_n(100.0, 5);
  EXPECT_EQ(s.count(), 20u);
  EXPECT_EQ(s.quantile(0.5), 0.0);  // 15/20 of mass is in the zero bucket
  EXPECT_NEAR(s.quantile(0.99), 100.0, 2.0);
  EXPECT_EQ(s.min(), -5.0);
  EXPECT_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.sum(), -25.0 + 500.0);
}

TEST(DDSketch, MergeRequiresNothingOfEmptySketches) {
  DDSketch a;
  DDSketch b;
  for (int i = 0; i < 100; ++i) b.record(10.0 + i);
  const std::string before = b.serialize();
  b.merge(a);  // merging an empty sketch is a no-op
  EXPECT_EQ(b.serialize(), before);
  a.merge(b);  // merging into an empty sketch copies
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace ntier::obs
