#include "millib/causal_chain.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "obs/trace.h"
#include "test_util.h"

namespace ntier::millib {
namespace {

using obs::EventKind;
using obs::Tier;
using obs::TraceEvent;
using sim::SimTime;

TraceEvent ev(std::int64_t t_ms, EventKind kind, Tier tier, int node,
              int worker = -1, std::uint64_t req = 0, double value = 0.0,
              std::int32_t aux = 0) {
  TraceEvent e;
  e.at = SimTime::millis(t_ms);
  e.kind = kind;
  e.tier = tier;
  e.node = static_cast<std::int16_t>(node);
  e.worker = worker;
  e.request = req;
  e.value = value;
  e.aux = aux;
  return e;
}

TEST(CausalChainAnalyzer, EmptyTraceYieldsEmptyReport) {
  const auto report = CausalChainAnalyzer().analyze({});
  EXPECT_TRUE(report.chains.empty());
  EXPECT_TRUE(report.vlrt.empty());
  EXPECT_EQ(report.coverage(), 0.0);
}

TEST(CausalChainAnalyzer, JoinsHandCraftedLinksToTheEpisode) {
  // A fabricated 300 ms pdflush episode on tomcat 0 starting at t=1000ms,
  // with an iowait spike and a frozen lb_value overlapping it, plus a SYN
  // retransmission cluster and one VLRT that spans the episode.
  std::vector<TraceEvent> events;
  // Background iowait samples (every 50 ms) that spike during the episode.
  for (std::int64_t t = 500; t <= 2000; t += 50) {
    const bool hot = t >= 1050 && t <= 1300;
    events.push_back(ev(t, EventKind::kIoWait, Tier::kTomcat, 0, -1, 0,
                        hot ? 0.97 : 0.05));
  }
  // lb_value updates for (balancer 0, worker 0): steady 20 ms cadence that
  // freezes for 250 ms across the episode.
  for (std::int64_t t = 500; t <= 1000; t += 20)
    events.push_back(ev(t, EventKind::kLbValue, Tier::kBalancer, 0, 0, 0, 1.0));
  for (std::int64_t t = 1250; t <= 2000; t += 20)
    events.push_back(ev(t, EventKind::kLbValue, Tier::kBalancer, 0, 0, 0, 1.0));
  // The episode itself.
  events.push_back(ev(1000, EventKind::kPdflushStart, Tier::kTomcat, 0, -1, 0,
                      8 << 20));
  events.push_back(ev(1300, EventKind::kPdflushStop, Tier::kTomcat, 0, -1, 0,
                      8 << 20));
  // Retransmissions offset into the episode.
  for (std::uint64_t r = 100; r < 110; ++r)
    events.push_back(ev(1200, EventKind::kSynRetransmit, Tier::kClient, 0, -1,
                        r, 3000.0, 1));
  // One VLRT request whose connect hop eats the episode.
  events.push_back(ev(900, EventKind::kClientSend, Tier::kClient, 0, 1, 55));
  events.push_back(
      ev(1150, EventKind::kSynRetransmit, Tier::kClient, 0, 1, 55, 3000.0, 1));
  events.push_back(ev(2050, EventKind::kWorkerPickup, Tier::kApache, 0, 0, 55));
  events.push_back(
      ev(2060, EventKind::kEndpointAcquire, Tier::kBalancer, 0, 0, 55));
  events.push_back(
      ev(2080, EventKind::kEndpointRelease, Tier::kBalancer, 0, 0, 55));
  events.push_back(
      ev(2100, EventKind::kClientDone, Tier::kClient, 0, 1, 55, 1200.0, 0));
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.at.ns() < b.at.ns();
            });

  const auto report = CausalChainAnalyzer().analyze(events);
  ASSERT_EQ(report.chains.size(), 1u);
  const auto& c = report.chains[0];
  EXPECT_EQ(c.tier, Tier::kTomcat);
  EXPECT_EQ(c.node, 0);
  EXPECT_FALSE(c.synthetic);
  EXPECT_TRUE(c.iowait.present);
  EXPECT_NEAR(c.iowait.magnitude, 0.97, 1e-9);
  EXPECT_TRUE(c.frozen_lb.present);
  EXPECT_GE(c.frozen_lb.magnitude, 200.0);  // the 250 ms gap
  EXPECT_TRUE(c.retransmits.present);
  EXPECT_GE(c.retransmits.count, 10u);

  // The lone VLRT is attributed to the episode via its in-window retransmit,
  // and its dominant hop is the connect segment.
  ASSERT_EQ(report.vlrt.size(), 1u);
  EXPECT_EQ(report.vlrt[0].request, 55u);
  EXPECT_EQ(report.vlrt[0].episode, 0);
  EXPECT_EQ(report.vlrt[0].dominant, Hop::kConnect);
  EXPECT_EQ(report.coverage(), 1.0);
}

#ifndef NTIER_OBS_DISABLED
TEST(CausalChainAnalyzer, ReconstructsTheFigure6ChainFromARealRun) {
  // The acceptance experiment: run the paper's unstable configuration
  // (total_request + blocking get_endpoint + pdflush millibottlenecks),
  // collect the event trace, and require that the analyzer reconstructs the
  // full chain and explains >=90% of the VLRTs.
  auto cfg = experiment::testing::quick_config(
      lb::PolicyKind::kTotalRequest, lb::MechanismKind::kBlocking,
      /*millibottlenecks=*/true, sim::SimTime::seconds(15));
  cfg.event_trace = true;
  auto e = experiment::testing::run(std::move(cfg));
  ASSERT_NE(e->trace(), nullptr);

  const auto report =
      CausalChainAnalyzer().analyze(e->trace()->snapshot());
  EXPECT_EQ(report.events, e->trace()->size());
  ASSERT_GT(report.chains.size(), 0u);
  EXPECT_GT(report.full_chains(), 0u);

  // The run is long enough to produce a meaningful VLRT population.
  ASSERT_GT(report.vlrt.size(), 100u);
  EXPECT_GE(report.coverage(), 0.9);

  // Attributions carry a concrete dominant hop and per-hop decomposition.
  for (const auto& v : report.vlrt) {
    if (v.episode < 0) continue;
    double total = 0;
    for (double h : v.hop_ms) total += h;
    EXPECT_GT(total, 0.0);
  }

  // The report renders without blowing up and names the chain links.
  std::ostringstream os;
  report.print(os);
  EXPECT_NE(os.str().find("FULL CHAIN"), std::string::npos);
  EXPECT_NE(os.str().find("frozen lb_value"), std::string::npos);
  std::ostringstream js;
  report.to_json(js);
  EXPECT_EQ(js.str().front(), '{');
}
#endif  // NTIER_OBS_DISABLED

}  // namespace
}  // namespace ntier::millib
