// Tests for the mod_jk features beyond the paper's pseudo-code: lbfactor
// weights, lb_value aging ("maintain"), sticky sessions, and the queueing
// pool acquirer.
#include <gtest/gtest.h>

#include "lb/load_balancer.h"
#include "sim/simulation.h"

namespace ntier::lb {
namespace {

using sim::SimTime;
using sim::Simulation;

proto::RequestPtr make_req(std::uint64_t id = 1) {
  auto r = std::make_shared<proto::Request>();
  r->id = id;
  r->request_bytes = 100;
  r->response_bytes = 900;
  return r;
}

TEST(Weights, TrafficFollowsLbFactor) {
  Simulation s;
  BalancerConfig cfg;
  cfg.worker_weights = {2.0, 1.0, 1.0};
  LoadBalancer lb(s, 3, make_policy(PolicyKind::kTotalRequest),
                  make_acquirer(MechanismKind::kNonBlocking), cfg);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 400; ++i) {
    auto req = make_req(static_cast<std::uint64_t>(i));
    lb.assign(req, [&, req](int idx) {
      ++counts[static_cast<std::size_t>(idx)];
      lb.on_response(idx, req);
    });
  }
  EXPECT_EQ(counts[0], 200);  // weight 2 => half the traffic
  EXPECT_EQ(counts[1], 100);
  EXPECT_EQ(counts[2], 100);
}

TEST(Weights, CurrentLoadAlsoRespectsWeights) {
  Simulation s;
  BalancerConfig cfg;
  cfg.worker_weights = {3.0, 1.0};
  LoadBalancer lb(s, 2, make_policy(PolicyKind::kCurrentLoad),
                  make_acquirer(MechanismKind::kNonBlocking), cfg);
  // Keep every request outstanding: the weighted current load should let
  // worker 0 hold ~3x the outstanding requests of worker 1. Stay below the
  // endpoint-pool capacity so pools don't interfere.
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 40; ++i) {
    lb.assign(make_req(), [&](int idx) {
      ++counts[static_cast<std::size_t>(idx)];
    });
  }
  EXPECT_EQ(counts[0], 30);
  EXPECT_EQ(counts[1], 10);
}

TEST(Weights, RejectsBadWeights) {
  Simulation s;
  BalancerConfig bad_size;
  bad_size.worker_weights = {1.0};
  EXPECT_THROW(LoadBalancer(s, 2, make_policy(PolicyKind::kTotalRequest),
                            make_acquirer(MechanismKind::kNonBlocking),
                            bad_size),
               std::invalid_argument);
  BalancerConfig zero;
  zero.worker_weights = {1.0, 0.0};
  EXPECT_THROW(LoadBalancer(s, 2, make_policy(PolicyKind::kTotalRequest),
                            make_acquirer(MechanismKind::kNonBlocking), zero),
               std::invalid_argument);
}

TEST(Decay, HalvesLbValuesOnInterval) {
  Simulation s;
  BalancerConfig cfg;
  cfg.decay_interval = SimTime::seconds(10);
  LoadBalancer lb(s, 2, make_policy(PolicyKind::kTotalRequest),
                  make_acquirer(MechanismKind::kNonBlocking), cfg);
  for (int i = 0; i < 8; ++i) {
    auto req = make_req();
    lb.assign(req, [&, req](int idx) { lb.on_response(idx, req); });
  }
  EXPECT_DOUBLE_EQ(lb.record(0).lb_value, 4.0);
  s.run_until(SimTime::seconds(10));
  EXPECT_DOUBLE_EQ(lb.record(0).lb_value, 2.0);
  s.run_until(SimTime::seconds(20));
  EXPECT_DOUBLE_EQ(lb.record(0).lb_value, 1.0);
}

TEST(Decay, DecayNowIsImmediate) {
  Simulation s;
  LoadBalancer lb(s, 1, make_policy(PolicyKind::kTotalRequest),
                  make_acquirer(MechanismKind::kNonBlocking), {});
  auto req = make_req();
  lb.assign(req, [&, req](int idx) { lb.on_response(idx, req); });
  lb.decay_now();
  EXPECT_DOUBLE_EQ(lb.record(0).lb_value, 0.5);
}

TEST(Decay, RejectsUselessDivisor) {
  Simulation s;
  BalancerConfig cfg;
  cfg.decay_interval = SimTime::seconds(1);
  cfg.decay_divisor = 1.0;
  EXPECT_THROW(LoadBalancer(s, 1, make_policy(PolicyKind::kTotalRequest),
                            make_acquirer(MechanismKind::kNonBlocking), cfg),
               std::invalid_argument);
}

TEST(Sticky, RoutedRequestGoesToItsOwner) {
  Simulation s;
  BalancerConfig cfg;
  cfg.sticky_sessions = true;
  LoadBalancer lb(s, 4, make_policy(PolicyKind::kTotalRequest),
                  make_acquirer(MechanismKind::kNonBlocking), cfg);
  // Worker 3 is by no means the policy's choice (highest lb_value).
  for (int t = 0; t < 4; ++t) {
    for (int k = 0; k <= t; ++k) {
      auto req = make_req();
      lb.assign(req, [&, req](int idx) { lb.on_response(idx, req); });
    }
  }
  auto routed = make_req();
  routed->session_route = 3;
  int got = -2;
  lb.assign(routed, [&](int idx) { got = idx; });
  EXPECT_EQ(got, 3);
  EXPECT_EQ(lb.sticky_hits(), 1u);
}

TEST(Sticky, FallsBackToPolicyWhenOwnerUnavailable) {
  Simulation s;
  BalancerConfig cfg;
  cfg.sticky_sessions = true;
  cfg.endpoint_pool_size = 1;
  LoadBalancer lb(s, 2, make_policy(PolicyKind::kCurrentLoad),
                  make_acquirer(MechanismKind::kNonBlocking), cfg);
  lb.assign(make_req(), [](int idx) { ASSERT_EQ(idx, 0); });  // pin worker 0
  auto probe = make_req();
  lb.assign(probe, [&, probe](int idx) {
    ASSERT_EQ(idx, 1);
    lb.on_response(idx, probe);  // keep worker 1's endpoint free
  });

  auto routed = make_req();
  routed->session_route = 0;
  int got = -2;
  lb.assign(routed, [&](int idx) { got = idx; });
  EXPECT_EQ(got, 1);  // owner exhausted -> policy fallback
}

TEST(Sticky, ForceFailsInsteadOfFallingBack) {
  Simulation s;
  BalancerConfig cfg;
  cfg.sticky_sessions = true;
  cfg.sticky_force = true;
  cfg.endpoint_pool_size = 1;
  LoadBalancer lb(s, 2, make_policy(PolicyKind::kCurrentLoad),
                  make_acquirer(MechanismKind::kNonBlocking), cfg);
  lb.assign(make_req(), [](int idx) { ASSERT_EQ(idx, 0); });
  lb.assign(make_req(), [](int idx) { ASSERT_EQ(idx, 1); });  // 0 -> Busy

  auto routed = make_req();
  routed->session_route = 0;
  int got = -2;
  lb.assign(routed, [&](int idx) { got = idx; });
  EXPECT_EQ(got, -1);
  EXPECT_EQ(lb.balancer_errors(), 1u);
}

TEST(Sticky, DisabledFlagIgnoresRoutes) {
  Simulation s;
  LoadBalancer lb(s, 4, make_policy(PolicyKind::kTotalRequest),
                  make_acquirer(MechanismKind::kNonBlocking), {});
  auto routed = make_req();
  routed->session_route = 3;
  int got = -2;
  lb.assign(routed, [&](int idx) { got = idx; });
  EXPECT_EQ(got, 0);  // pure policy decision
  EXPECT_EQ(lb.sticky_hits(), 0u);
}

TEST(QueueingPool, WaitersWakeInFifoOrder) {
  Simulation s;
  EndpointPool pool(1);
  std::vector<int> order;
  pool.acquire_or_wait([&](bool ok) { if (ok) order.push_back(0); });
  pool.acquire_or_wait([&](bool ok) { if (ok) order.push_back(1); });
  pool.acquire_or_wait([&](bool ok) { if (ok) order.push_back(2); });
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(pool.waiting(), 2u);
  pool.release();  // slot handed to waiter 1
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(pool.in_use(), 1u);
  pool.release();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  pool.release();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(QueueingPool, AcquirerNeverFails) {
  Simulation s;
  EndpointPool pool(1);
  WorkerRecord rec;
  QueueingAcquirer acq;
  int grants = 0;
  acq.acquire(s, pool, rec, [&](bool ok) {
    EXPECT_TRUE(ok);
    ++grants;
  });
  acq.acquire(s, pool, rec, [&](bool ok) {
    EXPECT_TRUE(ok);
    ++grants;
  });
  EXPECT_EQ(grants, 1);
  pool.release();
  EXPECT_EQ(grants, 2);
}

}  // namespace
}  // namespace ntier::lb
