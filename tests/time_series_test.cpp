#include "metrics/time_series.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ntier::metrics {
namespace {

using sim::SimTime;

TEST(TimeSeries, AggregatesIntoCorrectWindows) {
  TimeSeries s(SimTime::millis(50));
  s.record(SimTime::millis(10), 2.0);
  s.record(SimTime::millis(49), 4.0);
  s.record(SimTime::millis(50), 6.0);  // next window
  ASSERT_EQ(s.num_windows(), 2u);
  EXPECT_EQ(s.count(0), 2);
  EXPECT_DOUBLE_EQ(s.sum(0), 6.0);
  EXPECT_DOUBLE_EQ(s.avg(0), 3.0);
  EXPECT_DOUBLE_EQ(s.min(0), 2.0);
  EXPECT_DOUBLE_EQ(s.max(0), 4.0);
  EXPECT_EQ(s.count(1), 1);
  EXPECT_DOUBLE_EQ(s.avg(1), 6.0);
}

TEST(TimeSeries, RejectsNonPositiveWindow) {
  // A zero window would be integer divide-by-zero UB in the bin index.
  EXPECT_THROW(TimeSeries{SimTime{}}, std::invalid_argument);
  EXPECT_THROW(TimeSeries{SimTime::millis(-50)}, std::invalid_argument);
  EXPECT_THROW(GaugeSeries{SimTime{}}, std::invalid_argument);
  EXPECT_THROW(GaugeSeries{SimTime::millis(-1)}, std::invalid_argument);
}

TEST(TimeSeries, EmptyWindowsReadAsZero) {
  TimeSeries s(SimTime::millis(50));
  s.record(SimTime::millis(200), 1.0);
  EXPECT_EQ(s.num_windows(), 5u);
  EXPECT_EQ(s.count(2), 0);
  EXPECT_DOUBLE_EQ(s.avg(2), 0.0);
  EXPECT_DOUBLE_EQ(s.max(2), 0.0);
  EXPECT_EQ(s.count(100), 0);  // out of range is safe
}

TEST(TimeSeries, Totals) {
  TimeSeries s(SimTime::millis(10));
  for (int i = 0; i < 100; ++i) s.record(SimTime::millis(i), 1.5);
  EXPECT_EQ(s.total_count(), 100);
  EXPECT_DOUBLE_EQ(s.total_sum(), 150.0);
  EXPECT_DOUBLE_EQ(s.global_max(), 1.5);
}

TEST(TimeSeries, WindowStart) {
  TimeSeries s(SimTime::millis(50));
  EXPECT_EQ(s.window_start(3), SimTime::millis(150));
}

TEST(TimeSeries, NegativeTimestampThrows) {
  TimeSeries s(SimTime::millis(50));
  EXPECT_THROW(s.record(SimTime::millis(-1), 1.0), std::invalid_argument);
}

TEST(TimeSeries, CsvHasHeaderAndRows) {
  TimeSeries s(SimTime::millis(50));
  s.record(SimTime::millis(10), 3.0);
  std::ostringstream os;
  s.to_csv(os, "rt");
  const std::string out = os.str();
  EXPECT_NE(out.find("# series=rt"), std::string::npos);
  EXPECT_NE(out.find("window_start_s"), std::string::npos);
  EXPECT_NE(out.find("0,1,3"), std::string::npos);
}

// ---------------------------------------------------------------------------

TEST(GaugeSeries, TimeWeightedAverage) {
  GaugeSeries g(SimTime::millis(100));
  g.set(SimTime::zero(), 10.0);
  g.set(SimTime::millis(50), 20.0);  // 10 for half, 20 for half
  g.finish(SimTime::millis(100));
  EXPECT_DOUBLE_EQ(g.time_avg(0), 15.0);
  EXPECT_DOUBLE_EQ(g.max(0), 20.0);
}

TEST(GaugeSeries, ValueCarriesAcrossWindows) {
  GaugeSeries g(SimTime::millis(100));
  g.set(SimTime::zero(), 7.0);
  g.finish(SimTime::millis(350));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(g.time_avg(i), 7.0) << i;
    EXPECT_DOUBLE_EQ(g.max(i), 7.0) << i;
  }
}

TEST(GaugeSeries, SpikeWithinWindowIsVisibleInMax) {
  GaugeSeries g(SimTime::millis(100));
  g.set(SimTime::zero(), 0.0);
  g.set(SimTime::millis(40), 100.0);  // spike for 10 ms
  g.set(SimTime::millis(50), 0.0);
  g.finish(SimTime::millis(100));
  EXPECT_DOUBLE_EQ(g.max(0), 100.0);
  EXPECT_DOUBLE_EQ(g.time_avg(0), 10.0);  // 100 * 0.1
}

TEST(GaugeSeries, AddAccumulatesDeltas) {
  GaugeSeries g(SimTime::millis(100));
  g.add(SimTime::zero(), 5.0);
  g.add(SimTime::millis(10), 3.0);
  g.add(SimTime::millis(20), -2.0);
  EXPECT_DOUBLE_EQ(g.current(), 6.0);
  g.finish(SimTime::millis(100));
  EXPECT_DOUBLE_EQ(g.max(0), 8.0);
}

TEST(GaugeSeries, BackwardsTimeThrows) {
  GaugeSeries g(SimTime::millis(100));
  g.set(SimTime::millis(50), 1.0);
  EXPECT_THROW(g.set(SimTime::millis(40), 2.0), std::invalid_argument);
}

TEST(GaugeSeries, GlobalMax) {
  GaugeSeries g(SimTime::millis(10));
  g.set(SimTime::zero(), 1.0);
  g.set(SimTime::millis(25), 9.0);
  g.set(SimTime::millis(35), 2.0);
  g.finish(SimTime::millis(50));
  EXPECT_DOUBLE_EQ(g.global_max(), 9.0);
}

TEST(GaugeSeries, UntouchedWindowsReportZeroMax) {
  GaugeSeries g(SimTime::millis(10));
  EXPECT_DOUBLE_EQ(g.max(3), 0.0);
  EXPECT_DOUBLE_EQ(g.time_avg(3), 0.0);
}

}  // namespace
}  // namespace ntier::metrics
