#include "metrics/breakdown.h"

#include <gtest/gtest.h>

#include <sstream>

#include "experiment/experiment.h"
#include "test_util.h"

namespace ntier::metrics {
namespace {

using sim::SimTime;

RequestRecord make_record(double connect_ms, double balancing_ms,
                          double backend_ms, double reply_ms) {
  RequestRecord r;
  r.outcome = RequestOutcome::kOk;
  r.start = SimTime::seconds(1);
  r.accepted_at = r.start + SimTime::from_millis(connect_ms);
  r.assigned_at = r.accepted_at + SimTime::from_millis(balancing_ms);
  r.backend_done_at = r.assigned_at + SimTime::from_millis(backend_ms);
  r.end = r.backend_done_at + SimTime::from_millis(reply_ms);
  return r;
}

TEST(LatencyBreakdown, DecomposesSegments) {
  LatencyBreakdown b;
  b.add(make_record(1.0, 2.0, 4.0, 1.0));
  EXPECT_EQ(b.requests(), 1);
  EXPECT_NEAR(b.mean_ms(LatencyBreakdown::kConnect), 1.0, 0.15);
  EXPECT_NEAR(b.mean_ms(LatencyBreakdown::kBalancing), 2.0, 0.3);
  EXPECT_NEAR(b.mean_ms(LatencyBreakdown::kBackend), 4.0, 0.6);
  EXPECT_NEAR(b.share(LatencyBreakdown::kBackend), 0.5, 0.05);
}

TEST(LatencyBreakdown, SkipsFailedOrPartialRecords) {
  LatencyBreakdown b;
  RequestRecord dropped;
  dropped.outcome = RequestOutcome::kDropped;
  b.add(dropped);
  RequestRecord never_accepted;  // all hop stamps default to 0 < start
  never_accepted.outcome = RequestOutcome::kOk;
  never_accepted.start = SimTime::seconds(5);
  never_accepted.end = SimTime::seconds(6);
  b.add(never_accepted);
  EXPECT_EQ(b.requests(), 0);
  EXPECT_EQ(b.skipped(), 2);
}

TEST(LatencyBreakdown, AddAllAndPrint) {
  LatencyBreakdown b;
  std::vector<RequestRecord> recs = {make_record(0.1, 0.1, 2.0, 0.1),
                                     make_record(0.2, 0.3, 3.0, 0.1)};
  b.add_all(recs);
  EXPECT_EQ(b.requests(), 2);
  std::ostringstream os;
  b.print(os);
  EXPECT_NE(os.str().find("backend (tomcat + mysql)"), std::string::npos);
  EXPECT_NE(os.str().find("2 requests"), std::string::npos);
}

TEST(LatencyBreakdown, CountsFailuresPerSegmentReached) {
  LatencyBreakdown b;

  // A retransmitted-but-successful request decomposes normally; its SYN
  // retries live inside the connect segment.
  RequestRecord retried = make_record(600.0, 2.0, 4.0, 1.0);
  retried.retransmissions = 2;
  b.add(retried);

  // Dropped before any Apache accepted it: dies in connect.
  RequestRecord dropped;
  dropped.outcome = RequestOutcome::kDropped;
  dropped.retransmissions = 7;
  dropped.start = SimTime::seconds(2);
  dropped.end = SimTime::seconds(12);
  b.add(dropped);

  // Accepted but the balancer never produced an endpoint: dies in balancing.
  RequestRecord errored;
  errored.outcome = RequestOutcome::kBalancerError;
  errored.start = SimTime::seconds(3);
  errored.accepted_at = errored.start + SimTime::from_millis(1);
  errored.end = errored.accepted_at + SimTime::from_millis(300);
  b.add(errored);

  EXPECT_EQ(b.requests(), 1);
  EXPECT_EQ(b.dropped(), 1);
  EXPECT_EQ(b.balancer_errors(), 1);
  EXPECT_EQ(b.dropped_in(LatencyBreakdown::kConnect), 1);
  EXPECT_EQ(b.dropped_in(LatencyBreakdown::kBalancing), 0);
  EXPECT_EQ(b.errored_in(LatencyBreakdown::kBalancing), 1);
  EXPECT_EQ(b.errored_in(LatencyBreakdown::kConnect), 0);
  EXPECT_GT(b.mean_ms(LatencyBreakdown::kConnect), 500.0);

  std::ostringstream os;
  b.print(os);
  EXPECT_NE(os.str().find("failed before completion: 1 dropped, 1 balancer"),
            std::string::npos);
  EXPECT_NE(os.str().find("died in connect"), std::string::npos);
  EXPECT_NE(os.str().find("died in balancing"), std::string::npos);
}

TEST(LatencyBreakdown, FurthestSegmentFollowsStamps) {
  RequestRecord r;
  r.start = SimTime::seconds(1);
  EXPECT_EQ(LatencyBreakdown::furthest_segment(r), LatencyBreakdown::kConnect);
  r.accepted_at = r.start + SimTime::from_millis(1);
  EXPECT_EQ(LatencyBreakdown::furthest_segment(r),
            LatencyBreakdown::kBalancing);
  r.assigned_at = r.accepted_at + SimTime::from_millis(1);
  EXPECT_EQ(LatencyBreakdown::furthest_segment(r), LatencyBreakdown::kBackend);
  r.backend_done_at = r.assigned_at + SimTime::from_millis(1);
  EXPECT_EQ(LatencyBreakdown::furthest_segment(r), LatencyBreakdown::kReply);
}

TEST(LatencyBreakdown, SharesSumToOne) {
  LatencyBreakdown b;
  b.add(make_record(1.0, 1.0, 1.0, 1.0));
  double total = 0;
  for (int s = 0; s < LatencyBreakdown::kNumSegments; ++s)
    total += b.share(static_cast<LatencyBreakdown::Segment>(s));
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LatencyBreakdown, EndToEndStampsAreConsistent) {
  // Run the real testbed with record keeping and decompose: the segment sum
  // must reconstruct each request's total response time.
  auto cfg = experiment::testing::quick_config(
      lb::PolicyKind::kCurrentLoad, lb::MechanismKind::kNonBlocking,
      /*millibottlenecks=*/false, sim::SimTime::seconds(5));
  cfg.keep_records = true;
  auto e = experiment::testing::run(std::move(cfg));
  ASSERT_FALSE(e->log().records().empty());

  LatencyBreakdown b;
  b.add_all(e->log().records());
  EXPECT_GT(b.requests(), 1000);
  EXPECT_EQ(b.skipped(), 0);
  // In a healthy run the backend dominates; connect is two link hops.
  EXPECT_GT(b.share(LatencyBreakdown::kBackend), 0.4);
  EXPECT_LT(b.mean_ms(LatencyBreakdown::kConnect), 1.0);
  // Segment means must sum to the log's mean response time.
  double total = 0;
  for (int s = 0; s < LatencyBreakdown::kNumSegments; ++s)
    total += b.mean_ms(static_cast<LatencyBreakdown::Segment>(s));
  EXPECT_NEAR(total, e->log().mean_response_ms(),
              0.15 * e->log().mean_response_ms());
}

TEST(LatencyBreakdown, MillibottlenecksInflateConnectAndBalancing) {
  auto stock_cfg = experiment::testing::quick_config(
      lb::PolicyKind::kTotalRequest, lb::MechanismKind::kBlocking, true,
      sim::SimTime::seconds(12));
  stock_cfg.keep_records = true;
  auto stock = experiment::testing::run(std::move(stock_cfg));
  LatencyBreakdown unstable;
  unstable.add_all(stock->log().records());

  auto remedy_cfg = experiment::testing::quick_config(
      lb::PolicyKind::kCurrentLoad, lb::MechanismKind::kNonBlocking, true,
      sim::SimTime::seconds(12));
  remedy_cfg.keep_records = true;
  auto remedy = experiment::testing::run(std::move(remedy_cfg));
  LatencyBreakdown healthy;
  healthy.add_all(remedy->log().records());

  // The amplification lives in the front half of the path: SYN retries and
  // workers parked in get_endpoint / the accept queue.
  EXPECT_GT(unstable.mean_ms(LatencyBreakdown::kConnect) +
                unstable.mean_ms(LatencyBreakdown::kBalancing),
            10 * (healthy.mean_ms(LatencyBreakdown::kConnect) +
                  healthy.mean_ms(LatencyBreakdown::kBalancing)));
}

}  // namespace
}  // namespace ntier::metrics
