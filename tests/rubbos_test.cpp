#include "workload/rubbos.h"

#include <gtest/gtest.h>

#include <map>

namespace ntier::workload {
namespace {

TEST(Rubbos, HasTwentyFourInteractions) {
  RubbosWorkload w;
  EXPECT_EQ(w.num_interactions(), 24u);
}

TEST(Rubbos, BrowseOnlyMixNeverDrawsWriteInteractions) {
  WorkloadParams p;
  p.mix = Mix::kBrowseOnly;
  RubbosWorkload w(p);
  sim::Rng rng(1);
  for (int i = 0; i < 20'000; ++i) {
    auto req = w.make_request(rng, static_cast<std::uint64_t>(i), 0);
    const auto& it = w.interactions()[req->interaction];
    EXPECT_GT(it.weight_browse, 0.0) << it.name;
  }
}

TEST(Rubbos, ReadWriteMixIncludesWrites) {
  WorkloadParams p;
  p.mix = Mix::kReadWrite;
  RubbosWorkload w(p);
  sim::Rng rng(2);
  bool saw_write = false;
  for (int i = 0; i < 20'000 && !saw_write; ++i) {
    auto req = w.make_request(rng, static_cast<std::uint64_t>(i), 0);
    const auto& it = w.interactions()[req->interaction];
    if (it.name == "StoreComment" || it.name == "StoreStory") saw_write = true;
  }
  EXPECT_TRUE(saw_write);
}

TEST(Rubbos, FrequenciesFollowWeights) {
  RubbosWorkload w;
  sim::Rng rng(3);
  std::map<std::uint16_t, int> counts;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    ++counts[w.make_request(rng, static_cast<std::uint64_t>(i), 0)->interaction];
  // StoriesOfTheDay (index 0) should be the most frequent read/write entry.
  int max_idx = 0, max_count = 0;
  for (const auto& [idx, c] : counts)
    if (c > max_count) {
      max_count = c;
      max_idx = idx;
    }
  EXPECT_EQ(w.interactions()[static_cast<std::size_t>(max_idx)].name,
            "StoriesOfTheDay");
}

TEST(Rubbos, DemandsArePositiveAndJittered) {
  RubbosWorkload w;
  sim::Rng rng(4);
  auto a = w.make_request(rng, 1, 0);
  auto b = w.make_request(rng, 2, 0);
  EXPECT_GT(a->apache_demand.ns(), 0);
  EXPECT_GT(a->tomcat_demand.ns(), 0);
  EXPECT_GT(a->log_bytes, 0u);
  // Lognormal jitter: two draws of (even the same) interaction differ.
  EXPECT_TRUE(a->tomcat_demand != b->tomcat_demand ||
              a->apache_demand != b->apache_demand);
}

TEST(Rubbos, QueryCacheSplitsMySqlDemand) {
  WorkloadParams p;
  p.query_cache_hit = 0.5;
  p.mysql_hit_demand_ms = 0.02;
  RubbosWorkload w(p);
  sim::Rng rng(5);
  int hits = 0, misses = 0;
  for (int i = 0; i < 20'000; ++i) {
    auto req = w.make_request(rng, static_cast<std::uint64_t>(i), 0);
    if (req->db_queries == 0) continue;
    if (req->mysql_demand <= sim::SimTime::from_millis(0.02))
      ++hits;
    else
      ++misses;
  }
  const double frac = static_cast<double>(hits) / (hits + misses);
  EXPECT_NEAR(frac, 0.5, 0.03);
}

TEST(Rubbos, DemandScaleMultipliesDemands) {
  WorkloadParams p1, p2;
  p2.demand_scale = 2.0;
  RubbosWorkload w1(p1), w2(p2);
  EXPECT_NEAR(w2.mean_tomcat_demand_ms(), 2.0 * w1.mean_tomcat_demand_ms(),
              1e-9);
  EXPECT_NEAR(w2.mean_apache_demand_ms(), 2.0 * w1.mean_apache_demand_ms(),
              1e-9);
}

TEST(Rubbos, MeanDemandsMatchCalibrationBand) {
  RubbosWorkload w;
  // Calibrated so 2 500 req/s on a 4-core node sits in the paper's 30-45 %
  // utilisation band.
  EXPECT_GT(w.mean_tomcat_demand_ms(), 0.4);
  EXPECT_LT(w.mean_tomcat_demand_ms(), 0.8);
  EXPECT_GT(w.mean_apache_demand_ms(), 0.3);
  EXPECT_LT(w.mean_apache_demand_ms(), 0.7);
  EXPECT_GT(w.mean_log_bytes(), 800.0);
  EXPECT_LT(w.mean_log_bytes(), 2000.0);
}

TEST(Rubbos, RequestCarriesIdentity) {
  RubbosWorkload w;
  sim::Rng rng(6);
  auto req = w.make_request(rng, 77, 5);
  EXPECT_EQ(req->id, 77u);
  EXPECT_EQ(req->client, 5);
  EXPECT_EQ(req->apache_id, -1);
  EXPECT_EQ(req->tomcat_id, -1);
}

}  // namespace
}  // namespace ntier::workload
