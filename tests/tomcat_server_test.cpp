#include "server/tomcat_server.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace ntier::server {
namespace {

using sim::SimTime;
using sim::Simulation;

os::NodeConfig plain_node() {
  os::NodeConfig nc;
  nc.cores = 4;
  nc.pdflush.enabled = false;
  return nc;
}

proto::RequestPtr make_req(double tomcat_ms, int db_queries = 0,
                           double mysql_ms = 0.5, std::uint32_t log_bytes = 1000) {
  auto r = std::make_shared<proto::Request>();
  r->tomcat_demand = SimTime::from_millis(tomcat_ms);
  r->db_queries = static_cast<std::uint8_t>(db_queries);
  r->mysql_demand = SimTime::from_millis(mysql_ms);
  r->log_bytes = log_bytes;
  return r;
}

struct Rig {
  explicit Rig(DbRouterConfig dc = {}) : router(make_router(dc)) {}

  DbRouter make_router(DbRouterConfig dc) { return DbRouter(s, {&db}, dc); }

  Simulation s;
  os::Node tomcat_node{s, plain_node()};
  os::Node mysql_node{s, plain_node()};
  MySqlServer db{s, mysql_node};
  DbRouter router;
};

TEST(TomcatServer, ProcessesCpuOnlyRequest) {
  Rig rig;
  TomcatServer tc(rig.s, rig.tomcat_node, 0, rig.router);
  SimTime done;
  ASSERT_TRUE(tc.submit(make_req(2.0), [&](const proto::RequestPtr&) {
    done = rig.s.now();
  }));
  rig.s.run();
  EXPECT_EQ(done, SimTime::millis(2));
  EXPECT_EQ(tc.served(), 1u);
  EXPECT_EQ(tc.resident(), 0);
}

TEST(TomcatServer, DbRoundTripsAddLatencyAndDemand) {
  Rig rig;
  TomcatServer tc(rig.s, rig.tomcat_node, 0, rig.router);
  SimTime done;
  ASSERT_TRUE(tc.submit(make_req(1.0, 2, 0.5), [&](const proto::RequestPtr&) {
    done = rig.s.now();
  }));
  rig.s.run();
  // 1ms CPU + 2 × (0.1 out + 0.5 query + 0.1 back) = 2.4 ms.
  EXPECT_NEAR(done.to_millis(), 2.4, 1e-6);
  EXPECT_EQ(rig.db.queries_served(), 2u);
  EXPECT_EQ(rig.router.queries_routed(), 2u);
}

TEST(TomcatServer, WritesLogBytesOnCompletion) {
  Rig rig;
  TomcatServer tc(rig.s, rig.tomcat_node, 0, rig.router);
  tc.submit(make_req(1.0, 0, 0, 1234), [](const proto::RequestPtr&) {});
  EXPECT_EQ(rig.tomcat_node.page_cache().dirty_bytes(), 0u);  // not yet
  rig.s.run();
  EXPECT_EQ(rig.tomcat_node.page_cache().dirty_bytes(), 1234u);
}

TEST(TomcatServer, ThreadCapQueuesInConnector) {
  Rig rig;
  TomcatConfig cfg;
  cfg.max_threads = 2;
  TomcatServer tc(rig.s, rig.tomcat_node, 0, rig.router, cfg);
  int completed = 0;
  for (int i = 0; i < 5; ++i)
    tc.submit(make_req(1.0), [&](const proto::RequestPtr&) { ++completed; });
  EXPECT_EQ(tc.threads_busy(), 2);
  EXPECT_EQ(tc.resident(), 5);
  rig.s.run();
  EXPECT_EQ(completed, 5);
  EXPECT_DOUBLE_EQ(tc.queue_trace().global_max(), 5.0);
}

TEST(TomcatServer, ConnectorBacklogOverflowRejects) {
  Rig rig;
  TomcatConfig cfg;
  cfg.max_threads = 1;
  cfg.connector_backlog = 2;
  TomcatServer tc(rig.s, rig.tomcat_node, 0, rig.router, cfg);
  int ok = 0;
  for (int i = 0; i < 5; ++i)
    if (tc.submit(make_req(10.0), [](const proto::RequestPtr&) {})) ++ok;
  EXPECT_EQ(ok, 3);  // 1 in service + 2 queued
  EXPECT_EQ(tc.connector_drops(), 2u);
}

TEST(TomcatServer, StalledCpuFreezesService) {
  Rig rig;
  TomcatServer tc(rig.s, rig.tomcat_node, 0, rig.router);
  SimTime done;
  rig.tomcat_node.cpu().set_capacity_factor(0.0);
  tc.submit(make_req(1.0), [&](const proto::RequestPtr&) { done = rig.s.now(); });
  rig.s.after(SimTime::millis(200), [&] {
    rig.tomcat_node.cpu().set_capacity_factor(1.0);
  });
  rig.s.run();
  EXPECT_EQ(done, SimTime::millis(201));
}

TEST(TomcatServer, DbPoolLimitsConcurrentQueries) {
  DbRouterConfig dc;
  dc.pool_per_replica = 1;
  dc.link_latency = sim::SimTime::zero();
  Rig rig(dc);
  TomcatServer tc(rig.s, rig.tomcat_node, 0, rig.router);
  std::vector<SimTime> done;
  for (int i = 0; i < 2; ++i)
    tc.submit(make_req(0.0, 1, 10.0),
              [&](const proto::RequestPtr&) { done.push_back(rig.s.now()); });
  rig.s.run();
  ASSERT_EQ(done.size(), 2u);
  // Serialised by the single DB connection: 10ms then 20ms.
  EXPECT_EQ(done[0].ms(), 10);
  EXPECT_EQ(done[1].ms(), 20);
}

}  // namespace
}  // namespace ntier::server
