#include "millib/detector.h"

#include <gtest/gtest.h>

namespace ntier::millib {
namespace {

using metrics::GaugeSeries;
using sim::SimTime;

GaugeSeries flat_with_spikes() {
  GaugeSeries g(SimTime::millis(50));
  g.set(SimTime::zero(), 5.0);  // steady short queue
  // Spike 1: 1.00-1.15 s, peak 300.
  g.set(SimTime::millis(1000), 300.0);
  g.set(SimTime::millis(1150), 5.0);
  // Spike 2: 3.00-3.05 s, peak 120.
  g.set(SimTime::millis(3000), 120.0);
  g.set(SimTime::millis(3050), 5.0);
  g.finish(SimTime::seconds(5));
  return g;
}

TEST(Detector, FindsBothSpikes) {
  const auto g = flat_with_spikes();
  MillibottleneckDetector det;
  const auto eps = det.detect(g);
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0].start, SimTime::millis(1000));
  EXPECT_NEAR(eps[0].peak, 300.0, 1e-9);
  EXPECT_EQ(eps[1].start, SimTime::millis(3000));
  EXPECT_NEAR(eps[1].peak, 120.0, 1e-9);
}

TEST(Detector, ThresholdIsMedianBased) {
  const auto g = flat_with_spikes();
  MillibottleneckDetector det;
  EXPECT_NEAR(det.threshold_for(g), 25.0, 1e-9);  // median 5 × 5
}

TEST(Detector, QuietGaugeYieldsNothing) {
  GaugeSeries g(SimTime::millis(50));
  g.set(SimTime::zero(), 5.0);
  g.set(SimTime::seconds(1), 6.0);
  g.finish(SimTime::seconds(2));
  MillibottleneckDetector det;
  EXPECT_TRUE(det.detect(g).empty());
}

TEST(Detector, MinAbsoluteFiltersIdleNoise) {
  GaugeSeries g(SimTime::millis(50));
  g.set(SimTime::zero(), 0.0);
  g.set(SimTime::seconds(1), 3.0);  // "spike" of 3 on an idle gauge
  g.set(SimTime::millis(1050), 0.0);
  g.finish(SimTime::seconds(2));
  MillibottleneckDetector det;  // min_absolute = 10
  EXPECT_TRUE(det.detect(g).empty());
}

TEST(Detector, MergesSpikesAcrossShortGaps) {
  GaugeSeries g(SimTime::millis(50));
  g.set(SimTime::zero(), 5.0);
  g.set(SimTime::millis(1000), 200.0);
  g.set(SimTime::millis(1050), 5.0);   // one quiet window
  g.set(SimTime::millis(1100), 180.0);
  g.set(SimTime::millis(1150), 5.0);
  g.finish(SimTime::seconds(3));
  DetectorConfig cfg;
  cfg.merge_gap_windows = 1;
  const auto eps = MillibottleneckDetector(cfg).detect(g);
  ASSERT_EQ(eps.size(), 1u);
  EXPECT_NEAR(eps[0].peak, 200.0, 1e-9);
  EXPECT_EQ(eps[0].end, SimTime::millis(1150));
}

TEST(Detector, OverlapsAnyRespectsSlack) {
  SpikeEpisode e{SimTime::millis(1000), SimTime::millis(1100), 50.0};
  std::vector<std::pair<SimTime, SimTime>> truth = {
      {SimTime::millis(900), SimTime::millis(980)}};
  EXPECT_FALSE(overlaps_any(e, truth, SimTime::zero()));
  EXPECT_TRUE(overlaps_any(e, truth, SimTime::millis(50)));
  EXPECT_FALSE(overlaps_any(e, {}, SimTime::seconds(1)));
}

TEST(Detector, EmptyGaugeIsSafe) {
  GaugeSeries g(SimTime::millis(50));
  MillibottleneckDetector det;
  EXPECT_TRUE(det.detect(g).empty());
}

// ---------------------------------------------------------------------------

struct DipFixture {
  metrics::TimeSeries completions{SimTime::millis(50)};
  GaugeSeries queue{SimTime::millis(50)};

  /// 10 s of steady ~20 completions/window with 5 queued, except a stall in
  /// [4.0 s, 4.3 s): no completions, queue at 200.
  DipFixture() {
    queue.set(SimTime::zero(), 5.0);
    for (int w = 0; w < 200; ++w) {
      const auto t = SimTime::millis(50 * w + 1);
      const bool stalled = w >= 80 && w < 86;
      if (!stalled)
        for (int k = 0; k < 20; ++k) completions.record(t, 1.0);
    }
    queue.set(SimTime::millis(4000), 200.0);
    queue.set(SimTime::millis(4300), 5.0);
    queue.finish(SimTime::seconds(10));
  }
};

TEST(DipDetector, FindsTheStall) {
  DipFixture f;
  ThroughputDipDetector det;
  const auto eps = det.detect(f.completions, f.queue);
  ASSERT_EQ(eps.size(), 1u);
  EXPECT_EQ(eps[0].start, SimTime::millis(4000));
  EXPECT_GE(eps[0].end, SimTime::millis(4300));
  EXPECT_NEAR(eps[0].peak, 200.0, 1e-9);
}

TEST(DipDetector, MedianThroughputIsRobustToTheDip) {
  DipFixture f;
  ThroughputDipDetector det;
  EXPECT_NEAR(det.median_throughput(f.completions), 20.0, 1e-9);
}

TEST(DipDetector, IdleWindowsAreNotBottlenecks) {
  // Completions stop but the queue is empty: the server is idle, not
  // stalled; min_queue filters it.
  metrics::TimeSeries completions(SimTime::millis(50));
  GaugeSeries queue(SimTime::millis(50));
  queue.set(SimTime::zero(), 0.0);
  for (int w = 0; w < 100; ++w) {
    if (w < 50)
      for (int k = 0; k < 10; ++k)
        completions.record(SimTime::millis(50 * w + 1), 1.0);
  }
  queue.finish(SimTime::seconds(5));
  ThroughputDipDetector det;
  EXPECT_TRUE(det.detect(completions, queue).empty());
}

TEST(DipDetector, EmptySeriesIsSafe) {
  metrics::TimeSeries completions(SimTime::millis(50));
  GaugeSeries queue(SimTime::millis(50));
  ThroughputDipDetector det;
  EXPECT_TRUE(det.detect(completions, queue).empty());
  EXPECT_DOUBLE_EQ(det.median_throughput(completions), 0.0);
}

}  // namespace
}  // namespace ntier::millib
