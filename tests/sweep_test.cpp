#include "experiment/sweep.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "test_util.h"

namespace ntier::experiment {
namespace {

using lb::MechanismKind;
using lb::PolicyKind;
using sim::SimTime;

/// A deliberately tiny config so a replica runs in tens of milliseconds.
ExperimentConfig tiny_config() {
  auto c = testing::quick_config(PolicyKind::kCurrentLoad,
                                 MechanismKind::kNonBlocking,
                                 /*millibottlenecks=*/true, SimTime::seconds(3));
  c.num_clients = 400;
  c.warmup = SimTime::millis(500);
  c.label = "sweep_unit";
  return c;
}

TEST(MetricStats, ComputesMeanStddevAndCi) {
  const MetricStats s = MetricStats::from({2.0, 4.0, 6.0, 8.0});
  EXPECT_EQ(s.n, 4);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(20.0 / 3.0), 1e-12);  // sample stddev
  // t_{0.975,3} = 3.182 -> half-width 3.182 * stddev / 2.
  EXPECT_NEAR(s.ci95_half, 3.182 * s.stddev / 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
}

TEST(MetricStats, DegenerateSampleSizes) {
  EXPECT_EQ(MetricStats::from({}).n, 0);
  const MetricStats one = MetricStats::from({7.5});
  EXPECT_EQ(one.n, 1);
  EXPECT_DOUBLE_EQ(one.mean, 7.5);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  EXPECT_DOUBLE_EQ(one.ci95_half, 0.0);
}

TEST(SweepRunner, ReplicaSeedsAreDeterministicAndDistinct) {
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(SweepRunner::replica_seed(42, i), SweepRunner::replica_seed(42, i));
    for (int j = i + 1; j < 64; ++j)
      EXPECT_NE(SweepRunner::replica_seed(42, i), SweepRunner::replica_seed(42, j));
  }
  // The plan embeds those seeds and distinct labels.
  SweepConfig sc;
  sc.base = tiny_config();
  sc.num_runs = 3;
  SweepRunner r(sc);
  ASSERT_EQ(r.planned().size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(r.planned()[static_cast<std::size_t>(i)].seed,
              SweepRunner::replica_seed(sc.base.seed, i));
    EXPECT_EQ(r.planned()[static_cast<std::size_t>(i)].label,
              "sweep_unit#" + std::to_string(i));
  }
}

TEST(SweepRunner, JobsDoNotChangeAggregateBytes) {
  // The headline determinism contract: the same sweep run sequentially and
  // on a thread pool must produce byte-identical aggregate JSON and CSV.
  SweepConfig seq;
  seq.base = tiny_config();
  seq.num_runs = 4;
  seq.jobs = 1;
  SweepConfig par = seq;
  par.jobs = 8;

  const AggregateSummary a = SweepRunner(seq).run();
  const AggregateSummary b = SweepRunner(par).run();
  EXPECT_EQ(a.to_json_string(), b.to_json_string());
  std::ostringstream csv_a, csv_b, runs_a, runs_b;
  a.to_csv(csv_a);
  b.to_csv(csv_b);
  a.per_run_csv(runs_a);
  b.per_run_csv(runs_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_EQ(runs_a.str(), runs_b.str());
}

TEST(SweepRunner, MergedSketchAndOnlineColumnsAreJobsInvariant) {
  // With telemetry + the online detector on, each replica carries a serialized
  // response-time sketch and online-detection stats. Sequential and parallel
  // sweeps must merge to the same bytes and emit the same columns.
  SweepConfig seq;
  seq.base = tiny_config();
  seq.base.telemetry.enabled = true;
  seq.base.online_detect = true;
  seq.num_runs = 4;
  seq.jobs = 1;
  SweepConfig par = seq;
  par.jobs = 8;

  const AggregateSummary a = SweepRunner(seq).run();
  const AggregateSummary b = SweepRunner(par).run();
#ifndef NTIER_OBS_DISABLED
  EXPECT_FALSE(a.merged_rt_sketch().empty());
  EXPECT_EQ(a.merged_rt_sketch().rfind("ddsk1 a=", 0), 0u);
#endif
  EXPECT_EQ(a.merged_rt_sketch(), b.merged_rt_sketch());
  EXPECT_EQ(a.to_json_string(), b.to_json_string());

  std::ostringstream runs, csv;
  a.per_run_csv(runs);
  a.to_csv(csv);
  EXPECT_NE(runs.str().find("online_episodes,online_false_positives,"
                            "online_median_detection_ms,trace_kept_fraction"),
            std::string::npos);
  EXPECT_NE(csv.str().find("online_episodes,"), std::string::npos);
  EXPECT_NE(csv.str().find("online_median_detection_ms,"), std::string::npos);
  EXPECT_NE(csv.str().find("trace_kept_fraction,"), std::string::npos);
}

TEST(SweepRunner, AggregatesMatchPerRunSummaries) {
  SweepConfig sc;
  sc.base = tiny_config();
  sc.num_runs = 3;
  sc.jobs = 2;
  const AggregateSummary agg = SweepRunner(sc).run();
  ASSERT_EQ(agg.runs(), 3);
  // Every replica completed traffic, and distinct seeds produced distinct
  // (but statistically close) runs.
  std::int64_t pooled_expected = 0;
  double mean_sum = 0;
  for (const RunSummary& r : agg.per_run) {
    EXPECT_GT(r.completed, 0);
    pooled_expected += r.completed;
    mean_sum += r.mean_rt_ms;
  }
  EXPECT_EQ(agg.pooled.count(), pooled_expected);
  EXPECT_NEAR(agg.mean_rt_ms.mean, mean_sum / 3.0, 1e-12);
  EXPECT_GT(agg.mean_rt_ms.stddev, 0.0);  // seeds actually differ
  EXPECT_EQ(agg.completed.n, 3);
}

TEST(AggregateSummary, MergeIsAssociative) {
  SweepConfig sc;
  sc.base = tiny_config();
  sc.num_runs = 2;
  AggregateSummary a = SweepRunner(sc).run();
  sc.base.seed = 43;
  AggregateSummary b = SweepRunner(sc).run();
  sc.base.seed = 44;
  AggregateSummary c = SweepRunner(sc).run();

  const AggregateSummary left =
      AggregateSummary::merge(AggregateSummary::merge(a, b), c);
  const AggregateSummary right =
      AggregateSummary::merge(a, AggregateSummary::merge(b, c));
  EXPECT_EQ(left.to_json_string(), right.to_json_string());
  EXPECT_EQ(left.runs(), 6);
  EXPECT_EQ(left.pooled.count(), right.pooled.count());
}

TEST(AggregateSummary, JsonAndCsvCarryCiColumns) {
  SweepConfig sc;
  sc.base = tiny_config();
  sc.num_runs = 2;
  const AggregateSummary agg = SweepRunner(sc).run();
  const std::string json = agg.to_json_string();
  EXPECT_NE(json.find("\"ci95_half\""), std::string::npos);
  EXPECT_NE(json.find("\"pooled\""), std::string::npos);
  EXPECT_NE(json.find("\"run_seeds\""), std::string::npos);
  EXPECT_NE(json.find("\"per_run\""), std::string::npos);
  std::ostringstream csv;
  agg.to_csv(csv);
  EXPECT_NE(csv.str().find("metric,n,mean,stddev,ci95_half,min,max"),
            std::string::npos);
}

TEST(SweepRunner, GridModeRunsConfigsAsGiven) {
  SweepConfig sc;
  sc.base = tiny_config();  // ignored in grid mode
  ExperimentConfig g1 = tiny_config();
  g1.label = "grid_a";
  g1.seed = 7;
  ExperimentConfig g2 = tiny_config();
  g2.label = "grid_b";
  g2.seed = 9;
  g2.policy = lb::PolicyKind::kTotalRequest;
  sc.grid = {g1, g2};
  sc.jobs = 2;
  const AggregateSummary agg = SweepRunner(sc).run();
  ASSERT_EQ(agg.runs(), 2);
  EXPECT_EQ(agg.run_seeds, (std::vector<std::uint64_t>{7, 9}));
  EXPECT_EQ(agg.per_run[0].label, "grid_a");
  EXPECT_EQ(agg.per_run[1].label, "grid_b");
}

TEST(SweepRunner, RejectsBadConfig) {
  SweepConfig sc;
  sc.base = tiny_config();
  sc.num_runs = 0;
  EXPECT_THROW(SweepRunner{sc}, std::invalid_argument);
  sc.num_runs = 2;
  sc.jobs = 0;
  EXPECT_THROW(SweepRunner{sc}, std::invalid_argument);
}

}  // namespace
}  // namespace ntier::experiment
