// End-to-end tests of the cache tier inside the full n-tier stack: warm-hit
// behaviour, invalidation storms under the chaos controller, the cache cell
// of the chaos invariant matrix, and the byte-determinism / jobs-invariance
// guarantees every subsystem must preserve.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "experiment/chaos.h"
#include "experiment/experiment.h"
#include "experiment/summary.h"
#include "experiment/sweep.h"
#include "millib/fault_plan.h"
#include "obs/trace_io.h"

namespace ntier::experiment {
namespace {

using sim::SimTime;

ExperimentConfig cache_base(const char* label) {
  ExperimentConfig c;
  c.label = label;
  c.num_apaches = 2;
  c.num_tomcats = 3;
  c.num_clients = 300;
  c.think_mean = SimTime::millis(200);
  c.warmup = SimTime::millis(500);
  c.policy = lb::PolicyKind::kCurrentLoad;
  c.mechanism = lb::MechanismKind::kNonBlocking;
  c.tomcat_millibottlenecks = false;
  c.tracing = false;
  c.db_tier = server::DbTier::kKv;
  c.kv.replicas = 5;  // N=3, R=W=2 defaults
  c.workload.key_space = 10'000;
  c.workload.zipf_s = 1.1;
  c.cache_tier = true;
  c.cache.nodes = 2;
  return c;
}

// A quiet run: the Zipf-hot working set fits comfortably, so after warmup
// most reads are cache hits, and the accounting identities hold after drain.
TEST(CacheE2e, WarmCacheServesHitsWithCleanAccounting) {
  ExperimentConfig c = cache_base("cache_warm");
  const ChaosRunResult r =
      run_chaos(std::move(c), SimTime::seconds(5), SimTime::seconds(5));

  EXPECT_TRUE(r.invariants.ok()) << r.invariants.to_string();
  EXPECT_GT(r.invariants.cache_lookups, 0u);
  EXPECT_GT(r.invariants.cache_hits, 0u);
  EXPECT_GT(r.summary.cache_hit_ratio, 0.2);
  EXPECT_EQ(r.summary.balancer_errors, 0u);
}

// The storm fault applies through the chaos controller and actually bites:
// invalidations flow (some possibly dropped by the bounded queue), yet the
// identities still hold once the queues drain.
TEST(CacheE2e, InvalidationStormKeepsAccountingIntact) {
  ExperimentConfig c = cache_base("cache_storm");
  const SimTime traffic = SimTime::seconds(5);
  millib::FaultSpec storm;
  storm.kind = millib::FaultKind::kInvalidationStorm;
  storm.start = traffic / 3;
  storm.duration = traffic / 3;
  storm.severity = 2.0;
  c.fault_plan = millib::FaultPlan::single(storm);

  const ChaosRunResult r = run_chaos(std::move(c), traffic, SimTime::seconds(5));

  EXPECT_TRUE(r.invariants.ok()) << r.invariants.to_string();
  EXPECT_GT(r.invariants.cache_invalidations_sent, 0u);
  EXPECT_GT(r.summary.cache_invalidations, 0u);
  // The storm wiped hot keys, so some lookups after it must have missed.
  EXPECT_GT(r.invariants.cache_misses, 0u);
  EXPECT_EQ(r.invariants.cache_invalidations_pending, 0u);
}

TEST(CacheE2e, CacheRunIsByteDeterministic) {
  auto once = [] {
    ExperimentConfig c = cache_base("cache_determinism");
    c.duration = SimTime::seconds(4);
    c.event_trace = true;  // retain the event ring so the JSONL compares too
    millib::FaultSpec storm;
    storm.kind = millib::FaultKind::kInvalidationStorm;
    storm.start = SimTime::seconds(1);
    storm.duration = SimTime::seconds(1);
    storm.severity = 1.0;
    c.fault_plan = millib::FaultPlan::single(storm);
    Experiment e(std::move(c));
    e.run();
    std::ostringstream trace;
    obs::write_jsonl(trace, *e.trace());
    return summarize(e).to_json_string() + "\n" + trace.str();
  };
  EXPECT_EQ(once(), once());
}

TEST(CacheE2e, CacheSweepAggregatesAreJobsInvariant) {
  auto sweep = [](int jobs) {
    SweepConfig sc;
    sc.base = cache_base("cache_sweep");
    sc.base.num_clients = 200;
    sc.base.duration = SimTime::seconds(4);
    sc.num_runs = 3;
    sc.jobs = jobs;
    return SweepRunner(std::move(sc)).run().to_json_string();
  };
  EXPECT_EQ(sweep(1), sweep(8));
}

// -- Cache chaos matrix -------------------------------------------------------

CacheChaosMatrixOptions small_cache_matrix() {
  CacheChaosMatrixOptions opt;
  opt.chaos_seed = 42;
  opt.num_apaches = 2;
  opt.num_tomcats = 3;
  opt.kv_replicas = 5;
  opt.cache_nodes = 2;
  opt.num_clients = 200;
  opt.think_mean = SimTime::millis(200);
  opt.traffic = SimTime::seconds(5);
  opt.drain = SimTime::seconds(5);
  return opt;
}

TEST(CacheChaosMatrix, PlanHoldsBothStormsAndTheCrash) {
  const auto opt = small_cache_matrix();
  const auto plan = cache_matrix_plan(opt);
  const std::string trace = plan.trace_string();
  EXPECT_NE(
      trace.find(millib::to_string(millib::FaultKind::kInvalidationStorm)),
      std::string::npos)
      << trace;
  EXPECT_NE(trace.find(millib::to_string(millib::FaultKind::kReplicaCrash)),
            std::string::npos)
      << trace;
  EXPECT_EQ(cache_matrix_plan(opt).trace_string(), trace);
}

// The cache accounting invariant across the whole cell slice: every lookup
// resolves, every miss fills or coalesces, every invalidation is delivered
// or counted as a drop, and nothing is pending once the drain ends — under
// storms overlapping a replica crash, for every policy x mechanism cell.
TEST(CacheChaosMatrix, CacheAccountingHoldsInEveryCell) {
  const auto results = run_cache_chaos_matrix(small_cache_matrix());
  ASSERT_EQ(results.size(), 8u);  // 4 policies x 2 mechanisms
  for (const auto& r : results) {
    SCOPED_TRACE(r.label);
    EXPECT_TRUE(r.invariants.ok()) << r.invariants.to_string();
    EXPECT_GT(r.invariants.cache_lookups, 0u);
    EXPECT_GT(r.invariants.cache_hits, 0u);
    EXPECT_GT(r.invariants.cache_invalidations_sent, 0u);
    // The KV invariants keep holding underneath the cache.
    EXPECT_GT(r.invariants.kv_reads_issued, 0u);
    EXPECT_EQ(r.invariants.kv_quorum_failed_reads, 0u);
    EXPECT_EQ(r.invariants.kv_quorum_failed_writes, 0u);
  }
}

}  // namespace
}  // namespace ntier::experiment
