#include "os/cpu.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace ntier::os {
namespace {

using sim::SimTime;
using sim::Simulation;

TEST(Cpu, SingleJobRunsAtFullSpeed) {
  Simulation s;
  CpuResource cpu(s, 4);
  SimTime done;
  cpu.submit(SimTime::millis(10), [&] { done = s.now(); });
  s.run();
  EXPECT_EQ(done, SimTime::millis(10));
}

TEST(Cpu, FewerJobsThanCoresDoNotShare) {
  Simulation s;
  CpuResource cpu(s, 4);
  std::vector<SimTime> done(3);
  for (int i = 0; i < 3; ++i)
    cpu.submit(SimTime::millis(10), [&, i] { done[static_cast<std::size_t>(i)] = s.now(); });
  s.run();
  for (const auto& t : done) EXPECT_EQ(t, SimTime::millis(10));
}

TEST(Cpu, ProcessorSharingBeyondCores) {
  Simulation s;
  CpuResource cpu(s, 1);
  // Two equal jobs on one core: each runs at rate 1/2, finishing together at 2×.
  std::vector<SimTime> done(2);
  for (int i = 0; i < 2; ++i)
    cpu.submit(SimTime::millis(10), [&, i] { done[static_cast<std::size_t>(i)] = s.now(); });
  s.run();
  EXPECT_EQ(done[0].ms(), 20);
  EXPECT_EQ(done[1].ms(), 20);
}

TEST(Cpu, ShorterJobLeavesFirstAndSpeedsUpSurvivor) {
  Simulation s;
  CpuResource cpu(s, 1);
  SimTime short_done, long_done;
  cpu.submit(SimTime::millis(10), [&] { short_done = s.now(); });
  cpu.submit(SimTime::millis(20), [&] { long_done = s.now(); });
  s.run();
  // Shared until short job accrues 10ms of service at rate 1/2 => t=20ms.
  EXPECT_EQ(short_done.ms(), 20);
  // Long job then has 10ms left at full speed => t=30ms.
  EXPECT_EQ(long_done.ms(), 30);
}

TEST(Cpu, LateArrivalSharesRemainder) {
  Simulation s;
  CpuResource cpu(s, 1);
  SimTime a_done, b_done;
  cpu.submit(SimTime::millis(10), [&] { a_done = s.now(); });
  s.after(SimTime::millis(5), [&] {
    cpu.submit(SimTime::millis(10), [&] { b_done = s.now(); });
  });
  s.run();
  // a: 5ms alone (5 served), then shares: needs 5 more at 1/2 => done at 15.
  EXPECT_EQ(a_done.ms(), 15);
  // b: from 5..15 gets 5ms of service, then alone: 5 left => done at 20.
  EXPECT_EQ(b_done.ms(), 20);
}

TEST(Cpu, CapacityFactorZeroFreezesProgress) {
  Simulation s;
  CpuResource cpu(s, 4);
  SimTime done;
  cpu.submit(SimTime::millis(10), [&] { done = s.now(); });
  s.after(SimTime::millis(5), [&] { cpu.set_capacity_factor(0.0); });
  s.after(SimTime::millis(105), [&] { cpu.set_capacity_factor(1.0); });
  s.run();
  // 5ms served, 100ms frozen, 5ms to finish.
  EXPECT_EQ(done.ms(), 110);
}

TEST(Cpu, PartialCapacitySlowsJobs) {
  Simulation s;
  CpuResource cpu(s, 1);
  cpu.set_capacity_factor(0.5);
  SimTime done;
  cpu.submit(SimTime::millis(10), [&] { done = s.now(); });
  s.run();
  EXPECT_EQ(done.ms(), 20);
}

TEST(Cpu, CancelStopsCallbackAndFreesShare) {
  Simulation s;
  CpuResource cpu(s, 1);
  bool cancelled_fired = false;
  SimTime done;
  const auto id = cpu.submit(SimTime::millis(10), [&] { cancelled_fired = true; });
  cpu.submit(SimTime::millis(10), [&] { done = s.now(); });
  s.after(SimTime::millis(2), [&] { EXPECT_TRUE(cpu.cancel(id)); });
  s.run();
  EXPECT_FALSE(cancelled_fired);
  // Survivor: 2ms shared (1 served) + 9 alone => 11ms total.
  EXPECT_EQ(done.ms(), 11);
  EXPECT_FALSE(cpu.cancel(id));  // double cancel
}

TEST(Cpu, WorkAccounting) {
  Simulation s;
  CpuResource cpu(s, 4);
  for (int i = 0; i < 3; ++i) cpu.submit(SimTime::millis(10), [] {});
  s.run();
  EXPECT_NEAR(cpu.work_done_core_seconds(), 0.030, 1e-9);
}

TEST(Cpu, UtilisationProbe) {
  Simulation s;
  CpuResource cpu(s, 4);
  cpu.submit(SimTime::millis(100), [] {});
  s.run_until(SimTime::millis(100));
  const auto p = cpu.probe_utilisation();
  // 1 job on 4 cores for the whole interval: 25% foreground, no stall.
  EXPECT_NEAR(p.foreground, 0.25, 1e-6);
  EXPECT_NEAR(p.stall, 0.0, 1e-9);
}

TEST(Cpu, StallShowsInProbe) {
  Simulation s;
  CpuResource cpu(s, 4);
  s.after(SimTime::millis(0), [&] { cpu.set_capacity_factor(0.03); });
  s.after(SimTime::millis(100), [&] { cpu.set_capacity_factor(1.0); });
  s.run_until(SimTime::millis(200));
  const auto p = cpu.probe_utilisation();
  EXPECT_NEAR(p.stall, 0.485, 0.01);  // (1-0.03)*100ms over 200ms
  EXPECT_NEAR(p.combined(), 0.485, 0.01);
}

TEST(Cpu, JobsRunningGauge) {
  Simulation s;
  CpuResource cpu(s, 2);
  cpu.submit(SimTime::millis(10), [] {});
  cpu.submit(SimTime::millis(10), [] {});
  EXPECT_EQ(cpu.jobs_running(), 2u);
  s.run();
  EXPECT_EQ(cpu.jobs_running(), 0u);
}

TEST(Cpu, ZeroDemandJobCompletesImmediately) {
  Simulation s;
  CpuResource cpu(s, 1);
  bool done = false;
  cpu.submit(SimTime::zero(), [&] { done = true; });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(s.now(), SimTime::zero());
}

TEST(Cpu, RejectsInvalidArguments) {
  Simulation s;
  EXPECT_THROW(CpuResource(s, 0), std::invalid_argument);
  CpuResource cpu(s, 1);
  EXPECT_THROW(cpu.submit(SimTime::millis(-1), [] {}), std::invalid_argument);
  EXPECT_THROW(cpu.set_capacity_factor(1.5), std::invalid_argument);
  EXPECT_THROW(cpu.set_capacity_factor(-0.1), std::invalid_argument);
}

TEST(Cpu, SubmitDuringStallRunsAfterRecovery) {
  Simulation s;
  CpuResource cpu(s, 1);
  cpu.set_capacity_factor(0.0);
  SimTime done;
  cpu.submit(SimTime::millis(10), [&] { done = s.now(); });
  s.after(SimTime::millis(50), [&] { cpu.set_capacity_factor(1.0); });
  s.run();
  EXPECT_EQ(done.ms(), 60);
}

TEST(Cpu, ManyJobsConserveWork) {
  Simulation s;
  CpuResource cpu(s, 4);
  int completed = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    s.after(SimTime::micros(i * 37), [&] {
      cpu.submit(SimTime::micros(100 + (completed % 7) * 13),
                 [&] { ++completed; });
    });
  }
  s.run();
  EXPECT_EQ(completed, n);
}

}  // namespace
}  // namespace ntier::os
