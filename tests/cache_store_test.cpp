// Unit tests of the per-node cache store: bounded LRU order, lazy TTL
// expiry, invalidation, and the capacity floor — the building block under
// the cache tier's accounting identities.
#include "cache/store.h"

#include <gtest/gtest.h>

#include "cache/config.h"
#include "sim/time.h"

namespace ntier::cache {
namespace {

using sim::SimTime;

constexpr SimTime kTtl = SimTime::seconds(10);

TEST(CacheStore, MissThenInsertThenHit) {
  CacheStore store(4);
  EXPECT_FALSE(store.lookup(1, SimTime::zero()));
  store.insert(1, SimTime::zero(), kTtl);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.lookup(1, SimTime::millis(1)));
  EXPECT_EQ(store.evictions(), 0u);
  EXPECT_EQ(store.expirations(), 0u);
}

TEST(CacheStore, EvictsLeastRecentlyUsedAtCapacity) {
  CacheStore store(2);
  store.insert(1, SimTime::zero(), kTtl);
  store.insert(2, SimTime::millis(1), kTtl);
  // Touch key 1 so key 2 becomes the LRU victim.
  EXPECT_TRUE(store.lookup(1, SimTime::millis(2)));
  store.insert(3, SimTime::millis(3), kTtl);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_TRUE(store.lookup(1, SimTime::millis(4)));
  EXPECT_FALSE(store.lookup(2, SimTime::millis(4)));  // evicted
  EXPECT_TRUE(store.lookup(3, SimTime::millis(4)));
}

TEST(CacheStore, ReinsertRefreshesInsteadOfEvicting) {
  CacheStore store(2);
  store.insert(1, SimTime::zero(), kTtl);
  store.insert(2, SimTime::zero(), kTtl);
  store.insert(1, SimTime::millis(1), kTtl);  // refresh, not a new entry
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evictions(), 0u);
}

TEST(CacheStore, TtlExpiresLazilyAtLookup) {
  CacheStore store(4);
  store.insert(1, SimTime::zero(), SimTime::millis(5));
  EXPECT_TRUE(store.lookup(1, SimTime::millis(4)));  // still live
  EXPECT_FALSE(store.lookup(1, SimTime::millis(6)));  // dead: erased + counted
  EXPECT_EQ(store.expirations(), 1u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(CacheStore, ReinsertExtendsExpiry) {
  CacheStore store(4);
  store.insert(1, SimTime::zero(), SimTime::millis(5));
  store.insert(1, SimTime::millis(4), SimTime::millis(5));
  EXPECT_TRUE(store.lookup(1, SimTime::millis(8)));  // refreshed to t=9ms
  EXPECT_EQ(store.expirations(), 0u);
}

TEST(CacheStore, HoldsProbesWithoutPromoting) {
  CacheStore store(2);
  store.insert(1, SimTime::zero(), kTtl);
  store.insert(2, SimTime::millis(1), kTtl);
  // holds() must not promote key 1, so it stays the LRU victim.
  EXPECT_TRUE(store.holds(1, SimTime::millis(2)));
  store.insert(3, SimTime::millis(3), kTtl);
  EXPECT_FALSE(store.holds(1, SimTime::millis(4)));  // evicted despite probe
  EXPECT_TRUE(store.holds(2, SimTime::millis(4)));
}

TEST(CacheStore, HoldsErasesAndCountsExpiredEntries) {
  CacheStore store(4);
  store.insert(1, SimTime::zero(), SimTime::millis(5));
  EXPECT_FALSE(store.holds(1, SimTime::millis(6)));
  EXPECT_EQ(store.expirations(), 1u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(CacheStore, InvalidateDropsResidentKeysOnly) {
  CacheStore store(4);
  store.insert(1, SimTime::zero(), kTtl);
  EXPECT_TRUE(store.invalidate(1));
  EXPECT_FALSE(store.invalidate(1));  // already gone
  EXPECT_FALSE(store.invalidate(99));
  EXPECT_EQ(store.size(), 0u);
  // Invalidation is neither an eviction nor an expiration.
  EXPECT_EQ(store.evictions(), 0u);
  EXPECT_EQ(store.expirations(), 0u);
}

TEST(CacheStore, ZeroCapacityClampsToOneEntry) {
  CacheStore store(0);
  EXPECT_EQ(store.capacity(), 1u);
  store.insert(1, SimTime::zero(), kTtl);
  store.insert(2, SimTime::millis(1), kTtl);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_TRUE(store.lookup(2, SimTime::millis(2)));
}

// -- CacheConfig parsing ------------------------------------------------------

TEST(CacheConfig, RoundTripsThroughString) {
  CacheConfig c;
  c.nodes = 3;
  c.bytes = 1ull << 20;
  c.entry_bytes = 1024;
  c.ttl = SimTime::millis(2500);
  c.invalidation_queue_capacity = 128;
  c.coalesce = false;
  std::string err;
  const auto parsed = cache_config_from_string(c.to_string(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->to_string(), c.to_string());
}

TEST(CacheConfig, ParseAppliesPartialOverridesOverDefaults) {
  std::string err;
  const auto parsed = cache_config_from_string("nodes=4,ttl_ms=500", &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->nodes, 4);
  EXPECT_EQ(parsed->ttl, SimTime::millis(500));
  EXPECT_EQ(parsed->entry_bytes, 4096u);  // untouched default
}

TEST(CacheConfig, RejectsUnknownKeysAndMalformedItems) {
  std::string err;
  EXPECT_FALSE(cache_config_from_string("bogus=1", &err).has_value());
  EXPECT_NE(err.find("unknown key"), std::string::npos) << err;
  EXPECT_FALSE(cache_config_from_string("nodes", &err).has_value());
  EXPECT_FALSE(cache_config_from_string("nodes=two", &err).has_value());
}

TEST(CacheConfig, RejectsInvalidGeometry) {
  std::string err;
  EXPECT_FALSE(cache_config_from_string("nodes=0", &err).has_value());
  EXPECT_FALSE(cache_config_from_string("bytes=0", &err).has_value());
  EXPECT_FALSE(cache_config_from_string("entry=0", &err).has_value());
  EXPECT_FALSE(cache_config_from_string("ttl_ms=0", &err).has_value());
}

TEST(CacheConfig, CapacityEntriesHasAFloorOfOne) {
  CacheConfig c;
  c.bytes = 1024;
  c.entry_bytes = 4096;  // bigger than the whole budget
  EXPECT_EQ(c.capacity_entries(), 1u);
  c.bytes = 64ull << 20;
  EXPECT_EQ(c.capacity_entries(), (64ull << 20) / 4096u);
}

}  // namespace
}  // namespace ntier::cache
