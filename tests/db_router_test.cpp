#include "server/db_router.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace ntier::server {
namespace {

using sim::SimTime;
using sim::Simulation;

os::NodeConfig plain_node() {
  os::NodeConfig nc;
  nc.cores = 4;
  nc.pdflush.enabled = false;
  return nc;
}

proto::RequestPtr make_req(std::uint64_t id = 1) {
  auto r = std::make_shared<proto::Request>();
  r->id = id;
  return r;
}

struct Rig {
  explicit Rig(int replicas, DbRouterConfig dc = {}) {
    for (int i = 0; i < replicas; ++i) {
      nodes.push_back(std::make_unique<os::Node>(s, plain_node()));
      dbs.push_back(std::make_unique<MySqlServer>(s, *nodes.back()));
    }
    std::vector<MySqlServer*> ptrs;
    for (auto& d : dbs) ptrs.push_back(d.get());
    dc.link_latency = SimTime::zero();
    router = std::make_unique<DbRouter>(s, ptrs, dc);
  }

  Simulation s;
  std::vector<std::unique_ptr<os::Node>> nodes;
  std::vector<std::unique_ptr<MySqlServer>> dbs;
  std::unique_ptr<DbRouter> router;
};

TEST(DbRouter, RejectsEmptyReplicaSet) {
  Simulation s;
  EXPECT_THROW(DbRouter(s, {}, {}), std::invalid_argument);
}

TEST(DbRouter, SingleReplicaRoundTrip) {
  Rig rig(1);
  SimTime done;
  rig.router->query(make_req(), SimTime::millis(3), [&] { done = rig.s.now(); });
  rig.s.run();
  EXPECT_EQ(done, SimTime::millis(3));
  EXPECT_EQ(rig.router->queries_routed(), 1u);
  EXPECT_EQ(rig.dbs[0]->queries_served(), 1u);
}

TEST(DbRouter, SpreadsAcrossReplicas) {
  Rig rig(2);
  for (int i = 0; i < 100; ++i) {
    rig.s.after(SimTime::millis(i), [&, i] {
      rig.router->query(make_req(static_cast<std::uint64_t>(i)),
                        SimTime::millis(2), [] {});
    });
  }
  rig.s.run();
  EXPECT_GT(rig.dbs[0]->queries_served(), 30u);
  EXPECT_GT(rig.dbs[1]->queries_served(), 30u);
  EXPECT_EQ(rig.dbs[0]->queries_served() + rig.dbs[1]->queries_served(), 100u);
}

TEST(DbRouter, QueueingPoolSerialisesWhenExhausted) {
  DbRouterConfig dc;
  dc.pool_per_replica = 1;
  Rig rig(1, dc);
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i)
    rig.router->query(make_req(), SimTime::millis(10),
                      [&] { done.push_back(rig.s.now()); });
  // Queries beyond the pool wait FIFO inside the pool, not in the balancer.
  EXPECT_EQ(rig.router->balancer().pool(0).waiting(), 2u);
  rig.s.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[2].ms(), 30);
  EXPECT_EQ(rig.router->errors(), 0u);
}

TEST(DbRouter, QueueingPoolCommitsToStalledReplica) {
  // The stock DB path has the same defect the paper studies at the web
  // tier: with a condvar pool + cumulative policy, queries keep piling onto
  // a stalled replica.
  DbRouterConfig dc;
  dc.policy = lb::PolicyKind::kTotalRequest;
  dc.mechanism = lb::MechanismKind::kQueueing;
  dc.pool_per_replica = 4;
  Rig rig(2, dc);
  rig.nodes[0]->cpu().set_capacity_factor(0.0);  // replica 1 stalls

  int completed = 0;
  for (int i = 0; i < 40; ++i) {
    rig.s.after(SimTime::millis(i), [&] {
      rig.router->query(make_req(), SimTime::millis(1), [&] { ++completed; });
    });
  }
  rig.s.run_until(SimTime::millis(200));
  // total_request keeps ranking the stalled replica lowest (its counter is
  // frozen), so a large share of queries is stuck on it.
  EXPECT_GT(rig.router->balancer().record(0).committed, 10);
  EXPECT_LT(completed, 35);
}

TEST(DbRouter, CurrentLoadNonBlockingAvoidsStalledReplica) {
  // Both remedies applied at the DB tier (paper §VIII: "other load
  // balancers in N-tier systems can take advantage of our remedies").
  DbRouterConfig dc;
  dc.policy = lb::PolicyKind::kCurrentLoad;
  dc.mechanism = lb::MechanismKind::kNonBlocking;
  dc.pool_per_replica = 4;
  Rig rig(2, dc);
  rig.nodes[0]->cpu().set_capacity_factor(0.0);

  int completed = 0;
  for (int i = 0; i < 40; ++i) {
    rig.s.after(SimTime::millis(i), [&] {
      rig.router->query(make_req(), SimTime::millis(1), [&] { ++completed; });
    });
  }
  rig.s.run_until(SimTime::millis(200));
  // At most the pool capacity is pinned on the stalled replica; the rest
  // flowed to the healthy one.
  EXPECT_LE(rig.router->balancer().record(0).committed, 4);
  EXPECT_GE(completed, 35);
}

TEST(DbRouter, AllReplicasSidelinedCountsErrors) {
  DbRouterConfig dc;
  dc.policy = lb::PolicyKind::kCurrentLoad;
  dc.mechanism = lb::MechanismKind::kNonBlocking;
  dc.pool_per_replica = 1;
  Rig rig(1, dc);
  rig.nodes[0]->cpu().set_capacity_factor(0.0);
  int completions = 0;
  rig.router->query(make_req(), SimTime::millis(1), [&] { ++completions; });
  rig.router->query(make_req(), SimTime::millis(1), [&] { ++completions; });
  // Second query: pool exhausted, no fallback -> SQL error, done fired.
  EXPECT_EQ(rig.router->errors(), 1u);
  EXPECT_EQ(completions, 1);  // the errored query completed (with an error)
}

}  // namespace
}  // namespace ntier::server
