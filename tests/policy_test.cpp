#include "lb/policy.h"

#include <gtest/gtest.h>

namespace ntier::lb {
namespace {

proto::Request req_with_bytes(std::uint32_t in, std::uint32_t out) {
  proto::Request r;
  r.request_bytes = in;
  r.response_bytes = out;
  return r;
}

std::vector<WorkerRecord> make_records(int n) {
  std::vector<WorkerRecord> recs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) recs[static_cast<std::size_t>(i)].tomcat_id = i;
  return recs;
}

std::vector<int> all_of(int n) {
  std::vector<int> v;
  for (int i = 0; i < n; ++i) v.push_back(i);
  return v;
}

constexpr PolicyKind kAllKinds[] = {
    PolicyKind::kTotalRequest, PolicyKind::kTotalTraffic,
    PolicyKind::kCurrentLoad,  PolicyKind::kSessions,
    PolicyKind::kRoundRobin,   PolicyKind::kRandom,
    PolicyKind::kTwoChoices,   PolicyKind::kPowerOfD,
    PolicyKind::kPrequal};

TEST(Policy, FactoryRoundTrips) {
  for (auto kind : kAllKinds) {
    auto p = make_policy(kind);
    EXPECT_EQ(p->kind(), kind);
    EXPECT_FALSE(p->name().empty());
  }
}

TEST(Policy, StringRoundTripsForEveryKind) {
  // to_string -> policy_from_string is the identity for every PolicyKind:
  // the CLI's single parse point must accept exactly what we print.
  for (auto kind : kAllKinds) {
    const std::string name = to_string(kind);
    EXPECT_NE(name, "?");
    const auto back = policy_from_string(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, kind);
  }
  // The documented alias and the failure path.
  EXPECT_EQ(policy_from_string("po2d"), PolicyKind::kPowerOfD);
  EXPECT_FALSE(policy_from_string("fastest").has_value());
  EXPECT_FALSE(policy_from_string("").has_value());
}

TEST(Policy, ProbeAwarenessIsLimitedToTheProbeFamily) {
  for (auto kind : kAllKinds) {
    const bool expect = kind == PolicyKind::kPowerOfD ||
                        kind == PolicyKind::kPrequal;
    EXPECT_EQ(policy_uses_probes(kind), expect) << to_string(kind);
  }
}

TEST(Policy, DefaultPickChoosesLowestLbValueFirstOnTies) {
  auto recs = make_records(4);
  sim::Rng rng(1);
  TotalRequestPolicy p;
  EXPECT_EQ(p.pick(recs, all_of(4), rng), 0);  // all zero -> first
  recs[0].lb_value = 5;
  recs[2].lb_value = 1;
  EXPECT_EQ(p.pick(recs, all_of(4), rng), 1);  // 0 at index 1 and 3: first wins
  recs[1].lb_value = 2;
  recs[3].lb_value = 2;
  EXPECT_EQ(p.pick(recs, all_of(4), rng), 2);
}

TEST(Policy, PickRespectsEligibleSubset) {
  auto recs = make_records(4);
  recs[0].lb_value = 0;
  recs[1].lb_value = 1;
  recs[2].lb_value = 2;
  sim::Rng rng(1);
  TotalRequestPolicy p;
  EXPECT_EQ(p.pick(recs, {1, 2}, rng), 1);
  EXPECT_EQ(p.pick(recs, {}, rng), -1);
}

TEST(Policy, TotalRequestIncrementsOnAssignOnly) {
  auto recs = make_records(1);
  TotalRequestPolicy p;
  proto::Request r;
  p.on_assigned(recs[0], r);
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 1.0);
  p.on_completed(recs[0], r);
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 1.0);  // completion is a no-op
}

TEST(Policy, TotalTrafficIncrementsOnCompletionWithBytes) {
  auto recs = make_records(1);
  TotalTrafficPolicy p;
  auto r = req_with_bytes(400, 1600);
  p.on_assigned(recs[0], r);
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 0.0);  // assignment is a no-op
  p.on_completed(recs[0], r);
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 2000.0);
}

TEST(Policy, CurrentLoadTracksOutstanding) {
  auto recs = make_records(1);
  CurrentLoadPolicy p;
  proto::Request r;
  p.on_assigned(recs[0], r);
  p.on_assigned(recs[0], r);
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 2.0);
  p.on_completed(recs[0], r);
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 1.0);
  p.on_completed(recs[0], r);
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 0.0);
  p.on_completed(recs[0], r);  // Algorithm 4 floors at zero
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 0.0);
}

TEST(Policy, FrozenLbValueAttractsAllPicks) {
  // The §V-A failure mode in miniature: worker 0 stalls (its lb_value stops
  // moving) while the others advance; every pick lands on worker 0.
  auto recs = make_records(4);
  sim::Rng rng(1);
  TotalRequestPolicy p;
  proto::Request r;
  for (auto& rec : recs) rec.lb_value = 100;
  for (int i = 0; i < 50; ++i) {
    const int k = p.pick(recs, all_of(4), rng);
    if (k != 0) p.on_assigned(recs[static_cast<std::size_t>(k)], r);
    // worker 0's assignment "hangs": no lb_value update
  }
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(p.pick(recs, all_of(4), rng), 0);
}

TEST(Policy, CurrentLoadAvoidsStalledWorker) {
  // Same scenario under the remedy: worker 0's outstanding grows since
  // completions stop; picks immediately move elsewhere.
  auto recs = make_records(4);
  sim::Rng rng(1);
  CurrentLoadPolicy p;
  proto::Request r;
  int stalled_picks = 0;
  for (int i = 0; i < 100; ++i) {
    const int k = p.pick(recs, all_of(4), rng);
    p.on_assigned(recs[static_cast<std::size_t>(k)], r);
    if (k == 0) {
      ++stalled_picks;  // worker 0 never completes
    } else {
      p.on_completed(recs[static_cast<std::size_t>(k)], r);  // healthy: instant
    }
  }
  EXPECT_LE(stalled_picks, 2);  // picked at most until its lb_value rose
}

TEST(Policy, SessionsCountsOnlyNewSessions) {
  auto recs = make_records(1);
  SessionsPolicy p;
  proto::Request fresh;                 // no route: a new session
  proto::Request returning;
  returning.session_route = 0;          // already owned
  p.on_assigned(recs[0], fresh);
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 1.0);
  p.on_assigned(recs[0], returning);
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 1.0);  // returning visits are free
  p.on_completed(recs[0], fresh);
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 1.0);
}

TEST(Policy, SessionsRespectsWeights) {
  auto recs = make_records(1);
  recs[0].weight = 2.0;
  SessionsPolicy p;
  proto::Request fresh;
  p.on_assigned(recs[0], fresh);
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 0.5);
}

TEST(Policy, RoundRobinCycles) {
  auto recs = make_records(3);
  sim::Rng rng(1);
  RoundRobinPolicy p;
  EXPECT_EQ(p.pick(recs, all_of(3), rng), 0);
  EXPECT_EQ(p.pick(recs, all_of(3), rng), 1);
  EXPECT_EQ(p.pick(recs, all_of(3), rng), 2);
  EXPECT_EQ(p.pick(recs, all_of(3), rng), 0);
}

TEST(Policy, RandomIsUniformish) {
  auto recs = make_records(4);
  sim::Rng rng(7);
  RandomPolicy p;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 10'000; ++i)
    ++counts[static_cast<std::size_t>(p.pick(recs, all_of(4), rng))];
  for (int c : counts) EXPECT_NEAR(c, 2500, 250);
}

TEST(Policy, TwoChoicesPrefersFewerOutstanding) {
  auto recs = make_records(2);
  recs[0].outstanding = 50;
  recs[1].outstanding = 1;
  sim::Rng rng(3);
  TwoChoicesPolicy p;
  for (int i = 0; i < 20; ++i) EXPECT_EQ(p.pick(recs, all_of(2), rng), 1);
}

TEST(Policy, TwoChoicesSingleCandidate) {
  auto recs = make_records(3);
  sim::Rng rng(3);
  TwoChoicesPolicy p;
  EXPECT_EQ(p.pick(recs, {2}, rng), 2);
  EXPECT_EQ(p.pick(recs, {}, rng), -1);
}

}  // namespace
}  // namespace ntier::lb
