#include <gtest/gtest.h>

#include "control/admission.h"
#include "control/codel.h"
#include "control/overload.h"
#include "proto/request.h"
#include "sim/simulation.h"

namespace ntier::control {
namespace {

using sim::SimTime;
using sim::Simulation;

// -- CoDelController ----------------------------------------------------------

TEST(CoDel, BelowTargetNeverDrops) {
  CoDelController codel(CoDelConfig{});
  for (int i = 0; i < 100; ++i) {
    const SimTime now = SimTime::millis(i);
    EXPECT_FALSE(codel.should_drop(now - SimTime::millis(5), now));
  }
  EXPECT_FALSE(codel.dropping());
  EXPECT_EQ(codel.drops(), 0u);
}

TEST(CoDel, SustainedSojournAboveTargetEntersDroppingAfterOneInterval) {
  CoDelConfig cfg;  // target 20 ms, interval 100 ms
  CoDelController codel(cfg);
  const SimTime sojourn = SimTime::millis(50);
  // First above-target dequeue arms the controller but gives the queue one
  // full interval to recover before anything is shed.
  EXPECT_FALSE(codel.should_drop(SimTime::zero() - sojourn, SimTime::zero()));
  EXPECT_FALSE(codel.should_drop(SimTime::millis(50) - sojourn,
                                 SimTime::millis(50)));
  EXPECT_FALSE(codel.dropping());
  // One interval after the first crossing: dropping begins.
  EXPECT_TRUE(codel.should_drop(SimTime::millis(100) - sojourn,
                                SimTime::millis(100)));
  EXPECT_TRUE(codel.dropping());
  EXPECT_EQ(codel.drops(), 1u);
}

TEST(CoDel, ControlLawSpacingShrinksWhileDropping) {
  CoDelConfig cfg;
  CoDelController codel(cfg);
  const SimTime sojourn = SimTime::millis(50);
  std::vector<SimTime> drop_times;
  for (std::int64_t ms = 0; ms <= 600 && drop_times.size() < 3; ++ms) {
    const SimTime now = SimTime::millis(ms);
    if (codel.should_drop(now - sojourn, now)) drop_times.push_back(now);
  }
  ASSERT_EQ(drop_times.size(), 3u);
  // interval / sqrt(count): the gap between consecutive drops shrinks.
  const SimTime gap1 = drop_times[1] - drop_times[0];
  const SimTime gap2 = drop_times[2] - drop_times[1];
  EXPECT_LT(gap2, gap1);
  EXPECT_EQ(codel.drops(), 3u);
}

TEST(CoDel, RecoveredQueueLeavesDroppingStateAndRearms) {
  CoDelConfig cfg;
  CoDelController codel(cfg);
  const SimTime slow = SimTime::millis(50);
  for (std::int64_t ms = 0; ms <= 100; ms += 50)
    codel.should_drop(SimTime::millis(ms) - slow, SimTime::millis(ms));
  ASSERT_TRUE(codel.dropping());
  // One fast dequeue (sojourn below target) resets everything.
  EXPECT_FALSE(codel.should_drop(SimTime::millis(149), SimTime::millis(150)));
  EXPECT_FALSE(codel.dropping());
  // Crossing target again must survive a full interval before the next drop.
  EXPECT_FALSE(codel.should_drop(SimTime::millis(200) - slow,
                                 SimTime::millis(200)));
  EXPECT_FALSE(codel.should_drop(SimTime::millis(250) - slow,
                                 SimTime::millis(250)));
  EXPECT_TRUE(codel.should_drop(SimTime::millis(300) - slow,
                                SimTime::millis(300)));
}

// -- AdmissionLimiter ---------------------------------------------------------

TEST(AdmissionLimiter, MultiplicativeDecreaseOnCongestedWindow) {
  Simulation s;
  AdmissionConfig cfg;  // threshold 25 ms, interval 100 ms, factor 0.7
  AdmissionLimiter lim(s, cfg, /*initial_limit=*/100.0, /*brownout=*/false);
  lim.start();
  lim.observe_delay(SimTime::millis(50));
  s.run_until(SimTime::millis(150));  // exactly one tick fires at 100 ms
  EXPECT_DOUBLE_EQ(lim.limit(), 70.0);
  EXPECT_EQ(lim.decreases(), 1u);
}

TEST(AdmissionLimiter, AdditiveIncreaseWhileQuietCapsAtInitial) {
  Simulation s;
  AdmissionConfig cfg;
  AdmissionLimiter lim(s, cfg, 100.0, false);
  lim.start();
  lim.observe_delay(SimTime::millis(50));
  s.run_until(SimTime::millis(150));
  ASSERT_DOUBLE_EQ(lim.limit(), 70.0);
  // Quiet windows: +increase per tick, never above the nominal concurrency.
  s.run_until(SimTime::millis(350));  // two more quiet ticks
  EXPECT_DOUBLE_EQ(lim.limit(), 78.0);
  s.run_until(SimTime::seconds(2));
  EXPECT_DOUBLE_EQ(lim.limit(), 100.0);
  EXPECT_GT(lim.increases(), 0u);
}

TEST(AdmissionLimiter, SustainedCongestionClampsAtMinLimit) {
  Simulation s;
  AdmissionConfig cfg;
  AdmissionLimiter lim(s, cfg, 1000.0, false);
  lim.start();
  // Re-inject a bad delay just after every tick so every window is congested.
  for (int i = 0; i < 30; ++i) {
    s.after(cfg.interval * i + SimTime::millis(1),
            [&lim] { lim.observe_delay(SimTime::millis(200)); });
  }
  s.run_until(SimTime::seconds(3));
  EXPECT_DOUBLE_EQ(lim.limit(), cfg.min_limit);
}

TEST(AdmissionLimiter, InFlightAccountingAdmitAndRelease) {
  Simulation s;
  AdmissionLimiter lim(s, AdmissionConfig{}, 4.0, false);
  EXPECT_TRUE(lim.try_admit(1));
  EXPECT_TRUE(lim.try_admit(1));
  EXPECT_TRUE(lim.try_admit(1));
  EXPECT_TRUE(lim.try_admit(1));
  EXPECT_EQ(lim.in_flight(), 4u);
  EXPECT_FALSE(lim.try_admit(1));  // at the limit
  EXPECT_EQ(lim.last_rejection(), proto::ShedReason::kAdmission);
  lim.release();
  EXPECT_TRUE(lim.try_admit(1));
  EXPECT_EQ(lim.admitted(), 5u);
  EXPECT_EQ(lim.rejected(), 1u);
  for (int i = 0; i < 10; ++i) lim.release();  // over-release stays safe
  EXPECT_EQ(lim.in_flight(), 0u);
}

TEST(AdmissionLimiter, BrownoutShedsLowPriorityFirst) {
  Simulation s;
  AdmissionLimiter lim(s, AdmissionConfig{}, 10.0, /*brownout=*/true);
  // Fill to 8 in flight: below the full limit (10) but above the priority-2
  // brownout wall (10 * 0.75 = 7.5).
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(lim.try_admit(0));
  EXPECT_FALSE(lim.try_admit(2));
  EXPECT_EQ(lim.last_rejection(), proto::ShedReason::kBrownout);
  EXPECT_TRUE(lim.try_admit(0));  // high priority still goes through
  EXPECT_TRUE(lim.try_admit(1));  // 9 < 10 * 0.92
  EXPECT_FALSE(lim.try_admit(0));  // now genuinely full
  EXPECT_EQ(lim.last_rejection(), proto::ShedReason::kAdmission);
}

// -- mode parsing / derivation ------------------------------------------------

TEST(OverloadMode, ParsesEveryName) {
  OverloadMode m;
  EXPECT_TRUE(parse_overload_mode("none", &m));
  EXPECT_EQ(m, OverloadMode::kNone);
  EXPECT_TRUE(parse_overload_mode("deadline", &m));
  EXPECT_EQ(m, OverloadMode::kDeadline);
  EXPECT_TRUE(parse_overload_mode("admission", &m));
  EXPECT_EQ(m, OverloadMode::kAdmission);
  EXPECT_TRUE(parse_overload_mode("codel", &m));
  EXPECT_EQ(m, OverloadMode::kCodel);
  EXPECT_TRUE(parse_overload_mode("full", &m));
  EXPECT_EQ(m, OverloadMode::kFull);
  EXPECT_FALSE(parse_overload_mode("everything", &m));
  EXPECT_FALSE(parse_overload_mode("", &m));
}

TEST(OverloadMode, RoundTripsThroughToString) {
  for (auto mode : {OverloadMode::kNone, OverloadMode::kDeadline,
                    OverloadMode::kAdmission, OverloadMode::kCodel,
                    OverloadMode::kFull}) {
    OverloadMode parsed;
    ASSERT_TRUE(parse_overload_mode(to_string(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
}

TEST(MakeOverload, DerivesEnforcementSwitches) {
  const auto none = make_overload(OverloadMode::kNone);
  EXPECT_FALSE(none.any());
  EXPECT_FALSE(none.stamp_deadlines);

  const auto dl = make_overload(OverloadMode::kDeadline, SimTime::millis(500));
  EXPECT_TRUE(dl.deadlines);
  EXPECT_FALSE(dl.admission);
  EXPECT_FALSE(dl.codel);
  EXPECT_TRUE(dl.stamp_deadlines);
  EXPECT_EQ(dl.deadline_budget, SimTime::millis(500));

  const auto adm = make_overload(OverloadMode::kAdmission);
  EXPECT_TRUE(adm.admission);
  EXPECT_TRUE(adm.brownout);
  EXPECT_FALSE(adm.deadlines);

  const auto codel = make_overload(OverloadMode::kCodel);
  EXPECT_TRUE(codel.codel);
  EXPECT_FALSE(codel.admission);

  const auto full = make_overload(OverloadMode::kFull);
  EXPECT_TRUE(full.deadlines && full.admission && full.codel && full.brownout);
  EXPECT_TRUE(full.any());
  EXPECT_TRUE(full.stamp_deadlines);
}

TEST(OverloadStats, TotalsAndAccumulate) {
  OverloadStats a{.admission_sheds = 1,
                  .brownout_sheds = 2,
                  .deadline_sheds = 3,
                  .sojourn_sheds = 4,
                  .wasted_work_avoided_ms = 2.5};
  OverloadStats b = a;
  b += a;
  EXPECT_EQ(a.total_sheds(), 10u);
  EXPECT_EQ(b.total_sheds(), 20u);
  EXPECT_DOUBLE_EQ(b.wasted_work_avoided_ms, 5.0);
}

}  // namespace
}  // namespace ntier::control
