// Tests for the workload-realism extensions: Markov session structure,
// sticky-session route adoption at the client, and bursty arrivals.
#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "workload/client.h"
#include "workload/rubbos.h"

namespace ntier::workload {
namespace {

using sim::SimTime;
using sim::Simulation;

TEST(MarkovSessions, EveryInteractionHasValidSuccessors) {
  RubbosWorkload w;
  for (std::size_t i = 0; i < w.num_interactions(); ++i) {
    const auto& succ = w.successors(i);
    EXPECT_FALSE(succ.empty()) << w.interactions()[i].name;
    for (std::size_t s : succ) EXPECT_LT(s, w.num_interactions());
  }
}

TEST(MarkovSessions, FollowsSuccessorsWhenEnabled) {
  WorkloadParams p;
  p.markov_sessions = true;
  p.p_follow = 1.0;  // always follow
  RubbosWorkload w(p);
  sim::Rng rng(1);
  // From BrowseCategories (2), the only successor is
  // BrowseStoriesByCategory (3).
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(w.next_interaction(rng, 2), 3u);
}

TEST(MarkovSessions, FallsBackToMixWithoutPrev) {
  WorkloadParams p;
  p.markov_sessions = true;
  RubbosWorkload w(p);
  sim::Rng rng(2);
  std::vector<int> seen(w.num_interactions(), 0);
  for (int i = 0; i < 20'000; ++i) ++seen[w.next_interaction(rng, -1)];
  // Mix draw: the most popular read interaction dominates.
  EXPECT_GT(seen[0], seen[13]);
}

TEST(MarkovSessions, BrowseOnlyMixNeverFollowsIntoWrites) {
  WorkloadParams p;
  p.markov_sessions = true;
  p.p_follow = 1.0;
  p.mix = Mix::kBrowseOnly;
  RubbosWorkload w(p);
  sim::Rng rng(3);
  // ViewStory's successors include PostComment (write); the browse-only mix
  // must weight it out.
  for (int i = 0; i < 2'000; ++i) {
    const auto k = w.next_interaction(rng, 5);
    EXPECT_GT(w.interactions()[k].weight_browse, 0.0)
        << w.interactions()[k].name;
  }
}

TEST(MarkovSessions, DisabledIgnoresPrev) {
  RubbosWorkload w;  // markov off
  sim::Rng a(7), b(7);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(w.next_interaction(a, 2), w.next_interaction(b, -1));
}

TEST(MarkovSessions, MakeRequestThreadsPrevThrough) {
  WorkloadParams p;
  p.markov_sessions = true;
  p.p_follow = 1.0;
  RubbosWorkload w(p);
  sim::Rng rng(4);
  auto req = w.make_request(rng, 1, 0, /*prev=*/2);
  EXPECT_EQ(req->interaction, 3);
}

// ---------------------------------------------------------------------------

class InstantFrontEnd : public proto::FrontEnd {
 public:
  explicit InstantFrontEnd(Simulation& s) : sim_(s) {}
  bool try_submit(const proto::RequestPtr& req, RespondFn respond) override {
    ++accepted_;
    sim_.after(SimTime::millis(1), [req, respond = std::move(respond)] {
      req->tomcat_id = static_cast<std::int16_t>(req->id % 4);  // fake backend
      respond(req, true);
    });
    return true;
  }
  Simulation& sim_;
  int accepted_ = 0;
};

TEST(StickyClients, AdoptRouteAfterFirstResponse) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log(SimTime::millis(50), /*keep_records=*/true);
  InstantFrontEnd fe(s);
  ClientParams p;
  p.num_clients = 1;
  p.think_mean = SimTime::millis(50);
  p.ramp = SimTime::zero();
  p.sticky_sessions = true;
  ClientPopulation clients(s, p, w, {&fe}, log);
  clients.start();
  s.run_until(SimTime::seconds(1));
  ASSERT_GE(log.records().size(), 3u);
  // First request has no route; every later one carries the adopted one.
  const auto first_tomcat = log.records()[0].tomcat;
  ASSERT_GE(first_tomcat, 0);
  // (routes are visible via the requests the front-end received)
  // Re-issue check: the fake front-end overwrites tomcat_id per id, so the
  // adopted route changes over time; what matters is that session_route was
  // populated — verified through the balancer-level tests. Here we confirm
  // the client plumbing doesn't crash and keeps completing.
  EXPECT_GT(clients.completed_ok(), 3u);
}

TEST(BurstyClients, BurstPhasesRaiseThroughput) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  InstantFrontEnd fe(s);
  ClientParams p;
  p.num_clients = 200;
  p.think_mean = SimTime::millis(200);
  p.ramp = SimTime::millis(200);
  p.bursty = true;
  p.burst_on_mean = SimTime::seconds(2);
  p.burst_off_mean = SimTime::seconds(2);
  p.burst_multiplier = 8.0;
  ClientPopulation clients(s, p, w, {&fe}, log);
  clients.start();
  s.run_until(SimTime::seconds(20));

  // Compare per-second completion counts: burst seconds should far exceed
  // quiet seconds.
  const auto& rt = log.response_time_series();
  std::vector<double> per_sec(20, 0.0);
  for (std::size_t i = 0; i < rt.num_windows(); ++i)
    per_sec[std::min<std::size_t>(19, i / 20)] += static_cast<double>(rt.count(i));
  double mx = 0, mn = 1e18;
  for (std::size_t k = 1; k < per_sec.size(); ++k) {  // skip ramp second
    mx = std::max(mx, per_sec[k]);
    mn = std::min(mn, per_sec[k]);
  }
  EXPECT_GT(mx, 2.5 * mn);
}

TEST(BurstyClients, DisabledMeansSteadyThroughput) {
  Simulation s;
  RubbosWorkload w;
  metrics::RequestLog log;
  InstantFrontEnd fe(s);
  ClientParams p;
  p.num_clients = 200;
  p.think_mean = SimTime::millis(200);
  p.ramp = SimTime::millis(200);
  ClientPopulation clients(s, p, w, {&fe}, log);
  clients.start();
  s.run_until(SimTime::seconds(20));
  const auto& rt = log.response_time_series();
  std::vector<double> per_sec(20, 0.0);
  for (std::size_t i = 0; i < rt.num_windows(); ++i)
    per_sec[std::min<std::size_t>(19, i / 20)] += static_cast<double>(rt.count(i));
  double mx = 0, mn = 1e18;
  for (std::size_t k = 1; k < per_sec.size(); ++k) {
    mx = std::max(mx, per_sec[k]);
    mn = std::min(mn, per_sec[k]);
  }
  EXPECT_LT(mx, 1.6 * mn);
}

}  // namespace
}  // namespace ntier::workload
