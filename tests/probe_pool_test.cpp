#include "probe/probe_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace ntier::probe {
namespace {

using sim::SimTime;

ProbeConfig quick_config() {
  ProbeConfig c;
  c.enabled = true;
  c.rate_hz = 10.0;  // tick every 100 ms
  c.d = 2;
  c.staleness = SimTime::millis(100);
  c.reuse_budget = 3;
  c.timeout = SimTime::millis(30);
  c.capacity = 16;
  return c;
}

/// Transport that answers instantly with rif = worker index (so tests can
/// tell replies apart) and records every probe target.
ProbePool::Transport echo_transport(std::vector<int>& fired) {
  return [&fired](int worker, ProbePool::ReplyFn done) {
    fired.push_back(worker);
    done(true, static_cast<double>(worker), 1.0 + worker);
  };
}

TEST(ProbePool, DisabledPoolNeverProbes) {
  sim::Simulation simu(1);
  std::vector<int> fired;
  ProbeConfig c = quick_config();
  c.enabled = false;
  ProbePool pool(simu, 4, echo_transport(fired), c);
  simu.run_until(SimTime::seconds(1));
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(pool.probes_sent(), 0u);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(ProbePool, PiggybackedReportsPoolLikeProbeRepliesAtZeroProbeCost) {
  sim::Simulation simu(1);
  // No transport: nothing is ever probed, the pool is fed purely by
  // piggybacked load reports (Prequal's probe-on-response mode).
  ProbePool pool(simu, 4, nullptr, quick_config());
  simu.run_until(SimTime::millis(10));
  pool.observe(2, 7.0, 3.5);
  EXPECT_EQ(pool.piggybacked(), 1u);
  EXPECT_EQ(pool.probes_sent(), 0u);
  ASSERT_EQ(pool.size(), 1u);
  const auto r = pool.freshest(2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->rif, 7.0);
  EXPECT_EQ(r->latency_ms, 3.5);
  EXPECT_EQ(r->rtt_ms, 0.0);
  EXPECT_EQ(r->at, SimTime::millis(10));

  // A newer report supersedes the old entry and restarts its reuse budget.
  pool.note_use(2);
  pool.note_use(2);  // two of three budget uses spent
  pool.observe(2, 4.0, 2.0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.freshest(2)->rif, 4.0);
  pool.note_use(2);
  pool.note_use(2);
  pool.note_use(2);  // third use on the fresh entry exhausts the budget
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.expired_budget(), 1u);

  // Out-of-range workers and disabled pools ignore reports.
  pool.observe(-1, 1.0, 1.0);
  pool.observe(4, 1.0, 1.0);
  EXPECT_EQ(pool.piggybacked(), 2u);
  EXPECT_EQ(pool.size(), 0u);
  ProbeConfig off = quick_config();
  off.enabled = false;
  ProbePool dead(simu, 4, nullptr, off);
  dead.observe(1, 1.0, 1.0);
  EXPECT_EQ(dead.piggybacked(), 0u);
  EXPECT_EQ(dead.size(), 0u);
}

TEST(ProbePool, EachTickProbesDDistinctTargets) {
  sim::Simulation simu(1);
  std::vector<int> fired;
  ProbePool pool(simu, 4, echo_transport(fired), quick_config());
  // Ticks at 100, 200, ..., 1000 ms -> 10 ticks x d=2 probes.
  simu.run_until(SimTime::seconds(1));
  EXPECT_EQ(pool.probes_sent(), 20u);
  EXPECT_EQ(pool.replies(), 20u);
  ASSERT_EQ(fired.size(), 20u);
  for (std::size_t t = 0; t + 1 < fired.size(); t += 2)
    EXPECT_NE(fired[t], fired[t + 1]) << "tick " << t / 2
                                      << " probed the same worker twice";
  for (int w : fired) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 4);
  }
}

TEST(ProbePool, DClampsToWorkerCount) {
  sim::Simulation simu(1);
  std::vector<int> fired;
  ProbeConfig c = quick_config();
  c.d = 10;  // > num_workers
  ProbePool pool(simu, 3, echo_transport(fired), c);
  simu.run_until(SimTime::millis(100));
  EXPECT_EQ(pool.probes_sent(), 3u);  // one tick probes every worker once
  EXPECT_EQ(std::vector<int>(fired.begin(), fired.end()).size(), 3u);
}

TEST(ProbePool, RepliesPopulateThePoolAndFreshestWins) {
  sim::Simulation simu(1);
  std::vector<int> fired;
  ProbeConfig c = quick_config();
  c.d = 3;
  c.staleness = SimTime::seconds(10);  // nothing expires in this test
  ProbePool pool(simu, 3, echo_transport(fired), c);
  simu.run_until(SimTime::millis(450));  // 4 ticks; every worker re-probed
  pool.expire_now();
  const auto fresh = pool.fresh_results();
  ASSERT_EQ(fresh.size(), 3u);  // one retained result per worker
  for (int w = 0; w < 3; ++w) {
    EXPECT_EQ(fresh[static_cast<std::size_t>(w)].worker, w);
    EXPECT_DOUBLE_EQ(fresh[static_cast<std::size_t>(w)].rif, w);
    // The retained entry is the latest tick's reply.
    EXPECT_EQ(fresh[static_cast<std::size_t>(w)].at, SimTime::millis(400));
  }
  EXPECT_TRUE(pool.has_fresh(0));
  EXPECT_FALSE(pool.has_fresh(3));
}

TEST(ProbePool, UnansweredProbesTimeOut) {
  sim::Simulation simu(1);
  ProbePool pool(
      simu, 2, [](int, ProbePool::ReplyFn) { /* never answers */ },
      quick_config());
  // Ticks at 100..500 ms; the 500 ms probes time out at 530 ms, so stop at
  // 540 ms with nothing still in flight.
  simu.run_until(SimTime::millis(540));
  EXPECT_GT(pool.timeouts(), 0u);
  EXPECT_EQ(pool.timeouts(), pool.probes_sent());
  EXPECT_EQ(pool.replies(), 0u);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(ProbePool, LateRepliesLoseTheRaceAgainstTheTimeout) {
  sim::Simulation simu(1);
  ProbePool pool(
      simu, 1,
      [&simu](int, ProbePool::ReplyFn done) {
        // Answer 50 ms later than the 30 ms timeout.
        simu.after(SimTime::millis(50),
                   [done = std::move(done)] { done(true, 1.0, 1.0); });
      },
      quick_config());
  simu.run_until(SimTime::millis(300));
  EXPECT_GT(pool.timeouts(), 0u);
  EXPECT_EQ(pool.replies(), 0u);  // settled flag discarded the late replies
  EXPECT_EQ(pool.size(), 0u);
}

TEST(ProbePool, StaleResultsExpireOnDemand) {
  sim::Simulation simu(1);
  bool answered = false;
  ProbeConfig c = quick_config();
  c.d = 1;
  ProbePool pool(
      simu, 1,
      [&answered](int, ProbePool::ReplyFn done) {
        if (answered) return;  // only the first probe gets an answer
        answered = true;
        done(true, 2.0, 5.0);
      },
      c);
  simu.run_until(SimTime::millis(150));
  pool.expire_now();
  EXPECT_TRUE(pool.has_fresh(0));  // answered at 100 ms, 50 ms old

  simu.run_until(SimTime::millis(450));  // now 350 ms past the reply
  EXPECT_FALSE(pool.freshest(0).has_value());  // freshest filters stale...
  pool.expire_now();                           // ...and expire_now drops it
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.expired_stale(), 1u);
}

TEST(ProbePool, ReuseBudgetDiscardsAfterConfiguredUses) {
  sim::Simulation simu(1);
  std::vector<int> fired;
  ProbeConfig c = quick_config();
  c.d = 1;
  c.staleness = SimTime::seconds(10);
  c.reuse_budget = 3;
  bool answered = false;
  ProbePool pool(
      simu, 1,
      [&answered](int, ProbePool::ReplyFn done) {
        if (answered) return;
        answered = true;
        done(true, 1.0, 1.0);
      },
      c);
  simu.run_until(SimTime::millis(120));
  ASSERT_TRUE(pool.has_fresh(0));
  pool.note_use(0);
  pool.note_use(0);
  EXPECT_TRUE(pool.has_fresh(0));  // 2 of 3 uses spent
  pool.note_use(0);
  EXPECT_FALSE(pool.has_fresh(0));  // budget exhausted -> discarded
  EXPECT_EQ(pool.expired_budget(), 1u);
  EXPECT_EQ(pool.uses(), 3u);
  pool.note_use(0);  // no entry: a no-op
  EXPECT_EQ(pool.uses(), 3u);
}

TEST(ProbePool, CapacityBoundEvictsOldest) {
  sim::Simulation simu(1);
  std::vector<int> fired;
  ProbeConfig c = quick_config();
  c.d = 8;
  c.capacity = 4;
  c.staleness = SimTime::seconds(10);
  ProbePool pool(simu, 8, echo_transport(fired), c);
  simu.run_until(SimTime::millis(100));  // one tick probes all 8 workers
  EXPECT_EQ(pool.replies(), 8u);
  EXPECT_EQ(pool.size(), 4u);  // bounded
}

TEST(ProbePool, MeanStalenessAtUseIsTracked) {
  sim::Simulation simu(1);
  bool answered = false;
  ProbeConfig c = quick_config();
  c.d = 1;
  c.staleness = SimTime::seconds(10);
  ProbePool pool(
      simu, 1,
      [&answered](int, ProbePool::ReplyFn done) {
        if (answered) return;
        answered = true;
        done(true, 1.0, 1.0);
      },
      c);
  simu.run_until(SimTime::millis(160));  // reply landed at 100 ms
  pool.note_use(0);                      // 60 ms old at use
  EXPECT_NEAR(pool.mean_staleness_at_use_ms(), 60.0, 1e-9);
}

TEST(ProbePool, SameSeedSameTargetSequence) {
  auto run_once = [] {
    sim::Simulation simu(99);
    std::vector<int> fired;
    ProbePool pool(simu, 6, echo_transport(fired), quick_config());
    simu.run_until(SimTime::seconds(2));
    return fired;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // power-of-d sampling is a pure function of the seed
}

}  // namespace
}  // namespace ntier::probe
