// Coverage batch for smaller public surfaces: CSV emitters, sampler
// lifetime, pdflush force-flush, MySQL binlog dirtying, end-to-end sticky
// routing through the Apache front-end, and the two-choices baseline under
// millibottlenecks.
#include <gtest/gtest.h>

#include <sstream>

#include "experiment/experiment.h"
#include "experiment/report.h"
#include "metrics/sampler.h"
#include "os/node.h"
#include "test_util.h"

namespace ntier {
namespace {

using sim::SimTime;
using sim::Simulation;

TEST(GaugeCsv, EmitsAvgAndMax) {
  metrics::GaugeSeries g(SimTime::millis(50));
  g.set(SimTime::zero(), 2.0);
  g.set(SimTime::millis(25), 6.0);
  g.finish(SimTime::millis(50));
  std::ostringstream os;
  g.to_csv(os, "queue");
  EXPECT_NE(os.str().find("# gauge=queue"), std::string::npos);
  EXPECT_NE(os.str().find("0,4,6"), std::string::npos);  // avg 4, max 6
}

TEST(RequestLogCsv, EmitsRecords) {
  metrics::RequestLog log(SimTime::millis(50), /*keep_records=*/true);
  metrics::RequestRecord r;
  r.id = 5;
  r.start = SimTime::seconds(1);
  r.end = SimTime::seconds(1) + SimTime::millis(3);
  r.tomcat = 2;
  log.on_complete(r);
  std::ostringstream os;
  log.to_csv(os);
  EXPECT_NE(os.str().find("id,interaction"), std::string::npos);
  EXPECT_NE(os.str().find("5,"), std::string::npos);
}

TEST(PeriodicSampler, StopsSamplingWhenDestroyed) {
  Simulation s;
  {
    metrics::PeriodicSampler sampler(s, SimTime::millis(10), [] { return 1.0; });
    s.run_until(SimTime::millis(35));
    EXPECT_EQ(sampler.series().total_count(), 3);
  }
  // The destructor cancelled the pending event: the queue drains.
  EXPECT_FALSE(s.pending());
}

TEST(Pdflush, FlushNowForcesAnEpisode) {
  Simulation s;
  os::NodeConfig nc;
  nc.disk_bytes_per_second = 1 << 20;
  nc.pdflush.flush_interval = SimTime::seconds(600);
  os::Node node(s, nc);
  node.page_cache().write_dirty(1 << 18);
  node.pdflush().flush_now();
  EXPECT_TRUE(node.pdflush().flushing());
  node.pdflush().flush_now();  // idempotent while flushing
  s.run_until(SimTime::seconds(1));
  EXPECT_EQ(node.pdflush().episodes().size(), 1u);
}

TEST(MySql, BinlogBytesDirtyThePageCache) {
  Simulation s;
  os::NodeConfig nc;
  nc.pdflush.enabled = false;
  os::Node node(s, nc);
  server::MySqlConfig cfg;
  cfg.log_bytes_per_query = 512;
  server::MySqlServer db(s, node, cfg);
  db.execute(SimTime::millis(1), [] {});
  db.execute(SimTime::millis(1), [] {});
  s.run();
  EXPECT_EQ(node.page_cache().dirty_bytes(), 1024u);
}

TEST(StickyEndToEnd, ClientsReturnToTheirTomcat) {
  auto cfg = experiment::testing::quick_config(
      lb::PolicyKind::kCurrentLoad, lb::MechanismKind::kNonBlocking,
      /*millibottlenecks=*/false, SimTime::seconds(6));
  cfg.sticky_sessions = true;
  auto e = experiment::testing::run(std::move(cfg));

  // After the first interaction every client carries a route, so nearly all
  // assignments are sticky hits.
  std::uint64_t hits = 0, assigned = 0;
  for (int a = 0; a < e->num_apaches(); ++a) {
    hits += e->apache(a).balancer().sticky_hits();
    for (int t = 0; t < e->num_tomcats(); ++t)
      assigned += e->apache(a).balancer().record(t).assigned;
  }
  EXPECT_GT(hits, 10'000u);
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(assigned), 0.8);
}

TEST(TwoChoices, AlsoAvoidsStalledTomcats) {
  // The power-of-two-choices baseline samples *current* state, so like
  // current_load it dodges millibottlenecks — supporting the paper's
  // general advice to use current-state policies.
  auto cfg = experiment::testing::quick_config(
      lb::PolicyKind::kTwoChoices, lb::MechanismKind::kNonBlocking, true,
      SimTime::seconds(12));
  auto e = experiment::testing::run(std::move(cfg));
  EXPECT_LT(e->log().vlrt_fraction(), 0.005);
  EXPECT_LT(e->log().mean_response_ms(), 10.0);
}

TEST(SessionsPolicy, WorksEndToEndWithStickyRouting) {
  auto cfg = experiment::testing::quick_config(
      lb::PolicyKind::kSessions, lb::MechanismKind::kNonBlocking,
      /*millibottlenecks=*/false, SimTime::seconds(6));
  cfg.sticky_sessions = true;
  auto e = experiment::testing::run(std::move(cfg));
  // New sessions are spread evenly; returning traffic follows routes.
  std::vector<std::uint64_t> served;
  for (int t = 0; t < e->num_tomcats(); ++t)
    served.push_back(e->tomcat(t).served());
  const auto [mn, mx] = std::minmax_element(served.begin(), served.end());
  EXPECT_GT(*mn, 0u);
  EXPECT_LT(static_cast<double>(*mx) / static_cast<double>(*mn), 1.5);
  EXPECT_LT(e->log().mean_response_ms(), 10.0);
}

}  // namespace
}  // namespace ntier
