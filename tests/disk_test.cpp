#include "os/disk.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace ntier::os {
namespace {

using sim::SimTime;
using sim::Simulation;

TEST(Disk, WriteTakesBytesOverRate) {
  Simulation s;
  Disk d(s, 100.0 * (1 << 20));  // 100 MB/s
  SimTime done;
  d.submit_write(10 * (1 << 20), [&] { done = s.now(); });
  s.run();
  EXPECT_NEAR(done.to_millis(), 100.0, 0.1);
}

TEST(Disk, FifoOrdering) {
  Simulation s;
  Disk d(s, 1 << 20);
  std::vector<int> order;
  d.submit_write(1 << 20, [&] { order.push_back(1); });
  d.submit_write(1 << 20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_NEAR(s.now().to_seconds(), 2.0, 1e-6);
}

TEST(Disk, BusyWhileWriting) {
  Simulation s;
  Disk d(s, 1 << 20);
  d.submit_write(1 << 20, [] {});
  EXPECT_TRUE(d.busy());
  s.run();
  EXPECT_FALSE(d.busy());
}

TEST(Disk, BusySecondsAccumulate) {
  Simulation s;
  Disk d(s, 1 << 20);
  d.submit_write(1 << 19, [] {});  // 0.5 s
  s.run();
  s.after(SimTime::seconds(1), [&] { d.submit_write(1 << 19, [] {}); });
  s.run();
  EXPECT_NEAR(d.busy_seconds(), 1.0, 1e-6);
}

TEST(Disk, ProbeBusyFraction) {
  Simulation s;
  Disk d(s, 1 << 20);
  d.submit_write(1 << 19, [] {});  // busy 0.5 s
  s.run_until(SimTime::seconds(1));
  EXPECT_NEAR(d.probe_busy_fraction(), 0.5, 1e-6);
  s.run_until(SimTime::seconds(2));
  EXPECT_NEAR(d.probe_busy_fraction(), 0.0, 1e-9);
}

TEST(Disk, QueueDepth) {
  Simulation s;
  Disk d(s, 1 << 20);
  d.submit_write(1 << 20, [] {});
  d.submit_write(1 << 20, [] {});
  d.submit_write(1 << 20, [] {});
  EXPECT_EQ(d.queue_depth(), 3u);
  s.run();
  EXPECT_EQ(d.queue_depth(), 0u);
}

TEST(Disk, RejectsNonPositiveRate) {
  Simulation s;
  EXPECT_THROW(Disk(s, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace ntier::os
