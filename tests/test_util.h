#pragma once

#include <memory>

#include "experiment/experiment.h"

namespace ntier::experiment::testing {

/// A fast variant of the paper's 4A/4T/1M setup: same offered load
/// (~10 k req/s) via the scaled client population, short duration.
inline ExperimentConfig quick_config(lb::PolicyKind policy,
                                     lb::MechanismKind mech,
                                     bool millibottlenecks,
                                     sim::SimTime duration = sim::SimTime::seconds(15)) {
  ExperimentConfig c = ExperimentConfig::scaled(0.1);
  c.policy = policy;
  c.mechanism = mech;
  c.tomcat_millibottlenecks = millibottlenecks;
  c.duration = duration;
  c.warmup = sim::SimTime::seconds(2);
  return c;
}

inline std::unique_ptr<Experiment> run(ExperimentConfig c) {
  auto e = std::make_unique<Experiment>(std::move(c));
  e->run();
  return e;
}

}  // namespace ntier::experiment::testing
