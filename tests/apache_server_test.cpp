#include "server/apache_server.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace ntier::server {
namespace {

using sim::SimTime;
using sim::Simulation;

os::NodeConfig plain_node() {
  os::NodeConfig nc;
  nc.cores = 4;
  nc.pdflush.enabled = false;
  return nc;
}

proto::RequestPtr make_req(double apache_ms = 0.5, double tomcat_ms = 1.0) {
  auto r = std::make_shared<proto::Request>();
  r->apache_demand = SimTime::from_millis(apache_ms);
  r->tomcat_demand = SimTime::from_millis(tomcat_ms);
  r->log_bytes = 100;
  return r;
}

struct Rig {
  explicit Rig(int tomcats = 2, lb::PolicyKind policy = lb::PolicyKind::kTotalRequest,
               lb::MechanismKind mech = lb::MechanismKind::kNonBlocking,
               ApacheConfig acfg = {}, lb::BalancerConfig bcfg = {}) {
    mysql_node = std::make_unique<os::Node>(s, plain_node());
    db = std::make_unique<MySqlServer>(s, *mysql_node);
    for (int i = 0; i < tomcats; ++i) {
      tomcat_nodes.push_back(std::make_unique<os::Node>(s, plain_node()));
      db_routers.push_back(std::make_unique<DbRouter>(
          s, std::vector<MySqlServer*>{db.get()}, DbRouterConfig{}));
      tomcat_servers.push_back(std::make_unique<TomcatServer>(
          s, *tomcat_nodes.back(), i, *db_routers.back()));
    }
    apache_node = std::make_unique<os::Node>(s, plain_node());
    std::vector<TomcatServer*> ptrs;
    for (auto& t : tomcat_servers) ptrs.push_back(t.get());
    apache = std::make_unique<ApacheServer>(
        s, *apache_node, 0, ptrs, lb::make_policy(policy),
        lb::make_acquirer(mech, bcfg.blocking), bcfg, acfg);
  }

  Simulation s;
  std::unique_ptr<os::Node> mysql_node, apache_node;
  std::vector<std::unique_ptr<os::Node>> tomcat_nodes;
  std::unique_ptr<MySqlServer> db;
  std::vector<std::unique_ptr<DbRouter>> db_routers;
  std::vector<std::unique_ptr<TomcatServer>> tomcat_servers;
  std::unique_ptr<ApacheServer> apache;
};

TEST(ApacheServer, EndToEndRequest) {
  Rig rig;
  SimTime done;
  bool ok = false;
  ASSERT_TRUE(rig.apache->try_submit(
      make_req(), [&](const proto::RequestPtr&, bool o) {
        done = rig.s.now();
        ok = o;
      }));
  rig.s.run();
  EXPECT_TRUE(ok);
  // 0.5ms apache + 0.1 link + 1ms tomcat + 0.1 link back = 1.7ms.
  EXPECT_NEAR(done.to_millis(), 1.7, 1e-6);
  EXPECT_EQ(rig.apache->served(), 1u);
  EXPECT_EQ(rig.apache->resident(), 0);
}

TEST(ApacheServer, StampsApacheAndTomcatIds) {
  Rig rig;
  auto req = make_req();
  rig.apache->try_submit(req, [](const proto::RequestPtr&, bool) {});
  rig.s.run();
  EXPECT_EQ(req->apache_id, 0);
  EXPECT_GE(req->tomcat_id, 0);
}

TEST(ApacheServer, WorkerCapThenBacklogThenDrop) {
  ApacheConfig acfg;
  acfg.max_clients = 2;
  acfg.listen_backlog = 3;
  Rig rig(1, lb::PolicyKind::kTotalRequest, lb::MechanismKind::kNonBlocking,
          acfg);
  int accepted = 0;
  for (int i = 0; i < 10; ++i)
    if (rig.apache->try_submit(make_req(100.0),
                               [](const proto::RequestPtr&, bool) {}))
      ++accepted;
  EXPECT_EQ(accepted, 5);  // 2 workers + 3 backlog
  EXPECT_EQ(rig.apache->syn_drops(), 5u);
  EXPECT_EQ(rig.apache->resident(), 5);
}

TEST(ApacheServer, BacklogDrainsAsWorkersFree) {
  ApacheConfig acfg;
  acfg.max_clients = 1;
  Rig rig(1, lb::PolicyKind::kTotalRequest, lb::MechanismKind::kNonBlocking,
          acfg);
  int completed = 0;
  for (int i = 0; i < 4; ++i)
    rig.apache->try_submit(make_req(),
                           [&](const proto::RequestPtr&, bool) { ++completed; });
  rig.s.run();
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(rig.apache->resident(), 0);
}

TEST(ApacheServer, BalancerErrorPropagatesNotOk) {
  lb::BalancerConfig bcfg;
  bcfg.endpoint_pool_size = 1;
  Rig rig(1, lb::PolicyKind::kTotalRequest, lb::MechanismKind::kNonBlocking,
          {}, bcfg);
  // Pin the single tomcat's only endpoint with a long request.
  rig.apache->try_submit(make_req(0.1, 1000.0),
                         [](const proto::RequestPtr&, bool) {});
  bool got = true;
  rig.s.after(SimTime::millis(10), [&] {
    rig.apache->try_submit(make_req(), [&](const proto::RequestPtr&, bool ok) {
      got = ok;
    });
  });
  rig.s.run_until(SimTime::millis(50));
  EXPECT_FALSE(got);
  EXPECT_EQ(rig.apache->balancer().balancer_errors(), 1u);
}

TEST(ApacheServer, WritesAccessLogOnCompletion) {
  Rig rig;
  rig.apache->try_submit(make_req(), [](const proto::RequestPtr&, bool) {});
  rig.s.run();
  // ApacheConfig::log_bytes (default 200) — the request's log_bytes belongs
  // to the Tomcat tier.
  EXPECT_EQ(rig.apache->node().page_cache().dirty_bytes(), 200u);
}

TEST(ApacheServer, BlockedWorkersOccupySlots) {
  // With the stock blocking acquirer and a stalled backend, workers park in
  // get_endpoint and the Apache fills up even though no request progresses.
  lb::BalancerConfig bcfg;
  bcfg.endpoint_pool_size = 1;
  ApacheConfig acfg;
  acfg.max_clients = 3;
  acfg.listen_backlog = 2;
  Rig rig(1, lb::PolicyKind::kTotalRequest, lb::MechanismKind::kBlocking, acfg,
          bcfg);
  rig.tomcat_nodes[0]->cpu().set_capacity_factor(0.0);  // millibottleneck
  for (int i = 0; i < 5; ++i)
    rig.apache->try_submit(make_req(), [](const proto::RequestPtr&, bool) {});
  rig.s.run_until(SimTime::millis(50));
  EXPECT_EQ(rig.apache->workers_busy(), 3);
  EXPECT_EQ(rig.apache->resident(), 5);
  EXPECT_FALSE(rig.apache->try_submit(make_req(),
                                      [](const proto::RequestPtr&, bool) {}));
}

}  // namespace
}  // namespace ntier::server
