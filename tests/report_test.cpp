// Tests for the reporting/bench utilities: sparklines, series extraction,
// slicing, CSV dumps, Table-I formatting, bench options and JSON summaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "experiment/report.h"
#include "experiment/summary.h"
#include "test_util.h"

namespace ntier::experiment {
namespace {

using sim::SimTime;

TEST(Sparkline, EmptyAndFlatSeries) {
  EXPECT_EQ(sparkline({}), "");
  const std::string flat = sparkline({0.0, 0.0, 0.0});
  EXPECT_FALSE(flat.empty());  // all-zero renders blanks, not garbage
}

TEST(Sparkline, PeakGetsFullBlock) {
  const std::string s = sparkline({0.0, 1.0, 8.0, 2.0});
  EXPECT_NE(s.find("█"), std::string::npos);
}

TEST(Sparkline, DownsamplesMaxPreserving) {
  std::vector<double> v(800, 1.0);
  v[400] = 100.0;  // a single spike must survive 10x downsampling
  const std::string s = sparkline(v, 80);
  EXPECT_NE(s.find("█"), std::string::npos);
}

TEST(SeriesExtraction, AvgMaxCount) {
  metrics::TimeSeries ts(SimTime::millis(50));
  ts.record(SimTime::millis(10), 2.0);
  ts.record(SimTime::millis(20), 4.0);
  ts.record(SimTime::millis(60), 10.0);
  const auto avg = series_avg(ts, 3);
  const auto mx = series_max(ts, 3);
  const auto cnt = series_count(ts, 3);
  EXPECT_DOUBLE_EQ(avg[0], 3.0);
  EXPECT_DOUBLE_EQ(mx[0], 4.0);
  EXPECT_DOUBLE_EQ(cnt[0], 2.0);
  EXPECT_DOUBLE_EQ(avg[1], 10.0);
  EXPECT_DOUBLE_EQ(avg[2], 0.0);  // padded beyond recorded windows
}

TEST(Slice, ExtractsHalfOpenWindowRange) {
  const std::vector<double> v = {0, 1, 2, 3, 4, 5};
  const auto w = SimTime::millis(50);
  const auto out = slice(v, w, SimTime::millis(100), SimTime::millis(250));
  EXPECT_EQ(out, (std::vector<double>{2, 3, 4}));
  EXPECT_TRUE(slice(v, w, SimTime::millis(250), SimTime::millis(100)).empty());
  // Clamps past-the-end.
  EXPECT_EQ(slice(v, w, SimTime::millis(250), SimTime::seconds(10)).size(), 1u);
}

TEST(MaxSum, Helpers) {
  EXPECT_DOUBLE_EQ(max_of({1.0, 5.0, 3.0}), 5.0);
  EXPECT_DOUBLE_EQ(max_of({}), 0.0);
  EXPECT_DOUBLE_EQ(sum_of({1.0, 5.0, 3.0}), 9.0);
}

TEST(Table1Header, PrintsColumns) {
  std::ostringstream os;
  print_table1_header(os);
  EXPECT_NE(os.str().find("Avg RT (ms)"), std::string::npos);
  EXPECT_NE(os.str().find("%VLRT>1s"), std::string::npos);
}

TEST(WriteSeriesCsv, RoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ntier_report_test.csv")
          .string();
  write_series_csv(path, SimTime::millis(50), {"a", "b"},
                   {{1.0, 2.0}, {3.0}});
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "time_s,a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "0,1,3");
  std::getline(f, line);
  EXPECT_EQ(line, "0.05,2,0");  // shorter column padded with 0
  std::remove(path.c_str());
}

TEST(BenchOptions, ParsesFlags) {
  const char* argv[] = {"bench", "--full", "--csv", "/tmp/x", "--seed", "99"};
  const auto opt = BenchOptions::parse(6, const_cast<char**>(argv));
  EXPECT_TRUE(opt.full);
  EXPECT_EQ(opt.csv_dir, "/tmp/x");
  EXPECT_EQ(opt.seed, 99u);
}

TEST(BenchOptions, DefaultsAndApply) {
  const char* argv[] = {"bench"};
  const auto opt = BenchOptions::parse(1, const_cast<char**>(argv));
  EXPECT_FALSE(opt.full);
  auto cfg = opt.apply(ExperimentConfig::scaled(0.1));
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_EQ(cfg.num_clients, 7'000);
}

TEST(BenchOptions, FullUpscalesToPaperScale) {
  const char* argv[] = {"bench", "--full"};
  const auto opt = BenchOptions::parse(2, const_cast<char**>(argv));
  auto cfg = opt.apply(ExperimentConfig::scaled(0.1));
  EXPECT_EQ(cfg.num_clients, 70'000);
  EXPECT_EQ(cfg.duration, sim::SimTime::seconds(180));
}

TEST(RunSummary, CapturesHeadlineNumbers) {
  auto e = testing::run(testing::quick_config(lb::PolicyKind::kCurrentLoad,
                                              lb::MechanismKind::kNonBlocking,
                                              false, SimTime::seconds(5)));
  const RunSummary s = summarize(*e);
  EXPECT_EQ(s.policy, "current_load");
  EXPECT_EQ(s.mechanism, "modified_get_endpoint");
  EXPECT_GT(s.completed, 0);
  EXPECT_GT(s.mean_rt_ms, 0.0);
  EXPECT_LE(s.p50_ms, s.p99_ms);
  EXPECT_LE(s.p99_ms, s.p999_ms);
  EXPECT_EQ(s.apache_mean_cpu.size(), 4u);
  EXPECT_EQ(s.tomcat_mean_cpu.size(), 4u);
  EXPECT_EQ(s.mysql_mean_cpu.size(), 1u);
  EXPECT_GT(s.tomcat_queue_peak, 0.0);
}

TEST(RunSummary, JsonIsWellFormedish) {
  auto e = testing::run(testing::quick_config(lb::PolicyKind::kTotalRequest,
                                              lb::MechanismKind::kBlocking,
                                              false, SimTime::seconds(5)));
  const std::string json = summarize(*e).to_json_string();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');
  EXPECT_NE(json.find("\"policy\": \"total_request\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_rt_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"tomcat_mean_cpu\": ["), std::string::npos);
  // Balanced braces/brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace ntier::experiment
