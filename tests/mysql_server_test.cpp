#include "server/mysql_server.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace ntier::server {
namespace {

using sim::SimTime;
using sim::Simulation;

os::NodeConfig plain_node(int cores = 4) {
  os::NodeConfig nc;
  nc.cores = cores;
  nc.pdflush.enabled = false;
  return nc;
}

TEST(MySqlServer, ExecutesQueryOnCpu) {
  Simulation s;
  os::Node node(s, plain_node());
  MySqlServer db(s, node);
  SimTime done;
  db.execute(SimTime::millis(5), [&] { done = s.now(); });
  s.run();
  EXPECT_EQ(done, SimTime::millis(5));
  EXPECT_EQ(db.queries_served(), 1u);
}

TEST(MySqlServer, ResidentGaugeRisesAndFalls) {
  Simulation s;
  os::Node node(s, plain_node());
  MySqlServer db(s, node);
  db.execute(SimTime::millis(5), [] {});
  db.execute(SimTime::millis(5), [] {});
  EXPECT_EQ(db.resident(), 2);
  s.run();
  EXPECT_EQ(db.resident(), 0);
  EXPECT_DOUBLE_EQ(db.queue_trace().global_max(), 2.0);
}

TEST(MySqlServer, ConnectionCapQueuesExcess) {
  Simulation s;
  os::Node node(s, plain_node(1));
  MySqlConfig cfg;
  cfg.max_connections = 2;
  MySqlServer db(s, node, cfg);
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i)
    db.execute(SimTime::millis(10), [&] { done.push_back(s.now()); });
  EXPECT_EQ(db.resident(), 3);
  s.run();
  ASSERT_EQ(done.size(), 3u);
  // Two PS-share the single core (finish at 20ms); the third runs alone.
  EXPECT_EQ(done[0].ms(), 20);
  EXPECT_EQ(done[1].ms(), 20);
  EXPECT_EQ(done[2].ms(), 30);
}

TEST(MySqlServer, ManyQueriesAllComplete) {
  Simulation s;
  os::Node node(s, plain_node());
  MySqlServer db(s, node);
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    s.after(SimTime::micros(100 * i),
            [&] { db.execute(SimTime::micros(500), [&] { ++completed; }); });
  }
  s.run();
  EXPECT_EQ(completed, 200);
  EXPECT_EQ(db.queries_served(), 200u);
  EXPECT_EQ(db.resident(), 0);
}

}  // namespace
}  // namespace ntier::server
