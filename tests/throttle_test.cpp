// Tests for the dirty-ratio foreground write throttle (Linux
// balance_dirty_pages): writers crossing the limit park until writeback
// drains the cache.
#include <gtest/gtest.h>

#include "experiment/experiment.h"
#include "experiment/report.h"
#include "os/node.h"
#include "server/tomcat_server.h"
#include "sim/simulation.h"
#include "test_util.h"

namespace ntier::os {
namespace {

using sim::SimTime;
using sim::Simulation;

TEST(DirtyThrottle, DisabledIsPassThrough) {
  Simulation s;
  PageCache pc(s);
  int proceeded = 0;
  pc.write_dirty_throttled(1 << 30, [&] { ++proceeded; });
  EXPECT_EQ(proceeded, 1);
  EXPECT_EQ(pc.throttled_writers(), 0u);
}

TEST(DirtyThrottle, ParksWritersAboveLimit) {
  Simulation s;
  PageCache pc(s);
  pc.set_throttle_limit(1000);
  int proceeded = 0;
  pc.write_dirty_throttled(600, [&] { ++proceeded; });
  EXPECT_EQ(proceeded, 1);  // below limit
  pc.write_dirty_throttled(600, [&] { ++proceeded; });  // 1200 > 1000
  pc.write_dirty_throttled(100, [&] { ++proceeded; });
  EXPECT_EQ(proceeded, 1);
  EXPECT_EQ(pc.throttled_writers(), 2u);
  EXPECT_TRUE(pc.over_throttle());

  pc.take_all_dirty();  // writeback drains: all writers wake
  EXPECT_EQ(proceeded, 3);
  EXPECT_EQ(pc.throttled_writers(), 0u);
  EXPECT_FALSE(pc.over_throttle());
}

TEST(DirtyThrottle, NodeWiresTheLimit) {
  Simulation s;
  NodeConfig nc;
  nc.pdflush.enabled = false;
  nc.dirty_throttle_bytes = 500;
  Node node(s, nc);
  int proceeded = 0;
  node.page_cache().write_dirty_throttled(600, [&] { ++proceeded; });
  EXPECT_EQ(proceeded, 0);  // parked
}

TEST(DirtyThrottle, PdflushWakesParkedWriters) {
  Simulation s;
  NodeConfig nc;
  nc.disk_bytes_per_second = 1 << 20;
  nc.pdflush.flush_interval = SimTime::seconds(2);
  nc.pdflush.dirty_background_bytes = 1ull << 30;
  nc.pdflush.cpu_stall_severity = 1.0;
  nc.dirty_throttle_bytes = 1 << 18;  // 256 KiB
  Node node(s, nc);
  SimTime resumed;
  s.after(SimTime::seconds(1), [&] {
    node.page_cache().write_dirty_throttled(1 << 19, [&] { resumed = s.now(); });
  });
  s.run_until(SimTime::seconds(4));
  // Parked at 1 s; the periodic flush at 2 s claims the pages and wakes us.
  EXPECT_EQ(resumed, SimTime::seconds(2));
}

TEST(DirtyThrottle, TomcatThreadsParkInLogWrites) {
  // With an absurdly low throttle and no flush, servlet threads park at
  // completion and the pool drains.
  Simulation s;
  NodeConfig nc;
  nc.pdflush.enabled = false;
  nc.dirty_throttle_bytes = 1;
  Node tomcat_node(s, nc), mysql_node(s, {});
  server::MySqlServer db(s, mysql_node);
  server::DbRouter router(s, {&db}, {});
  server::TomcatConfig tc;
  tc.max_threads = 2;
  server::TomcatServer tomcat(s, tomcat_node, 0, router, tc);

  int responded = 0;
  for (int i = 0; i < 4; ++i) {
    auto req = std::make_shared<proto::Request>();
    req->tomcat_demand = SimTime::millis(1);
    req->log_bytes = 100;
    tomcat.submit(req, [&](const proto::RequestPtr&) { ++responded; });
  }
  s.run_until(SimTime::seconds(1));
  // Both threads are parked in their log writes; nothing responds and the
  // other requests wait in the connector queue.
  EXPECT_EQ(responded, 0);
  EXPECT_EQ(tomcat.threads_busy(), 2);
  EXPECT_EQ(tomcat_node.page_cache().throttled_writers(), 2u);

  tomcat_node.page_cache().take_all_dirty();  // manual writeback
  s.run_until(SimTime::seconds(2));
  EXPECT_EQ(responded, 2);  // parked pair completed; next pair parked again
}

TEST(DirtyThrottleIntegration, ThrottleModeAlsoCreatesInstability) {
  // Configure the Tomcats with a tight dirty throttle instead of (on top
  // of) the iowait stall: threads park, the server stops completing, and
  // the stock policy funnels into it just the same — the instability is
  // agnostic to *how* the server stalls.
  auto cfg = experiment::testing::quick_config(
      lb::PolicyKind::kTotalRequest, lb::MechanismKind::kBlocking,
      /*millibottlenecks=*/true, SimTime::seconds(12));
  cfg.tomcat_dirty_throttle_bytes = 4ull << 20;  // 4 MiB: trips mid-cycle
  auto throttled = experiment::testing::run(std::move(cfg));

  auto base_cfg = experiment::testing::quick_config(
      lb::PolicyKind::kTotalRequest, lb::MechanismKind::kBlocking, true,
      SimTime::seconds(12));
  auto base = experiment::testing::run(std::move(base_cfg));

  // The throttle adds a second stall mode, so things only get worse.
  EXPECT_GE(throttled->log().mean_response_ms(),
            0.8 * base->log().mean_response_ms());
  EXPECT_GT(experiment::max_of(throttled->tomcat_tier_queue()), 400.0);
}

}  // namespace
}  // namespace ntier::os
