#include "lb/load_balancer.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace ntier::lb {
namespace {

using sim::SimTime;
using sim::Simulation;

proto::RequestPtr make_req(std::uint64_t id = 1) {
  auto r = std::make_shared<proto::Request>();
  r->id = id;
  r->request_bytes = 400;
  r->response_bytes = 1600;
  return r;
}

std::unique_ptr<LoadBalancer> make_lb(Simulation& s, PolicyKind policy,
                                      MechanismKind mech,
                                      BalancerConfig cfg = {}) {
  return std::make_unique<LoadBalancer>(s, 4, make_policy(policy),
                                        make_acquirer(mech, cfg.blocking), cfg);
}

TEST(LoadBalancer, SpreadsEvenlyWhenHealthy) {
  Simulation s;
  auto lb = make_lb(s, PolicyKind::kTotalRequest, MechanismKind::kNonBlocking);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 400; ++i) {
    auto req = make_req(static_cast<std::uint64_t>(i));
    lb->assign(req, [&, req](int idx) {
      ASSERT_GE(idx, 0);
      ++counts[static_cast<std::size_t>(idx)];
      lb->on_response(idx, req);  // instant completion
    });
  }
  for (int c : counts) EXPECT_EQ(c, 100);
}

TEST(LoadBalancer, AssignSetsRequestTomcatAndStats) {
  Simulation s;
  auto lb = make_lb(s, PolicyKind::kTotalRequest, MechanismKind::kNonBlocking);
  auto req = make_req();
  int got = -2;
  lb->assign(req, [&](int idx) { got = idx; });
  EXPECT_EQ(got, 0);
  // The balancer does not write into the request; interpreting the index is
  // the caller's job (tomcat_id for Apache, replica for the DB router).
  EXPECT_EQ(req->tomcat_id, -1);
  EXPECT_EQ(lb->record(0).assigned, 1u);
  EXPECT_EQ(lb->record(0).outstanding, 1);
  EXPECT_EQ(lb->record(0).committed, 1);
  EXPECT_EQ(lb->pool(0).in_use(), 1u);
  lb->on_response(0, req);
  EXPECT_EQ(lb->record(0).completed, 1u);
  EXPECT_EQ(lb->record(0).outstanding, 0);
  EXPECT_EQ(lb->record(0).committed, 0);
  EXPECT_EQ(lb->pool(0).in_use(), 0u);
}

TEST(LoadBalancer, NonBlockingFailureMarksBusyAndSkips) {
  Simulation s;
  BalancerConfig cfg;
  cfg.endpoint_pool_size = 1;
  auto lb = make_lb(s, PolicyKind::kTotalRequest, MechanismKind::kNonBlocking, cfg);

  // Exhaust worker 0's pool (its response never arrives).
  auto stuck = make_req(1);
  lb->assign(stuck, [](int idx) { ASSERT_EQ(idx, 0); });
  // Prime workers 1-3 so worker 0 stays the tied-minimum pick.
  for (int t = 1; t <= 3; ++t) {
    auto req = make_req();
    lb->assign(req, [&, req](int idx) { lb->on_response(idx, req); });
  }

  // Next request picks worker 0 again, fails instantly (pool exhausted ->
  // Busy), and lands on worker 1 without any simulated delay.
  auto req = make_req(2);
  int got = -2;
  lb->assign(req, [&](int idx) { got = idx; });
  EXPECT_EQ(got, 1);
  EXPECT_EQ(lb->record(0).state, WorkerState::kBusy);
  EXPECT_EQ(s.now(), SimTime::zero());
  EXPECT_EQ(lb->record(0).acquire_failures, 1u);
}

TEST(LoadBalancer, BusyWorkerRecoversAfterInterval) {
  Simulation s;
  BalancerConfig cfg;
  cfg.endpoint_pool_size = 1;
  cfg.busy_recovery = SimTime::millis(100);
  auto lb = make_lb(s, PolicyKind::kCurrentLoad, MechanismKind::kNonBlocking, cfg);

  // Pin every worker, then fail an assignment against all of them so each
  // is marked Busy.
  auto stuck = make_req(1);
  lb->assign(stuck, [](int idx) { ASSERT_EQ(idx, 0); });
  for (int i = 0; i < 3; ++i) lb->assign(make_req(), [](int) {});
  int err = 0;
  lb->assign(make_req(), [&](int idx) { err = idx; });
  EXPECT_EQ(err, -1);
  for (int t = 0; t < 4; ++t)
    EXPECT_EQ(lb->record(t).state, WorkerState::kBusy) << t;

  // After the stuck request completes and the Busy interval elapses, the
  // worker is eligible again.
  s.after(SimTime::millis(150), [&] {
    lb->on_response(0, stuck);
    auto r3 = make_req(3);
    int got = -2;
    lb->assign(r3, [&](int idx) { got = idx; });
    EXPECT_EQ(got, 0);  // eligible again and lowest current load
    EXPECT_EQ(lb->record(0).state, WorkerState::kAvailable);
  });
  s.run();
}

TEST(LoadBalancer, RepeatedFailuresEscalateToError) {
  Simulation s;
  BalancerConfig cfg;
  cfg.endpoint_pool_size = 1;
  cfg.busy_recovery = SimTime::millis(10);
  cfg.failures_to_error = 3;
  cfg.error_recovery = SimTime::seconds(60);
  auto lb = make_lb(s, PolicyKind::kTotalRequest, MechanismKind::kNonBlocking, cfg);

  lb->assign(make_req(1), [](int) {});  // pin worker 0 (lb_value -> 1)
  // Prime workers 1-3 to lb_value 1 so the frozen worker 0 stays the tied
  // minimum and keeps being picked first — the paper's §V-A pattern.
  for (int t = 1; t <= 3; ++t) {
    auto req = make_req();
    lb->assign(req, [&, req](int idx) { lb->on_response(idx, req); });
  }
  // Each probe picks worker 0 first, fails, and fails over to a healthy
  // worker; three failures across recovery windows escalate to Error.
  for (int i = 1; i <= 3; ++i) {
    s.after(SimTime::millis(20 * i), [&] {
      auto req = make_req();
      lb->assign(req, [&, req](int idx) {
        if (idx >= 0) lb->on_response(idx, req);
      });
    });
  }
  s.run();
  EXPECT_EQ(lb->record(0).state, WorkerState::kError);
  EXPECT_EQ(lb->record(0).consecutive_failures, 3);
}

TEST(LoadBalancer, ErrorWorkerReadmittedAfterRecoveryInterval) {
  Simulation s;
  BalancerConfig cfg;
  cfg.endpoint_pool_size = 1;
  cfg.busy_recovery = SimTime::millis(10);
  cfg.failures_to_error = 3;
  cfg.error_recovery = SimTime::millis(500);
  auto lb = make_lb(s, PolicyKind::kTotalRequest, MechanismKind::kNonBlocking, cfg);

  auto stuck = make_req(1);
  lb->assign(stuck, [](int idx) { ASSERT_EQ(idx, 0); });  // pin worker 0
  for (int t = 1; t <= 3; ++t) {
    auto req = make_req();
    lb->assign(req, [&, req](int idx) { lb->on_response(idx, req); });
  }
  // Three failures across Busy windows escalate worker 0 to Error at 60 ms
  // (Error until 560 ms).
  for (int i = 1; i <= 3; ++i) {
    s.after(SimTime::millis(20 * i), [&] {
      auto req = make_req();
      lb->assign(req, [&, req](int idx) {
        if (idx >= 0) lb->on_response(idx, req);
      });
    });
  }
  // Free worker 0's endpoint; it is still sidelined by the Error state.
  s.after(SimTime::millis(100), [&] { lb->on_response(0, stuck); });
  int during_error = -2;
  s.after(SimTime::millis(200), [&] {
    auto req = make_req();
    lb->assign(req, [&, req](int idx) {
      during_error = idx;
      if (idx >= 0) lb->on_response(idx, req);
    });
  });
  int after_recovery = -2;
  s.after(SimTime::millis(600), [&] {
    auto req = make_req();
    lb->assign(req, [&, req](int idx) {
      after_recovery = idx;
      if (idx >= 0) lb->on_response(idx, req);
    });
  });
  s.run();
  // While Error (and despite a free endpoint + minimal lb_value) worker 0 is
  // skipped; after mod_jk's `retry` elapses it is re-admitted and, with the
  // lowest lb_value, picked first again.
  EXPECT_GT(during_error, 0);
  EXPECT_EQ(after_recovery, 0);
  EXPECT_EQ(lb->record(0).state, WorkerState::kAvailable);
  EXPECT_EQ(lb->record(0).consecutive_failures, 0);
}

TEST(LoadBalancer, StickyForceFailsInsteadOfFallingBack) {
  Simulation s;
  BalancerConfig cfg;
  cfg.endpoint_pool_size = 1;
  cfg.sticky_sessions = true;
  cfg.sticky_force = true;
  auto lb = make_lb(s, PolicyKind::kTotalRequest, MechanismKind::kNonBlocking, cfg);

  auto pinned = make_req(1);
  pinned->session_route = 2;
  lb->assign(pinned, [](int idx) { ASSERT_EQ(idx, 2); });  // holds the slot

  // Same route, pool exhausted: with sticky_session_force there is no
  // fallback to the policy — the request fails with a balancer 503.
  auto second = make_req(2);
  second->session_route = 2;
  int got = -2;
  lb->assign(second, [&](int idx) { got = idx; });
  EXPECT_EQ(got, -1);
  EXPECT_EQ(lb->balancer_errors(), 1u);
  // The failed acquisition marked the owner Busy; a third routed request is
  // refused up front, without even attempting the worker.
  EXPECT_EQ(lb->record(2).state, WorkerState::kBusy);
  auto third = make_req(3);
  third->session_route = 2;
  got = -2;
  lb->assign(third, [&](int idx) { got = idx; });
  EXPECT_EQ(got, -1);
  EXPECT_EQ(lb->balancer_errors(), 2u);
  EXPECT_EQ(lb->record(2).acquire_failures, 1u);
}

TEST(LoadBalancer, StickyWithoutForceFallsBackToPolicy) {
  Simulation s;
  BalancerConfig cfg;
  cfg.endpoint_pool_size = 1;
  cfg.sticky_sessions = true;
  auto lb = make_lb(s, PolicyKind::kTotalRequest, MechanismKind::kNonBlocking, cfg);

  auto pinned = make_req(1);
  pinned->session_route = 2;
  lb->assign(pinned, [](int idx) { ASSERT_EQ(idx, 2); });
  auto second = make_req(2);
  second->session_route = 2;
  int got = -2;
  lb->assign(second, [&](int idx) { got = idx; });
  EXPECT_GE(got, 0);
  EXPECT_NE(got, 2);
  EXPECT_EQ(lb->balancer_errors(), 0u);
}

TEST(LoadBalancer, AllWorkersExhaustedIsBalancerError) {
  Simulation s;
  BalancerConfig cfg;
  cfg.endpoint_pool_size = 1;
  auto lb = make_lb(s, PolicyKind::kTotalRequest, MechanismKind::kNonBlocking, cfg);
  for (int i = 0; i < 4; ++i) lb->assign(make_req(), [](int) {});
  int got = 0;
  lb->assign(make_req(), [&](int idx) { got = idx; });
  EXPECT_EQ(got, -1);
  EXPECT_EQ(lb->balancer_errors(), 1u);
}

TEST(LoadBalancer, BlockingMechanismConsumesTimeOnStalledWorker) {
  Simulation s;
  BalancerConfig cfg;
  cfg.endpoint_pool_size = 1;
  auto lb = make_lb(s, PolicyKind::kTotalRequest, MechanismKind::kBlocking, cfg);

  lb->assign(make_req(1), [](int) {});  // pin worker 0 (lb_value now 1)

  // Worker 1..3 have lb_value 0; they get picked first. Pin them too.
  for (int i = 2; i <= 4; ++i) lb->assign(make_req(), [](int) {});

  // All pools exhausted: the next assignment polls each worker for 300 ms
  // before failing over, 4 workers => completes (with error) at 1200 ms.
  int got = 0;
  lb->assign(make_req(9), [&](int idx) { got = idx; });
  s.run();
  EXPECT_EQ(got, -1);
  EXPECT_EQ(s.now(), SimTime::millis(1200));
}

TEST(LoadBalancer, CommittedCountsBlockedWaiters) {
  Simulation s;
  BalancerConfig cfg;
  cfg.endpoint_pool_size = 1;
  auto lb = make_lb(s, PolicyKind::kTotalRequest, MechanismKind::kBlocking, cfg);
  lb->enable_tracing(SimTime::millis(50));

  lb->assign(make_req(1), [](int) {});  // occupies worker0's only endpoint
  // Give workers 1-3 one request each so their lb_values match worker 0's.
  for (int t = 1; t <= 3; ++t) {
    auto req = make_req();
    lb->assign(req, [&, req](int idx) {
      ASSERT_EQ(idx, t);
      lb->on_response(idx, req);
    });
  }
  // Every additional concurrent request now picks worker 0 (tied minimum,
  // first index) and blocks in get_endpoint, so committed >> outstanding.
  for (int i = 0; i < 10; ++i) lb->assign(make_req(), [](int) {});
  EXPECT_EQ(lb->record(0).committed, 11);
  EXPECT_EQ(lb->record(0).outstanding, 1);
  s.run_until(SimTime::millis(40));
  EXPECT_GE(lb->committed_trace(0).global_max(), 11.0);
}

TEST(LoadBalancer, TracingRecordsLbValuesAndAssignments) {
  Simulation s;
  auto lb = make_lb(s, PolicyKind::kTotalRequest, MechanismKind::kNonBlocking);
  lb->enable_tracing(SimTime::millis(50));
  for (int i = 0; i < 8; ++i) {
    auto req = make_req();
    lb->assign(req, [&, req](int idx) { lb->on_response(idx, req); });
  }
  lb->finish_traces();
  for (int t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(lb->lb_value_trace(t).global_max(), 2.0);
    EXPECT_EQ(lb->assignment_trace(t).total_count(), 2);
  }
}

}  // namespace
}  // namespace ntier::lb
