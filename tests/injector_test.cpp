#include "millib/injector.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace ntier::millib {
namespace {

using sim::SimTime;
using sim::Simulation;

TEST(Injector, PeriodicStallsStealAndRestoreCapacity) {
  Simulation s;
  os::CpuResource cpu(s, 4);
  InjectorConfig cfg;
  cfg.period = SimTime::seconds(1);
  cfg.duration = SimTime::millis(100);
  cfg.severity = 1.0;
  cfg.initial_offset = SimTime::seconds(1);
  cfg.jitter = false;
  CapacityStallInjector inj(s, cpu, cfg);

  s.after(SimTime::millis(1050), [&] {
    EXPECT_DOUBLE_EQ(cpu.capacity_factor(), 0.0);
    EXPECT_TRUE(inj.stalled());
  });
  s.after(SimTime::millis(1150), [&] {
    EXPECT_DOUBLE_EQ(cpu.capacity_factor(), 1.0);
    EXPECT_FALSE(inj.stalled());
  });
  s.run_until(SimTime::from_seconds(5.5));
  // Stalls at 1.0, 2.1, 3.2, 4.3, 5.4; the last one ends exactly at the
  // 5.5 s horizon, so five episodes complete.
  EXPECT_EQ(inj.episodes().size(), 5u);
  for (const auto& e : inj.episodes())
    EXPECT_EQ((e.end - e.start), SimTime::millis(100));
}

TEST(Injector, PartialSeverity) {
  Simulation s;
  os::CpuResource cpu(s, 4);
  InjectorConfig cfg;
  cfg.severity = 0.6;
  cfg.initial_offset = SimTime::millis(10);
  cfg.duration = SimTime::millis(50);
  cfg.max_episodes = 1;
  CapacityStallInjector inj(s, cpu, cfg);
  s.after(SimTime::millis(30), [&] {
    EXPECT_NEAR(cpu.capacity_factor(), 0.4, 1e-9);
  });
  s.run_until(SimTime::seconds(1));
  EXPECT_NEAR(cpu.capacity_factor(), 1.0, 1e-9);
  EXPECT_EQ(inj.episodes().size(), 1u);
}

TEST(Injector, MaxEpisodesBoundsInjection) {
  Simulation s;
  os::CpuResource cpu(s, 4);
  InjectorConfig cfg;
  cfg.period = SimTime::millis(100);
  cfg.duration = SimTime::millis(10);
  cfg.initial_offset = SimTime::zero();
  cfg.max_episodes = 3;
  CapacityStallInjector inj(s, cpu, cfg);
  s.run_until(SimTime::seconds(10));
  EXPECT_EQ(inj.episodes().size(), 3u);
}

TEST(Injector, JitterVariesGaps) {
  Simulation s;
  os::CpuResource cpu(s, 4);
  InjectorConfig cfg;
  cfg.period = SimTime::millis(200);
  cfg.duration = SimTime::millis(10);
  cfg.initial_offset = SimTime::zero();
  cfg.jitter = true;
  cfg.max_episodes = 20;
  CapacityStallInjector inj(s, cpu, cfg);
  s.run_until(SimTime::seconds(60));
  ASSERT_EQ(inj.episodes().size(), 20u);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < inj.episodes().size(); ++i)
    gaps.push_back(
        (inj.episodes()[i].start - inj.episodes()[i - 1].end).to_seconds());
  double mn = gaps[0], mx = gaps[0];
  for (double g : gaps) {
    mn = std::min(mn, g);
    mx = std::max(mx, g);
  }
  EXPECT_LT(mn, mx);  // exponential gaps are not constant
}

TEST(Injector, ProfilesHaveDocumentedShapes) {
  const auto gc = gc_pause_profile();
  EXPECT_DOUBLE_EQ(gc.severity, 1.0);
  EXPECT_LT(gc.duration, SimTime::millis(200));

  const auto dvfs = dvfs_profile();
  EXPECT_LT(dvfs.severity, 1.0);

  const auto vm = vm_consolidation_profile();
  EXPECT_GT(vm.duration, dvfs.duration);
}

TEST(Injector, StallDelaysCpuJob) {
  Simulation s;
  os::CpuResource cpu(s, 1);
  InjectorConfig cfg;
  cfg.initial_offset = SimTime::millis(5);
  cfg.duration = SimTime::millis(100);
  cfg.max_episodes = 1;
  CapacityStallInjector inj(s, cpu, cfg);
  SimTime done;
  cpu.submit(SimTime::millis(10), [&] { done = s.now(); });
  s.run_until(SimTime::seconds(1));
  // 5ms served, 100ms frozen, 5ms remaining.
  EXPECT_EQ(done, SimTime::millis(110));
}

}  // namespace
}  // namespace ntier::millib
