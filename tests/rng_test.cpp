#include "sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace ntier::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(123);
  Rng child = a.fork();
  // The child stream must not replay the parent stream.
  Rng fresh(123);
  fresh.next_u64();  // consume the draw used to seed the child
  bool all_equal = true;
  for (int i = 0; i < 10; ++i)
    if (child.next_u64() != fresh.next_u64()) all_equal = false;
  EXPECT_FALSE(all_equal);
}

TEST(Rng, ForkIsDeterministicForParentSeed) {
  Rng a(77), b(77);
  Rng ca = a.fork(), cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
  // And the second fork differs from the first.
  Rng ca2 = a.fork();
  bool differs = false;
  Rng ca_replay(77);
  (void)ca_replay;
  for (int i = 0; i < 10; ++i)
    if (ca2.next_u64() != cb.next_u64()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, ForkSeedsAreMixed) {
  // The child seed must pass through splitmix64, not be the raw engine
  // draw: child(seed) != Rng(raw_draw) but == Rng(mix64(raw_draw)).
  Rng parent(123);
  Rng probe(123);
  const std::uint64_t raw = probe.next_u64();
  Rng child = parent.fork();
  Rng mixed(Rng::mix64(raw));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child.next_u64(), mixed.next_u64());
  Rng unmixed(raw);
  bool all_equal = true;
  Rng child2 = Rng(Rng::mix64(raw));
  for (int i = 0; i < 10; ++i)
    if (child2.next_u64() != unmixed.next_u64()) all_equal = false;
  EXPECT_FALSE(all_equal);
}

TEST(Rng, DeriveSeedIsDeterministicAndCollisionFree) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.push_back(Rng::derive_seed(42, i));
    EXPECT_EQ(seeds.back(), Rng::derive_seed(42, i));  // pure function
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  // Different base seeds land elsewhere.
  EXPECT_NE(Rng::derive_seed(42, 0), Rng::derive_seed(43, 0));
}

TEST(Rng, Uniform01InRange) {
  Rng r(1);
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto x = r.uniform_int(3, 7);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 7);
    saw_lo |= (x == 3);
    saw_hi |= (x == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(3);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialTimeMatchesMean) {
  Rng r(4);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    sum += r.exponential_time(SimTime::millis(10)).to_millis();
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(Rng, LognormalMeanAndSpread) {
  Rng r(5);
  const int n = 200'000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.lognormal_mean(4.0, 0.5);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 4.0, 0.08);
  EXPECT_NEAR(std::sqrt(var) / mean, 0.5, 0.03);  // cv as requested
}

TEST(Rng, BernoulliFrequency) {
  Rng r(6);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexMatchesWeights) {
  Rng r(7);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[r.weighted_index(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng r(8);
  EXPECT_THROW(r.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(r.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, ZipfSkewsTowardsLowRanks) {
  Rng r(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[r.zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
  // Rank-0 frequency for s=1, n=10 is 1/H_10 ≈ 0.341.
  EXPECT_NEAR(counts[0] / 100'000.0, 0.341, 0.02);
}

TEST(Rng, ZipfRejectsEmptyDomain) {
  Rng r(10);
  EXPECT_THROW(r.zipf(0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace ntier::sim
