// End-to-end tests of the replicated KV data tier inside the full n-tier
// stack: quorum failover under a replica crash (the availability headline),
// hot-shard millibottlenecks that server-choice policies cannot route
// around, and the byte-determinism / jobs-invariance guarantees every
// subsystem must preserve.
#include <gtest/gtest.h>

#include "experiment/chaos.h"
#include "experiment/experiment.h"
#include "experiment/summary.h"
#include "experiment/sweep.h"
#include "kv/ring.h"
#include "millib/fault_plan.h"
#include "sim/rng.h"

namespace ntier::experiment {
namespace {

using sim::SimTime;

ExperimentConfig kv_base(const char* label) {
  ExperimentConfig c;
  c.label = label;
  c.num_apaches = 2;
  c.num_tomcats = 3;
  c.num_clients = 300;
  c.think_mean = SimTime::millis(200);
  c.warmup = SimTime::millis(500);
  c.policy = lb::PolicyKind::kCurrentLoad;
  c.mechanism = lb::MechanismKind::kNonBlocking;
  c.tomcat_millibottlenecks = false;
  c.tracing = false;
  c.db_tier = server::DbTier::kKv;
  c.kv.replicas = 5;  // N=3, R=W=2 defaults
  return c;
}

/// The shard the Zipf-hottest key (rank 0) maps to, and its primary.
int hot_primary(const ExperimentConfig& c) {
  const kv::HashRing ring(c.kv.replicas, c.kv.vnodes);
  const auto shard = sim::Rng::mix64(0) % static_cast<std::uint64_t>(c.kv.shards);
  return ring.preference_list(shard, c.kv.n)[0];
}

// The acceptance headline: with N=3, R=W=2 and one replica crashed for the
// middle third of the run, no quorum op fails and every missed write is
// replayed via hinted handoff once the replica recovers.
TEST(KvE2e, ReplicaCrashIsMaskedByQuorumAndHintedHandoff) {
  ExperimentConfig c = kv_base("kv_crash_failover");
  const SimTime traffic = SimTime::seconds(6);
  millib::FaultSpec crash;
  crash.kind = millib::FaultKind::kReplicaCrash;
  crash.worker = hot_primary(c);
  crash.start = traffic / 3;
  crash.duration = traffic / 3;
  c.fault_plan = millib::FaultPlan::single(crash);

  const ChaosRunResult r = run_chaos(std::move(c), traffic, SimTime::seconds(6));

  EXPECT_TRUE(r.invariants.ok()) << r.invariants.to_string();
  EXPECT_GT(r.invariants.kv_reads_issued, 0u);
  EXPECT_GT(r.invariants.kv_writes_issued, 0u);
  EXPECT_EQ(r.invariants.kv_quorum_failed_reads, 0u);
  EXPECT_EQ(r.invariants.kv_quorum_failed_writes, 0u);
  EXPECT_EQ(r.invariants.kv_hints_pending, 0u);
  EXPECT_EQ(r.invariants.kv_crashed_dispatches, 0u);
  // The crash actually bit: writes missed the dead replica and were
  // replayed on recovery, and the shard spent time degraded.
  EXPECT_GT(r.summary.kv_hints_replayed, 0u);
  EXPECT_EQ(r.summary.kv_handoff_dropped, 0u);
  EXPECT_GT(r.summary.kv_degraded_ms, 0.0);
  EXPECT_EQ(r.summary.balancer_errors, 0u);
}

// The limitation headline: a millibottleneck pinned to the hot key's shard
// members produces VLRTs that even a probe-fresh server-choice policy
// cannot eliminate — every upstream path converges on the same quorum.
TEST(KvE2e, HotShardStallsProduceVlrtsUnderProbePolicy) {
  ExperimentConfig c = kv_base("kv_hot_shard");
  c.policy = lb::PolicyKind::kPrequal;  // the strongest server-choice policy
  c.duration = SimTime::seconds(8);
  c.workload.key_space = 10'000;
  c.workload.zipf_s = 1.1;
  c.kv_millibottlenecks = true;
  c.injector.period = SimTime::seconds(5);
  c.injector.duration = SimTime::millis(1500);  // outlasts the 1 s VLRT bar
  c.injector.severity = 1.0;
  c.injector.initial_offset = SimTime::seconds(3);

  Experiment e(std::move(c));
  e.run();

  EXPECT_GT(e.log().vlrt_count(), 0u);
  const auto& ks = e.kv_tier()->stats();
  EXPECT_EQ(ks.quorum_failed_reads + ks.quorum_failed_writes, 0u);
  EXPECT_GT(ks.mean_quorum_wait_ms(), 0.0);
}

// Without the stalls the same configuration is clean — the VLRTs above are
// the injector's doing, not the KV tier's baseline behaviour.
TEST(KvE2e, QuietKvTierHasNoVlrts) {
  ExperimentConfig c = kv_base("kv_quiet");
  c.duration = SimTime::seconds(6);
  Experiment e(std::move(c));
  e.run();
  EXPECT_EQ(e.log().vlrt_count(), 0u);
  EXPECT_GT(e.log().completed(), 0u);
}

TEST(KvE2e, KvRunIsByteDeterministic) {
  auto once = [] {
    ExperimentConfig c = kv_base("kv_determinism");
    c.duration = SimTime::seconds(5);
    c.workload.key_space = 10'000;
    c.workload.zipf_s = 1.1;
    millib::FaultSpec crash;
    crash.kind = millib::FaultKind::kReplicaCrash;
    crash.worker = hot_primary(c);
    crash.start = SimTime::seconds(1);
    crash.duration = SimTime::seconds(2);
    c.fault_plan = millib::FaultPlan::single(crash);
    Experiment e(std::move(c));
    e.run();
    return summarize(e).to_json_string();
  };
  EXPECT_EQ(once(), once());
}

TEST(KvE2e, KvSweepAggregatesAreJobsInvariant) {
  auto sweep = [](int jobs) {
    SweepConfig sc;
    sc.base = kv_base("kv_sweep");
    sc.base.num_clients = 200;
    sc.base.duration = SimTime::seconds(4);
    sc.num_runs = 3;
    sc.jobs = jobs;
    return SweepRunner(std::move(sc)).run().to_json_string();
  };
  EXPECT_EQ(sweep(1), sweep(4));
}

}  // namespace
}  // namespace ntier::experiment
