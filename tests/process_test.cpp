#include "sim/process.h"

#include <gtest/gtest.h>

#include <vector>

#include "lb/endpoint.h"
#include "os/cpu.h"

namespace ntier::sim {
namespace {

TEST(Process, RunsEagerlyUntilFirstSuspension) {
  Simulation s;
  int stage = 0;
  auto body = [](Simulation& simu, int& st) -> Process {
    st = 1;
    co_await delay(simu, SimTime::millis(5));
    st = 2;
  };
  body(s, stage);
  EXPECT_EQ(stage, 1);  // ran to the first co_await synchronously
  s.run();
  EXPECT_EQ(stage, 2);
  EXPECT_EQ(s.now(), SimTime::millis(5));
}

TEST(Process, SequentialDelaysAccumulate) {
  Simulation s;
  std::vector<std::int64_t> stamps;
  auto body = [](Simulation& simu, std::vector<std::int64_t>& out) -> Process {
    for (int i = 0; i < 3; ++i) {
      co_await delay(simu, SimTime::millis(10));
      out.push_back(simu.now().ms());
    }
  };
  body(s, stamps);
  s.run();
  EXPECT_EQ(stamps, (std::vector<std::int64_t>{10, 20, 30}));
}

TEST(Process, ZeroDelayDoesNotSuspend) {
  Simulation s;
  int stage = 0;
  auto body = [](Simulation& simu, int& st) -> Process {
    co_await delay(simu, SimTime::zero());
    st = 1;
  };
  body(s, stage);
  EXPECT_EQ(stage, 1);  // ready immediately, no event needed
  EXPECT_FALSE(s.pending());
}

TEST(Process, TwoProcessesInterleaveDeterministically) {
  Simulation s;
  std::vector<int> order;
  auto worker = [](Simulation& simu, std::vector<int>& out, int id,
                   SimTime step) -> Process {
    for (int i = 0; i < 3; ++i) {
      co_await delay(simu, step);
      out.push_back(id);
    }
  };
  worker(s, order, 1, SimTime::millis(10));
  worker(s, order, 2, SimTime::millis(15));
  s.run();
  // Wake-ups at 10(1), 15(2), 20(1), 30(1&2), 45(2). At the t=30 tie,
  // worker 2 resumes first: its event was *scheduled* at t=15, before
  // worker 1's at t=20, and ties break FIFO by scheduling order.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(Completion, AwaitAfterCallbackFires) {
  Simulation s;
  Completion<int> done;
  done.callback()(42);  // producer completes first
  int got = 0;
  auto body = [](Completion<int> c, int& out) -> Process {
    out = co_await c;
  };
  body(done, got);
  EXPECT_EQ(got, 42);
}

TEST(Completion, AwaitBeforeCallbackFires) {
  Simulation s;
  Completion<int> done;
  int got = 0;
  auto body = [](Completion<int> c, int& out) -> Process {
    out = co_await c;
  };
  body(done, got);
  EXPECT_EQ(got, 0);  // suspended
  done.callback()(7);
  EXPECT_EQ(got, 7);
}

TEST(Completion, VoidEvent) {
  Simulation s;
  Completion<void> done;
  bool resumed = false;
  auto body = [](Completion<void> c, bool& out) -> Process {
    co_await c;
    out = true;
  };
  body(done, resumed);
  EXPECT_FALSE(resumed);
  done.callback()();
  EXPECT_TRUE(resumed);
}

TEST(Process, DrivesCallbackSubstrate) {
  // A coroutine using the CPU model through Completion: sequential code,
  // same timing as the callback formulation.
  Simulation s;
  os::CpuResource cpu(s, 1);
  SimTime finished;
  auto body = [](Simulation& simu, os::CpuResource& c, SimTime& out) -> Process {
    for (int i = 0; i < 2; ++i) {
      Completion<void> done;
      c.submit(SimTime::millis(10), done.callback());
      co_await done;
    }
    out = simu.now();
  };
  body(s, cpu, finished);
  s.run();
  EXPECT_EQ(finished, SimTime::millis(20));
}

TEST(Process, AcquiresEndpointsViaCompletion) {
  Simulation s;
  lb::EndpointPool pool(1);
  ASSERT_TRUE(pool.try_acquire());
  lb::WorkerRecord rec;
  lb::BlockingAcquirer acq;
  bool ok = true;
  auto body = [](Simulation& simu, lb::BlockingAcquirer& a,
                 lb::EndpointPool& p, lb::WorkerRecord& r, bool& out) -> Process {
    Completion<bool> done;
    a.acquire(simu, p, r, done.callback());
    out = co_await done;
  };
  body(s, acq, pool, rec, ok);
  s.run();
  EXPECT_FALSE(ok);  // pool exhausted: Algorithm 1 gave up at 300 ms
  EXPECT_EQ(s.now(), SimTime::millis(300));
}

TEST(Process, ClosedLoopClientSketch) {
  // The quickstart-style closed loop as a coroutine: think, "request"
  // (10 ms of CPU), repeat. Verifies sustained operation over many cycles.
  Simulation s;
  os::CpuResource cpu(s, 4);
  int completed = 0;
  // Bounded loop: the coroutine runs to completion inside the horizon, so
  // its frame self-destroys (an endless loop would still be suspended at
  // teardown and leak the frame).
  auto client = [](Simulation& simu, os::CpuResource& c, int& n) -> Process {
    for (int i = 0; i < 20; ++i) {
      co_await delay(simu, SimTime::millis(40));
      Completion<void> resp;
      c.submit(SimTime::millis(10), resp.callback());
      co_await resp;
      ++n;
    }
  };
  client(s, cpu, completed);
  s.run_until(SimTime::seconds(1));
  EXPECT_EQ(completed, 20);  // 1s / 50ms per cycle
}

}  // namespace
}  // namespace ntier::sim
