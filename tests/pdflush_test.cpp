#include "os/pdflush.h"

#include <gtest/gtest.h>

#include "os/node.h"
#include "sim/simulation.h"

namespace ntier::os {
namespace {

using sim::SimTime;
using sim::Simulation;

TEST(PageCache, TracksDirtyBytes) {
  Simulation s;
  PageCache pc(s);
  pc.write_dirty(1000);
  pc.write_dirty(500);
  EXPECT_EQ(pc.dirty_bytes(), 1500u);
  EXPECT_EQ(pc.total_written(), 1500u);
  EXPECT_EQ(pc.take_all_dirty(), 1500u);
  EXPECT_EQ(pc.dirty_bytes(), 0u);
  EXPECT_EQ(pc.total_written(), 1500u);
}

TEST(PageCache, ThresholdFiresOncePerCrossing) {
  Simulation s;
  PageCache pc(s);
  int fired = 0;
  pc.set_threshold(1000, [&] { ++fired; });
  pc.write_dirty(600);
  EXPECT_EQ(fired, 0);
  pc.write_dirty(600);  // crosses
  EXPECT_EQ(fired, 1);
  pc.write_dirty(600);  // still above: no re-fire
  EXPECT_EQ(fired, 1);
  pc.take_all_dirty();
  pc.write_dirty(1200);  // crosses again after reset
  EXPECT_EQ(fired, 2);
}

TEST(PageCache, TraceRecordsGauge) {
  Simulation s;
  PageCache pc(s, SimTime::millis(10));
  pc.write_dirty(100);
  s.run_until(SimTime::millis(25));
  pc.write_dirty(200);
  pc.finish_trace();
  EXPECT_DOUBLE_EQ(pc.trace().max(0), 100.0);
  EXPECT_DOUBLE_EQ(pc.trace().max(2), 300.0);
}

class PdflushTest : public ::testing::Test {
 protected:
  NodeConfig make_config(SimTime interval, std::uint64_t threshold) {
    NodeConfig nc;
    nc.cores = 4;
    nc.disk_bytes_per_second = 1 << 20;  // 1 MB/s: easy math
    nc.pdflush.flush_interval = interval;
    nc.pdflush.dirty_background_bytes = threshold;
    nc.pdflush.cpu_stall_severity = 1.0;
    return nc;
  }
};

TEST_F(PdflushTest, PeriodicFlushDrainsDirtyPagesAndStallsCpu) {
  Simulation s;
  Node node(s, make_config(SimTime::seconds(5), 1ull << 30));
  node.page_cache().write_dirty(1 << 19);  // 512 KiB -> 0.5 s flush

  // A CPU job submitted just before the flush is frozen for its duration.
  SimTime done;
  s.after(SimTime::from_seconds(4.999), [&] {
    node.cpu().submit(SimTime::millis(1), [&] { done = s.now(); });
  });
  s.run_until(SimTime::seconds(8));

  ASSERT_EQ(node.pdflush().episodes().size(), 1u);
  const auto& e = node.pdflush().episodes()[0];
  EXPECT_EQ(e.start, SimTime::seconds(5));
  EXPECT_NEAR((e.end - e.start).to_seconds(), 0.5, 1e-6);
  EXPECT_EQ(node.page_cache().dirty_bytes(), 0u);
  // Job: 1ms ran for ~0.001 of its demand, then frozen until 5.5s.
  EXPECT_NEAR(done.to_seconds(), 5.5, 0.01);
}

TEST_F(PdflushTest, ThresholdTriggersImmediateFlush) {
  Simulation s;
  Node node(s, make_config(SimTime::seconds(600), 1 << 20));
  s.after(SimTime::seconds(1), [&] {
    node.page_cache().write_dirty((1 << 20) + 1024);  // cross threshold
  });
  s.run_until(SimTime::seconds(10));
  ASSERT_EQ(node.pdflush().episodes().size(), 1u);
  EXPECT_EQ(node.pdflush().episodes()[0].start, SimTime::seconds(1));
}

TEST_F(PdflushTest, DisabledDaemonNeverFlushes) {
  Simulation s;
  NodeConfig nc = make_config(SimTime::seconds(1), 1024);
  nc.pdflush.enabled = false;
  Node node(s, nc);
  node.page_cache().write_dirty(1 << 20);
  s.run_until(SimTime::seconds(10));
  EXPECT_TRUE(node.pdflush().episodes().empty());
  EXPECT_EQ(node.page_cache().dirty_bytes(), 1u << 20);
}

TEST_F(PdflushTest, EmptyCacheMeansNoEpisode) {
  Simulation s;
  Node node(s, make_config(SimTime::seconds(1), 1ull << 30));
  s.run_until(SimTime::seconds(5));
  EXPECT_TRUE(node.pdflush().episodes().empty());
}

TEST_F(PdflushTest, InitialOffsetStaggersFirstFlush) {
  Simulation s;
  NodeConfig nc = make_config(SimTime::seconds(5), 1ull << 30);
  nc.pdflush.initial_offset = SimTime::seconds(2);
  Node node(s, nc);
  node.page_cache().write_dirty(1024);
  s.run_until(SimTime::seconds(8));
  ASSERT_EQ(node.pdflush().episodes().size(), 1u);
  EXPECT_EQ(node.pdflush().episodes()[0].start, SimTime::seconds(7));
}

TEST_F(PdflushTest, BackToBackFlushWhenDirtyKeepsArriving) {
  Simulation s;
  Node node(s, make_config(SimTime::seconds(600), 1 << 20));
  // First crossing triggers a flush taking ~1s; during it another 2 MiB
  // arrives, exceeding the threshold again -> immediate follow-up flush.
  s.after(SimTime::seconds(1), [&] {
    node.page_cache().write_dirty((1 << 20) + 1024);
  });
  s.after(SimTime::from_seconds(1.5), [&] {
    node.page_cache().write_dirty(2 << 20);
  });
  s.run_until(SimTime::seconds(10));
  ASSERT_EQ(node.pdflush().episodes().size(), 2u);
  EXPECT_NEAR(node.pdflush().episodes()[1].start.to_seconds(),
              node.pdflush().episodes()[0].end.to_seconds(), 1e-6);
  EXPECT_EQ(node.page_cache().dirty_bytes(), 0u);
}

TEST_F(PdflushTest, CpuRecoverToPriorFactor) {
  Simulation s;
  NodeConfig nc = make_config(SimTime::seconds(5), 1ull << 30);
  nc.pdflush.cpu_stall_severity = 0.97;
  Node node(s, nc);
  node.cpu().set_capacity_factor(0.8);
  node.page_cache().write_dirty(1 << 19);
  s.run_until(SimTime::seconds(5));
  EXPECT_NEAR(node.cpu().capacity_factor(), 0.03, 1e-9);  // stalled
  s.run_until(SimTime::seconds(6));
  EXPECT_NEAR(node.cpu().capacity_factor(), 0.8, 1e-9);  // restored
}

}  // namespace
}  // namespace ntier::os
