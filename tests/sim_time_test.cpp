#include "sim/time.h"

#include <gtest/gtest.h>

namespace ntier::sim {
namespace {

TEST(SimTime, ConstructorsAgree) {
  EXPECT_EQ(SimTime::seconds(1), SimTime::millis(1000));
  EXPECT_EQ(SimTime::millis(1), SimTime::micros(1000));
  EXPECT_EQ(SimTime::micros(1), SimTime::nanos(1000));
  EXPECT_EQ(SimTime::from_seconds(1.5), SimTime::millis(1500));
  EXPECT_EQ(SimTime::from_millis(0.25), SimTime::micros(250));
}

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}, SimTime::zero());
  EXPECT_EQ(SimTime::zero().ns(), 0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::millis(300);
  const SimTime b = SimTime::millis(200);
  EXPECT_EQ((a + b).ms(), 500);
  EXPECT_EQ((a - b).ms(), 100);
  EXPECT_EQ((a * 3).ms(), 900);
  EXPECT_EQ((a / 3).ms(), 100);
  EXPECT_DOUBLE_EQ(a / b, 1.5);
  SimTime c = a;
  c += b;
  EXPECT_EQ(c.ms(), 500);
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_LE(SimTime::millis(2), SimTime::millis(2));
  EXPECT_GT(SimTime::seconds(1), SimTime::millis(999));
  EXPECT_EQ(SimTime::max(), SimTime::max());
  EXPECT_LT(SimTime::seconds(1'000'000), SimTime::max());
}

TEST(SimTime, Conversions) {
  const SimTime t = SimTime::millis(1234);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.234);
  EXPECT_DOUBLE_EQ(t.to_millis(), 1234.0);
  EXPECT_EQ(t.us(), 1'234'000);
  EXPECT_EQ(t.ms(), 1234);
}

TEST(SimTime, FromSecondsRounds) {
  EXPECT_EQ(SimTime::from_seconds(1e-9).ns(), 1);
  EXPECT_EQ(SimTime::from_seconds(1.4e-9).ns(), 1);
  EXPECT_EQ(SimTime::from_seconds(1.6e-9).ns(), 2);
}

TEST(SimTime, ToString) {
  EXPECT_EQ(SimTime::seconds(2).to_string(), "2.000s");
  EXPECT_EQ(SimTime::millis(87).to_string(), "87.000ms");
  EXPECT_EQ(SimTime::micros(12).to_string(), "12.000us");
  EXPECT_EQ(SimTime::nanos(7).to_string(), "7ns");
}

}  // namespace
}  // namespace ntier::sim
