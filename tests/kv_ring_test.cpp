#include "kv/ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ntier::kv {
namespace {

TEST(HashRing, LayoutIsAPureFunctionOfParameters) {
  const HashRing a(5, 8);
  const HashRing b(5, 8);
  for (std::uint64_t s = 0; s < 64; ++s)
    EXPECT_EQ(a.preference_list(s, 3), b.preference_list(s, 3)) << "shard " << s;
  EXPECT_EQ(HashRing::shard_point(7), HashRing::shard_point(7));
}

TEST(HashRing, PreferenceListHoldsNDistinctValidReplicas) {
  const HashRing ring(5, 8);
  for (std::uint64_t s = 0; s < 64; ++s) {
    const auto pref = ring.preference_list(s, 3);
    ASSERT_EQ(pref.size(), 3u);
    std::set<int> distinct(pref.begin(), pref.end());
    EXPECT_EQ(distinct.size(), 3u) << "shard " << s;
    for (int r : pref) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, 5);
    }
  }
}

TEST(HashRing, NFloorsAtTheReplicaCount) {
  const HashRing ring(3, 8);
  const auto pref = ring.preference_list(0, 5);
  // Only 3 distinct replicas exist; the walk cannot produce more.
  EXPECT_EQ(std::set<int>(pref.begin(), pref.end()).size(), 3u);
}

TEST(HashRing, EveryReplicaOwnsSomeShard) {
  // 16 shards x 3 preference slots over 5 replicas: the vnode spread must
  // give every replica at least one slot (deterministic layout, so this is
  // a fixed property of the (5, 8) ring, not a probabilistic one).
  const HashRing ring(5, 8);
  std::set<int> used;
  for (std::uint64_t s = 0; s < 16; ++s)
    for (int r : ring.preference_list(s, 3)) used.insert(r);
  EXPECT_EQ(used.size(), 5u);
}

TEST(HashRing, NextAliveSkipsExcludedAndDeadReplicas) {
  const HashRing ring(5, 8);
  const auto pref = ring.preference_list(0, 3);
  std::vector<bool> alive(5, true);

  const int standin = ring.next_alive(0, pref, alive);
  ASSERT_GE(standin, 0);
  // The stand-in continues the walk past the preference list.
  EXPECT_EQ(std::find(pref.begin(), pref.end(), standin), pref.end());

  // Kill the stand-in: the walk must move on to the remaining replica.
  alive[static_cast<std::size_t>(standin)] = false;
  const int second = ring.next_alive(0, pref, alive);
  ASSERT_GE(second, 0);
  EXPECT_NE(second, standin);
  EXPECT_EQ(std::find(pref.begin(), pref.end(), second), pref.end());

  // No replica outside the preference list left alive -> -1.
  alive[static_cast<std::size_t>(second)] = false;
  EXPECT_EQ(ring.next_alive(0, pref, alive), -1);
}

TEST(HashRing, NextAliveFallsBackInsidePreferenceListWhenAskedTo) {
  // With an empty exclude list the first alive replica on the walk wins —
  // the migration-destination variant of the same walk.
  const HashRing ring(5, 8);
  std::vector<bool> alive(5, false);
  alive[2] = true;
  EXPECT_EQ(ring.next_alive(0, {}, alive), 2);
}

}  // namespace
}  // namespace ntier::kv
