#include "lb/probe_policy.h"

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <vector>

#include "obs/trace_io.h"
#include "sim/simulation.h"
#include "test_util.h"

namespace ntier::lb {
namespace {

using sim::SimTime;

std::vector<WorkerRecord> make_records(int n) {
  std::vector<WorkerRecord> recs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) recs[static_cast<std::size_t>(i)].tomcat_id = i;
  return recs;
}

std::vector<int> all_of(int n) {
  std::vector<int> v;
  for (int i = 0; i < n; ++i) v.push_back(i);
  return v;
}

/// Harness: a probe pool whose transport reports scripted (rif, latency)
/// pairs, but only for the first tick — so advancing the clock past the
/// staleness window makes every result stale instead of being refreshed.
struct PoolFixture {
  sim::Simulation simu{1};
  std::vector<double> rifs;
  std::vector<double> latencies;
  int answered = 0;
  probe::ProbePool pool;

  PoolFixture(std::vector<double> r, std::vector<double> lat,
              SimTime staleness = SimTime::millis(100))
      : rifs(std::move(r)),
        latencies(std::move(lat)),
        pool(simu, static_cast<int>(rifs.size()),
             [this](int w, probe::ProbePool::ReplyFn done) {
               if (answered >= static_cast<int>(rifs.size())) return;
               ++answered;
               done(true, rifs[static_cast<std::size_t>(w)],
                    latencies[static_cast<std::size_t>(w)]);
             },
             config(static_cast<int>(rifs.size()), staleness)) {
    // One tick at 100 ms probes every worker; results land instantly.
    simu.run_until(SimTime::millis(150));
  }

  static probe::ProbeConfig config(int n, SimTime staleness) {
    probe::ProbeConfig c;
    c.enabled = true;
    c.rate_hz = 10.0;
    c.d = n;  // probe the whole tier each tick
    c.staleness = staleness;
    c.reuse_budget = 1000;
    c.timeout = SimTime::millis(30);
    return c;
  }

  void make_everything_stale() {
    // Results are from t=100 ms; at t=450 ms they are 350 ms old, past the
    // 100 ms staleness bound. The transport stopped answering after tick 1.
    simu.run_until(SimTime::millis(450));
  }
};

TEST(PowerOfD, PicksLowestProbedRifAmongTheSample) {
  PoolFixture fx({5.0, 1.0, 3.0}, {2.0, 2.0, 2.0});
  PowerOfDPolicy p(/*d=*/3);  // d == n: the sample is the whole tier
  p.bind(&fx.pool);
  auto recs = make_records(3);
  sim::Rng rng(1);
  EXPECT_EQ(p.pick(recs, all_of(3), rng), 1);
  EXPECT_EQ(p.probe_picks(), 1u);
  EXPECT_EQ(p.fallback_picks(), 0u);
  EXPECT_EQ(fx.pool.uses(), 1u);  // the decision consumed a probe use
}

TEST(PowerOfD, TieOnRifBreaksTowardLowerWorkerIndex) {
  PoolFixture fx({2.0, 2.0, 2.0, 2.0}, {1.0, 1.0, 1.0, 1.0});
  PowerOfDPolicy p(/*d=*/4);
  p.bind(&fx.pool);
  auto recs = make_records(4);
  sim::Rng rng(1);
  EXPECT_EQ(p.pick(recs, all_of(4), rng), 0);
}

TEST(PowerOfD, RespectsEligibleSubset) {
  PoolFixture fx({0.0, 5.0, 1.0}, {1.0, 1.0, 1.0});
  PowerOfDPolicy p(/*d=*/3);
  p.bind(&fx.pool);
  auto recs = make_records(3);
  sim::Rng rng(1);
  // Worker 0 has the global minimum RIF but is not eligible.
  EXPECT_EQ(p.pick(recs, {1, 2}, rng), 2);
  EXPECT_EQ(p.pick(recs, {}, rng), -1);
}

TEST(PowerOfD, UnboundPoolFallsBackToCurrentLoadRanking) {
  PowerOfDPolicy p;
  auto recs = make_records(3);
  recs[0].lb_value = 2;
  recs[1].lb_value = 1;
  recs[2].lb_value = 3;
  sim::Rng rng(1);
  EXPECT_EQ(p.pick(recs, all_of(3), rng), 1);  // lowest lb_value
  EXPECT_EQ(p.fallback_picks(), 1u);
  EXPECT_EQ(p.probe_picks(), 0u);
}

TEST(PowerOfD, StaleProbesTriggerTheDocumentedFallback) {
  // The contract from probe_policy.h: probes past the staleness bound are as
  // good as no probes, and the decision degrades to exactly the paper's
  // current_load remedy (lowest lb_value under +1/-1 bookkeeping).
  PoolFixture fx({5.0, 1.0, 3.0}, {2.0, 2.0, 2.0});
  PowerOfDPolicy p(/*d=*/3);
  p.bind(&fx.pool);
  auto recs = make_records(3);
  sim::Rng rng(1);
  EXPECT_EQ(p.pick(recs, all_of(3), rng), 1);  // fresh: probed RIF wins

  fx.make_everything_stale();
  recs[0].lb_value = 3;  // under current_load ranking worker 2 now wins
  recs[1].lb_value = 4;
  recs[2].lb_value = 1;
  EXPECT_EQ(p.pick(recs, all_of(3), rng), 2);
  EXPECT_EQ(p.fallback_picks(), 1u);
  EXPECT_EQ(fx.pool.size(), 0u);  // expire_now() inside pick dropped them
  EXPECT_GT(fx.pool.expired_stale(), 0u);
}

TEST(Prequal, AvoidsHotWorkersAndPicksColdestByLatency) {
  // RIFs {1, 1, 10}: quantile = sorted[floor(.75*2)] = 1, hot threshold
  // max(1*2, 1+1) = 2, so worker 2 (rif 10) is hot — the anomaly regime.
  // Among the cold pair the lower estimated latency (worker 1) wins.
  PoolFixture fx({1.0, 1.0, 10.0}, {9.0, 4.0, 0.5});
  PrequalPolicy p;
  p.bind(&fx.pool);
  auto recs = make_records(3);
  sim::Rng rng(1);
  EXPECT_EQ(p.pick(recs, all_of(3), rng), 1);
  EXPECT_EQ(p.probe_picks(), 1u);
}

TEST(Prequal, UniformRifPoolShowsNoAnomalyAndRanksByCurrentLoad) {
  // Identical RIFs stay under the hot threshold — the quiet regime: the
  // pick is current_load ranking, not the latency rule.
  PoolFixture fx({3.0, 3.0, 3.0}, {5.0, 1.0, 2.0});
  PrequalPolicy p;
  p.bind(&fx.pool);
  auto recs = make_records(3);
  recs[0].lb_value = 2;
  recs[1].lb_value = 1;  // lowest current_load wins despite equal probes
  recs[2].lb_value = 3;
  sim::Rng rng(1);
  EXPECT_EQ(p.pick(recs, all_of(3), rng), 1);
  EXPECT_EQ(p.probe_picks(), 0u);
}

TEST(Prequal, QuietRegimeBreaksCurrentLoadTiesByProbedRif) {
  // RIFs {4, 2, 4}: quantile = sorted[1] = 4, hot threshold max(8, 5) — no
  // anomaly. Workers 1 and 2 tie on current_load; the probed global RIF
  // (2 < 4) breaks the tie instead of mod_jk's first-index scan.
  PoolFixture fx({4.0, 2.0, 4.0}, {1.0, 1.0, 1.0});
  PrequalPolicy p;
  p.bind(&fx.pool);
  auto recs = make_records(3);
  recs[0].lb_value = 1;
  sim::Rng rng(1);
  EXPECT_EQ(p.pick(recs, all_of(3), rng), 1);
  EXPECT_EQ(p.tiebreak_picks(), 1u);
  EXPECT_EQ(fx.pool.uses(), 0u);  // tie-break reads spend no reuse budget
}

TEST(Prequal, QuietRegimeEqualCandidatesKeepScanOrder) {
  PoolFixture fx({1.0, 1.0}, {2.0, 2.0});
  PrequalPolicy p;
  p.bind(&fx.pool);
  auto recs = make_records(2);
  sim::Rng rng(1);
  EXPECT_EQ(p.pick(recs, all_of(2), rng), 0);
}

TEST(Prequal, StaleProbesTriggerTheDocumentedFallback) {
  PoolFixture fx({1.0, 1.0, 10.0}, {9.0, 4.0, 0.5});
  PrequalPolicy p;
  p.bind(&fx.pool);
  auto recs = make_records(3);
  sim::Rng rng(1);
  EXPECT_EQ(p.pick(recs, all_of(3), rng), 1);

  fx.make_everything_stale();
  recs[0].lb_value = 0;
  recs[1].lb_value = 5;
  recs[2].lb_value = 5;
  EXPECT_EQ(p.pick(recs, all_of(3), rng), 0);  // current_load ranking
  EXPECT_EQ(p.fallback_picks(), 1u);
  EXPECT_EQ(p.probe_picks(), 1u);
}

TEST(ProbeAware, BookkeepingMatchesCurrentLoad) {
  // The fallback is only "exactly current_load" because the probe family
  // keeps the same +1/-1-normalised-by-weight lb_value accounting.
  auto recs = make_records(1);
  recs[0].weight = 2.0;
  PrequalPolicy p;
  proto::Request r;
  p.on_assigned(recs[0], r);
  p.on_assigned(recs[0], r);
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 1.0);
  p.on_completed(recs[0], r);
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 0.5);
  p.on_completed(recs[0], r);
  p.on_completed(recs[0], r);  // floors at zero, like Algorithm 4
  EXPECT_DOUBLE_EQ(recs[0].lb_value, 0.0);
}

#ifndef NTIER_OBS_DISABLED
TEST(ProbeDeterminism, PrequalTraceIsByteIdenticalForAFixedSeed) {
  // The probe subsystem adds its own RNG stream and its own event traffic;
  // neither may break the repo-wide invariant that a trace's JSONL bytes are
  // a pure function of (seed, config) — probing enabled included.
  auto make = [] {
    auto cfg = experiment::testing::quick_config(
        lb::PolicyKind::kPrequal, lb::MechanismKind::kNonBlocking,
        /*millibottlenecks=*/true, sim::SimTime::seconds(6));
    cfg.event_trace = true;
    auto e = experiment::testing::run(std::move(cfg));
    std::ostringstream os;
    obs::write_jsonl(os, *e->trace());
    return os.str();
  };
  const std::string a = make();
  const std::string b = make();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // byte-identical with probing enabled
}

TEST(ProbeDeterminism, ProbingExperimentEmitsProbeEventsAndProbePicks) {
  auto cfg = experiment::testing::quick_config(
      lb::PolicyKind::kPrequal, lb::MechanismKind::kNonBlocking,
      /*millibottlenecks=*/true, sim::SimTime::seconds(6));
  cfg.event_trace = true;
  auto e = experiment::testing::run(std::move(cfg));
  ASSERT_NE(e->trace(), nullptr);

  std::uint64_t sent = 0, replies = 0;
  e->trace()->for_each([&](const obs::TraceEvent& ev) {
    if (ev.kind == obs::EventKind::kProbeSent) ++sent;
    if (ev.kind == obs::EventKind::kProbeReply) ++replies;
  });
  EXPECT_GT(sent, 0u);
  EXPECT_GT(replies, 0u);
  EXPECT_LE(replies, sent);

  // The balancers actually consult probe state (anomaly-regime picks or
  // quiet-regime tie-breaks), not just the fallback.
  std::uint64_t probe_influenced = 0;
  for (int a = 0; a < e->num_apaches(); ++a) {
    const auto* aware = dynamic_cast<const ProbeAwarePolicy*>(
        &e->apache(a).balancer().policy());
    ASSERT_NE(aware, nullptr);
    probe_influenced += aware->probe_picks() + aware->tiebreak_picks();
  }
  EXPECT_GT(probe_influenced, 0u);
}
#endif  // NTIER_OBS_DISABLED

}  // namespace
}  // namespace ntier::lb
