// Extension: online millibottleneck detection + tail-based trace sampling
// on the paper's Figure 6 scenario (total_request + blocking get_endpoint +
// pdflush millibottlenecks).
//
// Three runs, all the same seed:
//   1. full trace + streaming detector  -> score the online episodes against
//      the offline CausalChainAnalyzer (matched fraction, spurious count,
//      per-episode and median detection latency);
//   2. quiet regime (millibottlenecks off) -> the detector must stay silent;
//   3. tail-sampled trace -> volume reduction vs run 1's full trace, and the
//      guarantee that every VLRT-attributed chain survived end to end.
#include "bench_common.h"

#include <unordered_map>
#include <unordered_set>

#include "millib/causal_chain.h"
#include "millib/online_detector.h"

using namespace ntier;
using namespace ntier::bench;

namespace {

/// std::streambuf that counts bytes and discards them — lets us measure
/// serialized trace volume without materialising hundreds of MB.
class CountingBuf : public std::streambuf {
 public:
  std::uint64_t bytes = 0;

 protected:
  int overflow(int c) override {
    if (c != EOF) ++bytes;
    return c;
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    bytes += static_cast<std::uint64_t>(n);
    return n;
  }
};

std::uint64_t trace_bytes(const obs::TraceCollector& trace) {
  CountingBuf buf;
  std::ostream os(&buf);
  obs::write_trace(os, trace, obs::TraceFormat::kJsonl);
  return buf.bytes;
}

void verdict(const std::string& what, bool pass, const std::string& bound) {
  std::cout << "verdict: " << what << " -- " << (pass ? "PASS" : "FAIL")
            << " (" << bound << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Extension", "online millibottleneck detection + tail-based sampling");

#ifdef NTIER_OBS_DISABLED
  std::cout << "tracing compiled out (NTIER_OBS_DISABLED) — nothing to "
               "detect or sample\n";
  return 0;
#else
  bool all_pass = true;

  // -- run 1: full trace + online detector -------------------------------------
  ExperimentConfig base =
      cluster_config(opt, PolicyKind::kTotalRequest, MechanismKind::kBlocking);
  base.event_trace = true;
  base.online_detect = true;
  // Size the ring for the whole run (~110k events/s at this scale), capped so
  // --full does not ask for paper-scale gigabytes; if the ring still wraps,
  // the comparison below is restricted to the retained window.
  base.trace_capacity = std::min<std::size_t>(
      static_cast<std::size_t>(base.duration.to_seconds() * 200'000.0) + 1,
      8u << 20);

  auto full = run_experiment(opt, base);
  const auto events = full->trace()->snapshot();
  const auto report = millib::CausalChainAnalyzer().analyze(events);

  std::vector<std::vector<std::pair<sim::SimTime, sim::SimTime>>> truth;
  for (const auto& c : report.chains) {
    if (c.tier != obs::Tier::kTomcat || c.node < 0) continue;
    if (truth.size() <= static_cast<std::size_t>(c.node))
      truth.resize(static_cast<std::size_t>(c.node) + 1);
    truth[static_cast<std::size_t>(c.node)].emplace_back(c.start, c.end);
  }

  // Episodes detected before the ring's retained window opened cannot be
  // scored against the (truncated) offline analysis.
  std::vector<millib::OnlineEpisode> scored;
  const sim::SimTime window_open = events.empty() ? sim::SimTime{} : events.front().at;
  for (const auto& ep : full->online_detector()->episodes())
    if (ep.onset >= window_open) scored.push_back(ep);
  const auto score = millib::OnlineDetector::score(scored, truth);

  std::cout << "\nonline vs offline detection (same run, same thresholds)\n"
            << "  offline episodes (tomcat tier): " << score.truth << "\n"
            << "  matched online: " << score.matched << " ("
            << std::fixed << std::setprecision(1)
            << 100.0 * score.match_fraction() << "%), missed " << score.missed
            << ", spurious " << score.false_positives << "\n"
            << "  median detection latency: " << std::setprecision(0)
            << score.median_latency_ms() << " ms\n";
  std::cout << "  per-episode detection latency:\n";
  for (const auto& ep : scored)
    std::cout << "    tomcat" << ep.node << " onset " << std::setprecision(2)
              << ep.onset.to_seconds() << " s, detected +"
              << std::setprecision(0) << ep.detection_latency_ms()
              << " ms, queue peak " << ep.queue_peak << ", vlrts " << ep.vlrts
              << "\n";

  const bool matched_ok = score.truth > 0 && score.match_fraction() >= 0.9;
  const bool latency_ok = score.median_latency_ms() <= 250.0;
  all_pass &= matched_ok && latency_ok;

  // -- run 2: quiet regime -----------------------------------------------------
  ExperimentConfig quiet = cluster_config(
      opt, PolicyKind::kTotalRequest, MechanismKind::kBlocking,
      /*millibottlenecks=*/false);
  quiet.online_detect = true;
  auto calm = run_experiment(opt, quiet);
  const std::size_t quiet_eps = calm->online_detector()->episodes().size();
  std::cout << "\nquiet regime (millibottlenecks off): " << quiet_eps
            << " episodes flagged\n";
  const bool quiet_ok = quiet_eps == 0;
  all_pass &= quiet_ok;

  // -- run 3: tail-sampled trace, same seed ------------------------------------
  ExperimentConfig tail_cfg = base;
  tail_cfg.trace_tail.enabled = true;
  auto tail = run_experiment(opt, tail_cfg);
  const auto* tt = tail->trace();
  const std::uint64_t full_bytes = trace_bytes(*full->trace());
  const std::uint64_t tail_bytes = trace_bytes(*tt);
  const double byte_fraction =
      full_bytes ? static_cast<double>(tail_bytes) /
                       static_cast<double>(full_bytes)
                 : 0.0;
  std::cout << "\ntail-based sampling (identical seed, detector-triggered "
               "retention)\n"
            << "  events: kept " << tt->tail_kept() << " of " << tt->tail_seen()
            << " (" << std::setprecision(1) << 100.0 * tt->tail_kept_fraction()
            << "%)\n"
            << "  bytes (jsonl): " << tail_bytes << " of " << full_bytes << " ("
            << 100.0 * byte_fraction << "%)\n";

  // Every VLRT the offline analyzer attributed to an episode must survive
  // sampling with its whole event chain. The two runs share a seed, so the
  // full run's per-request event counts are the ground truth.
  std::unordered_set<std::uint64_t> attributed;
  for (const auto& v : report.vlrt)
    if (v.episode >= 0) attributed.insert(v.request);
  std::unordered_map<std::uint64_t, std::uint64_t> want;
  for (const auto& e : events)
    if (e.request != 0 && attributed.count(e.request)) ++want[e.request];
  std::unordered_map<std::uint64_t, std::uint64_t> got;
  tt->for_each([&](const obs::TraceEvent& e) {
    if (e.request != 0 && attributed.count(e.request)) ++got[e.request];
  });
  std::uint64_t retained = 0;
  for (const auto& [req, n] : want)
    if (got[req] == n) ++retained;
  std::cout << "  VLRT-attributed chains retained end to end: " << retained
            << "/" << want.size() << "\n\n";
  const bool bytes_ok = byte_fraction <= 0.10;
  const bool chains_ok = retained == want.size() && !want.empty();
  all_pass &= bytes_ok && chains_ok;

  // -- verdicts ----------------------------------------------------------------
  {
    std::ostringstream s;
    s << "online detector matched " << score.matched << "/" << score.truth
      << " offline episodes (" << std::fixed << std::setprecision(1)
      << 100.0 * score.match_fraction() << "%)";
    verdict(s.str(), matched_ok, ">=90% required");
  }
  {
    std::ostringstream s;
    s << "median detection latency " << std::fixed << std::setprecision(0)
      << score.median_latency_ms() << " ms";
    verdict(s.str(), latency_ok, "<=250 ms required");
  }
  {
    std::ostringstream s;
    s << "zero false positives in the quiet regime (" << quiet_eps
      << " episodes)";
    verdict(s.str(), quiet_ok, "0 required");
  }
  {
    std::ostringstream s;
    s << "tail sampling kept " << std::fixed << std::setprecision(1)
      << 100.0 * byte_fraction << "% of full trace bytes";
    verdict(s.str(), bytes_ok, "<=10% required");
  }
  {
    std::ostringstream s;
    s << "tail sampling retained " << retained << "/" << want.size()
      << " VLRT-attributed chains";
    verdict(s.str(), chains_ok, "100% required");
  }
  return all_pass ? 0 : 1;
#endif
}
