// Figure 10 (a-b): the policy limitation of total_request. (a) the stalled
// Tomcat's queue peak; (b) the four lb_values at Apache1: during the stall
// the stalled candidate holds the *lowest* lb_value (it is frozen while the
// healthy ones keep incrementing), which is exactly why every request is
// sent to it; during recovery it spikes to the highest.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Figure 10", "lb_value traces under total_request");

  auto e = run_experiment(opt,
      cluster_config(opt, PolicyKind::kTotalRequest, MechanismKind::kBlocking));
  const auto w = e->config().metric_window;

  int tomcat = 0;
  sim::SimTime start, end;
  if (!first_flush(*e, tomcat, start, end)) {
    std::cout << "no millibottleneck observed — nothing to plot\n";
    return 1;
  }
  const auto zoom0 = start - sim::SimTime::millis(300);
  const auto zoom1 = end + sim::SimTime::millis(700);
  std::cout << "\nmillibottleneck on tomcat" << tomcat + 1 << " at "
            << start.to_string() << ".." << end.to_string() << "\n\n";

  std::cout << "(a) committed queue of the stalled tomcat (zoom):\n";
  experiment::print_panel(
      std::cout, "tomcat" + std::to_string(tomcat + 1),
      experiment::slice(e->tomcat_committed_series(tomcat), w, zoom0, zoom1));

  // (b) lb_values at Apache1, normalised to tomcat2-style baseline: print
  // value minus the minimum across tomcats per window, as the paper plots
  // differences of cumulative counters.
  const auto& bal = e->apache(0).balancer();
  std::cout << "\n(b) lb_value (Apache1), per 50 ms window, relative to the "
               "window minimum:\n  "
            << std::setw(9) << "t(s)";
  for (int t = 0; t < e->num_tomcats(); ++t)
    std::cout << std::setw(10) << ("tomcat" + std::to_string(t + 1));
  std::cout << "   (min-holder)\n";
  std::vector<std::vector<double>> csv_cols(
      static_cast<std::size_t>(e->num_tomcats()));
  int stalled_is_min = 0, windows_in_stall = 0;
  for (sim::SimTime t = zoom0; t < zoom1; t += w) {
    const auto i = static_cast<std::size_t>(t.ns() / w.ns());
    double mn = 1e300;
    int mn_t = -1;
    std::vector<double> vals;
    for (int k = 0; k < e->num_tomcats(); ++k) {
      const double v = bal.lb_value_trace(k).max(i);
      vals.push_back(v);
      csv_cols[static_cast<std::size_t>(k)].push_back(v);
      if (v < mn) {
        mn = v;
        mn_t = k;
      }
    }
    std::cout << "  " << std::fixed << std::setprecision(2) << std::setw(7)
              << t.to_seconds() << "s";
    for (double v : vals)
      std::cout << std::setw(10) << std::setprecision(0) << (v - mn);
    std::cout << "   tomcat" << mn_t + 1 << "\n";
    if (t >= start && t < end) {
      ++windows_in_stall;
      if (mn_t == tomcat) ++stalled_is_min;
    }
  }

  std::cout << "\n";
  paper_vs_measured("stalled candidate holds the lowest lb_value",
                    "for the whole stall (phase 2)",
                    std::to_string(stalled_is_min) + "/" +
                        std::to_string(windows_in_stall) + " stall windows");
  maybe_csv(opt, "fig10_lb_values.csv", w,
            {"tomcat1", "tomcat2", "tomcat3", "tomcat4"}, csv_cols);
  return 0;
}
