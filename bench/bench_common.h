#pragma once

// Shared machinery for the figure/table reproduction benches. Every bench:
//   * builds one or more ExperimentConfigs from the paper presets,
//   * runs them,
//   * prints the same rows/series the paper reports (as numbers plus
//     terminal sparklines so the *shape* is visible at a glance),
//   * optionally dumps raw CSV via --csv DIR, and
//   * accepts --full to run at the paper's scale (70 000 clients, 180 s).

#include <filesystem>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/experiment.h"
#include "experiment/report.h"

namespace ntier::bench {

using experiment::BenchOptions;
using experiment::Experiment;
using experiment::ExperimentConfig;
using lb::MechanismKind;
using lb::PolicyKind;
using sim::SimTime;

inline void header(const std::string& id, const std::string& title) {
  std::cout << "==================================================================\n"
            << id << ": " << title << "\n"
            << "==================================================================\n";
}

inline std::unique_ptr<Experiment> run_experiment(ExperimentConfig cfg,
                                                  bool announce = true) {
  if (announce)
    std::cout << "\n-- running " << experiment::describe(cfg) << "\n";
  auto e = std::make_unique<Experiment>(std::move(cfg));
  e->run();
  return e;
}

/// The standard 4A/4T/1M environment with millibottlenecks on the Tomcats.
inline ExperimentConfig cluster_config(const BenchOptions& opt,
                                       PolicyKind policy, MechanismKind mech,
                                       bool millibottlenecks = true) {
  ExperimentConfig c = opt.apply(ExperimentConfig::scaled(0.1));
  c.duration = opt.full ? SimTime::seconds(180) : SimTime::seconds(20);
  c.policy = policy;
  c.mechanism = mech;
  c.tomcat_millibottlenecks = millibottlenecks;
  return c;
}

/// First completed pdflush episode after warmup; returns false if none.
inline bool first_flush(Experiment& e, int& tomcat, SimTime& start,
                        SimTime& end) {
  bool found = false;
  for (int t = 0; t < e.num_tomcats(); ++t) {
    for (const auto& [s, f] : e.flush_intervals(t)) {
      if (s > e.config().warmup && f < e.config().duration &&
          (!found || s < start)) {
        tomcat = t;
        start = s;
        end = f;
        found = true;
      }
    }
  }
  return found;
}

/// Paper-style workload-distribution table: share of Apache-0 assignments
/// per Tomcat in consecutive sub-windows of [t0, t1).
inline void print_distribution(Experiment& e, SimTime t0, SimTime t1,
                               SimTime step, int stalled = -1) {
  std::cout << "  Apache1 workload distribution (assignments per "
            << step.to_string() << " window";
  if (stalled >= 0) std::cout << "; Tomcat" << stalled + 1 << " has the millibottleneck";
  std::cout << "):\n  " << std::setw(12) << "window";
  for (int t = 0; t < e.num_tomcats(); ++t)
    std::cout << std::setw(10) << ("tomcat" + std::to_string(t + 1));
  std::cout << "\n";
  const auto& bal = e.apache(0).balancer();
  for (SimTime w = t0; w < t1; w += step) {
    std::cout << "  " << std::setw(7) << std::fixed << std::setprecision(2)
              << w.to_seconds() << "s    ";
    for (int t = 0; t < e.num_tomcats(); ++t) {
      const auto counts = experiment::series_count(bal.assignment_trace(t),
                                                   e.num_metric_windows());
      const double n = experiment::sum_of(
          experiment::slice(counts, e.config().metric_window, w, w + step));
      std::cout << std::setw(10) << static_cast<std::int64_t>(n);
    }
    std::cout << "\n";
  }
}

/// Dump aligned per-window series as CSV when --csv was given.
inline void maybe_csv(const BenchOptions& opt, const std::string& file,
                      SimTime window, const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& cols) {
  if (opt.csv_dir.empty()) return;
  std::filesystem::create_directories(opt.csv_dir);
  const std::string path = opt.csv_dir + "/" + file;
  experiment::write_series_csv(path, window, names, cols);
  std::cout << "  [csv] " << path << "\n";
}

inline void paper_vs_measured(const std::string& what, const std::string& paper,
                              const std::string& measured) {
  std::cout << "  " << std::left << std::setw(42) << what
            << " paper: " << std::setw(18) << paper << " measured: " << measured
            << "\n";
}

}  // namespace ntier::bench
