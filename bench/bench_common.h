#pragma once

// Shared machinery for the figure/table reproduction benches. Every bench:
//   * builds one or more ExperimentConfigs from the paper presets,
//   * runs them,
//   * prints the same rows/series the paper reports (as numbers plus
//     terminal sparklines so the *shape* is visible at a glance),
//   * optionally dumps raw CSV via --csv DIR, and
//   * accepts --full to run at the paper's scale (70 000 clients, 180 s).

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/experiment.h"
#include "experiment/report.h"
#include "experiment/summary.h"
#include "experiment/sweep.h"
#include "obs/trace_io.h"

namespace ntier::bench {

using experiment::BenchOptions;
using experiment::Experiment;
using experiment::ExperimentConfig;
using lb::MechanismKind;
using lb::PolicyKind;
using sim::SimTime;

inline void header(const std::string& id, const std::string& title) {
  std::cout << "==================================================================\n"
            << id << ": " << title << "\n"
            << "==================================================================\n";
}

inline std::unique_ptr<Experiment> run_experiment(ExperimentConfig cfg,
                                                  bool announce = true) {
  if (announce)
    std::cout << "\n-- running " << experiment::describe(cfg) << "\n";
  auto e = std::make_unique<Experiment>(std::move(cfg));
  e->run();
  return e;
}

/// Append one JSON result row for a finished run (the contract behind
/// `scripts/run_all_benches.sh --json`): bench name, run ordinal, the
/// Table-I style aggregates, the VLRT count, and the wall-clock cost.
inline void append_json_row(const BenchOptions& opt, Experiment& e,
                            double wall_ms, int run) {
  std::ofstream f(opt.json_path, std::ios::app);
  if (!f) {
    std::cerr << "  [json] cannot append to " << opt.json_path << "\n";
    return;
  }
  const experiment::RunSummary s = experiment::summarize(e);
  f << "{\"bench\":\"" << opt.program << "\",\"run\":" << run << ",\"label\":\""
    << s.label << "\",\"policy\":\"" << s.policy << "\",\"mechanism\":\""
    << s.mechanism << "\",\"seed\":" << e.config().seed
    << ",\"completed\":" << s.completed << ",\"dropped\":" << s.dropped
    << ",\"balancer_errors\":" << s.balancer_errors
    << ",\"mean_ms\":" << s.mean_rt_ms << ",\"p50_ms\":" << s.p50_ms
    << ",\"p99_ms\":" << s.p99_ms
    << ",\"p999_ms\":" << s.p999_ms << ",\"vlrt_count\":" << e.log().vlrt_count()
    << ",\"vlrt_fraction\":" << s.vlrt_fraction
    << ",\"goodput_rps\":" << s.goodput_rps
    << ",\"total_sheds\":"
    << (s.admission_sheds + s.brownout_sheds + s.deadline_sheds +
        s.sojourn_sheds)
    << ",\"deadline_sheds\":" << s.deadline_sheds
    << ",\"wasted_work_avoided_ms\":" << s.wasted_work_avoided_ms
    << ",\"kv_quorum_failed\":" << s.kv_quorum_failed
    << ",\"kv_handoff_dropped\":" << s.kv_handoff_dropped
    << ",\"kv_migration_shed\":" << s.kv_migration_shed
    << ",\"kv_hints_replayed\":" << s.kv_hints_replayed
    << ",\"kv_degraded_ms\":" << s.kv_degraded_ms
    << ",\"cache_hits\":" << s.cache_hits
    << ",\"cache_misses\":" << s.cache_misses
    << ",\"cache_hit_ratio\":" << s.cache_hit_ratio
    << ",\"cache_invalidations\":" << s.cache_invalidations
    << ",\"cache_coalesced_fills\":" << s.cache_coalesced_fills
    << ",\"online_episodes\":" << s.online_episodes
    << ",\"online_matched\":" << s.online_matched
    << ",\"online_false_positives\":" << s.online_false_positives
    << ",\"detection_latency_ms\":" << s.online_median_detection_ms
    << ",\"trace_kept_fraction\":" << s.trace_kept_fraction
    << ",\"wall_ms\":" << wall_ms << "}\n";
}

/// Trace/JSON-aware variant: enables event tracing when the bench was run
/// with `--trace FILE` (writing one trace file per run, suffixing `.N` from
/// the second run on) and appends a JSON result row under `--json FILE`.
inline std::unique_ptr<Experiment> run_experiment(const BenchOptions& opt,
                                                  ExperimentConfig cfg,
                                                  bool announce = true) {
  static int runs = 0;
  if (!opt.trace_path.empty()) cfg.event_trace = true;
  if (announce)
    std::cout << "\n-- running " << experiment::describe(cfg) << "\n";
  const auto wall0 = std::chrono::steady_clock::now();
  auto e = std::make_unique<Experiment>(std::move(cfg));
  e->run();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall0)
                             .count();
  ++runs;
  if (!opt.trace_path.empty() && e->trace() != nullptr) {
    std::string path = opt.trace_path;
    if (runs > 1) path += "." + std::to_string(runs);
    std::ofstream f(path, std::ios::binary);
    if (!f) {
      std::cerr << "  [trace] cannot write " << path << "\n";
    } else {
      obs::write_trace(f, *e->trace(), opt.trace_format);
      std::cout << "  [trace] " << path << " (" << e->trace()->size()
                << " events";
      if (e->trace()->dropped() > 0)
        std::cout << ", " << e->trace()->dropped() << " dropped by ring";
      std::cout << ")\n";
    }
  }
  if (!opt.json_path.empty()) append_json_row(opt, *e, wall_ms, runs);
  return e;
}

/// JSON row for a sweep: same shape as append_json_row plus `runs`, the
/// `*_ci95` half-widths, and the pooled-distribution tail columns, so
/// BENCH_results.json rows say how trustworthy each number is.
inline void append_sweep_json_row(const BenchOptions& opt,
                                  const experiment::AggregateSummary& agg,
                                  double wall_ms, int run) {
  std::ofstream f(opt.json_path, std::ios::app);
  if (!f) {
    std::cerr << "  [json] cannot append to " << opt.json_path << "\n";
    return;
  }
  f << "{\"bench\":\"" << opt.program << "\",\"run\":" << run << ",\"label\":\""
    << agg.label << "\",\"policy\":\"" << agg.policy << "\",\"mechanism\":\""
    << agg.mechanism << "\",\"seed\":" << agg.base_seed
    << ",\"runs\":" << agg.runs()
    << ",\"completed\":" << agg.completed.mean
    << ",\"completed_ci95\":" << agg.completed.ci95_half
    << ",\"dropped\":" << agg.dropped.mean
    << ",\"balancer_errors\":" << agg.balancer_errors.mean
    << ",\"mean_ms\":" << agg.mean_rt_ms.mean
    << ",\"mean_ms_ci95\":" << agg.mean_rt_ms.ci95_half
    << ",\"p99_ms\":" << agg.p99_ms.mean
    << ",\"p99_ms_ci95\":" << agg.p99_ms.ci95_half
    << ",\"p999_ms\":" << agg.p999_ms.mean
    << ",\"p999_ms_ci95\":" << agg.p999_ms.ci95_half
    << ",\"vlrt_fraction\":" << agg.vlrt_fraction.mean
    << ",\"vlrt_fraction_ci95\":" << agg.vlrt_fraction.ci95_half
    << ",\"pooled_p99_ms\":" << agg.pooled_p99_ms()
    << ",\"pooled_p999_ms\":" << agg.pooled_p999_ms()
    << ",\"pooled_vlrt_fraction\":" << agg.pooled_vlrt_fraction()
    << ",\"goodput_rps\":" << agg.goodput_rps.mean
    << ",\"goodput_rps_ci95\":" << agg.goodput_rps.ci95_half
    << ",\"total_sheds\":" << agg.total_sheds.mean
    << ",\"wasted_work_avoided_ms\":" << agg.wasted_work_avoided_ms.mean
    << ",\"cache_hits\":" << agg.cache_hits.mean
    << ",\"cache_misses\":" << agg.cache_misses.mean
    << ",\"cache_invalidations\":" << agg.cache_invalidations.mean
    << ",\"cache_coalesced_fills\":" << agg.cache_coalesced_fills.mean
    << ",\"online_episodes\":" << agg.online_episodes.mean
    << ",\"online_false_positives\":" << agg.online_false_positives.mean
    << ",\"detection_latency_ms\":" << agg.online_median_detection_ms.mean
    << ",\"trace_kept_fraction\":" << agg.trace_kept_fraction.mean
    << ",\"wall_ms\":" << wall_ms << "}\n";
}

/// Run one bench row as a sweep of `opt.sweep_seeds` replicas on `opt.jobs`
/// worker threads. With sweep_seeds == 1 the config runs exactly as given
/// (seed untouched), so single-run bench output stays comparable across
/// versions; CI half-widths are then 0.
inline experiment::AggregateSummary run_sweep(const BenchOptions& opt,
                                              ExperimentConfig cfg,
                                              bool announce = true) {
  static int runs = 0;
  experiment::SweepConfig sc;
  if (opt.sweep_seeds <= 1) {
    sc.grid.push_back(std::move(cfg));
  } else {
    sc.base = std::move(cfg);
    sc.num_runs = opt.sweep_seeds;
  }
  sc.jobs = opt.jobs;
  if (announce)
    std::cout << "\n-- sweeping " << opt.sweep_seeds << " seeds of "
              << experiment::describe(sc.grid.empty() ? sc.base : sc.grid[0])
              << "\n";
  const auto wall0 = std::chrono::steady_clock::now();
  experiment::SweepRunner runner(std::move(sc));
  experiment::AggregateSummary agg = runner.run();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall0)
                             .count();
  ++runs;
  if (!opt.json_path.empty()) append_sweep_json_row(opt, agg, wall_ms, runs);
  return agg;
}

/// Table-I style row for a sweep: the same columns as
/// RequestLog::summary_row, each cross-run mean followed by its ±CI.
inline void print_sweep_row(std::ostream& os, const std::string& label,
                            const experiment::AggregateSummary& agg) {
  auto pm = [](double mean, double ci, int prec) {
    std::ostringstream s;
    s << std::fixed << std::setprecision(prec) << mean << "+-"
      << std::setprecision(prec) << ci;
    return s.str();
  };
  os << std::left << std::setw(44) << label << std::right << std::setw(11)
     << static_cast<std::int64_t>(agg.completed.mean + 0.5) << std::setw(13)
     << pm(agg.mean_rt_ms.mean, agg.mean_rt_ms.ci95_half, 2) << std::setw(12)
     << pm(agg.vlrt_fraction.mean * 100, agg.vlrt_fraction.ci95_half * 100, 2)
     << std::setw(12)
     << pm(agg.normal_fraction.mean * 100, agg.normal_fraction.ci95_half * 100,
           1)
     << "\n";
}

/// The standard 4A/4T/1M environment with millibottlenecks on the Tomcats.
inline ExperimentConfig cluster_config(const BenchOptions& opt,
                                       PolicyKind policy, MechanismKind mech,
                                       bool millibottlenecks = true) {
  ExperimentConfig c = opt.apply(ExperimentConfig::scaled(0.1));
  c.duration = opt.full    ? SimTime::seconds(180)
               : opt.quick ? SimTime::seconds(8)
                           : SimTime::seconds(20);
  c.policy = policy;
  c.mechanism = mech;
  c.tomcat_millibottlenecks = millibottlenecks;
  return c;
}

/// First completed pdflush episode after warmup; returns false if none.
inline bool first_flush(Experiment& e, int& tomcat, SimTime& start,
                        SimTime& end) {
  bool found = false;
  for (int t = 0; t < e.num_tomcats(); ++t) {
    for (const auto& [s, f] : e.flush_intervals(t)) {
      if (s > e.config().warmup && f < e.config().duration &&
          (!found || s < start)) {
        tomcat = t;
        start = s;
        end = f;
        found = true;
      }
    }
  }
  return found;
}

/// Paper-style workload-distribution table: share of Apache-0 assignments
/// per Tomcat in consecutive sub-windows of [t0, t1).
inline void print_distribution(Experiment& e, SimTime t0, SimTime t1,
                               SimTime step, int stalled = -1) {
  std::cout << "  Apache1 workload distribution (assignments per "
            << step.to_string() << " window";
  if (stalled >= 0) std::cout << "; Tomcat" << stalled + 1 << " has the millibottleneck";
  std::cout << "):\n  " << std::setw(12) << "window";
  for (int t = 0; t < e.num_tomcats(); ++t)
    std::cout << std::setw(10) << ("tomcat" + std::to_string(t + 1));
  std::cout << "\n";
  const auto& bal = e.apache(0).balancer();
  for (SimTime w = t0; w < t1; w += step) {
    std::cout << "  " << std::setw(7) << std::fixed << std::setprecision(2)
              << w.to_seconds() << "s    ";
    for (int t = 0; t < e.num_tomcats(); ++t) {
      const auto counts = experiment::series_count(bal.assignment_trace(t),
                                                   e.num_metric_windows());
      const double n = experiment::sum_of(
          experiment::slice(counts, e.config().metric_window, w, w + step));
      std::cout << std::setw(10) << static_cast<std::int64_t>(n);
    }
    std::cout << "\n";
  }
}

/// Dump aligned per-window series as CSV when --csv was given.
inline void maybe_csv(const BenchOptions& opt, const std::string& file,
                      SimTime window, const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& cols) {
  if (opt.csv_dir.empty()) return;
  static bool warned = false;
  try {
    std::filesystem::create_directories(opt.csv_dir);
    const std::string path = opt.csv_dir + "/" + file;
    experiment::write_series_csv(path, window, names, cols);
    std::cout << "  [csv] " << path << "\n";
  } catch (const std::exception& err) {
    if (!warned) {
      std::cerr << "  [csv] cannot write CSV series under --csv dir '"
                << opt.csv_dir << "': " << err.what() << "\n";
      warned = true;
    }
  }
}

inline void paper_vs_measured(const std::string& what, const std::string& paper,
                              const std::string& measured) {
  std::cout << "  " << std::left << std::setw(42) << what
            << " paper: " << std::setw(18) << paper << " measured: " << measured
            << "\n";
}

}  // namespace ntier::bench
