// Figure 4: frequency of requests by response time under total_request and
// total_traffic. Expected shape: a large mass of fast requests plus three
// distinct VLRT clusters near 1 s, 2 s and 3 s (TCP retransmission offsets).
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Figure 4", "frequency of requests by response time (VLRT clusters)");

  for (const auto policy :
       {PolicyKind::kTotalRequest, PolicyKind::kTotalTraffic}) {
    auto e = run_experiment(opt,
        cluster_config(opt, policy, MechanismKind::kBlocking));
    const auto& h = e->log().histogram();

    std::cout << "\n[" << lb::to_string(policy) << "] response-time histogram:\n";
    std::vector<double> bars;
    std::cout << "  bucket(ms)        count\n";
    for (std::size_t b = 0; b < h.num_buckets(); ++b) {
      bars.push_back(static_cast<double>(h.bucket_count(b)));
      if (h.bucket_count(b) == 0) continue;
      if (h.bucket_lower(b) >= 400.0) {  // the long-tail region of Fig. 4
        std::cout << "  " << std::fixed << std::setprecision(0) << std::setw(6)
                  << h.bucket_lower(b) << "-" << std::setw(6)
                  << h.bucket_upper(b) << "  " << h.bucket_count(b) << "\n";
      }
    }
    experiment::print_panel(std::cout, "full histogram (log buckets)", bars);

    auto cluster_count = [&](double center) {
      std::int64_t n = 0;
      for (std::size_t b = 0; b < h.num_buckets(); ++b)
        if (h.bucket_lower(b) >= center * 0.85 && h.bucket_lower(b) <= center * 1.35)
          n += h.bucket_count(b);
      return n;
    };
    paper_vs_measured("cluster at ~1 s", "present",
                      std::to_string(cluster_count(1000)) + " requests");
    paper_vs_measured("cluster at ~2 s", "present",
                      std::to_string(cluster_count(2000)) + " requests");
    paper_vs_measured("cluster at ~3 s", "present",
                      std::to_string(cluster_count(3000)) + " requests");
  }
  std::cout << "\n(clusters sit at the cumulative retransmission offsets of the\n"
               " configured RTO schedule; see bench_ablation_sweeps --rto)\n";
  return 0;
}
