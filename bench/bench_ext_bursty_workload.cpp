// Extension: bursty workloads as the millibottleneck source (§III-A cites
// them alongside GC/DVFS). pdflush disabled; strong arrival bursts create
// transient saturation on their own. Policies are compared under bursts to
// see whether balancing choices matter when the *whole tier* saturates.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Extension: bursty workload",
         "arrival bursts instead of pdflush (whole-tier transient saturation)");

  std::cout << "\n";
  experiment::print_table1_header(std::cout);
  for (const double mult : {1.0, 6.0, 10.0}) {
    for (const auto& [policy, mech] :
         {std::pair{PolicyKind::kTotalRequest, MechanismKind::kBlocking},
          std::pair{PolicyKind::kCurrentLoad, MechanismKind::kNonBlocking}}) {
      ExperimentConfig cfg = cluster_config(opt, policy, mech,
                                            /*millibottlenecks=*/false);
      cfg.bursty_workload = mult > 1.0;
      cfg.burst_multiplier = mult;
      cfg.tracing = false;
      auto e = run_experiment(opt, std::move(cfg), false);
      char label[128];
      std::snprintf(label, sizeof(label), "burst x%.0f / %s+%s", mult,
                    lb::to_string(policy).c_str(), lb::to_string(mech).c_str());
      std::cout << e->log().summary_row(label) << "\n";
    }
  }
  std::cout << "\n(burst saturation hits every Tomcat at once, so unlike the\n"
               " single-server millibottleneck there is no healthy candidate\n"
               " to divert to — policies converge as bursts grow, which is\n"
               " why the paper's remedies target *asymmetric* stalls)\n";
  return 0;
}
