// Figure 2 (a-e): anatomy of VLRT requests on the simplest configuration
// (1 Apache / 1 Tomcat / 1 MySQL) with millibottlenecks present on both the
// Apache and the Tomcat node. The five panels reproduce the paper's causal
// chain: VLRT clusters <- per-tier queue peaks <- transient CPU saturation
// <- iowait saturation <- abrupt dirty-page drops (pdflush).
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Figure 2", "VLRT requests caused by flushing dirty pages (1A/1T/1M)");

  ExperimentConfig cfg = opt.apply(ExperimentConfig::single_node(0.1));
  cfg.duration = opt.full ? sim::SimTime::seconds(180) : sim::SimTime::seconds(20);
  auto e = run_experiment(opt, std::move(cfg));

  const auto windows = e->num_metric_windows();
  const auto w = e->config().metric_window;

  const auto vlrt = experiment::series_count(e->log().vlrt_series(), windows);
  const auto apache_q = e->apache_tier_queue();
  const auto tomcat_q = e->tomcat_tier_queue();
  const auto mysql_q = e->mysql_tier_queue();
  const auto cpu = experiment::series_avg(e->tomcat_cpu_series(0), windows);
  const auto iowait = experiment::series_avg(e->tomcat_iowait_series(0), windows);
  std::vector<double> dirty(windows, 0.0);
  for (std::size_t i = 0; i < windows; ++i)
    dirty[i] = e->tomcat_node(0).page_cache().trace().max(i) / (1 << 20);

  std::cout << "\n(a) VLRT per 50 ms, (b) queues, (c) CPU, (d) iowait, (e) dirty pages\n";
  experiment::print_panel(std::cout, "(a) VLRT requests / 50ms", vlrt);
  experiment::print_panel(std::cout, "(b) apache queue", apache_q);
  experiment::print_panel(std::cout, "(b) tomcat queue", tomcat_q);
  experiment::print_panel(std::cout, "(b) mysql queue", mysql_q);
  experiment::print_panel(std::cout, "(c) tomcat CPU util", cpu);
  experiment::print_panel(std::cout, "(d) tomcat iowait", iowait);
  experiment::print_panel(std::cout, "(e) dirty pages (MB)", dirty);

  // Correlation checks, echoing the paper's reading of the figure.
  int flushes = 0, flushes_with_cpu_sat = 0, flushes_with_queue_peak = 0;
  for (const auto& [s, f] : e->flush_intervals(0)) {
    if (f >= e->config().duration) continue;
    ++flushes;
    const auto cpu_win = experiment::slice(cpu, w, s, f + w);
    const auto q_win =
        experiment::slice(tomcat_q, w, s, f + sim::SimTime::millis(200));
    if (experiment::max_of(cpu_win) > 0.9) ++flushes_with_cpu_sat;
    if (experiment::max_of(q_win) >
        4.0 * experiment::max_of(experiment::slice(
                  tomcat_q, w, sim::SimTime::seconds(2), sim::SimTime::seconds(4))))
      ++flushes_with_queue_peak;
  }
  std::cout << "\n";
  paper_vs_measured("dirty-page drops correlate with iowait", "strong",
                    std::to_string(flushes) + " flushes");
  paper_vs_measured("flushes with transient CPU saturation", "all",
                    std::to_string(flushes_with_cpu_sat) + "/" +
                        std::to_string(flushes));
  paper_vs_measured("flushes with tomcat queue peak", "all",
                    std::to_string(flushes_with_queue_peak) + "/" +
                        std::to_string(flushes));
  paper_vs_measured("VLRT vs normal requests", "1222 vs 16722 (sampled window)",
                    std::to_string(e->log().vlrt_count()) + " vs " +
                        std::to_string(static_cast<std::int64_t>(
                            e->log().normal_fraction() * e->log().completed())));

  maybe_csv(opt, "fig02_anatomy.csv", w,
            {"vlrt", "apache_q", "tomcat_q", "mysql_q", "cpu", "iowait",
             "dirty_mb"},
            {vlrt, apache_q, tomcat_q, mysql_q, cpu, iowait, dirty});
  return 0;
}
