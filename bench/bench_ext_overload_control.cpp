// Extension: end-to-end overload control under millibottlenecks.
//
// The paper shows a 300 ms pdflush stall amplifying into multi-second VLRT
// requests because no tier ever says "no": work piles up in accept queues,
// is retransmitted into the stall, and is still executed seconds after the
// client stopped caring. This bench measures the three standard
// counter-measures (src/control) on exactly that scenario:
//
//   deadline   — requests carry a 1 s budget; every tier sheds expired work,
//   admission  — AIMD concurrency limiter at Apache + per-Tomcat with
//                priority brownout (RUBBoS writes/logins protected),
//   full       — both, plus CoDel sojourn shedding on the accept backlog.
//
// Headline metric is *goodput* (completions within deadline per second) and
// the p99.9 of admitted requests — overload control that merely swaps slow
// completions for rejections would show up as a goodput loss.
//
// Three scenarios:
//   1. Fig. 6 millibottleneck (4A/4T/1M, rotating pdflush stalls),
//   2. flash crowd: the same cluster with 6x bursty arrivals,
//   3. quiet regime: millibottlenecks off — overload control must cost
//      nothing here (goodput within 5% of the uncontrolled baseline).
//
// Every cell stamps deadlines (control::OverloadConfig::stamp_deadlines) so
// the no-control baseline reports a comparable goodput number without
// shedding anything.
#include <string>

#include "bench_common.h"
#include "control/overload.h"

using namespace ntier;
using namespace ntier::bench;

namespace {

struct Cell {
  std::string label;
  std::int64_t completed = 0;
  double goodput = 0, mean_ms = 0, p999_ms = 0, vlrt = 0;
  std::uint64_t sheds = 0, deadline_sheds = 0;
  double wasted_ms = 0;
};

ExperimentConfig overload_config(const BenchOptions& opt,
                                 control::OverloadMode mode,
                                 bool millibottlenecks) {
  ExperimentConfig cfg = cluster_config(opt, PolicyKind::kTotalRequest,
                                        MechanismKind::kBlocking,
                                        millibottlenecks);
  cfg.tracing = false;  // the request log and shed counters carry this bench
  cfg.overload = control::make_overload(mode, sim::SimTime::seconds(1));
  cfg.overload.stamp_deadlines = true;  // baseline reports goodput too
  // Identical workload in every cell: priorities are stamped (not drawn), so
  // enabling them everywhere keeps the RNG streams byte-identical while
  // giving brownout something to rank.
  cfg.workload.priority_mix = workload::PriorityMix::kRubbos;
  cfg.label = std::string("overload_") + control::to_string(mode);
  return cfg;
}

Cell run_cell(const BenchOptions& opt, const std::string& label,
              ExperimentConfig cfg) {
  Cell c;
  c.label = label;
  if (opt.sweep_seeds > 1) {
    const auto agg = run_sweep(opt, std::move(cfg), /*announce=*/false);
    c.completed = static_cast<std::int64_t>(agg.completed.mean + 0.5);
    c.goodput = agg.goodput_rps.mean;
    c.mean_ms = agg.mean_rt_ms.mean;
    c.p999_ms = agg.pooled_p999_ms();
    c.vlrt = agg.pooled_vlrt_fraction();
    c.sheds = static_cast<std::uint64_t>(agg.total_sheds.mean + 0.5);
    c.deadline_sheds =
        static_cast<std::uint64_t>(agg.deadline_sheds.mean + 0.5);
    c.wasted_ms = agg.wasted_work_avoided_ms.mean;
    return c;
  }
  auto e = run_experiment(opt, std::move(cfg), /*announce=*/false);
  const auto s = experiment::summarize(*e);
  c.completed = s.completed;
  c.goodput = s.goodput_rps;
  c.mean_ms = s.mean_rt_ms;
  c.p999_ms = s.p999_ms;
  c.vlrt = s.vlrt_fraction;
  c.sheds = s.admission_sheds + s.brownout_sheds + s.deadline_sheds +
            s.sojourn_sheds;
  c.deadline_sheds = s.deadline_sheds;
  c.wasted_ms = s.wasted_work_avoided_ms;
  return c;
}

void print_cells(const std::vector<Cell>& cells) {
  std::cout << "  " << std::left << std::setw(26) << "mode" << std::right
            << std::setw(10) << "completed" << std::setw(11) << "goodput/s"
            << std::setw(10) << "mean ms" << std::setw(11) << "p99.9 ms"
            << std::setw(9) << "VLRT %" << std::setw(9) << "sheds"
            << std::setw(13) << "avoided ms" << "\n";
  for (const Cell& c : cells) {
    std::cout << "  " << std::left << std::setw(26) << c.label << std::right
              << std::setw(10) << c.completed << std::fixed
              << std::setprecision(1) << std::setw(11) << c.goodput
              << std::setprecision(2) << std::setw(10) << c.mean_ms
              << std::setprecision(1) << std::setw(11) << c.p999_ms
              << std::setprecision(3) << std::setw(9) << 100 * c.vlrt
              << std::setw(9) << c.sheds << std::setprecision(0)
              << std::setw(13) << c.wasted_ms << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Ext", "end-to-end overload control (deadlines, AIMD admission, CoDel)");

  using control::OverloadMode;
  const std::pair<const char*, OverloadMode> modes[] = {
      {"none (baseline)", OverloadMode::kNone},
      {"deadline only", OverloadMode::kDeadline},
      {"admission only", OverloadMode::kAdmission},
      {"full", OverloadMode::kFull},
  };

  // -- scenario 1: the Fig. 6 millibottleneck ---------------------------------
  std::cout << "\nscenario 1: Fig. 6 pdflush millibottleneck (4A/4T/1M)\n";
  std::vector<Cell> mb;
  for (const auto& [label, mode] : modes)
    mb.push_back(run_cell(opt, label, overload_config(opt, mode, true)));
  print_cells(mb);

  // -- scenario 2: flash crowd on top of the millibottleneck ------------------
  std::cout << "\nscenario 2: flash crowd (6x bursty arrivals + "
               "millibottleneck)\n";
  std::vector<Cell> crowd;
  for (const auto& [label, mode] : {modes[0], modes[3]}) {
    ExperimentConfig cfg = overload_config(opt, mode, true);
    cfg.bursty_workload = true;
    cfg.burst_multiplier = 6.0;
    cfg.label += "_flash";
    crowd.push_back(run_cell(opt, label, std::move(cfg)));
  }
  print_cells(crowd);

  // -- scenario 3: quiet regime (overload control must cost nothing) ----------
  std::cout << "\nscenario 3: quiet regime (millibottlenecks off)\n";
  std::vector<Cell> quiet;
  for (const auto& [label, mode] : {modes[0], modes[3]})
    quiet.push_back(run_cell(opt, label, overload_config(opt, mode, false)));
  print_cells(quiet);

  // -- acceptance -------------------------------------------------------------
  const Cell& base = mb.front();
  const Cell& full = mb.back();
  const bool vlrt_better = full.vlrt < base.vlrt;
  const bool tail_better = full.p999_ms < base.p999_ms;
  const double quiet_ratio =
      quiet[0].goodput > 0 ? quiet[1].goodput / quiet[0].goodput : 1.0;
  const bool quiet_ok = quiet_ratio >= 0.95;

  std::cout << "\n";
  paper_vs_measured("full-control VLRT fraction vs baseline",
                    "strictly below",
                    std::to_string(100 * full.vlrt) + "% vs " +
                        std::to_string(100 * base.vlrt) + "%");
  paper_vs_measured("full-control p99.9 vs baseline", "strictly below",
                    std::to_string(full.p999_ms) + " ms vs " +
                        std::to_string(base.p999_ms) + " ms");
  paper_vs_measured("quiet-regime goodput ratio", ">= 0.95",
                    std::to_string(quiet_ratio));
  std::cout << "\nverdict: full overload control "
            << (vlrt_better && tail_better ? "improves" : "does NOT improve")
            << " both VLRT fraction and p99.9 under the millibottleneck, "
            << (quiet_ok ? "and is" : "but is NOT")
            << " free in the quiet regime\n"
            << "(fixed seed => byte-deterministic; --seed N to vary, "
               "--sweep-seeds N --jobs J for mean+-CI, --quick for CI smoke, "
               "--full for paper scale)\n";
  return 0;
}
