// Microbenchmark of the always-on observability hot paths: what one
// record()/push() costs in nanoseconds with the telemetry layer off, on,
// and with the full sink stack (telemetry feed + online detector + tail
// sampler) attached — the number that justifies "always-on". Under
// -DNTIER_OBS_DISABLED the emission macro compiles away entirely and this
// bench reports that instead of timing loops that no longer exist.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>

#include "experiment/report.h"
#include "millib/online_detector.h"
#include "obs/sketch.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

using namespace ntier;
using experiment::BenchOptions;
using obs::EventKind;
using obs::Tier;
using obs::TraceEvent;
using sim::SimTime;

namespace {
#ifndef NTIER_OBS_DISABLED

// Cheap deterministic value stream (no std:: RNG in the timed loop).
std::uint64_t lcg_state = 0x9e3779b97f4a7c15ull;
inline double next_value() {
  lcg_state = lcg_state * 6364136223846793005ull + 1442695040888963407ull;
  return 1.0 + static_cast<double>((lcg_state >> 33) & 0xfff) * 0.5;
}

template <typename Fn>
double ns_per_op(std::uint64_t iters, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) fn(i);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

// The realistic event mix the sinks see: balancer queue deltas, iowait
// samples and client completions, timestamps advancing 10 us per event.
TraceEvent mixed_event(std::uint64_t i) {
  TraceEvent e;
  e.at = SimTime::micros(static_cast<std::int64_t>(i) * 10);
  switch (i % 4) {
    case 0:
      e.kind = EventKind::kGetEndpointAttempt;
      e.tier = Tier::kBalancer;
      e.node = 0;
      e.worker = static_cast<std::int32_t>(i / 4 % 4);
      e.request = i + 1;
      break;
    case 1:
      e.kind = EventKind::kEndpointRelease;
      e.tier = Tier::kBalancer;
      e.node = 0;
      e.worker = static_cast<std::int32_t>(i / 4 % 4);
      e.request = i;
      break;
    case 2:
      e.kind = EventKind::kIoWait;
      e.tier = Tier::kTomcat;
      e.node = static_cast<std::int16_t>(i / 4 % 4);
      e.value = 0.05;
      break;
    default:
      e.kind = EventKind::kClientDone;
      e.tier = Tier::kClient;
      e.request = i;
      e.value = next_value();
      break;
  }
  return e;
}

void row(const std::string& what, double ns) {
  std::cout << "  " << std::left << std::setw(52) << what << std::right
            << std::setw(10) << std::fixed << std::setprecision(1) << ns
            << " ns/op\n";
}

#endif  // NTIER_OBS_DISABLED
}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  std::cout << "==================================================================\n"
            << "Microbench: telemetry hot-path cost (ns per record)\n"
            << "==================================================================\n";

  const std::uint64_t iters = opt.quick ? 400'000 : 4'000'000;
  std::cout << "  (" << iters << " iterations per loop)\n";

#ifdef NTIER_OBS_DISABLED
  // The macro expands to nothing: the per-site cost is exactly zero
  // instructions, there is no loop to time.
  [[maybe_unused]] obs::TraceCollector* none = nullptr;
  NTIER_TRACE_EVENT(none, SimTime{}, EventKind::kClientDone, Tier::kClient, 0,
                    0, 1, 1.0);
  std::cout << "\nverdict: telemetry overhead compiled away "
               "(NTIER_OBS_DISABLED): 0.0 ns/event at every site -- PASS\n";
  if (!opt.json_path.empty()) {
    std::ofstream f(opt.json_path, std::ios::app);
    if (f)
      f << "{\"bench\":\"" << opt.program
        << "\",\"run\":1,\"label\":\"micro_telemetry\",\"obs_disabled\":true,"
           "\"push_sinks_ns\":0,\"push_off_ns\":0}\n";
  }
  return 0;
#else
  // -- building blocks ---------------------------------------------------------
  obs::DDSketch sketch;
  const double sketch_ns =
      ns_per_op(iters, [&](std::uint64_t) { sketch.record(next_value()); });
  row("DDSketch::record", sketch_ns);

  obs::TelemetryConfig tcfg;
  tcfg.enabled = true;
  obs::TelemetryRegistry registry(tcfg);
  obs::Instrument& ins = registry.instrument("bench.rt_ms");
  const double timeline_ns = ns_per_op(iters, [&](std::uint64_t i) {
    ins.record(SimTime::micros(static_cast<std::int64_t>(i) * 10),
               next_value());
  });
  row("Instrument::record (multi-res timeline + sketch)", timeline_ns);

  // -- the emission path, as instrumentation sites see it ----------------------
  obs::TraceCollector* off = nullptr;
  const double off_ns = ns_per_op(iters, [&](std::uint64_t i) {
    NTIER_TRACE_EVENT(off, SimTime::micros(static_cast<std::int64_t>(i)),
                      EventKind::kClientDone, Tier::kClient, 0, 0, i, 1.0);
  });
  row("NTIER_TRACE_EVENT, tracing off (null collector)", off_ns);

  obs::TraceConfig ring_cfg;
  ring_cfg.capacity = 1u << 16;  // steady-state = overwrite path
  obs::TraceCollector ring(ring_cfg);
  const double ring_ns = ns_per_op(
      iters, [&](std::uint64_t i) { ring.push(mixed_event(i)); });
  row("TraceCollector::push, ring only (--trace)", ring_ns);

  obs::TraceConfig sink_cfg;
  sink_cfg.ring = false;
  obs::TraceCollector bus(sink_cfg);
  obs::TelemetryRegistry reg2(tcfg);
  obs::TelemetryFeed feed(reg2, /*num_tomcats=*/4);
  millib::OnlineDetector detector;
  bus.add_sink(&feed);
  bus.add_sink(&detector);
  const double sinks_ns = ns_per_op(
      iters, [&](std::uint64_t i) { bus.push(mixed_event(i)); });
  row("push + telemetry feed + online detector", sinks_ns);

  obs::TraceConfig tail_cfg;
  tail_cfg.ring = false;
  tail_cfg.tail.enabled = true;
  tail_cfg.tail.horizon = SimTime::millis(50);  // ~5k buffered at 10 us/event
  obs::TraceCollector tail(tail_cfg);
  const double tail_ns = ns_per_op(
      iters, [&](std::uint64_t i) { tail.push(mixed_event(i)); });
  row("push + tail-sampling holding buffer", tail_ns);

  // Keep the collectors' side effects observable.
  if (ring.emitted() + bus.emitted() + tail.emitted() != 3 * iters ||
      sketch.count() != iters)
    std::cout << "  (self-check failed: op counts off)\n";

  // The number the "always-on" claim rests on: full sink stack per event.
  const bool pass = sinks_ns <= 2000.0;
  std::cout << "\nverdict: telemetry overhead " << std::fixed
            << std::setprecision(1) << sinks_ns
            << " ns/event with the full sink stack (" << off_ns
            << " ns/event when off) -- " << (pass ? "PASS" : "FAIL")
            << " (<= 2000 ns/event required)\n";
  if (!opt.json_path.empty()) {
    std::ofstream f(opt.json_path, std::ios::app);
    if (f)
      f << "{\"bench\":\"" << opt.program
        << "\",\"run\":1,\"label\":\"micro_telemetry\",\"obs_disabled\":false,"
           "\"sketch_ns\":" << sketch_ns << ",\"timeline_ns\":" << timeline_ns
        << ",\"push_off_ns\":" << off_ns << ",\"push_ring_ns\":" << ring_ns
        << ",\"push_sinks_ns\":" << sinks_ns << ",\"push_tail_ns\":" << tail_ns
        << "}\n";
  }
  return pass ? 0 : 1;
#endif
}
