// Extension: shard-hotspot millibottlenecks in the replicated KV data tier.
//
// The paper shows server-choice policies (current_load, power-of-d,
// probe-fresh prequal) routing *around* a stalled Tomcat. This bench moves
// the millibottleneck one tier down and one level finer: the bottleneck is
// a *key*, not a server. A Zipf-hot key pins a shard; n-r+1 of that shard's
// preference-list members stall together, so every quorum touching the hot
// shard waits out the episode no matter which Apache, Tomcat, or DbRouter
// the request travelled through. Upstream server choice has no move to
// make — all paths converge on the same quorum.
//
// The flip side is what replication *does* buy: with N=3, R=W=2 one replica
// can fail-stop mid-run and the tier keeps answering (zero failed quorum
// ops), stashing hinted handoffs for the dead member and replaying them on
// recovery. Grid: {current_load, power_of_d, prequal, source_hash} x
// {quiet, hot-shard stalls, replica crash, shard migration}.
#include <algorithm>
#include <cstdint>
#include <string>

#include "bench_common.h"
#include "kv/ring.h"
#include "millib/fault_plan.h"
#include "server/db_router.h"
#include "sim/rng.h"

using namespace ntier;
using namespace ntier::bench;

namespace {

enum class Scenario { kQuiet, kHotShard, kReplicaCrash, kMigration };

const char* name(Scenario s) {
  switch (s) {
    case Scenario::kQuiet: return "quiet";
    case Scenario::kHotShard: return "hot-shard stalls";
    case Scenario::kReplicaCrash: return "replica crash";
    case Scenario::kMigration: return "shard migration";
  }
  return "?";
}

/// The shard the Zipf-hottest key (rank 0) lands on, and its primary —
/// pure functions of the KV config, so the crash scenario can target the
/// worst-case replica without building an Experiment first.
int hot_shard_of(const ExperimentConfig& c) {
  return static_cast<int>(sim::Rng::mix64(0) %
                          static_cast<std::uint64_t>(c.kv.shards));
}

int hot_primary_of(const ExperimentConfig& c) {
  const kv::HashRing ring(c.kv.replicas, c.kv.vnodes);
  return ring.preference_list(static_cast<std::uint64_t>(hot_shard_of(c)),
                              c.kv.n)[0];
}

ExperimentConfig kv_config(const BenchOptions& opt, PolicyKind policy,
                           Scenario sc) {
  ExperimentConfig c = cluster_config(opt, policy, MechanismKind::kNonBlocking,
                                      /*millibottlenecks=*/false);
  c.tracing = false;  // the request log + KvStats carry this bench
  c.db_tier = server::DbTier::kKv;
  c.kv.replicas = 5;  // defaults: 16 shards, N=3, R=W=2
  c.workload.key_space = 10'000;
  c.workload.zipf_s = 1.1;  // rank-0 key draws a fat share of all traffic
  c.label = std::string(name(sc)) + "/" + lb::to_string(policy);
  switch (sc) {
    case Scenario::kQuiet:
      break;
    case Scenario::kHotShard: {
      // Stall n-r+1 members of the hot key's shard together (the experiment
      // places the injectors); episodes must outlast the 1 s VLRT threshold,
      // so override the default 80 ms gc-pause profile.
      c.kv_millibottlenecks = true;
      c.injector.period = SimTime::seconds(5);
      c.injector.duration = SimTime::millis(1500);
      c.injector.severity = 1.0;
      c.injector.initial_offset = SimTime::seconds(4);
      break;
    }
    case Scenario::kReplicaCrash: {
      // Fail-stop the hot shard's primary for the middle third: the worst
      // single-replica loss the quorum must mask.
      millib::FaultSpec crash;
      crash.kind = millib::FaultKind::kReplicaCrash;
      crash.worker = hot_primary_of(c);
      crash.start = c.duration / 3;
      crash.duration = c.duration / 3;
      c.fault_plan = millib::FaultPlan::single(crash);
      break;
    }
    case Scenario::kMigration: {
      // Rebalance the hot shard mid-run: chunked copy CPU on source and
      // destination plus a write-shedding handover window.
      millib::FaultSpec mig;
      mig.kind = millib::FaultKind::kShardMigration;
      mig.worker = hot_shard_of(c);
      mig.start = c.duration / 3;
      mig.duration = c.duration / 3;
      mig.severity = 1.0;
      c.fault_plan = millib::FaultPlan::single(mig);
      break;
    }
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Ext", "shard-hotspot millibottlenecks & quorum failover in the KV tier");

  const PolicyKind policies[] = {PolicyKind::kCurrentLoad,
                                 PolicyKind::kPowerOfD, PolicyKind::kPrequal,
                                 PolicyKind::kSourceHash};
  const Scenario scenarios[] = {Scenario::kQuiet, Scenario::kHotShard,
                                Scenario::kReplicaCrash, Scenario::kMigration};

  std::cout << "\n  KV tier: 5 replicas, 16 shards, N=3 R=2 W=2; Zipf(s=1.1) "
               "keys over 10000\n";
  if (opt.sweep_seeds > 1)
    std::cout << "  (each row: " << opt.sweep_seeds
              << "-seed sweep, mean+-95% CI, " << opt.jobs << " jobs)\n";

  std::uint64_t hot_vlrt_min = UINT64_MAX;       // across policies, hot-shard
  std::uint64_t quiet_vlrt_max = 0;              // across policies, quiet
  std::uint64_t crash_quorum_failed_total = 0;   // across policies, crash
  std::uint64_t crash_hints_replayed_min = UINT64_MAX;
  std::uint64_t crash_hints_pending_max = 0;

  for (const Scenario sc : scenarios) {
    std::cout << "\n-- scenario: " << name(sc) << "\n";
    experiment::print_table1_header(std::cout);
    std::vector<std::string> kv_lines;
    for (const PolicyKind policy : policies) {
      ExperimentConfig cfg = kv_config(opt, policy, sc);
      const std::string row_label =
          std::string(lb::to_string(policy)) + " + non-blocking";
      if (opt.sweep_seeds > 1) {
        const auto agg = run_sweep(opt, std::move(cfg), /*announce=*/false);
        print_sweep_row(std::cout, row_label, agg);
        const auto vlrt = static_cast<std::uint64_t>(
            agg.vlrt_fraction.mean * agg.completed.mean + 0.5);
        if (sc == Scenario::kHotShard) hot_vlrt_min = std::min(hot_vlrt_min, vlrt);
        if (sc == Scenario::kQuiet) quiet_vlrt_max = std::max(quiet_vlrt_max, vlrt);
        if (sc == Scenario::kReplicaCrash) {
          crash_quorum_failed_total += static_cast<std::uint64_t>(
              agg.kv_quorum_failed.mean + 0.5);
          // per-run hint detail is a single-run artifact; the aggregated
          // kv_quorum_failed carries the sweep verdict
          crash_hints_replayed_min = 1;
        }
        continue;
      }
      auto e = run_experiment(opt, std::move(cfg), /*announce=*/false);
      std::cout << e->log().summary_row(row_label)
                << "  vlrt_n=" << e->log().vlrt_count() << "\n";

      const kv::KvStats& ks = e->kv_tier()->stats();
      {
        std::ostringstream os;
        os << "  " << std::left << std::setw(28) << row_label << std::right
           << std::fixed << std::setprecision(1) << ks.quorum_reads << " qr / "
           << ks.quorum_writes << " qw, mean wait "
           << ks.mean_quorum_wait_ms() << " ms, degraded "
           << ks.degraded_wait_ms << " ms, failed "
           << (ks.quorum_failed_reads + ks.quorum_failed_writes)
           << ", hints " << ks.hints_created << "/" << ks.hints_replayed
           << " created/replayed, dropped " << ks.handoff_dropped
           << ", mig-shed " << ks.migration_shed << ", repairs "
           << ks.read_repairs;
        kv_lines.push_back(os.str());
      }

      const std::uint64_t vlrt = e->log().vlrt_count();
      if (sc == Scenario::kHotShard) hot_vlrt_min = std::min(hot_vlrt_min, vlrt);
      if (sc == Scenario::kQuiet) quiet_vlrt_max = std::max(quiet_vlrt_max, vlrt);
      if (sc == Scenario::kReplicaCrash) {
        crash_quorum_failed_total +=
            ks.quorum_failed_reads + ks.quorum_failed_writes;
        crash_hints_replayed_min =
            std::min(crash_hints_replayed_min, ks.hints_replayed);
        crash_hints_pending_max =
            std::max(crash_hints_pending_max, ks.hints_pending());
      }
    }
    if (!kv_lines.empty()) {
      std::cout << "  kv tier:\n";
      for (const auto& l : kv_lines) std::cout << "  " << l << "\n";
    }
  }

  const bool hot_ok = hot_vlrt_min != UINT64_MAX && hot_vlrt_min > 0;
  const bool crash_ok = crash_quorum_failed_total == 0 &&
                        crash_hints_replayed_min != UINT64_MAX &&
                        crash_hints_replayed_min > 0 &&
                        crash_hints_pending_max == 0;

  std::cout << "\n";
  paper_vs_measured("hot-shard VLRTs under best policy",
                    "> 0 (key-level, unroutable)",
                    std::to_string(hot_vlrt_min) + " (quiet max " +
                        std::to_string(quiet_vlrt_max) + ")");
  paper_vs_measured("failed quorum ops, primary crashed",
                    "0 (N=3, R=W=2 masks it)",
                    std::to_string(crash_quorum_failed_total));
  std::cout << "\nverdict: server-choice policies "
            << (hot_ok ? "cannot eliminate" : "ELIMINATED (unexpected)")
            << " hot-shard VLRTs (min across policies "
            << (hot_vlrt_min == UINT64_MAX ? 0 : hot_vlrt_min) << ")\n"
            << "verdict: quorum failover "
            << (crash_ok ? "masked" : "FAILED to mask")
            << " the replica crash (0 failed quorum ops, hints replayed, "
               "none pending)\n"
            << "(fixed seed => byte-deterministic; run with --seed N to vary,"
               " --sweep-seeds N --jobs J for mean+-CI, --full for paper scale)\n";
  return hot_ok && crash_ok ? 0 : 1;
}
