// Figure 7 (a-c): the same instability under the total_traffic policy —
// queue peak + transient CPU saturation on the stalled Tomcat, and the
// workload-distribution funnel until the millibottleneck resolves.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Figure 7", "VLRT amplification by total_traffic instability");

  auto e = run_experiment(opt,
      cluster_config(opt, PolicyKind::kTotalTraffic, MechanismKind::kBlocking));
  const auto w = e->config().metric_window;
  const auto windows = e->num_metric_windows();

  int tomcat = 0;
  sim::SimTime start, end;
  if (!first_flush(*e, tomcat, start, end)) {
    std::cout << "no millibottleneck observed — nothing to plot\n";
    return 1;
  }
  std::cout << "\nzooming on the millibottleneck on tomcat" << tomcat + 1
            << " at " << start.to_string() << ".." << end.to_string() << "\n\n";
  const auto zoom0 = start - sim::SimTime::millis(400);
  const auto zoom1 = end + sim::SimTime::millis(800);

  const auto vlrt = experiment::slice(
      experiment::series_count(e->log().vlrt_series(), windows), w, zoom0, zoom1);
  const auto cpu = experiment::slice(
      experiment::series_avg(e->tomcat_cpu_series(tomcat), windows), w, zoom0, zoom1);
  const auto queue = experiment::slice(e->tomcat_committed_series(tomcat), w,
                                       zoom0, zoom1);

  experiment::print_panel(std::cout, "(a) VLRT / 50ms (zoom)", vlrt);
  experiment::print_panel(std::cout, "(b) tomcat CPU util (zoom)", cpu);
  experiment::print_panel(std::cout, "(b) tomcat committed queue", queue);
  std::cout << "\n(c) workload distribution:\n";
  print_distribution(*e, zoom0, zoom1, sim::SimTime::millis(100), tomcat);

  std::cout << "\n";
  paper_vs_measured("requests routed to the stalled candidate",
                    "all, until the millibottleneck resolves",
                    "committed peak " + std::to_string(experiment::max_of(queue)));
  paper_vs_measured("VLRT fraction (whole run)", "6.89 %",
                    std::to_string(100 * e->log().vlrt_fraction()) + " %");
  maybe_csv(opt, "fig07_zoom.csv", w, {"vlrt", "cpu", "committed"},
            {vlrt, cpu, queue});
  return 0;
}
