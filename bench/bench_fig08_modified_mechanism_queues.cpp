// Figure 8: per-tier queued requests under total_request with the modified
// (non-blocking) get_endpoint. Expected shape: Apache- and Tomcat-tier queue
// peaks far below the stock mechanism's — the paper reports a 75 % reduction
// in queued requests.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Figure 8",
         "queues under total_request + modified get_endpoint (vs stock)");

  auto stock = run_experiment(opt,
      cluster_config(opt, PolicyKind::kTotalRequest, MechanismKind::kBlocking));
  auto fixed = run_experiment(opt, cluster_config(opt, PolicyKind::kTotalRequest,
                                             MechanismKind::kNonBlocking));

  const auto w = fixed->config().metric_window;
  std::cout << "\n[stock blocking get_endpoint]\n";
  experiment::print_panel(std::cout, "apache tier queue", stock->apache_tier_queue());
  experiment::print_panel(std::cout, "tomcat tier queue", stock->tomcat_tier_queue());
  experiment::print_panel(std::cout, "mysql tier queue", stock->mysql_tier_queue());
  std::cout << "\n[modified get_endpoint]\n";
  experiment::print_panel(std::cout, "apache tier queue", fixed->apache_tier_queue());
  experiment::print_panel(std::cout, "tomcat tier queue", fixed->tomcat_tier_queue());
  experiment::print_panel(std::cout, "mysql tier queue", fixed->mysql_tier_queue());

  const double stock_peak = experiment::max_of(stock->apache_tier_queue()) +
                            experiment::max_of(stock->tomcat_tier_queue());
  const double fixed_peak = experiment::max_of(fixed->apache_tier_queue()) +
                            experiment::max_of(fixed->tomcat_tier_queue());
  std::cout << "\n";
  paper_vs_measured("queued-request reduction", "75 %",
                    std::to_string(100.0 * (1.0 - fixed_peak / stock_peak)) +
                        " % (peak sum)");
  maybe_csv(opt, "fig08_queues.csv", w,
            {"stock_apache", "stock_tomcat", "fixed_apache", "fixed_tomcat"},
            {stock->apache_tier_queue(), stock->tomcat_tier_queue(),
             fixed->apache_tier_queue(), fixed->tomcat_tier_queue()});
  return 0;
}
