// Figure 6 (a-c): the load-balancer instability under total_request.
// (a) VLRT counts per 50 ms window, (b) the stalled Tomcat's transient CPU
// saturation coinciding with its queue peak, (c) Apache1's workload
// distribution across the four phases: even -> funnel into the stalled
// Tomcat -> recovery compensation -> even again.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Figure 6", "VLRT amplification by total_request instability");

  auto e = run_experiment(opt,
      cluster_config(opt, PolicyKind::kTotalRequest, MechanismKind::kBlocking));
  const auto w = e->config().metric_window;
  const auto windows = e->num_metric_windows();

  int tomcat = 0;
  sim::SimTime start, end;
  if (!first_flush(*e, tomcat, start, end)) {
    std::cout << "no millibottleneck observed — nothing to plot\n";
    return 1;
  }
  std::cout << "\nzooming on the millibottleneck on tomcat" << tomcat + 1
            << " at " << start.to_string() << ".." << end.to_string() << "\n\n";

  const auto zoom0 = start - sim::SimTime::millis(400);
  const auto zoom1 = end + sim::SimTime::millis(800);

  const auto vlrt = experiment::slice(
      experiment::series_count(e->log().vlrt_series(), windows), w, zoom0, zoom1);
  const auto cpu = experiment::slice(
      experiment::series_avg(e->tomcat_cpu_series(tomcat), windows), w, zoom0, zoom1);
  const auto queue = experiment::slice(e->tomcat_committed_series(tomcat), w,
                                       zoom0, zoom1);

  experiment::print_panel(std::cout, "(a) VLRT / 50ms (zoom)", vlrt);
  experiment::print_panel(std::cout, "(b) tomcat CPU util (zoom)", cpu);
  experiment::print_panel(std::cout, "(b) tomcat committed queue", queue);
  std::cout << "\n(c) four phases of the instability:\n";
  print_distribution(*e, zoom0, zoom1, sim::SimTime::millis(100), tomcat);

  std::cout << "\n";
  paper_vs_measured("(a) VLRT cluster follows the stall", "yes",
                    experiment::sum_of(vlrt) > 0 ? "yes" : "no");
  paper_vs_measured("(b) CPU saturation coincides with queue peak", "yes",
                    experiment::max_of(cpu) > 0.9 ? "yes" : "no");
  paper_vs_measured("(c) requests funnel into the stalled Tomcat",
                    "all during phase 2",
                    "committed peak " +
                        std::to_string(experiment::max_of(queue)));
  maybe_csv(opt, "fig06_zoom.csv", w, {"vlrt", "cpu", "committed"},
            {vlrt, cpu, queue});
  return 0;
}
