// Figure 9 (a-b): with the modified get_endpoint, a millibottleneck still
// produces a (much smaller) queue spike on the affected Tomcat, but Apache1's
// workload distribution shows requests routed to the healthy Tomcats for the
// whole stall.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Figure 9",
         "workload distribution under total_request + modified get_endpoint");

  auto e = run_experiment(opt, cluster_config(opt, PolicyKind::kTotalRequest,
                                         MechanismKind::kNonBlocking));
  const auto w = e->config().metric_window;

  int tomcat = 0;
  sim::SimTime start, end;
  if (!first_flush(*e, tomcat, start, end)) {
    std::cout << "no millibottleneck observed — nothing to plot\n";
    return 1;
  }
  std::cout << "\nmillibottleneck on tomcat" << tomcat + 1 << " at "
            << start.to_string() << ".." << end.to_string() << "\n\n";
  const auto zoom0 = start - sim::SimTime::millis(300);
  const auto zoom1 = end + sim::SimTime::millis(500);

  std::cout << "(a) per-Tomcat committed queue (zoom):\n";
  std::vector<std::vector<double>> cols;
  for (int t = 0; t < e->num_tomcats(); ++t) {
    const auto q =
        experiment::slice(e->tomcat_committed_series(t), w, zoom0, zoom1);
    experiment::print_panel(std::cout, "tomcat" + std::to_string(t + 1), q);
    cols.push_back(q);
  }
  std::cout << "\n(b) ";
  print_distribution(*e, zoom0, zoom1, sim::SimTime::millis(100), tomcat);

  const double stalled_peak = experiment::max_of(
      experiment::slice(e->tomcat_committed_series(tomcat), w, start, end + w));
  std::cout << "\n";
  paper_vs_measured("stalled Tomcat queue peak",
                    "~200 (1/4 of the stock policy's)",
                    std::to_string(stalled_peak));
  paper_vs_measured("requests during the stall",
                    "all routed to Tomcats without the millibottleneck",
                    "see distribution table");
  maybe_csv(opt, "fig09_committed.csv", w,
            {"tomcat1", "tomcat2", "tomcat3", "tomcat4"}, cols);
  return 0;
}
