// Figure 12: per-tier queued requests under the current_load policy.
// Expected shape: no huge Tomcat-tier spikes despite millibottlenecks (the
// policy diverts traffic within a handful of requests), and fewer/lower
// Apache-tier spikes because the queue-amplification push-back wave from the
// Tomcat tier disappears.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Figure 12", "queues under the current_load policy");

  auto stock = run_experiment(opt,
      cluster_config(opt, PolicyKind::kTotalRequest, MechanismKind::kBlocking));
  auto remedy = run_experiment(opt,
      cluster_config(opt, PolicyKind::kCurrentLoad, MechanismKind::kBlocking));

  const auto w = remedy->config().metric_window;
  std::cout << "\n[total_request, for contrast]\n";
  experiment::print_panel(std::cout, "apache tier queue", stock->apache_tier_queue());
  experiment::print_panel(std::cout, "tomcat tier queue", stock->tomcat_tier_queue());
  std::cout << "\n[current_load]\n";
  experiment::print_panel(std::cout, "apache tier queue", remedy->apache_tier_queue());
  experiment::print_panel(std::cout, "tomcat tier queue", remedy->tomcat_tier_queue());
  experiment::print_panel(std::cout, "mysql tier queue", remedy->mysql_tier_queue());

  std::cout << "\n";
  paper_vs_measured("huge Tomcat-tier spikes", "absent under current_load",
                    "peak " +
                        std::to_string(experiment::max_of(remedy->tomcat_tier_queue())) +
                        " vs stock " +
                        std::to_string(experiment::max_of(stock->tomcat_tier_queue())));
  paper_vs_measured("Apache-tier spikes", "fewer than stock policies",
                    "peak " +
                        std::to_string(experiment::max_of(remedy->apache_tier_queue())) +
                        " vs stock " +
                        std::to_string(experiment::max_of(stock->apache_tier_queue())));
  maybe_csv(opt, "fig12_queues.csv", w,
            {"apache", "tomcat", "mysql"},
            {remedy->apache_tier_queue(), remedy->tomcat_tier_queue(),
             remedy->mysql_tier_queue()});
  return 0;
}
