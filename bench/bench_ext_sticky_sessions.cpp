// Extension: sticky sessions vs the remedies. mod_jk deployments routinely
// pin sessions to a jvmRoute; a pinned request *must* go to its owner even
// mid-millibottleneck, re-introducing exactly the queueing the current_load
// policy avoids. This quantifies the cost of stickiness under
// millibottlenecks, with and without sticky_session_force.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Extension: sticky sessions",
         "session pinning vs the current_load remedy under millibottlenecks");

  struct Variant {
    const char* label;
    bool sticky;
    bool force;
  };
  const Variant variants[] = {
      {"current_load, no sessions", false, false},
      {"current_load + sticky (fallback allowed)", true, false},
      {"current_load + sticky_session_force", true, true},
  };

  std::cout << "\n";
  experiment::print_table1_header(std::cout);
  double base_queue = 0;
  for (const auto& v : variants) {
    ExperimentConfig cfg = cluster_config(opt, PolicyKind::kCurrentLoad,
                                          MechanismKind::kNonBlocking);
    cfg.sticky_sessions = v.sticky;
    cfg.balancer.sticky_force = v.force;
    auto e = run_experiment(opt, std::move(cfg), false);
    std::cout << e->log().summary_row(v.label) << "\n";
    const double peak = experiment::max_of(e->tomcat_tier_queue());
    if (!v.sticky) base_queue = peak;
    std::cout << "    tomcat-tier queue peak " << peak << ", balancer 503s "
              << e->clients().failed() << "\n";
    if (v.sticky && v.force)
      paper_vs_measured("forced stickiness re-inflates the queue",
                        "(extension prediction)",
                        std::to_string(peak / (base_queue > 0 ? base_queue : 1)) +
                            "x the route-free peak");
  }
  std::cout << "\n(fallback-style stickiness costs little — a stalled owner is\n"
               " simply skipped — while sticky_session_force turns every\n"
               " millibottleneck into queueing or 503s for pinned sessions)\n";
  return 0;
}
