// Extension: how the instability scales with the Tomcat-tier width. More
// Tomcats mean (a) more frequent millibottlenecks somewhere in the tier but
// (b) a smaller committed share per stall and more healthy capacity to
// absorb the funnel's aftermath.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Extension: tier scale-out",
         "instability vs number of Tomcats (constant offered load)");

  std::cout << "\n";
  experiment::print_table1_header(std::cout);
  for (const int tomcats : {2, 4, 8}) {
    for (const auto& [policy, mech] :
         {std::pair{PolicyKind::kTotalRequest, MechanismKind::kBlocking},
          std::pair{PolicyKind::kCurrentLoad, MechanismKind::kNonBlocking}}) {
      ExperimentConfig cfg = cluster_config(opt, policy, mech);
      cfg.num_tomcats = tomcats;
      // Keep per-Tomcat load constant: stagger still spreads the flushes.
      cfg.pdflush_stagger = sim::SimTime::millis(4400 / tomcats);
      cfg.num_clients = cfg.num_clients * tomcats / 4;
      cfg.tracing = false;
      auto e = run_experiment(opt, std::move(cfg), false);
      char label[128];
      std::snprintf(label, sizeof(label), "%dT / %s+%s", tomcats,
                    lb::to_string(policy).c_str(), lb::to_string(mech).c_str());
      std::cout << e->log().summary_row(label) << "\n";
    }
  }
  std::cout << "\n(the stock combination stays unstable at every width — wider\n"
               " tiers stall *more often* somewhere — while the remedy's cost\n"
               " of skipping one stalled server shrinks as 1/N)\n";
  return 0;
}
