// Table I: end-to-end comparison of the six policy/mechanism combinations —
// the paper's headline result. Expected shape: the two stock policies show
// double-digit mean response times and ~5-7 % VLRT; current_load and/or the
// modified get_endpoint cut the mean by an order of magnitude (the paper
// reports 12× / 15×) and VLRT to a fraction of a percent; combining both
// remedies adds nothing further.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Table I", "policy/mechanism comparison under millibottlenecks");

  struct Row {
    const char* label;
    PolicyKind policy;
    MechanismKind mech;
    const char* paper_rt;
    const char* paper_vlrt;
  };
  const Row rows[] = {
      {"Original total_request", PolicyKind::kTotalRequest,
       MechanismKind::kBlocking, "41.00", "5.33%"},
      {"Original total_traffic", PolicyKind::kTotalTraffic,
       MechanismKind::kBlocking, "55.50", "6.89%"},
      {"Current_load", PolicyKind::kCurrentLoad, MechanismKind::kBlocking,
       "3.62", "0.21%"},
      {"Total_request with modified get_endpoint", PolicyKind::kTotalRequest,
       MechanismKind::kNonBlocking, "4.87", "0.55%"},
      {"Total_traffic with modified get_endpoint", PolicyKind::kTotalTraffic,
       MechanismKind::kNonBlocking, "5.87", "0.76%"},
      {"Current_load with modified get_endpoint", PolicyKind::kCurrentLoad,
       MechanismKind::kNonBlocking, "3.60", "0.20%"},
      // Probe-driven extensions (src/probe) — beyond the paper's table, so
      // no reference numbers; see bench_ext_probe_policies for the deep dive.
      {"Power_of_d probing with modified get_endpoint", PolicyKind::kPowerOfD,
       MechanismKind::kNonBlocking, "-", "-"},
      {"Prequal probing with modified get_endpoint", PolicyKind::kPrequal,
       MechanismKind::kNonBlocking, "-", "-"},
  };

  double stock_rt = 0, remedy_rt = 0;
  std::cout << "\n";
  if (opt.sweep_seeds > 1)
    std::cout << "(each row: " << opt.sweep_seeds
              << "-seed sweep, mean+-95% CI, " << opt.jobs << " jobs)\n";
  experiment::print_table1_header(std::cout);
  for (const auto& row : rows) {
    ExperimentConfig cfg = cluster_config(opt, row.policy, row.mech);
    cfg.tracing = false;  // fastest path; Table I needs only the request log
    cfg.label = row.label;
    double mean_rt = 0;
    if (opt.sweep_seeds > 1) {
      const auto agg = run_sweep(opt, std::move(cfg), /*announce=*/false);
      print_sweep_row(std::cout, row.label, agg);
      mean_rt = agg.mean_rt_ms.mean;
    } else {
      auto e = run_experiment(opt, std::move(cfg), /*announce=*/false);
      std::cout << e->log().summary_row(row.label) << "\n";
      mean_rt = e->log().mean_response_ms();
    }
    if (std::string(row.label) == "Original total_request") stock_rt = mean_rt;
    if (std::string(row.label) == "Current_load") remedy_rt = mean_rt;
  }

  std::cout << "\npaper reference (Table I):\n";
  for (const auto& row : rows)
    std::cout << "  " << std::left << std::setw(44) << row.label
              << " avg RT " << std::setw(7) << row.paper_rt << " ms, VLRT "
              << row.paper_vlrt << "\n";

  std::cout << "\n";
  paper_vs_measured("improvement of current_load over total_request", "12x",
                    std::to_string(stock_rt / remedy_rt) + "x");
  std::cout << "\n(run with --full for the paper-scale 70 000-client, 180 s runs)\n";
  return 0;
}
