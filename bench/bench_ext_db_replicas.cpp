// Extension: the paper's conclusion — "Other load balancers in N-tier
// systems can take advantage of our remedies" — applied to the Tomcat→MySQL
// connection layer. Two MySQL replicas, pdflush active on the DB nodes
// (binlog/redo writes as dirty-page fuel), and the DB router run both ways:
// the classic condvar pool + cumulative policy vs. current_load + fail-fast.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Extension: DB-tier balancing",
         "2 MySQL replicas with millibottlenecks; stock vs aware DB router");

  auto base = [&] {
    ExperimentConfig cfg = cluster_config(opt, PolicyKind::kCurrentLoad,
                                          MechanismKind::kNonBlocking,
                                          /*millibottlenecks=*/false);
    cfg.num_mysql = 2;
    cfg.mysql_millibottlenecks = true;
    cfg.mysql.log_bytes_per_query = 1200;
    cfg.db_router.pool_per_replica = 24;  // Table III's 48, split
    cfg.tracing = false;
    return cfg;
  };

  std::cout << "\n";
  experiment::print_table1_header(std::cout);

  auto stock_cfg = base();
  stock_cfg.db_router.policy = PolicyKind::kTotalRequest;
  stock_cfg.db_router.mechanism = MechanismKind::kQueueing;
  auto stock = run_experiment(opt, std::move(stock_cfg), false);
  std::cout << stock->log().summary_row("DB router: total_request + queueing pool")
            << "\n";

  auto aware_cfg = base();
  aware_cfg.db_router.policy = PolicyKind::kCurrentLoad;
  aware_cfg.db_router.mechanism = MechanismKind::kNonBlocking;
  auto aware = run_experiment(opt, std::move(aware_cfg), false);
  std::cout << aware->log().summary_row("DB router: current_load + fail-fast")
            << "\n";

  std::cout << "\nDB-side detail:\n";
  for (auto* e : {stock.get(), aware.get()}) {
    std::uint64_t errors = 0;
    for (int t = 0; t < e->num_tomcats(); ++t)
      errors += e->db_router(t).errors();
    std::cout << "  replicas served " << e->mysql(0).queries_served() << " / "
              << e->mysql(1).queries_served() << " queries, router errors "
              << errors << ", mean RT " << e->log().mean_response_ms()
              << " ms\n";
  }
  paper_vs_measured("remedies transfer to other balancers",
                    "claimed (§VIII)",
                    std::to_string(stock->log().mean_response_ms() /
                                   aware->log().mean_response_ms()) +
                        "x RT improvement");
  return 0;
}
