// Figure 13 (a-b): under current_load a millibottleneck leaves only a small
// queue bump (<40 requests in the paper) on the affected Tomcat, and
// Apache1's workload distribution shows all requests going to the healthy
// Tomcats for the duration of the stall.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Figure 13", "workload distribution under current_load");

  auto e = run_experiment(opt,
      cluster_config(opt, PolicyKind::kCurrentLoad, MechanismKind::kBlocking));
  const auto w = e->config().metric_window;

  int tomcat = 0;
  sim::SimTime start, end;
  if (!first_flush(*e, tomcat, start, end)) {
    std::cout << "no millibottleneck observed — nothing to plot\n";
    return 1;
  }
  std::cout << "\nmillibottleneck on tomcat" << tomcat + 1 << " at "
            << start.to_string() << ".." << end.to_string() << "\n\n";
  const auto zoom0 = start - sim::SimTime::millis(300);
  const auto zoom1 = end + sim::SimTime::millis(500);

  std::cout << "(a) per-Tomcat committed queue (zoom):\n";
  double stalled_peak = 0;
  for (int t = 0; t < e->num_tomcats(); ++t) {
    const auto q =
        experiment::slice(e->tomcat_committed_series(t), w, zoom0, zoom1);
    experiment::print_panel(std::cout, "tomcat" + std::to_string(t + 1), q);
    if (t == tomcat) stalled_peak = experiment::max_of(q);
  }
  std::cout << "\n(b) ";
  print_distribution(*e, zoom0, zoom1, sim::SimTime::millis(100), tomcat);

  std::cout << "\n";
  paper_vs_measured("stalled Tomcat queue bump", "<40 requests",
                    std::to_string(stalled_peak));
  paper_vs_measured("requests during the stall",
                    "all routed to Tomcats without millibottlenecks",
                    "see distribution table");
  return 0;
}
