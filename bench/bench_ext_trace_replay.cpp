// Extension: trace-driven workload replay. One synthetic "production day"
// (diurnal rate curve + flash crowd + Zipf data keys, compressed into the
// bench duration) is generated once, then replayed open-loop against the
// paper's cluster under several regimes:
//
//   1. baseline            total_request+blocking, millibottlenecks off
//   2. vulnerable combo    total_request+blocking, millibottlenecks on
//   3. better combo        current_load+modified,  millibottlenecks on
//   4. overload control    cell 2 + the full deadline/admission/CoDel stack
//   5. chaos               cell 2 + a seeded randomized fault schedule
//
// Because the replay is open-loop, a stalled Tomcat cannot slow the arrival
// process down the way closed-loop clients do — the day keeps coming. The
// bench checks that (a) millibottlenecks reproduce the paper's VLRTs under
// production-shaped traffic, (b) replay is byte-deterministic, and (c) the
// open-loop accounting conserves every arrival in every regime.
#include "bench_common.h"

#include "control/overload.h"
#include "millib/fault_plan.h"
#include "workload/trace.h"
#include "workload/trace_gen.h"

using namespace ntier;
using namespace ntier::bench;

namespace {

void verdict(const std::string& what, bool pass, const std::string& bound) {
  std::cout << "verdict: " << what << " -- " << (pass ? "PASS" : "FAIL")
            << " (" << bound << ")\n";
}

struct Cell {
  std::string label;
  experiment::RunSummary summary;
  std::uint64_t issued = 0;
  std::uint64_t settled = 0;   // ok + dropped + failed + abandoned
  std::uint64_t in_flight = 0;
};

Cell run_cell(const BenchOptions& opt, ExperimentConfig cfg) {
  Cell cell;
  cell.label = cfg.label;
  auto e = run_experiment(opt, std::move(cfg));
  cell.summary = experiment::summarize(*e);
  const auto* rp = e->replayer();
  cell.issued = rp->issued();
  cell.settled =
      rp->completed_ok() + rp->dropped() + rp->failed() + rp->abandoned();
  cell.in_flight = rp->in_flight();
  return cell;
}

void print_row(const Cell& c) {
  const auto& s = c.summary;
  std::cout << "  " << std::left << std::setw(26) << c.label << std::right
            << std::setw(10) << s.completed << std::setw(9) << s.dropped
            << std::setw(10) << s.replay_abandoned << std::setw(10)
            << std::fixed << std::setprecision(1) << s.mean_rt_ms
            << std::setw(10) << s.p99_ms << std::setw(11) << s.p999_ms
            << std::setw(9) << std::setprecision(2) << 100.0 * s.vlrt_fraction
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Extension",
         "trace-driven replay: one production-shaped day, five regimes");

  bool all_pass = true;

  // -- synthesize the day -----------------------------------------------------
  // Calibrated to the scaled(0.1) cluster (per-Tomcat capacity ~29k req/s
  // across 4/8/1 tiers serving ~10k rps closed-loop): the diurnal peak plus
  // the flash crowd reaches ~19k rps, loud but under nominal capacity, so
  // every VLRT in cell 2 is the millibottlenecks' doing, not raw overload.
  const ExperimentConfig proto =
      cluster_config(opt, PolicyKind::kTotalRequest, MechanismKind::kBlocking);
  const double day_s = proto.duration.to_seconds();
  workload::TraceGenSpec spec;
  spec.seed = opt.seed;
  spec.duration_s = day_s;
  spec.base_rps = 9'000;
  spec.diurnal_amplitude = 0.35;       // trough ~5.9k, peak ~12.2k rps
  spec.diurnal_period_s = 0;           // one compressed day over the run
  spec.flash_at_s = 0.55 * day_s;      // flash crowd rides the peak
  spec.flash_duration_s = 0.15 * day_s;
  spec.flash_multiplier = 1.6;         // peak * flash ~19.4k rps
  spec.session_mean = 5;
  spec.think_mean_s = 0.5;
  spec.abandon_p = 0.05;

  const workload::TraceGenerator gen(spec);
  const workload::RubbosWorkload wl(proto.workload);
  auto trace = std::make_shared<const workload::ArrivalTrace>(gen.generate(wl));
  std::cout << "\nsynthetic day: " << spec.to_string() << "\n  " << trace->size()
            << " arrivals over " << day_s << " s ("
            << std::fixed << std::setprecision(0)
            << static_cast<double>(trace->size()) / day_s
            << " rps mean), rich schema (Zipf keys + priorities)\n";

  // Per-second offered-rate curve (the shape the cells all share).
  {
    std::vector<double> rate;
    for (double t = 0; t < day_s; t += 1.0) rate.push_back(gen.rate_at(t));
    maybe_csv(opt, "ext_trace_replay_rate.csv", SimTime::seconds(1),
              {"offered_rps"}, {rate});
  }

  auto replay_config = [&](const std::string& label, PolicyKind policy,
                           MechanismKind mech, bool millibottlenecks) {
    ExperimentConfig c = cluster_config(opt, policy, mech, millibottlenecks);
    c.label = label;
    c.replay_trace = trace;
    c.replay_client_timeout = SimTime::seconds(8);
    return c;
  };

  // -- the five regimes -------------------------------------------------------
  std::vector<Cell> cells;
  cells.push_back(run_cell(opt, replay_config("replay_baseline",
                                              PolicyKind::kTotalRequest,
                                              MechanismKind::kBlocking,
                                              /*millibottlenecks=*/false)));
  ExperimentConfig vulnerable =
      replay_config("replay_total_request", PolicyKind::kTotalRequest,
                    MechanismKind::kBlocking, true);
  cells.push_back(run_cell(opt, vulnerable));
  cells.push_back(run_cell(opt, replay_config("replay_current_load",
                                              PolicyKind::kCurrentLoad,
                                              MechanismKind::kNonBlocking,
                                              true)));
  {
    ExperimentConfig c =
        replay_config("replay_overload_full", PolicyKind::kTotalRequest,
                      MechanismKind::kBlocking, true);
    c.overload = control::make_overload(control::OverloadMode::kFull,
                                        SimTime::seconds(1));
    c.overload.stamp_deadlines = true;
    cells.push_back(run_cell(opt, c));
  }
  {
    ExperimentConfig c =
        replay_config("replay_chaos", PolicyKind::kTotalRequest,
                      MechanismKind::kBlocking, true);
    millib::FaultPlanConfig fc;
    fc.initial_offset = std::max(c.warmup, SimTime::seconds(1));
    fc.horizon = std::max(fc.initial_offset + SimTime::seconds(1),
                          c.duration - fc.max_duration);
    c.fault_plan.merge(
        millib::FaultPlan::randomized(/*seed=*/1, fc, c.num_tomcats));
    cells.push_back(run_cell(opt, c));
  }

  std::cout << "\nsame recorded day, five regimes (post-warmup requests)\n\n  "
            << std::left << std::setw(26) << "regime" << std::right
            << std::setw(10) << "complete" << std::setw(9) << "dropped"
            << std::setw(10) << "abandoned" << std::setw(10) << "mean_ms"
            << std::setw(10) << "p99_ms" << std::setw(11) << "p99.9_ms"
            << std::setw(9) << "vlrt%" << "\n";
  for (const auto& c : cells) print_row(c);

  // -- verdict 1: millibottlenecks reproduce VLRTs on production traffic ------
  const double base_vlrt = cells[0].summary.vlrt_fraction;
  const double milli_vlrt = cells[1].summary.vlrt_fraction;
  const bool vlrt_ok = milli_vlrt > 0 && milli_vlrt >= 5.0 * base_vlrt;
  all_pass &= vlrt_ok;

  // -- verdict 2: replay is byte-deterministic --------------------------------
  // The identical config again; the whole summary (counters, histograms,
  // percentiles) must match byte for byte.
  const std::string once = cells[1].summary.to_json_string();
  const std::string twice =
      experiment::summarize(*run_experiment(opt, vulnerable, false))
          .to_json_string();
  const bool determinism_ok = once == twice;
  all_pass &= determinism_ok;

  // -- verdict 3: open-loop conservation in every regime ----------------------
  bool conservation_ok = true;
  for (const auto& c : cells) {
    const bool issued_ok = c.issued == trace->size();
    const bool settled_ok = c.settled + c.in_flight == c.issued;
    if (!issued_ok || !settled_ok) {
      conservation_ok = false;
      std::cout << "  [conservation] " << c.label << ": issued " << c.issued
                << "/" << trace->size() << ", settled " << c.settled
                << " + in-flight " << c.in_flight << "\n";
    }
  }
  all_pass &= conservation_ok;

  std::cout << "\n";
  {
    std::ostringstream s;
    s << "millibottleneck vlrt fraction " << std::fixed << std::setprecision(2)
      << 100.0 * milli_vlrt << "% vs baseline " << 100.0 * base_vlrt << "%";
    verdict(s.str(), vlrt_ok, ">0 and >=5x baseline required");
  }
  verdict("identical replay configs produce byte-identical summaries",
          determinism_ok, "exact match required");
  {
    std::ostringstream s;
    s << "every arrival issued and accounted for in all " << cells.size()
      << " regimes";
    verdict(s.str(), conservation_ok,
            "issued == arrivals, ok+dropped+failed+abandoned+in-flight == "
            "issued");
  }
  return all_pass ? 0 : 1;
}
