// Figure 5: average CPU usage among component servers under total_request
// and total_traffic. Expected shape: every server at moderate utilisation —
// the paper's point is that VLRT requests appear even though the highest
// average CPU is only 45 %.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Figure 5", "average CPU usage per server (both stock policies)");

  for (const auto policy :
       {PolicyKind::kTotalRequest, PolicyKind::kTotalTraffic}) {
    auto e = run_experiment(opt,
        cluster_config(opt, policy, MechanismKind::kBlocking));
    std::cout << "\n[" << lb::to_string(policy) << "]\n  server        mean CPU%\n";
    double peak = 0;
    for (int i = 0; i < e->num_apaches(); ++i) {
      const double u = 100 * e->mean_cpu(e->apache_cpu_series(i));
      peak = std::max(peak, u);
      std::cout << "  apache" << i + 1 << "        " << std::fixed
                << std::setprecision(1) << u << "\n";
    }
    for (int i = 0; i < e->num_tomcats(); ++i) {
      const double u = 100 * e->mean_cpu(e->tomcat_cpu_series(i));
      peak = std::max(peak, u);
      std::cout << "  tomcat" << i + 1 << "        " << std::fixed
                << std::setprecision(1) << u << "\n";
    }
    const double mysql = 100 * e->mean_cpu(e->mysql_cpu_series());
    peak = std::max(peak, mysql);
    std::cout << "  mysql          " << std::fixed << std::setprecision(1)
              << mysql << "\n";
    paper_vs_measured("highest average CPU among servers", "45 %",
                      std::to_string(peak) + " %");
  }
  return 0;
}
