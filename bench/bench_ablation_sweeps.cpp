// Ablation sweeps over the design parameters DESIGN.md calls out. Each
// sweep varies one knob of the stock (total_request + blocking) system under
// millibottlenecks and reports mean RT / %VLRT, showing *why* each default
// matters:
//   * cache_acquire_timeout — how long workers park inside get_endpoint
//   * JK_SLEEP_DEF          — the poll interval of Algorithm 1
//   * endpoint pool size    — when the funnel starts to block workers
//   * busy_recovery         — how long the remedy sidelines a Busy worker
//   * RTO schedule          — where the VLRT clusters sit
//   * flush interval        — millibottleneck frequency vs severity
//   * writeback bandwidth   — millibottleneck duration
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

namespace {

sim::SimTime duration_for(const BenchOptions& opt) {
  return opt.full ? sim::SimTime::seconds(60) : sim::SimTime::seconds(15);
}

void report(const std::string& setting, Experiment& e) {
  std::cout << "  " << std::left << std::setw(32) << setting << std::right
            << std::setw(10) << e.log().completed() << std::setw(11)
            << std::fixed << std::setprecision(2) << e.log().mean_response_ms()
            << std::setw(10) << std::setprecision(2)
            << 100 * e.log().vlrt_fraction() << "%" << std::setw(10)
            << e.clients().connection_drops() << std::setw(10)
            << e.clients().failed() << "\n";
}

void sweep_header(const std::string& title) {
  std::cout << "\n--- " << title << " ---\n  " << std::left << std::setw(32)
            << "setting" << std::right << std::setw(10) << "#req"
            << std::setw(11) << "avgRT(ms)" << std::setw(11) << "%VLRT"
            << std::setw(10) << "drops" << std::setw(10) << "503s" << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Ablations", "sensitivity of the instability to each design knob");

  auto base = [&] {
    auto c = cluster_config(opt, PolicyKind::kTotalRequest,
                            MechanismKind::kBlocking);
    c.duration = duration_for(opt);
    c.tracing = false;
    return c;
  };

  sweep_header("cache_acquire_timeout (Algorithm 1 park time)");
  for (const auto t : {50, 100, 300, 900}) {
    auto c = base();
    c.balancer.blocking.acquire_timeout = sim::SimTime::millis(t);
    auto e = run_experiment(opt, std::move(c), false);
    report(std::to_string(t) + " ms", *e);
  }

  sweep_header("JK_SLEEP_DEF (poll interval)");
  for (const auto t : {10, 50, 100}) {
    auto c = base();
    c.balancer.blocking.sleep_interval = sim::SimTime::millis(t);
    auto e = run_experiment(opt, std::move(c), false);
    report(std::to_string(t) + " ms", *e);
  }

  sweep_header("endpoint pool size (per Apache-Tomcat pair)");
  for (const auto n : {25, 50, 100, 200}) {
    auto c = base();
    c.balancer.endpoint_pool_size = static_cast<std::size_t>(n);
    auto e = run_experiment(opt, std::move(c), false);
    report(std::to_string(n) + " endpoints", *e);
  }

  sweep_header("busy_recovery under the modified get_endpoint");
  for (const auto t : {10, 100, 500, 2000}) {
    auto c = base();
    c.mechanism = MechanismKind::kNonBlocking;
    c.balancer.busy_recovery = sim::SimTime::millis(t);
    auto e = run_experiment(opt, std::move(c), false);
    report(std::to_string(t) + " ms", *e);
  }

  sweep_header("client RTO schedule (VLRT cluster positions)");
  {
    auto c = base();
    c.retransmit = net::RetransmitSchedule::constant(sim::SimTime::seconds(1), 5);
    auto e = run_experiment(opt, std::move(c), false);
    report("constant 1s (paper clusters)", *e);
    std::cout << "      p99.9 = " << e->log().percentile_ms(99.9) << " ms\n";
  }
  {
    auto c = base();
    c.retransmit = net::RetransmitSchedule::exponential(sim::SimTime::seconds(1), 5);
    auto e = run_experiment(opt, std::move(c), false);
    report("exponential 1s,2s,4s,...", *e);
    std::cout << "      p99.9 = " << e->log().percentile_ms(99.9) << " ms\n";
  }
  {
    auto c = base();
    c.retransmit = net::RetransmitSchedule::constant(sim::SimTime::seconds(3), 5);
    auto e = run_experiment(opt, std::move(c), false);
    report("constant 3s (classic BSD)", *e);
    std::cout << "      p99.9 = " << e->log().percentile_ms(99.9) << " ms\n";
  }

  sweep_header("pdflush interval (millibottleneck cadence)");
  for (const auto t : {2500, 5000, 10000}) {
    auto c = base();
    c.tomcat_pdflush.flush_interval = sim::SimTime::millis(t);
    auto e = run_experiment(opt, std::move(c), false);
    report(std::to_string(t) + " ms", *e);
  }

  sweep_header("effective writeback bandwidth (stall duration)");
  for (const auto mb : {30, 60, 120, 240}) {
    auto c = base();
    c.disk_bytes_per_second = mb * 1024.0 * 1024.0;
    auto e = run_experiment(opt, std::move(c), false);
    report(std::to_string(mb) + " MB/s", *e);
  }

  std::cout << "\n(interpretation: longer park times, smaller pools and longer\n"
               " stalls all deepen the funnel; the VLRT clusters move with the\n"
               " RTO schedule, confirming retransmission as the mechanism behind\n"
               " the 1s/2s/3s peaks of Fig. 4. The busy_recovery extremes show\n"
               " the trade-off the paper's conservative remedy walks: re-probing\n"
               " every 10 ms escalates a single millibottleneck into the Error\n"
               " state (a millibottleneck is indistinguishable from permanent\n"
               " failure in the moment, §IV-C), while sidelining for seconds\n"
               " turns one stalled server into 503s whenever the others blip —\n"
               " both visible as balancer errors in the 503s column)\n";
  return 0;
}
