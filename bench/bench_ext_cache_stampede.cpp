// Extension: cache stampedes after invalidation storms — the hit-ratio vs
// VLRT frontier of the look-aside cache tier.
//
// PR 6 showed that a Zipf-hot key pins a shard and that no server-choice
// policy upstream can route around n-r+1 stalled shard members: the
// millibottleneck is a *key*, and every path converges on the same quorum.
// This bench layers the cache tier (src/cache) in front of that exact
// scenario and walks the frontier:
//   (a) a warm cache erases the hot-shard VLRTs — reads resolve at the
//       cache and never meet the stalled quorum;
//   (b) an invalidation storm (the kInvalidationStorm fault sweeping the
//       hottest keys through the bounded invalidation queues) re-exposes
//       the stalled shard under *every* policy, prequal included — the
//       cache can only protect keys it still holds;
//   (c) single-flight coalescing recovers most of the loss: one fill per
//       key per storm tick instead of a stampede of quorum reads piling
//       onto the stalled replicas' FIFOs and draining serially afterwards.
// Plus a cache-size x TTL frontier under one policy: how much memory and
// staleness budget it takes before the warm-cache regime kicks in.
//
// The workload is browse-only so the storm fault is the only invalidation
// source; organic writes would blur the warm-cache baseline.
#include <algorithm>
#include <cstdint>
#include <string>

#include "bench_common.h"
#include "millib/fault_plan.h"
#include "server/db_router.h"

using namespace ntier;
using namespace ntier::bench;

namespace {

enum class Scenario { kNoCache, kWarm, kStormNoCoalesce, kStormCoalesce };

const char* name(Scenario s) {
  switch (s) {
    case Scenario::kNoCache: return "no cache";
    case Scenario::kWarm: return "warm cache";
    case Scenario::kStormNoCoalesce: return "storm, no coalescing";
    case Scenario::kStormCoalesce: return "storm + coalescing";
  }
  return "?";
}

/// One invalidation storm overlapping each hot-shard stall window (the
/// injector stalls run [offset + k*period, +duration); the storm starts
/// 100 ms earlier and outlasts the stall, so the miss spike lands squarely
/// on the stalled quorum).
millib::FaultPlan storm_plan(const ExperimentConfig& c) {
  millib::FaultPlan plan;
  const SimTime storm_len = c.injector.duration + SimTime::millis(700);
  for (SimTime start = c.injector.initial_offset - SimTime::millis(100);
       start + storm_len < c.duration; start += c.injector.period) {
    millib::FaultSpec storm;
    storm.kind = millib::FaultKind::kInvalidationStorm;
    storm.start = start;
    storm.duration = storm_len;
    storm.severity = 4.0;  // sweep the 256 hottest ranks every tick
    plan.specs.push_back(storm);
  }
  return plan;
}

/// The PR 6 hot-shard scenario (n-r+1 members of the Zipf-hottest key's
/// shard stall together every 5 s) with the cache tier layered per scenario.
ExperimentConfig cache_config(const BenchOptions& opt, PolicyKind policy,
                              Scenario sc) {
  ExperimentConfig c = cluster_config(opt, policy, MechanismKind::kNonBlocking,
                                      /*millibottlenecks=*/false);
  c.tracing = false;  // the request log + CacheStats carry this bench
  // Ample worker threads and endpoint pools: requests parked on a stalled
  // quorum must not starve unrelated traffic of Apache/Tomcat slots, or the
  // upstream pool collapse (the PR 1 story) swamps the data-tier effect this
  // bench isolates.
  c.apache.max_clients = 4000;
  c.tomcat.max_threads = 4000;
  c.balancer.endpoint_pool_size = 2000;
  c.db_tier = server::DbTier::kKv;
  c.kv.replicas = 5;  // defaults: 16 shards, N=3, R=W=2
  c.workload.key_space = 10'000;
  c.workload.zipf_s = 1.1;
  c.workload.mix = workload::Mix::kBrowseOnly;
  // Every backing read pays the full miss-side demand (~1 ms with the scale
  // below): the KV tier is provisioned for the cache-hit regime, as
  // look-aside deployments are. A warm cache keeps it far below saturation;
  // a miss stampede of redundant fills drives the stalled members
  // supercritical — their post-stall drain can't outrun stuck arrivals, so
  // every waiter rides the queue past the VLRT bar. One coalesced fill per
  // key keeps that queue trivially short.
  c.workload.query_cache_hit = 0.0;
  c.workload.demand_scale = 2.0;
  c.kv_millibottlenecks = true;
  c.injector.period = SimTime::seconds(5);
  // The stall sits just over the 1 s VLRT bar: a waiter whose first lookup
  // lands at the stall's onset barely crosses it, so the VLRT count is
  // dominated by pile-up — the post-stall drain of queued reads (no cache)
  // or of redundant fills (storm without coalescing) congesting every
  // follow-up lookup. Coalescing keeps one fill per key in that queue,
  // which is exactly the loss it can recover.
  c.injector.duration = SimTime::millis(1010);
  c.injector.severity = 1.0;
  c.injector.initial_offset = SimTime::seconds(4);
  c.label = std::string(name(sc)) + "/" + lb::to_string(policy);
  switch (sc) {
    case Scenario::kNoCache:
      break;
    case Scenario::kWarm:
      c.cache_tier = true;
      break;
    case Scenario::kStormNoCoalesce:
      c.cache_tier = true;
      c.cache.coalesce = false;
      c.fault_plan = storm_plan(c);
      break;
    case Scenario::kStormCoalesce:
      c.cache_tier = true;
      c.fault_plan = storm_plan(c);
      break;
  }
  return c;
}

struct Cell {
  std::uint64_t vlrts = 0;
  double vlrt_fraction = 0.0;
  double hit_ratio = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Ext", "cache stampedes after invalidation storms (hit ratio vs VLRT)");

  const PolicyKind policies[] = {PolicyKind::kCurrentLoad,
                                 PolicyKind::kPowerOfD, PolicyKind::kPrequal,
                                 PolicyKind::kSourceHash};
  const Scenario scenarios[] = {Scenario::kNoCache, Scenario::kWarm,
                                Scenario::kStormNoCoalesce,
                                Scenario::kStormCoalesce};

  std::cout << "\n  KV tier: 5 replicas, 16 shards, N=3 R=2 W=2; Zipf(s=1.1) "
               "browse-only keys over 10000\n  cache tier: 2 nodes, 64 MB "
               "each (whole key space fits), TTL 10 s\n  backing reads pay "
               "the full ~1 ms miss demand: the KV tier is provisioned for "
               "the\n  cache-hit regime, so the uncached baseline saturates "
               "and a miss stampede bites\n";
  if (opt.sweep_seeds > 1)
    std::cout << "  (each row: " << opt.sweep_seeds
              << "-seed sweep, mean+-95% CI, " << opt.jobs << " jobs)\n";

  std::uint64_t nocache_vlrt_min = UINT64_MAX;  // across policies
  double warm_vlrt_fraction_max = 0.0;
  std::uint64_t storm_vlrt_min = UINT64_MAX;  // no-coalesce, across policies
  std::uint64_t storm_off_total = 0;          // no-coalesce VLRTs summed
  std::uint64_t storm_on_total = 0;           // coalescing VLRTs summed
  double storm_hit_ratio_max = 0.0;
  double warm_hit_ratio_min = 1.0;

  for (const Scenario sc : scenarios) {
    std::cout << "\n-- scenario: " << name(sc) << "\n";
    experiment::print_table1_header(std::cout);
    std::vector<std::string> cache_lines;
    for (const PolicyKind policy : policies) {
      ExperimentConfig cfg = cache_config(opt, policy, sc);
      const std::string row_label =
          std::string(lb::to_string(policy)) + " + non-blocking";
      Cell cell;
      if (opt.sweep_seeds > 1) {
        const auto agg = run_sweep(opt, std::move(cfg), /*announce=*/false);
        print_sweep_row(std::cout, row_label, agg);
        cell.vlrts = static_cast<std::uint64_t>(
            agg.vlrt_fraction.mean * agg.completed.mean + 0.5);
        cell.vlrt_fraction = agg.vlrt_fraction.mean;
        const double lookups = agg.cache_hits.mean + agg.cache_misses.mean;
        cell.hit_ratio = lookups > 0 ? agg.cache_hits.mean / lookups : 0.0;
      } else {
        auto e = run_experiment(opt, std::move(cfg), /*announce=*/false);
        std::cout << e->log().summary_row(row_label)
                  << "  vlrt_n=" << e->log().vlrt_count() << "\n";
        cell.vlrts = e->log().vlrt_count();
        cell.vlrt_fraction = e->log().vlrt_fraction();
        if (const auto* cache = e->cache_tier()) {
          const auto& cs = cache->stats();
          cell.hit_ratio = cs.hit_ratio();
          std::ostringstream os;
          os << "  " << std::left << std::setw(28) << row_label << std::right
             << std::fixed << std::setprecision(3) << "hit ratio "
             << cs.hit_ratio() << ", " << cs.hits << " hits / " << cs.misses
             << " misses, " << cs.coalesced_fills << " coalesced, inval "
             << cs.invalidations_sent << " sent / "
             << cs.invalidations_dropped << " dropped, " << cs.storms
             << " storms";
          cache_lines.push_back(os.str());
        }
      }
      switch (sc) {
        case Scenario::kNoCache:
          nocache_vlrt_min = std::min(nocache_vlrt_min, cell.vlrts);
          break;
        case Scenario::kWarm:
          warm_vlrt_fraction_max =
              std::max(warm_vlrt_fraction_max, cell.vlrt_fraction);
          warm_hit_ratio_min = std::min(warm_hit_ratio_min, cell.hit_ratio);
          break;
        case Scenario::kStormNoCoalesce:
          storm_vlrt_min = std::min(storm_vlrt_min, cell.vlrts);
          storm_off_total += cell.vlrts;
          storm_hit_ratio_max = std::max(storm_hit_ratio_max, cell.hit_ratio);
          break;
        case Scenario::kStormCoalesce:
          storm_on_total += cell.vlrts;
          break;
      }
    }
    if (!cache_lines.empty()) {
      std::cout << "  cache tier:\n";
      for (const auto& l : cache_lines) std::cout << "  " << l << "\n";
    }
  }

  // ---- cache-size x TTL frontier under current_load -------------------------
  std::cout << "\n-- frontier: cache bytes x TTL (current_load, hot-shard "
               "stalls, no storm)\n";
  std::cout << "  " << std::setw(12) << "bytes" << std::setw(10) << "ttl_ms"
            << std::setw(12) << "hit_ratio" << std::setw(12) << "vlrt_%"
            << std::setw(10) << "vlrt_n" << "\n";
  const std::uint64_t sizes[] = {64ull << 10, 1ull << 20, 64ull << 20};
  const double ttls_ms[] = {500, 2000, 10000};
  for (const std::uint64_t bytes : sizes) {
    for (const double ttl_ms : ttls_ms) {
      ExperimentConfig cfg =
          cache_config(opt, PolicyKind::kCurrentLoad, Scenario::kWarm);
      cfg.cache.bytes = bytes;
      cfg.cache.ttl = SimTime::from_millis(ttl_ms);
      cfg.label = "frontier/" + std::to_string(bytes >> 10) + "k/" +
                  std::to_string(static_cast<int>(ttl_ms)) + "ms";
      auto e = run_experiment(opt, std::move(cfg), /*announce=*/false);
      const auto& cs = e->cache_tier()->stats();
      std::cout << "  " << std::setw(12) << bytes << std::setw(10)
                << static_cast<int>(ttl_ms) << std::setw(12) << std::fixed
                << std::setprecision(3) << cs.hit_ratio() << std::setw(12)
                << std::setprecision(3) << e->log().vlrt_fraction() * 100.0
                << std::setw(10) << e->log().vlrt_count() << "\n";
    }
  }

  const bool warm_ok =
      nocache_vlrt_min != UINT64_MAX && nocache_vlrt_min > 0 &&
      warm_vlrt_fraction_max < 0.002 && warm_hit_ratio_min > 0.9;
  const bool storm_ok = storm_vlrt_min != UINT64_MAX && storm_vlrt_min > 0;
  const bool coalesce_ok =
      storm_off_total > 0 && storm_on_total * 2 <= storm_off_total;

  std::cout << "\n";
  paper_vs_measured("hot-shard VLRT fraction, warm cache",
                    "~0% (reads never meet the quorum)",
                    std::to_string(warm_vlrt_fraction_max * 100.0) +
                        "% max (no-cache min vlrt_n " +
                        std::to_string(nocache_vlrt_min) + ")");
  paper_vs_measured("storm VLRTs under best policy",
                    "> 0 (cache cannot hold swept keys)",
                    std::to_string(storm_vlrt_min));
  paper_vs_measured("storm VLRTs, coalescing on vs off",
                    "<= half (one fill per key)",
                    std::to_string(storm_on_total) + " vs " +
                        std::to_string(storm_off_total));
  std::cout << "\nverdict: warm cache "
            << (warm_ok ? "erased" : "FAILED to erase")
            << " hot-shard VLRTs (max fraction "
            << warm_vlrt_fraction_max * 100.0 << "%, min hit ratio "
            << warm_hit_ratio_min << ")\n"
            << "verdict: invalidation storm "
            << (storm_ok ? "reintroduced" : "did NOT reintroduce")
            << " VLRTs under every policy (min across policies "
            << (storm_vlrt_min == UINT64_MAX ? 0 : storm_vlrt_min) << ")\n"
            << "verdict: single-flight coalescing "
            << (coalesce_ok ? "cut storm VLRTs by at least half"
                            : "FAILED to halve storm VLRTs")
            << " (" << storm_on_total << " vs " << storm_off_total << ")\n"
            << "(fixed seed => byte-deterministic; run with --seed N to vary,"
               " --sweep-seeds N --jobs J for mean+-CI, --full for paper scale)\n";
  return warm_ok && storm_ok && coalesce_ok ? 0 : 1;
}
