// Extension: probe-driven load balancing under millibottlenecks.
//
// The paper's remedies (current_load, modified non-blocking get_endpoint)
// fix mod_jk's stale cumulative counters but still rank on state observed
// *at the balancer*. This bench asks the question the paper leaves open:
// does probe-fresh backend state — Prequal's hot/cold RIF rule or JSQ(d)
// over probed requests-in-flight — beat even the best remedy pair on the
// Fig. 6 scenario (4A/4T/1M, pdflush millibottlenecks rotating across the
// Tomcat tier)?
//
// Expected shape: the stock configuration shows double-digit mean RT and a
// large VLRT population; the remedy pair cuts both by an order of
// magnitude; the probing policies match or beat the remedy pair because a
// stalled Tomcat stops answering probes (or answers with a high RIF) and is
// routed around within one staleness window instead of after the queue has
// already built.
#include <sstream>

#include "bench_common.h"
#include "lb/probe_policy.h"

using namespace ntier;
using namespace ntier::bench;

namespace {

/// Aggregate probe-pool + probe-policy counters across the Apaches.
struct ProbeStats {
  std::uint64_t sent = 0, replies = 0, timeouts = 0, piggybacked = 0;
  std::uint64_t probe_picks = 0, tiebreak_picks = 0, fallback_picks = 0;
  double staleness_ms = 0.0;  // use-weighted mean

  static ProbeStats collect(Experiment& e) {
    ProbeStats s;
    std::uint64_t uses = 0;
    double staleness_sum = 0.0;
    for (int a = 0; a < e.num_apaches(); ++a) {
      if (const auto* pool = e.apache(a).probe_pool()) {
        s.sent += pool->probes_sent();
        s.replies += pool->replies();
        s.timeouts += pool->timeouts();
        s.piggybacked += pool->piggybacked();
        staleness_sum += pool->mean_staleness_at_use_ms() *
                         static_cast<double>(pool->uses());
        uses += pool->uses();
      }
      if (const auto* aware = dynamic_cast<const lb::ProbeAwarePolicy*>(
              &e.apache(a).balancer().policy())) {
        s.probe_picks += aware->probe_picks();
        s.tiebreak_picks += aware->tiebreak_picks();
        s.fallback_picks += aware->fallback_picks();
      }
    }
    if (uses) s.staleness_ms = staleness_sum / static_cast<double>(uses);
    return s;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Ext", "probe-driven policies (power_of_d, prequal) vs the paper's remedies");

  struct Row {
    const char* label;
    PolicyKind policy;
    MechanismKind mech;
  };
  const Row rows[] = {
      {"Stock (total_request + blocking)", PolicyKind::kTotalRequest,
       MechanismKind::kBlocking},
      {"Remedy pair (current_load + non-blocking)", PolicyKind::kCurrentLoad,
       MechanismKind::kNonBlocking},
      {"Two_choices + non-blocking", PolicyKind::kTwoChoices,
       MechanismKind::kNonBlocking},
      {"Power_of_d probing + non-blocking", PolicyKind::kPowerOfD,
       MechanismKind::kNonBlocking},
      {"Prequal probing + non-blocking", PolicyKind::kPrequal,
       MechanismKind::kNonBlocking},
  };

  double remedy_mean = 0, prequal_mean = 0;
  std::uint64_t remedy_vlrt = 0, prequal_vlrt = 0;

  std::cout << "\n";
  if (opt.sweep_seeds > 1)
    std::cout << "(each row: " << opt.sweep_seeds
              << "-seed sweep, mean+-95% CI, " << opt.jobs << " jobs)\n";
  experiment::print_table1_header(std::cout);
  std::vector<std::string> probe_lines;
  for (const auto& row : rows) {
    ExperimentConfig cfg = cluster_config(opt, row.policy, row.mech);
    cfg.tracing = false;  // request log + probe counters carry this bench
    cfg.label = row.label;
    if (opt.sweep_seeds > 1) {
      // Sweep mode: the probe-counter deep dive is a single-run artifact;
      // the sweep reports the policy comparison with confidence intervals.
      const auto agg = run_sweep(opt, std::move(cfg), /*announce=*/false);
      print_sweep_row(std::cout, row.label, agg);
      if (row.policy == PolicyKind::kCurrentLoad) {
        remedy_mean = agg.mean_rt_ms.mean;
        remedy_vlrt = static_cast<std::uint64_t>(
            agg.vlrt_fraction.mean * agg.completed.mean + 0.5);
      }
      if (row.policy == PolicyKind::kPrequal) {
        prequal_mean = agg.mean_rt_ms.mean;
        prequal_vlrt = static_cast<std::uint64_t>(
            agg.vlrt_fraction.mean * agg.completed.mean + 0.5);
      }
      continue;
    }
    auto e = run_experiment(opt, std::move(cfg), /*announce=*/false);
    std::cout << e->log().summary_row(row.label) << "  vlrt_n="
              << e->log().vlrt_count() << "\n";

    const ProbeStats ps = ProbeStats::collect(*e);
    if (ps.sent > 0) {
      std::ostringstream os;
      os << "  " << std::left << std::setw(44) << row.label << " "
         << ps.sent << " probes (" << ps.replies << " replies, "
         << ps.timeouts << " timed out), " << ps.piggybacked
         << " piggybacked reports, " << ps.probe_picks
         << " probe-driven picks, " << ps.tiebreak_picks
         << " probed tie-breaks, " << ps.fallback_picks
         << " current_load fallbacks, mean staleness at use "
         << std::fixed << std::setprecision(1) << ps.staleness_ms << " ms";
      probe_lines.push_back(os.str());
    }

    if (row.policy == PolicyKind::kCurrentLoad) {
      remedy_mean = e->log().mean_response_ms();
      remedy_vlrt = e->log().vlrt_count();
    }
    if (row.policy == PolicyKind::kPrequal) {
      prequal_mean = e->log().mean_response_ms();
      prequal_vlrt = e->log().vlrt_count();
    }
  }

  if (!probe_lines.empty()) {
    std::cout << "\nprobe subsystem:\n";
    for (const auto& l : probe_lines) std::cout << l << "\n";
  }

  std::cout << "\n";
  paper_vs_measured("prequal mean RT vs remedy pair",
                    "<= (acceptance)",
                    std::to_string(prequal_mean) + " ms vs " +
                        std::to_string(remedy_mean) + " ms");
  paper_vs_measured("prequal VLRT count vs remedy pair", "comparable",
                    std::to_string(prequal_vlrt) + " vs " +
                        std::to_string(remedy_vlrt));
  std::cout << "\nverdict: prequal "
            << (prequal_mean <= remedy_mean ? "matches or beats"
                                            : "does NOT beat")
            << " the remedy pair on mean response time\n"
            << "(fixed seed => byte-deterministic; run with --seed N to vary,"
               " --sweep-seeds N --jobs J for mean+-CI, --full for paper scale)\n";
  return 0;
}
