// Extension: gray failures, metastable basins, and recovery orchestration.
//
// Three regimes, one per verdict line:
//   (a) Differential observability. The same 10x slowdown is injected twice
//       on one Tomcat: once as kCapacityStall (the probe path slows with the
//       data path, so the prober times out, the breaker opens, and the
//       balancer routes around it) and once as kGrayDataPath (probes and
//       piggybacked load reports keep answering at healthy-node latency
//       while real requests run 10x slow). Every detector the resilience
//       layer has — prober, breaker, prequal's in-band reports — is evaded
//       by construction, so the gray run's latency inflation dwarfs the
//       detectable run's.
//   (b) Metastability. A short trigger is fired into a *vulnerable* config
//       (retry storm / non-coalescing cache stampede / tiny endpoint pool)
//       and into its *hardened* twin. The hardened run returns to its own
//       pre-trigger baseline in O(drain); the vulnerable run's sustaining
//       loop keeps it degraded >= 10x the trigger duration after the fault
//       has cleared — usually until the run ends.
//   (c) Recovery orchestration. The same vulnerable configs run again with
//       the src/recovery control loop enabled: it declares the episode,
//       suppresses retries / sheds hard / gates cache refills, and steps
//       down once its learned baseline returns — turning "degraded forever"
//       into a bounded time-to-baseline.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "experiment/metastable.h"
#include "millib/fault_plan.h"

using namespace ntier;
using namespace ntier::bench;

namespace {

enum class Fault { kNone, kStall, kGray };

const char* name(Fault f) {
  switch (f) {
    case Fault::kNone: return "no fault";
    case Fault::kStall: return "detectable stall";
    case Fault::kGray: return "gray data-path";
  }
  return "?";
}

/// The evasion testbed: resilience on (prober + breaker + budgeted retries),
/// organic millibottlenecks off, one long 10x fault on Tomcat 0 covering
/// half the measured span so mean latency integrates the whole episode.
ExperimentConfig evasion_config(const BenchOptions& opt, PolicyKind policy,
                                Fault fault) {
  ExperimentConfig c = cluster_config(opt, policy, MechanismKind::kNonBlocking,
                                      /*millibottlenecks=*/false);
  c.tracing = false;  // the request log carries this section
  c.enable_resilience();
  // A tight probe deadline so the detectable stall IS detected: the probe's
  // 20 us demand shares the stalled CPU with ~200 parked requests, putting
  // its completion near 10 ms — over this deadline, while a probe on a
  // gray-degraded node (CPU healthy, only request demand inflated) stays
  // around 1 ms and sails under it.
  c.apache.prober.timeout = SimTime::millis(5);
  // A long parole: once tripped, the stalled worker stays benched for most
  // of the fault instead of being readmitted every 500 ms for three
  // half-open trials that each eat a multi-hundred-ms stalled response.
  // Neutral for the gray run — its breaker never trips.
  c.balancer.breaker.open_duration = SimTime::seconds(2);
  if (fault != Fault::kNone) {
    millib::FaultSpec spec;
    spec.kind = fault == Fault::kGray ? millib::FaultKind::kGrayDataPath
                                      : millib::FaultKind::kCapacityStall;
    spec.worker = 0;
    const SimTime span = c.duration - c.warmup;
    spec.start = c.warmup + SimTime::from_seconds(span.to_seconds() * 0.2);
    spec.duration = SimTime::from_seconds(span.to_seconds() * 0.6);
    spec.severity = 0.9;  // 10x service-time inflation either way
    c.fault_plan = millib::FaultPlan::single(spec);
  }
  c.label = std::string(name(fault)) + "/" + lb::to_string(policy);
  return c;
}

struct EvasionCell {
  double mean_ms = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t probe_timeouts = 0;
  std::uint64_t gray_ops = 0;
};

EvasionCell evasion_cell(Experiment& e) {
  EvasionCell cell;
  cell.mean_ms = e.log().mean_response_ms();
  for (int a = 0; a < e.num_apaches(); ++a) {
    cell.breaker_trips += e.apache(a).balancer().breaker_trips();
    if (const auto* prober = e.apache(a).prober())
      cell.probe_timeouts += prober->probes_timed_out();
  }
  const experiment::RunSummary s = experiment::summarize(e);
  cell.gray_ops = s.gray_inflated_ops;
  return cell;
}

/// Scenario cell options: the shared clock of the metastable grid. Quick
/// mode shrinks the run but keeps >= 10x the trigger duration of post-clear
/// horizon, so the metastability claim stays decidable.
experiment::MetastableOptions scenario(const BenchOptions& opt,
                                       experiment::MetastableKind kind,
                                       bool vulnerable, bool recovery) {
  experiment::MetastableOptions mo;
  mo.kind = kind;
  mo.vulnerable = vulnerable;
  mo.recovery = recovery;
  mo.seed = opt.seed;
  if (opt.quick) {
    mo.duration = SimTime::seconds(22);
    mo.warmup = SimTime::seconds(3);
    mo.trigger_start = SimTime::seconds(6);
    mo.trigger_duration = SimTime::from_millis(1200);
  } else if (opt.full) {
    mo.duration = SimTime::seconds(80);
    mo.trigger_start = SimTime::seconds(15);
    mo.trigger_duration = SimTime::seconds(3);
  }
  return mo;
}

void print_scenario_row(const experiment::MetastableResult& r) {
  const auto& rep = r.report;
  std::cout << "  " << std::left << std::setw(34) << r.label << std::right
            << std::fixed << std::setprecision(1) << " base "
            << std::setw(6) << rep.baseline_latency_ms << " ms  ";
  if (rep.recovered) {
    std::cout << "recovered in " << std::setprecision(2)
              << rep.time_to_baseline_s << " s ("
              << std::setprecision(1) << rep.recovery_ratio()
              << "x trigger)";
  } else {
    std::cout << "NEVER recovered";
  }
  std::cout << ", degraded " << std::setprecision(2)
            << rep.degraded_after_clear_s << " s post-clear";
  if (r.recovery_enabled)
    std::cout << "\n    recovery: " << r.recovery_stats.to_string();
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Ext",
         "gray failures, metastable basins, and recovery orchestration");

  // ---- regime (a): gray faults evade every detector ------------------------
  std::cout << "\n-- regime (a): the same 10x slowdown, detectable vs gray "
               "(resilience on)\n"
            << "  " << std::setw(34) << std::left << "cell" << std::right
            << std::setw(10) << "mean_ms" << std::setw(8) << "trips"
            << std::setw(10) << "probe_to" << std::setw(10) << "gray_ops"
            << "\n";
  // Round-robin is the gated row: it has no load signal of its own, so
  // avoidance is exactly what the prober+breaker buy — the cleanest measure
  // of what a gray fault evades. Prequal rides along unscored: its
  // piggybacked reports are frozen by the gray fault too, but its local
  // outstanding-count correction partially routes around the damage, which
  // is worth printing, not gating on.
  struct EvasionPolicy {
    PolicyKind policy;
    bool gated;
  };
  const EvasionPolicy evasion_policies[] = {{PolicyKind::kRoundRobin, true},
                                            {PolicyKind::kPrequal, false}};
  double min_gap = 1e18;
  bool gray_invisible = true;   // no trips, no probe timeouts on gray runs
  bool stall_detected = true;   // the equivalent stall IS seen
  bool gray_bites = true;       // gray ops actually ran inflated
  for (const auto& [policy, gated] : evasion_policies) {
    EvasionCell cells[3];
    for (const Fault fault : {Fault::kNone, Fault::kStall, Fault::kGray}) {
      ExperimentConfig cfg = evasion_config(opt, policy, fault);
      const std::string label = cfg.label;
      auto e = run_experiment(opt, std::move(cfg), /*announce=*/false);
      EvasionCell cell = evasion_cell(*e);
      cells[static_cast<int>(fault)] = cell;
      std::cout << "  " << std::setw(34) << std::left << label << std::right
                << std::setw(10) << std::fixed << std::setprecision(2)
                << cell.mean_ms << std::setw(8) << cell.breaker_trips
                << std::setw(10) << cell.probe_timeouts << std::setw(10)
                << cell.gray_ops << "\n";
    }
    const EvasionCell& base = cells[static_cast<int>(Fault::kNone)];
    const EvasionCell& stall = cells[static_cast<int>(Fault::kStall)];
    const EvasionCell& gray = cells[static_cast<int>(Fault::kGray)];
    const double stall_excess = std::max(stall.mean_ms - base.mean_ms, 0.01);
    const double gray_excess = gray.mean_ms - base.mean_ms;
    if (gated) min_gap = std::min(min_gap, gray_excess / stall_excess);
    gray_invisible &= gray.breaker_trips == 0 && gray.probe_timeouts == 0;
    // Only the gated (signal-free) row must SEE the stall: prequal's own
    // load signals steer traffic off the stalled node before its probe
    // queue ever builds, so its prober has nothing to time out on.
    if (gated)
      stall_detected &= stall.breaker_trips > 0 || stall.probe_timeouts > 0;
    gray_bites &= gray.gray_ops > 0;
    std::cout << "  " << lb::to_string(policy)
              << ": latency excess over no-fault, gray vs detectable: "
              << std::fixed << std::setprecision(2) << gray_excess << " vs "
              << stall_excess << " ms (gap "
              << std::setprecision(1) << gray_excess / stall_excess << "x)"
              << (gated ? "" : "  [reported, not gated]") << "\n";
  }
  const bool evasion_ok =
      min_gap >= 5.0 && gray_invisible && stall_detected && gray_bites;

  // ---- regimes (b) + (c): metastable basins and recovery --------------------
  const experiment::MetastableKind kinds[] = {
      experiment::MetastableKind::kRetryStorm,
      experiment::MetastableKind::kCacheStampede,
      experiment::MetastableKind::kPoolExhaustion};
  bool hardened_ok = true;    // trigger-only runs return to baseline
  bool metastable_ok = true;  // vulnerable runs stay degraded >= 10x trigger
  bool recovery_ok = true;    // recovery-on runs return in bounded time
  double worst_vuln_ratio = 1e18;  // min over kinds of degraded/trigger
  double worst_recovery_s = 0;     // max over kinds of time-to-baseline
  for (const experiment::MetastableKind kind : kinds) {
    std::cout << "\n-- scenario: " << experiment::to_string(kind) << "\n";
    const auto hardened = experiment::run_metastable(
        scenario(opt, kind, /*vulnerable=*/false, /*recovery=*/false));
    const auto vulnerable = experiment::run_metastable(
        scenario(opt, kind, /*vulnerable=*/true, /*recovery=*/false));
    const auto recovered = experiment::run_metastable(
        scenario(opt, kind, /*vulnerable=*/true, /*recovery=*/true));
    print_scenario_row(hardened);
    print_scenario_row(vulnerable);
    print_scenario_row(recovered);

    hardened_ok &= hardened.report.recovered;
    const double trigger_s = vulnerable.report.trigger_s;
    const double vuln_ratio =
        vulnerable.report.recovered
            ? vulnerable.report.time_to_baseline_s / trigger_s
            : vulnerable.report.degraded_after_clear_s / trigger_s;
    metastable_ok &= !vulnerable.report.recovered ||
                     vulnerable.report.time_to_baseline_s >= 10.0 * trigger_s;
    worst_vuln_ratio = std::min(worst_vuln_ratio, vuln_ratio);
    recovery_ok &= recovered.report.recovered &&
                   recovered.recovery_stats.episodes > 0;
    worst_recovery_s =
        std::max(worst_recovery_s, recovered.report.time_to_baseline_s);
  }

  std::cout << "\n";
  paper_vs_measured("gray vs detectable latency gap",
                    ">= 5x (every detector evaded)",
                    std::to_string(min_gap) + "x min across policies");
  paper_vs_measured("gray-run breaker trips + probe timeouts", "0 (invisible)",
                    gray_invisible ? "0" : "> 0");
  paper_vs_measured("vulnerable degraded-to-trigger ratio",
                    ">= 10x (sustaining loop)",
                    std::to_string(worst_vuln_ratio) + "x min across kinds");
  paper_vs_measured("recovery-on time-to-baseline",
                    "bounded (< run horizon)",
                    std::to_string(worst_recovery_s) + " s max across kinds");
  std::cout << "\nverdict: gray fault "
            << (evasion_ok ? "evaded" : "FAILED to evade")
            << " prober+breaker+prequal with >= 5x latency gap (min gap "
            << std::fixed << std::setprecision(1) << min_gap << "x)\n"
            << "verdict: vulnerable config "
            << (metastable_ok && hardened_ok
                    ? "stayed degraded >= 10x trigger duration"
                    : "FAILED to stay degraded 10x trigger")
            << " after the fault cleared (hardened twin "
            << (hardened_ok ? "recovered" : "did NOT recover") << ")\n"
            << "verdict: recovery orchestration "
            << (recovery_ok ? "restored baseline in bounded time"
                            : "FAILED to restore baseline")
            << " (worst time-to-baseline " << std::setprecision(2)
            << worst_recovery_s << " s)\n"
            << "(fixed seed => byte-deterministic; run with --seed N to vary,"
               " --full for paper scale)\n";
  return evasion_ok && hardened_ok && metastable_ok && recovery_ok ? 0 : 1;
}
