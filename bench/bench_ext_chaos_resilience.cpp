// Extension: chaos fault injection vs the resilience layer. A Tomcat crash
// mid-run is the fault the paper's mechanisms never face: the stock blocking
// mechanism keeps assigning to the dead worker (its mod_jk state only decays
// via per-request failures), so clients see balancer errors and the long
// tail explodes. With the resilience layer (active prober -> EWMA health ->
// circuit breaker, plus budgeted retries) the crash is detected in a few
// probe intervals, the worker is tripped out of rotation, and stranded
// requests are retried elsewhere: errors drop to ~zero and P99.9 stays
// bounded.
#include "bench_common.h"

#include "experiment/chaos.h"
#include "millib/fault_plan.h"

using namespace ntier;
using namespace ntier::bench;

namespace {

experiment::ChaosRunResult crash_run(const BenchOptions& opt, bool resilient,
                                     SimTime traffic) {
  ExperimentConfig c;
  c.label = resilient ? "crash_resilient" : "crash_stock";
  c.seed = opt.seed;
  c.num_apaches = 2;
  c.num_tomcats = 3;
  c.num_clients = opt.full ? 2000 : 400;
  c.think_mean = SimTime::millis(200);
  c.warmup = SimTime::millis(500);
  c.policy = PolicyKind::kTotalRequest;
  c.mechanism = MechanismKind::kBlocking;
  c.tomcat_millibottlenecks = false;  // the crash is the only disturbance
  c.tracing = false;
  millib::FaultSpec crash;
  crash.kind = millib::FaultKind::kCrash;
  crash.worker = 0;
  crash.start = traffic / 3;
  crash.duration = traffic / 3;
  c.fault_plan = millib::FaultPlan::single(crash);
  if (resilient) c.enable_resilience();
  return experiment::run_chaos(std::move(c), traffic, SimTime::seconds(6));
}

void print_row(const std::string& label,
               const experiment::ChaosRunResult& r) {
  std::cout << "  " << std::left << std::setw(18) << label << std::right
            << std::setw(10) << r.invariants.completed << std::setw(9)
            << r.invariants.failed << std::setw(9) << r.invariants.dropped
            << std::setw(10) << std::fixed << std::setprecision(1)
            << r.summary.p99_ms << std::setw(11) << r.summary.p999_ms
            << std::setw(8) << r.breaker_trips << std::setw(9) << r.retries
            << std::setw(8) << r.probes_sent << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Extension: chaos + resilience",
         "Tomcat crash under stock blocking vs prober+breaker+retry budget");

  const SimTime traffic =
      opt.full ? SimTime::seconds(60) : SimTime::seconds(12);
  std::cout << "\n  one Tomcat (of 3) crashes for the middle third of a "
            << traffic.to_string() << " run\n\n  " << std::left
            << std::setw(18) << "variant" << std::right << std::setw(10)
            << "complete" << std::setw(9) << "failed" << std::setw(9)
            << "dropped" << std::setw(10) << "p99_ms" << std::setw(11)
            << "p99.9_ms" << std::setw(8) << "trips" << std::setw(9)
            << "retries" << std::setw(8) << "probes" << "\n";

  const auto stock = crash_run(opt, /*resilient=*/false, traffic);
  print_row("stock blocking", stock);
  const auto resilient = crash_run(opt, /*resilient=*/true, traffic);
  print_row("resilient", resilient);

  std::cout << "\n  fault trace:\n" << resilient.fault_trace;
  std::cout << "\n  invariants (both runs must hold all three):\n    stock:     "
            << (stock.invariants.ok() ? "ok" : stock.invariants.to_string())
            << "\n    resilient: "
            << (resilient.invariants.ok() ? "ok"
                                          : resilient.invariants.to_string())
            << "\n";

  maybe_csv(opt, "ext_chaos_resilience.csv", SimTime::seconds(1),
            {"stock_failed", "resilient_failed"},
            {{static_cast<double>(stock.invariants.failed)},
             {static_cast<double>(resilient.invariants.failed)}});

  std::cout
      << "\n(the stock mechanism only learns about the dead worker from "
         "request\n failures, so every probe of the error-state decay window "
         "costs real\n client errors; the prober pays that cost with 200 "
         "microsecond probe\n jobs instead, and the retry budget turns the "
         "residual failures into\n successful second attempts)\n";
  return stock.invariants.ok() && resilient.invariants.ok() ? 0 : 1;
}
