// Extension: the paper (§III-A) lists DVFS, JVM garbage collection and VM
// consolidation as further millibottleneck causes, and argues (§VIII) that
// its remedies generalise to them. This bench swaps pdflush for each
// synthetic cause and reruns the stock-vs-remedy comparison.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Extension: other millibottleneck causes",
         "GC pauses / DVFS / VM consolidation instead of pdflush");

  struct Cause {
    experiment::StallSource source;
    millib::InjectorConfig profile;
    const char* note;
  };
  const Cause causes[] = {
      {experiment::StallSource::kGcPause,
       millib::gc_pause_profile(sim::SimTime::seconds(4), sim::SimTime::millis(300)),
       "stop-the-world GC, full freeze"},
      {experiment::StallSource::kDvfs,
       millib::dvfs_profile(sim::SimTime::seconds(2), sim::SimTime::millis(200), 0.6),
       "frequency dip, partial slowdown"},
      {experiment::StallSource::kVmConsolidation,
       millib::vm_consolidation_profile(sim::SimTime::seconds(8),
                                        sim::SimTime::millis(500), 0.7),
       "noisy-neighbour interference"},
  };

  std::cout << "\n";
  experiment::print_table1_header(std::cout);
  for (const auto& cause : causes) {
    for (const auto& [policy, mech] :
         {std::pair{PolicyKind::kTotalRequest, MechanismKind::kBlocking},
          std::pair{PolicyKind::kCurrentLoad, MechanismKind::kNonBlocking}}) {
      ExperimentConfig cfg = cluster_config(opt, policy, mech);
      cfg.tomcat_stall_source = cause.source;
      cfg.injector = cause.profile;
      cfg.injector.jitter = false;
      cfg.tracing = false;
      auto e = run_experiment(opt, std::move(cfg), false);
      std::cout << e->log().summary_row(
                       experiment::to_string(cause.source) + " / " +
                       lb::to_string(policy) + "+" + lb::to_string(mech))
                << "\n";
    }
  }
  std::cout << "\n(the instability is cause-agnostic: any transient capacity\n"
               " loss funnels requests under the stock policy/mechanism, and\n"
               " the remedies help regardless of the cause — §VIII's claim)\n";
  return 0;
}
