// Figure 11 (a-b): the same lb_value pathology under total_traffic — the
// candidate experiencing the millibottleneck keeps the lowest lb_value
// (byte counters only advance on completions, which its stall suppresses).
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Figure 11", "lb_value traces under total_traffic");

  auto e = run_experiment(opt,
      cluster_config(opt, PolicyKind::kTotalTraffic, MechanismKind::kBlocking));
  const auto w = e->config().metric_window;

  int tomcat = 0;
  sim::SimTime start, end;
  if (!first_flush(*e, tomcat, start, end)) {
    std::cout << "no millibottleneck observed — nothing to plot\n";
    return 1;
  }
  const auto zoom0 = start - sim::SimTime::millis(300);
  const auto zoom1 = end + sim::SimTime::millis(700);
  std::cout << "\nmillibottleneck on tomcat" << tomcat + 1 << " at "
            << start.to_string() << ".." << end.to_string() << "\n\n";

  std::cout << "(a) committed queue of the stalled tomcat (zoom):\n";
  experiment::print_panel(
      std::cout, "tomcat" + std::to_string(tomcat + 1),
      experiment::slice(e->tomcat_committed_series(tomcat), w, zoom0, zoom1));

  const auto& bal = e->apache(0).balancer();
  std::cout << "\n(b) lb_value (Apache1) relative to the window minimum "
               "(units: KB exchanged):\n  "
            << std::setw(9) << "t(s)";
  for (int t = 0; t < e->num_tomcats(); ++t)
    std::cout << std::setw(10) << ("tomcat" + std::to_string(t + 1));
  std::cout << "   (min-holder)\n";
  int stalled_is_min = 0, windows_in_stall = 0;
  for (sim::SimTime t = zoom0; t < zoom1; t += w) {
    const auto i = static_cast<std::size_t>(t.ns() / w.ns());
    double mn = 1e300;
    int mn_t = -1;
    std::vector<double> vals;
    for (int k = 0; k < e->num_tomcats(); ++k) {
      const double v = bal.lb_value_trace(k).max(i);
      vals.push_back(v);
      if (v < mn) {
        mn = v;
        mn_t = k;
      }
    }
    std::cout << "  " << std::fixed << std::setprecision(2) << std::setw(7)
              << t.to_seconds() << "s";
    for (double v : vals)
      std::cout << std::setw(10) << std::setprecision(0) << (v - mn) / 1000.0;
    std::cout << "   tomcat" << mn_t + 1 << "\n";
    if (t >= start && t < end) {
      ++windows_in_stall;
      if (mn_t == tomcat) ++stalled_is_min;
    }
  }

  std::cout << "\n";
  paper_vs_measured("stalled candidate holds the lowest lb_value",
                    "for the whole stall",
                    std::to_string(stalled_is_min) + "/" +
                        std::to_string(windows_in_stall) + " stall windows");
  return 0;
}
