// Figure 3: point-in-time response time of total_request and total_traffic
// during the first 10 seconds, millibottlenecks present. Expected shape:
// large fluctuations — second-scale spikes against a low baseline — showing
// that the (acceptable) average response time is not representative.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Figure 3",
         "point-in-time response time, total_request vs total_traffic, first 10 s");

  for (const auto policy :
       {PolicyKind::kTotalRequest, PolicyKind::kTotalTraffic}) {
    auto e = run_experiment(opt,
        cluster_config(opt, policy, MechanismKind::kBlocking));
    const auto w = e->config().metric_window;
    auto rt = experiment::series_avg(e->log().response_time_series(),
                                     e->num_metric_windows());
    rt = experiment::slice(rt, w, sim::SimTime::zero(), sim::SimTime::seconds(10));
    std::cout << "\n[" << lb::to_string(policy) << "]\n";
    experiment::print_panel(std::cout, "avg RT per 50ms (ms), 0-10s", rt);
    paper_vs_measured("average RT (whole run)", "below 100 ms but unstable",
                      std::to_string(e->log().mean_response_ms()) + " ms");
    paper_vs_measured("peak 50ms-avg RT in first 10 s", "second-scale spikes",
                      std::to_string(experiment::max_of(rt)) + " ms");
    maybe_csv(opt, "fig03_" + lb::to_string(policy) + ".csv", w, {"rt_avg_ms"},
              {rt});
  }
  return 0;
}
