// Microbenchmarks of the simulator hot paths (google-benchmark): event
// queue throughput, processor-sharing CPU churn, balancer decision latency,
// and end-to-end simulated-seconds-per-wall-second of the full testbed.
#include <benchmark/benchmark.h>

#include "experiment/experiment.h"
#include "lb/load_balancer.h"
#include "os/cpu.h"
#include "sim/simulation.h"

using namespace ntier;

static void BM_EventQueueScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    for (int i = 0; i < 10'000; ++i)
      s.after(sim::SimTime::micros(i), [] {});
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueueScheduleFire);

// Timer-reset pattern: every retransmit/timeout timer in the testbed is
// scheduled and then cancelled when the response lands first. The old
// priority_queue + unordered_set implementation paid a hash insert + erase
// per event here; the indexed heap cancels in O(1).
static void BM_EventQueueCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    for (int i = 0; i < 10'000; ++i) {
      s.after(sim::SimTime::micros(i), [&s, i] {
        const auto timeout =
            s.after(sim::SimTime::millis(3), [] { /* would retransmit */ });
        s.after(sim::SimTime::micros(200 + (i % 97)),
                [&s, timeout] { s.cancel(timeout); });
      });
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 30'000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

static void BM_CpuProcessorSharing(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    os::CpuResource cpu(s, 4);
    int done = 0;
    for (int i = 0; i < jobs; ++i)
      s.after(sim::SimTime::micros(13 * i),
              [&] { cpu.submit(sim::SimTime::micros(500), [&] { ++done; }); });
    s.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_CpuProcessorSharing)->Arg(100)->Arg(1000)->Arg(10000);

static void BM_BalancerAssign(benchmark::State& state) {
  sim::Simulation s;
  lb::LoadBalancer bal(s, 4, lb::make_policy(lb::PolicyKind::kCurrentLoad),
                       lb::make_acquirer(lb::MechanismKind::kNonBlocking), {});
  auto req = std::make_shared<proto::Request>();
  for (auto _ : state) {
    bal.assign(req, [&](int idx) { bal.on_response(idx, req); });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BalancerAssign);

static void BM_FullTestbedSimulatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    auto c = experiment::ExperimentConfig::scaled(0.1);
    c.duration = sim::SimTime::seconds(1);
    c.tracing = false;
    experiment::Experiment e(std::move(c));
    e.run();
    benchmark::DoNotOptimize(e.log().completed());
  }
  state.SetLabel("1 simulated second @ 10k req/s");
}
BENCHMARK(BM_FullTestbedSimulatedSecond)->Unit(benchmark::kMillisecond);
