// Figure 1: point-in-time response time under the total_request policy with
// all known millibottlenecks eliminated (pdflush effectively disabled, as
// the paper does by enlarging the dirty-page memory and flush interval).
// Expected shape: flat, low (≈3 ms) response time; negligible VLRT count.
#include "bench_common.h"

using namespace ntier;
using namespace ntier::bench;

int main(int argc, char** argv) {
  const auto opt = BenchOptions::parse(argc, argv);
  header("Figure 1", "point-in-time response time, total_request, no millibottlenecks");

  ExperimentConfig cfg = cluster_config(opt, PolicyKind::kTotalRequest,
                                        MechanismKind::kBlocking,
                                        /*millibottlenecks=*/false);
  // The paper's remedy: 4.8 GB dirty-page memory, 600 s flush interval.
  cfg.tomcat_pdflush.dirty_background_bytes = 4'800ull << 20;
  cfg.tomcat_pdflush.flush_interval = sim::SimTime::seconds(600);
  cfg.label = "fig01_baseline";
  auto e = run_experiment(opt, std::move(cfg));

  const auto windows = e->num_metric_windows();
  const auto rt_avg = experiment::series_avg(e->log().response_time_series(), windows);
  const auto rt_max = experiment::series_max(e->log().response_time_series(), windows);

  std::cout << "\n";
  experiment::print_panel(std::cout, "avg RT per 50ms (ms)", rt_avg);
  experiment::print_panel(std::cout, "max RT per 50ms (ms)", rt_max);

  std::cout << "\n";
  paper_vs_measured("average response time",
                    "3.2 ms",
                    std::to_string(e->log().mean_response_ms()) + " ms");
  paper_vs_measured("VLRT (>1 s) requests",
                    "13 of ~1.8M",
                    std::to_string(e->log().vlrt_count()) + " of " +
                        std::to_string(e->log().completed()));
  paper_vs_measured("point-in-time RT", "stable and low",
                    "peak 50ms-avg " +
                        std::to_string(experiment::max_of(rt_avg)) + " ms");

  maybe_csv(opt, "fig01_point_in_time_rt.csv", e->config().metric_window,
            {"rt_avg_ms", "rt_max_ms"}, {rt_avg, rt_max});
  return 0;
}
