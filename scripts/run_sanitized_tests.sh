#!/usr/bin/env bash
# Configure, build and run the whole test suite under sanitizers.
#
#   scripts/run_sanitized_tests.sh [sanitizers]
#
# `sanitizers` is a comma-separated -fsanitize= list; the default
# "address,undefined" catches the memory and UB classes the chaos tests are
# most likely to shake loose (the fault injector toggles capacity factors,
# drains waiter queues and crash/restarts servers mid-run). Uses its own
# build directory (build-asan/) so the normal build stays untouched.
set -euo pipefail

cd "$(dirname "$0")/.."
SAN="${1:-address,undefined}"
DIR="build-asan"

cmake -B "$DIR" -S . -DNTIER_SANITIZE="$SAN" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$DIR" -j "$(nproc)"
ctest --test-dir "$DIR" -j "$(nproc)" --output-on-failure
