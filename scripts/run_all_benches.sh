#!/usr/bin/env bash
# Run every reproduction/ablation/extension bench and collect the output.
#
#   scripts/run_all_benches.sh [--full] [output-file]
#
# --full runs the paper-scale (70 000 clients, 180 s) configurations.
#
# See also scripts/run_sanitized_tests.sh, which rebuilds the tree with
# -DNTIER_SANITIZE=address,undefined and runs the test suite (including the
# chaos matrix) under sanitizers.
set -euo pipefail

cd "$(dirname "$0")/.."
FLAG=""
OUT="bench_output.txt"
for arg in "$@"; do
  case "$arg" in
    --full) FLAG="--full" ;;
    *) OUT="$arg" ;;
  esac
done

if [ ! -d build/bench ]; then
  echo "build first: cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi

: > "$OUT"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b") $FLAG" | tee -a "$OUT"
  if [[ "$(basename "$b")" == bench_micro_kernel ]]; then
    "$b" --benchmark_min_time=0.2 2>&1 | tee -a "$OUT"
  else
    "$b" $FLAG 2>&1 | tee -a "$OUT"
  fi
  echo | tee -a "$OUT"
done
echo "wrote $OUT"
