#!/usr/bin/env bash
# Run every reproduction/ablation/extension bench and collect the output.
#
#   scripts/run_all_benches.sh [--full] [--json] [output-file]
#
# --full runs the paper-scale (70 000 clients, 180 s) configurations.
# --json additionally collects one JSON result row per experiment run
#        (mean/P99/P99.9 response time, VLRT counts, wall-clock) into
#        BENCH_results.json — each bench appends rows via its --json flag.
#
# See also scripts/run_sanitized_tests.sh, which rebuilds the tree with
# -DNTIER_SANITIZE=address,undefined and runs the test suite (including the
# chaos matrix) under sanitizers.
set -euo pipefail

cd "$(dirname "$0")/.."
FLAG=""
JSON=0
OUT="bench_output.txt"
for arg in "$@"; do
  case "$arg" in
    --full) FLAG="--full" ;;
    --json) JSON=1 ;;
    *) OUT="$arg" ;;
  esac
done

if [ ! -d build/bench ]; then
  echo "build first: cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi

ROWS=""
if [ "$JSON" = 1 ]; then
  ROWS="$(mktemp)"
  trap 'rm -f "$ROWS"' EXIT
fi

: > "$OUT"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b") $FLAG" | tee -a "$OUT"
  if [[ "$(basename "$b")" == bench_micro_kernel ]]; then
    "$b" --benchmark_min_time=0.2 2>&1 | tee -a "$OUT"
  elif [ "$JSON" = 1 ]; then
    "$b" $FLAG --json "$ROWS" 2>&1 | tee -a "$OUT"
  else
    "$b" $FLAG 2>&1 | tee -a "$OUT"
  fi
  echo | tee -a "$OUT"
done
echo "wrote $OUT"

if [ "$JSON" = 1 ]; then
  # Assemble the per-run rows (one JSON object per line) into one document.
  {
    printf '{"generated_by":"scripts/run_all_benches.sh","full":%s,"results":[\n' \
      "$([ -n "$FLAG" ] && echo true || echo false)"
    sed '$!s/$/,/' "$ROWS"
    printf ']}\n'
  } > BENCH_results.json
  echo "wrote BENCH_results.json ($(wc -l < "$ROWS") result rows)"
fi
