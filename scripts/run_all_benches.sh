#!/usr/bin/env bash
# Run every reproduction/ablation/extension bench and collect the output.
#
#   scripts/run_all_benches.sh [--full] [--json] [--sweep-seeds N] [--jobs J] [output-file]
#
# --full runs the paper-scale (70 000 clients, 180 s) configurations.
# --json additionally collects one JSON result row per experiment run
#        (mean/P99/P99.9 response time, VLRT counts, wall-clock) into
#        BENCH_results.json — each bench appends rows via its --json flag.
# --sweep-seeds N runs the sweep-capable benches (Table I, the probe-policy
#        extension) N times per row with derived per-replica seeds; their
#        table rows and JSON rows then carry mean +- 95% CI columns
#        (mean_ms_ci95, p99_ms_ci95, ...) instead of single-seed points.
# --jobs J runs the sweep replicas on J worker threads; the output bytes
#        are identical for every J.
#
# See also scripts/run_sanitized_tests.sh, which rebuilds the tree with
# -DNTIER_SANITIZE=address,undefined and runs the test suite (including the
# chaos matrix) under sanitizers.
set -euo pipefail

cd "$(dirname "$0")/.."
FLAG=""
SWEEP_FLAGS=""
JSON=0
OUT="bench_output.txt"
PREV=""
for arg in "$@"; do
  case "$PREV" in
    --sweep-seeds) SWEEP_FLAGS="$SWEEP_FLAGS --sweep-seeds $arg"; PREV=""; continue ;;
    --jobs) SWEEP_FLAGS="$SWEEP_FLAGS --jobs $arg"; PREV=""; continue ;;
  esac
  case "$arg" in
    --full) FLAG="--full" ;;
    --json) JSON=1 ;;
    --sweep-seeds|--jobs) PREV="$arg" ;;
    *) OUT="$arg" ;;
  esac
done
if [ -n "$PREV" ]; then
  echo "missing value for $PREV" >&2
  exit 1
fi

if [ ! -d build/bench ]; then
  echo "build first: cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi

ROWS=""
if [ "$JSON" = 1 ]; then
  ROWS="$(mktemp)"
  trap 'rm -f "$ROWS"' EXIT
fi

: > "$OUT"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b") $FLAG" | tee -a "$OUT"
  if [[ "$(basename "$b")" == bench_micro_kernel ]]; then
    "$b" --benchmark_min_time=0.2 2>&1 | tee -a "$OUT"
  elif [ "$JSON" = 1 ]; then
    "$b" $FLAG $SWEEP_FLAGS --json "$ROWS" 2>&1 | tee -a "$OUT"
  else
    "$b" $FLAG $SWEEP_FLAGS 2>&1 | tee -a "$OUT"
  fi
  echo | tee -a "$OUT"
done
echo "wrote $OUT"

if [ "$JSON" = 1 ]; then
  # Assemble the per-run rows (one JSON object per line) into one document.
  {
    printf '{"generated_by":"scripts/run_all_benches.sh","full":%s,"results":[\n' \
      "$([ -n "$FLAG" ] && echo true || echo false)"
    sed '$!s/$/,/' "$ROWS"
    printf ']}\n'
  } > BENCH_results.json
  echo "wrote BENCH_results.json ($(wc -l < "$ROWS") result rows)"
fi
