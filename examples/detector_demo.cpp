// Millibottleneck diagnosis demo: run the unstable configuration, then
// apply both detectors offline — the paper's queue-spike methodology
// (§III-B) and the throughput-dip correlation in the spirit of Wang et
// al. [27] — and check them against the ground-truth pdflush episodes the
// simulator knows about.
#include <iomanip>
#include <iostream>

#include "experiment/experiment.h"
#include "experiment/report.h"
#include "millib/detector.h"

using namespace ntier;

namespace {

metrics::GaugeSeries committed_gauge(experiment::Experiment& e, int tomcat) {
  metrics::GaugeSeries gauge(e.config().metric_window);
  const auto series = e.tomcat_committed_series(tomcat);
  for (std::size_t i = 0; i < series.size(); ++i)
    gauge.set(e.config().metric_window * static_cast<std::int64_t>(i),
              series[i]);
  gauge.finish(e.config().duration);
  return gauge;
}

}  // namespace

int main() {
  experiment::ExperimentConfig cfg = experiment::ExperimentConfig::scaled(0.1);
  cfg.duration = sim::SimTime::seconds(20);
  cfg.policy = lb::PolicyKind::kTotalRequest;
  cfg.mechanism = lb::MechanismKind::kBlocking;
  std::cout << "running: " << experiment::describe(cfg) << "\n\n";
  experiment::Experiment e(cfg);
  e.run();

  // Ground truth: every pdflush episode on every Tomcat node.
  std::vector<std::pair<sim::SimTime, sim::SimTime>> truth;
  for (int t = 0; t < e.num_tomcats(); ++t)
    for (const auto& iv : e.flush_intervals(t)) truth.push_back(iv);
  std::cout << "ground truth: " << truth.size() << " pdflush episodes\n\n";

  const auto slack = sim::SimTime::millis(1100);

  // Detector 1: queue spikes on each Tomcat's committed-queue gauge.
  millib::MillibottleneckDetector spike_detector;
  int spikes = 0, spikes_matched = 0;
  for (int t = 0; t < e.num_tomcats(); ++t) {
    const auto gauge = committed_gauge(e, t);
    for (const auto& ep : spike_detector.detect(gauge)) {
      ++spikes;
      if (millib::overlaps_any(ep, truth, slack)) ++spikes_matched;
      std::cout << "  [queue-spike]     tomcat" << t + 1 << "  "
                << ep.start.to_string() << " .. " << ep.end.to_string()
                << "  peak " << std::fixed << std::setprecision(0) << ep.peak
                << "\n";
    }
  }

  // Detector 2: per-Tomcat throughput dips correlated with queue growth.
  std::cout << "\n";
  millib::ThroughputDipDetector dip_detector;
  int dips = 0, dips_matched = 0;
  for (int t = 0; t < e.num_tomcats(); ++t) {
    const auto gauge = committed_gauge(e, t);
    for (const auto& ep :
         dip_detector.detect(e.tomcat(t).completion_trace(), gauge)) {
      ++dips;
      if (millib::overlaps_any(ep, truth, slack)) ++dips_matched;
      std::cout << "  [throughput-dip]  tomcat" << t + 1 << "  "
                << ep.start.to_string() << " .. " << ep.end.to_string()
                << "  queue " << std::fixed << std::setprecision(0) << ep.peak
                << "\n";
    }
  }

  std::cout << "\nqueue-spike detector:    " << spikes_matched << "/" << spikes
            << " detected episodes overlap a real flush\n"
            << "throughput-dip detector: " << dips_matched << "/" << dips
            << " detected episodes overlap a real flush\n"
            << "\n(both methodologies find the millibottlenecks without any\n"
            << " knowledge of pdflush — the paper's point that queue spikes\n"
            << " are a reliable, cause-agnostic diagnosis signal)\n";
  return 0;
}
