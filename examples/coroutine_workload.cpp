// The simulation kernel's coroutine API: build a custom mini-testbed —
// one balancer, four backend CPUs, a closed-loop client population — as
// straight-line coroutine code instead of callback chains. A stall is
// injected into backend 0 halfway through; watch the current_load policy
// route around it.
#include <iomanip>
#include <iostream>
#include <vector>

#include "lb/load_balancer.h"
#include "millib/injector.h"
#include "os/cpu.h"
#include "sim/process.h"

using namespace ntier;
using sim::SimTime;

namespace {

struct MiniCluster {
  explicit MiniCluster(sim::Simulation& s) : simu(s) {
    for (int i = 0; i < 4; ++i)
      cpus.push_back(std::make_unique<os::CpuResource>(s, 1));
    balancer = std::make_unique<lb::LoadBalancer>(
        s, 4, lb::make_policy(lb::PolicyKind::kCurrentLoad),
        lb::make_acquirer(lb::MechanismKind::kNonBlocking),
        lb::BalancerConfig{});
  }

  sim::Simulation& simu;
  std::vector<std::unique_ptr<os::CpuResource>> cpus;
  std::unique_ptr<lb::LoadBalancer> balancer;
  std::vector<int> served = std::vector<int>(4, 0);
  int errors = 0;
};

/// One closed-loop client as a coroutine: think, pick a backend through the
/// balancer, run 2 ms of work on it, repeat.
sim::Process client(MiniCluster& cluster, sim::Rng rng) {
  for (;;) {
    co_await sim::delay(cluster.simu,
                        rng.exponential_time(SimTime::millis(20)));

    auto req = std::make_shared<proto::Request>();
    sim::Completion<int> assigned;
    cluster.balancer->assign(req, assigned.callback());
    const int backend = co_await assigned;
    if (backend < 0) {
      ++cluster.errors;
      continue;
    }

    sim::Completion<void> done;
    cluster.cpus[static_cast<std::size_t>(backend)]->submit(SimTime::millis(2),
                                                            done.callback());
    co_await done;
    cluster.balancer->on_response(backend, req);
    ++cluster.served[static_cast<std::size_t>(backend)];
  }
}

/// The reporter is a process too: print shares once a second.
sim::Process reporter(MiniCluster& cluster) {
  std::vector<int> last(4, 0);
  for (;;) {
    co_await sim::delay(cluster.simu, SimTime::seconds(1));
    std::cout << "  t=" << std::setw(2) << cluster.simu.now().to_seconds()
              << "s  served/s:";
    for (int b = 0; b < 4; ++b) {
      std::cout << "  cpu" << b << "="
                << cluster.served[static_cast<std::size_t>(b)] -
                       last[static_cast<std::size_t>(b)];
      last[static_cast<std::size_t>(b)] =
          cluster.served[static_cast<std::size_t>(b)];
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  sim::Simulation simu(7);
  MiniCluster cluster(simu);

  std::cout << "coroutine mini-cluster: 40 clients, 4 backends, current_load\n"
            << "backend 0 stalls from 4s to 6s (injected millibottleneck)\n\n";

  for (int c = 0; c < 40; ++c) client(cluster, simu.rng().fork());
  reporter(cluster);

  millib::InjectorConfig stall;
  stall.initial_offset = SimTime::seconds(4);
  stall.duration = SimTime::seconds(2);
  stall.severity = 1.0;
  stall.max_episodes = 1;
  millib::CapacityStallInjector injector(simu, *cluster.cpus[0], stall);

  simu.run_until(SimTime::seconds(10));

  std::cout << "\ntotals:";
  for (int b = 0; b < 4; ++b)
    std::cout << "  cpu" << b << "=" << cluster.served[static_cast<std::size_t>(b)];
  std::cout << "  errors=" << cluster.errors << "\n"
            << "\n(backend 0's share collapses during the stall and recovers\n"
            << " after — ~15 lines of coroutine code per actor, no callbacks)\n";
  return 0;
}
