// Runs every built-in policy (including the extension baselines round_robin
// and two_choices) under identical millibottleneck conditions and prints a
// Table-I-style comparison — the "which policy should I run?" answer a
// downstream user wants from this library.
#include <iostream>

#include "experiment/experiment.h"
#include "experiment/report.h"

using namespace ntier;

int main() {
  const std::vector<std::pair<lb::PolicyKind, lb::MechanismKind>> combos = {
      {lb::PolicyKind::kTotalRequest, lb::MechanismKind::kBlocking},
      {lb::PolicyKind::kTotalTraffic, lb::MechanismKind::kBlocking},
      {lb::PolicyKind::kRoundRobin, lb::MechanismKind::kBlocking},
      {lb::PolicyKind::kRandom, lb::MechanismKind::kBlocking},
      {lb::PolicyKind::kTwoChoices, lb::MechanismKind::kBlocking},
      {lb::PolicyKind::kCurrentLoad, lb::MechanismKind::kBlocking},
      {lb::PolicyKind::kTotalRequest, lb::MechanismKind::kNonBlocking},
      {lb::PolicyKind::kCurrentLoad, lb::MechanismKind::kNonBlocking},
  };

  std::cout << "All policies, 4A/4T/1M, millibottlenecks on (20 s @ ~10 k req/s)\n\n";
  experiment::print_table1_header(std::cout);
  for (const auto& [policy, mech] : combos) {
    experiment::ExperimentConfig c = experiment::ExperimentConfig::scaled(0.1);
    c.duration = sim::SimTime::seconds(20);
    c.policy = policy;
    c.mechanism = mech;
    c.tracing = false;  // keep the comparison fast
    experiment::Experiment e(std::move(c));
    e.run();
    const std::string label =
        lb::to_string(policy) + " + " + lb::to_string(mech);
    std::cout << e.log().summary_row(label) << "\n";
  }
  std::cout << "\n(lower avg RT and %VLRT are better; current_load and the\n"
               " modified get_endpoint both remove the scheduling instability)\n";
  return 0;
}
