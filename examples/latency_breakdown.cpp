// Where does the time go? Runs the stock (unstable) and remedied
// configurations with full request records and prints the per-hop latency
// breakdown: under millibottlenecks the *front* of the path (SYN
// retransmissions, workers parked in get_endpoint) dwarfs the backend work
// — the amplification the paper attributes to the scheduling instability,
// seen from inside a single request.
#include <iostream>

#include "experiment/experiment.h"
#include "metrics/breakdown.h"

using namespace ntier;

namespace {

void run_and_print(const char* title, lb::PolicyKind policy,
                   lb::MechanismKind mech) {
  experiment::ExperimentConfig cfg = experiment::ExperimentConfig::scaled(0.1);
  cfg.duration = sim::SimTime::seconds(15);
  cfg.policy = policy;
  cfg.mechanism = mech;
  cfg.keep_records = true;
  cfg.tracing = false;
  experiment::Experiment e(cfg);
  e.run();

  metrics::LatencyBreakdown breakdown;
  breakdown.add_all(e.log().records());
  std::cout << "[" << title << "]  mean RT " << e.log().mean_response_ms()
            << " ms\n";
  breakdown.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Per-hop latency decomposition, millibottlenecks present\n\n";
  run_and_print("stock: total_request + blocking get_endpoint",
                lb::PolicyKind::kTotalRequest, lb::MechanismKind::kBlocking);
  run_and_print("remedy: current_load + modified get_endpoint",
                lb::PolicyKind::kCurrentLoad, lb::MechanismKind::kNonBlocking);
  std::cout << "(the backend segment barely moves between the two runs; the\n"
               " entire degradation lives in connect + balancing — the\n"
               " scheduling instability, not the millibottleneck itself)\n";
  return 0;
}
