// Quickstart: build the paper's 4-Apache / 4-Tomcat / 1-MySQL testbed, run
// 20 simulated seconds of RUBBoS traffic with millibottlenecks enabled, and
// print the client-side latency summary.
//
//   $ ./quickstart [policy] [mechanism]
//     policy:    total_request | total_traffic | current_load (default)
//     mechanism: blocking | modified (default)
#include <cstring>
#include <iostream>

#include "experiment/experiment.h"
#include "experiment/report.h"

using namespace ntier;

int main(int argc, char** argv) {
  experiment::ExperimentConfig config = experiment::ExperimentConfig::scaled(0.1);
  config.label = "quickstart";
  config.duration = sim::SimTime::seconds(20);
  config.policy = lb::PolicyKind::kCurrentLoad;
  config.mechanism = lb::MechanismKind::kNonBlocking;

  if (argc > 1) {
    const std::string p = argv[1];
    if (p == "total_request") config.policy = lb::PolicyKind::kTotalRequest;
    else if (p == "total_traffic") config.policy = lb::PolicyKind::kTotalTraffic;
    else if (p == "current_load") config.policy = lb::PolicyKind::kCurrentLoad;
    else { std::cerr << "unknown policy " << p << "\n"; return 1; }
  }
  if (argc > 2) {
    const std::string m = argv[2];
    if (m == "blocking") config.mechanism = lb::MechanismKind::kBlocking;
    else if (m == "modified") config.mechanism = lb::MechanismKind::kNonBlocking;
    else { std::cerr << "unknown mechanism " << m << "\n"; return 1; }
  }

  std::cout << "Running: " << experiment::describe(config) << "\n\n";
  experiment::Experiment e(config);
  e.run();

  const auto& log = e.log();
  std::cout << "completed requests : " << log.completed() << "\n"
            << "mean response time : " << log.mean_response_ms() << " ms\n"
            << "p99 / p99.9        : " << log.percentile_ms(99) << " / "
            << log.percentile_ms(99.9) << " ms\n"
            << "VLRT (>1s)         : " << 100.0 * log.vlrt_fraction() << " %\n"
            << "normal (<10ms)     : " << 100.0 * log.normal_fraction() << " %\n"
            << "connection drops   : " << e.clients().connection_drops() << "\n\n";

  std::cout << "Tomcat-tier queue (committed requests, 50 ms windows):\n";
  experiment::print_panel(std::cout, "tomcat tier", e.tomcat_tier_queue());
  experiment::print_panel(std::cout, "apache tier", e.apache_tier_queue());
  return 0;
}
