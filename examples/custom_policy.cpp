// Extending the library: implement a *custom* load-balancing policy against
// the public LbPolicy interface and run it through the full testbed. The
// example policy is "slow-start current load": like current_load, but a
// worker returning from Busy is eased back in (its lb_value is temporarily
// padded) instead of immediately receiving a burst — the paper's §V remedy
// plus a guard against the recovery-period stampede (phase 3 of Fig. 6(c)).
#include <iostream>
#include <memory>

#include "experiment/experiment.h"
#include "experiment/report.h"

using namespace ntier;

namespace {

class SlowStartCurrentLoadPolicy final : public lb::LbPolicy {
 public:
  lb::PolicyKind kind() const override { return lb::PolicyKind::kCurrentLoad; }

  void on_assigned(lb::WorkerRecord& rec, const proto::Request&) override {
    rec.lb_value += 1.0;
  }

  void on_completed(lb::WorkerRecord& rec, const proto::Request&) override {
    // Decay towards the true outstanding count: the pad added after a Busy
    // episode wears off as the worker proves itself.
    const double target = static_cast<double>(rec.outstanding);
    rec.lb_value = std::max(target, rec.lb_value - 1.0 - kDecay);
  }

  int pick(const std::vector<lb::WorkerRecord>& records,
           const std::vector<int>& eligible, sim::Rng& rng) override {
    // Pad workers that just failed acquisition (consecutive_failures > 0):
    // they are likely mid-millibottleneck even if nominally Available.
    int best = -1;
    double best_v = 0;
    for (int idx : eligible) {
      const auto& r = records[static_cast<std::size_t>(idx)];
      const double v = r.lb_value + kPad * r.consecutive_failures;
      if (best < 0 || v < best_v) {
        best = idx;
        best_v = v;
      }
    }
    (void)rng;
    return best;
  }

 private:
  static constexpr double kDecay = 0.25;
  static constexpr double kPad = 8.0;
};

}  // namespace

int main() {
  // The Experiment harness builds policies from PolicyKind, so for a custom
  // policy we assemble the testbed's front-end balancer directly — this is
  // exactly what ApacheServer does internally.
  sim::Simulation simu(7);
  lb::BalancerConfig bcfg;
  lb::LoadBalancer balancer(simu, 4, std::make_unique<SlowStartCurrentLoadPolicy>(),
                            lb::make_acquirer(lb::MechanismKind::kNonBlocking),
                            bcfg);

  // Drive it open-loop: 2 000 assignments, with worker 0 stalled (responses
  // withheld) between t=1s and t=1.3s.
  std::vector<int> assigned(4, 0);
  int errors = 0;
  std::vector<std::pair<int, proto::RequestPtr>> stalled;
  auto rng = simu.rng().fork();
  for (int i = 0; i < 2000; ++i) {
    simu.after(sim::SimTime::from_millis(i * 2.0), [&, i] {
      auto req = std::make_shared<proto::Request>();
      req->id = static_cast<std::uint64_t>(i);
      balancer.assign(req, [&, req](int idx) {
        if (idx < 0) {
          ++errors;
          return;
        }
        ++assigned[static_cast<std::size_t>(idx)];
        const auto now = simu.now();
        const bool worker0_stalled = idx == 0 &&
                                     now >= sim::SimTime::seconds(1) &&
                                     now < sim::SimTime::from_millis(1300);
        if (worker0_stalled) {
          stalled.emplace_back(idx, req);  // response withheld until recovery
        } else {
          simu.after(sim::SimTime::from_millis(rng.uniform(0.5, 1.5)),
                     [&, idx, req] { balancer.on_response(idx, req); });
        }
      });
    });
  }
  simu.after(sim::SimTime::from_millis(1300), [&] {
    for (auto& [idx, req] : stalled) balancer.on_response(idx, req);
    stalled.clear();
  });
  simu.run();

  std::cout << "slow-start current_load, worker0 stalled 1.0s-1.3s\n";
  for (int t = 0; t < 4; ++t)
    std::cout << "  worker" << t << " assigned " << assigned[static_cast<std::size_t>(t)]
              << " requests\n";
  std::cout << "  balancer errors: " << errors << "\n";
  std::cout << "\nworker0 received "
            << 100.0 * assigned[0] / 2000.0
            << "% of traffic despite the stall (fair share would be 25%).\n";
  return 0;
}
