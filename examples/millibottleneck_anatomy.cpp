// Walks through the anatomy of one millibottleneck on a single node, using
// the OS substrate directly (no n-tier stack): dirty pages accumulate from
// log writes, pdflush kicks in, the disk saturates (iowait), the foreground
// CPU starves, and a queue of CPU jobs builds and drains — the causal chain
// of paper §III-B, one stage at a time.
#include <iomanip>
#include <iostream>

#include "metrics/sampler.h"
#include "os/node.h"
#include "sim/simulation.h"

using namespace ntier;

int main() {
  sim::Simulation simu(1);

  os::NodeConfig nc;
  nc.name = "tomcat1";
  nc.cores = 4;
  nc.disk_bytes_per_second = 100.0 * (1 << 20);
  nc.pdflush.flush_interval = sim::SimTime::seconds(5);
  nc.pdflush.cpu_stall_severity = 0.97;
  os::Node node(simu, nc);

  // A synthetic foreground load: 2 500 "requests"/s of 0.55 ms CPU each,
  // every one of which appends ~1.2 KiB of log data.
  auto rng = simu.rng().fork();
  int queued = 0;
  std::function<void()> arrival = [&] {
    ++queued;
    node.cpu().submit(sim::SimTime::from_millis(0.55), [&] {
      --queued;
      node.page_cache().write_dirty(1200);
    });
    simu.after(rng.exponential_time(sim::SimTime::from_millis(0.4)), arrival);
  };
  simu.after(sim::SimTime::zero(), arrival);

  metrics::PeriodicSampler cpu_util(simu, sim::SimTime::millis(50), [&] {
    return node.cpu().probe_utilisation().combined();
  });
  metrics::PeriodicSampler iowait(simu, sim::SimTime::millis(50), [&] {
    return node.disk().probe_busy_fraction();
  });
  metrics::PeriodicSampler queue(simu, sim::SimTime::millis(50),
                                 [&] { return static_cast<double>(queued); });

  simu.run_until(sim::SimTime::seconds(12));
  node.page_cache().finish_trace();

  std::cout << "One node, 12 s, pdflush every 5 s\n";
  std::cout << "time   cpu%   iowait%  queued  dirty(MB)  flushing\n";
  const auto& flushes = node.pdflush().episodes();
  for (std::size_t w = 0; w < cpu_util.series().num_windows(); w += 4) {
    const auto t = sim::SimTime::millis(50) * static_cast<std::int64_t>(w);
    bool flushing = false;
    for (const auto& f : flushes)
      if (t >= f.start && t < f.end) flushing = true;
    std::cout << std::fixed << std::setprecision(2) << std::setw(5)
              << t.to_seconds() << "  " << std::setw(5)
              << 100 * cpu_util.series().avg(w) << "  " << std::setw(7)
              << 100 * iowait.series().avg(w) << "  " << std::setw(6)
              << queue.series().avg(w) << "  " << std::setw(9)
              << node.page_cache().trace().time_avg(w) / (1 << 20) << "  "
              << (flushing ? "  <== millibottleneck" : "") << "\n";
  }

  std::cout << "\npdflush episodes:\n";
  for (const auto& f : flushes)
    std::cout << "  " << f.start.to_string() << " .. " << f.end.to_string()
              << "  (" << f.bytes / 1024 << " KiB, "
              << (f.end - f.start).to_millis() << " ms stall)\n";
  return 0;
}
