#include "sim/simulation.h"

#include <stdexcept>

namespace ntier::sim {

EventId Simulation::at(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    throw std::logic_error("Simulation::at: scheduling in the past (" +
                           when.to_string() + " < " + now_.to_string() + ")");
  }
  return events_.push(when, std::move(fn));
}

std::uint64_t Simulation::run_until(SimTime until) {
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!events_.empty() && !stop_requested_) {
    if (events_.next_time() > until) break;
    auto [at, fn] = events_.pop();
    now_ = at;
    fn();
    ++n;
    ++executed_;
  }
  // Advance the clock to the horizon even if we drained early, so
  // back-to-back run_until calls observe monotonic time.
  if (until != SimTime::max() && now_ < until && !stop_requested_) now_ = until;
  return n;
}

}  // namespace ntier::sim
