#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "sim/time.h"

namespace ntier::sim {

/// Deterministic random source for the simulator. Every stochastic component
/// takes an Rng (or forks one from a parent) so that a run is fully
/// reproducible from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// splitmix64 finaliser: a bijective avalanche mix. Used to turn nearby /
  /// weakly mixed 64-bit values (raw engine draws, seed+index pairs) into
  /// well-separated seeds for child streams.
  static std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  /// Derive an independent child stream; used to give each client / server /
  /// injector its own stream so component insertion order does not perturb
  /// other components' draws. The raw mt19937_64 draw is mixed through
  /// splitmix64 before seeding: mt19937_64's seeding of its 19937-bit state
  /// from a single word is weak enough that correlated/poorly mixed seed
  /// words give observably correlated child streams. Determinism is
  /// preserved (same parent seed => same children).
  Rng fork() { return Rng(mix64(engine_())); }

  /// Deterministic per-replica seed derivation for multi-seed sweeps:
  /// independent of thread scheduling, collision-resistant across run
  /// indices, and distinct from the base stream itself.
  static std::uint64_t derive_seed(std::uint64_t base_seed,
                                   std::uint64_t index) {
    return mix64(base_seed + 0x632BE59BD9B4E019ull * (index + 1));
  }

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform in [0, 1).
  double uniform01() {
    return std::generate_canonical<double, 53>(engine_);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Exponential inter-arrival / think time as a SimTime.
  SimTime exponential_time(SimTime mean) {
    return SimTime::from_seconds(exponential(mean.to_seconds()));
  }

  /// Log-normal parameterised by the mean and sigma of the *result*
  /// distribution (not of the underlying normal). Used for service-demand
  /// jitter.
  double lognormal_mean(double mean, double cv) {
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::lognormal_distribution<double>(mu, std::sqrt(sigma2))(engine_);
  }

  bool bernoulli(double p) { return uniform01() < p; }

  /// Draw an index from a discrete distribution given (unnormalised) weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Zipf-distributed integer in [0, n) with exponent s (popularity skew for
  /// query-cache modelling).
  std::size_t zipf(std::size_t n, double s);

 private:
  std::mt19937_64 engine_;
};

}  // namespace ntier::sim
