#include "sim/rng.h"

#include <cmath>
#include <stdexcept>

namespace ntier::sim {

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("weighted_index: empty weights");
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) throw std::invalid_argument("weighted_index: non-positive total weight");
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;  // floating-point edge
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("zipf: n must be positive");
  // Inverse-CDF via the harmonic normaliser; n is small (catalogue of query
  // templates), so a linear scan is fine and exact.
  double h = 0;
  for (std::size_t i = 1; i <= n; ++i) h += 1.0 / std::pow(static_cast<double>(i), s);
  double x = uniform01() * h;
  for (std::size_t i = 1; i <= n; ++i) {
    x -= 1.0 / std::pow(static_cast<double>(i), s);
    if (x < 0) return i - 1;
  }
  return n - 1;
}

}  // namespace ntier::sim
