#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace ntier::sim {

/// Identifier of a scheduled event; usable to cancel it before it fires.
/// Encodes (generation << 32 | slot); generations start at 1, so no valid
/// id is ever 0.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Min-heap of timed callbacks. Ties are broken by scheduling order (FIFO
/// among events at the same instant) so runs are deterministic.
///
/// Implementation: an index-tracked 4-ary heap of small POD nodes
/// {time, sequence, slot} over a generation-tagged slot table that owns the
/// callbacks. Cancellation is O(1) (disarm the slot, release the closure)
/// and lazy in the heap: dead nodes are skipped when they surface at the
/// top. No per-event hashing anywhere on the push/cancel/pop path — this is
/// the simulator's hottest loop (every request touches it a dozen times),
/// and the previous priority_queue + two unordered_sets paid a hash lookup
/// per operation.
class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at`. Returns an id for cancellation.
  EventId push(SimTime at, std::function<void()> fn);

  /// Cancel a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed. O(1).
  bool cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  bool empty() const { return live_ == 0; }

  std::size_t size() const { return live_; }

  /// Time of the earliest live event; SimTime::max() when empty.
  SimTime next_time() const;

  /// Pop the earliest live event. Precondition: !empty().
  struct Fired {
    SimTime at;
    std::function<void()> fn;
  };
  Fired pop();

  /// Total events ever scheduled (stats / microbench instrumentation).
  std::uint64_t total_scheduled() const { return scheduled_; }

 private:
  static constexpr std::size_t kArity = 4;

  /// What moves during sifts: 24 bytes, no std::function traffic.
  struct Node {
    SimTime at;
    std::uint64_t seq = 0;  // push order; FIFO tie-break at equal times
    std::uint32_t slot = 0;
  };

  /// Owns the callback; `gen` tags the slot's current incarnation so stale
  /// EventIds from earlier occupants of a reused slot never resolve. A
  /// slot's generation only grows (32-bit: wraps after 4G reuses of one
  /// slot, far beyond any run), so ids are unique for the queue's lifetime.
  struct Slot {
    std::function<void()> fn;
    std::uint32_t gen = 1;
    bool armed = false;  // scheduled, not yet cancelled or fired
  };

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  static bool before(const Node& a, const Node& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i) const;
  /// Remove heap_[0], restoring the heap property.
  void remove_top() const;
  /// Return a slot to the free list, bumping its generation.
  void release_slot(std::uint32_t slot) const;
  /// Drop cancelled nodes from the top until a live one (or empty) surfaces.
  void prune_top() const;

  // Mutable: next_time() is logically const but may shed cancelled tops.
  mutable std::vector<Node> heap_;
  mutable std::vector<Slot> slots_;
  mutable std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;       // armed events (heap may hold more nodes)
  std::uint64_t scheduled_ = 0;
};

}  // namespace ntier::sim
