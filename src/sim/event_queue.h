#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace ntier::sim {

/// Identifier of a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Min-heap of timed callbacks. Ties are broken by scheduling order (FIFO
/// among events at the same instant) so runs are deterministic.
/// Cancellation is lazy: cancelled ids are skipped at pop time.
class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at`. Returns an id for cancellation.
  EventId push(SimTime at, std::function<void()> fn);

  /// Cancel a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  bool empty() const { return live_.empty(); }

  std::size_t size() const { return live_.size(); }

  /// Time of the earliest live event; SimTime::max() when empty.
  SimTime next_time() const;

  /// Pop the earliest live event. Precondition: !empty().
  struct Fired {
    SimTime at;
    std::function<void()> fn;
  };
  Fired pop();

  /// Total events ever scheduled (stats / microbench instrumentation).
  std::uint64_t total_scheduled() const { return next_id_ - 1; }

 private:
  struct Entry {
    SimTime at;
    EventId id = kInvalidEventId;
    // shared_ptr-free: the callback lives in the heap entry itself.
    mutable std::function<void()> fn;

    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;  // FIFO among simultaneous events
    }
  };

  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  mutable std::unordered_set<EventId> cancelled_;  // cancelled, still in heap
  std::unordered_set<EventId> live_;               // in heap, not cancelled
  EventId next_id_ = 1;
};

}  // namespace ntier::sim
