#include "sim/time.h"

#include <cinttypes>
#include <cstdio>

namespace ntier::sim {

std::string SimTime::to_string() const {
  char buf[64];
  const std::int64_t abs_ns = ns_ < 0 ? -ns_ : ns_;
  if (abs_ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds());
  } else if (abs_ns >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_millis());
  } else if (abs_ns >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", static_cast<double>(ns_) * 1e-3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns_);
  }
  return buf;
}

}  // namespace ntier::sim
