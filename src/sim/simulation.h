#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace ntier::sim {

/// The discrete-event simulation driver: a clock plus an event queue.
///
/// All model components hold a `Simulation&` and express behaviour as
/// callbacks scheduled relative to `now()`. A run is deterministic given the
/// seed: the queue breaks ties FIFO and every random draw flows from the
/// root Rng.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedule at an absolute simulated time (must be >= now()).
  EventId at(SimTime when, std::function<void()> fn);

  /// Schedule after a relative delay (>= 0).
  EventId after(SimTime delay, std::function<void()> fn) {
    return at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event; false if it already fired or was cancelled.
  bool cancel(EventId id) { return events_.cancel(id); }

  /// Run until the queue drains or the clock passes `until`, whichever comes
  /// first. Events at exactly `until` still fire. Returns the number of
  /// events executed.
  std::uint64_t run_until(SimTime until);

  /// Run until the queue is empty.
  std::uint64_t run() { return run_until(SimTime::max()); }

  /// Request that the run loop stop after the current event.
  void stop() { stop_requested_ = true; }

  bool pending() const { return !events_.empty(); }
  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_scheduled() const { return events_.total_scheduled(); }

  /// Root random source. Components should fork() their own streams.
  Rng& rng() { return rng_; }

 private:
  EventQueue events_;
  SimTime now_;
  Rng rng_;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace ntier::sim
