#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ntier::sim {

EventId EventQueue::push(SimTime at, std::function<void()> fn) {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.armed = true;

  heap_.push_back(Node{at, ++scheduled_, slot});
  sift_up(heap_.size() - 1);
  ++live_;
  return make_id(slot, s.gen);
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return false;  // never existed
  Slot& s = slots_[slot];
  if (s.gen != gen_of(id) || !s.armed) return false;  // fired or cancelled
  s.armed = false;
  s.fn = nullptr;  // free the closure now; the heap node dies lazily
  --live_;
  return true;
}

void EventQueue::sift_up(std::size_t i) {
  const Node node = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(node, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = node;
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  const Node node = heap_[i];
  while (true) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], node)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = node;
}

void EventQueue::remove_top() const {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::release_slot(std::uint32_t slot) const {
  ++slots_[slot].gen;  // stale ids to this slot stop resolving
  free_slots_.push_back(slot);
}

void EventQueue::prune_top() const {
  while (!heap_.empty() && !slots_[heap_[0].slot].armed) {
    release_slot(heap_[0].slot);
    remove_top();
  }
}

SimTime EventQueue::next_time() const {
  prune_top();
  if (heap_.empty()) return SimTime::max();
  return heap_[0].at;
}

EventQueue::Fired EventQueue::pop() {
  prune_top();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const Node top = heap_[0];
  Slot& s = slots_[top.slot];
  Fired f{top.at, std::move(s.fn)};
  s.armed = false;
  s.fn = nullptr;
  release_slot(top.slot);
  remove_top();
  --live_;
  return f;
}

}  // namespace ntier::sim
