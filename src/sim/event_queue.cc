#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace ntier::sim {

EventId EventQueue::push(SimTime at, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  live_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (live_.erase(id) == 0) return false;  // unknown, fired, or cancelled
  cancelled_.insert(id);
  return true;
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  skip_cancelled();
  if (heap_.empty()) return SimTime::max();
  return heap_.top().at;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  Fired f{heap_.top().at, std::move(heap_.top().fn)};
  live_.erase(heap_.top().id);
  heap_.pop();
  return f;
}

}  // namespace ntier::sim
