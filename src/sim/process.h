#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "sim/simulation.h"
#include "sim/time.h"

namespace ntier::sim {

/// Coroutine-based process API over the callback kernel.
///
/// A `Process` is a coroutine that can suspend on simulated time or on
/// asynchronous completions, writing sequential model code where the
/// callback style would nest:
///
///   sim::Process client(sim::Simulation& simu, Server& server) {
///     for (;;) {
///       co_await sim::delay(simu, think_time);
///       co_await server.async_request();   // any Awaitable<T>
///     }
///   }
///
/// Processes are eager (start running when called) and detached: the
/// coroutine frame lives until the body finishes or the Simulation is
/// destroyed. Use `Completion<T>` to bridge callback APIs into awaitables.
class Process {
 public:
  struct promise_type {
    Process get_return_object() {
      return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    // Eager start: the body runs until its first suspension immediately.
    std::suspend_never initial_suspend() noexcept { return {}; }
    // Self-destroy on completion: fire-and-forget semantics.
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  explicit Process(std::coroutine_handle<promise_type> h) : handle_(h) {}

 private:
  std::coroutine_handle<promise_type> handle_;
};

/// Awaitable that resumes the coroutine after `d` of simulated time.
class DelayAwaiter {
 public:
  DelayAwaiter(Simulation& simu, SimTime d) : sim_(simu), delay_(d) {}

  bool await_ready() const noexcept { return delay_ <= SimTime::zero(); }
  void await_suspend(std::coroutine_handle<> h) {
    sim_.after(delay_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Simulation& sim_;
  SimTime delay_;
};

inline DelayAwaiter delay(Simulation& simu, SimTime d) {
  return DelayAwaiter(simu, d);
}

/// One-shot completion channel bridging callback APIs into awaitables.
///
///   sim::Completion<bool> done;
///   pool.acquire(..., done.callback());
///   const bool ok = co_await done;
///
/// The callback may fire before or after the co_await — both orders work.
/// Single producer, single consumer, single use.
template <typename T>
class Completion {
 public:
  Completion() : state_(std::make_shared<State>()) {}

  /// The callback to hand to the producer.
  std::function<void(T)> callback() {
    return [state = state_](T value) {
      state->value.emplace(std::move(value));
      if (state->waiter) {
        auto h = state->waiter;
        state->waiter = nullptr;
        h.resume();
      }
    };
  }

  bool await_ready() const noexcept { return state_->value.has_value(); }
  void await_suspend(std::coroutine_handle<> h) { state_->waiter = h; }
  T await_resume() { return std::move(*state_->value); }

 private:
  struct State {
    std::optional<T> value;
    std::coroutine_handle<> waiter = nullptr;
  };
  std::shared_ptr<State> state_;
};

/// void specialisation: a pure event.
template <>
class Completion<void> {
 public:
  Completion() : state_(std::make_shared<State>()) {}

  std::function<void()> callback() {
    return [state = state_] {
      state->done = true;
      if (state->waiter) {
        auto h = state->waiter;
        state->waiter = nullptr;
        h.resume();
      }
    };
  }

  bool await_ready() const noexcept { return state_->done; }
  void await_suspend(std::coroutine_handle<> h) { state_->waiter = h; }
  void await_resume() const noexcept {}

 private:
  struct State {
    bool done = false;
    std::coroutine_handle<> waiter = nullptr;
  };
  std::shared_ptr<State> state_;
};

}  // namespace ntier::sim
