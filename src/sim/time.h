#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace ntier::sim {

/// Simulated time, stored as integer nanoseconds since the start of the
/// simulation. The same type doubles as a duration (like absl::Duration);
/// the simulator never needs wall-clock anchoring. Integer representation
/// keeps event ordering exact and runs reproducible.
class SimTime {
 public:
  constexpr SimTime() = default;

  // -- named constructors ---------------------------------------------------
  static constexpr SimTime nanos(std::int64_t n) { return SimTime{n}; }
  static constexpr SimTime micros(std::int64_t u) { return SimTime{u * 1000}; }
  static constexpr SimTime millis(std::int64_t m) { return SimTime{m * 1'000'000}; }
  static constexpr SimTime seconds(std::int64_t s) { return SimTime{s * 1'000'000'000}; }
  /// Fractional seconds (workload/think-time math); rounds to nearest ns.
  static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  static constexpr SimTime from_millis(double ms) { return from_seconds(ms * 1e-3); }
  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() { return SimTime{INT64_MAX}; }

  // -- accessors ------------------------------------------------------------
  constexpr std::int64_t ns() const { return ns_; }
  constexpr std::int64_t us() const { return ns_ / 1000; }
  constexpr std::int64_t ms() const { return ns_ / 1'000'000; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  // -- arithmetic -----------------------------------------------------------
  constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
  constexpr SimTime& operator+=(SimTime o) { ns_ += o.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime o) { ns_ -= o.ns_; return *this; }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime{ns_ * k}; }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime{ns_ / k}; }
  /// Ratio of two durations.
  constexpr double operator/(SimTime o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime t) { return t * k; }

  constexpr auto operator<=>(const SimTime&) const = default;

  /// "12.345s" / "87.2ms" style rendering for logs and bench output.
  std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t n) : ns_(n) {}
  std::int64_t ns_ = 0;
};

}  // namespace ntier::sim
