#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "obs/trace.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace ntier::probe {

/// Tunables of one balancer's probing loop (in the spirit of Prequal,
/// "Load is not what you should balance"). The defaults are sized for the
/// paper's millibottleneck time scale: stalls last tens to hundreds of
/// milliseconds, so probe state a few hundred milliseconds old is exactly
/// the stale-signal failure mode the subsystem exists to avoid.
struct ProbeConfig {
  bool enabled = false;
  /// Probe ticks per second. Each tick samples `d` distinct targets and
  /// sends one probe to each, so the per-backend probe rate is roughly
  /// rate_hz * d / num_workers.
  double rate_hz = 50.0;
  /// Power-of-d sampling: how many distinct targets each tick probes.
  int d = 3;
  /// A pooled result older than this is expired (never consulted again).
  sim::SimTime staleness = sim::SimTime::millis(400);
  /// Routing decisions one probe result may serve before it is discarded
  /// (Prequal's probe-reuse budget; <= 0 means unbounded reuse).
  int reuse_budget = 4;
  /// An unanswered probe counts as failed after this long — which is what
  /// makes probing catch a millibottleneck: a stalled CPU answers a probe
  /// as late as it answers a request.
  sim::SimTime timeout = sim::SimTime::millis(30);
  /// Bounded pool of retained probe results; inserting into a full pool
  /// evicts the oldest entry.
  std::size_t capacity = 16;
  /// Prequal's hot/cold rule: a result whose requests-in-flight exceeds
  /// this quantile of the pooled RIFs is "hot" and excluded from the
  /// latency ranking.
  double hot_quantile = 0.75;
  /// Safety factor on the hot threshold: a worker only counts as hot when
  /// its RIF exceeds max(quantile_value * hot_factor, quantile_value + 1).
  /// Ordinary Poisson spread around a balanced operating point stays under
  /// it; a millibottleneck's queue spike (tens to hundreds of requests in
  /// one stall) crosses it immediately. Keeps the hot/cold rule from firing
  /// on noise in small clusters, where the raw quantile rule marks the
  /// momentary maximum hot almost every decision.
  double hot_factor = 2.0;
};

/// One probe reply retained in the pool.
struct ProbeResult {
  int worker = -1;
  /// Requests in flight at the backend when it answered.
  double rif = 0.0;
  /// The backend's recent-service-latency estimate (EWMA, ms).
  double latency_ms = 0.0;
  /// Round trip of the probe itself (ms).
  double rtt_ms = 0.0;
  /// Reply arrival time (staleness is measured from here).
  sim::SimTime at;
  /// The owning balancer's own outstanding count on this worker when the
  /// reply arrived (via set_local_load; 0 when no estimator is attached).
  /// Lets policies correct the global snapshot for drift they can observe
  /// exactly: rif − local_rif + local_outstanding_now.
  double local_rif = 0.0;
  /// Routing decisions that already consulted this result.
  int uses = 0;
};

/// Asynchronous probing loop + bounded result pool, one per balancer.
///
/// Driven entirely off the simulation event loop and a forked deterministic
/// RNG, so runs stay byte-reproducible: every tick draws its power-of-d
/// target sample from the pool's own stream, replies arrive through the
/// caller-supplied transport (which models link and backend delays), and
/// expiry is evaluated lazily against the simulated clock.
///
/// The pool itself is policy-agnostic: lb policies consult it through
/// `fresh_results` / `freshest` and spend reuse budget through `note_use`.
class ProbePool {
 public:
  /// done(ok, rif, latency_ms) must eventually fire unless the backend is
  /// gone; the pool's own timeout covers the never-answers case.
  using ReplyFn = std::function<void(bool ok, double rif, double latency_ms)>;
  using Transport = std::function<void(int worker, ReplyFn done)>;
  /// Snapshot of the owning balancer's own in-flight count on `worker`,
  /// evaluated when a reply is pooled (see ProbeResult::local_rif).
  using LocalLoadFn = std::function<double(int worker)>;

  ProbePool(sim::Simulation& simu, int num_workers, Transport transport,
            ProbeConfig config);

  ProbePool(const ProbePool&) = delete;
  ProbePool& operator=(const ProbePool&) = delete;

  const ProbeConfig& config() const { return config_; }
  int num_workers() const { return num_workers_; }

  /// Drop expired entries (stale or budget-spent) as of now. Policies call
  /// this at decision time; it is idempotent within one instant.
  void expire_now();

  /// The freshest unexpired result for `worker`, if any. Does not spend
  /// reuse budget.
  std::optional<ProbeResult> freshest(int worker) const;
  bool has_fresh(int worker) const { return freshest(worker).has_value(); }

  /// All unexpired results, one per worker at most (the freshest each),
  /// ordered by worker index — the candidate set Prequal's hot/cold rule
  /// ranks. Call expire_now() first.
  std::vector<ProbeResult> fresh_results() const;

  /// A routing decision consulted `worker`'s freshest result: spend one use
  /// of its reuse budget (discarding it once exhausted) and record the
  /// result's age for the freshness statistics.
  void note_use(int worker);

  /// Piggybacked load report (Prequal's probe-on-response mode): a normal
  /// response from `worker` carried its requests-in-flight and latency
  /// estimate. Pooled exactly like a probe reply — superseding the old
  /// entry and restarting its reuse budget — at zero probing cost, which
  /// is what keeps the pool millisecond-fresh on busy workers while the
  /// asynchronous probes cover idle and stalled ones. No-op when disabled.
  void observe(int worker, double rif, double latency_ms);
  /// Pool insertions that came from piggybacked reports, not probes.
  std::uint64_t piggybacked() const { return piggybacked_; }

  /// Number of retained (not yet expired) results.
  std::size_t size() const { return entries_.size(); }

  // -- statistics ------------------------------------------------------------
  std::uint64_t probes_sent() const { return sent_; }
  std::uint64_t replies() const { return replies_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t timeouts() const { return timeouts_; }
  /// Entries dropped because they aged past `staleness`.
  std::uint64_t expired_stale() const { return expired_stale_; }
  /// Entries dropped because their reuse budget was spent.
  std::uint64_t expired_budget() const { return expired_budget_; }
  /// Routing decisions that consulted a pooled result.
  std::uint64_t uses() const { return uses_; }
  /// Mean result age at decision time (ms; 0 when never consulted).
  double mean_staleness_at_use_ms() const {
    return uses_ ? staleness_at_use_ms_sum_ / static_cast<double>(uses_) : 0.0;
  }

  /// Attach the balancer-local load estimator sampled at reply-pooling time
  /// (null disables; ProbeResult::local_rif then stays 0).
  void set_local_load(LocalLoadFn f) { local_load_ = std::move(f); }

  /// Attach the cross-tier event collector (null disables). Probe events are
  /// emitted with tier=kBalancer, node=`node` (the owning Apache / router),
  /// worker=probe target: kProbeSent, kProbeReply, kProbeExpired.
  void set_trace(obs::TraceCollector* trace, int node) {
    trace_ = trace;
    trace_node_ = node;
  }

 private:
  void tick();
  void fire(int worker);
  void insert(ProbeResult r);
  void trace_event(obs::EventKind kind, int worker, double value,
                   std::int32_t aux);

  sim::Simulation& sim_;
  int num_workers_;
  Transport transport_;
  LocalLoadFn local_load_;
  ProbeConfig config_;
  sim::Rng rng_;
  sim::SimTime interval_;

  /// Retained results, insertion-ordered (oldest first); bounded by
  /// config_.capacity.
  std::vector<ProbeResult> entries_;

  std::uint64_t sent_ = 0;
  std::uint64_t replies_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t expired_stale_ = 0;
  std::uint64_t expired_budget_ = 0;
  std::uint64_t piggybacked_ = 0;
  std::uint64_t uses_ = 0;
  double staleness_at_use_ms_sum_ = 0.0;

  obs::TraceCollector* trace_ = nullptr;
  int trace_node_ = -1;
};

}  // namespace ntier::probe
