#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.h"
#include "sim/time.h"

namespace ntier::probe {

/// Probe-freshness picture reconstructed from a trace alone (no access to
/// the live ProbePool): how hard the probing loop worked and how fresh the
/// state behind each routing decision actually was.
struct FreshnessStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t probe_replies = 0;
  /// kProbeExpired broken out by aux code.
  std::uint64_t expired_stale = 0;
  std::uint64_t expired_budget = 0;
  std::uint64_t probe_timeouts = 0;
  /// Probes sent per second of trace span (0 when the span is empty).
  double probes_per_sec = 0.0;
  /// Routing decisions (kGetEndpointAttempt) that had a probe reply for the
  /// chosen worker no older than the staleness bound...
  std::uint64_t fresh_decisions = 0;
  /// ...and those that did not (the policy fell back to current_load).
  std::uint64_t fallback_decisions = 0;
  /// Median age (ms) of the chosen worker's latest probe reply at decision
  /// time, over fresh decisions only.
  double median_staleness_ms = 0.0;

  bool any_probe_events() const {
    return probes_sent || probe_replies || expired_stale || expired_budget ||
           probe_timeouts;
  }
};

/// Scan a chronological event stream and compute FreshnessStats. `staleness`
/// must match the run's --probe-staleness for the fresh/fallback split to
/// reflect what the policy actually saw.
FreshnessStats probe_freshness(const std::vector<obs::TraceEvent>& events,
                               sim::SimTime staleness);

}  // namespace ntier::probe
