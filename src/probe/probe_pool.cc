#include "probe/probe_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace ntier::probe {

namespace {

constexpr double kMsPerSecond = 1e3;

double age_ms(sim::SimTime now, sim::SimTime at) {
  return (now - at).to_seconds() * kMsPerSecond;
}

}  // namespace

ProbePool::ProbePool(sim::Simulation& simu, int num_workers,
                     Transport transport, ProbeConfig config)
    : sim_(simu),
      num_workers_(num_workers),
      transport_(std::move(transport)),
      config_(config),
      rng_(simu.rng().fork()) {
  if (config_.d < 1) config_.d = 1;
  if (config_.rate_hz <= 0.0) config_.rate_hz = 1.0;
  if (config_.capacity == 0) config_.capacity = 1;
  interval_ = sim::SimTime::from_seconds(1.0 / config_.rate_hz);
  if (config_.enabled && num_workers_ > 0 && transport_)
    sim_.after(interval_, [this] { tick(); });
}

void ProbePool::tick() {
  // Power-of-d target sampling: a partial Fisher-Yates shuffle drawn from the
  // pool's own stream picks min(d, n) distinct workers per tick.
  const int n = num_workers_;
  const int d = std::min(config_.d, n);
  std::vector<int> idx(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < d; ++i) {
    const auto j = static_cast<std::size_t>(rng_.uniform_int(i, n - 1));
    std::swap(idx[static_cast<std::size_t>(i)], idx[j]);
    fire(idx[static_cast<std::size_t>(i)]);
  }
  sim_.after(interval_, [this] { tick(); });
}

void ProbePool::fire(int worker) {
  ++sent_;
  trace_event(obs::EventKind::kProbeSent, worker,
              static_cast<double>(entries_.size()), 0);

  // The reply and the timeout race; whichever settles first wins and the
  // loser becomes a no-op (the shared flag pattern used by HealthProber).
  auto settled = std::make_shared<bool>(false);
  const sim::SimTime sent_at = sim_.now();
  sim_.after(config_.timeout, [this, settled, worker] {
    if (*settled) return;
    *settled = true;
    ++timeouts_;
    ++failures_;
    trace_event(obs::EventKind::kProbeExpired, worker,
                config_.timeout.to_seconds() * kMsPerSecond, /*aux=*/3);
  });
  transport_(worker,
             [this, settled, worker, sent_at](bool ok, double rif,
                                              double latency_ms) {
               if (*settled) return;
               *settled = true;
               if (!ok) {
                 ++failures_;
                 return;
               }
               ++replies_;
               ProbeResult r;
               r.worker = worker;
               r.rif = rif;
               r.local_rif = local_load_ ? local_load_(worker) : 0.0;
               r.latency_ms = latency_ms;
               r.rtt_ms = age_ms(sim_.now(), sent_at);
               r.at = sim_.now();
               insert(r);
               trace_event(obs::EventKind::kProbeReply, worker, rif,
                           static_cast<std::int32_t>(latency_ms * 1e3));
             });
}

void ProbePool::insert(ProbeResult r) {
  // One retained result per worker: a fresh reply supersedes the old one.
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&r](const ProbeResult& e) {
                                  return e.worker == r.worker;
                                }),
                 entries_.end());
  if (entries_.size() >= config_.capacity)
    entries_.erase(entries_.begin());  // evict the oldest
  entries_.push_back(r);
}

void ProbePool::expire_now() {
  const sim::SimTime now = sim_.now();
  auto it = entries_.begin();
  while (it != entries_.end()) {
    if (now - it->at > config_.staleness) {
      ++expired_stale_;
      trace_event(obs::EventKind::kProbeExpired, it->worker,
                  age_ms(now, it->at), /*aux=*/1);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<ProbeResult> ProbePool::freshest(int worker) const {
  const sim::SimTime now = sim_.now();
  std::optional<ProbeResult> best;
  for (const ProbeResult& e : entries_) {
    if (e.worker != worker || now - e.at > config_.staleness) continue;
    if (!best || e.at > best->at) best = e;
  }
  return best;
}

std::vector<ProbeResult> ProbePool::fresh_results() const {
  const sim::SimTime now = sim_.now();
  std::vector<ProbeResult> out;
  out.reserve(entries_.size());
  for (const ProbeResult& e : entries_)
    if (now - e.at <= config_.staleness) out.push_back(e);
  std::sort(out.begin(), out.end(),
            [](const ProbeResult& a, const ProbeResult& b) {
              return a.worker < b.worker;
            });
  return out;
}

void ProbePool::observe(int worker, double rif, double latency_ms) {
  if (!config_.enabled || worker < 0 || worker >= num_workers_) return;
  ++piggybacked_;
  ProbeResult r;
  r.worker = worker;
  r.rif = rif;
  r.local_rif = local_load_ ? local_load_(worker) : 0.0;
  r.latency_ms = latency_ms;
  r.rtt_ms = 0.0;
  r.at = sim_.now();
  insert(r);
}

void ProbePool::note_use(int worker) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->worker != worker) continue;
    ++uses_;
    staleness_at_use_ms_sum_ += age_ms(sim_.now(), it->at);
    ++it->uses;
    if (config_.reuse_budget > 0 && it->uses >= config_.reuse_budget) {
      ++expired_budget_;
      trace_event(obs::EventKind::kProbeExpired, worker,
                  age_ms(sim_.now(), it->at), /*aux=*/2);
      entries_.erase(it);
    }
    return;
  }
}

void ProbePool::trace_event(obs::EventKind kind, int worker, double value,
                            std::int32_t aux) {
  NTIER_TRACE_EVENT(trace_, sim_.now(), kind, obs::Tier::kBalancer,
                    trace_node_, worker, 0u, value, aux);
#ifdef NTIER_OBS_DISABLED
  (void)kind;
  (void)worker;
  (void)value;
  (void)aux;
#endif
}

}  // namespace ntier::probe
