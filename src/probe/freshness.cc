#include "probe/freshness.h"

#include <algorithm>
#include <map>
#include <utility>

namespace ntier::probe {

FreshnessStats probe_freshness(const std::vector<obs::TraceEvent>& events,
                               sim::SimTime staleness) {
  FreshnessStats s;
  if (events.empty()) return s;

  // Latest probe reply per (balancer node, worker), maintained as the scan
  // replays the trace in time order.
  std::map<std::pair<int, int>, sim::SimTime> last_reply;
  std::vector<double> staleness_ms;

  sim::SimTime first = events.front().at;
  sim::SimTime last = events.front().at;
  for (const obs::TraceEvent& e : events) {
    first = std::min(first, e.at);
    last = std::max(last, e.at);
    switch (e.kind) {
      case obs::EventKind::kProbeSent:
        ++s.probes_sent;
        break;
      case obs::EventKind::kProbeReply:
        ++s.probe_replies;
        last_reply[{e.node, e.worker}] = e.at;
        break;
      case obs::EventKind::kProbeExpired:
        if (e.aux == 1)
          ++s.expired_stale;
        else if (e.aux == 2)
          ++s.expired_budget;
        else
          ++s.probe_timeouts;
        break;
      case obs::EventKind::kGetEndpointAttempt: {
        const auto it = last_reply.find({e.node, e.worker});
        if (it != last_reply.end() && e.at - it->second <= staleness) {
          ++s.fresh_decisions;
          staleness_ms.push_back((e.at - it->second).to_seconds() * 1e3);
        } else {
          ++s.fallback_decisions;
        }
        break;
      }
      default:
        break;
    }
  }

  const double span_s = (last - first).to_seconds();
  if (span_s > 0)
    s.probes_per_sec = static_cast<double>(s.probes_sent) / span_s;

  if (!staleness_ms.empty()) {
    const auto mid = staleness_ms.size() / 2;
    std::nth_element(staleness_ms.begin(), staleness_ms.begin() + mid,
                     staleness_ms.end());
    s.median_staleness_ms = staleness_ms[mid];
  }
  return s;
}

}  // namespace ntier::probe
