#include "experiment/recovery_tracker.h"

#include <algorithm>
#include <sstream>

namespace ntier::experiment {

std::string RecoveryReport::to_string() const {
  std::ostringstream os;
  os << "baseline " << baseline_throughput << " completions/window @ "
     << baseline_latency_ms << " ms; trigger " << trigger_s << " s; ";
  if (recovered) {
    os << "recovered in " << time_to_baseline_s << " s ("
       << recovery_ratio() << "x trigger)";
  } else {
    os << "NOT recovered by end of run";
  }
  os << "; degraded after clear: " << degraded_windows_after_clear
     << " windows / " << degraded_after_clear_s << " s";
  return os.str();
}

RecoveryReport measure_recovery(const metrics::TimeSeries& rt,
                                sim::SimTime warmup,
                                sim::SimTime trigger_start,
                                sim::SimTime trigger_end, sim::SimTime horizon,
                                double epsilon, int settle_windows) {
  RecoveryReport rep;
  rep.trigger_s = (trigger_end - trigger_start).to_seconds();
  const double window_s = rt.window().to_seconds();
  if (window_s <= 0 || rt.num_windows() == 0) return rep;

  const auto index_of = [&](sim::SimTime t) {
    return static_cast<std::size_t>(t.ns() / rt.window().ns());
  };
  const std::size_t base_lo = index_of(warmup);
  const std::size_t base_hi = index_of(trigger_start);
  const std::size_t clear_at = index_of(trigger_end);
  const std::size_t end_at =
      std::min(rt.num_windows(), index_of(horizon) + 1);

  // Pre-trigger baseline over completion-bearing windows.
  std::uint64_t base_windows = 0;
  double tput_sum = 0, lat_sum = 0;
  for (std::size_t i = base_lo; i < base_hi && i < rt.num_windows(); ++i) {
    if (rt.count(i) == 0) continue;
    ++base_windows;
    tput_sum += static_cast<double>(rt.count(i));
    lat_sum += rt.avg(i);
  }
  if (base_windows == 0) return rep;
  rep.baseline_throughput = tput_sum / static_cast<double>(base_windows);
  rep.baseline_latency_ms = lat_sum / static_cast<double>(base_windows);

  const double lat_bar = rep.baseline_latency_ms * (1.0 + epsilon);
  const double tput_bar = rep.baseline_throughput * (1.0 - epsilon);

  // Scan the post-clear windows for the first settled stretch.
  int settled_streak = 0;
  std::size_t settled_from = 0;
  for (std::size_t i = clear_at; i < end_at; ++i) {
    const bool settled = rt.count(i) > 0 && rt.avg(i) <= lat_bar &&
                         static_cast<double>(rt.count(i)) >= tput_bar;
    if (settled) {
      if (settled_streak == 0) settled_from = i;
      if (++settled_streak >= settle_windows && !rep.recovered) {
        rep.recovered = true;
        rep.time_to_baseline_s =
            (rt.window_start(settled_from) - trigger_end).to_seconds();
        if (rep.time_to_baseline_s < 0) rep.time_to_baseline_s = 0;
      }
    } else {
      settled_streak = 0;
      ++rep.degraded_windows_after_clear;
    }
  }
  rep.degraded_after_clear_s =
      static_cast<double>(rep.degraded_windows_after_clear) * window_s;
  return rep;
}

}  // namespace ntier::experiment
