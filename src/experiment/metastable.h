#pragma once

#include <cstdint>
#include <string>

#include "experiment/config.h"
#include "experiment/recovery_tracker.h"
#include "experiment/summary.h"
#include "millib/fault_plan.h"
#include "recovery/orchestrator.h"
#include "sim/time.h"

namespace ntier::experiment {

/// The sustaining loops that keep a system in the degraded basin after the
/// trigger that pushed it there has cleared (the defining property of a
/// metastable failure state). Each kind pairs a *vulnerable* configuration
/// (the loop armed) with a *hardened* one (the loop broken by design), so a
/// bench can show the same trigger producing O(drain) recovery in one and
/// >= 10x-trigger degradation in the other.
enum class MetastableKind : std::uint8_t {
  /// Front-end retry storm: an impatient front end (attempt_timeout) plus
  /// effectively unbudgeted retries with near-zero backoff. The trigger
  /// inflates service time past the attempt timeout, every abandoned
  /// attempt keeps burning backend CPU *and* re-arrives as a retry, and the
  /// amplified attempt load keeps latency above the timeout after the
  /// trigger clears. Hardened twin: two attempts on a 10% budget — same
  /// impatience, amplification capped below the drain threshold.
  kRetryStorm,
  /// Cache stampede: single-flight coalescing disabled and a short TTL. An
  /// invalidation storm empties the hot set; every miss stampedes the KV
  /// tier independently, the slow fills expire before the next wave, and
  /// the hit ratio never climbs back.
  kCacheStampede,
  /// Missing bulkhead: an oversized AJP endpoint pool under the same
  /// impatient retries admits unbounded concurrent attempts, so the
  /// backends' standing queues keep every attempt slower than the abandon
  /// clock forever. Hardened twin: a tight pool whose backpressure caps
  /// in-flight work low enough that responses beat the abandonment timer.
  kPoolExhaustion,
};

std::string to_string(MetastableKind k);

/// One metastability scenario: trigger, loop, and the two toggles the bench
/// sweeps (vulnerable vs hardened, recovery off vs on).
struct MetastableOptions {
  MetastableKind kind = MetastableKind::kRetryStorm;
  /// Arm the sustaining loop (true) or use the hardened config (false).
  bool vulnerable = true;
  /// Run with the recovery orchestration layer active.
  bool recovery = false;
  std::uint64_t seed = 42;
  /// ExperimentConfig::scaled factor (offered load is scale-invariant).
  double scale = 0.05;
  sim::SimTime duration = sim::SimTime::seconds(40);
  sim::SimTime warmup = sim::SimTime::seconds(3);
  /// The trigger: a short fleet-wide gray fault (one spec per Tomcat, so the
  /// ignition cannot be dodged by routing around a single worker; an
  /// invalidation storm for the cache kind), cleared well before the run
  /// ends so the post-clear basin is observable.
  sim::SimTime trigger_start = sim::SimTime::seconds(10);
  sim::SimTime trigger_duration = sim::SimTime::seconds(2);
  /// Gray severity: 0.9 => 10x service-time inflation on the targets.
  double trigger_severity = 0.9;
  /// Invalidation-storm width (cache kind only): multiplier on the sweep's
  /// hottest-rank count, CacheTier's severity semantics — NOT a fraction.
  double storm_severity = 4.0;

  std::string label() const;
};

/// What one scenario run yields: the usual run digest, the time-to-baseline
/// measurement against the trigger, and what the recovery loop did (zeros
/// when recovery was off).
struct MetastableResult {
  std::string label;
  millib::FaultSpec trigger;
  RunSummary summary;
  RecoveryReport report;
  recovery::RecoveryStats recovery_stats;
  bool recovery_enabled = false;
};

/// Build the full ExperimentConfig for a scenario — exposed separately so
/// tests and the CLI can tweak fields before running.
ExperimentConfig metastable_config(const MetastableOptions& opt);

/// The trigger spec `metastable_config` schedules (for reports/tests).
millib::FaultSpec metastable_trigger(const MetastableOptions& opt);

/// Build, run, summarize and measure one scenario.
MetastableResult run_metastable(const MetastableOptions& opt);

}  // namespace ntier::experiment
