#pragma once

#include <cstdint>
#include <string>

#include "metrics/time_series.h"
#include "sim/time.h"

namespace ntier::experiment {

/// Metastability as a first-class measurement: how long after its trigger
/// cleared did the system take to return to its own pre-trigger steady
/// state? A stable system recovers in O(queue-drain) time; a metastable one
/// stays in the degraded basin — sustained by a retry storm, a cache
/// stampede or pool exhaustion — for many multiples of the trigger
/// duration, or forever.
struct RecoveryReport {
  // Pre-trigger steady state, measured over [warmup, trigger_start).
  double baseline_throughput = 0;  // completions per window
  double baseline_latency_ms = 0;  // mean of per-window mean latency
  double trigger_s = 0;            // how long the trigger itself lasted
  /// Sim seconds from trigger-clear until the start of the first settled
  /// stretch (settle_windows consecutive windows within epsilon of
  /// baseline on BOTH throughput and latency); < 0 when the run ended
  /// still degraded.
  double time_to_baseline_s = -1;
  bool recovered = false;
  /// Degraded windows after the trigger cleared and their total span — the
  /// quantity the metastability claim compares against trigger_s.
  std::uint64_t degraded_windows_after_clear = 0;
  double degraded_after_clear_s = 0;
  /// time_to_baseline / trigger duration (the paper-style headline number);
  /// infinity-ish sentinel (-1) when the run never recovered.
  double recovery_ratio() const {
    if (!recovered || trigger_s <= 0) return -1;
    return time_to_baseline_s / trigger_s;
  }

  std::string to_string() const;
};

/// Measure time-to-baseline from the per-window response-time series (its
/// count is throughput, its avg is latency). Baseline = mean over the
/// completion-bearing windows of [warmup, trigger_start). A window is
/// *settled* when its mean latency is within (1 + epsilon) x baseline and
/// its throughput is above (1 - epsilon) x baseline; recovery is the start
/// of the first run of `settle_windows` consecutive settled windows at or
/// after trigger_end. Windows past `horizon` are ignored (the tail of a run
/// contains the drain, not traffic).
RecoveryReport measure_recovery(const metrics::TimeSeries& rt,
                                sim::SimTime warmup,
                                sim::SimTime trigger_start,
                                sim::SimTime trigger_end, sim::SimTime horizon,
                                double epsilon = 0.30, int settle_windows = 10);

}  // namespace ntier::experiment
