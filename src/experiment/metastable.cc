#include "experiment/metastable.h"

#include <sstream>

#include "experiment/experiment.h"

namespace ntier::experiment {

std::string to_string(MetastableKind k) {
  switch (k) {
    case MetastableKind::kRetryStorm: return "retry_storm";
    case MetastableKind::kCacheStampede: return "cache_stampede";
    case MetastableKind::kPoolExhaustion: return "pool_exhaustion";
  }
  return "?";
}

std::string MetastableOptions::label() const {
  std::ostringstream os;
  os << to_string(kind) << "/" << (vulnerable ? "vulnerable" : "hardened")
     << "/recovery-" << (recovery ? "on" : "off");
  return os.str();
}

millib::FaultSpec metastable_trigger(const MetastableOptions& opt) {
  millib::FaultSpec spec;
  spec.start = opt.trigger_start;
  spec.duration = opt.trigger_duration;
  switch (opt.kind) {
    case MetastableKind::kRetryStorm:
    case MetastableKind::kPoolExhaustion:
      // Gray Tomcats: data path inflated 1/(1-severity)x while probes,
      // breaker health and piggybacked load all keep reporting healthy.
      // This spec targets worker 0; metastable_config replicates it across
      // the tier so the trigger saturates the fleet, not one dodgeable node.
      spec.kind = millib::FaultKind::kGrayDataPath;
      spec.worker = 0;
      spec.severity = opt.trigger_severity;
      break;
    case MetastableKind::kCacheStampede:
      // Write burst sweeping the hot key set out of every cache node.
      // Severity here is CacheTier's hot-rank multiplier (4.0 => the sweep
      // covers 4x the base hot-rank count), not a gray fraction.
      spec.kind = millib::FaultKind::kInvalidationStorm;
      spec.worker = -1;
      spec.severity = opt.storm_severity;
      break;
  }
  return spec;
}

ExperimentConfig metastable_config(const MetastableOptions& opt) {
  ExperimentConfig c = ExperimentConfig::scaled(opt.scale);
  c.label = opt.label();
  c.seed = opt.seed;
  c.duration = opt.duration;
  c.warmup = opt.warmup;
  // The scheduled trigger is the run's only disturbance: organic
  // millibottlenecks off, so the pre-trigger baseline is crisp and every
  // post-clear degraded window is attributable to the sustaining loop.
  c.tomcat_millibottlenecks = false;
  millib::FaultSpec trigger = metastable_trigger(opt);
  c.fault_plan = millib::FaultPlan::single(trigger);
  if (trigger.kind == millib::FaultKind::kGrayDataPath) {
    // Fleet-wide ignition: the same gray window on every Tomcat.
    for (int w = 1; w < c.num_tomcats; ++w) {
      trigger.worker = w;
      c.fault_plan.specs.push_back(trigger);
    }
  }
  // mod_jk's Busy->Error ladder parks a worker for error_recovery (60 s —
  // longer than these runs) after a burst of connector overflows. That is a
  // different failure mode with its own bench; here it would mask the loop
  // under test, so the ladder is effectively disabled.
  c.balancer.failures_to_error = 1'000'000;

  switch (opt.kind) {
    case MetastableKind::kRetryStorm:
      // Baseline sits comfortably below saturation (zero organic retries,
      // ~2.8 ms mean), yet the closed-loop ceiling of the storm — ~19k
      // attempts/s of 6x-amplified abandoned work — is past tier capacity,
      // so the basin, once entered, feeds itself. (At 2.0 the baseline
      // itself is unstable; at <~1.2 the storm cannot outrun capacity.)
      c.workload.demand_scale = 1.6;
      c.apache.max_clients = 4'000;
      c.mechanism = lb::MechanismKind::kNonBlocking;
      c.balancer.endpoint_pool_size = 2'000;
      c.apache.retry.enabled = true;
      // Both twins are equally impatient: an attempt not answered in 120 ms
      // is abandoned (the backend keeps burning it) and retried. 120 ms
      // clears the healthy-system tail (~2.8 ms mean), so the baseline is
      // stable — only a trigger that pins latency past it can ignite the
      // loop. The twins differ only in how much amplification the retry
      // layer then permits.
      c.apache.retry.attempt_timeout = sim::SimTime::millis(120);
      c.apache.retry.request_timeout = sim::SimTime::seconds(10);
      if (opt.vulnerable) {
        // The storm: every abandonment re-arrives almost immediately, with
        // a budget too generous to ever run dry. Up to 6 attempts/request
        // => ~6x wasted-work amplification whenever latency > 120 ms, which
        // keeps latency > 120 ms — the sustaining loop.
        c.apache.retry.max_attempts = 6;
        c.apache.retry.base_backoff = sim::SimTime::millis(1);
        c.apache.retry.max_backoff = sim::SimTime::millis(4);
        c.apache.retry.budget_ratio = 10.0;
        c.apache.retry.budget_burst = 100'000.0;
      } else {
        // Hardened: one budgeted retry with real backoff, so amplified
        // attempt load stays below tier capacity and the queues drain.
        c.apache.retry.max_attempts = 2;
        c.apache.retry.budget_ratio = 0.1;
        c.apache.retry.budget_burst = 10.0;
      }
      break;

    case MetastableKind::kCacheStampede:
      c.db_tier = server::DbTier::kKv;
      c.cache_tier = true;
      // A stiffer client loop (4x the population at 4x the think time —
      // identical offered load): with the default population, latency growth
      // throttles arrivals so hard that the closed loop drains any basin.
      // More, slower clients keep the post-storm miss load near the offered
      // rate even at 100x-baseline latency, which is what lets the
      // stampede's duplicate fills sustain themselves.
      c.num_clients *= 4;
      c.think_mean =
          sim::SimTime::from_seconds(c.think_mean.to_seconds() * 4.0);
      // A minimal quorum fleet: little enough KV headroom that the
      // stampede's duplicate fills, not the trigger, are what keeps fill
      // latency above the TTL.
      c.kv.replicas = 3;
      // Browse-only Zipf traffic against the cache tier (the stampede
      // bench's provisioning): the upstream tiers are sized out of the way
      // so the basin, if any, lives in the cache<->KV loop.
      c.apache.max_clients = 4'000;
      c.tomcat.max_threads = 4'000;
      c.balancer.endpoint_pool_size = 2'000;
      c.workload.key_space = 10'000;
      // Hot enough that ~90% of references land on keys re-referenced
      // within the short TTL: the healthy state is hit-dominated (KV well
      // under capacity) while the all-miss state is past it — the
      // bistability the stampede needs.
      c.workload.zipf_s = 1.4;
      c.workload.mix = workload::Mix::kBrowseOnly;
      c.workload.query_cache_hit = 0.0;
      // Below ~2.3 the storm's all-miss load stays inside KV capacity and
      // the basin drains; at 3.0 the hit-dominated baseline itself ignites
      // without a trigger. 2.4 sits in the bistable band.
      c.workload.demand_scale = 2.4;
      if (opt.vulnerable) {
        // Every miss stampedes the KV tier independently, and entries
        // expire before the slowed fills can rebuild the working set.
        c.cache.coalesce = false;
        c.cache.ttl = sim::SimTime::millis(150);
      } else {
        c.cache.coalesce = true;
        c.cache.ttl = sim::SimTime::seconds(10);
      }
      break;

    case MetastableKind::kPoolExhaustion:
      // The bulkhead scenario: the retry layer is identically impatient and
      // effectively unbudgeted in BOTH twins — the endpoint pool is the
      // only variable. Same operating point as the retry storm.
      c.workload.demand_scale = 1.6;
      c.apache.max_clients = 4'000;
      c.mechanism = lb::MechanismKind::kBlocking;
      c.apache.retry.enabled = true;
      c.apache.retry.attempt_timeout = sim::SimTime::millis(120);
      c.apache.retry.request_timeout = sim::SimTime::seconds(10);
      c.apache.retry.max_attempts = 4;
      c.apache.retry.base_backoff = sim::SimTime::millis(1);
      c.apache.retry.max_backoff = sim::SimTime::millis(4);
      c.apache.retry.budget_ratio = 10.0;
      c.apache.retry.budget_burst = 100'000.0;
      if (opt.vulnerable) {
        // No bulkhead: a pool this large never exerts backpressure, so
        // abandoned-but-still-running attempts pile onto the backends
        // without bound and the standing queue keeps every attempt slower
        // than the 120 ms abandon clock.
        c.balancer.endpoint_pool_size = 4'000;
      } else {
        // Tight bulkhead: <= 24 in-flight per Apache x Tomcat caps backend
        // queueing (~26 ms at baseline demand) well below the abandon
        // clock, so responses win the race and the loop never closes;
        // excess arrivals wait at the acquirer instead of multiplying.
        c.balancer.endpoint_pool_size = 24;
      }
      break;
  }

  if (opt.recovery) {
    c.recovery.enabled = true;
    // Judge against the pre-trigger baseline at the default 100 ms cadence;
    // the experiment aligns recovery warmup with c.warmup on build.
  }
  return c;
}

MetastableResult run_metastable(const MetastableOptions& opt) {
  MetastableResult res;
  res.label = opt.label();
  res.trigger = metastable_trigger(opt);
  res.recovery_enabled = opt.recovery;

  Experiment e(metastable_config(opt));
  e.run();
  res.summary = summarize(e);
  res.report = measure_recovery(e.log().response_time_series(), opt.warmup,
                                res.trigger.start, res.trigger.end(),
                                opt.duration);
  if (e.recovery()) res.recovery_stats = e.recovery()->stats();
  return res;
}

}  // namespace ntier::experiment
