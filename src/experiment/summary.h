#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "experiment/experiment.h"

namespace ntier::experiment {

/// Flat, serialisable digest of one run — what a CI job or notebook wants
/// to archive per experiment without holding the Experiment alive.
struct RunSummary {
  std::string label;
  std::string policy;
  std::string mechanism;
  double offered_rps = 0;
  double duration_s = 0;

  std::int64_t completed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t balancer_errors = 0;
  std::uint64_t connection_drops = 0;

  // -- trace replay (all zero for closed-loop runs) ---------------------------
  /// True when an open-loop TraceReplayer drove the run instead of the
  /// closed-loop population.
  bool open_loop = false;
  /// Arrivals in the replayed trace (issued as far as the horizon allows).
  std::uint64_t trace_arrivals = 0;
  /// Replayed requests the client abandoned (replay_client_timeout elapsed).
  std::uint64_t replay_abandoned = 0;

  // -- overload control (satellite: goodput + shed accounting) ---------------
  /// Completions that met their deadline (all completions when no deadlines
  /// were stamped), per second of measured (post-warmup) time.
  double goodput_rps = 0;
  std::int64_t completed_within_deadline = 0;
  std::int64_t missed_deadline = 0;
  std::uint64_t admission_sheds = 0;
  std::uint64_t brownout_sheds = 0;
  std::uint64_t deadline_sheds = 0;
  std::uint64_t sojourn_sheds = 0;
  /// Backend service demand *not* executed because expired work was shed
  /// before reaching (or finishing on) the CPU.
  double wasted_work_avoided_ms = 0;
  /// Client-side re-attempts after a retriable admission/brownout 503.
  std::uint64_t shed_retries = 0;

  // -- front-end retries (satellite: the storm signal) -----------------------
  /// Requests dispatched to a worker on their first attempt, retry attempts
  /// re-dispatched after a failure, and their ratio — the signal the
  /// recovery orchestrator keys retry suppression on.
  std::uint64_t first_attempts = 0;
  std::uint64_t retries = 0;
  double retry_ratio = 0;
  std::uint64_t retry_successes = 0;
  /// In-flight attempts abandoned after retry.attempt_timeout (the backend
  /// kept burning the demand — the wasted-work side of a retry storm).
  std::uint64_t attempts_abandoned = 0;

  // -- recovery orchestration (all zero when --recovery is off) --------------
  std::uint64_t recovery_episodes = 0;
  std::uint64_t recovery_degraded_ticks = 0;
  /// Per-reason intervention counters (jobs-invariant).
  std::uint64_t recovery_retry_suppressions = 0;
  std::uint64_t recovery_hard_sheds = 0;
  std::uint64_t recovery_refill_gates = 0;
  std::uint64_t recovery_breaker_resets = 0;
  /// Retry attempts dropped while suppression was on, and arrivals answered
  /// with a fast recovery 503 while hard shedding was on.
  std::uint64_t retries_suppressed = 0;
  std::uint64_t recovery_sheds = 0;
  /// Cache refills that went through the jittered admission gate.
  std::uint64_t cache_gated_fills = 0;

  // -- gray-fault ground truth (zero unless a gray fault was scheduled) ------
  /// Tomcat requests served with gray-inflated demand, and KV ops executed
  /// by a slow-but-alive replica.
  std::uint64_t gray_inflated_ops = 0;
  std::uint64_t kv_slow_ops = 0;

  double mean_rt_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double vlrt_fraction = 0;
  double normal_fraction = 0;

  double apache_queue_peak = 0;
  double tomcat_queue_peak = 0;
  double mysql_queue_peak = 0;
  double kv_queue_peak = 0;

  // -- KV data tier (all zero when the run used the MySQL tier) --------------
  /// Per-reason KV error counters: quorum not reachable, hinted handoff
  /// overflow/loss, writes shed in a migration handover window.
  std::uint64_t kv_quorum_failed = 0;
  std::uint64_t kv_handoff_dropped = 0;
  std::uint64_t kv_migration_shed = 0;
  std::uint64_t kv_hints_replayed = 0;
  std::uint64_t kv_read_repairs = 0;
  /// Quorum-op time accumulated while the op's shard was below full
  /// replication (degraded mode), and the mean quorum wait overall.
  double kv_degraded_ms = 0;
  double kv_mean_quorum_wait_ms = 0;

  // -- cache tier (all zero when the run had no cache tier) ------------------
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Invalidations the write path sent (delivered + dropped + pending).
  std::uint64_t cache_invalidations = 0;
  /// Misses that joined an in-flight fill (single-flight coalescing).
  std::uint64_t cache_coalesced_fills = 0;
  /// Invalidations lost to a full queue (stale until TTL expiry).
  std::uint64_t cache_invalidations_dropped = 0;
  double cache_hit_ratio = 0;

  // -- online detection + tail sampling (all zero when --detect is off) ------
  std::uint64_t online_episodes = 0;
  std::uint64_t online_matched = 0;
  std::uint64_t online_truth_episodes = 0;
  std::uint64_t online_false_positives = 0;
  double online_median_detection_ms = 0;
  std::uint64_t online_episode_vlrts = 0;
  /// Tail-based sampling volume accounting (zero when tail mode is off).
  std::uint64_t trace_events_seen = 0;
  std::uint64_t trace_events_kept = 0;
  double trace_kept_fraction = 0;

  // -- streaming telemetry (empty/zero when --telemetry is off) --------------
  /// Response-time quantiles read back from the client.rt_ms DDSketch
  /// (cross-checks the exact histogram within the sketch's error bound).
  double rt_sketch_p50_ms = 0;
  double rt_sketch_p99_ms = 0;
  double rt_sketch_p999_ms = 0;
  /// Serialized client.rt_ms sketch — mergeable across sweep replicas and
  /// byte-deterministic (not part of to_json; sweeps merge it in run-index
  /// order).
  std::string rt_sketch;

  std::vector<double> apache_mean_cpu;
  std::vector<double> tomcat_mean_cpu;
  std::vector<double> mysql_mean_cpu;
  std::vector<double> kv_mean_cpu;
  std::vector<double> cache_mean_cpu;

  /// Serialise as a single JSON object (stable field order, no deps).
  void to_json(std::ostream& os) const;
  std::string to_json_string() const;
};

/// Collect the digest from a finished run. Queue peaks and CPU means are
/// only available when the experiment ran with tracing enabled.
RunSummary summarize(Experiment& e);

}  // namespace ntier::experiment
