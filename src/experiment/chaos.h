#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiment/experiment.h"
#include "experiment/summary.h"
#include "millib/fault_plan.h"
#include "sim/time.h"

namespace ntier::experiment {

/// Executes a FaultPlan against a built Experiment: maps each FaultSpec onto
/// the live components (CPUs, disks, links, Tomcats, endpoint pools),
/// applies it at spec.start and reverts it at spec.end, and records the
/// applied/cleared instants as an episode trace.
///
/// Owned by the Experiment (built automatically when config.fault_plan is
/// non-empty); the mapping per kind:
///   kCapacityStall / kCorrelatedStall -> cpu().set_capacity_factor
///   kCrash       -> TomcatServer::crash/restart + draining every Apache's
///                   endpoint-pool wait queue for that worker
///   kLinkFault   -> extra latency + loss on the client<->Apache link
///   kPoolLeak    -> slots acquired out of each balancer's pool and held
///   kDiskDegrade -> disk().set_rate_factor (longer writeback stalls)
///   kReplicaCrash   -> KvTier::on_replica_crashed/on_replica_recovered
///   kShardMigration -> KvTier::begin_migration/complete_migration
///   kInvalidationStorm -> CacheTier::begin_invalidation_storm
///   kGrayDataPath   -> TomcatServer::set_gray_degraded (probe path healthy)
///   kGrayLink       -> one Apache's tomcat_link().set_fault (worker = Apache)
///   kGraySlowReplica -> KvReplica::set_slow (alive, never trips the detector)
/// The KV kinds are no-ops when the experiment runs the MySQL data tier;
/// the storm kind is a no-op when no cache tier is configured.
class ChaosController {
 public:
  ChaosController(Experiment& exp, millib::FaultPlan plan);

  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;

  /// Schedule every spec; called once by Experiment::build.
  void arm();

  const millib::FaultPlan& plan() const { return plan_; }
  /// One entry per spec, filled in as faults apply and clear.
  const std::vector<millib::FaultEvent>& events() const { return events_; }
  std::size_t faults_applied() const { return applied_; }
  std::size_t faults_cleared() const { return cleared_; }
  /// Applied/cleared episode trace (one line each) — the chaos artefact the
  /// determinism test compares across same-seed runs.
  std::string trace_string() const;

 private:
  /// Per-spec saved state so clear() restores exactly what apply() changed.
  struct SpecState {
    std::vector<double> saved_cpu_factors;
    double saved_disk_factor = 1.0;
    std::vector<int> leaked;  // per Apache: slots actually acquired
  };

  int target_worker(const millib::FaultSpec& spec) const;
  void apply(std::size_t i);
  void clear(std::size_t i);

  Experiment& exp_;
  millib::FaultPlan plan_;
  std::vector<millib::FaultEvent> events_;
  std::vector<SpecState> state_;
  std::size_t applied_ = 0;
  std::size_t cleared_ = 0;
  bool armed_ = false;
};

/// Post-run safety-property check. The chaos matrix requires all three to
/// hold for every policy x mechanism cell after traffic quiesces and the
/// drain window elapses.
struct InvariantReport {
  // Request conservation: issued == completed + failed + dropped.
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t in_flight = 0;

  // Endpoint-pool accounting across every balancer (Apache and DB tiers):
  // all slots returned, no waiter leaked.
  std::uint64_t pool_in_use = 0;
  std::uint64_t pool_waiting = 0;

  // No crashed Tomcat ever accepted a request.
  std::uint64_t crashed_accepts = 0;

  // KV write/read accounting (all zero when the run used the MySQL tier).
  // Every issued op must resolve: quorum met, quorum failed, or (writes
  // during a migration handover) shed — and every write replica missed while
  // a replica was down must end up replayed via hinted handoff or counted as
  // dropped, never silently lost.
  std::uint64_t kv_reads_issued = 0;
  std::uint64_t kv_quorum_reads = 0;
  std::uint64_t kv_quorum_failed_reads = 0;
  std::uint64_t kv_writes_issued = 0;
  std::uint64_t kv_quorum_writes = 0;
  std::uint64_t kv_quorum_failed_writes = 0;
  std::uint64_t kv_migration_shed = 0;
  std::uint64_t kv_hints_pending = 0;
  std::uint64_t kv_crashed_dispatches = 0;
  std::uint64_t kv_ops_in_flight = 0;

  // Cache-tier accounting (all zero when the run had no cache tier). Every
  // lookup resolves as a hit or a miss; every miss either started a fill or
  // joined one in flight; every invalidation sent is delivered or dropped —
  // with nothing pending and nothing in flight after the drain window.
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_fills_started = 0;
  std::uint64_t cache_coalesced_fills = 0;
  std::uint64_t cache_invalidations_sent = 0;
  std::uint64_t cache_invalidations_delivered = 0;
  std::uint64_t cache_invalidations_dropped = 0;
  std::uint64_t cache_invalidations_pending = 0;
  std::uint64_t cache_ops_in_flight = 0;

  bool conservation_ok() const { return in_flight == 0; }
  bool pools_ok() const { return pool_in_use == 0 && pool_waiting == 0; }
  bool crash_ok() const { return crashed_accepts == 0; }
  bool kv_ok() const {
    return kv_reads_issued == kv_quorum_reads + kv_quorum_failed_reads &&
           kv_writes_issued ==
               kv_quorum_writes + kv_quorum_failed_writes + kv_migration_shed &&
           kv_hints_pending == 0 && kv_crashed_dispatches == 0 &&
           kv_ops_in_flight == 0;
  }
  bool cache_ok() const {
    return cache_lookups == cache_hits + cache_misses &&
           cache_misses == cache_fills_started + cache_coalesced_fills &&
           cache_invalidations_sent ==
               cache_invalidations_delivered + cache_invalidations_dropped &&
           cache_invalidations_pending == 0 && cache_ops_in_flight == 0;
  }
  bool ok() const {
    return conservation_ok() && pools_ok() && crash_ok() && kv_ok() &&
           cache_ok();
  }
  std::string to_string() const;
};

/// Evaluate the three invariants on a finished (quiesced + drained) run.
InvariantReport check_invariants(Experiment& e);

/// Digest of one chaos run: the usual summary plus invariants, the fault
/// trace, and the resilience-layer counters.
struct ChaosRunResult {
  std::string label;
  RunSummary summary;
  InvariantReport invariants;
  std::string fault_trace;
  std::uint64_t breaker_trips = 0;
  std::uint64_t retries = 0;
  std::uint64_t retry_successes = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_timed_out = 0;
};

/// Run `config` with traffic quiesced at `traffic`; the remainder of
/// config.duration (>= traffic + expected drain) lets in-flight work,
/// retransmission chains and fault clears settle before the invariants are
/// evaluated. Sets config.duration = traffic + drain.
ChaosRunResult run_chaos(ExperimentConfig config, sim::SimTime traffic,
                         sim::SimTime drain);

/// One cell-sized configuration of the full chaos matrix.
struct ChaosMatrixOptions {
  std::uint64_t chaos_seed = 1;
  /// Turn on prober + breaker + budgeted retries in every cell.
  bool resilience = false;
  /// Run every cell with the recovery orchestration layer active; the
  /// safety invariants must survive its interventions (suppressed retries
  /// and recovery 503s are answered, never lost, and step-down breaker
  /// resets may not leak pool slots).
  bool recovery = false;
  /// Overload control applied in every cell (kNone = seed behaviour). The
  /// safety invariants must survive deadline/admission/CoDel shedding on
  /// top of the fault schedule — sheds are answered, never lost.
  control::OverloadMode overload = control::OverloadMode::kNone;
  int num_apaches = 2;
  int num_tomcats = 3;
  int num_clients = 400;
  sim::SimTime think_mean = sim::SimTime::millis(200);
  sim::SimTime traffic = sim::SimTime::seconds(10);
  sim::SimTime drain = sim::SimTime::seconds(8);
};

/// The randomized fault schedule used by the matrix (also handy on its own:
/// the determinism test replays it).
millib::FaultPlan matrix_plan(const ChaosMatrixOptions& opt);

/// Run the seeded fault schedule against every policy (7) x mechanism (3)
/// combination — 21 cells, same plan in each — and return per-cell results.
std::vector<ChaosRunResult> run_chaos_matrix(const ChaosMatrixOptions& opt);

/// Hand-written gray-failure schedule over the matrix testbed: one gray
/// data-path fault, one gray link fault on one Apache, and a second gray
/// data-path fault overlapping the link fault — all differential-
/// observability (the prober, breaker and piggybacked reports keep seeing
/// healthy nodes), all cleared before traffic ends.
millib::FaultPlan gray_matrix_plan(const ChaosMatrixOptions& opt);

/// Run the gray-failure schedule against a policy x mechanism slice of the
/// matrix (resilience/recovery per the options — the interesting cells are
/// resilience-on, where every detector is being evaded, and recovery-on,
/// where the orchestrator must catch what the breaker cannot).
std::vector<ChaosRunResult> run_gray_chaos_matrix(const ChaosMatrixOptions& opt);

/// One cell-sized configuration of the KV chaos matrix: same testbed shape
/// as ChaosMatrixOptions, but the data tier is the replicated KV store and
/// the plan exercises replica crashes and shard migrations.
struct KvChaosMatrixOptions {
  std::uint64_t chaos_seed = 1;
  int num_apaches = 2;
  int num_tomcats = 3;
  /// KV fleet size (kv.replicas); quorum stays the N=3, R=W=2 default.
  int kv_replicas = 5;
  int num_clients = 400;
  sim::SimTime think_mean = sim::SimTime::millis(200);
  sim::SimTime traffic = sim::SimTime::seconds(10);
  sim::SimTime drain = sim::SimTime::seconds(8);
};

/// Hand-written KV fault schedule: two non-overlapping replica crashes that
/// both recover before traffic ends (so hinted handoff replays inside the
/// run) plus two shard migrations. Non-overlapping crashes keep every shard
/// at >= N-1 live members, so the R=W=2 quorums must never fail.
millib::FaultPlan kv_matrix_plan(const KvChaosMatrixOptions& opt);

/// Run the KV fault schedule against a policy x mechanism slice of the
/// matrix with db_tier = kKv, and return per-cell results. Each cell's
/// InvariantReport must satisfy kv_ok() in addition to the usual three.
std::vector<ChaosRunResult> run_kv_chaos_matrix(const KvChaosMatrixOptions& opt);

/// One cell-sized configuration of the cache chaos matrix: the KV testbed
/// with the look-aside cache tier layered in front, stressed by
/// invalidation storms alongside a replica crash.
struct CacheChaosMatrixOptions {
  std::uint64_t chaos_seed = 1;
  int num_apaches = 2;
  int num_tomcats = 3;
  int kv_replicas = 5;
  int cache_nodes = 2;
  int num_clients = 400;
  sim::SimTime think_mean = sim::SimTime::millis(200);
  sim::SimTime traffic = sim::SimTime::seconds(10);
  sim::SimTime drain = sim::SimTime::seconds(8);
};

/// Hand-written cache fault schedule: two invalidation storms (the second
/// wider than the first) plus one recovering replica crash, so cache
/// accounting is checked both under queue pressure and while the backing
/// quorum is degraded.
millib::FaultPlan cache_matrix_plan(const CacheChaosMatrixOptions& opt);

/// Run the cache fault schedule against a policy x mechanism slice of the
/// matrix with cache_tier = true, and return per-cell results. Each cell's
/// InvariantReport must satisfy cache_ok() in addition to kv_ok() and the
/// usual three.
std::vector<ChaosRunResult> run_cache_chaos_matrix(
    const CacheChaosMatrixOptions& opt);

}  // namespace ntier::experiment
