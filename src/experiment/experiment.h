#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "cache/tier.h"
#include "experiment/config.h"
#include "kv/replica.h"
#include "kv/tier.h"
#include "metrics/request_log.h"
#include "metrics/sampler.h"
#include "millib/injector.h"
#include "millib/online_detector.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "os/node.h"
#include "recovery/orchestrator.h"
#include "server/apache_server.h"
#include "server/db_router.h"
#include "server/mysql_server.h"
#include "server/tomcat_server.h"
#include "sim/simulation.h"
#include "workload/client.h"
#include "workload/rubbos.h"
#include "workload/trace.h"

namespace ntier::experiment {

class ChaosController;

/// Builds the full testbed described by an ExperimentConfig — client
/// population, Apache tier (each with its own balancer), Tomcat tier (each
/// with its own DB router), MySQL replica(s), per-node OS models with
/// pdflush or synthetic stall injectors — runs it, and exposes every
/// collected series. One Experiment = one row/curve of the paper.
class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Run for config.duration of simulated time (call once).
  void run();

  // -- components --------------------------------------------------------------
  const ExperimentConfig& config() const { return config_; }
  sim::Simulation& simulation() { return sim_; }
  const metrics::RequestLog& log() const { return log_; }
  const workload::ClientPopulation& clients() const { return *clients_; }
  /// Mutable access for pre-run instrumentation (issue hooks etc.).
  workload::ClientPopulation& mutable_clients() { return *clients_; }
  /// The open-loop trace replayer; null unless config.replay_trace is set.
  const workload::TraceReplayer* replayer() const { return replayer_.get(); }
  workload::TraceReplayer* replayer() { return replayer_.get(); }

  int num_apaches() const { return static_cast<int>(apaches_.size()); }
  int num_tomcats() const { return static_cast<int>(tomcats_.size()); }
  int num_mysql() const { return static_cast<int>(mysqls_.size()); }
  int num_kv_replicas() const { return static_cast<int>(kv_replicas_.size()); }
  server::ApacheServer& apache(int i) { return *apaches_[static_cast<std::size_t>(i)]; }
  server::TomcatServer& tomcat(int i) { return *tomcats_[static_cast<std::size_t>(i)]; }
  server::MySqlServer& mysql(int i = 0) { return *mysqls_[static_cast<std::size_t>(i)]; }
  server::DbRouter& db_router(int tomcat) {
    return *db_routers_[static_cast<std::size_t>(tomcat)];
  }
  /// The shared KV quorum tier; null unless config.db_tier == kKv.
  kv::KvTier* kv_tier() { return kv_tier_.get(); }
  const kv::KvTier* kv_tier() const { return kv_tier_.get(); }
  kv::KvReplica& kv_replica(int i) {
    return *kv_replicas_[static_cast<std::size_t>(i)];
  }
  os::Node& kv_node(int i) { return *kv_nodes_[static_cast<std::size_t>(i)]; }
  /// The look-aside cache tier; null unless config.cache_tier.
  cache::CacheTier* cache_tier() { return cache_tier_.get(); }
  const cache::CacheTier* cache_tier() const { return cache_tier_.get(); }
  int num_cache_nodes() const { return static_cast<int>(cache_nodes_.size()); }
  os::Node& cache_node(int i) {
    return *cache_nodes_[static_cast<std::size_t>(i)];
  }
  /// Null unless config.fault_plan is non-empty.
  const ChaosController* chaos() const { return chaos_.get(); }
  /// The cross-tier event collector; null unless config.event_trace,
  /// config.telemetry.enabled or config.online_detect (the latter two run it
  /// ring-less as a pure event bus for their sinks).
  obs::TraceCollector* trace() { return trace_.get(); }
  const obs::TraceCollector* trace() const { return trace_.get(); }
  /// Streaming telemetry registry; null unless config.telemetry.enabled
  /// (always null under -DNTIER_OBS_DISABLED: zero instruments exist).
  obs::TelemetryRegistry* telemetry() { return telemetry_.get(); }
  const obs::TelemetryRegistry* telemetry() const { return telemetry_.get(); }
  /// Online millibottleneck detector; null unless config.online_detect
  /// (always null under -DNTIER_OBS_DISABLED: no events to consume).
  millib::OnlineDetector* online_detector() { return detector_.get(); }
  const millib::OnlineDetector* online_detector() const {
    return detector_.get();
  }
  /// Recovery orchestrator; null unless config.recovery.enabled (always
  /// null under -DNTIER_OBS_DISABLED: no event stream to judge from).
  recovery::RecoveryOrchestrator* recovery() { return recovery_.get(); }
  const recovery::RecoveryOrchestrator* recovery() const {
    return recovery_.get();
  }
  /// Ground truth for scoring the online detector: flush/stall intervals of
  /// every Tomcat, indexed by node.
  std::vector<std::vector<std::pair<sim::SimTime, sim::SimTime>>>
  tomcat_truth_intervals() const;
  os::Node& apache_node(int i) { return *apache_nodes_[static_cast<std::size_t>(i)]; }
  os::Node& tomcat_node(int i) { return *tomcat_nodes_[static_cast<std::size_t>(i)]; }
  os::Node& mysql_node(int i = 0) { return *mysql_nodes_[static_cast<std::size_t>(i)]; }

  // -- derived series (tracing only) --------------------------------------------
  /// Per-window *sum over servers* of the per-window queue maxima for each
  /// tier — the paper's tier-level queue plots (Fig. 2(b), 8, 12).
  std::vector<double> apache_tier_queue() const;
  /// Tomcat tier queue in the paper's accounting: requests committed by any
  /// balancer to any Tomcat (includes those blocked inside get_endpoint).
  std::vector<double> tomcat_tier_queue() const;
  std::vector<double> mysql_tier_queue() const;
  /// KV tier queue: per-window sum over replicas of resident-op maxima
  /// (empty in MySQL mode).
  std::vector<double> kv_tier_queue() const;
  /// Committed-queue series of one Tomcat, summed across the 4 balancers.
  std::vector<double> tomcat_committed_series(int tomcat) const;
  /// Physically resident series of one Tomcat.
  std::vector<double> tomcat_resident_series(int tomcat) const;

  /// CPU utilisation (foreground + iowait stall) per 50 ms window.
  const metrics::TimeSeries& tomcat_cpu_series(int i) const {
    return tomcat_cpu_[static_cast<std::size_t>(i)]->series();
  }
  const metrics::TimeSeries& apache_cpu_series(int i) const {
    return apache_cpu_[static_cast<std::size_t>(i)]->series();
  }
  const metrics::TimeSeries& mysql_cpu_series(int i = 0) const {
    return mysql_cpu_[static_cast<std::size_t>(i)]->series();
  }
  const metrics::TimeSeries& tomcat_iowait_series(int i) const {
    return tomcat_iowait_[static_cast<std::size_t>(i)]->series();
  }
  const metrics::TimeSeries& kv_cpu_series(int i) const {
    return kv_cpu_[static_cast<std::size_t>(i)]->series();
  }
  const metrics::TimeSeries& cache_cpu_series(int i) const {
    return cache_cpu_[static_cast<std::size_t>(i)]->series();
  }

  /// Mean CPU utilisation over the run, per server (Fig. 5).
  double mean_cpu(const metrics::TimeSeries& s) const;

  /// Ground-truth millibottleneck intervals on a Tomcat node: pdflush
  /// episodes, or injector stalls when a synthetic source is configured.
  std::vector<std::pair<sim::SimTime, sim::SimTime>> flush_intervals(
      int tomcat) const;
  /// Ground-truth millibottleneck intervals on a MySQL node.
  std::vector<std::pair<sim::SimTime, sim::SimTime>> mysql_flush_intervals(
      int replica) const;
  /// Ground-truth injected-stall intervals on the KV tier (empty unless
  /// config.kv_millibottlenecks placed injectors on the hot shard's nodes).
  std::vector<std::pair<sim::SimTime, sim::SimTime>> kv_stall_intervals() const;

  std::size_t num_metric_windows() const;

 private:
  void build();
  /// Fill config defaults that depend on other fields (kv mode gives the
  /// workload a key space when none was set).
  static ExperimentConfig normalized(ExperimentConfig config);
  std::unique_ptr<os::Node> make_node(const std::string& name,
                                      bool millibottlenecks,
                                      os::PdflushConfig pdflush, int index,
                                      std::uint64_t throttle_bytes = 0);

  ExperimentConfig config_;
  sim::Simulation sim_;
  workload::RubbosWorkload workload_;
  metrics::RequestLog log_;

  std::vector<std::unique_ptr<os::Node>> apache_nodes_;
  std::vector<std::unique_ptr<os::Node>> tomcat_nodes_;
  std::vector<std::unique_ptr<os::Node>> mysql_nodes_;
  std::vector<std::unique_ptr<os::Node>> kv_nodes_;
  std::vector<std::unique_ptr<server::MySqlServer>> mysqls_;
  std::vector<std::unique_ptr<kv::KvReplica>> kv_replicas_;
  std::unique_ptr<kv::KvTier> kv_tier_;
  std::vector<std::unique_ptr<os::Node>> cache_nodes_;
  std::unique_ptr<cache::CacheTier> cache_tier_;
  std::vector<std::unique_ptr<millib::CapacityStallInjector>> kv_injectors_;
  std::vector<std::unique_ptr<server::DbRouter>> db_routers_;
  std::vector<std::unique_ptr<server::TomcatServer>> tomcats_;
  std::vector<std::unique_ptr<server::ApacheServer>> apaches_;
  std::vector<std::unique_ptr<millib::CapacityStallInjector>> injectors_;
  std::unique_ptr<workload::ClientPopulation> clients_;
  std::unique_ptr<workload::TraceReplayer> replayer_;
  std::unique_ptr<ChaosController> chaos_;
  std::unique_ptr<obs::TraceCollector> trace_;
  std::unique_ptr<obs::TelemetryRegistry> telemetry_;
  std::unique_ptr<obs::TelemetryFeed> telemetry_feed_;
  std::unique_ptr<millib::OnlineDetector> detector_;
  std::unique_ptr<recovery::RecoveryOrchestrator> recovery_;

  std::vector<std::unique_ptr<metrics::PeriodicSampler>> apache_cpu_;
  std::vector<std::unique_ptr<metrics::PeriodicSampler>> tomcat_cpu_;
  std::vector<std::unique_ptr<metrics::PeriodicSampler>> tomcat_iowait_;
  std::vector<std::unique_ptr<metrics::PeriodicSampler>> mysql_cpu_;
  std::vector<std::unique_ptr<metrics::PeriodicSampler>> kv_cpu_;
  std::vector<std::unique_ptr<metrics::PeriodicSampler>> cache_cpu_;
  /// Emit-only iowait samplers for the non-Tomcat nodes, feeding kIoWait
  /// events into the trace (no series is read back from them).
  std::vector<std::unique_ptr<metrics::PeriodicSampler>> trace_iowait_;
  bool ran_ = false;
};

}  // namespace ntier::experiment
