#pragma once

#include <cstdint>
#include <string>

#include "cache/config.h"
#include "control/overload.h"
#include "kv/config.h"
#include "lb/endpoint.h"
#include "lb/load_balancer.h"
#include "lb/policy.h"
#include "millib/fault_plan.h"
#include "millib/injector.h"
#include "millib/online_detector.h"
#include "net/retransmit.h"
#include "obs/telemetry.h"
#include "os/node.h"
#include "recovery/orchestrator.h"
#include "server/apache_server.h"
#include "server/db_router.h"
#include "server/mysql_server.h"
#include "server/tomcat_server.h"
#include "sim/time.h"
#include "workload/client.h"
#include "workload/rubbos.h"
#include "workload/trace.h"

#include <memory>

namespace ntier::experiment {

/// What creates the transient stalls on the Tomcat nodes. The paper's
/// organic cause is pdflush; the others reproduce §III-A's list of causes
/// (JVM garbage collection, DVFS, VM consolidation) via injectors.
enum class StallSource {
  kPdflush,
  kGcPause,
  kDvfs,
  kVmConsolidation,
};

std::string to_string(StallSource s);

/// Full description of one run: topology, workload, policy/mechanism combo,
/// and the millibottleneck environment. Presets reproduce the paper's
/// configurations.
struct ExperimentConfig {
  std::string label = "experiment";
  std::uint64_t seed = 42;

  // -- topology ---------------------------------------------------------------
  int num_apaches = 4;
  int num_tomcats = 4;
  int num_mysql = 1;
  /// Which data tier backs the servlets' DB round trips. kMysql is the
  /// paper's single-primary setup; kKv replaces it with the replicated
  /// sharded KV tier (src/kv) routed by request key.
  server::DbTier db_tier = server::DbTier::kMysql;
  /// KV topology and quorum parameters (kKv mode only).
  kv::KvConfig kv;
  /// pdflush + injected stalls on the KV replica nodes — the data tier's
  /// own millibottleneck source. Correlated injector stalls are placed on
  /// enough members of the hot key's shard (n - r + 1 of them) that the
  /// quorum cannot mask the episode.
  bool kv_millibottlenecks = false;
  /// Look-aside cache tier between the Tomcats and the KV tier (kKv mode
  /// only): per-node LRU+TTL stores, invalidate-on-write broadcast, and
  /// optional single-flight fill coalescing (src/cache).
  bool cache_tier = false;
  /// Cache topology and behaviour (cache_tier mode only).
  cache::CacheConfig cache;

  // -- workload ---------------------------------------------------------------
  workload::WorkloadParams workload;
  int num_clients = 7'000;
  sim::SimTime think_mean = sim::SimTime::millis(700);
  sim::SimTime duration = sim::SimTime::seconds(60);
  sim::SimTime warmup = sim::SimTime::seconds(3);
  net::RetransmitSchedule retransmit;
  sim::SimTime link_latency = sim::SimTime::micros(100);
  /// Open-loop trace replay: when set, a TraceReplayer drives the recorded
  /// arrivals against the front-ends and the closed-loop population is idled
  /// (normalized() leaves one client thinking past the horizon, so chaos
  /// conservation checks still hold). Shared so sweep replicas reuse one
  /// loaded trace instead of copying it per cell.
  std::shared_ptr<const workload::ArrivalTrace> replay_trace;
  /// Client-side patience during replay: unanswered requests older than this
  /// are abandoned and logged as dropped (zero = wait forever).
  sim::SimTime replay_client_timeout;

  // -- policy & mechanism under test -------------------------------------------
  lb::PolicyKind policy = lb::PolicyKind::kTotalRequest;
  lb::MechanismKind mechanism = lb::MechanismKind::kBlocking;
  lb::BalancerConfig balancer;
  /// Per-Tomcat lbfactor weights (empty = homogeneous).
  std::vector<double> tomcat_weights;
  /// Clients keep a jvmRoute after their first interaction and the
  /// balancers honour it (mod_jk sticky sessions).
  bool sticky_sessions = false;
  /// Prequal-style load probing of the Tomcats (src/probe), one pool per
  /// Apache. Experiment::build() force-enables this whenever `policy` is
  /// probe-aware (kPowerOfD / kPrequal) so those policies never run blind;
  /// explicitly enabling it with another policy just measures probe overhead.
  probe::ProbeConfig probe;
  /// End-to-end overload control (src/control): deadline propagation, AIMD
  /// admission limiting, CoDel sojourn shedding, priority brownout. Copied
  /// into every tier's server config by Experiment::build(); clients stamp
  /// deadlines whenever `overload.stamp_deadlines` is on (so baseline cells
  /// can report comparable goodput without enforcing anything).
  control::OverloadConfig overload;
  /// Recovery orchestration (src/recovery): declares sustained-degradation
  /// episodes from the live completion stream and applies staged
  /// interventions — retry suppression, temporary hard shedding, cache
  /// refill gating, breaker reset at step-down. Rides the event bus, so
  /// Experiment::build() spins up a ring-less collector when nothing else
  /// needs one (and the loop is inert under -DNTIER_OBS_DISABLED, like
  /// telemetry and online detection).
  recovery::RecoveryConfig recovery;

  // -- servers ------------------------------------------------------------------
  server::ApacheConfig apache;
  server::TomcatConfig tomcat;
  server::MySqlConfig mysql;
  server::DbRouterConfig db_router;

  // -- nodes & millibottleneck environment --------------------------------------
  int cores = 4;
  /// Effective writeback bandwidth of the 7200-rpm SATA data disk. Log
  /// writeback is scattered small blocks, so the effective rate sits well
  /// below the sequential maximum; 60 MB/s yields the paper's
  /// hundreds-of-milliseconds flush stalls at this log volume (calibrated
  /// against Table I's VLRT fractions).
  double disk_bytes_per_second = 60.0 * (1 << 20);
  /// pdflush active on the Tomcat nodes (the paper's organic millibottleneck
  /// source). Disable to reproduce the "millibottlenecks eliminated"
  /// baseline (Fig. 1).
  bool tomcat_millibottlenecks = true;
  /// What produces the Tomcat-side stalls when enabled (§III-A's causes).
  StallSource tomcat_stall_source = StallSource::kPdflush;
  /// Injector profile for the non-pdflush sources (period/duration/severity).
  millib::InjectorConfig injector = millib::gc_pause_profile();
  /// Foreground dirty throttle on the Tomcat nodes (Linux dirty_ratio in
  /// bytes; 0 = disabled). When tripped, servlet threads park in their log
  /// writes — thread starvation instead of (or on top of) the iowait stall.
  std::uint64_t tomcat_dirty_throttle_bytes = 0;
  /// pdflush active on the MySQL node(s) — used by the DB-tier extension
  /// experiments (replica suffering millibottlenecks).
  bool mysql_millibottlenecks = false;
  os::PdflushConfig mysql_pdflush;
  /// Bursty arrivals (another §III-A cause): the client population
  /// alternates normal/burst phases (see ClientParams).
  bool bursty_workload = false;
  double burst_multiplier = 4.0;
  /// Chaos fault schedule, applied by a ChaosController during the run when
  /// non-empty (see experiment/chaos.h). Orthogonal to the organic
  /// millibottleneck sources above, and composable with them.
  millib::FaultPlan fault_plan;
  /// pdflush active on the Apache nodes (only the single-node anatomy
  /// experiment, Fig. 2, leaves these on).
  bool apache_millibottlenecks = false;
  os::PdflushConfig tomcat_pdflush;  // interval/threshold/severity knobs
  os::PdflushConfig apache_pdflush;
  /// First-wakeup offset between consecutive Tomcat nodes, so flushes do not
  /// line up across the tier (paper: one Tomcat at a time; its Fig. 2(a)
  /// shows bottleneck episodes recurring ≈1 s apart). With ≈1.1 s between
  /// consecutive Tomcats' stalls, a retransmitted SYN can collide with the
  /// *next* Tomcat's millibottleneck — the source of the 2 s/3 s VLRT
  /// clusters in Fig. 4.
  sim::SimTime pdflush_stagger = sim::SimTime::millis(1100);

  // -- metrics -------------------------------------------------------------------
  sim::SimTime metric_window = sim::SimTime::millis(50);
  /// Enable lb_value/committed/assignment traces and CPU/iowait samplers.
  bool tracing = true;
  /// Keep every RequestRecord (needed only when dumping raw CSV).
  bool keep_records = false;
  /// Enable the cross-tier event trace (src/obs): every tier emits its
  /// fixed-vocabulary events into one ring buffer, exportable as JSONL or
  /// Chrome trace-event JSON and consumable by the CausalChainAnalyzer.
  bool event_trace = false;
  /// Event-trace ring capacity (events; ~48 B each). The oldest events are
  /// overwritten once full.
  std::size_t trace_capacity = 4u << 20;
  /// Streaming telemetry registry (src/obs/telemetry): per-tier instruments
  /// with multi-resolution timelines and per-window quantile sketches, fed
  /// from the live event stream. Independent of event_trace — enabling it
  /// spins up the emission path with no retention ring.
  obs::TelemetryConfig telemetry;
  /// Online millibottleneck detection (millib::OnlineDetector) during the
  /// run: flags episodes in real time from the same signature the offline
  /// analyzer reconstructs, and drives tail-based trace sampling.
  bool online_detect = false;
  millib::OnlineDetectorConfig online_detector;
  /// Tail-based trace sampling: keep only detector-marked episode windows,
  /// VLRT requests end to end, node-level signals and a deterministic head
  /// sample. Requires online_detect (the detector supplies the marks).
  obs::TailConfig trace_tail;

  /// Offered load in requests/second: clients / think time for the closed
  /// loop, trace arrivals / duration when replaying.
  double offered_rps() const {
    if (replay_trace)
      return static_cast<double>(replay_trace->size()) / duration.to_seconds();
    return static_cast<double>(num_clients) / think_mean.to_seconds();
  }

  /// The paper's operating point: 70 000 clients, 7 s mean think time,
  /// ≈180 s of traffic (≈1.8 M requests), 4 Apaches / 4 Tomcats / 1 MySQL.
  static ExperimentConfig paper_scale();

  /// Same offered load with `factor`× fewer clients thinking `factor`× less
  /// — the quick mode used by tests and default bench runs.
  static ExperimentConfig scaled(double factor = 0.1);

  /// The single-node anatomy setup of Fig. 2: 1 Apache, 1 Tomcat, 1 MySQL,
  /// millibottlenecks on both Apache and Tomcat, no balancing choice.
  static ExperimentConfig single_node(double factor = 0.1);

  /// Turn on the full resilience layer: active health probing, the
  /// probe-driven circuit breaker, and budgeted front-end retries.
  void enable_resilience();
};

std::string describe(const ExperimentConfig& c);

}  // namespace ntier::experiment
