#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "experiment/experiment.h"
#include "metrics/time_series.h"
#include "obs/trace_io.h"

namespace ntier::experiment {

/// Table I header (shared by the table bench and the examples).
void print_table1_header(std::ostream& os);

/// Render a numeric series as a unicode sparkline (so the bench output shows
/// the *shape* of each figure directly in the terminal).
std::string sparkline(const std::vector<double>& values, std::size_t width = 80);

/// Extract one value per window from a TimeSeries.
std::vector<double> series_avg(const metrics::TimeSeries& s, std::size_t windows);
std::vector<double> series_max(const metrics::TimeSeries& s, std::size_t windows);
std::vector<double> series_count(const metrics::TimeSeries& s, std::size_t windows);

/// Slice [t0, t1) out of a per-window series.
std::vector<double> slice(const std::vector<double>& v, sim::SimTime window,
                          sim::SimTime t0, sim::SimTime t1);

double max_of(const std::vector<double>& v);
double sum_of(const std::vector<double>& v);

/// Print "name: [sparkline]  (peak=…)" summarising a figure panel.
void print_panel(std::ostream& os, const std::string& name,
                 const std::vector<double>& v);

/// Dump one or more aligned per-window series as CSV columns.
void write_series_csv(const std::string& path, sim::SimTime window,
                      const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& columns);

/// Shared bench command line: `--full` switches to paper scale, `--csv DIR`
/// writes raw series, `--seed N` overrides the seed, `--trace FILE` captures
/// the cross-tier event trace of each run (2nd+ runs get a `.N` suffix),
/// `--trace-format jsonl|chrome` picks the serialisation, `--json FILE`
/// appends one JSON result row per run (for scripts/run_all_benches.sh), and
/// `--sweep-seeds N --jobs J` turns each table row into an N-replica sweep
/// whose rows and JSON carry mean ± 95% CI columns.
struct BenchOptions {
  bool full = false;
  /// `--quick`: shrink each run for CI smoke jobs (shorter duration; benches
  /// may also skip their most expensive cells).
  bool quick = false;
  std::string csv_dir;
  std::uint64_t seed = 42;
  std::string program;     // argv[0] basename, stamped into JSON rows
  std::string trace_path;  // write each run's event trace here
  obs::TraceFormat trace_format = obs::TraceFormat::kJsonl;
  std::string json_path;   // append per-run JSON result rows here
  int sweep_seeds = 1;     // > 1: sweep each row across derived seeds
  int jobs = 1;            // sweep worker threads (output is jobs-invariant)
  static BenchOptions parse(int argc, char** argv);
  /// Apply scale/seed to a config produced by a preset.
  ExperimentConfig apply(ExperimentConfig base) const;
};

}  // namespace ntier::experiment
