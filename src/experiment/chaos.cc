#include "experiment/chaos.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "sim/rng.h"

namespace ntier::experiment {

ChaosController::ChaosController(Experiment& exp, millib::FaultPlan plan)
    : exp_(exp), plan_(std::move(plan)) {
  events_.resize(plan_.specs.size());
  state_.resize(plan_.specs.size());
  for (std::size_t i = 0; i < plan_.specs.size(); ++i)
    events_[i].spec = plan_.specs[i];
}

int ChaosController::target_worker(const millib::FaultSpec& spec) const {
  // Hand-written plans may carry out-of-range indices; fold them into the
  // actual tier width so a plan written for 4 Tomcats still runs against 3.
  const int n = const_cast<Experiment&>(exp_).num_tomcats();
  if (spec.worker < 0) return 0;
  return spec.worker % n;
}

void ChaosController::arm() {
  if (armed_) throw std::logic_error("ChaosController::arm called twice");
  armed_ = true;
  auto& sim = exp_.simulation();
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const auto& spec = plan_.specs[i];
    sim.at(spec.start, [this, i] { apply(i); });
    sim.at(spec.end(), [this, i] { clear(i); });
  }
}

void ChaosController::apply(std::size_t i) {
  const auto& spec = plan_.specs[i];
  auto& st = state_[i];
  auto& sim = exp_.simulation();
  const double stall_factor = std::max(0.0, 1.0 - spec.severity);
  switch (spec.kind) {
    case millib::FaultKind::kCapacityStall: {
      auto& cpu = exp_.tomcat_node(target_worker(spec)).cpu();
      st.saved_cpu_factors = {cpu.capacity_factor()};
      cpu.set_capacity_factor(std::min(st.saved_cpu_factors[0], stall_factor));
      break;
    }
    case millib::FaultKind::kCorrelatedStall: {
      // Every backend at once — the blind spot of per-worker state machines.
      for (int t = 0; t < exp_.num_tomcats(); ++t) {
        auto& cpu = exp_.tomcat_node(t).cpu();
        st.saved_cpu_factors.push_back(cpu.capacity_factor());
        cpu.set_capacity_factor(std::min(st.saved_cpu_factors.back(),
                                         stall_factor));
      }
      break;
    }
    case millib::FaultKind::kCrash: {
      const int w = target_worker(spec);
      exp_.tomcat(w).crash();
      // Fail the queued waiters on every balancer's pool for this worker so
      // parked requests fail over instead of waiting on a dead backend.
      for (int a = 0; a < exp_.num_apaches(); ++a)
        exp_.apache(a).balancer().mutable_pool(w).drain();
      break;
    }
    case millib::FaultKind::kLinkFault:
      exp_.mutable_clients().link().set_fault(spec.extra_latency,
                                              spec.loss_probability);
      break;
    case millib::FaultKind::kPoolLeak: {
      const int w = target_worker(spec);
      for (int a = 0; a < exp_.num_apaches(); ++a) {
        auto& pool = exp_.apache(a).balancer().mutable_pool(w);
        int k = 0;
        while (k < spec.leak_slots && pool.try_acquire()) ++k;
        st.leaked.push_back(k);
      }
      break;
    }
    case millib::FaultKind::kDiskDegrade: {
      auto& disk = exp_.tomcat_node(target_worker(spec)).disk();
      st.saved_disk_factor = disk.rate_factor();
      disk.set_rate_factor(
          std::max(0.05, st.saved_disk_factor * (1.0 - spec.severity)));
      break;
    }
    case millib::FaultKind::kReplicaCrash: {
      auto* kv = exp_.kv_tier();
      if (!kv) break;  // MySQL-tier run: nothing to crash.
      const int r =
          spec.worker < 0 ? 0 : spec.worker % exp_.num_kv_replicas();
      kv->on_replica_crashed(r);
      break;
    }
    case millib::FaultKind::kShardMigration: {
      auto* kv = exp_.kv_tier();
      if (!kv) break;
      const int s = spec.worker < 0 ? 0 : spec.worker % kv->num_shards();
      kv->begin_migration(s, spec.duration, spec.severity);
      break;
    }
    case millib::FaultKind::kInvalidationStorm: {
      auto* cache = exp_.cache_tier();
      if (!cache) break;  // No cache tier configured: nothing to storm.
      cache->begin_invalidation_storm(spec.duration, spec.severity);
      break;
    }
    case millib::FaultKind::kGrayDataPath:
      // Differential observability: service demand inflates but the probe
      // path and the piggybacked load reports keep answering from the
      // frozen pre-fault snapshot.
      exp_.tomcat(target_worker(spec)).set_gray_degraded(spec.severity);
      break;
    case millib::FaultKind::kGrayLink:
      // Partial fault on ONE Apache's backend link (worker selects the
      // Apache): requests through that balancer see loss + latency while
      // its siblings — and the health prober's verdicts — stay clean.
      exp_.apache(spec.worker < 0 ? 0 : spec.worker % exp_.num_apaches())
          .tomcat_link()
          .set_fault(spec.extra_latency, spec.loss_probability);
      break;
    case millib::FaultKind::kGraySlowReplica: {
      auto* kv = exp_.kv_tier();
      if (!kv) break;  // MySQL-tier run: nothing to slow.
      const int r =
          spec.worker < 0 ? 0 : spec.worker % exp_.num_kv_replicas();
      kv->replica(r).set_slow(spec.severity);
      break;
    }
  }
  events_[i].applied = sim.now();
  ++applied_;
}

void ChaosController::clear(std::size_t i) {
  const auto& spec = plan_.specs[i];
  auto& st = state_[i];
  auto& sim = exp_.simulation();
  switch (spec.kind) {
    case millib::FaultKind::kCapacityStall:
      exp_.tomcat_node(target_worker(spec))
          .cpu()
          .set_capacity_factor(st.saved_cpu_factors.at(0));
      break;
    case millib::FaultKind::kCorrelatedStall:
      for (int t = 0; t < exp_.num_tomcats(); ++t)
        exp_.tomcat_node(t).cpu().set_capacity_factor(
            st.saved_cpu_factors.at(static_cast<std::size_t>(t)));
      break;
    case millib::FaultKind::kCrash:
      exp_.tomcat(target_worker(spec)).restart();
      break;
    case millib::FaultKind::kLinkFault:
      exp_.mutable_clients().link().clear_fault();
      break;
    case millib::FaultKind::kPoolLeak: {
      const int w = target_worker(spec);
      for (int a = 0; a < exp_.num_apaches(); ++a) {
        auto& pool = exp_.apache(a).balancer().mutable_pool(w);
        for (int k = 0; k < st.leaked.at(static_cast<std::size_t>(a)); ++k)
          pool.release();
      }
      break;
    }
    case millib::FaultKind::kDiskDegrade:
      exp_.tomcat_node(target_worker(spec))
          .disk()
          .set_rate_factor(st.saved_disk_factor);
      break;
    case millib::FaultKind::kReplicaCrash:
      if (auto* kv = exp_.kv_tier())
        kv->on_replica_recovered(
            spec.worker < 0 ? 0 : spec.worker % exp_.num_kv_replicas());
      break;
    case millib::FaultKind::kShardMigration:
      // begin_migration schedules its own completion at spec.end(); this
      // call is an idempotent backstop.
      if (auto* kv = exp_.kv_tier())
        kv->complete_migration(spec.worker < 0
                                   ? 0
                                   : spec.worker % kv->num_shards());
      break;
    case millib::FaultKind::kInvalidationStorm:
      // The storm's own tick loop stops itself at spec.end(); this call is
      // an idempotent backstop.
      if (auto* cache = exp_.cache_tier()) cache->end_invalidation_storm();
      break;
    case millib::FaultKind::kGrayDataPath:
      exp_.tomcat(target_worker(spec)).clear_gray_degraded();
      break;
    case millib::FaultKind::kGrayLink:
      exp_.apache(spec.worker < 0 ? 0 : spec.worker % exp_.num_apaches())
          .tomcat_link()
          .clear_fault();
      break;
    case millib::FaultKind::kGraySlowReplica:
      if (auto* kv = exp_.kv_tier())
        kv->replica(spec.worker < 0 ? 0 : spec.worker % exp_.num_kv_replicas())
            .clear_slow();
      break;
  }
  events_[i].cleared = sim.now();
  ++cleared_;
}

std::string ChaosController::trace_string() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << e.spec.to_string() << " applied=" << e.applied.to_string()
       << " cleared=" << e.cleared.to_string() << '\n';
  }
  return os.str();
}

std::string InvariantReport::to_string() const {
  std::ostringstream os;
  os << "conservation " << (conservation_ok() ? "OK" : "VIOLATED")
     << " (issued=" << issued << " completed=" << completed
     << " failed=" << failed << " dropped=" << dropped
     << " in_flight=" << in_flight << "); pools "
     << (pools_ok() ? "OK" : "VIOLATED") << " (in_use=" << pool_in_use
     << " waiting=" << pool_waiting << "); crash "
     << (crash_ok() ? "OK" : "VIOLATED")
     << " (crashed_accepts=" << crashed_accepts << ")";
  if (kv_reads_issued + kv_writes_issued > 0 || !kv_ok()) {
    os << "; kv " << (kv_ok() ? "OK" : "VIOLATED")
       << " (reads=" << kv_reads_issued << "=" << kv_quorum_reads << "+"
       << kv_quorum_failed_reads << " writes=" << kv_writes_issued << "="
       << kv_quorum_writes << "+" << kv_quorum_failed_writes << "+"
       << kv_migration_shed << " hints_pending=" << kv_hints_pending
       << " crashed_dispatches=" << kv_crashed_dispatches
       << " in_flight=" << kv_ops_in_flight << ")";
  }
  if (cache_lookups > 0 || !cache_ok()) {
    os << "; cache " << (cache_ok() ? "OK" : "VIOLATED")
       << " (lookups=" << cache_lookups << "=" << cache_hits << "+"
       << cache_misses << " misses=" << cache_misses << "="
       << cache_fills_started << "+" << cache_coalesced_fills
       << " inval=" << cache_invalidations_sent << "="
       << cache_invalidations_delivered << "+" << cache_invalidations_dropped
       << " pending=" << cache_invalidations_pending
       << " in_flight=" << cache_ops_in_flight << ")";
  }
  return os.str();
}

InvariantReport check_invariants(Experiment& e) {
  InvariantReport r;
  const auto& clients = e.clients();
  r.issued = clients.issued();
  r.completed = clients.completed_ok();
  r.failed = clients.failed();
  r.dropped = clients.dropped();
  r.in_flight = clients.in_flight();
  for (int a = 0; a < e.num_apaches(); ++a) {
    auto& lb = e.apache(a).balancer();
    for (int w = 0; w < lb.num_workers(); ++w) {
      r.pool_in_use += lb.pool(w).in_use();
      r.pool_waiting += lb.pool(w).waiting();
    }
  }
  for (int t = 0; t < e.num_tomcats(); ++t) {
    if (e.db_router(t).has_balancer()) {
      auto& lb = e.db_router(t).balancer();
      for (int w = 0; w < lb.num_workers(); ++w) {
        r.pool_in_use += lb.pool(w).in_use();
        r.pool_waiting += lb.pool(w).waiting();
      }
    }
    r.crashed_accepts += e.tomcat(t).crashed_accepts();
  }
  if (const auto* kv = e.kv_tier()) {
    const auto& s = kv->stats();
    r.kv_reads_issued = s.reads_issued;
    r.kv_quorum_reads = s.quorum_reads;
    r.kv_quorum_failed_reads = s.quorum_failed_reads;
    r.kv_writes_issued = s.writes_issued;
    r.kv_quorum_writes = s.quorum_writes;
    r.kv_quorum_failed_writes = s.quorum_failed_writes;
    r.kv_migration_shed = s.migration_shed;
    r.kv_hints_pending = s.hints_pending();
    r.kv_crashed_dispatches = s.crashed_dispatches;
    r.kv_ops_in_flight = kv->ops_in_flight();
  }
  if (const auto* cache = e.cache_tier()) {
    const auto& s = cache->stats();
    r.cache_lookups = s.lookups;
    r.cache_hits = s.hits;
    r.cache_misses = s.misses;
    r.cache_fills_started = s.fills_started;
    r.cache_coalesced_fills = s.coalesced_fills;
    r.cache_invalidations_sent = s.invalidations_sent;
    r.cache_invalidations_delivered = s.invalidations_delivered;
    r.cache_invalidations_dropped = s.invalidations_dropped;
    r.cache_invalidations_pending = cache->invalidations_pending();
    r.cache_ops_in_flight = cache->ops_in_flight();
  }
  return r;
}

ChaosRunResult run_chaos(ExperimentConfig config, sim::SimTime traffic,
                         sim::SimTime drain) {
  config.duration = traffic + drain;
  Experiment e(std::move(config));
  e.simulation().at(traffic, [&e] { e.mutable_clients().quiesce(); });
  e.run();

  ChaosRunResult r;
  r.label = e.config().label;
  r.summary = summarize(e);
  r.invariants = check_invariants(e);
  if (e.chaos()) r.fault_trace = e.chaos()->trace_string();
  for (int a = 0; a < e.num_apaches(); ++a) {
    auto& apache = e.apache(a);
    r.breaker_trips += apache.balancer().breaker_trips();
    r.retries += apache.retries();
    r.retry_successes += apache.retry_successes();
    if (apache.prober()) {
      r.probes_sent += apache.prober()->probes_sent();
      r.probes_timed_out += apache.prober()->probes_timed_out();
    }
  }
  return r;
}

millib::FaultPlan matrix_plan(const ChaosMatrixOptions& opt) {
  millib::FaultPlanConfig fc;
  fc.initial_offset = sim::SimTime::seconds(1);
  fc.mean_gap = sim::SimTime::millis(800);
  fc.max_duration = sim::SimTime::millis(1200);
  fc.max_faults = 10;
  // Leave room at the end of the traffic window for the longest fault to
  // clear while requests still flow.
  fc.horizon = opt.traffic - fc.max_duration;
  return millib::FaultPlan::randomized(opt.chaos_seed, fc, opt.num_tomcats);
}

std::vector<ChaosRunResult> run_chaos_matrix(const ChaosMatrixOptions& opt) {
  static constexpr lb::PolicyKind kPolicies[] = {
      lb::PolicyKind::kTotalRequest, lb::PolicyKind::kTotalTraffic,
      lb::PolicyKind::kCurrentLoad,  lb::PolicyKind::kSessions,
      lb::PolicyKind::kRoundRobin,   lb::PolicyKind::kRandom,
      lb::PolicyKind::kTwoChoices};
  static constexpr lb::MechanismKind kMechanisms[] = {
      lb::MechanismKind::kBlocking, lb::MechanismKind::kNonBlocking,
      lb::MechanismKind::kQueueing};

  const millib::FaultPlan plan = matrix_plan(opt);
  std::vector<ChaosRunResult> results;
  for (auto policy : kPolicies) {
    for (auto mechanism : kMechanisms) {
      ExperimentConfig c;
      c.label = "chaos/" + lb::to_string(policy) + "/" +
                lb::to_string(mechanism);
      c.num_apaches = opt.num_apaches;
      c.num_tomcats = opt.num_tomcats;
      c.num_clients = opt.num_clients;
      c.think_mean = opt.think_mean;
      c.warmup = sim::SimTime::millis(500);
      c.policy = policy;
      c.mechanism = mechanism;
      // Organic millibottlenecks off: every disturbance comes from the plan,
      // so a violated invariant is attributable.
      c.tomcat_millibottlenecks = false;
      c.tracing = false;
      c.fault_plan = plan;
      if (opt.resilience) c.enable_resilience();
      if (opt.overload != control::OverloadMode::kNone)
        c.overload = control::make_overload(opt.overload);
      results.push_back(run_chaos(std::move(c), opt.traffic, opt.drain));
    }
  }
  return results;
}

millib::FaultPlan gray_matrix_plan(const ChaosMatrixOptions& opt) {
  // Hand-written: every fault is gray (the data path degrades while the
  // probe path stays healthy), and the second data-path fault overlaps the
  // link fault so two simultaneous gray faults are exercised. Targets are
  // seeded so different seeds stress different workers.
  const auto at = [&](double frac) {
    return sim::SimTime::from_seconds(opt.traffic.to_seconds() * frac);
  };
  const int fleet = std::max(1, opt.num_tomcats);
  const int t1 = static_cast<int>(sim::Rng::mix64(opt.chaos_seed) %
                                  static_cast<std::uint64_t>(fleet));
  const int t2 = (t1 + 1) % fleet;

  millib::FaultPlan plan;
  millib::FaultSpec gray1;
  gray1.kind = millib::FaultKind::kGrayDataPath;
  gray1.worker = t1;
  gray1.start = at(0.15);
  gray1.duration = at(0.35) - at(0.15);
  gray1.severity = 0.9;
  plan.specs.push_back(gray1);

  millib::FaultSpec link;
  link.kind = millib::FaultKind::kGrayLink;
  link.worker = 0;  // Apache index for this kind
  link.start = at(0.45);
  link.duration = at(0.70) - at(0.45);
  link.extra_latency = sim::SimTime::millis(5);
  link.loss_probability = 0.3;
  plan.specs.push_back(link);

  millib::FaultSpec gray2;
  gray2.kind = millib::FaultKind::kGrayDataPath;
  gray2.worker = t2;
  gray2.start = at(0.55);
  gray2.duration = at(0.75) - at(0.55);
  gray2.severity = 0.8;
  plan.specs.push_back(gray2);
  return plan;
}

std::vector<ChaosRunResult> run_gray_chaos_matrix(
    const ChaosMatrixOptions& opt) {
  static constexpr lb::PolicyKind kPolicies[] = {
      lb::PolicyKind::kTotalRequest, lb::PolicyKind::kCurrentLoad,
      lb::PolicyKind::kRoundRobin, lb::PolicyKind::kTwoChoices};
  static constexpr lb::MechanismKind kMechanisms[] = {
      lb::MechanismKind::kBlocking, lb::MechanismKind::kNonBlocking};

  const millib::FaultPlan plan = gray_matrix_plan(opt);
  std::vector<ChaosRunResult> results;
  for (auto policy : kPolicies) {
    for (auto mechanism : kMechanisms) {
      ExperimentConfig c;
      c.label = "gray-chaos/" + lb::to_string(policy) + "/" +
                lb::to_string(mechanism);
      c.num_apaches = opt.num_apaches;
      c.num_tomcats = opt.num_tomcats;
      c.num_clients = opt.num_clients;
      c.think_mean = opt.think_mean;
      c.warmup = sim::SimTime::millis(500);
      c.policy = policy;
      c.mechanism = mechanism;
      // Organic millibottlenecks off: every disturbance comes from the plan,
      // so a violated invariant is attributable.
      c.tomcat_millibottlenecks = false;
      c.tracing = false;
      c.fault_plan = plan;
      if (opt.resilience) c.enable_resilience();
      if (opt.recovery) c.recovery.enabled = true;
      if (opt.overload != control::OverloadMode::kNone)
        c.overload = control::make_overload(opt.overload);
      results.push_back(run_chaos(std::move(c), opt.traffic, opt.drain));
    }
  }
  return results;
}

millib::FaultPlan kv_matrix_plan(const KvChaosMatrixOptions& opt) {
  // Hand-written, not randomized: the crashes must not overlap (so every
  // shard keeps >= N-1 live members and the R=W=2 quorums never fail) and
  // must recover before traffic ends (so hinted handoff replays while the
  // run can still observe it). Spread crash targets and migration shards
  // with the chaos seed so different seeds stress different ring positions.
  const auto at = [&](double frac) {
    return sim::SimTime::from_seconds(opt.traffic.to_seconds() * frac);
  };
  const int fleet = std::max(1, opt.kv_replicas);
  const int r1 = static_cast<int>(sim::Rng::mix64(opt.chaos_seed) %
                                  static_cast<std::uint64_t>(fleet));
  const int r2 = (r1 + 1 + static_cast<int>(
                               sim::Rng::mix64(opt.chaos_seed + 1) %
                               static_cast<std::uint64_t>(fleet - 1 > 0
                                                              ? fleet - 1
                                                              : 1))) %
                 fleet;

  millib::FaultPlan plan;
  millib::FaultSpec crash1;
  crash1.kind = millib::FaultKind::kReplicaCrash;
  crash1.worker = r1;
  crash1.start = at(0.15);
  crash1.duration = at(0.25) - at(0.15);
  plan.specs.push_back(crash1);

  millib::FaultSpec mig1;
  mig1.kind = millib::FaultKind::kShardMigration;
  mig1.worker = static_cast<int>(sim::Rng::mix64(opt.chaos_seed + 2) % 16);
  mig1.start = at(0.30);
  mig1.duration = at(0.50) - at(0.30);
  mig1.severity = 1.0;
  plan.specs.push_back(mig1);

  millib::FaultSpec crash2;
  crash2.kind = millib::FaultKind::kReplicaCrash;
  crash2.worker = r2 == r1 ? (r1 + 1) % fleet : r2;
  crash2.start = at(0.55);
  crash2.duration = at(0.80) - at(0.55);
  plan.specs.push_back(crash2);

  millib::FaultSpec mig2;
  mig2.kind = millib::FaultKind::kShardMigration;
  mig2.worker = static_cast<int>(sim::Rng::mix64(opt.chaos_seed + 3) % 16);
  mig2.start = at(0.70);
  mig2.duration = at(0.85) - at(0.70);
  mig2.severity = 0.5;
  plan.specs.push_back(mig2);
  return plan;
}

std::vector<ChaosRunResult> run_kv_chaos_matrix(
    const KvChaosMatrixOptions& opt) {
  static constexpr lb::PolicyKind kPolicies[] = {
      lb::PolicyKind::kCurrentLoad, lb::PolicyKind::kRoundRobin,
      lb::PolicyKind::kTwoChoices, lb::PolicyKind::kSourceHash};
  static constexpr lb::MechanismKind kMechanisms[] = {
      lb::MechanismKind::kBlocking, lb::MechanismKind::kQueueing};

  const millib::FaultPlan plan = kv_matrix_plan(opt);
  std::vector<ChaosRunResult> results;
  for (auto policy : kPolicies) {
    for (auto mechanism : kMechanisms) {
      ExperimentConfig c;
      c.label = "kv-chaos/" + lb::to_string(policy) + "/" +
                lb::to_string(mechanism);
      c.num_apaches = opt.num_apaches;
      c.num_tomcats = opt.num_tomcats;
      c.num_clients = opt.num_clients;
      c.think_mean = opt.think_mean;
      c.warmup = sim::SimTime::millis(500);
      c.policy = policy;
      c.mechanism = mechanism;
      c.db_tier = server::DbTier::kKv;
      c.kv.replicas = opt.kv_replicas;
      // Organic millibottlenecks off: every disturbance comes from the plan,
      // so a violated invariant is attributable.
      c.tomcat_millibottlenecks = false;
      c.tracing = false;
      c.fault_plan = plan;
      results.push_back(run_chaos(std::move(c), opt.traffic, opt.drain));
    }
  }
  return results;
}

millib::FaultPlan cache_matrix_plan(const CacheChaosMatrixOptions& opt) {
  // Hand-written: two invalidation storms bracketing one recovering replica
  // crash. The second storm is wider (severity 2.0 sweeps twice the keys),
  // and the crash overlaps it so cache accounting is exercised while fills
  // run against a degraded quorum. Everything clears before traffic ends.
  const auto at = [&](double frac) {
    return sim::SimTime::from_seconds(opt.traffic.to_seconds() * frac);
  };
  const int fleet = std::max(1, opt.kv_replicas);

  millib::FaultPlan plan;
  millib::FaultSpec storm1;
  storm1.kind = millib::FaultKind::kInvalidationStorm;
  storm1.start = at(0.15);
  storm1.duration = at(0.30) - at(0.15);
  storm1.severity = 1.0;
  plan.specs.push_back(storm1);

  millib::FaultSpec crash;
  crash.kind = millib::FaultKind::kReplicaCrash;
  crash.worker = static_cast<int>(sim::Rng::mix64(opt.chaos_seed) %
                                  static_cast<std::uint64_t>(fleet));
  crash.start = at(0.45);
  crash.duration = at(0.70) - at(0.45);
  plan.specs.push_back(crash);

  millib::FaultSpec storm2;
  storm2.kind = millib::FaultKind::kInvalidationStorm;
  storm2.start = at(0.55);
  storm2.duration = at(0.75) - at(0.55);
  storm2.severity = 2.0;
  plan.specs.push_back(storm2);
  return plan;
}

std::vector<ChaosRunResult> run_cache_chaos_matrix(
    const CacheChaosMatrixOptions& opt) {
  static constexpr lb::PolicyKind kPolicies[] = {
      lb::PolicyKind::kCurrentLoad, lb::PolicyKind::kRoundRobin,
      lb::PolicyKind::kTwoChoices, lb::PolicyKind::kSourceHash};
  static constexpr lb::MechanismKind kMechanisms[] = {
      lb::MechanismKind::kBlocking, lb::MechanismKind::kQueueing};

  const millib::FaultPlan plan = cache_matrix_plan(opt);
  std::vector<ChaosRunResult> results;
  for (auto policy : kPolicies) {
    for (auto mechanism : kMechanisms) {
      ExperimentConfig c;
      c.label = "cache-chaos/" + lb::to_string(policy) + "/" +
                lb::to_string(mechanism);
      c.num_apaches = opt.num_apaches;
      c.num_tomcats = opt.num_tomcats;
      c.num_clients = opt.num_clients;
      c.think_mean = opt.think_mean;
      c.warmup = sim::SimTime::millis(500);
      c.policy = policy;
      c.mechanism = mechanism;
      c.db_tier = server::DbTier::kKv;
      c.kv.replicas = opt.kv_replicas;
      c.cache_tier = true;
      c.cache.nodes = opt.cache_nodes;
      // Organic millibottlenecks off: every disturbance comes from the plan,
      // so a violated invariant is attributable.
      c.tomcat_millibottlenecks = false;
      c.tracing = false;
      c.fault_plan = plan;
      results.push_back(run_chaos(std::move(c), opt.traffic, opt.drain));
    }
  }
  return results;
}

}  // namespace ntier::experiment
