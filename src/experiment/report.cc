#include "experiment/report.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <stdexcept>

namespace ntier::experiment {

void print_table1_header(std::ostream& os) {
  os << std::left << std::setw(44) << "Policy / mechanism" << std::right
     << std::setw(11) << "#Requests" << std::setw(13) << "Avg RT (ms)"
     << std::setw(12) << "%VLRT>1s" << std::setw(12) << "%<10ms" << "\n";
  os << std::string(92, '-') << "\n";
}

std::string sparkline(const std::vector<double>& values, std::size_t width) {
  static const char* kLevels[] = {" ", "▁", "▂", "▃",
                                  "▄", "▅", "▆", "▇",
                                  "█"};
  if (values.empty()) return "";
  // Downsample (max-preserving) to `width` cells.
  std::vector<double> cells(std::min(width, values.size()), 0.0);
  const double stride =
      static_cast<double>(values.size()) / static_cast<double>(cells.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    auto c = static_cast<std::size_t>(static_cast<double>(i) / stride);
    c = std::min(c, cells.size() - 1);
    cells[c] = std::max(cells[c], values[i]);
  }
  const double peak = *std::max_element(cells.begin(), cells.end());
  std::string out;
  for (double v : cells) {
    const int level =
        peak <= 0 ? 0
                  : static_cast<int>(std::min(8.0, std::ceil(v / peak * 8.0)));
    out += kLevels[level];
  }
  return out;
}

std::vector<double> series_avg(const metrics::TimeSeries& s, std::size_t windows) {
  std::vector<double> v(windows, 0.0);
  for (std::size_t i = 0; i < windows; ++i) v[i] = s.avg(i);
  return v;
}

std::vector<double> series_max(const metrics::TimeSeries& s, std::size_t windows) {
  std::vector<double> v(windows, 0.0);
  for (std::size_t i = 0; i < windows; ++i) v[i] = s.max(i);
  return v;
}

std::vector<double> series_count(const metrics::TimeSeries& s, std::size_t windows) {
  std::vector<double> v(windows, 0.0);
  for (std::size_t i = 0; i < windows; ++i)
    v[i] = static_cast<double>(s.count(i));
  return v;
}

std::vector<double> slice(const std::vector<double>& v, sim::SimTime window,
                          sim::SimTime t0, sim::SimTime t1) {
  const auto i0 = static_cast<std::size_t>(
      std::max<std::int64_t>(0, t0.ns() / window.ns()));
  const auto i1 = std::min<std::size_t>(
      v.size(), static_cast<std::size_t>(std::max<std::int64_t>(0, t1.ns() / window.ns())));
  if (i0 >= i1) return {};
  return {v.begin() + static_cast<std::ptrdiff_t>(i0),
          v.begin() + static_cast<std::ptrdiff_t>(i1)};
}

double max_of(const std::vector<double>& v) {
  double m = 0;
  for (double x : v) m = std::max(m, x);
  return m;
}

double sum_of(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s;
}

void print_panel(std::ostream& os, const std::string& name,
                 const std::vector<double>& v) {
  os << "  " << std::left << std::setw(30) << name << " |" << sparkline(v)
     << "|  peak=" << std::fixed << std::setprecision(1) << max_of(v) << "\n";
}

void write_series_csv(const std::string& path, sim::SimTime window,
                      const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& columns) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  f << "time_s";
  for (const auto& n : names) f << ',' << n;
  f << '\n';
  std::size_t rows = 0;
  for (const auto& c : columns) rows = std::max(rows, c.size());
  for (std::size_t r = 0; r < rows; ++r) {
    f << (window * static_cast<std::int64_t>(r)).to_seconds();
    for (const auto& c : columns) f << ',' << (r < c.size() ? c[r] : 0.0);
    f << '\n';
  }
}

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions o;
  if (argc > 0 && argv[0] != nullptr) {
    const std::string prog = argv[0];
    const auto slash = prog.find_last_of('/');
    o.program = slash == std::string::npos ? prog : prog.substr(slash + 1);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      o.full = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      o.quick = true;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      o.csv_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      o.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      o.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-format") == 0 && i + 1 < argc) {
      if (auto f = obs::parse_trace_format(argv[++i])) o.trace_format = *f;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      o.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep-seeds") == 0 && i + 1 < argc) {
      o.sweep_seeds = std::max(1, static_cast<int>(std::strtol(argv[++i], nullptr, 10)));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      o.jobs = std::max(1, static_cast<int>(std::strtol(argv[++i], nullptr, 10)));
    }
  }
  return o;
}

ExperimentConfig BenchOptions::apply(ExperimentConfig base) const {
  if (full) {
    const ExperimentConfig paper = ExperimentConfig::paper_scale();
    base.num_clients = paper.num_clients;
    if (base.label == "single_node") base.num_clients /= 4;
    base.think_mean = paper.think_mean;
    base.duration = paper.duration;
    base.warmup = paper.warmup;
  }
  base.seed = seed;
  return base;
}

}  // namespace ntier::experiment
