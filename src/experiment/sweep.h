#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "experiment/config.h"
#include "experiment/summary.h"
#include "metrics/histogram.h"

namespace ntier::experiment {

/// Mean / spread statistics of one scalar metric across sweep replicas.
/// ci95_half is the half-width of the 95% confidence interval of the mean
/// (Student-t for small n), so "mean ± ci95_half" is the honest headline.
struct MetricStats {
  int n = 0;
  double mean = 0;
  double stddev = 0;     // sample stddev (n-1); 0 when n < 2
  double ci95_half = 0;  // t_{0.975, n-1} * stddev / sqrt(n); 0 when n < 2
  double min = 0;
  double max = 0;

  static MetricStats from(const std::vector<double>& samples);
};

/// What SweepRunner executes: either `num_runs` seed-forked replicas of
/// `base` (the common case: same config, per-run seeds derived with
/// Rng::derive_seed so the set is deterministic and thread-schedule
/// independent), or an explicit config grid run as-is.
struct SweepConfig {
  ExperimentConfig base;
  int num_runs = 8;
  int jobs = 1;
  /// Non-empty switches to grid mode: each entry is one run, seeds and all.
  std::vector<ExperimentConfig> grid;
};

/// Merged digest of a sweep. Per-metric mean/stddev/95% CI come from the
/// per-run RunSummary values; the pooled LatencyHistogram merges every
/// replica's request histogram, so pooled percentiles are computed over all
/// samples of all runs (this is where a trustworthy sweep-level p99.9
/// comes from — a per-run p99.9 averaged across runs is not a percentile).
///
/// All aggregation happens in run-index order after every replica finished,
/// so the JSON/CSV output is byte-identical no matter how many worker
/// threads produced the runs.
struct AggregateSummary {
  std::string label;
  std::string policy;
  std::string mechanism;
  std::uint64_t base_seed = 0;
  // Deliberately no record of how many worker threads produced the runs:
  // nothing in this struct (or its serialisations) may depend on --jobs.

  std::vector<RunSummary> per_run;       // index order == run index
  std::vector<std::uint64_t> run_seeds;  // seed of each replica
  metrics::LatencyHistogram pooled;      // all response times, all runs

  int runs() const { return static_cast<int>(per_run.size()); }

  // -- cross-run statistics (computed by finalize()) --------------------------
  MetricStats completed, dropped, balancer_errors, connection_drops;
  MetricStats mean_rt_ms, p50_ms, p99_ms, p999_ms;
  MetricStats vlrt_fraction, normal_fraction;
  // Overload control (zero across the board when no mode is active).
  MetricStats goodput_rps, total_sheds, deadline_sheds, wasted_work_avoided_ms;
  // KV data tier per-reason errors (zero across the board in MySQL mode).
  MetricStats kv_quorum_failed, kv_handoff_dropped, kv_migration_shed,
      kv_degraded_ms;
  // Online detection + tail sampling (zero across the board when off).
  MetricStats online_episodes, online_false_positives,
      online_median_detection_ms, trace_kept_fraction;
  // Cache tier (zero across the board when no cache tier was configured).
  MetricStats cache_hits, cache_misses, cache_invalidations,
      cache_coalesced_fills;
  // Open-loop trace replay (zero across the board for closed-loop sweeps).
  MetricStats replay_abandoned;
  // Front-end retries + recovery orchestration (zero across the board when
  // retries/recovery are off). recovery_interventions pools the per-stage
  // application counts (suppression + hard shed + refill gate).
  MetricStats retries, retry_ratio, retries_suppressed;
  MetricStats recovery_episodes, recovery_interventions, recovery_sheds;
  // Gray-fault ground truth (zero across the board without gray faults).
  MetricStats gray_inflated_ops;

  /// Every replica's client.rt_ms DDSketch merged in run-index order;
  /// empty string when no run carried a sketch. Because merging ordered
  /// log-bucket maps is order-insensitive and aggregation always walks
  /// per_run by index, these bytes are --jobs invariant.
  std::string merged_rt_sketch() const;

  // -- pooled-distribution aggregates ----------------------------------------
  double pooled_mean_ms() const { return pooled.mean(); }
  double pooled_p50_ms() const { return pooled.percentile(50); }
  double pooled_p99_ms() const { return pooled.percentile(99); }
  double pooled_p999_ms() const { return pooled.percentile(99.9); }
  double pooled_vlrt_fraction() const;

  /// Recompute every MetricStats from per_run (call after mutating per_run;
  /// merge() and SweepRunner do it for you).
  void finalize();

  /// Concatenate two sweeps (left runs first) and re-finalize. Associative:
  /// merge(merge(a, b), c) == merge(a, merge(b, c)) field for field.
  static AggregateSummary merge(AggregateSummary a, const AggregateSummary& b);

  /// Stable-field-order JSON document (no external deps, byte-deterministic
  /// for identical inputs).
  void to_json(std::ostream& os) const;
  std::string to_json_string() const;

  /// CSV, one row per metric: metric,n,mean,stddev,ci95_half,min,max.
  void to_csv(std::ostream& os) const;
  /// CSV, one row per run: run,seed,completed,mean_rt_ms,...
  void per_run_csv(std::ostream& os) const;

  /// Human-readable "mean ± ci" table (the sweep analogue of Table I rows).
  void print_table(std::ostream& os) const;
};

/// Thread-pool engine running N independent Experiment replicas in
/// parallel. Each replica is a fully isolated Experiment (own Simulation,
/// own RNG tree, own metrics), so runs never share mutable state; results
/// land in a per-index slot and are aggregated in index order, which makes
/// the sweep's output bytes independent of `jobs`.
class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig config);

  /// Run every replica (blocking). Throws if any replica throws (the first
  /// exception in run-index order is rethrown).
  AggregateSummary run();

  /// The exact configs the sweep will execute (seed-forked or grid).
  const std::vector<ExperimentConfig>& planned() const { return configs_; }

  /// Seed of replica `index` for a sweep rooted at `base_seed`.
  static std::uint64_t replica_seed(std::uint64_t base_seed, int index);

 private:
  SweepConfig config_;
  std::vector<ExperimentConfig> configs_;
};

}  // namespace ntier::experiment
