#include "experiment/sweep.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "experiment/chaos.h"
#include "experiment/experiment.h"
#include "metrics/request_log.h"
#include "obs/sketch.h"
#include "sim/rng.h"

namespace ntier::experiment {

namespace {

/// Two-sided 95% Student-t quantiles, t_{0.975, df}; df > 30 ≈ normal.
double t_975(int df) {
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df < 1) return 0.0;
  if (df <= 30) return kTable[df - 1];
  return 1.960;
}

}  // namespace

MetricStats MetricStats::from(const std::vector<double>& samples) {
  MetricStats s;
  s.n = static_cast<int>(samples.size());
  if (s.n == 0) return s;
  s.min = s.max = samples[0];
  double sum = 0;
  for (double x : samples) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / s.n;
  if (s.n < 2) return s;
  double sq = 0;
  for (double x : samples) sq += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(sq / (s.n - 1));
  s.ci95_half = t_975(s.n - 1) * s.stddev / std::sqrt(static_cast<double>(s.n));
  return s;
}

double AggregateSummary::pooled_vlrt_fraction() const {
  return pooled.fraction_above(metrics::RequestLog::kVlrtThresholdMs);
}

void AggregateSummary::finalize() {
  auto stats = [&](auto field) {
    std::vector<double> v;
    v.reserve(per_run.size());
    for (const RunSummary& r : per_run) v.push_back(static_cast<double>(field(r)));
    return MetricStats::from(v);
  };
  completed = stats([](const RunSummary& r) { return r.completed; });
  dropped = stats([](const RunSummary& r) { return r.dropped; });
  balancer_errors = stats([](const RunSummary& r) { return r.balancer_errors; });
  connection_drops = stats([](const RunSummary& r) { return r.connection_drops; });
  mean_rt_ms = stats([](const RunSummary& r) { return r.mean_rt_ms; });
  p50_ms = stats([](const RunSummary& r) { return r.p50_ms; });
  p99_ms = stats([](const RunSummary& r) { return r.p99_ms; });
  p999_ms = stats([](const RunSummary& r) { return r.p999_ms; });
  vlrt_fraction = stats([](const RunSummary& r) { return r.vlrt_fraction; });
  normal_fraction = stats([](const RunSummary& r) { return r.normal_fraction; });
  goodput_rps = stats([](const RunSummary& r) { return r.goodput_rps; });
  total_sheds = stats([](const RunSummary& r) {
    return r.admission_sheds + r.brownout_sheds + r.deadline_sheds +
           r.sojourn_sheds;
  });
  deadline_sheds = stats([](const RunSummary& r) { return r.deadline_sheds; });
  wasted_work_avoided_ms =
      stats([](const RunSummary& r) { return r.wasted_work_avoided_ms; });
  kv_quorum_failed = stats([](const RunSummary& r) { return r.kv_quorum_failed; });
  kv_handoff_dropped =
      stats([](const RunSummary& r) { return r.kv_handoff_dropped; });
  kv_migration_shed =
      stats([](const RunSummary& r) { return r.kv_migration_shed; });
  kv_degraded_ms = stats([](const RunSummary& r) { return r.kv_degraded_ms; });
  online_episodes = stats([](const RunSummary& r) { return r.online_episodes; });
  online_false_positives =
      stats([](const RunSummary& r) { return r.online_false_positives; });
  online_median_detection_ms =
      stats([](const RunSummary& r) { return r.online_median_detection_ms; });
  trace_kept_fraction =
      stats([](const RunSummary& r) { return r.trace_kept_fraction; });
  cache_hits = stats([](const RunSummary& r) { return r.cache_hits; });
  cache_misses = stats([](const RunSummary& r) { return r.cache_misses; });
  cache_invalidations =
      stats([](const RunSummary& r) { return r.cache_invalidations; });
  cache_coalesced_fills =
      stats([](const RunSummary& r) { return r.cache_coalesced_fills; });
  replay_abandoned =
      stats([](const RunSummary& r) { return r.replay_abandoned; });
  retries = stats([](const RunSummary& r) { return r.retries; });
  retry_ratio = stats([](const RunSummary& r) { return r.retry_ratio; });
  retries_suppressed =
      stats([](const RunSummary& r) { return r.retries_suppressed; });
  recovery_episodes =
      stats([](const RunSummary& r) { return r.recovery_episodes; });
  recovery_interventions = stats([](const RunSummary& r) {
    return r.recovery_retry_suppressions + r.recovery_hard_sheds +
           r.recovery_refill_gates;
  });
  recovery_sheds = stats([](const RunSummary& r) { return r.recovery_sheds; });
  gray_inflated_ops =
      stats([](const RunSummary& r) { return r.gray_inflated_ops; });
}

std::string AggregateSummary::merged_rt_sketch() const {
  obs::DDSketch merged;
  bool any = false;
  for (const RunSummary& r : per_run) {
    if (r.rt_sketch.empty()) continue;
    auto s = obs::DDSketch::deserialize(r.rt_sketch);
    if (!s) continue;
    if (!any) {
      merged = std::move(*s);
      any = true;
    } else {
      merged.merge(*s);
    }
  }
  return any ? merged.serialize() : std::string();
}

AggregateSummary AggregateSummary::merge(AggregateSummary a,
                                         const AggregateSummary& b) {
  a.per_run.insert(a.per_run.end(), b.per_run.begin(), b.per_run.end());
  a.run_seeds.insert(a.run_seeds.end(), b.run_seeds.begin(), b.run_seeds.end());
  a.pooled.merge(b.pooled);
  a.finalize();
  return a;
}

namespace {

void json_stats(std::ostream& os, const char* name, const MetricStats& s,
                bool comma = true) {
  os << "    \"" << name << "\": {\"n\": " << s.n << ", \"mean\": " << s.mean
     << ", \"stddev\": " << s.stddev << ", \"ci95_half\": " << s.ci95_half
     << ", \"min\": " << s.min << ", \"max\": " << s.max << '}';
  if (comma) os << ',';
  os << '\n';
}

}  // namespace

void AggregateSummary::to_json(std::ostream& os) const {
  os << std::setprecision(10);
  os << "{\n";
  os << "  \"label\": \"" << label << "\",\n";
  os << "  \"policy\": \"" << policy << "\",\n";
  os << "  \"mechanism\": \"" << mechanism << "\",\n";
  os << "  \"base_seed\": " << base_seed << ",\n";
  os << "  \"runs\": " << runs() << ",\n";
  os << "  \"run_seeds\": [";
  for (std::size_t i = 0; i < run_seeds.size(); ++i) {
    if (i) os << ", ";
    os << run_seeds[i];
  }
  os << "],\n";
  os << "  \"metrics\": {\n";
  json_stats(os, "completed", completed);
  json_stats(os, "dropped", dropped);
  json_stats(os, "balancer_errors", balancer_errors);
  json_stats(os, "connection_drops", connection_drops);
  json_stats(os, "mean_rt_ms", mean_rt_ms);
  json_stats(os, "p50_ms", p50_ms);
  json_stats(os, "p99_ms", p99_ms);
  json_stats(os, "p999_ms", p999_ms);
  json_stats(os, "vlrt_fraction", vlrt_fraction);
  json_stats(os, "normal_fraction", normal_fraction);
  json_stats(os, "goodput_rps", goodput_rps);
  json_stats(os, "total_sheds", total_sheds);
  json_stats(os, "deadline_sheds", deadline_sheds);
  json_stats(os, "wasted_work_avoided_ms", wasted_work_avoided_ms);
  json_stats(os, "kv_quorum_failed", kv_quorum_failed);
  json_stats(os, "kv_handoff_dropped", kv_handoff_dropped);
  json_stats(os, "kv_migration_shed", kv_migration_shed);
  json_stats(os, "kv_degraded_ms", kv_degraded_ms);
  json_stats(os, "online_episodes", online_episodes);
  json_stats(os, "online_false_positives", online_false_positives);
  json_stats(os, "online_median_detection_ms", online_median_detection_ms);
  json_stats(os, "trace_kept_fraction", trace_kept_fraction);
  json_stats(os, "cache_hits", cache_hits);
  json_stats(os, "cache_misses", cache_misses);
  json_stats(os, "cache_invalidations", cache_invalidations);
  json_stats(os, "cache_coalesced_fills", cache_coalesced_fills);
  json_stats(os, "replay_abandoned", replay_abandoned);
  json_stats(os, "retries", retries);
  json_stats(os, "retry_ratio", retry_ratio);
  json_stats(os, "retries_suppressed", retries_suppressed);
  json_stats(os, "recovery_episodes", recovery_episodes);
  json_stats(os, "recovery_interventions", recovery_interventions);
  json_stats(os, "recovery_sheds", recovery_sheds);
  json_stats(os, "gray_inflated_ops", gray_inflated_ops,
             /*comma=*/false);
  os << "  },\n";
  os << "  \"pooled\": {\"completed\": " << pooled.count()
     << ", \"mean_ms\": " << pooled_mean_ms()
     << ", \"p50_ms\": " << pooled_p50_ms()
     << ", \"p99_ms\": " << pooled_p99_ms()
     << ", \"p999_ms\": " << pooled_p999_ms()
     << ", \"vlrt_fraction\": " << pooled_vlrt_fraction() << "},\n";
  os << "  \"per_run\": [\n";
  for (std::size_t i = 0; i < per_run.size(); ++i) {
    std::istringstream one(per_run[i].to_json_string());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(one, line))
      if (!line.empty()) lines.push_back(line);
    for (std::size_t j = 0; j < lines.size(); ++j) {
      os << "    " << lines[j];
      if (j + 1 == lines.size() && i + 1 < per_run.size()) os << ',';
      os << '\n';
    }
  }
  os << "  ]\n";
  os << "}\n";
}

std::string AggregateSummary::to_json_string() const {
  std::ostringstream os;
  to_json(os);
  return os.str();
}

void AggregateSummary::to_csv(std::ostream& os) const {
  os << std::setprecision(10);
  os << "metric,n,mean,stddev,ci95_half,min,max\n";
  auto row = [&](const char* name, const MetricStats& s) {
    os << name << ',' << s.n << ',' << s.mean << ',' << s.stddev << ','
       << s.ci95_half << ',' << s.min << ',' << s.max << '\n';
  };
  row("completed", completed);
  row("dropped", dropped);
  row("balancer_errors", balancer_errors);
  row("connection_drops", connection_drops);
  row("mean_rt_ms", mean_rt_ms);
  row("p50_ms", p50_ms);
  row("p99_ms", p99_ms);
  row("p999_ms", p999_ms);
  row("vlrt_fraction", vlrt_fraction);
  row("normal_fraction", normal_fraction);
  row("goodput_rps", goodput_rps);
  row("total_sheds", total_sheds);
  row("deadline_sheds", deadline_sheds);
  row("wasted_work_avoided_ms", wasted_work_avoided_ms);
  row("kv_quorum_failed", kv_quorum_failed);
  row("kv_handoff_dropped", kv_handoff_dropped);
  row("kv_migration_shed", kv_migration_shed);
  row("kv_degraded_ms", kv_degraded_ms);
  row("online_episodes", online_episodes);
  row("online_false_positives", online_false_positives);
  row("online_median_detection_ms", online_median_detection_ms);
  row("trace_kept_fraction", trace_kept_fraction);
  row("cache_hits", cache_hits);
  row("cache_misses", cache_misses);
  row("cache_invalidations", cache_invalidations);
  row("cache_coalesced_fills", cache_coalesced_fills);
  row("replay_abandoned", replay_abandoned);
  row("retries", retries);
  row("retry_ratio", retry_ratio);
  row("retries_suppressed", retries_suppressed);
  row("recovery_episodes", recovery_episodes);
  row("recovery_interventions", recovery_interventions);
  row("recovery_sheds", recovery_sheds);
  row("gray_inflated_ops", gray_inflated_ops);
}

void AggregateSummary::per_run_csv(std::ostream& os) const {
  os << std::setprecision(10);
  os << "run,seed,completed,dropped,balancer_errors,connection_drops,"
        "mean_rt_ms,p50_ms,p99_ms,p999_ms,vlrt_fraction,normal_fraction,"
        "goodput_rps,total_sheds,deadline_sheds,wasted_work_avoided_ms,"
        "kv_quorum_failed,kv_handoff_dropped,kv_migration_shed,"
        "kv_degraded_ms,online_episodes,online_false_positives,"
        "online_median_detection_ms,trace_kept_fraction,"
        "cache_hits,cache_misses,cache_invalidations,"
        "cache_coalesced_fills,replay_abandoned,retries,retry_ratio,"
        "retries_suppressed,recovery_episodes,recovery_interventions,"
        "recovery_sheds,gray_inflated_ops\n";
  for (std::size_t i = 0; i < per_run.size(); ++i) {
    const RunSummary& r = per_run[i];
    os << i << ',' << (i < run_seeds.size() ? run_seeds[i] : 0) << ','
       << r.completed << ',' << r.dropped << ',' << r.balancer_errors << ','
       << r.connection_drops << ',' << r.mean_rt_ms << ',' << r.p50_ms << ','
       << r.p99_ms << ',' << r.p999_ms << ',' << r.vlrt_fraction << ','
       << r.normal_fraction << ',' << r.goodput_rps << ','
       << (r.admission_sheds + r.brownout_sheds + r.deadline_sheds +
           r.sojourn_sheds)
       << ',' << r.deadline_sheds << ',' << r.wasted_work_avoided_ms << ','
       << r.kv_quorum_failed << ',' << r.kv_handoff_dropped << ','
       << r.kv_migration_shed << ',' << r.kv_degraded_ms << ','
       << r.online_episodes << ',' << r.online_false_positives << ','
       << r.online_median_detection_ms << ',' << r.trace_kept_fraction << ','
       << r.cache_hits << ',' << r.cache_misses << ','
       << r.cache_invalidations << ',' << r.cache_coalesced_fills << ','
       << r.replay_abandoned << ',' << r.retries << ',' << r.retry_ratio
       << ',' << r.retries_suppressed << ',' << r.recovery_episodes << ','
       << (r.recovery_retry_suppressions + r.recovery_hard_sheds +
           r.recovery_refill_gates)
       << ',' << r.recovery_sheds << ',' << r.gray_inflated_ops << '\n';
  }
}

void AggregateSummary::print_table(std::ostream& os) const {
  auto line = [&](const char* name, const MetricStats& s, const char* unit) {
    os << "  " << std::left << std::setw(18) << name << std::right << std::fixed
       << std::setprecision(3) << std::setw(12) << s.mean << " ± "
       << std::setw(9) << s.ci95_half << ' ' << std::left << std::setw(4)
       << unit << "  (stddev " << std::setprecision(3) << s.stddev << ", range "
       << s.min << " .. " << s.max << ")\n";
  };
  os << "sweep '" << label << "' (" << policy << " + " << mechanism << "), "
     << runs() << " runs, base seed " << base_seed << ":\n";
  line("mean RT", mean_rt_ms, "ms");
  line("p50", p50_ms, "ms");
  line("p99", p99_ms, "ms");
  line("p99.9", p999_ms, "ms");
  line("VLRT fraction", vlrt_fraction, "");
  line("normal fraction", normal_fraction, "");
  line("completed", completed, "req");
  line("dropped", dropped, "req");
  os << "  pooled over " << pooled.count() << " samples: mean " << std::fixed
     << std::setprecision(3) << pooled_mean_ms() << " ms, p99 "
     << pooled_p99_ms() << " ms, p99.9 " << pooled_p999_ms()
     << " ms, VLRT fraction " << std::setprecision(5) << pooled_vlrt_fraction()
     << "\n";
}

// ---------------------------------------------------------------------------

std::uint64_t SweepRunner::replica_seed(std::uint64_t base_seed, int index) {
  return sim::Rng::derive_seed(base_seed, static_cast<std::uint64_t>(index));
}

SweepRunner::SweepRunner(SweepConfig config) : config_(std::move(config)) {
  if (!config_.grid.empty()) {
    configs_ = config_.grid;
  } else {
    if (config_.num_runs < 1)
      throw std::invalid_argument("SweepConfig: num_runs must be >= 1");
    configs_.reserve(static_cast<std::size_t>(config_.num_runs));
    for (int i = 0; i < config_.num_runs; ++i) {
      ExperimentConfig c = config_.base;
      c.seed = replica_seed(config_.base.seed, i);
      c.label = config_.base.label + "#" + std::to_string(i);
      configs_.push_back(std::move(c));
    }
  }
  if (config_.jobs < 1)
    throw std::invalid_argument("SweepConfig: jobs must be >= 1");
}

AggregateSummary SweepRunner::run() {
  struct Slot {
    RunSummary summary;
    metrics::LatencyHistogram hist;
    std::exception_ptr error;
  };
  std::vector<Slot> slots(configs_.size());
  std::atomic<std::size_t> next{0};

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= configs_.size()) return;
      try {
        Experiment e(configs_[i]);
        e.run();
        slots[i].summary = summarize(e);
        slots[i].hist = e.log().histogram();
      } catch (...) {
        slots[i].error = std::current_exception();
      }
    }
  };

  const std::size_t threads = std::min<std::size_t>(
      static_cast<std::size_t>(config_.jobs), configs_.size());
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  for (const Slot& s : slots)
    if (s.error) std::rethrow_exception(s.error);

  AggregateSummary agg;
  agg.label = config_.grid.empty() ? config_.base.label : configs_.front().label;
  agg.policy = slots.empty() ? "" : slots.front().summary.policy;
  agg.mechanism = slots.empty() ? "" : slots.front().summary.mechanism;
  agg.base_seed = config_.base.seed;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    agg.per_run.push_back(std::move(slots[i].summary));
    agg.run_seeds.push_back(configs_[i].seed);
    agg.pooled.merge(slots[i].hist);
  }
  agg.finalize();
  return agg;
}

}  // namespace ntier::experiment
