#include "experiment/config.h"

#include <cmath>
#include <sstream>

namespace ntier::experiment {

std::string to_string(StallSource s) {
  switch (s) {
    case StallSource::kPdflush: return "pdflush";
    case StallSource::kGcPause: return "gc_pause";
    case StallSource::kDvfs: return "dvfs";
    case StallSource::kVmConsolidation: return "vm_consolidation";
  }
  return "?";
}

ExperimentConfig ExperimentConfig::paper_scale() {
  ExperimentConfig c;
  c.label = "paper_scale";
  c.num_clients = 70'000;
  c.think_mean = sim::SimTime::seconds(7);
  c.duration = sim::SimTime::seconds(180);
  c.warmup = sim::SimTime::seconds(10);
  return c;
}

ExperimentConfig ExperimentConfig::scaled(double factor) {
  ExperimentConfig c;
  c.label = "scaled";
  // Keep clients/think constant => identical offered load and identical
  // per-server dynamics, with factor× less client-state to simulate.
  c.num_clients = static_cast<int>(std::lround(70'000 * factor));
  c.think_mean = sim::SimTime::from_seconds(7.0 * factor);
  c.duration = sim::SimTime::seconds(60);
  c.warmup = sim::SimTime::seconds(3);
  return c;
}

ExperimentConfig ExperimentConfig::single_node(double factor) {
  ExperimentConfig c = scaled(factor);
  c.label = "single_node";
  c.num_apaches = 1;
  c.num_tomcats = 1;
  // One Tomcat serves what a quarter of the cluster would.
  c.num_clients /= 4;
  c.apache_millibottlenecks = true;
  c.tomcat_millibottlenecks = true;
  return c;
}

void ExperimentConfig::enable_resilience() {
  apache.prober.enabled = true;
  apache.retry.enabled = true;
  balancer.breaker.enabled = true;
}

std::string describe(const ExperimentConfig& c) {
  std::ostringstream os;
  os << c.label << ": " << c.num_apaches << "A/" << c.num_tomcats << "T/";
  if (c.db_tier == server::DbTier::kKv)
    os << c.kv.replicas << "KV";
  else
    os << c.num_mysql << "M";
  os << ", " << c.num_clients << " clients, think "
     << c.think_mean.to_string() << " (" << static_cast<int>(c.offered_rps())
     << " req/s), " << c.duration.to_string() << ", policy="
     << lb::to_string(c.policy) << ", mechanism=" << lb::to_string(c.mechanism)
     << ", millibottlenecks="
     << (c.tomcat_millibottlenecks
             ? "tomcat(" + to_string(c.tomcat_stall_source) + ")"
             : "none")
     << (c.apache_millibottlenecks ? "+apache" : "")
     << (c.mysql_millibottlenecks ? "+mysql" : "");
  if (c.db_tier == server::DbTier::kMysql && c.num_mysql > 1)
    os << ", " << c.num_mysql << " DB replicas";
  if (c.db_tier == server::DbTier::kKv) {
    os << ", kv(" << c.kv.to_string() << ")";
    if (c.kv_millibottlenecks) os << "+hot-shard stalls";
    if (c.workload.key_space > 0)
      os << ", zipf(s=" << c.workload.zipf_s << ", keys="
         << c.workload.key_space << ")";
  }
  if (c.sticky_sessions) os << ", sticky";
  if (c.bursty_workload) os << ", bursty";
  if (c.apache.prober.enabled || c.balancer.breaker.enabled ||
      c.apache.retry.enabled)
    os << ", resilience";
  if (c.probe.enabled || lb::policy_uses_probes(c.policy))
    os << ", probes(" << static_cast<int>(c.probe.rate_hz) << "/s d="
       << c.probe.d << " stale=" << c.probe.staleness.to_string() << ")";
  if (!c.fault_plan.empty())
    os << ", chaos(" << c.fault_plan.size() << " faults)";
  if (c.recovery.enabled)
    os << ", recovery(degrade=" << c.recovery.degrade_ratio
       << "x, tick=" << c.recovery.tick.to_string() << ")";
  if (c.overload.any())
    os << ", overload=" << control::to_string(c.overload.mode) << "(budget="
       << c.overload.deadline_budget.to_string() << ")";
  if (c.workload.priority_mix == workload::PriorityMix::kRubbos)
    os << ", priorities=rubbos";
  if (c.replay_trace)
    os << ", replay(" << c.replay_trace->size() << " arrivals"
       << (c.replay_trace->rich() ? ", rich" : "") << ")";
  return os.str();
}

}  // namespace ntier::experiment
