#include "experiment/summary.h"

#include <iomanip>
#include <sstream>

#include "experiment/report.h"

namespace ntier::experiment {

RunSummary summarize(Experiment& e) {
  RunSummary s;
  const auto& cfg = e.config();
  s.label = cfg.label;
  s.policy = lb::to_string(cfg.policy);
  s.mechanism = lb::to_string(cfg.mechanism);
  s.offered_rps = cfg.offered_rps();
  s.duration_s = cfg.duration.to_seconds();

  const auto& log = e.log();
  s.completed = log.completed();
  s.dropped = e.clients().dropped();
  s.balancer_errors = e.clients().failed();
  s.connection_drops = e.clients().connection_drops();
  if (const auto* rp = e.replayer()) {
    // Open-loop runs: the client-side counters live on the replayer (the
    // closed-loop population is idled by normalized() and issues nothing).
    s.open_loop = true;
    s.trace_arrivals = cfg.replay_trace->size();
    s.dropped = rp->dropped();
    s.balancer_errors = rp->failed();
    s.connection_drops = rp->connection_drops();
    s.replay_abandoned = rp->abandoned();
  }
  s.completed_within_deadline = log.completed_within_deadline();
  s.missed_deadline = log.missed_deadline();
  const double measured_s = (cfg.duration - cfg.warmup).to_seconds();
  s.goodput_rps = measured_s > 0
                      ? static_cast<double>(s.completed_within_deadline) /
                            measured_s
                      : 0.0;
  control::OverloadStats ostats;
  for (int i = 0; i < e.num_apaches(); ++i) ostats += e.apache(i).overload_stats();
  for (int i = 0; i < e.num_tomcats(); ++i) {
    ostats += e.tomcat(i).overload_stats();
    ostats += e.db_router(i).overload_stats();
  }
  s.admission_sheds = ostats.admission_sheds;
  s.brownout_sheds = ostats.brownout_sheds;
  s.deadline_sheds = ostats.deadline_sheds;
  s.sojourn_sheds = ostats.sojourn_sheds;
  s.wasted_work_avoided_ms = ostats.wasted_work_avoided_ms;
  s.shed_retries = e.clients().shed_retries();
  s.recovery_sheds = ostats.recovery_sheds;
  for (int i = 0; i < e.num_apaches(); ++i) {
    s.first_attempts += e.apache(i).first_attempts();
    s.retries += e.apache(i).retries();
    s.retry_successes += e.apache(i).retry_successes();
    s.attempts_abandoned += e.apache(i).attempts_abandoned();
    s.retries_suppressed += e.apache(i).retries_suppressed();
  }
  s.retry_ratio = s.first_attempts > 0
                      ? static_cast<double>(s.retries) /
                            static_cast<double>(s.first_attempts)
                      : 0.0;
  if (const auto* rec = e.recovery()) {
    const auto& rs = rec->stats();
    s.recovery_episodes = rs.episodes;
    s.recovery_degraded_ticks = rs.degraded_ticks;
    s.recovery_retry_suppressions = rs.retry_suppressions;
    s.recovery_hard_sheds = rs.hard_sheds;
    s.recovery_refill_gates = rs.refill_gates;
    s.recovery_breaker_resets = rs.breaker_resets;
  }
  for (int i = 0; i < e.num_tomcats(); ++i)
    s.gray_inflated_ops += e.tomcat(i).gray_inflated();
  for (int i = 0; i < e.num_kv_replicas(); ++i)
    s.kv_slow_ops += e.kv_replica(i).slow_ops();
  s.mean_rt_ms = log.mean_response_ms();
  s.p50_ms = log.percentile_ms(50);
  s.p99_ms = log.percentile_ms(99);
  s.p999_ms = log.percentile_ms(99.9);
  s.vlrt_fraction = log.vlrt_fraction();
  s.normal_fraction = log.normal_fraction();

  if (const auto* kv = e.kv_tier()) {
    const auto& ks = kv->stats();
    s.kv_quorum_failed = ks.quorum_failed_reads + ks.quorum_failed_writes;
    s.kv_handoff_dropped = ks.handoff_dropped;
    s.kv_migration_shed = ks.migration_shed;
    s.kv_hints_replayed = ks.hints_replayed;
    s.kv_read_repairs = ks.read_repairs;
    s.kv_degraded_ms = ks.degraded_wait_ms;
    s.kv_mean_quorum_wait_ms = ks.mean_quorum_wait_ms();
  }

  if (const auto* cache = e.cache_tier()) {
    const auto& cs = cache->stats();
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_invalidations = cs.invalidations_sent;
    s.cache_coalesced_fills = cs.coalesced_fills;
    s.cache_invalidations_dropped = cs.invalidations_dropped;
    s.cache_hit_ratio = cs.hit_ratio();
    s.cache_gated_fills = cs.gated_fills;
  }

  if (const auto* det = e.online_detector()) {
    const auto score =
        millib::OnlineDetector::score(det->episodes(), e.tomcat_truth_intervals());
    s.online_episodes = det->episodes().size();
    s.online_matched = score.matched;
    s.online_truth_episodes = score.truth;
    s.online_false_positives = score.false_positives;
    s.online_median_detection_ms = score.median_latency_ms();
    for (const auto& ep : det->episodes()) s.online_episode_vlrts += ep.vlrts;
  }
  if (const auto* tr = e.trace(); tr && tr->tail_enabled()) {
    s.trace_events_seen = tr->tail_seen();
    s.trace_events_kept = tr->tail_kept();
    s.trace_kept_fraction = tr->tail_kept_fraction();
  }
  if (const auto* telem = e.telemetry()) {
    if (const auto* rt = telem->find("client.rt_ms")) {
      const auto& sketch = rt->timeline().sketch();
      s.rt_sketch_p50_ms = sketch.quantile(0.50);
      s.rt_sketch_p99_ms = sketch.quantile(0.99);
      s.rt_sketch_p999_ms = sketch.quantile(0.999);
      s.rt_sketch = sketch.serialize();
    }
  }

  if (cfg.tracing) {
    s.apache_queue_peak = max_of(e.apache_tier_queue());
    s.tomcat_queue_peak = max_of(e.tomcat_tier_queue());
    s.mysql_queue_peak = max_of(e.mysql_tier_queue());
    s.kv_queue_peak = max_of(e.kv_tier_queue());
    for (int i = 0; i < e.num_apaches(); ++i)
      s.apache_mean_cpu.push_back(e.mean_cpu(e.apache_cpu_series(i)));
    for (int i = 0; i < e.num_tomcats(); ++i)
      s.tomcat_mean_cpu.push_back(e.mean_cpu(e.tomcat_cpu_series(i)));
    for (int i = 0; i < e.num_mysql(); ++i)
      s.mysql_mean_cpu.push_back(e.mean_cpu(e.mysql_cpu_series(i)));
    for (int i = 0; i < e.num_kv_replicas(); ++i)
      s.kv_mean_cpu.push_back(e.mean_cpu(e.kv_cpu_series(i)));
    for (int i = 0; i < e.num_cache_nodes(); ++i)
      s.cache_mean_cpu.push_back(e.mean_cpu(e.cache_cpu_series(i)));
  }
  return s;
}

namespace {

void field(std::ostream& os, const char* name, double v, bool comma = true) {
  os << "  \"" << name << "\": " << v;
  if (comma) os << ',';
  os << '\n';
}

void array(std::ostream& os, const char* name, const std::vector<double>& v,
           bool comma = true) {
  os << "  \"" << name << "\": [";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  os << ']';
  if (comma) os << ',';
  os << '\n';
}

}  // namespace

void RunSummary::to_json(std::ostream& os) const {
  os << std::setprecision(10);
  os << "{\n";
  os << "  \"label\": \"" << label << "\",\n";
  os << "  \"policy\": \"" << policy << "\",\n";
  os << "  \"mechanism\": \"" << mechanism << "\",\n";
  field(os, "offered_rps", offered_rps);
  field(os, "duration_s", duration_s);
  field(os, "completed", static_cast<double>(completed));
  field(os, "dropped", static_cast<double>(dropped));
  field(os, "balancer_errors", static_cast<double>(balancer_errors));
  field(os, "connection_drops", static_cast<double>(connection_drops));
  field(os, "open_loop", open_loop ? 1.0 : 0.0);
  field(os, "trace_arrivals", static_cast<double>(trace_arrivals));
  field(os, "replay_abandoned", static_cast<double>(replay_abandoned));
  field(os, "goodput_rps", goodput_rps);
  field(os, "completed_within_deadline",
        static_cast<double>(completed_within_deadline));
  field(os, "missed_deadline", static_cast<double>(missed_deadline));
  field(os, "admission_sheds", static_cast<double>(admission_sheds));
  field(os, "brownout_sheds", static_cast<double>(brownout_sheds));
  field(os, "deadline_sheds", static_cast<double>(deadline_sheds));
  field(os, "sojourn_sheds", static_cast<double>(sojourn_sheds));
  field(os, "wasted_work_avoided_ms", wasted_work_avoided_ms);
  field(os, "shed_retries", static_cast<double>(shed_retries));
  field(os, "first_attempts", static_cast<double>(first_attempts));
  field(os, "retries", static_cast<double>(retries));
  field(os, "retry_ratio", retry_ratio);
  field(os, "retry_successes", static_cast<double>(retry_successes));
  field(os, "attempts_abandoned", static_cast<double>(attempts_abandoned));
  field(os, "recovery_episodes", static_cast<double>(recovery_episodes));
  field(os, "recovery_degraded_ticks",
        static_cast<double>(recovery_degraded_ticks));
  field(os, "recovery_retry_suppressions",
        static_cast<double>(recovery_retry_suppressions));
  field(os, "recovery_hard_sheds", static_cast<double>(recovery_hard_sheds));
  field(os, "recovery_refill_gates",
        static_cast<double>(recovery_refill_gates));
  field(os, "recovery_breaker_resets",
        static_cast<double>(recovery_breaker_resets));
  field(os, "retries_suppressed", static_cast<double>(retries_suppressed));
  field(os, "recovery_sheds", static_cast<double>(recovery_sheds));
  field(os, "cache_gated_fills", static_cast<double>(cache_gated_fills));
  field(os, "gray_inflated_ops", static_cast<double>(gray_inflated_ops));
  field(os, "kv_slow_ops", static_cast<double>(kv_slow_ops));
  field(os, "mean_rt_ms", mean_rt_ms);
  field(os, "p50_ms", p50_ms);
  field(os, "p99_ms", p99_ms);
  field(os, "p999_ms", p999_ms);
  field(os, "vlrt_fraction", vlrt_fraction);
  field(os, "normal_fraction", normal_fraction);
  field(os, "apache_queue_peak", apache_queue_peak);
  field(os, "tomcat_queue_peak", tomcat_queue_peak);
  field(os, "mysql_queue_peak", mysql_queue_peak);
  field(os, "kv_queue_peak", kv_queue_peak);
  field(os, "kv_quorum_failed", static_cast<double>(kv_quorum_failed));
  field(os, "kv_handoff_dropped", static_cast<double>(kv_handoff_dropped));
  field(os, "kv_migration_shed", static_cast<double>(kv_migration_shed));
  field(os, "kv_hints_replayed", static_cast<double>(kv_hints_replayed));
  field(os, "kv_read_repairs", static_cast<double>(kv_read_repairs));
  field(os, "kv_degraded_ms", kv_degraded_ms);
  field(os, "kv_mean_quorum_wait_ms", kv_mean_quorum_wait_ms);
  field(os, "cache_hits", static_cast<double>(cache_hits));
  field(os, "cache_misses", static_cast<double>(cache_misses));
  field(os, "cache_invalidations", static_cast<double>(cache_invalidations));
  field(os, "cache_coalesced_fills",
        static_cast<double>(cache_coalesced_fills));
  field(os, "cache_invalidations_dropped",
        static_cast<double>(cache_invalidations_dropped));
  field(os, "cache_hit_ratio", cache_hit_ratio);
  field(os, "online_episodes", static_cast<double>(online_episodes));
  field(os, "online_matched", static_cast<double>(online_matched));
  field(os, "online_truth_episodes",
        static_cast<double>(online_truth_episodes));
  field(os, "online_false_positives",
        static_cast<double>(online_false_positives));
  field(os, "online_median_detection_ms", online_median_detection_ms);
  field(os, "online_episode_vlrts", static_cast<double>(online_episode_vlrts));
  field(os, "trace_events_seen", static_cast<double>(trace_events_seen));
  field(os, "trace_events_kept", static_cast<double>(trace_events_kept));
  field(os, "trace_kept_fraction", trace_kept_fraction);
  field(os, "rt_sketch_p50_ms", rt_sketch_p50_ms);
  field(os, "rt_sketch_p99_ms", rt_sketch_p99_ms);
  field(os, "rt_sketch_p999_ms", rt_sketch_p999_ms);
  array(os, "apache_mean_cpu", apache_mean_cpu);
  array(os, "tomcat_mean_cpu", tomcat_mean_cpu);
  array(os, "mysql_mean_cpu", mysql_mean_cpu);
  array(os, "kv_mean_cpu", kv_mean_cpu);
  array(os, "cache_mean_cpu", cache_mean_cpu, /*comma=*/false);
  os << "}\n";
}

std::string RunSummary::to_json_string() const {
  std::ostringstream os;
  to_json(os);
  return os.str();
}

}  // namespace ntier::experiment
