#include "experiment/experiment.h"

#include <algorithm>
#include <stdexcept>

#include "experiment/chaos.h"

namespace ntier::experiment {

ExperimentConfig Experiment::normalized(ExperimentConfig config) {
  // The KV tier needs keys to shard by; give Zipf draws a population when
  // the caller did not pick one. MySQL-mode configs are left untouched so
  // their RNG streams stay byte-identical to pre-KV builds.
  if (config.db_tier == server::DbTier::kKv && config.workload.key_space == 0)
    config.workload.key_space = 10'000;
  // Trace replay idles the closed loop: one client whose think time sits far
  // past any run horizon, so the population still exists (the chaos harness
  // quiesces it and reads its link/counters) but issues nothing.
  if (config.replay_trace) {
    config.num_clients = 1;
    config.think_mean = sim::SimTime::seconds(1'000'000);
  }
  return config;
}

Experiment::Experiment(ExperimentConfig config)
    : config_(normalized(std::move(config))),
      sim_(config_.seed),
      workload_(config_.workload),
      log_(config_.metric_window, config_.keep_records) {
  build();
}

Experiment::~Experiment() = default;

std::unique_ptr<os::Node> Experiment::make_node(const std::string& name,
                                                bool millibottlenecks,
                                                os::PdflushConfig pdflush,
                                                int index,
                                                std::uint64_t throttle_bytes) {
  os::NodeConfig nc;
  nc.name = name;
  nc.cores = config_.cores;
  nc.disk_bytes_per_second = config_.disk_bytes_per_second;
  nc.pdflush = pdflush;
  nc.pdflush.enabled = millibottlenecks;
  nc.pdflush.initial_offset =
      config_.pdflush_stagger * static_cast<std::int64_t>(index);
  nc.dirty_throttle_bytes = throttle_bytes;
  return std::make_unique<os::Node>(sim_, nc);
}

void Experiment::build() {
#ifndef NTIER_OBS_DISABLED
  // Telemetry and online detection ride the event stream, so the collector
  // exists whenever any consumer does; without event_trace it runs ring-less
  // (pure event bus, no retention).
  const bool obs_consumers = config_.telemetry.enabled ||
                             config_.online_detect ||
                             config_.recovery.enabled;
#else
  // Compiled out: no events are ever emitted, so the new consumers would sit
  // on a silent bus — don't build them (zero instruments, zero overhead).
  const bool obs_consumers = false;
#endif
  if (config_.event_trace || obs_consumers) {
    obs::TraceConfig tc;
    tc.capacity = config_.trace_capacity;
    // Tail sampling replaces full ring retention: the retained view (size(),
    // for_each(), the written trace file) becomes the sampled trace.
    tc.ring = config_.event_trace && !config_.trace_tail.enabled;
    tc.tail = config_.trace_tail;
    trace_ = std::make_unique<obs::TraceCollector>(tc);
  }
#ifndef NTIER_OBS_DISABLED
  if (config_.telemetry.enabled) {
    telemetry_ = std::make_unique<obs::TelemetryRegistry>(config_.telemetry);
    telemetry_feed_ = std::make_unique<obs::TelemetryFeed>(
        *telemetry_, config_.num_tomcats);
    trace_->add_sink(telemetry_feed_.get());
  }
  if (config_.online_detect) {
    millib::OnlineDetectorConfig dc = config_.online_detector;
    dc.window = config_.metric_window;
    detector_ = std::make_unique<millib::OnlineDetector>(
        dc, trace_->tail_enabled() ? trace_.get() : nullptr);
    trace_->add_sink(detector_.get());
  }
#endif

  // -- nodes -------------------------------------------------------------------
  for (int i = 0; i < config_.num_apaches; ++i)
    apache_nodes_.push_back(make_node("apache" + std::to_string(i + 1),
                                      config_.apache_millibottlenecks,
                                      config_.apache_pdflush, i));
  const bool tomcat_pdflush =
      config_.tomcat_millibottlenecks &&
      config_.tomcat_stall_source == StallSource::kPdflush;
  for (int i = 0; i < config_.num_tomcats; ++i)
    tomcat_nodes_.push_back(make_node("tomcat" + std::to_string(i + 1),
                                      tomcat_pdflush, config_.tomcat_pdflush,
                                      i, config_.tomcat_dirty_throttle_bytes));
  const bool kv_mode = config_.db_tier == server::DbTier::kKv;
  if (!kv_mode) {
    for (int i = 0; i < config_.num_mysql; ++i)
      mysql_nodes_.push_back(make_node("mysql" + std::to_string(i + 1),
                                       config_.mysql_millibottlenecks,
                                       config_.mysql_pdflush, i));
  } else {
    // KV replica nodes take the data tier's place; they reuse the MySQL-side
    // pdflush knobs (same disks, same writeback behaviour).
    for (int i = 0; i < config_.kv.replicas; ++i)
      kv_nodes_.push_back(make_node("kv" + std::to_string(i + 1),
                                    config_.mysql_millibottlenecks,
                                    config_.mysql_pdflush, i));
  }

  // Synthetic stall sources (§III-A's non-pdflush causes), staggered the
  // same way the pdflush wakeups are.
  if (config_.tomcat_millibottlenecks &&
      config_.tomcat_stall_source != StallSource::kPdflush) {
    for (int i = 0; i < config_.num_tomcats; ++i) {
      millib::InjectorConfig ic = config_.injector;
      ic.initial_offset =
          ic.initial_offset +
          config_.pdflush_stagger * static_cast<std::int64_t>(i);
      injectors_.push_back(std::make_unique<millib::CapacityStallInjector>(
          sim_, tomcat_nodes_[static_cast<std::size_t>(i)]->cpu(), ic,
          to_string(config_.tomcat_stall_source)));
      injectors_.back()->set_trace(trace_.get(), obs::Tier::kTomcat, i);
    }
  }
  if (trace_) {
    for (int i = 0; i < config_.num_apaches; ++i)
      apache_nodes_[static_cast<std::size_t>(i)]->pdflush().set_trace(
          trace_.get(), obs::Tier::kApache, i);
    for (int i = 0; i < config_.num_tomcats; ++i)
      tomcat_nodes_[static_cast<std::size_t>(i)]->pdflush().set_trace(
          trace_.get(), obs::Tier::kTomcat, i);
    for (int i = 0; i < config_.num_mysql && !kv_mode; ++i)
      mysql_nodes_[static_cast<std::size_t>(i)]->pdflush().set_trace(
          trace_.get(), obs::Tier::kMysql, i);
    for (std::size_t i = 0; i < kv_nodes_.size(); ++i)
      kv_nodes_[i]->pdflush().set_trace(trace_.get(), obs::Tier::kKv,
                                        static_cast<int>(i));
  }

  // -- servers -----------------------------------------------------------------
  if (!kv_mode) {
    for (int i = 0; i < config_.num_mysql; ++i)
      mysqls_.push_back(std::make_unique<server::MySqlServer>(
          sim_, *mysql_nodes_[static_cast<std::size_t>(i)], config_.mysql,
          config_.metric_window));
  } else {
    kv::KvReplicaConfig rc;
    rc.hint_capacity = config_.kv.hint_capacity;
    for (int i = 0; i < config_.kv.replicas; ++i)
      kv_replicas_.push_back(std::make_unique<kv::KvReplica>(
          sim_, *kv_nodes_[static_cast<std::size_t>(i)], i, rc,
          config_.metric_window));
    std::vector<kv::KvReplica*> kv_ptrs;
    for (auto& r : kv_replicas_) kv_ptrs.push_back(r.get());
    kv_tier_ = std::make_unique<kv::KvTier>(sim_, std::move(kv_ptrs),
                                            config_.kv, config_.link_latency);
    if (trace_) kv_tier_->set_trace(trace_.get());
    // The data tier's own millibottleneck source: correlated injector
    // stalls on enough members of the hot key's shard (n - r + 1 of them)
    // that quorum-R completion cannot sidestep the episode. Key rank 0 is
    // the Zipf-hottest key, so shard_of(0) is the hot shard.
    if (config_.kv_millibottlenecks) {
      const int hot_shard = kv_tier_->shard_of(0);
      const auto& members = kv_tier_->shard_members(hot_shard);
      const int stalled = std::min<int>(
          static_cast<int>(members.size()),
          config_.kv.n - config_.kv.r + 1);
      for (int m = 0; m < stalled; ++m) {
        const int node = members[static_cast<std::size_t>(m)];
        kv_injectors_.push_back(std::make_unique<millib::CapacityStallInjector>(
            sim_, kv_nodes_[static_cast<std::size_t>(node)]->cpu(),
            config_.injector, "kv_hot_shard"));
        kv_injectors_.back()->set_trace(trace_.get(), obs::Tier::kKv, node);
      }
    }
  }

  // -- cache tier ---------------------------------------------------------------
  if (config_.cache_tier) {
    if (!kv_mode)
      throw std::invalid_argument(
          "ExperimentConfig: cache_tier requires db_tier == kKv");
    // Cache nodes are memory-only: no log writes, so no pdflush. Their
    // millibottleneck surface is the bounded invalidation queue instead.
    for (int i = 0; i < config_.cache.nodes; ++i)
      cache_nodes_.push_back(make_node("cache" + std::to_string(i + 1),
                                       /*millibottlenecks=*/false,
                                       os::PdflushConfig{}, i));
    std::vector<os::Node*> cache_ptrs;
    for (auto& n : cache_nodes_) cache_ptrs.push_back(n.get());
    cache_tier_ = std::make_unique<cache::CacheTier>(
        sim_, std::move(cache_ptrs), kv_tier_.get(), config_.cache);
    if (trace_) cache_tier_->set_trace(trace_.get());
  }

  std::vector<server::MySqlServer*> replica_ptrs;
  for (auto& m : mysqls_) replica_ptrs.push_back(m.get());

  server::TomcatConfig tc = config_.tomcat;
  tc.overload = config_.overload;
  for (int i = 0; i < config_.num_tomcats; ++i) {
    server::DbRouterConfig dc = config_.db_router;
    dc.link_latency = config_.link_latency;
    dc.overload = config_.overload;
    if (lb::policy_uses_probes(dc.policy)) dc.probe.enabled = true;
    if (cache_tier_)
      // Each Tomcat's router is pinned to one cache server, so the same key
      // can be resident on several nodes — which is what the invalidation
      // broadcast exists for.
      db_routers_.push_back(std::make_unique<server::DbRouter>(
          sim_, cache_tier_.get(), i % cache_tier_->num_nodes(), dc));
    else if (kv_mode)
      db_routers_.push_back(
          std::make_unique<server::DbRouter>(sim_, kv_tier_.get(), dc));
    else
      db_routers_.push_back(
          std::make_unique<server::DbRouter>(sim_, replica_ptrs, dc));
    tomcats_.push_back(std::make_unique<server::TomcatServer>(
        sim_, *tomcat_nodes_[static_cast<std::size_t>(i)], i, *db_routers_.back(),
        tc, config_.metric_window));
  }

  std::vector<server::TomcatServer*> tomcat_ptrs;
  for (auto& t : tomcats_) tomcat_ptrs.push_back(t.get());

  for (int i = 0; i < config_.num_apaches; ++i) {
    server::ApacheConfig ac = config_.apache;
    ac.link_latency = config_.link_latency;
    ac.probe = config_.probe;
    ac.overload = config_.overload;
    // A probe-aware policy without a probe pool would silently run as
    // current_load for the whole experiment; force the pool on instead.
    if (lb::policy_uses_probes(config_.policy)) ac.probe.enabled = true;
    lb::BalancerConfig bc = config_.balancer;
    bc.worker_weights = config_.tomcat_weights;
    if (config_.sticky_sessions) bc.sticky_sessions = true;
    auto apache = std::make_unique<server::ApacheServer>(
        sim_, *apache_nodes_[static_cast<std::size_t>(i)], i, tomcat_ptrs,
        lb::make_policy(config_.policy),
        lb::make_acquirer(config_.mechanism, bc.blocking), bc, ac,
        config_.metric_window);
    if (config_.tracing) apache->balancer().enable_tracing(config_.metric_window);
    if (trace_) apache->set_trace(trace_.get());
    apaches_.push_back(std::move(apache));
  }
  if (trace_)
    for (auto& t : tomcats_) t->set_trace(trace_.get());

  // -- recovery orchestration ---------------------------------------------------
#ifndef NTIER_OBS_DISABLED
  if (config_.recovery.enabled && trace_) {
    recovery::RecoverySignals sig;
    sig.queue_depth = [this] {
      double q = 0;
      for (auto& a : apaches_) {
        auto& lb = a->balancer();
        for (int w = 0; w < lb.num_workers(); ++w)
          q += static_cast<double>(lb.record(w).committed);
      }
      return q;
    };
    sig.retries = [this] {
      std::uint64_t r = 0;
      for (auto& a : apaches_) r += a->retries();
      return r;
    };
    sig.first_attempts = [this] {
      std::uint64_t r = 0;
      for (auto& a : apaches_) r += a->first_attempts();
      return r;
    };
    recovery::RecoveryActions act;
    act.suppress_retries = [this](bool on) {
      for (auto& a : apaches_) a->set_retry_suppressed(on);
    };
    act.hard_shed = [this](bool on) {
      for (auto& a : apaches_) a->set_recovery_shed(on);
    };
    if (cache_tier_) {
      act.gate_refills = [this](bool on) {
        cache_tier_->set_refill_gate(on);
      };
    }
    act.reset_breakers = [this] {
      int n = 0;
      for (auto& a : apaches_) n += a->balancer().reset_breakers();
      return n;
    };
    // The recovery baseline must describe the post-warmup steady state.
    recovery::RecoveryConfig rc = config_.recovery;
    rc.warmup = std::max(rc.warmup, config_.warmup);
    recovery_ = std::make_unique<recovery::RecoveryOrchestrator>(
        sim_, rc, std::move(sig), std::move(act));
    recovery_->set_trace(trace_.get());
    trace_->add_sink(recovery_.get());
    recovery_->start();
  }
#endif

  // -- clients -----------------------------------------------------------------
  workload::ClientParams cp;
  cp.num_clients = config_.num_clients;
  cp.think_mean = config_.think_mean;
  cp.ramp = config_.think_mean;
  cp.warmup = config_.warmup;
  cp.retransmit = config_.retransmit;
  cp.link_latency = config_.link_latency;
  cp.sticky_sessions = config_.sticky_sessions;
  cp.bursty = config_.bursty_workload;
  cp.burst_multiplier = config_.burst_multiplier;
  if (config_.overload.stamp_deadlines)
    cp.deadline_budget = config_.overload.deadline_budget;
  std::vector<proto::FrontEnd*> fes;
  for (auto& a : apaches_) fes.push_back(a.get());
  clients_ = std::make_unique<workload::ClientPopulation>(sim_, cp, workload_,
                                                          fes, log_);
  if (trace_) clients_->set_trace(trace_.get());

  // -- trace replay -------------------------------------------------------------
  if (config_.replay_trace) {
    workload::ReplayParams rp;
    rp.retransmit = config_.retransmit;
    rp.link_latency = config_.link_latency;
    rp.client_timeout = config_.replay_client_timeout;
    rp.warmup = config_.warmup;
    if (config_.overload.stamp_deadlines)
      rp.deadline_budget = config_.overload.deadline_budget;
    replayer_ = std::make_unique<workload::TraceReplayer>(
        sim_, *config_.replay_trace, workload_, fes, log_, rp);
  }

  // -- chaos -------------------------------------------------------------------
  if (!config_.fault_plan.empty()) {
    chaos_ = std::make_unique<ChaosController>(*this, config_.fault_plan);
    chaos_->arm();
  }

  // -- samplers ------------------------------------------------------------------
  if (config_.tracing) {
    for (auto& n : apache_nodes_)
      apache_cpu_.push_back(std::make_unique<metrics::PeriodicSampler>(
          sim_, config_.metric_window,
          [node = n.get()] { return node->cpu().probe_utilisation().combined(); }));
    for (auto& n : tomcat_nodes_)
      tomcat_cpu_.push_back(std::make_unique<metrics::PeriodicSampler>(
          sim_, config_.metric_window,
          [node = n.get()] { return node->cpu().probe_utilisation().combined(); }));
    for (auto& n : mysql_nodes_)
      mysql_cpu_.push_back(std::make_unique<metrics::PeriodicSampler>(
          sim_, config_.metric_window, [node = n.get()] {
            return node->cpu().probe_utilisation().combined();
          }));
    for (auto& n : kv_nodes_)
      kv_cpu_.push_back(std::make_unique<metrics::PeriodicSampler>(
          sim_, config_.metric_window, [node = n.get()] {
            return node->cpu().probe_utilisation().combined();
          }));
    for (auto& n : cache_nodes_)
      cache_cpu_.push_back(std::make_unique<metrics::PeriodicSampler>(
          sim_, config_.metric_window, [node = n.get()] {
            return node->cpu().probe_utilisation().combined();
          }));
  }
  // iowait sampling doubles as the trace's kIoWait signal, so the samplers
  // exist whenever either consumer is on.
  if (config_.tracing || trace_) {
    for (int i = 0; i < config_.num_tomcats; ++i) {
      auto* node = tomcat_nodes_[static_cast<std::size_t>(i)].get();
      tomcat_iowait_.push_back(std::make_unique<metrics::PeriodicSampler>(
          sim_, config_.metric_window, [this, node, i] {
            const double v = node->disk().probe_busy_fraction();
            NTIER_TRACE_EVENT(trace_.get(), sim_.now(),
                              obs::EventKind::kIoWait, obs::Tier::kTomcat, i,
                              -1, 0, v);
            return v;
          }));
    }
  }
  if (trace_) {
    auto emit_iowait = [this](os::Node* node, obs::Tier tier, int i) {
      trace_iowait_.push_back(std::make_unique<metrics::PeriodicSampler>(
          sim_, config_.metric_window, [this, node, tier, i] {
            const double v = node->disk().probe_busy_fraction();
            NTIER_TRACE_EVENT(trace_.get(), sim_.now(),
                              obs::EventKind::kIoWait, tier, i, -1, 0, v);
            return v;
          }));
    };
    for (int i = 0; i < config_.num_apaches; ++i)
      emit_iowait(apache_nodes_[static_cast<std::size_t>(i)].get(),
                  obs::Tier::kApache, i);
    for (std::size_t i = 0; i < mysql_nodes_.size(); ++i)
      emit_iowait(mysql_nodes_[i].get(), obs::Tier::kMysql,
                  static_cast<int>(i));
    for (std::size_t i = 0; i < kv_nodes_.size(); ++i)
      emit_iowait(kv_nodes_[i].get(), obs::Tier::kKv, static_cast<int>(i));
  }
}

void Experiment::run() {
  if (ran_) throw std::logic_error("Experiment::run called twice");
  ran_ = true;
  clients_->start();
  if (replayer_) replayer_->start();
  sim_.run_until(config_.duration);
  for (auto& a : apaches_) {
    a->finish_traces();
    a->balancer().finish_traces();
  }
  for (auto& t : tomcats_) t->finish_traces();
  for (auto& m : mysqls_) m->finish_traces();
  if (kv_tier_) kv_tier_->finish(config_.duration);
  for (auto& n : tomcat_nodes_) n->page_cache().finish_trace();
  for (auto& n : apache_nodes_) n->page_cache().finish_trace();
  for (auto& n : mysql_nodes_) n->page_cache().finish_trace();
  for (auto& n : kv_nodes_) n->page_cache().finish_trace();
  for (auto& n : cache_nodes_) n->page_cache().finish_trace();
  // Close the online-detection books after every tier stopped emitting, then
  // let the tail sampler make its final keep decisions with the detector's
  // marks in place.
  if (detector_) detector_->finish(config_.duration);
  if (trace_ && trace_->tail_enabled()) trace_->finish_tail();
}

std::vector<std::vector<std::pair<sim::SimTime, sim::SimTime>>>
Experiment::tomcat_truth_intervals() const {
  std::vector<std::vector<std::pair<sim::SimTime, sim::SimTime>>> truth;
  truth.reserve(static_cast<std::size_t>(num_tomcats()));
  for (int t = 0; t < num_tomcats(); ++t) truth.push_back(flush_intervals(t));
  return truth;
}

std::size_t Experiment::num_metric_windows() const {
  return static_cast<std::size_t>(config_.duration.ns() /
                                  config_.metric_window.ns());
}

namespace {
void add_gauge_max(std::vector<double>& acc, const metrics::GaugeSeries& g) {
  for (std::size_t w = 0; w < acc.size(); ++w) acc[w] += g.max(w);
}
}  // namespace

std::vector<double> Experiment::apache_tier_queue() const {
  std::vector<double> acc(num_metric_windows(), 0.0);
  for (const auto& a : apaches_) add_gauge_max(acc, a->queue_trace());
  return acc;
}

std::vector<double> Experiment::tomcat_tier_queue() const {
  std::vector<double> acc(num_metric_windows(), 0.0);
  for (int t = 0; t < num_tomcats(); ++t) {
    const auto series = tomcat_committed_series(t);
    for (std::size_t w = 0; w < acc.size() && w < series.size(); ++w)
      acc[w] += series[w];
  }
  return acc;
}

std::vector<double> Experiment::mysql_tier_queue() const {
  std::vector<double> acc(num_metric_windows(), 0.0);
  for (const auto& m : mysqls_) add_gauge_max(acc, m->queue_trace());
  return acc;
}

std::vector<double> Experiment::kv_tier_queue() const {
  std::vector<double> acc(num_metric_windows(), 0.0);
  for (const auto& r : kv_replicas_) add_gauge_max(acc, r->queue_trace());
  return acc;
}

std::vector<double> Experiment::tomcat_committed_series(int tomcat) const {
  std::vector<double> acc(num_metric_windows(), 0.0);
  for (const auto& a : apaches_) {
    if (!a->balancer().tracing()) continue;
    add_gauge_max(acc, a->balancer().committed_trace(tomcat));
  }
  return acc;
}

std::vector<double> Experiment::tomcat_resident_series(int tomcat) const {
  std::vector<double> acc(num_metric_windows(), 0.0);
  add_gauge_max(acc, tomcats_[static_cast<std::size_t>(tomcat)]->queue_trace());
  return acc;
}

double Experiment::mean_cpu(const metrics::TimeSeries& s) const {
  double sum = 0;
  std::int64_t n = 0;
  for (std::size_t i = 0; i < s.num_windows(); ++i) {
    sum += s.sum(i);
    n += s.count(i);
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

std::vector<std::pair<sim::SimTime, sim::SimTime>> Experiment::flush_intervals(
    int tomcat) const {
  std::vector<std::pair<sim::SimTime, sim::SimTime>> out;
  if (config_.tomcat_millibottlenecks &&
      config_.tomcat_stall_source != StallSource::kPdflush) {
    for (const auto& e :
         injectors_[static_cast<std::size_t>(tomcat)]->episodes())
      out.emplace_back(e.start, e.end);
    return out;
  }
  for (const auto& e :
       tomcat_nodes_[static_cast<std::size_t>(tomcat)]->pdflush().episodes()) {
    out.emplace_back(e.start, e.end == sim::SimTime::max() ? config_.duration
                                                           : e.end);
  }
  return out;
}

std::vector<std::pair<sim::SimTime, sim::SimTime>>
Experiment::kv_stall_intervals() const {
  std::vector<std::pair<sim::SimTime, sim::SimTime>> out;
  for (const auto& inj : kv_injectors_)
    for (const auto& e : inj->episodes()) out.emplace_back(e.start, e.end);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<sim::SimTime, sim::SimTime>>
Experiment::mysql_flush_intervals(int replica) const {
  std::vector<std::pair<sim::SimTime, sim::SimTime>> out;
  for (const auto& e :
       mysql_nodes_[static_cast<std::size_t>(replica)]->pdflush().episodes()) {
    out.emplace_back(e.start, e.end == sim::SimTime::max() ? config_.duration
                                                           : e.end);
  }
  return out;
}

}  // namespace ntier::experiment
