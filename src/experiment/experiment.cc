#include "experiment/experiment.h"

#include <algorithm>
#include <stdexcept>

#include "experiment/chaos.h"

namespace ntier::experiment {

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      workload_(config_.workload),
      log_(config_.metric_window, config_.keep_records) {
  build();
}

Experiment::~Experiment() = default;

std::unique_ptr<os::Node> Experiment::make_node(const std::string& name,
                                                bool millibottlenecks,
                                                os::PdflushConfig pdflush,
                                                int index,
                                                std::uint64_t throttle_bytes) {
  os::NodeConfig nc;
  nc.name = name;
  nc.cores = config_.cores;
  nc.disk_bytes_per_second = config_.disk_bytes_per_second;
  nc.pdflush = pdflush;
  nc.pdflush.enabled = millibottlenecks;
  nc.pdflush.initial_offset =
      config_.pdflush_stagger * static_cast<std::int64_t>(index);
  nc.dirty_throttle_bytes = throttle_bytes;
  return std::make_unique<os::Node>(sim_, nc);
}

void Experiment::build() {
  if (config_.event_trace)
    trace_ = std::make_unique<obs::TraceCollector>(
        obs::TraceConfig{config_.trace_capacity});

  // -- nodes -------------------------------------------------------------------
  for (int i = 0; i < config_.num_apaches; ++i)
    apache_nodes_.push_back(make_node("apache" + std::to_string(i + 1),
                                      config_.apache_millibottlenecks,
                                      config_.apache_pdflush, i));
  const bool tomcat_pdflush =
      config_.tomcat_millibottlenecks &&
      config_.tomcat_stall_source == StallSource::kPdflush;
  for (int i = 0; i < config_.num_tomcats; ++i)
    tomcat_nodes_.push_back(make_node("tomcat" + std::to_string(i + 1),
                                      tomcat_pdflush, config_.tomcat_pdflush,
                                      i, config_.tomcat_dirty_throttle_bytes));
  for (int i = 0; i < config_.num_mysql; ++i)
    mysql_nodes_.push_back(make_node("mysql" + std::to_string(i + 1),
                                     config_.mysql_millibottlenecks,
                                     config_.mysql_pdflush, i));

  // Synthetic stall sources (§III-A's non-pdflush causes), staggered the
  // same way the pdflush wakeups are.
  if (config_.tomcat_millibottlenecks &&
      config_.tomcat_stall_source != StallSource::kPdflush) {
    for (int i = 0; i < config_.num_tomcats; ++i) {
      millib::InjectorConfig ic = config_.injector;
      ic.initial_offset =
          ic.initial_offset +
          config_.pdflush_stagger * static_cast<std::int64_t>(i);
      injectors_.push_back(std::make_unique<millib::CapacityStallInjector>(
          sim_, tomcat_nodes_[static_cast<std::size_t>(i)]->cpu(), ic,
          to_string(config_.tomcat_stall_source)));
      injectors_.back()->set_trace(trace_.get(), obs::Tier::kTomcat, i);
    }
  }
  if (trace_) {
    for (int i = 0; i < config_.num_apaches; ++i)
      apache_nodes_[static_cast<std::size_t>(i)]->pdflush().set_trace(
          trace_.get(), obs::Tier::kApache, i);
    for (int i = 0; i < config_.num_tomcats; ++i)
      tomcat_nodes_[static_cast<std::size_t>(i)]->pdflush().set_trace(
          trace_.get(), obs::Tier::kTomcat, i);
    for (int i = 0; i < config_.num_mysql; ++i)
      mysql_nodes_[static_cast<std::size_t>(i)]->pdflush().set_trace(
          trace_.get(), obs::Tier::kMysql, i);
  }

  // -- servers -----------------------------------------------------------------
  for (int i = 0; i < config_.num_mysql; ++i)
    mysqls_.push_back(std::make_unique<server::MySqlServer>(
        sim_, *mysql_nodes_[static_cast<std::size_t>(i)], config_.mysql,
        config_.metric_window));

  std::vector<server::MySqlServer*> replica_ptrs;
  for (auto& m : mysqls_) replica_ptrs.push_back(m.get());

  server::TomcatConfig tc = config_.tomcat;
  tc.overload = config_.overload;
  for (int i = 0; i < config_.num_tomcats; ++i) {
    server::DbRouterConfig dc = config_.db_router;
    dc.link_latency = config_.link_latency;
    dc.overload = config_.overload;
    if (lb::policy_uses_probes(dc.policy)) dc.probe.enabled = true;
    db_routers_.push_back(
        std::make_unique<server::DbRouter>(sim_, replica_ptrs, dc));
    tomcats_.push_back(std::make_unique<server::TomcatServer>(
        sim_, *tomcat_nodes_[static_cast<std::size_t>(i)], i, *db_routers_.back(),
        tc, config_.metric_window));
  }

  std::vector<server::TomcatServer*> tomcat_ptrs;
  for (auto& t : tomcats_) tomcat_ptrs.push_back(t.get());

  for (int i = 0; i < config_.num_apaches; ++i) {
    server::ApacheConfig ac = config_.apache;
    ac.link_latency = config_.link_latency;
    ac.probe = config_.probe;
    ac.overload = config_.overload;
    // A probe-aware policy without a probe pool would silently run as
    // current_load for the whole experiment; force the pool on instead.
    if (lb::policy_uses_probes(config_.policy)) ac.probe.enabled = true;
    lb::BalancerConfig bc = config_.balancer;
    bc.worker_weights = config_.tomcat_weights;
    if (config_.sticky_sessions) bc.sticky_sessions = true;
    auto apache = std::make_unique<server::ApacheServer>(
        sim_, *apache_nodes_[static_cast<std::size_t>(i)], i, tomcat_ptrs,
        lb::make_policy(config_.policy),
        lb::make_acquirer(config_.mechanism, bc.blocking), bc, ac,
        config_.metric_window);
    if (config_.tracing) apache->balancer().enable_tracing(config_.metric_window);
    if (trace_) apache->set_trace(trace_.get());
    apaches_.push_back(std::move(apache));
  }
  if (trace_)
    for (auto& t : tomcats_) t->set_trace(trace_.get());

  // -- clients -----------------------------------------------------------------
  workload::ClientParams cp;
  cp.num_clients = config_.num_clients;
  cp.think_mean = config_.think_mean;
  cp.ramp = config_.think_mean;
  cp.warmup = config_.warmup;
  cp.retransmit = config_.retransmit;
  cp.link_latency = config_.link_latency;
  cp.sticky_sessions = config_.sticky_sessions;
  cp.bursty = config_.bursty_workload;
  cp.burst_multiplier = config_.burst_multiplier;
  if (config_.overload.stamp_deadlines)
    cp.deadline_budget = config_.overload.deadline_budget;
  std::vector<proto::FrontEnd*> fes;
  for (auto& a : apaches_) fes.push_back(a.get());
  clients_ = std::make_unique<workload::ClientPopulation>(sim_, cp, workload_,
                                                          fes, log_);
  if (trace_) clients_->set_trace(trace_.get());

  // -- chaos -------------------------------------------------------------------
  if (!config_.fault_plan.empty()) {
    chaos_ = std::make_unique<ChaosController>(*this, config_.fault_plan);
    chaos_->arm();
  }

  // -- samplers ------------------------------------------------------------------
  if (config_.tracing) {
    for (auto& n : apache_nodes_)
      apache_cpu_.push_back(std::make_unique<metrics::PeriodicSampler>(
          sim_, config_.metric_window,
          [node = n.get()] { return node->cpu().probe_utilisation().combined(); }));
    for (auto& n : tomcat_nodes_)
      tomcat_cpu_.push_back(std::make_unique<metrics::PeriodicSampler>(
          sim_, config_.metric_window,
          [node = n.get()] { return node->cpu().probe_utilisation().combined(); }));
    for (auto& n : mysql_nodes_)
      mysql_cpu_.push_back(std::make_unique<metrics::PeriodicSampler>(
          sim_, config_.metric_window, [node = n.get()] {
            return node->cpu().probe_utilisation().combined();
          }));
  }
  // iowait sampling doubles as the trace's kIoWait signal, so the samplers
  // exist whenever either consumer is on.
  if (config_.tracing || trace_) {
    for (int i = 0; i < config_.num_tomcats; ++i) {
      auto* node = tomcat_nodes_[static_cast<std::size_t>(i)].get();
      tomcat_iowait_.push_back(std::make_unique<metrics::PeriodicSampler>(
          sim_, config_.metric_window, [this, node, i] {
            const double v = node->disk().probe_busy_fraction();
            NTIER_TRACE_EVENT(trace_.get(), sim_.now(),
                              obs::EventKind::kIoWait, obs::Tier::kTomcat, i,
                              -1, 0, v);
            return v;
          }));
    }
  }
  if (trace_) {
    auto emit_iowait = [this](os::Node* node, obs::Tier tier, int i) {
      trace_iowait_.push_back(std::make_unique<metrics::PeriodicSampler>(
          sim_, config_.metric_window, [this, node, tier, i] {
            const double v = node->disk().probe_busy_fraction();
            NTIER_TRACE_EVENT(trace_.get(), sim_.now(),
                              obs::EventKind::kIoWait, tier, i, -1, 0, v);
            return v;
          }));
    };
    for (int i = 0; i < config_.num_apaches; ++i)
      emit_iowait(apache_nodes_[static_cast<std::size_t>(i)].get(),
                  obs::Tier::kApache, i);
    for (int i = 0; i < config_.num_mysql; ++i)
      emit_iowait(mysql_nodes_[static_cast<std::size_t>(i)].get(),
                  obs::Tier::kMysql, i);
  }
}

void Experiment::run() {
  if (ran_) throw std::logic_error("Experiment::run called twice");
  ran_ = true;
  clients_->start();
  sim_.run_until(config_.duration);
  for (auto& a : apaches_) {
    a->finish_traces();
    a->balancer().finish_traces();
  }
  for (auto& t : tomcats_) t->finish_traces();
  for (auto& m : mysqls_) m->finish_traces();
  for (auto& n : tomcat_nodes_) n->page_cache().finish_trace();
  for (auto& n : apache_nodes_) n->page_cache().finish_trace();
  for (auto& n : mysql_nodes_) n->page_cache().finish_trace();
}

std::size_t Experiment::num_metric_windows() const {
  return static_cast<std::size_t>(config_.duration.ns() /
                                  config_.metric_window.ns());
}

namespace {
void add_gauge_max(std::vector<double>& acc, const metrics::GaugeSeries& g) {
  for (std::size_t w = 0; w < acc.size(); ++w) acc[w] += g.max(w);
}
}  // namespace

std::vector<double> Experiment::apache_tier_queue() const {
  std::vector<double> acc(num_metric_windows(), 0.0);
  for (const auto& a : apaches_) add_gauge_max(acc, a->queue_trace());
  return acc;
}

std::vector<double> Experiment::tomcat_tier_queue() const {
  std::vector<double> acc(num_metric_windows(), 0.0);
  for (int t = 0; t < num_tomcats(); ++t) {
    const auto series = tomcat_committed_series(t);
    for (std::size_t w = 0; w < acc.size() && w < series.size(); ++w)
      acc[w] += series[w];
  }
  return acc;
}

std::vector<double> Experiment::mysql_tier_queue() const {
  std::vector<double> acc(num_metric_windows(), 0.0);
  for (const auto& m : mysqls_) add_gauge_max(acc, m->queue_trace());
  return acc;
}

std::vector<double> Experiment::tomcat_committed_series(int tomcat) const {
  std::vector<double> acc(num_metric_windows(), 0.0);
  for (const auto& a : apaches_) {
    if (!a->balancer().tracing()) continue;
    add_gauge_max(acc, a->balancer().committed_trace(tomcat));
  }
  return acc;
}

std::vector<double> Experiment::tomcat_resident_series(int tomcat) const {
  std::vector<double> acc(num_metric_windows(), 0.0);
  add_gauge_max(acc, tomcats_[static_cast<std::size_t>(tomcat)]->queue_trace());
  return acc;
}

double Experiment::mean_cpu(const metrics::TimeSeries& s) const {
  double sum = 0;
  std::int64_t n = 0;
  for (std::size_t i = 0; i < s.num_windows(); ++i) {
    sum += s.sum(i);
    n += s.count(i);
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

std::vector<std::pair<sim::SimTime, sim::SimTime>> Experiment::flush_intervals(
    int tomcat) const {
  std::vector<std::pair<sim::SimTime, sim::SimTime>> out;
  if (config_.tomcat_millibottlenecks &&
      config_.tomcat_stall_source != StallSource::kPdflush) {
    for (const auto& e :
         injectors_[static_cast<std::size_t>(tomcat)]->episodes())
      out.emplace_back(e.start, e.end);
    return out;
  }
  for (const auto& e :
       tomcat_nodes_[static_cast<std::size_t>(tomcat)]->pdflush().episodes()) {
    out.emplace_back(e.start, e.end == sim::SimTime::max() ? config_.duration
                                                           : e.end);
  }
  return out;
}

std::vector<std::pair<sim::SimTime, sim::SimTime>>
Experiment::mysql_flush_intervals(int replica) const {
  std::vector<std::pair<sim::SimTime, sim::SimTime>> out;
  for (const auto& e :
       mysql_nodes_[static_cast<std::size_t>(replica)]->pdflush().episodes()) {
    out.emplace_back(e.start, e.end == sim::SimTime::max() ? config_.duration
                                                           : e.end);
  }
  return out;
}

}  // namespace ntier::experiment
