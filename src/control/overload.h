#pragma once

// End-to-end overload control (beyond the paper). The paper's testbed has no
// overload signal except the silent accept-queue overflow that surfaces as
// TCP retransmissions — exactly the amplifier that turns a 300 ms pdflush
// stall into multi-second VLRT requests. This subsystem adds the three
// standard counter-measures, wired through every tier:
//
//   * deadline propagation  — requests carry an absolute deadline; each tier
//     sheds already-expired work instead of executing it,
//   * adaptive admission    — an AIMD concurrency limiter at the Apache front
//     door and per-Tomcat, driven by observed queue delay, rejecting early
//     with a retriable 503 instead of parking threads,
//   * CoDel-style shedding  — standing queues drop by sojourn time so the
//     backlog built during a stall drains instead of serving stale work,
//   * priority brownout     — low-priority RUBBoS interactions are shed
//     first when the limiter saturates.
//
// Everything is deterministic (no RNG) so seeded runs stay byte-identical.

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace ntier::control {

/// Coarse CLI-facing selector for which counter-measures are active.
enum class OverloadMode {
  kNone = 0,   // no stamping, no enforcement (seed behaviour)
  kDeadline,   // deadline propagation + expired-work shedding only
  kAdmission,  // AIMD admission limiting (+ brownout when priorities exist)
  kCodel,      // CoDel sojourn shedding on the accept backlog only
  kFull,       // all of the above
};

const char* to_string(OverloadMode m);
/// Parses "none|deadline|admission|codel|full"; false on unknown names.
bool parse_overload_mode(const std::string& s, OverloadMode* out);

/// AIMD limiter knobs (see AdmissionLimiter).
struct AdmissionConfig {
  /// Queue delay above this trips a multiplicative decrease.
  sim::SimTime delay_threshold = sim::SimTime::millis(25);
  /// How often the limit adapts (and the delay window resets).
  sim::SimTime interval = sim::SimTime::millis(100);
  double decrease_factor = 0.7;  // limit *= factor on congestion
  double increase = 4.0;         // limit += increase per quiet interval
  double min_limit = 8.0;        // never starve the tier completely
  /// Brownout admit fractions per priority class (0 = high). Priority p is
  /// admitted while in_flight < limit * fraction[p], so low-priority work
  /// hits the wall first as the limiter clamps down.
  double brownout_fraction[3] = {1.0, 0.92, 0.75};
};

/// CoDel knobs (see CoDelController).
struct CoDelConfig {
  sim::SimTime target = sim::SimTime::millis(20);    // acceptable sojourn
  sim::SimTime interval = sim::SimTime::millis(100); // initial drop spacing
};

/// The complete overload-control configuration carried by ExperimentConfig
/// and copied into every tier's server config by the topology builder.
struct OverloadConfig {
  OverloadMode mode = OverloadMode::kNone;

  // Enforcement switches (derived from `mode` by make_overload, but
  // independently settable for ablations).
  bool deadlines = false;   // shed expired work at every tier
  bool admission = false;   // AIMD limiter at Apache + per-Tomcat
  bool codel = false;       // sojourn-time shedding on the accept backlog
  bool brownout = false;    // priority-aware admission fractions

  /// Stamp deadlines on requests even when `deadlines` is off, so a
  /// baseline cell reports comparable goodput (completed-within-deadline)
  /// without shedding anything.
  bool stamp_deadlines = false;

  /// Client response-time budget; the absolute deadline is
  /// client_start + deadline_budget. Zero disables stamping entirely.
  sim::SimTime deadline_budget = sim::SimTime::seconds(1);

  AdmissionConfig admission_cfg;
  CoDelConfig codel_cfg;

  /// Any enforcement active (stamping alone does not count).
  bool any() const { return deadlines || admission || codel; }
};

/// Builds the enforcement switches for a CLI mode.
OverloadConfig make_overload(OverloadMode mode,
                             sim::SimTime budget = sim::SimTime::seconds(1));

/// Per-tier shed counters, aggregated into RunSummary. wasted_work_avoided_ms
/// is the service demand (CPU the tiers did NOT burn) of shed work — the
/// paper's point is that executing stale work during a stall is pure waste.
struct OverloadStats {
  std::uint64_t admission_sheds = 0;
  std::uint64_t brownout_sheds = 0;
  std::uint64_t deadline_sheds = 0;
  std::uint64_t sojourn_sheds = 0;
  std::uint64_t recovery_sheds = 0;  // recovery orchestrator hard shedding
  double wasted_work_avoided_ms = 0.0;

  std::uint64_t total_sheds() const {
    return admission_sheds + brownout_sheds + deadline_sheds + sojourn_sheds +
           recovery_sheds;
  }
  OverloadStats& operator+=(const OverloadStats& o) {
    admission_sheds += o.admission_sheds;
    brownout_sheds += o.brownout_sheds;
    deadline_sheds += o.deadline_sheds;
    sojourn_sheds += o.sojourn_sheds;
    recovery_sheds += o.recovery_sheds;
    wasted_work_avoided_ms += o.wasted_work_avoided_ms;
    return *this;
  }
};

}  // namespace ntier::control
