#pragma once

// Adaptive admission control: an AIMD concurrency limiter in the style of
// gradient/Vegas limiters (and TCP itself). The tier admits at most `limit`
// concurrent requests; every `interval` the limit adapts to the worst queue
// delay observed in the window — additive increase while the queue is
// healthy, multiplicative decrease the moment delay crosses the threshold.
// During a pdflush stall the observed delay explodes within one interval,
// the limit collapses towards min_limit, and excess work is rejected with a
// retriable 503 *before* it parks a worker thread — the exact opposite of
// the paper's funnel, where every tier keeps queueing work it cannot finish.
//
// Brownout (Klein et al., ICSE 2014) rides on the same limit: priority p is
// admitted only while in_flight < limit * brownout_fraction[p], so
// low-priority interactions hit the wall first as the limiter clamps down.

#include <algorithm>
#include <cstdint>

#include "control/overload.h"
#include "obs/trace.h"
#include "proto/request.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace ntier::control {

class AdmissionLimiter {
 public:
  /// `initial_limit` is the tier's nominal concurrency (Apache max_clients,
  /// Tomcat max_threads); the limit adapts within [min_limit, initial].
  AdmissionLimiter(sim::Simulation& sim, AdmissionConfig cfg,
                   double initial_limit, bool brownout)
      : sim_(sim),
        cfg_(cfg),
        max_limit_(initial_limit),
        limit_(initial_limit),
        brownout_(brownout) {}

  /// Hook for kLimitUpdate events (tier/node identify the emitting server).
  void set_trace(obs::TraceCollector* trace, obs::Tier tier, int node) {
    trace_ = trace;
    tier_ = tier;
    node_ = node;
  }

  /// Starts the recurring AIMD tick. Call once after construction.
  void start() { schedule_tick(); }

  /// Tries to admit one request of the given priority class. On success the
  /// caller owes a release() when the request's response fires.
  bool try_admit(std::uint8_t priority) {
    const double frac = admit_fraction(priority);
    if (static_cast<double>(in_flight_) < limit_ * frac) {
      ++in_flight_;
      ++admitted_;
      return true;
    }
    ++rejected_;
    // Would the full limit have taken it? Then only the brownout fraction
    // stood in the way — attribute the shed accordingly.
    last_rejection_ = (frac < 1.0 &&
                       static_cast<double>(in_flight_) < limit_)
                          ? proto::ShedReason::kBrownout
                          : proto::ShedReason::kAdmission;
    return false;
  }

  void release() {
    if (in_flight_ > 0) --in_flight_;
  }

  /// Feeds the congestion signal: the queueing delay a request experienced
  /// before a worker picked it up (0 for fast-path admissions).
  void observe_delay(sim::SimTime queue_delay) {
    if (queue_delay > window_max_delay_) window_max_delay_ = queue_delay;
  }

  double limit() const { return limit_; }
  std::uint64_t in_flight() const { return in_flight_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t decreases() const { return decreases_; }
  std::uint64_t increases() const { return increases_; }
  /// Why the most recent try_admit failed (admission vs brownout).
  proto::ShedReason last_rejection() const { return last_rejection_; }

 private:
  double admit_fraction(std::uint8_t priority) const {
    if (!brownout_) return 1.0;
    const int p = priority > 2 ? 2 : priority;
    return cfg_.brownout_fraction[p];
  }

  void schedule_tick() {
    sim_.after(cfg_.interval, [this] {
      tick();
      schedule_tick();
    });
  }

  void tick() {
    const double before = limit_;
    if (window_max_delay_ > cfg_.delay_threshold) {
      limit_ = std::max(cfg_.min_limit, limit_ * cfg_.decrease_factor);
      if (limit_ < before) ++decreases_;
    } else {
      limit_ = std::min(max_limit_, limit_ + cfg_.increase);
      if (limit_ > before) ++increases_;
    }
    if (limit_ != before) {
      NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kLimitUpdate,
                        tier_, node_, /*worker=*/-1, /*request=*/0,
                        /*value=*/limit_, /*aux=*/limit_ > before ? 1 : -1);
    }
    window_max_delay_ = sim::SimTime::zero();
  }

  sim::Simulation& sim_;
  AdmissionConfig cfg_;
  double max_limit_;
  double limit_;
  bool brownout_;

  std::uint64_t in_flight_ = 0;
  sim::SimTime window_max_delay_;
  proto::ShedReason last_rejection_ = proto::ShedReason::kAdmission;

  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t increases_ = 0;
  std::uint64_t decreases_ = 0;

  obs::TraceCollector* trace_ = nullptr;
  obs::Tier tier_ = obs::Tier::kApache;
  int node_ = -1;
};

}  // namespace ntier::control
