#include "control/overload.h"

namespace ntier::control {

const char* to_string(OverloadMode m) {
  switch (m) {
    case OverloadMode::kNone: return "none";
    case OverloadMode::kDeadline: return "deadline";
    case OverloadMode::kAdmission: return "admission";
    case OverloadMode::kCodel: return "codel";
    case OverloadMode::kFull: return "full";
  }
  return "?";
}

bool parse_overload_mode(const std::string& s, OverloadMode* out) {
  if (s == "none") *out = OverloadMode::kNone;
  else if (s == "deadline") *out = OverloadMode::kDeadline;
  else if (s == "admission") *out = OverloadMode::kAdmission;
  else if (s == "codel") *out = OverloadMode::kCodel;
  else if (s == "full") *out = OverloadMode::kFull;
  else return false;
  return true;
}

OverloadConfig make_overload(OverloadMode mode, sim::SimTime budget) {
  OverloadConfig c;
  c.mode = mode;
  c.deadline_budget = budget;
  switch (mode) {
    case OverloadMode::kNone:
      break;
    case OverloadMode::kDeadline:
      c.deadlines = true;
      break;
    case OverloadMode::kAdmission:
      c.admission = true;
      c.brownout = true;
      break;
    case OverloadMode::kCodel:
      c.codel = true;
      break;
    case OverloadMode::kFull:
      c.deadlines = true;
      c.admission = true;
      c.codel = true;
      c.brownout = true;
      break;
  }
  // Every enforcing mode stamps deadlines so goodput is always measurable
  // against the same budget (a baseline cell sets stamp_deadlines itself).
  c.stamp_deadlines = c.any();
  return c;
}

}  // namespace ntier::control
