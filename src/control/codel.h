#pragma once

// CoDel ("controlled delay", Nichols & Jacobson, CACM 2012) adapted from
// packet queues to request queues. The controller watches the *sojourn time*
// of dequeued items: once sojourn has exceeded `target` continuously for
// `interval`, it enters a dropping state and sheds on dequeue with the
// control-law spacing drop_next += interval / sqrt(drop_count), which backs
// the queue down to target delay without the global synchronisation a hard
// length cap causes. This is what lets a standing accept backlog built
// during a pdflush stall drain instead of serving every stale request.
//
// Deterministic by construction — pure arithmetic on SimTime, no RNG.

#include <cmath>
#include <cstdint>

#include "control/overload.h"
#include "sim/time.h"

namespace ntier::control {

class CoDelController {
 public:
  explicit CoDelController(CoDelConfig cfg) : cfg_(cfg) {}

  /// Called on every dequeue with the item's enqueue time; true means
  /// "shed this item". The caller decides what shedding means (here: a
  /// failed response back to the client without occupying a worker).
  bool should_drop(sim::SimTime enqueued, sim::SimTime now) {
    const sim::SimTime sojourn = now - enqueued;
    if (sojourn < cfg_.target) {
      // Below target: leave the dropping state and restart the clock.
      first_above_ = sim::SimTime::zero();
      dropping_ = false;
      return false;
    }
    if (first_above_ == sim::SimTime::zero()) {
      // First sojourn above target: arm, but give the queue one interval
      // to recover on its own before shedding anything.
      first_above_ = now + cfg_.interval;
      return false;
    }
    if (!dropping_) {
      if (now < first_above_) return false;  // not above target long enough
      dropping_ = true;
      drop_count_ = 1;
      drop_next_ = control_law(now);
      ++drops_;
      return true;
    }
    if (now >= drop_next_) {
      ++drop_count_;
      drop_next_ = control_law(now);
      ++drops_;
      return true;
    }
    return false;
  }

  bool dropping() const { return dropping_; }
  std::uint64_t drops() const { return drops_; }

 private:
  sim::SimTime control_law(sim::SimTime now) const {
    return now + sim::SimTime::from_seconds(
                     cfg_.interval.to_seconds() /
                     std::sqrt(static_cast<double>(drop_count_)));
  }

  CoDelConfig cfg_;
  sim::SimTime first_above_;  // when sojourn first crossed target (+interval)
  sim::SimTime drop_next_;    // next scheduled drop while in dropping state
  bool dropping_ = false;
  std::uint64_t drop_count_ = 0;  // drops this dropping episode (control law)
  std::uint64_t drops_ = 0;       // lifetime total
};

}  // namespace ntier::control
