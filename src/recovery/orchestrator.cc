#include "recovery/orchestrator.h"

#include <algorithm>
#include <sstream>

namespace ntier::recovery {

const char* to_string(RecoveryStage s) {
  switch (s) {
    case RecoveryStage::kRetrySuppression: return "retry_suppression";
    case RecoveryStage::kHardShed: return "hard_shed";
    case RecoveryStage::kRefillGate: return "refill_gate";
    case RecoveryStage::kBreakerReset: return "breaker_reset";
  }
  return "?";
}

std::string RecoveryStats::to_string() const {
  std::ostringstream os;
  os << episodes << " episodes over " << episode_ticks << "/" << ticks
     << " ticks (" << degraded_ticks << " degraded); interventions: "
     << retry_suppressions << " retry-suppress, " << hard_sheds
     << " hard-shed, " << refill_gates << " refill-gate, " << breaker_resets
     << " breakers reset";
  return os.str();
}

RecoveryOrchestrator::RecoveryOrchestrator(sim::Simulation& simu,
                                           RecoveryConfig config,
                                           RecoverySignals signals,
                                           RecoveryActions actions)
    : sim_(simu),
      config_(config),
      signals_(std::move(signals)),
      actions_(std::move(actions)) {}

void RecoveryOrchestrator::start() {
  if (started_ || !config_.enabled) return;
  started_ = true;
  if (signals_.retries) last_retries_ = signals_.retries();
  if (signals_.first_attempts) last_first_attempts_ = signals_.first_attempts();
  sim_.after(config_.tick, [this] { tick(); });
}

void RecoveryOrchestrator::observe(const obs::TraceEvent& e) {
  // Only completed-OK responses feed the latency window: failures have no
  // meaningful response time, and sheds are the orchestrator's own doing.
  if (e.kind != obs::EventKind::kClientDone || e.aux != 0) return;
  win_latency_sum_ms_ += e.value;
  ++win_completions_;
}

void RecoveryOrchestrator::set_stage(RecoveryStage stage, bool on,
                                     double level) {
  NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kRecoveryIntervention,
                    obs::Tier::kBalancer, -1, static_cast<int>(stage),
                    /*request=*/0, level, on ? +1 : -1);
}

void RecoveryOrchestrator::enter_episode(double ratio) {
  episode_active_ = true;
  healthy_streak_ = 0;
  ++stats_.episodes;
  NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kRecoveryEpisode,
                    obs::Tier::kBalancer, -1, -1, /*request=*/0, ratio,
                    /*aux=*/+1);
}

void RecoveryOrchestrator::exit_episode() {
  episode_active_ = false;
  degraded_streak_ = 0;
  // Step-down: lift every intervention together, then close whatever
  // breakers the episode left open so the fleet re-enters rotation as one.
  if (retry_suppressed_) {
    retry_suppressed_ = false;
    if (actions_.suppress_retries) actions_.suppress_retries(false);
    set_stage(RecoveryStage::kRetrySuppression, false, 0);
  }
  if (shedding_) {
    shedding_ = false;
    if (actions_.hard_shed) actions_.hard_shed(false);
    set_stage(RecoveryStage::kHardShed, false, 0);
  }
  if (refill_gated_) {
    refill_gated_ = false;
    if (actions_.gate_refills) actions_.gate_refills(false);
    set_stage(RecoveryStage::kRefillGate, false, 0);
  }
  if (actions_.reset_breakers) {
    const int reset = actions_.reset_breakers();
    stats_.breaker_resets += static_cast<std::uint64_t>(reset);
    if (reset > 0)
      set_stage(RecoveryStage::kBreakerReset, true,
                static_cast<double>(reset));
  }
  NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kRecoveryEpisode,
                    obs::Tier::kBalancer, -1, -1, /*request=*/0, 0.0,
                    /*aux=*/-1);
}

void RecoveryOrchestrator::tick() {
  ++stats_.ticks;
  const double latency_ms =
      win_completions_ ? win_latency_sum_ms_ /
                             static_cast<double>(win_completions_)
                       : 0.0;
  const double completions = static_cast<double>(win_completions_);
  win_latency_sum_ms_ = 0;
  win_completions_ = 0;

  const double queue = signals_.queue_depth ? signals_.queue_depth() : 0.0;
  const std::uint64_t retries_now = signals_.retries ? signals_.retries() : 0;
  const std::uint64_t firsts_now =
      signals_.first_attempts ? signals_.first_attempts() : 0;
  const std::uint64_t d_retries = retries_now - last_retries_;
  const std::uint64_t d_firsts = firsts_now - last_first_attempts_;
  last_retries_ = retries_now;
  last_first_attempts_ = firsts_now;
  const double retry_ratio =
      d_firsts ? static_cast<double>(d_retries) / static_cast<double>(d_firsts)
               : (d_retries ? static_cast<double>(d_retries) : 0.0);

  const bool warming = sim_.now() < config_.warmup;

  // Degradation judgement against the learned baseline.
  double ratio = 0;
  bool degraded = false;
  if (baseline_ready_ && base_latency_ms_ > 0) {
    ratio = latency_ms / base_latency_ms_;
    stats_.max_latency_ratio = std::max(stats_.max_latency_ratio, ratio);
    const bool slow = ratio > config_.degrade_ratio;
    const bool starved =
        base_completions_ > 0 &&
        completions < base_completions_ / config_.degrade_ratio &&
        (latency_ms > base_latency_ms_ || completions == 0);
    degraded = slow || starved;
  }
  if (degraded) ++stats_.degraded_ticks;

  // Baseline learning: healthy, post-warmup, completion-bearing ticks only —
  // the baseline must describe the steady state the system should return to,
  // never the degraded state it is in.
  if (!warming && !degraded && !episode_active_ && completions > 0) {
    if (!baseline_ready_) {
      base_latency_ms_ = latency_ms;
      base_completions_ = completions;
      base_queue_ = queue;
      baseline_ready_ = true;
    } else {
      base_latency_ms_ += config_.baseline_alpha * (latency_ms - base_latency_ms_);
      base_completions_ +=
          config_.baseline_alpha * (completions - base_completions_);
      base_queue_ += config_.baseline_alpha * (queue - base_queue_);
    }
  }

  // Episode state machine with two-sided hysteresis.
  if (!episode_active_) {
    degraded_streak_ = degraded ? degraded_streak_ + 1 : 0;
    if (degraded_streak_ >= config_.enter_ticks) enter_episode(ratio);
  } else {
    ++stats_.episode_ticks;
    healthy_streak_ = degraded ? 0 : healthy_streak_ + 1;
    if (healthy_streak_ >= config_.exit_ticks) {
      exit_episode();
    } else {
      // -- staged interventions, each with its own on/off band ----------------
      if (!retry_suppressed_ && retry_ratio >= config_.retry_ratio_on) {
        retry_suppressed_ = true;
        ++stats_.retry_suppressions;
        if (actions_.suppress_retries) actions_.suppress_retries(true);
        set_stage(RecoveryStage::kRetrySuppression, true, retry_ratio);
      } else if (retry_suppressed_ && retry_ratio <= config_.retry_ratio_off) {
        retry_suppressed_ = false;
        if (actions_.suppress_retries) actions_.suppress_retries(false);
        set_stage(RecoveryStage::kRetrySuppression, false, retry_ratio);
      }

      const double queue_base = std::max(base_queue_, 1.0);
      if (!shedding_ && queue >= config_.shed_queue_on * queue_base) {
        shedding_ = true;
        ++stats_.hard_sheds;
        if (actions_.hard_shed) actions_.hard_shed(true);
        set_stage(RecoveryStage::kHardShed, true, queue);
      } else if (shedding_ && queue <= config_.shed_queue_off * queue_base) {
        // Queues drained below the watermark: stop shedding before the
        // episode itself ends (the episode may still be latency-degraded).
        shedding_ = false;
        if (actions_.hard_shed) actions_.hard_shed(false);
        set_stage(RecoveryStage::kHardShed, false, queue);
      }

      if (!refill_gated_ && actions_.gate_refills) {
        // The refill gate is cheap and strictly smoothing: apply it for the
        // whole episode rather than waiting for a stampede signature.
        refill_gated_ = true;
        ++stats_.refill_gates;
        actions_.gate_refills(true);
        set_stage(RecoveryStage::kRefillGate, true, 0);
      }
    }
  }

  sim_.after(config_.tick, [this] { tick(); });
}

}  // namespace ntier::recovery
