#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/trace.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace ntier::recovery {

/// The staged interventions the orchestrator can apply, in escalation order.
/// Values are stable (they ride in trace events and JSON).
enum class RecoveryStage : std::uint8_t {
  kRetrySuppression = 0,  // drop retry attempts, keep first attempts
  kHardShed,              // answered 503s until queues drain below watermark
  kRefillGate,            // jittered cache refills (stampede admission gate)
  kBreakerReset,          // step-down: close every breaker together
};

const char* to_string(RecoveryStage s);

/// Tunables of the recovery control loop. The loop is metastability-aware:
/// a *sustaining loop* (retry storm, cache stampede, pool exhaustion) keeps
/// the system degraded after its trigger clears, so the orchestrator judges
/// the system against its own pre-trigger baseline rather than against any
/// absolute threshold, and steps interventions down only after the baseline
/// actually returns (hysteresis on both edges).
struct RecoveryConfig {
  bool enabled = false;
  /// Control-loop cadence. Each tick digests the completions observed since
  /// the previous tick; everything below is judged per tick.
  sim::SimTime tick = sim::SimTime::millis(100);
  /// Ticks are observation-only until this much sim time has passed (the
  /// baseline must describe the healthy system, not the ramp-up).
  sim::SimTime warmup = sim::SimTime::seconds(1);
  /// EWMA weight of healthy-tick observations on the learned baseline.
  double baseline_alpha = 0.05;
  /// A tick is *degraded* when mean completion latency exceeds
  /// degrade_ratio x baseline, or throughput falls below baseline /
  /// degrade_ratio while latency is elevated.
  double degrade_ratio = 3.0;
  /// Consecutive degraded ticks before an episode is declared (entry
  /// hysteresis: one slow tick is a millibottleneck, not a failure state).
  int enter_ticks = 3;
  /// Consecutive healthy ticks before the episode steps down (exit
  /// hysteresis: guards against re-declaring on the first wobble).
  int exit_ticks = 8;
  /// Retry suppression trips when the per-tick retry-to-first-attempt ratio
  /// exceeds `retry_ratio_on`, and lifts below `retry_ratio_off` (the gap is
  /// the intervention's own hysteresis band).
  double retry_ratio_on = 0.25;
  double retry_ratio_off = 0.10;
  /// Hard shedding trips when the committed-queue depth exceeds
  /// `shed_queue_on` x its baseline, and lifts once the queue drains below
  /// `shed_queue_off` x baseline (the drain watermark).
  double shed_queue_on = 4.0;
  double shed_queue_off = 1.5;
};

/// Read-only signals sampled once per tick. All cumulative counters; the
/// orchestrator differences them itself.
struct RecoverySignals {
  /// Total committed-queue depth across every balancer.
  std::function<double()> queue_depth;
  /// Cumulative retry attempts / first attempts across the front ends.
  std::function<std::uint64_t()> retries;
  std::function<std::uint64_t()> first_attempts;
};

/// Actuators. Any may be null (the stage is then skipped); each takes
/// effect immediately and is always lifted at episode step-down.
struct RecoveryActions {
  std::function<void(bool on)> suppress_retries;
  std::function<void(bool on)> hard_shed;
  std::function<void(bool on)> gate_refills;
  /// Force-close every open breaker at step-down; returns how many were
  /// open or half-open.
  std::function<int()> reset_breakers;
};

/// Everything the loop did, for RunSummary / sweeps / bench JSON. The
/// counters are jobs-invariant: they depend only on the simulated event
/// sequence, never on host parallelism.
struct RecoveryStats {
  std::uint64_t ticks = 0;
  std::uint64_t degraded_ticks = 0;
  std::uint64_t episodes = 0;
  /// Ticks spent inside a declared episode (degraded time, in tick units).
  std::uint64_t episode_ticks = 0;
  /// Per-stage application counts (a re-application after a lift counts
  /// again — flapping interventions are visible here).
  std::uint64_t retry_suppressions = 0;
  std::uint64_t hard_sheds = 0;
  std::uint64_t refill_gates = 0;
  /// Breakers force-closed across every step-down.
  std::uint64_t breaker_resets = 0;
  /// Worst observed mean-latency ratio vs baseline (diagnostics).
  double max_latency_ratio = 0;

  std::string to_string() const;
};

/// The recovery control loop: consumes the live event stream (kClientDone
/// completions) as a TraceSink, keeps a pre-trigger baseline of latency and
/// throughput, declares sustained-degradation episodes with entry/exit
/// hysteresis, applies the staged interventions above while an episode is
/// active, and steps them down — closing breakers together — once the
/// baseline returns. Fully deterministic: ticks ride the simulation clock
/// and every decision derives from simulated observations.
class RecoveryOrchestrator : public obs::TraceSink {
 public:
  RecoveryOrchestrator(sim::Simulation& simu, RecoveryConfig config,
                       RecoverySignals signals, RecoveryActions actions);

  RecoveryOrchestrator(const RecoveryOrchestrator&) = delete;
  RecoveryOrchestrator& operator=(const RecoveryOrchestrator&) = delete;

  /// Recovery lifecycle events are emitted here (null = no tracing).
  void set_trace(obs::TraceCollector* t) { trace_ = t; }

  /// Arm the tick loop; call once before the simulation runs.
  void start();

  /// TraceSink: digests kClientDone events into the current tick's window.
  void observe(const obs::TraceEvent& e) override;

  const RecoveryConfig& config() const { return config_; }
  const RecoveryStats& stats() const { return stats_; }
  bool episode_active() const { return episode_active_; }
  bool retries_suppressed() const { return retry_suppressed_; }
  bool shedding() const { return shedding_; }
  bool refills_gated() const { return refill_gated_; }
  double baseline_latency_ms() const { return base_latency_ms_; }
  double baseline_throughput() const { return base_completions_; }

 private:
  void tick();
  void enter_episode(double ratio);
  void exit_episode();
  void set_stage(RecoveryStage stage, bool on, double level);

  sim::Simulation& sim_;
  RecoveryConfig config_;
  RecoverySignals signals_;
  RecoveryActions actions_;
  obs::TraceCollector* trace_ = nullptr;
  RecoveryStats stats_;

  // Current-tick completion window (filled by observe()).
  double win_latency_sum_ms_ = 0;
  std::uint64_t win_completions_ = 0;

  // Learned pre-trigger baseline (EWMA over healthy ticks).
  double base_latency_ms_ = 0;
  double base_completions_ = 0;
  double base_queue_ = 0;
  bool baseline_ready_ = false;

  // Cumulative-signal snapshots from the previous tick.
  std::uint64_t last_retries_ = 0;
  std::uint64_t last_first_attempts_ = 0;

  // Episode state machine.
  bool episode_active_ = false;
  int degraded_streak_ = 0;
  int healthy_streak_ = 0;

  // Intervention latches.
  bool retry_suppressed_ = false;
  bool shedding_ = false;
  bool refill_gated_ = false;

  bool started_ = false;
};

}  // namespace ntier::recovery
