#include "server/mysql_server.h"

namespace ntier::server {

MySqlServer::MySqlServer(sim::Simulation& simu, os::Node& node,
                         MySqlConfig config, sim::SimTime trace_window)
    : sim_(simu), node_(node), config_(config), queue_trace_(trace_window) {}

void MySqlServer::execute(sim::SimTime demand, std::function<void()> done) {
  ++resident_;
  queue_trace_.set(sim_.now(), resident_);
  // Wrap the completion to fold this query's whole latency (queueing
  // included) into the EWMA the load probes report.
  const sim::SimTime arrived = sim_.now();
  auto wrapped = [this, arrived, done = std::move(done)] {
    const double lat_ms = (sim_.now() - arrived).to_seconds() * 1e3;
    constexpr double kAlpha = 0.2;
    latency_ewma_ms_ = latency_ewma_ms_ == 0.0
                           ? lat_ms
                           : (1 - kAlpha) * latency_ewma_ms_ + kAlpha * lat_ms;
    if (done) done();
  };
  if (executing_ < config_.max_connections) {
    start(demand, std::move(wrapped));
  } else {
    waiting_.emplace_back(demand, std::move(wrapped));
  }
}

void MySqlServer::probe_load(
    std::function<void(bool, double, double)> done) {
  node_.cpu().submit(config_.probe_demand, [this, done = std::move(done)] {
    done(true, static_cast<double>(resident_), latency_ewma_ms_);
  });
}

void MySqlServer::start(sim::SimTime demand, std::function<void()> done) {
  ++executing_;
  node_.cpu().submit(demand, [this, done = std::move(done)] {
    on_query_done();
    if (done) done();
  });
}

void MySqlServer::on_query_done() {
  --executing_;
  --resident_;
  ++served_;
  if (config_.log_bytes_per_query > 0)
    node_.page_cache().write_dirty(config_.log_bytes_per_query);
  queue_trace_.set(sim_.now(), resident_);
  if (!waiting_.empty() && executing_ < config_.max_connections) {
    auto [demand, done] = std::move(waiting_.front());
    waiting_.pop_front();
    start(demand, std::move(done));
  }
}

}  // namespace ntier::server
