#include "server/mysql_server.h"

namespace ntier::server {

MySqlServer::MySqlServer(sim::Simulation& simu, os::Node& node,
                         MySqlConfig config, sim::SimTime trace_window)
    : sim_(simu), node_(node), config_(config), queue_trace_(trace_window) {}

void MySqlServer::execute(sim::SimTime demand, std::function<void()> done) {
  ++resident_;
  queue_trace_.set(sim_.now(), resident_);
  if (executing_ < config_.max_connections) {
    start(demand, std::move(done));
  } else {
    waiting_.emplace_back(demand, std::move(done));
  }
}

void MySqlServer::start(sim::SimTime demand, std::function<void()> done) {
  ++executing_;
  node_.cpu().submit(demand, [this, done = std::move(done)] {
    on_query_done();
    if (done) done();
  });
}

void MySqlServer::on_query_done() {
  --executing_;
  --resident_;
  ++served_;
  if (config_.log_bytes_per_query > 0)
    node_.page_cache().write_dirty(config_.log_bytes_per_query);
  queue_trace_.set(sim_.now(), resident_);
  if (!waiting_.empty() && executing_ < config_.max_connections) {
    auto [demand, done] = std::move(waiting_.front());
    waiting_.pop_front();
    start(demand, std::move(done));
  }
}

}  // namespace ntier::server
