#include "server/tomcat_server.h"

#include <algorithm>

namespace ntier::server {

TomcatServer::TomcatServer(sim::Simulation& simu, os::Node& node, int id,
                           DbRouter& db, TomcatConfig config,
                           sim::SimTime trace_window)
    : sim_(simu),
      node_(node),
      id_(id),
      db_(db),
      config_(config),
      queue_trace_(trace_window),
      completions_(trace_window) {
  if (config_.overload.admission) {
    limiter_ = std::make_unique<control::AdmissionLimiter>(
        simu, config_.overload.admission_cfg,
        static_cast<double>(config_.max_threads), config_.overload.brownout);
    limiter_->start();
  }
}

bool TomcatServer::submit(const proto::RequestPtr& req, RespondFn respond) {
  if (crashed_) {
    ++refused_while_crashed_;
    return false;
  }
  if (config_.overload.deadlines && expired(req)) {
    // Expired on arrival (the endpoint wait or the Apache→Tomcat link ate
    // the budget): refuse instead of queueing stale work. The Apache sees
    // the shed marker and fails the request without escalating mod_jk's
    // error state.
    req->shed = proto::ShedReason::kDeadlineExpired;
    ++ostats_.deadline_sheds;
    ostats_.wasted_work_avoided_ms +=
        req->tomcat_demand.to_millis() +
        static_cast<double>(req->db_queries) * req->mysql_demand.to_millis();
    NTIER_TRACE_EVENT(trace_events_, sim_.now(),
                      obs::EventKind::kDeadlineExpired, obs::Tier::kTomcat,
                      id_, -1, req->id,
                      (sim_.now() - req->deadline).to_millis(),
                      static_cast<std::int32_t>(req->shed));
    return false;
  }
  if (limiter_ && !limiter_->try_admit(req->priority)) {
    // Retriable 503: the limiter clamped down on observed pickup delay.
    req->shed = limiter_->last_rejection();
    if (req->shed == proto::ShedReason::kBrownout)
      ++ostats_.brownout_sheds;
    else
      ++ostats_.admission_sheds;
    ostats_.wasted_work_avoided_ms +=
        req->tomcat_demand.to_millis() +
        static_cast<double>(req->db_queries) * req->mysql_demand.to_millis();
    NTIER_TRACE_EVENT(trace_events_, sim_.now(),
                      obs::EventKind::kAdmissionShed, obs::Tier::kTomcat, id_,
                      -1, req->id, limiter_->limit(),
                      static_cast<std::int32_t>(req->shed));
    return false;
  }
  if (connector_queue_.size() >= config_.connector_backlog &&
      threads_busy_ >= config_.max_threads) {
    if (limiter_) limiter_->release();
    ++connector_drops_;
    return false;
  }
  if (crashed_) ++crashed_accepts_;  // chaos invariant: must never happen
  ++resident_;
  queue_trace_.set(sim_.now(), resident_);
  NTIER_TRACE_EVENT(trace_events_, sim_.now(), obs::EventKind::kBackendQueue,
                    obs::Tier::kTomcat, id_, -1, req->id,
                    static_cast<double>(resident_));
  connector_queue_.push_back(Work{req, std::move(respond), sim_.now()});
  dispatch();
  return true;
}

void TomcatServer::set_gray_degraded(double severity) {
  severity = std::clamp(severity, 0.0, 0.99);
  // Snapshot the load values the node will keep reporting for the fault's
  // lifetime. Taken before the factor flips so re-application mid-fault
  // cannot re-freeze at an already-degraded level.
  if (!gray_degraded()) {
    gray_frozen_rif_ = static_cast<double>(resident_);
    gray_frozen_latency_ms_ = latency_ewma_ms_;
  }
  gray_demand_factor_ = 1.0 / (1.0 - severity);
}

void TomcatServer::probe(std::function<void(bool)> done) {
  if (crashed_) {
    done(false);
    return;
  }
  node_.cpu().submit(config_.probe_demand,
                     [done = std::move(done)] { done(true); });
}

void TomcatServer::probe_load(
    std::function<void(bool, double, double)> done) {
  if (crashed_) {
    done(false, 0.0, 0.0);
    return;
  }
  // Sampling resident_ when the probe job *completes* (not when it was
  // submitted) is deliberate: a stalled CPU both delays the answer and
  // reports the queue that built up meanwhile.
  node_.cpu().submit(config_.probe_demand, [this, done = std::move(done)] {
    done(true, reported_rif(), reported_latency_ms());
  });
}

void TomcatServer::dispatch() {
  while (threads_busy_ < config_.max_threads && !connector_queue_.empty()) {
    Work w = std::move(connector_queue_.front());
    connector_queue_.pop_front();
    // Worker-queue shed: work whose deadline passed while it sat in the
    // connector queue is answered (failed) without occupying a servlet
    // thread or touching the DB tier.
    if (config_.overload.deadlines && expired(w.req)) {
      shed_queued(std::move(w), proto::ShedReason::kDeadlineExpired);
      continue;
    }
    if (limiter_) limiter_->observe_delay(sim_.now() - w.arrived);
    ++threads_busy_;
    NTIER_TRACE_EVENT(trace_events_, sim_.now(), obs::EventKind::kServiceStart,
                      obs::Tier::kTomcat, id_, threads_busy_ - 1, w.req->id,
                      static_cast<double>(resident_));
    run(std::move(w));
  }
}

void TomcatServer::run(Work w) {
  // Servlet CPU first, then the DB round trips, mirroring the
  // request-handling path (rendering happens around the queries; collapsing
  // the CPU into one job keeps the same total demand).
  auto req = w.req;
  sim::SimTime demand = req->tomcat_demand;
  if (gray_degraded()) {
    demand = sim::SimTime::from_seconds(demand.to_seconds() *
                                        gray_demand_factor_);
    ++gray_inflated_;
  }
  node_.cpu().submit(demand, [this, w = std::move(w)]() mutable {
    // Copy the handle out before the capture moves `w` (argument evaluation
    // order is unspecified).
    auto r = w.req;
    const int queries = r->db_queries;
    db_round_trips(r, queries, [this, w = std::move(w)] { complete(w); });
  });
}

void TomcatServer::db_round_trips(const proto::RequestPtr& req, int remaining,
                                  std::function<void()> done) {
  if (remaining <= 0) {
    done();
    return;
  }
  if (req->shed != proto::ShedReason::kNone) {
    // The DbRouter shed the request mid-sequence (expired deadline): skip
    // the remaining queries and let the failure ride the normal response.
    ostats_.wasted_work_avoided_ms +=
        static_cast<double>(remaining) * req->mysql_demand.to_millis();
    done();
    return;
  }
  // Each round trip checks a connection out of the router's pool and back
  // in, as the RUBBoS servlets do per query. The *last* db_writes trips are
  // writes (reads gather, the write commits), which the KV tier routes
  // through the write quorum.
  const bool is_write = remaining <= static_cast<int>(req->db_writes);
  db_.query(req, req->mysql_demand, is_write,
            [this, req, remaining, done = std::move(done)]() mutable {
              db_round_trips(req, remaining - 1, std::move(done));
            });
}

void TomcatServer::complete(const Work& w) {
  // Access/servlet/localhost log records become dirty pages (§III-B). If
  // the node's dirty throttle is configured and tripped, the servlet thread
  // parks inside the log write (balance_dirty_pages) and the response waits
  // for writeback — thread-pool starvation as a second stall mode.
  node_.page_cache().write_dirty_throttled(w.req->log_bytes, [this, w] {
    --threads_busy_;
    --resident_;
    ++served_;
    if (limiter_) limiter_->release();
    // EWMA over submit→response latency; alpha 0.2 tracks a millibottleneck
    // within a handful of completions without jittering on single requests.
    const double lat_ms = (sim_.now() - w.arrived).to_seconds() * 1e3;
    constexpr double kAlpha = 0.2;
    latency_ewma_ms_ = latency_ewma_ms_ == 0.0
                           ? lat_ms
                           : (1 - kAlpha) * latency_ewma_ms_ + kAlpha * lat_ms;
    NTIER_TRACE_EVENT(trace_events_, sim_.now(), obs::EventKind::kServiceEnd,
                      obs::Tier::kTomcat, id_, -1, w.req->id,
                      static_cast<double>(resident_));
    queue_trace_.set(sim_.now(), resident_);
    completions_.record(sim_.now(), 1.0);
    w.respond(w.req);
    dispatch();
  });
}

void TomcatServer::shed_queued(Work w, proto::ShedReason reason) {
  --resident_;
  if (limiter_) limiter_->release();
  w.req->shed = reason;
  ++ostats_.deadline_sheds;
  ostats_.wasted_work_avoided_ms +=
      w.req->tomcat_demand.to_millis() +
      static_cast<double>(w.req->db_queries) * w.req->mysql_demand.to_millis();
  NTIER_TRACE_EVENT(trace_events_, sim_.now(), obs::EventKind::kDeadlineExpired,
                    obs::Tier::kTomcat, id_, -1, w.req->id,
                    (sim_.now() - w.req->deadline).to_millis(),
                    static_cast<std::int32_t>(reason));
  queue_trace_.set(sim_.now(), resident_);
  w.respond(w.req);
}

}  // namespace ntier::server
