#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "control/admission.h"
#include "control/codel.h"
#include "control/overload.h"
#include "lb/health.h"
#include "lb/load_balancer.h"
#include "lb/retry.h"
#include "metrics/time_series.h"
#include "net/bounded_queue.h"
#include "net/link.h"
#include "obs/trace.h"
#include "os/node.h"
#include "probe/probe_pool.h"
#include "proto/frontend.h"
#include "server/tomcat_server.h"
#include "sim/simulation.h"

namespace ntier::server {

struct ApacheConfig {
  /// Worker-MPM request-handling threads (Table III: MaxClients 200).
  int max_clients = 200;
  /// Effective listen backlog. Apache asks for ListenBacklog=511, but the
  /// kernel clamps it to net.core.somaxconn, which defaults to 128 on the
  /// paper's Fedora 15 / kernel 3.3 testbed. Overflow = silent SYN drop —
  /// the birthplace of the VLRT requests.
  std::size_t listen_backlog = 128;
  sim::SimTime link_latency = sim::SimTime::micros(100);
  /// Access-log bytes per request (dirties the Apache node's page cache;
  /// only matters in scenarios where Apache-side pdflush is enabled).
  std::uint32_t log_bytes = 200;

  /// Active health probing of the Tomcats (off by default — the stock
  /// mod_jk setup the paper studies has none).
  lb::ProberConfig prober;
  /// Front-end retry layer: budgeted, capped-backoff retries of balancer
  /// 503s and backend refusals (off by default).
  lb::RetryConfig retry;
  /// Prequal-style load probing of the Tomcats (src/probe). Only the
  /// probe-aware policies (kPowerOfD, kPrequal) consume the pool; for every
  /// other policy an enabled pool just generates ignored probe traffic.
  probe::ProbeConfig probe;
  /// End-to-end overload control (src/control): deadline shedding at accept
  /// and endpoint-wait, an AIMD admission limiter at the front door, and
  /// CoDel sojourn drops on the listen backlog (all off by default).
  control::OverloadConfig overload;
};

/// Web tier front-end. Accepts client connections into a bounded backlog,
/// handles each with one of `max_clients` worker threads, and forwards to
/// the Tomcat tier through its own mod_jk balancer instance — including,
/// when the stock blocking `get_endpoint` is configured, parking the worker
/// thread for up to 300 ms inside the balancer. Worker exhaustion therefore
/// propagates backend millibottlenecks into front-end SYN drops exactly as
/// the paper describes (queue amplification + push-back wave).
class ApacheServer final : public proto::FrontEnd {
 public:
  ApacheServer(sim::Simulation& simu, os::Node& node, int id,
               std::vector<TomcatServer*> tomcats,
               std::unique_ptr<lb::LbPolicy> policy,
               std::unique_ptr<lb::EndpointAcquirer> acquirer,
               lb::BalancerConfig lb_config, ApacheConfig config = {},
               sim::SimTime trace_window = sim::SimTime::millis(50));

  /// proto::FrontEnd — false when the listen backlog is full (SYN dropped).
  bool try_submit(const proto::RequestPtr& req, RespondFn respond) override;

  int id() const { return id_; }
  os::Node& node() { return node_; }
  lb::LoadBalancer& balancer() { return *balancer_; }
  const lb::LoadBalancer& balancer() const { return *balancer_; }

  /// Requests resident in this Apache (backlog + all worker threads,
  /// including those blocked inside get_endpoint).
  int resident() const { return static_cast<int>(backlog_.size()) + workers_busy_; }
  const metrics::GaugeSeries& queue_trace() const { return queue_trace_; }
  void finish_traces() { queue_trace_.finish(sim_.now()); }

  std::uint64_t served() const { return served_; }
  std::uint64_t syn_drops() const {
    return backlog_.drops(net::DropReason::kOverflow);
  }
  int workers_busy() const { return workers_busy_; }

  /// Shed/expired accounting for this Apache (see control::OverloadStats).
  const control::OverloadStats& overload_stats() const { return ostats_; }
  /// Null unless ApacheConfig::overload.admission.
  const control::AdmissionLimiter* limiter() const { return limiter_.get(); }
  /// Backlog drops by reason (overflow vs the overload layer's sheds).
  std::uint64_t backlog_drops(net::DropReason r) const {
    return backlog_.drops(r);
  }

  /// Null unless ApacheConfig::prober.enabled.
  const lb::HealthProber* prober() const { return prober_.get(); }
  /// Null unless ApacheConfig::probe.enabled.
  const probe::ProbePool* probe_pool() const { return probe_pool_.get(); }
  /// Null unless ApacheConfig::retry.enabled.
  const lb::RetryBudget* retry_budget() const { return retry_budget_.get(); }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t retry_successes() const { return retry_successes_; }
  /// In-flight attempts given up on after retry.attempt_timeout (the backend
  /// kept working; the front end stopped waiting). Wasted-work numerator.
  std::uint64_t attempts_abandoned() const { return attempts_abandoned_; }
  /// Requests that entered a worker on their first attempt (denominator of
  /// the retry-to-first-attempt ratio the recovery orchestrator keys on).
  std::uint64_t first_attempts() const { return first_attempts_; }

  // -- recovery orchestration hooks (src/recovery) ---------------------------
  /// Retry suppression: while on, eligible retries are dropped instead of
  /// re-dispatched (breaking the retry-amplification sustaining loop).
  void set_retry_suppressed(bool on) { retry_suppressed_ = on; }
  bool retry_suppressed() const { return retry_suppressed_; }
  std::uint64_t retries_suppressed() const { return retries_suppressed_; }
  /// Hard shedding: while on, new arrivals are answered with a fast
  /// recovery 503 before touching the backlog or a worker, so standing
  /// queues drain below the orchestrator's watermark.
  void set_recovery_shed(bool on) { recovery_shed_ = on; }
  bool recovery_shed() const { return recovery_shed_; }

  /// The Apache↔Tomcat link, exposed for fault injection.
  net::Link& tomcat_link() { return tomcat_link_; }

  /// Attach the cross-tier event collector (null disables). Emits accept
  /// enqueue/drop and worker-pickup events with tier=kApache, node=id, and
  /// forwards the collector to the balancer.
  void set_trace(obs::TraceCollector* trace) {
    trace_events_ = trace;
    balancer_->set_trace(trace, id_);
    if (probe_pool_) probe_pool_->set_trace(trace, id_);
    if (limiter_) limiter_->set_trace(trace, obs::Tier::kApache, id_);
  }

 private:
  struct Work {
    proto::RequestPtr req;
    RespondFn respond;
  };
  void start_worker(Work w);
  void handle(Work w);
  void dispatch(Work w, int attempt);
  void maybe_retry(Work w, int attempt);
  void finish(const Work& w, bool ok);
  /// Pop the backlog until a request survives the overload checks (deadline,
  /// CoDel sojourn) and start a worker on it.
  void admit_from_backlog();
  /// True when the request carries a deadline that has already passed.
  bool expired(const proto::RequestPtr& req) const {
    return req->deadline != sim::SimTime::zero() && sim_.now() > req->deadline;
  }
  /// Shed before any worker was involved (front door / backlog): a failed
  /// response without touching worker accounting.
  void shed_unqueued(const proto::RequestPtr& req, const RespondFn& respond,
                     proto::ShedReason reason, bool release_limiter);
  /// Shed while a worker holds the request (endpoint wait): goes through
  /// finish() so worker/limiter/backlog accounting stays intact.
  void shed_worker(Work w, proto::ShedReason reason);
  void count_shed(const proto::RequestPtr& req, proto::ShedReason reason,
                  bool include_apache_demand);

  sim::Simulation& sim_;
  os::Node& node_;
  int id_;
  std::vector<TomcatServer*> tomcats_;
  ApacheConfig config_;
  net::Link tomcat_link_;
  std::unique_ptr<lb::LoadBalancer> balancer_;
  std::unique_ptr<lb::HealthProber> prober_;
  std::unique_ptr<lb::RetryBudget> retry_budget_;
  std::unique_ptr<probe::ProbePool> probe_pool_;

  net::BoundedQueue<Work> backlog_;
  std::unique_ptr<control::AdmissionLimiter> limiter_;
  control::CoDelController codel_;
  control::OverloadStats ostats_;
  int workers_busy_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t retry_successes_ = 0;
  std::uint64_t attempts_abandoned_ = 0;
  std::uint64_t first_attempts_ = 0;
  std::uint64_t retries_suppressed_ = 0;
  bool retry_suppressed_ = false;
  bool recovery_shed_ = false;
  obs::TraceCollector* trace_events_ = nullptr;
  metrics::GaugeSeries queue_trace_;
};

}  // namespace ntier::server
