#include "server/db_router.h"

#include <stdexcept>

namespace ntier::server {

const char* to_string(DbTier t) {
  switch (t) {
    case DbTier::kMysql: return "mysql";
    case DbTier::kKv: return "kv";
  }
  return "?";
}

bool db_tier_from_string(const std::string& s, DbTier* out) {
  if (s == "mysql") { *out = DbTier::kMysql; return true; }
  if (s == "kv") { *out = DbTier::kKv; return true; }
  return false;
}

DbRouter::DbRouter(sim::Simulation& simu, kv::KvTier* tier,
                   DbRouterConfig config)
    : sim_(simu), kv_(tier), config_(config), link_(config.link_latency) {
  if (!kv_) throw std::invalid_argument("DbRouter: null kv tier");
}

DbRouter::DbRouter(sim::Simulation& simu, cache::CacheTier* cache,
                   int cache_node, DbRouterConfig config)
    : sim_(simu),
      kv_(cache ? &cache->backing() : nullptr),
      cache_(cache),
      cache_node_(cache_node),
      config_(config),
      link_(config.link_latency) {
  if (!cache_) throw std::invalid_argument("DbRouter: null cache tier");
  if (cache_node_ < 0 || cache_node_ >= cache_->num_nodes())
    throw std::invalid_argument("DbRouter: cache node out of range");
}

DbRouter::DbRouter(sim::Simulation& simu, std::vector<MySqlServer*> replicas,
                   DbRouterConfig config)
    : sim_(simu),
      replicas_(std::move(replicas)),
      config_(config),
      link_(config.link_latency) {
  if (replicas_.empty()) throw std::invalid_argument("DbRouter: no replicas");
  lb::BalancerConfig bc = config_.balancer;
  bc.endpoint_pool_size = config_.pool_per_replica;
  balancer_ = std::make_unique<lb::LoadBalancer>(
      simu, static_cast<int>(replicas_.size()), lb::make_policy(config_.policy),
      lb::make_acquirer(config_.mechanism, bc.blocking), bc);
  if (config_.probe.enabled) {
    probe_pool_ = std::make_unique<probe::ProbePool>(
        simu, static_cast<int>(replicas_.size()),
        [this](int w, probe::ProbePool::ReplyFn done) {
          link_.deliver(sim_, [this, w, done = std::move(done)]() mutable {
            replicas_[static_cast<std::size_t>(w)]->probe_load(
                [this, done = std::move(done)](bool ok, double rif,
                                               double lat_ms) mutable {
                  link_.deliver(sim_, [done = std::move(done), ok, rif,
                                       lat_ms] { done(ok, rif, lat_ms); });
                });
          });
        },
        config_.probe);
    probe_pool_->set_local_load([this](int w) {
      return static_cast<double>(balancer_->record(w).outstanding);
    });
    balancer_->attach_probes(probe_pool_.get());
  }
}

void DbRouter::query(const proto::RequestPtr& req, sim::SimTime demand,
                     bool is_write, std::function<void()> done) {
  if (config_.overload.deadlines && req->deadline != sim::SimTime::zero() &&
      sim_.now() > req->deadline) {
    // The request can no longer finish in time; executing this query (and
    // holding a pooled connection through a possibly-stalled replica) would
    // be pure wasted work. Surface a fast SQL error instead.
    req->shed = proto::ShedReason::kDeadlineExpired;
    ++ostats_.deadline_sheds;
    ostats_.wasted_work_avoided_ms += demand.to_millis();
    done();
    return;
  }
  if (kv_) {
    // Key-routed quorum operation (cache-fronted when a cache tier was
    // attached). A failed quorum surfaces exactly like a SQL error: counted
    // here, and the servlet's round trip completes so request conservation
    // is untouched.
    ++routed_;
    const auto finish = [this, done = std::move(done)](bool ok) mutable {
      if (!ok) ++errors_;
      done();
    };
    if (cache_) {
      if (is_write)
        cache_->write(cache_node_, req, demand, finish);
      else
        cache_->read(cache_node_, req, demand, finish);
    } else if (is_write) {
      kv_->write(req, demand, finish);
    } else {
      kv_->read(req, demand, finish);
    }
    return;
  }
  balancer_->assign(req, [this, req, demand,
                          done = std::move(done)](int idx) mutable {
    if (idx < 0) {
      ++errors_;  // no replica reachable: the servlet sees a SQL error
      done();
      return;
    }
    ++routed_;
    link_.deliver(sim_, [this, req, demand, idx, done = std::move(done)]() mutable {
      replicas_[static_cast<std::size_t>(idx)]->execute(
          demand, [this, req, idx, done = std::move(done)]() mutable {
            link_.deliver(sim_, [this, req, idx, done = std::move(done)] {
              balancer_->on_response(idx, req);
              if (probe_pool_) {
                auto* m = replicas_[static_cast<std::size_t>(idx)];
                probe_pool_->observe(idx, m->resident(),
                                     m->latency_ewma_ms());
              }
              done();
            });
          });
    });
  });
}

}  // namespace ntier::server
