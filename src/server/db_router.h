#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/tier.h"
#include "control/overload.h"
#include "kv/tier.h"
#include "lb/load_balancer.h"
#include "net/link.h"
#include "probe/probe_pool.h"
#include "proto/request.h"
#include "server/mysql_server.h"
#include "sim/simulation.h"

namespace ntier::server {

/// Which data tier sits behind the servlet's DB access path.
enum class DbTier : std::uint8_t {
  kMysql,  // single-primary MySQL replicas behind the replica balancer
  kKv,     // replicated sharded KV tier, routed by request key
};

const char* to_string(DbTier t);
/// "mysql" / "kv" → DbTier; false on anything else.
bool db_tier_from_string(const std::string& s, DbTier* out);

/// Configuration of the servlet-side database access path.
struct DbRouterConfig {
  /// Connections per (Tomcat, replica) pair. The paper's single-MySQL
  /// setup has 48 connections per application server (Table III).
  std::size_t pool_per_replica = 48;
  /// Replica-selection policy. With one replica it is irrelevant; with
  /// several, this is where the paper's §VIII advice ("other load balancers
  /// in N-tier systems can take advantage of our remedies") applies.
  lb::PolicyKind policy = lb::PolicyKind::kCurrentLoad;
  /// Pool mechanism. The classic servlet pool blocks on a condition
  /// variable (kQueueing); kNonBlocking turns the router millibottleneck-
  /// aware, skipping a stalled replica instead of queueing behind it.
  lb::MechanismKind mechanism = lb::MechanismKind::kQueueing;
  lb::BalancerConfig balancer;  // busy_recovery etc. for kNonBlocking
  sim::SimTime link_latency = sim::SimTime::micros(100);
  /// Prequal-style load probing of the replicas, consumed only when
  /// `policy` is probe-aware (kPowerOfD / kPrequal).
  probe::ProbeConfig probe;
  /// End-to-end overload control: with `deadlines` on, queries whose
  /// request deadline has already passed return a SQL error immediately
  /// instead of occupying a pooled connection.
  control::OverloadConfig overload;
};

/// The Tomcat-to-MySQL connection layer: a connection pool per replica and
/// a replica-selection balancer reusing the exact policy/mechanism machinery
/// studied at the web tier. With `kQueueing` + a cumulative policy it
/// reproduces the stock behaviour (requests queue behind a stalled
/// replica); with `current_load` + `kNonBlocking` it applies both remedies
/// to the database tier.
class DbRouter {
 public:
  DbRouter(sim::Simulation& simu, std::vector<MySqlServer*> replicas,
           DbRouterConfig config = {});
  /// KV-backed router: queries route by request key into the shared quorum
  /// tier instead of through the replica balancer. The balancer, probe pool
  /// and per-replica pools do not exist in this mode (has_balancer() is
  /// false); overload deadline shedding still applies at the router.
  DbRouter(sim::Simulation& simu, kv::KvTier* tier, DbRouterConfig config = {});
  /// Cache-fronted KV router: reads go through the look-aside cache tier at
  /// `cache_node` (this Tomcat's pinned cache server) and fall through to
  /// the KV quorum on a miss; writes forward to the quorum and broadcast
  /// invalidations on commit. Everything else matches kKv mode.
  DbRouter(sim::Simulation& simu, cache::CacheTier* cache, int cache_node,
           DbRouterConfig config = {});

  DbRouter(const DbRouter&) = delete;
  DbRouter& operator=(const DbRouter&) = delete;

  /// One DB round trip: select a replica, hold a pooled connection for the
  /// duration, run `demand` on the replica, return. `done` always fires;
  /// unroutable queries (every replica sidelined under kNonBlocking) count
  /// as errors and complete immediately — the servlet surfaces a SQL error
  /// rather than hanging. `is_write` routes the trip through the KV write
  /// quorum (ignored by the MySQL tier, which models every trip the same).
  void query(const proto::RequestPtr& req, sim::SimTime demand, bool is_write,
             std::function<void()> done);
  /// Read round trip (kept for call sites predating the KV tier).
  void query(const proto::RequestPtr& req, sim::SimTime demand,
             std::function<void()> done) {
    query(req, demand, /*is_write=*/false, std::move(done));
  }

  DbTier tier() const { return kv_ ? DbTier::kKv : DbTier::kMysql; }
  bool has_balancer() const { return balancer_ != nullptr; }
  kv::KvTier* kv_tier() { return kv_; }
  /// Null unless constructed in cache-fronted mode.
  cache::CacheTier* cache_tier() { return cache_; }
  int cache_node() const { return cache_node_; }
  int num_replicas() const {
    return kv_ ? kv_->num_replicas() : balancer_->num_workers();
  }
  MySqlServer& replica(int i) { return *replicas_[static_cast<std::size_t>(i)]; }
  lb::LoadBalancer& balancer() { return *balancer_; }
  /// Null unless DbRouterConfig::probe.enabled.
  const probe::ProbePool* probe_pool() const { return probe_pool_.get(); }
  std::uint64_t errors() const { return errors_; }
  std::uint64_t queries_routed() const { return routed_; }
  /// Expired-query shed accounting (see control::OverloadStats).
  const control::OverloadStats& overload_stats() const { return ostats_; }

 private:
  sim::Simulation& sim_;
  std::vector<MySqlServer*> replicas_;
  kv::KvTier* kv_ = nullptr;  // non-null iff constructed in kKv mode
  cache::CacheTier* cache_ = nullptr;  // non-null iff cache-fronted
  int cache_node_ = 0;  // this router's pinned cache server
  DbRouterConfig config_;
  net::Link link_;
  std::unique_ptr<lb::LoadBalancer> balancer_;
  std::unique_ptr<probe::ProbePool> probe_pool_;
  std::uint64_t errors_ = 0;
  std::uint64_t routed_ = 0;
  control::OverloadStats ostats_;
};

}  // namespace ntier::server
