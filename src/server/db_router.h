#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "control/overload.h"
#include "lb/load_balancer.h"
#include "net/link.h"
#include "probe/probe_pool.h"
#include "proto/request.h"
#include "server/mysql_server.h"
#include "sim/simulation.h"

namespace ntier::server {

/// Configuration of the servlet-side database access path.
struct DbRouterConfig {
  /// Connections per (Tomcat, replica) pair. The paper's single-MySQL
  /// setup has 48 connections per application server (Table III).
  std::size_t pool_per_replica = 48;
  /// Replica-selection policy. With one replica it is irrelevant; with
  /// several, this is where the paper's §VIII advice ("other load balancers
  /// in N-tier systems can take advantage of our remedies") applies.
  lb::PolicyKind policy = lb::PolicyKind::kCurrentLoad;
  /// Pool mechanism. The classic servlet pool blocks on a condition
  /// variable (kQueueing); kNonBlocking turns the router millibottleneck-
  /// aware, skipping a stalled replica instead of queueing behind it.
  lb::MechanismKind mechanism = lb::MechanismKind::kQueueing;
  lb::BalancerConfig balancer;  // busy_recovery etc. for kNonBlocking
  sim::SimTime link_latency = sim::SimTime::micros(100);
  /// Prequal-style load probing of the replicas, consumed only when
  /// `policy` is probe-aware (kPowerOfD / kPrequal).
  probe::ProbeConfig probe;
  /// End-to-end overload control: with `deadlines` on, queries whose
  /// request deadline has already passed return a SQL error immediately
  /// instead of occupying a pooled connection.
  control::OverloadConfig overload;
};

/// The Tomcat-to-MySQL connection layer: a connection pool per replica and
/// a replica-selection balancer reusing the exact policy/mechanism machinery
/// studied at the web tier. With `kQueueing` + a cumulative policy it
/// reproduces the stock behaviour (requests queue behind a stalled
/// replica); with `current_load` + `kNonBlocking` it applies both remedies
/// to the database tier.
class DbRouter {
 public:
  DbRouter(sim::Simulation& simu, std::vector<MySqlServer*> replicas,
           DbRouterConfig config = {});

  DbRouter(const DbRouter&) = delete;
  DbRouter& operator=(const DbRouter&) = delete;

  /// One DB round trip: select a replica, hold a pooled connection for the
  /// duration, run `demand` on the replica, return. `done` always fires;
  /// unroutable queries (every replica sidelined under kNonBlocking) count
  /// as errors and complete immediately — the servlet surfaces a SQL error
  /// rather than hanging.
  void query(const proto::RequestPtr& req, sim::SimTime demand,
             std::function<void()> done);

  int num_replicas() const { return balancer_->num_workers(); }
  MySqlServer& replica(int i) { return *replicas_[static_cast<std::size_t>(i)]; }
  lb::LoadBalancer& balancer() { return *balancer_; }
  /// Null unless DbRouterConfig::probe.enabled.
  const probe::ProbePool* probe_pool() const { return probe_pool_.get(); }
  std::uint64_t errors() const { return errors_; }
  std::uint64_t queries_routed() const { return routed_; }
  /// Expired-query shed accounting (see control::OverloadStats).
  const control::OverloadStats& overload_stats() const { return ostats_; }

 private:
  sim::Simulation& sim_;
  std::vector<MySqlServer*> replicas_;
  DbRouterConfig config_;
  net::Link link_;
  std::unique_ptr<lb::LoadBalancer> balancer_;
  std::unique_ptr<probe::ProbePool> probe_pool_;
  std::uint64_t errors_ = 0;
  std::uint64_t routed_ = 0;
  control::OverloadStats ostats_;
};

}  // namespace ntier::server
