#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "control/admission.h"
#include "control/overload.h"
#include "metrics/time_series.h"
#include "obs/trace.h"
#include "os/node.h"
#include "proto/request.h"
#include "server/db_router.h"
#include "sim/simulation.h"

namespace ntier::server {

struct TomcatConfig {
  /// Servlet thread pool (paper Table III: maxThreads 210).
  int max_threads = 210;
  /// AJP connector backlog. Not the drop site in the paper (the Apache-side
  /// endpoint pool caps in-flight below this), but bounded for realism.
  std::size_t connector_backlog = 1024;
  /// CPU demand of answering one health probe (lb/health.h) — tiny, but on
  /// the real CPU run queue, so a stalled CPU delays the answer past the
  /// prober's timeout.
  sim::SimTime probe_demand = sim::SimTime::micros(20);
  /// End-to-end overload control: per-Tomcat AIMD admission limiter
  /// (rejecting with a retriable 503 at submit) and expired-work shedding
  /// at the worker-queue pickup (both off by default).
  control::OverloadConfig overload;
};

/// Application tier. Each request: servlet CPU work, `db_queries` sequential
/// MySQL round trips through the DbRouter (bounded connection pools, one per
/// replica), then a log write that dirties the node's page cache — the fuel
/// for pdflush's millibottlenecks (§III-B: the dirty pages "mainly are
/// Tomcat logs").
class TomcatServer {
 public:
  using RespondFn = std::function<void(const proto::RequestPtr&)>;

  TomcatServer(sim::Simulation& simu, os::Node& node, int id, DbRouter& db,
               TomcatConfig config = {},
               sim::SimTime trace_window = sim::SimTime::millis(50));

  TomcatServer(const TomcatServer&) = delete;
  TomcatServer& operator=(const TomcatServer&) = delete;

  /// Deliver a request over an (already-acquired) AJP connection. `respond`
  /// fires at this server once processing finishes; the caller adds the
  /// return-link latency. Returns false on connector-backlog overflow or
  /// while crashed.
  bool submit(const proto::RequestPtr& req, RespondFn respond);

  /// Answer a health probe: refused instantly while crashed, otherwise a
  /// tiny CPU job whose completion time reflects the run-queue depth (a
  /// capacity-stalled CPU answers late — which is the point).
  void probe(std::function<void(bool)> done);

  /// Answer a load probe (probe::ProbePool): same CPU path as probe(), but
  /// the reply reports requests-in-flight at answer time plus the recent
  /// service-latency EWMA — the state Prequal-style policies rank on.
  void probe_load(std::function<void(bool ok, double rif, double latency_ms)>
                      done);

  /// Recent whole-request service latency (submit → response), EWMA in ms.
  double latency_ewma_ms() const { return latency_ewma_ms_; }

  /// Gray fault: inflate real request service time by 1/(1-severity) while
  /// the probe path stays fast AND the load values reported to probes and
  /// piggybacked replies are frozen at their pre-fault snapshot — the node
  /// looks healthy to HealthProber, the circuit breaker and prequal alike.
  void set_gray_degraded(double severity);
  void clear_gray_degraded() { gray_demand_factor_ = 1.0; }
  bool gray_degraded() const { return gray_demand_factor_ > 1.0; }
  /// Requests whose service ran at inflated demand (chaos accounting).
  std::uint64_t gray_inflated() const { return gray_inflated_; }
  /// The requests-in-flight value this node *reports* (frozen under a gray
  /// fault; truthful otherwise). Probe and piggyback paths must use these,
  /// never resident()/latency_ewma_ms() directly.
  double reported_rif() const {
    return gray_degraded() ? gray_frozen_rif_ : static_cast<double>(resident_);
  }
  double reported_latency_ms() const {
    return gray_degraded() ? gray_frozen_latency_ms_ : latency_ewma_ms_;
  }

  /// Fault injection: a crashed Tomcat refuses new submits (the Apache sees
  /// a connect failure on an endpoint it already holds) while in-flight work
  /// drains normally — preserving request conservation.
  void crash() { crashed_ = true; }
  void restart() { crashed_ = false; }
  bool crashed() const { return crashed_; }
  /// Submits refused because of a crash (drives the balancer's Error path).
  std::uint64_t refused_while_crashed() const { return refused_while_crashed_; }
  /// Chaos invariant counter: accepted submits while crashed — must stay 0.
  std::uint64_t crashed_accepts() const { return crashed_accepts_; }

  int id() const { return id_; }
  os::Node& node() { return node_; }
  DbRouter& db() { return db_; }

  /// Requests physically resident in this Tomcat (connector queue + threads).
  int resident() const { return resident_; }
  const metrics::GaugeSeries& queue_trace() const { return queue_trace_; }
  /// Per-window count of completed requests — the fine-grained throughput
  /// signal the dip detector consumes.
  const metrics::TimeSeries& completion_trace() const { return completions_; }
  void finish_traces() { queue_trace_.finish(sim_.now()); }

  std::uint64_t served() const { return served_; }
  std::uint64_t connector_drops() const { return connector_drops_; }
  int threads_busy() const { return threads_busy_; }

  /// Shed/expired accounting for this Tomcat (see control::OverloadStats).
  const control::OverloadStats& overload_stats() const { return ostats_; }
  /// Null unless TomcatConfig::overload.admission.
  const control::AdmissionLimiter* limiter() const { return limiter_.get(); }

  /// Attach the cross-tier event collector (null disables). Emits backend
  /// queue / service start / service end events with tier=kTomcat, node=id.
  void set_trace(obs::TraceCollector* trace) {
    trace_events_ = trace;
    if (limiter_) limiter_->set_trace(trace, obs::Tier::kTomcat, id_);
  }

 private:
  struct Work {
    proto::RequestPtr req;
    RespondFn respond;
    sim::SimTime arrived;
  };
  void dispatch();
  void run(Work w);
  void db_round_trips(const proto::RequestPtr& req, int remaining,
                      std::function<void()> done);
  void complete(const Work& w);
  bool expired(const proto::RequestPtr& req) const {
    return req->deadline != sim::SimTime::zero() && sim_.now() > req->deadline;
  }
  /// Shed a queued request at worker pickup: a failed response without
  /// occupying a servlet thread or touching the DB tier.
  void shed_queued(Work w, proto::ShedReason reason);

  sim::Simulation& sim_;
  os::Node& node_;
  int id_;
  DbRouter& db_;
  TomcatConfig config_;

  std::deque<Work> connector_queue_;
  std::unique_ptr<control::AdmissionLimiter> limiter_;
  control::OverloadStats ostats_;
  int threads_busy_ = 0;
  int resident_ = 0;
  bool crashed_ = false;
  std::uint64_t served_ = 0;
  std::uint64_t connector_drops_ = 0;
  std::uint64_t refused_while_crashed_ = 0;
  std::uint64_t crashed_accepts_ = 0;
  double latency_ewma_ms_ = 0.0;
  double gray_demand_factor_ = 1.0;   // > 1 while a gray fault is applied
  double gray_frozen_rif_ = 0.0;      // reported load, frozen at fault onset
  double gray_frozen_latency_ms_ = 0.0;
  std::uint64_t gray_inflated_ = 0;
  obs::TraceCollector* trace_events_ = nullptr;
  metrics::GaugeSeries queue_trace_;
  metrics::TimeSeries completions_;
};

}  // namespace ntier::server
