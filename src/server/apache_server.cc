#include "server/apache_server.h"

#include <cassert>

namespace ntier::server {

ApacheServer::ApacheServer(sim::Simulation& simu, os::Node& node, int id,
                           std::vector<TomcatServer*> tomcats,
                           std::unique_ptr<lb::LbPolicy> policy,
                           std::unique_ptr<lb::EndpointAcquirer> acquirer,
                           lb::BalancerConfig lb_config, ApacheConfig config,
                           sim::SimTime trace_window)
    : sim_(simu),
      node_(node),
      id_(id),
      tomcats_(std::move(tomcats)),
      config_(config),
      tomcat_link_(config.link_latency),
      balancer_(std::make_unique<lb::LoadBalancer>(
          simu, static_cast<int>(tomcats_.size()), std::move(policy),
          std::move(acquirer), lb_config)),
      backlog_(config.listen_backlog),
      codel_(config.overload.codel_cfg),
      queue_trace_(trace_window) {
  assert(!tomcats_.empty());
  if (config_.overload.admission) {
    limiter_ = std::make_unique<control::AdmissionLimiter>(
        simu, config_.overload.admission_cfg,
        static_cast<double>(config_.max_clients + config_.listen_backlog),
        config_.overload.brownout);
    limiter_->start();
  }
  if (config_.retry.enabled)
    retry_budget_ = std::make_unique<lb::RetryBudget>(
        config_.retry.budget_ratio, config_.retry.budget_burst);
  if (config_.prober.enabled) {
    // One probe = link round trip + a tiny CPU job at the Tomcat, so it
    // experiences the same stalls as a request does.
    prober_ = std::make_unique<lb::HealthProber>(
        simu, *balancer_,
        [this](int w, std::function<void(bool)> done) {
          tomcat_link_.deliver(sim_, [this, w, done = std::move(done)]() mutable {
            tomcats_[static_cast<std::size_t>(w)]->probe(
                [this, done = std::move(done)](bool ok) mutable {
                  tomcat_link_.deliver(sim_,
                                       [done = std::move(done), ok] { done(ok); });
                });
          });
        },
        config_.prober);
  }
  if (config_.probe.enabled) {
    // A load probe travels the same Apache↔Tomcat link as a request and runs
    // a tiny CPU job at the target, so millibottlenecks delay the answer past
    // the pool's timeout instead of slipping through unnoticed.
    probe_pool_ = std::make_unique<probe::ProbePool>(
        simu, static_cast<int>(tomcats_.size()),
        [this](int w, probe::ProbePool::ReplyFn done) {
          tomcat_link_.deliver(sim_, [this, w, done = std::move(done)]() mutable {
            tomcats_[static_cast<std::size_t>(w)]->probe_load(
                [this, done = std::move(done)](bool ok, double rif,
                                               double lat_ms) mutable {
                  tomcat_link_.deliver(sim_, [done = std::move(done), ok, rif,
                                              lat_ms] { done(ok, rif, lat_ms); });
                });
          });
        },
        config_.probe);
    // Snapshot this balancer's own in-flight count when a reply is pooled so
    // policies can drift-correct the global RIF between probe ticks.
    probe_pool_->set_local_load([this](int w) {
      return static_cast<double>(balancer_->record(w).outstanding);
    });
    balancer_->attach_probes(probe_pool_.get());
  }
}

bool ApacheServer::try_submit(const proto::RequestPtr& req, RespondFn respond) {
  req->apache_id = static_cast<std::int16_t>(id_);
  // Recovery hard shedding: a fast 503 at the door, before the backlog or a
  // worker is touched, so the standing queues the metastable loop built up
  // can drain. Conservation holds — the client gets a (failed) response.
  if (recovery_shed_) {
    shed_unqueued(req, respond, proto::ShedReason::kRecovery,
                  /*release_limiter=*/false);
    return true;
  }
  // Overload control at the accept path: shed already-expired work, then ask
  // the admission limiter. Both answer the connection (a fast 503) instead
  // of silently dropping the SYN, so the client does not retransmit into
  // the stall.
  if (config_.overload.deadlines && expired(req)) {
    shed_unqueued(req, respond, proto::ShedReason::kDeadlineExpired,
                  /*release_limiter=*/false);
    return true;
  }
  if (limiter_ && !limiter_->try_admit(req->priority)) {
    shed_unqueued(req, respond, limiter_->last_rejection(),
                  /*release_limiter=*/false);
    return true;
  }
  if (workers_busy_ < config_.max_clients) {
    if (limiter_) limiter_->observe_delay(sim::SimTime::zero());
    queue_trace_.set(sim_.now(), resident() + 1);
    start_worker(Work{req, std::move(respond)});
    return true;
  }
  if (!backlog_.try_push(Work{req, std::move(respond)}, sim_.now())) {
    if (limiter_) limiter_->release();
    NTIER_TRACE_EVENT(trace_events_, sim_.now(), obs::EventKind::kAcceptDrop,
                      obs::Tier::kApache, id_, -1, req->id,
                      static_cast<double>(backlog_.size()));
    return false;
  }
  NTIER_TRACE_EVENT(trace_events_, sim_.now(), obs::EventKind::kAcceptEnqueue,
                    obs::Tier::kApache, id_, -1, req->id,
                    static_cast<double>(backlog_.size()));
  queue_trace_.set(sim_.now(), resident());
  return true;
}

void ApacheServer::start_worker(Work w) {
  ++workers_busy_;
  NTIER_TRACE_EVENT(trace_events_, sim_.now(), obs::EventKind::kWorkerPickup,
                    obs::Tier::kApache, id_, workers_busy_ - 1, w.req->id,
                    static_cast<double>(workers_busy_));
  w.req->accepted_at = sim_.now();
  ++first_attempts_;
  if (retry_budget_) retry_budget_->deposit();
  handle(std::move(w));
}

void ApacheServer::handle(Work w) {
  // Front-end CPU (parsing, handler setup), then the mod_jk balancer.
  auto req = w.req;
  node_.cpu().submit(req->apache_demand, [this, w = std::move(w)]() mutable {
    dispatch(std::move(w), /*attempt=*/0);
  });
}

void ApacheServer::dispatch(Work w, int attempt) {
  // Deadline check before entering the balancer: work that can no longer
  // finish in time is not worth an endpoint hunt.
  if (config_.overload.deadlines && expired(w.req)) {
    shed_worker(std::move(w), proto::ShedReason::kDeadlineExpired);
    return;
  }
  // Copy the request handle out before the capture moves `w` (argument
  // evaluation order is unspecified).
  auto r = w.req;
  balancer_->assign(r, [this, w = std::move(w), attempt](int idx) mutable {
    if (idx < 0) {
      // mod_jk 503: no backend yielded an endpoint.
      maybe_retry(std::move(w), attempt);
      return;
    }
    if (config_.overload.deadlines && expired(w.req)) {
      // The blocking get_endpoint can park the worker for hundreds of ms —
      // the deadline may have passed while we waited. Give the endpoint
      // back and shed instead of forwarding stale work to the backend.
      balancer_->on_response(idx, w.req);
      shed_worker(std::move(w), proto::ShedReason::kDeadlineExpired);
      return;
    }
    w.req->tomcat_id = static_cast<std::int16_t>(idx);
    w.req->assigned_at = sim_.now();
    auto* tomcat = tomcats_[static_cast<std::size_t>(idx)];
    tomcat_link_.deliver(
        sim_, [this, w = std::move(w), tomcat, idx, attempt]() mutable {
          // One latch per attempt: whichever of {backend response, abandon
          // timer} fires first owns the request's continuation. A late
          // answer to an abandoned attempt still releases the endpoint slot
          // and refreshes the piggybacked load report — the backend really
          // did the work — but must not finish (or double-finish) the
          // request the retry path already owns.
          auto abandoned = std::make_shared<bool>(false);
          const bool accepted = tomcat->submit(
              w.req,
              [this, w, idx, attempt, abandoned](const proto::RequestPtr&) {
                tomcat_link_.deliver(sim_, [this, w, idx, attempt, abandoned] {
                  balancer_->on_response(idx, w.req);
                  // Piggyback the backend's load report on the response
                  // (Prequal's probe-on-response mode): keeps the pool
                  // millisecond-fresh on workers we are actively using.
                  // A gray-degraded Tomcat reports frozen pre-fault values
                  // here too — the deception covers the piggyback path.
                  if (probe_pool_) {
                    auto* t = tomcats_[static_cast<std::size_t>(idx)];
                    probe_pool_->observe(idx, t->reported_rif(),
                                         t->reported_latency_ms());
                  }
                  if (*abandoned) return;
                  *abandoned = true;
                  w.req->backend_done_at = sim_.now();
                  if (attempt > 0) ++retry_successes_;
                  // A backend tier may have shed the request mid-flight
                  // (expired deadline at the Tomcat queue or DbRouter);
                  // the response then carries the failure to the client.
                  finish(w, /*ok=*/w.req->shed == proto::ShedReason::kNone);
                });
              });
          if (accepted && config_.retry.enabled &&
              config_.retry.attempt_timeout > sim::SimTime::zero()) {
            sim_.after(config_.retry.attempt_timeout,
                       [this, w, attempt, abandoned]() mutable {
                         if (*abandoned) return;
                         *abandoned = true;
                         ++attempts_abandoned_;
                         maybe_retry(std::move(w), attempt);
                       });
          }
          if (!accepted) {
            balancer_->on_response(idx, w.req);
            if (w.req->shed == proto::ShedReason::kAdmission ||
                w.req->shed == proto::ShedReason::kBrownout) {
              // Explicit 503 from the backend's admission limiter: the
              // Tomcat is alive and answering fast, so don't escalate the
              // mod_jk Busy/Error state — just retry elsewhere if allowed.
              maybe_retry(std::move(w), attempt);
            } else {
              // Connector backlog overflow or a crashed Tomcat (a connect
              // failure in mod_jk terms). Feed the failure into the
              // worker's Busy/Error escalation and retry elsewhere.
              balancer_->report_failure(idx);
              maybe_retry(std::move(w), attempt);
            }
          }
        });
  });
}

void ApacheServer::maybe_retry(Work w, int attempt) {
  const lb::RetryConfig& rc = config_.retry;
  const bool dead = config_.overload.deadlines && expired(w.req);
  if (retry_suppressed_ && !dead && rc.enabled &&
      attempt + 1 < rc.max_attempts) {
    // Recovery intervention: the retry would have been eligible, but the
    // orchestrator is breaking the amplification loop. Fail fast instead.
    ++retries_suppressed_;
    finish(w, /*ok=*/false);
    return;
  }
  if (!dead && rc.enabled && attempt + 1 < rc.max_attempts &&
      sim_.now() - w.req->accepted_at < rc.request_timeout &&
      retry_budget_->try_take()) {
    ++retries_;
    // A backend shed from a previous attempt must not taint the retry.
    w.req->shed = proto::ShedReason::kNone;
    sim_.after(rc.backoff(attempt), [this, w = std::move(w), attempt]() mutable {
      dispatch(std::move(w), attempt + 1);
    });
    return;
  }
  finish(w, /*ok=*/false);
}

void ApacheServer::finish(const Work& w, bool ok) {
  node_.page_cache().write_dirty(config_.log_bytes);
  ++served_;
  w.respond(w.req, ok);
  --workers_busy_;
  if (limiter_) limiter_->release();
  admit_from_backlog();
  queue_trace_.set(sim_.now(), resident());
}

void ApacheServer::admit_from_backlog() {
  while (auto next = backlog_.try_pop_timed()) {
    Work w = std::move(next->first);
    const sim::SimTime enqueued = next->second;
    if (config_.overload.deadlines && expired(w.req)) {
      backlog_.count_drop(net::DropReason::kDeadline);
      shed_unqueued(w.req, w.respond, proto::ShedReason::kDeadlineExpired,
                    /*release_limiter=*/true);
      continue;
    }
    // CoDel drains the standing queue a pdflush stall built up: once
    // sojourn has exceeded target for a full interval, shed on dequeue with
    // control-law spacing. High-priority work (priority 0) is never
    // CoDel-shed — it waited, so it runs.
    if (config_.overload.codel && w.req->priority > 0 &&
        codel_.should_drop(enqueued, sim_.now())) {
      backlog_.count_drop(net::DropReason::kSojourn);
      shed_unqueued(w.req, w.respond, proto::ShedReason::kSojourn,
                    /*release_limiter=*/true);
      continue;
    }
    if (limiter_) limiter_->observe_delay(sim_.now() - enqueued);
    start_worker(std::move(w));
    return;
  }
}

void ApacheServer::shed_unqueued(const proto::RequestPtr& req,
                                 const RespondFn& respond,
                                 proto::ShedReason reason,
                                 bool release_limiter) {
  if (release_limiter && limiter_) limiter_->release();
  count_shed(req, reason, /*include_apache_demand=*/true);
  respond(req, /*ok=*/false);
}

void ApacheServer::shed_worker(Work w, proto::ShedReason reason) {
  count_shed(w.req, reason, /*include_apache_demand=*/false);
  finish(w, /*ok=*/false);
}

void ApacheServer::count_shed(const proto::RequestPtr& req,
                              proto::ShedReason reason,
                              bool include_apache_demand) {
  req->shed = reason;
  // Backend service demand this shed avoided burning during the overload.
  double avoided_ms = req->tomcat_demand.to_millis() +
                      static_cast<double>(req->db_queries) *
                          req->mysql_demand.to_millis();
  if (include_apache_demand) avoided_ms += req->apache_demand.to_millis();
  ostats_.wasted_work_avoided_ms += avoided_ms;
  switch (reason) {
    case proto::ShedReason::kAdmission: ++ostats_.admission_sheds; break;
    case proto::ShedReason::kBrownout: ++ostats_.brownout_sheds; break;
    case proto::ShedReason::kDeadlineExpired: ++ostats_.deadline_sheds; break;
    case proto::ShedReason::kSojourn: ++ostats_.sojourn_sheds; break;
    case proto::ShedReason::kRecovery: ++ostats_.recovery_sheds; break;
    case proto::ShedReason::kNone: break;
  }
  if (reason == proto::ShedReason::kDeadlineExpired) {
    NTIER_TRACE_EVENT(trace_events_, sim_.now(),
                      obs::EventKind::kDeadlineExpired, obs::Tier::kApache,
                      id_, -1, req->id,
                      (sim_.now() - req->deadline).to_millis(),
                      static_cast<std::int32_t>(reason));
  } else {
    NTIER_TRACE_EVENT(trace_events_, sim_.now(),
                      obs::EventKind::kAdmissionShed, obs::Tier::kApache, id_,
                      -1, req->id, limiter_ ? limiter_->limit() : 0.0,
                      static_cast<std::int32_t>(reason));
  }
}

}  // namespace ntier::server
