#include "server/apache_server.h"

#include <cassert>

namespace ntier::server {

ApacheServer::ApacheServer(sim::Simulation& simu, os::Node& node, int id,
                           std::vector<TomcatServer*> tomcats,
                           std::unique_ptr<lb::LbPolicy> policy,
                           std::unique_ptr<lb::EndpointAcquirer> acquirer,
                           lb::BalancerConfig lb_config, ApacheConfig config,
                           sim::SimTime trace_window)
    : sim_(simu),
      node_(node),
      id_(id),
      tomcats_(std::move(tomcats)),
      config_(config),
      tomcat_link_(config.link_latency),
      balancer_(std::make_unique<lb::LoadBalancer>(
          simu, static_cast<int>(tomcats_.size()), std::move(policy),
          std::move(acquirer), lb_config)),
      backlog_(config.listen_backlog),
      queue_trace_(trace_window) {
  assert(!tomcats_.empty());
}

bool ApacheServer::try_submit(const proto::RequestPtr& req, RespondFn respond) {
  req->apache_id = static_cast<std::int16_t>(id_);
  if (workers_busy_ < config_.max_clients) {
    queue_trace_.set(sim_.now(), resident() + 1);
    start_worker(Work{req, std::move(respond)});
    return true;
  }
  if (!backlog_.try_push(Work{req, std::move(respond)})) return false;
  queue_trace_.set(sim_.now(), resident());
  return true;
}

void ApacheServer::start_worker(Work w) {
  ++workers_busy_;
  w.req->accepted_at = sim_.now();
  handle(std::move(w));
}

void ApacheServer::handle(Work w) {
  // Front-end CPU (parsing, handler setup), then the mod_jk balancer.
  auto req = w.req;
  node_.cpu().submit(req->apache_demand, [this, w = std::move(w)]() mutable {
    // Copy the request handle out before the capture moves `w` (argument
    // evaluation order is unspecified).
    auto r = w.req;
    balancer_->assign(r, [this, w = std::move(w)](int idx) mutable {
      if (idx < 0) {
        finish(w, /*ok=*/false);  // mod_jk 503: no backend yielded an endpoint
        return;
      }
      w.req->tomcat_id = static_cast<std::int16_t>(idx);
      w.req->assigned_at = sim_.now();
      auto* tomcat = tomcats_[static_cast<std::size_t>(idx)];
      tomcat_link_.deliver(sim_, [this, w = std::move(w), tomcat, idx]() mutable {
        const bool accepted = tomcat->submit(
            w.req, [this, w, idx](const proto::RequestPtr&) {
              tomcat_link_.deliver(sim_, [this, w, idx] {
                w.req->backend_done_at = sim_.now();
                balancer_->on_response(idx, w.req);
                finish(w, /*ok=*/true);
              });
            });
        if (!accepted) {
          // Connector backlog overflow (not reachable with the paper's
          // endpoint-pool sizing, handled for robustness): release the
          // endpoint and fail the request.
          balancer_->on_response(idx, w.req);
          finish(w, /*ok=*/false);
        }
      });
    });
  });
}

void ApacheServer::finish(const Work& w, bool ok) {
  node_.page_cache().write_dirty(config_.log_bytes);
  ++served_;
  w.respond(w.req, ok);
  --workers_busy_;
  if (auto next = backlog_.try_pop()) {
    start_worker(std::move(*next));
  }
  queue_trace_.set(sim_.now(), resident());
}

}  // namespace ntier::server
