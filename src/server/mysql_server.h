#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "metrics/time_series.h"
#include "os/node.h"
#include "sim/simulation.h"

namespace ntier::server {

struct MySqlConfig {
  /// Server-side concurrency cap (max_connections is far above what 4
  /// Tomcats × 48-connection pools can open; kept for completeness).
  int max_connections = 400;
  /// Dirty bytes written per query (binlog / InnoDB log), fuelling
  /// DB-side millibottleneck experiments. Zero in the paper's setup, where
  /// the flush problem lives on the Tomcat tier.
  std::uint32_t log_bytes_per_query = 0;
  /// CPU demand of answering one load probe (probe::ProbePool) — tiny, but
  /// on the real run queue so a stalled replica answers late.
  sim::SimTime probe_demand = sim::SimTime::micros(20);
};

/// Database tier. The paper's MySQL is never the bottleneck (Fig. 2(b): no
/// queue peaks): it executes query CPU demands — cheap when the 10 MB query
/// cache hits — and stays lightly loaded. Concurrency beyond the connection
/// cap queues FIFO.
class MySqlServer {
 public:
  MySqlServer(sim::Simulation& simu, os::Node& node, MySqlConfig config = {},
              sim::SimTime trace_window = sim::SimTime::millis(50));

  MySqlServer(const MySqlServer&) = delete;
  MySqlServer& operator=(const MySqlServer&) = delete;

  /// Execute one query of the given CPU demand; `done` fires on completion.
  void execute(sim::SimTime demand, std::function<void()> done);

  /// Answer a load probe (probe::ProbePool): a tiny CPU job that reports
  /// queries-in-flight at answer time plus the recent query-latency EWMA.
  void probe_load(std::function<void(bool ok, double rif, double latency_ms)>
                      done);

  /// Recent whole-query latency (execute → done), EWMA in ms.
  double latency_ewma_ms() const { return latency_ewma_ms_; }

  /// Queries resident (queued + executing) — the MySQL tier queue series.
  int resident() const { return resident_; }
  const metrics::GaugeSeries& queue_trace() const { return queue_trace_; }
  void finish_traces() { queue_trace_.finish(sim_.now()); }

  std::uint64_t queries_served() const { return served_; }
  os::Node& node() { return node_; }

 private:
  void start(sim::SimTime demand, std::function<void()> done);
  void on_query_done();

  sim::Simulation& sim_;
  os::Node& node_;
  MySqlConfig config_;
  int executing_ = 0;
  int resident_ = 0;
  std::uint64_t served_ = 0;
  double latency_ewma_ms_ = 0.0;
  std::deque<std::pair<sim::SimTime, std::function<void()>>> waiting_;
  metrics::GaugeSeries queue_trace_;
};

}  // namespace ntier::server
