#pragma once

#include <functional>

#include "proto/request.h"

namespace ntier::proto {

/// Client-visible surface of a front-end (web) server.
///
/// `try_submit` models opening a fresh connection (the RUBBoS clients do not
/// keep connections alive): it returns false when the listen backlog is full
/// — the SYN is silently dropped and the *client* discovers this via its
/// retransmission timer, which is how millibottlenecks turn into multi-second
/// VLRT requests.
class FrontEnd {
 public:
  virtual ~FrontEnd() = default;

  /// `respond(req, ok)` fires when the server finishes the request; ok=false
  /// means the server gave up internally (balancer error / 503).
  using RespondFn = std::function<void(const RequestPtr&, bool ok)>;

  virtual bool try_submit(const RequestPtr& req, RespondFn respond) = 0;
};

}  // namespace ntier::proto
