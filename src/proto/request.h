#pragma once

#include <cstdint>
#include <memory>

#include "sim/time.h"

namespace ntier::proto {

/// One client interaction travelling through the n-tier system. Demands are
/// pre-drawn by the workload generator (so a request is reproducible and
/// self-contained); servers consume them as the request traverses tiers.
struct Request {
  std::uint64_t id = 0;
  std::uint16_t interaction = 0;  // index into the workload interaction table
  std::uint16_t client = 0;       // originating client (for think-loop bookkeeping)

  // -- service demands ------------------------------------------------------
  sim::SimTime apache_demand;       // front-end CPU (parse, static, proxying)
  sim::SimTime tomcat_demand;       // servlet CPU
  std::uint8_t db_queries = 0;      // round trips to MySQL
  sim::SimTime mysql_demand;        // CPU per query (query-cache hits are cheap)

  // -- sizes (drive the total_traffic policy and log volume) ----------------
  std::uint32_t request_bytes = 0;
  std::uint32_t response_bytes = 0;
  std::uint32_t log_bytes = 0;      // appended to the Tomcat node's page cache

  // -- life-cycle bookkeeping -----------------------------------------------
  sim::SimTime client_start;        // first connection attempt at the client
  /// Per-hop timestamps for latency breakdown: when an Apache worker picked
  /// the request up, when the balancer yielded an endpoint, and when the
  /// backend's response arrived back at the Apache.
  sim::SimTime accepted_at;
  sim::SimTime assigned_at;
  sim::SimTime backend_done_at;
  std::uint8_t retransmissions = 0; // dropped-and-retried connection attempts
  std::int16_t apache_id = -1;
  std::int16_t tomcat_id = -1;
  /// Sticky-session route (mod_jk jvmRoute): the Tomcat that owns this
  /// client's session, or -1 for a route-less request.
  std::int16_t session_route = -1;
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace ntier::proto
