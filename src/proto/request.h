#pragma once

#include <cstdint>
#include <memory>

#include "sim/time.h"

namespace ntier::proto {

/// Why the overload-control layer refused or abandoned a request.
/// kNone means the request was never shed. A shed request still gets a
/// (failed) response, so client-side request conservation is unaffected;
/// the reason rides along so every tier and the metrics layer can
/// attribute the shed without widening RequestOutcome.
enum class ShedReason : std::uint8_t {
  kNone = 0,
  kAdmission,        // admission limiter rejected at the door (retriable 503)
  kBrownout,         // low-priority work rejected under brownout
  kDeadlineExpired,  // deadline had already passed when the tier looked at it
  kSojourn,          // CoDel sojourn-time drop while draining a standing queue
  kRecovery,         // recovery orchestrator hard-shedding until queues drain
};

/// One client interaction travelling through the n-tier system. Demands are
/// pre-drawn by the workload generator (so a request is reproducible and
/// self-contained); servers consume them as the request traverses tiers.
struct Request {
  std::uint64_t id = 0;
  std::uint16_t interaction = 0;  // index into the workload interaction table
  /// Originating client (think-loop bookkeeping). 32-bit so replayed
  /// production traces can carry a day's worth of distinct users, not just a
  /// closed-loop population's slots.
  std::uint32_t client = 0;

  // -- service demands ------------------------------------------------------
  sim::SimTime apache_demand;       // front-end CPU (parse, static, proxying)
  sim::SimTime tomcat_demand;       // servlet CPU
  std::uint8_t db_queries = 0;      // round trips to MySQL
  sim::SimTime mysql_demand;        // CPU per query (query-cache hits are cheap)
  /// How many of the db round trips are writes (the *last* db_writes trips;
  /// the data tier routes them through the write quorum). Zero for pure
  /// reads and for the browse-only mix.
  std::uint8_t db_writes = 0;
  /// Data key the interaction touches (Zipf-popular under --zipf-s). The KV
  /// tier shards by this key; the MySQL tier ignores it.
  std::uint64_t key = 0;

  // -- sizes (drive the total_traffic policy and log volume) ----------------
  std::uint32_t request_bytes = 0;
  std::uint32_t response_bytes = 0;
  std::uint32_t log_bytes = 0;      // appended to the Tomcat node's page cache

  // -- life-cycle bookkeeping -----------------------------------------------
  sim::SimTime client_start;        // first connection attempt at the client
  /// Per-hop timestamps for latency breakdown: when an Apache worker picked
  /// the request up, when the balancer yielded an endpoint, and when the
  /// backend's response arrived back at the Apache.
  sim::SimTime accepted_at;
  sim::SimTime assigned_at;
  sim::SimTime backend_done_at;
  std::uint8_t retransmissions = 0; // dropped-and-retried connection attempts
  std::int16_t apache_id = -1;
  std::int16_t tomcat_id = -1;
  /// Sticky-session route (mod_jk jvmRoute): the Tomcat that owns this
  /// client's session, or -1 for a route-less request.
  std::int16_t session_route = -1;

  // -- overload control ------------------------------------------------------
  /// Absolute completion deadline (client budget added to client_start);
  /// zero means "no deadline". Propagated unchanged through every tier, so
  /// each hop sees the remaining budget as `deadline - now`.
  sim::SimTime deadline;
  /// Priority class: 0 = high (writes/logins), 1 = normal (views/browse),
  /// 2 = low (searches, batch-ish reads). Brownout sheds high numbers first.
  std::uint8_t priority = 1;
  /// Set by whichever tier shed the request; cleared before a retry attempt.
  ShedReason shed = ShedReason::kNone;
  /// Client-side re-attempts after a retriable 503 (admission/brownout).
  std::uint8_t shed_retries = 0;

  // -- KV data tier ----------------------------------------------------------
  /// Total time this request spent waiting on KV quorums (all round trips),
  /// and the share of it spent while the touched shard was degraded (one or
  /// more preference-list replicas down).
  sim::SimTime kv_quorum_wait;
  sim::SimTime kv_degraded_wait;
};

inline const char* to_string(ShedReason r) {
  switch (r) {
    case ShedReason::kNone: return "none";
    case ShedReason::kAdmission: return "admission";
    case ShedReason::kBrownout: return "brownout";
    case ShedReason::kDeadlineExpired: return "deadline_expired";
    case ShedReason::kSojourn: return "sojourn";
    case ShedReason::kRecovery: return "recovery";
  }
  return "?";
}

using RequestPtr = std::shared_ptr<Request>;

}  // namespace ntier::proto
