#pragma once

#include <functional>

#include "sim/rng.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace ntier::net {

/// A one-way network hop with fixed propagation/processing latency. The
/// paper's testbed is a 1 Gbps LAN where transfer time is negligible next to
/// service times, so a constant per-hop latency captures the relevant cost.
///
/// For fault injection the link additionally carries a mutable *fault
/// state*: extra latency (congestion, a flapping switch) and a packet-loss
/// probability. Loss is not applied inside `deliver` — a sender that wants
/// loss semantics asks `drops()` first, because what a drop *means* (silent
/// SYN loss discovered by the retransmission timer, vs. a failed RPC) is the
/// sender's business.
class Link {
 public:
  explicit Link(sim::SimTime latency = sim::SimTime::micros(100))
      : latency_(latency) {}

  /// Effective one-way latency including any injected fault latency.
  sim::SimTime latency() const { return latency_ + extra_latency_; }
  sim::SimTime base_latency() const { return latency_; }
  sim::SimTime extra_latency() const { return extra_latency_; }
  double loss_probability() const { return loss_probability_; }
  bool faulted() const {
    return extra_latency_ > sim::SimTime::zero() || loss_probability_ > 0;
  }

  /// Inject a link fault: added one-way latency and/or packet loss.
  void set_fault(sim::SimTime extra_latency, double loss_probability) {
    extra_latency_ = extra_latency;
    loss_probability_ = loss_probability;
  }
  void clear_fault() { set_fault(sim::SimTime::zero(), 0.0); }

  /// Draw whether the next packet is lost under the current fault state.
  bool drops(sim::Rng& rng) const {
    return loss_probability_ > 0 && rng.bernoulli(loss_probability_);
  }

  /// Deliver `fn` on the far side after the link latency.
  void deliver(sim::Simulation& simu, std::function<void()> fn) const {
    simu.after(latency(), std::move(fn));
  }

 private:
  sim::SimTime latency_;
  sim::SimTime extra_latency_;
  double loss_probability_ = 0;
};

}  // namespace ntier::net
