#pragma once

#include <functional>

#include "sim/simulation.h"
#include "sim/time.h"

namespace ntier::net {

/// A one-way network hop with fixed propagation/processing latency. The
/// paper's testbed is a 1 Gbps LAN where transfer time is negligible next to
/// service times, so a constant per-hop latency captures the relevant cost.
class Link {
 public:
  explicit Link(sim::SimTime latency = sim::SimTime::micros(100))
      : latency_(latency) {}

  sim::SimTime latency() const { return latency_; }

  /// Deliver `fn` on the far side after the link latency.
  void deliver(sim::Simulation& simu, std::function<void()> fn) const {
    simu.after(latency_, std::move(fn));
  }

 private:
  sim::SimTime latency_;
};

}  // namespace ntier::net
