#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "sim/time.h"

namespace ntier::net {

/// Why an item left a BoundedQueue without being served. kOverflow is
/// counted by the queue itself on a failed push (a dropped SYN); the other
/// reasons are consumer-attributed via count_drop() when the overload layer
/// sheds an item it popped (CoDel sojourn drop, expired deadline).
enum class DropReason : std::uint8_t {
  kOverflow = 0,
  kSojourn,
  kDeadline,
};
inline constexpr std::size_t kNumDropReasons = 3;

/// Bounded FIFO with drop accounting — the listen/accept backlog of a
/// server. Overflow (try_push returning false) models a dropped SYN.
/// Every entry carries its enqueue time so consumers can measure sojourn
/// (the CoDel signal) and drops are attributed per reason.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False (and counts an overflow drop) when the queue is full.
  bool try_push(T item, sim::SimTime now = sim::SimTime::zero()) {
    if (items_.size() >= capacity_) {
      ++drops_[static_cast<std::size_t>(DropReason::kOverflow)];
      return false;
    }
    items_.emplace_back(std::move(item), now);
    return true;
  }

  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front().first);
    items_.pop_front();
    return item;
  }

  /// Pop together with the entry's enqueue time (sojourn = now - enqueued).
  std::optional<std::pair<T, sim::SimTime>> try_pop_timed() {
    if (items_.empty()) return std::nullopt;
    auto entry = std::move(items_.front());
    items_.pop_front();
    return entry;
  }

  /// Enqueue time of the head entry (the next pop). Queue must be non-empty.
  sim::SimTime front_enqueued() const { return items_.front().second; }

  /// Attribute a consumer-side shed (an item popped and then dropped by the
  /// overload layer rather than served) to this queue's accounting.
  void count_drop(DropReason reason) {
    ++drops_[static_cast<std::size_t>(reason)];
  }

  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= capacity_; }
  /// Total drops across all reasons (overflow-only in the seed behaviour).
  std::uint64_t drops() const {
    std::uint64_t total = 0;
    for (auto d : drops_) total += d;
    return total;
  }
  std::uint64_t drops(DropReason reason) const {
    return drops_[static_cast<std::size_t>(reason)];
  }

 private:
  std::size_t capacity_;
  std::deque<std::pair<T, sim::SimTime>> items_;
  std::array<std::uint64_t, kNumDropReasons> drops_{};
};

}  // namespace ntier::net
