#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

namespace ntier::net {

/// Bounded FIFO with drop accounting — the listen/accept backlog of a
/// server. Overflow (try_push returning false) models a dropped SYN.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False (and counts a drop) when the queue is full.
  bool try_push(T item) {
    if (items_.size() >= capacity_) {
      ++drops_;
      return false;
    }
    items_.push_back(std::move(item));
    return true;
  }

  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= capacity_; }
  std::uint64_t drops() const { return drops_; }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
  std::uint64_t drops_ = 0;
};

}  // namespace ntier::net
