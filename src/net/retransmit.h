#pragma once

#include <cstddef>
#include <vector>

#include "sim/time.h"

namespace ntier::net {

/// Retransmission timer schedule for dropped connection attempts.
///
/// When an Apache accept queue overflows, the SYN is silently dropped and
/// the client retries after the retransmission timeout. The paper observes
/// the resulting VLRT requests clustering at ≈1 s, 2 s and 3 s (Fig. 4),
/// i.e. an effectively constant ≈1 s timer across the first few retries on
/// its kernel; the schedule here is configurable so the ablation bench can
/// explore exponential-backoff variants ({1 s, 2 s, 4 s, …}) as well.
struct RetransmitSchedule {
  std::vector<sim::SimTime> delays = {
      sim::SimTime::seconds(1), sim::SimTime::seconds(1),
      sim::SimTime::seconds(1), sim::SimTime::seconds(1),
      sim::SimTime::seconds(1)};

  static RetransmitSchedule constant(sim::SimTime rto, std::size_t retries) {
    RetransmitSchedule s;
    s.delays.assign(retries, rto);
    return s;
  }

  static RetransmitSchedule exponential(sim::SimTime initial, std::size_t retries) {
    RetransmitSchedule s;
    s.delays.clear();
    sim::SimTime d = initial;
    for (std::size_t i = 0; i < retries; ++i) {
      s.delays.push_back(d);
      d = d * 2;
    }
    return s;
  }

  /// Maximum number of retries before the attempt is abandoned.
  std::size_t max_retries() const { return delays.size(); }

  /// Delay before retry number `attempt` (0-based). Precondition:
  /// attempt < max_retries().
  sim::SimTime delay(std::size_t attempt) const { return delays.at(attempt); }
};

}  // namespace ntier::net
