#include "cache/tier.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "sim/rng.h"

namespace ntier::cache {

CacheTier::CacheTier(sim::Simulation& simu, std::vector<os::Node*> nodes,
                     kv::KvTier* backing, CacheConfig config)
    : sim_(simu), kv_(backing), config_(config) {
  if (!kv_) throw std::invalid_argument("CacheTier: null backing kv tier");
  if (nodes.empty()) throw std::invalid_argument("CacheTier: no nodes");
  nodes_.reserve(nodes.size());
  for (os::Node* n : nodes) nodes_.emplace_back(n, config_.capacity_entries());
}

void CacheTier::read(int node, const proto::RequestPtr& req,
                     sim::SimTime demand, DoneFn done) {
  ++ops_in_flight_;
  ++stats_.lookups;
  auto& ns = nodes_[static_cast<std::size_t>(node)];
  ns.node->cpu().submit(
      config_.lookup_demand,
      [this, node, req, demand, done = std::move(done)]() mutable {
        auto& s = nodes_[static_cast<std::size_t>(node)];
        if (s.store.lookup(req->key, sim_.now())) {
          ++stats_.hits;
          NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kCacheHit,
                            obs::Tier::kCache, node, -1, req->id,
                            static_cast<double>(s.store.size()));
          --ops_in_flight_;
          done(true);
          return;
        }
        ++stats_.misses;
        NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kCacheMiss,
                          obs::Tier::kCache, node, -1, req->id,
                          static_cast<double>(s.store.size()));
        if (config_.coalesce || refill_gate_) {
          const auto it = s.fills.find(req->key);
          if (it != s.fills.end()) {
            // Single flight: join the in-flight fill instead of issuing a
            // second quorum fetch for the same key.
            ++stats_.coalesced_fills;
            it->second.push_back([this, done = std::move(done)](bool ok) {
              --ops_in_flight_;
              done(ok);
            });
            NTIER_TRACE_EVENT(trace_, sim_.now(),
                              obs::EventKind::kCacheCoalesced,
                              obs::Tier::kCache, node, -1, req->id,
                              static_cast<double>(it->second.size()));
            return;
          }
        }
        start_fill(node, req, demand, std::move(done));
      });
}

void CacheTier::set_refill_gate(bool on, sim::SimTime window) {
  refill_gate_ = on;
  if (window > sim::SimTime()) refill_gate_window_ = window;
}

void CacheTier::start_fill(int node, const proto::RequestPtr& req,
                           sim::SimTime demand, DoneFn done) {
  ++stats_.fills_started;
  auto& ns = nodes_[static_cast<std::size_t>(node)];
  // The gate imposes *emergency single-flight* on top of the stagger: a
  // stampede's duplicate fills are the load the orchestrator is trying to
  // shed, so while gated every concurrent miss for a key joins one quorum
  // fetch even when the config left coalescing off. Latched per fill so a
  // mid-flight gate toggle cannot orphan or double-complete waiters.
  const bool coalesced = config_.coalesce || refill_gate_;
  if (coalesced) {
    ns.fills[req->key].push_back([this, done = std::move(done)](bool ok) {
      --ops_in_flight_;
      done(ok);
    });
  }
  auto issue = [this, node, req, demand, coalesced,
                done = std::move(done)]() mutable {
    kv_->read(req, demand, [this, node, req, coalesced,
                            done = std::move(done)](bool ok) mutable {
    auto& s = nodes_[static_cast<std::size_t>(node)];
    // The fetched value is installed (or the failure surfaced) only after
    // the fill demand runs on the cache node, so queueing there is part of
    // every waiter's latency.
    s.node->cpu().submit(
        config_.fill_demand,
        [this, node, req, ok, coalesced, done = std::move(done)]() mutable {
          auto& t = nodes_[static_cast<std::size_t>(node)];
          if (ok) {
            ++stats_.fills_completed;
            ++stats_.inserts;
            t.store.insert(req->key, sim_.now(), config_.ttl);
          } else {
            ++stats_.fill_failures;
          }
          if (coalesced) {
            const auto it = t.fills.find(req->key);
            if (it != t.fills.end()) {
              auto waiters = std::move(it->second);
              t.fills.erase(it);
              for (auto& w : waiters) w(ok);
            }
          } else {
            --ops_in_flight_;
            done(ok);
          }
        });
    });
  };
  if (refill_gate_) {
    ++stats_.gated_fills;
    // Deterministic per-key stagger: same key -> same offset, every run.
    const double frac =
        static_cast<double>(sim::Rng::mix64(req->key) % 1024) / 1024.0;
    sim_.after(
        sim::SimTime::from_seconds(refill_gate_window_.to_seconds() * frac),
        std::move(issue));
  } else {
    issue();
  }
}

void CacheTier::write(int node, const proto::RequestPtr& req,
                      sim::SimTime demand, DoneFn done) {
  (void)node;  // the broadcast reaches every node holding the key
  ++ops_in_flight_;
  ++stats_.writes_forwarded;
  kv_->write(req, demand, [this, req, done = std::move(done)](bool ok) mutable {
    if (ok) broadcast_invalidations(req->key, req->id);
    --ops_in_flight_;
    done(ok);
  });
}

void CacheTier::broadcast_invalidations(std::uint64_t key,
                                        std::uint64_t request) {
  for (int m = 0; m < num_nodes(); ++m) {
    auto& ns = nodes_[static_cast<std::size_t>(m)];
    if (!ns.store.holds(key, sim_.now())) continue;
    enqueue_invalidation(m, key, request);
  }
}

void CacheTier::enqueue_invalidation(int node, std::uint64_t key,
                                     std::uint64_t request) {
  auto& ns = nodes_[static_cast<std::size_t>(node)];
  ++stats_.invalidations_sent;
  const std::size_t backlog = ns.inval_queue.size() + (ns.inval_busy ? 1 : 0);
  if (backlog >= config_.invalidation_queue_capacity) {
    // Bounded queue overflowed: the invalidation is dropped (counted, never
    // silent) and the entry stays stale until its TTL expires.
    ++stats_.invalidations_dropped;
    NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kCacheInvalidate,
                      obs::Tier::kCache, node, -1, request,
                      static_cast<double>(backlog), /*aux=*/-1);
    return;
  }
  ns.inval_queue.push_back(key);
  pump_invalidations(node);
}

void CacheTier::pump_invalidations(int node) {
  auto& ns = nodes_[static_cast<std::size_t>(node)];
  if (ns.inval_busy || ns.inval_queue.empty()) return;
  ns.inval_busy = true;
  const std::uint64_t key = ns.inval_queue.front();
  ns.inval_queue.pop_front();
  ns.node->cpu().submit(config_.invalidate_demand, [this, node, key] {
    auto& s = nodes_[static_cast<std::size_t>(node)];
    s.store.invalidate(key);
    ++stats_.invalidations_delivered;
    NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kCacheInvalidate,
                      obs::Tier::kCache, node, -1, /*request=*/0,
                      static_cast<double>(s.inval_queue.size()), /*aux=*/1);
    s.inval_busy = false;
    pump_invalidations(node);
  });
}

void CacheTier::begin_invalidation_storm(sim::SimTime duration,
                                         double intensity) {
  ++stats_.storms;
  const sim::SimTime end = sim_.now() + duration;
  const auto keys = static_cast<std::uint64_t>(
      std::llround(64.0 * (intensity > 0 ? intensity : 1.0)));
  if (storm_active_) {
    // Overlapping storms extend the window and take the larger sweep.
    if (end > storm_end_) storm_end_ = end;
    if (keys > storm_keys_) storm_keys_ = keys;
    return;
  }
  storm_active_ = true;
  storm_end_ = end;
  storm_keys_ = keys ? keys : 1;
  storm_intensity_ = intensity;
  NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kStallStart,
                    obs::Tier::kCache, -1, -1, /*request=*/0, intensity);
  storm_tick();
}

void CacheTier::storm_tick() {
  if (!storm_active_) return;
  if (sim_.now() >= storm_end_) {
    end_invalidation_storm();
    return;
  }
  ++stats_.storm_ticks;
  // Sweep the hottest Zipf ranks (workload key id == popularity rank): the
  // write burst keeps re-dirtying exactly the keys the cache protects.
  for (std::uint64_t k = 0; k < storm_keys_; ++k) {
    auto& root = nodes_;
    for (int m = 0; m < static_cast<int>(root.size()); ++m) {
      if (!root[static_cast<std::size_t>(m)].store.holds(k, sim_.now()))
        continue;
      enqueue_invalidation(m, k, /*request=*/0);
    }
  }
  sim_.after(storm_tick_interval_, [this] { storm_tick(); });
}

void CacheTier::end_invalidation_storm() {
  if (!storm_active_) return;
  if (sim_.now() < storm_end_) return;  // extended by an overlapping storm
  storm_active_ = false;
  NTIER_TRACE_EVENT(trace_, sim_.now(), obs::EventKind::kStallStop,
                    obs::Tier::kCache, -1, -1, /*request=*/0,
                    storm_intensity_);
}

const CacheStats& CacheTier::stats() const {
  stats_.evictions = 0;
  stats_.expirations = 0;
  for (const auto& ns : nodes_) {
    stats_.evictions += ns.store.evictions();
    stats_.expirations += ns.store.expirations();
  }
  return stats_;
}

std::uint64_t CacheTier::invalidations_pending() const {
  std::uint64_t pending = 0;
  for (const auto& ns : nodes_)
    pending += ns.inval_queue.size() + (ns.inval_busy ? 1 : 0);
  return pending;
}

}  // namespace ntier::cache
