#include "cache/config.h"

#include <charconv>
#include <sstream>

namespace ntier::cache {

bool CacheConfig::validate(std::string* error) const {
  auto fail = [error](const std::string& why) {
    if (error) *error = "cache config: " + why;
    return false;
  };
  if (nodes < 1) return fail("nodes must be >= 1");
  if (bytes < 1) return fail("bytes must be >= 1");
  if (entry_bytes < 1) return fail("entry must be >= 1");
  if (bytes < entry_bytes)
    return fail("bytes=" + std::to_string(bytes) +
                " cannot hold a single entry of " +
                std::to_string(entry_bytes) + " bytes");
  if (ttl <= sim::SimTime::zero())
    return fail("ttl_ms must be > 0 (the TTL backstops dropped invalidations)");
  if (invalidation_queue_capacity < 1)
    return fail("inval_queue must be >= 1");
  return true;
}

std::string CacheConfig::to_string() const {
  std::ostringstream os;
  os << "nodes=" << nodes << ",bytes=" << bytes << ",entry=" << entry_bytes
     << ",ttl_ms=" << static_cast<std::int64_t>(ttl.to_millis())
     << ",inval_queue=" << invalidation_queue_capacity
     << ",coalesce=" << (coalesce ? 1 : 0);
  return os.str();
}

std::optional<CacheConfig> cache_config_from_string(const std::string& s,
                                                    std::string* error) {
  CacheConfig cfg;
  auto fail = [error](const std::string& why) {
    if (error) *error = "cache config: " + why;
    return std::nullopt;
  };
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string item = s.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      return fail("expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    std::int64_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc() || ptr != value.data() + value.size())
      return fail("bad integer for '" + key + "': '" + value + "'");
    if (key == "nodes") cfg.nodes = static_cast<int>(parsed);
    else if (key == "bytes") {
      if (parsed < 0) return fail("bytes must be >= 0");
      cfg.bytes = static_cast<std::uint64_t>(parsed);
    } else if (key == "entry") {
      if (parsed < 0) return fail("entry must be >= 0");
      cfg.entry_bytes = static_cast<std::uint32_t>(parsed);
    } else if (key == "ttl_ms") {
      cfg.ttl = sim::SimTime::millis(parsed);
    } else if (key == "inval_queue") {
      if (parsed < 0) return fail("inval_queue must be >= 0");
      cfg.invalidation_queue_capacity = static_cast<std::size_t>(parsed);
    } else if (key == "coalesce") {
      cfg.coalesce = parsed != 0;
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  std::string why;
  if (!cfg.validate(&why)) {
    if (error) *error = why;
    return std::nullopt;
  }
  return cfg;
}

}  // namespace ntier::cache
