#include "cache/store.h"

namespace ntier::cache {

bool CacheStore::lookup(std::uint64_t key, sim::SimTime now) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  if (it->second->expires <= now) {
    ++expirations_;
    erase(it->second);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

bool CacheStore::holds(std::uint64_t key, sim::SimTime now) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  if (it->second->expires <= now) {
    ++expirations_;
    erase(it->second);
    return false;
  }
  return true;
}

void CacheStore::insert(std::uint64_t key, sim::SimTime now, sim::SimTime ttl) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->expires = now + ttl;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, now + ttl});
  index_[key] = lru_.begin();
  if (index_.size() > capacity_) {
    ++evictions_;
    erase(std::prev(lru_.end()));
  }
}

bool CacheStore::invalidate(std::uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  erase(it->second);
  return true;
}

void CacheStore::erase(std::list<Entry>::iterator it) {
  index_.erase(it->key);
  lru_.erase(it);
}

}  // namespace ntier::cache
