#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cache/config.h"
#include "cache/store.h"
#include "kv/tier.h"
#include "obs/trace.h"
#include "os/node.h"
#include "proto/request.h"
#include "sim/simulation.h"

namespace ntier::cache {

/// Counters of everything the cache tier did — the raw material for the
/// cache accounting identities checked by the chaos invariant matrix:
///   lookups == hits + misses
///   misses  == fills_started + coalesced_fills
///   invalidations_sent == delivered + dropped + pending (pending 0 after
///   drain)
/// Nothing is silently lost: an invalidation that cannot be queued is a
/// counted drop, and the entry TTL bounds how long the resulting staleness
/// survives.
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Backing-store fetches actually issued for misses.
  std::uint64_t fills_started = 0;
  std::uint64_t fills_completed = 0;
  std::uint64_t fill_failures = 0;  // quorum-failed fetches (nothing cached)
  /// Misses that joined an in-flight fill instead of issuing their own
  /// (single-flight coalescing).
  std::uint64_t coalesced_fills = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;    // LRU capacity evictions, all nodes
  std::uint64_t expirations = 0;  // TTL lazy expiries, all nodes
  std::uint64_t writes_forwarded = 0;
  std::uint64_t invalidations_sent = 0;
  std::uint64_t invalidations_delivered = 0;
  std::uint64_t invalidations_dropped = 0;  // bounded queue overflowed
  std::uint64_t storms = 0;       // invalidation-storm faults applied
  std::uint64_t storm_ticks = 0;  // hot-key sweep rounds across all storms
  /// Fills whose backing fetch was deferred by the recovery refill gate.
  std::uint64_t gated_fills = 0;

  double hit_ratio() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

/// Memcached-style look-aside cache tier between the Tomcat servlets and
/// the KV data tier. Each Tomcat's DbRouter is pinned to one cache node;
/// reads look the key up there (lookup CPU on the owning os::Node), misses
/// fetch through the KV read quorum and install the value (fill CPU), and
/// quorum-committed writes broadcast MESI-style invalidations to every
/// cache node holding the key. Invalidations drain from a bounded per-node
/// FIFO with per-item CPU cost, so a write burst builds a visible backlog —
/// the invalidation-storm millibottleneck — and single-flight coalescing
/// keeps a post-storm miss burst from stampeding the backing store.
class CacheTier {
 public:
  /// Completion of one client-visible operation; ok=false surfaces like a
  /// SQL error at the router (a failed quorum fetch or write).
  using DoneFn = std::function<void(bool ok)>;

  CacheTier(sim::Simulation& simu, std::vector<os::Node*> nodes,
            kv::KvTier* backing, CacheConfig config);

  CacheTier(const CacheTier&) = delete;
  CacheTier& operator=(const CacheTier&) = delete;

  /// Look-aside read at cache node `node`: hit completes after the lookup
  /// demand; a miss fetches through the KV quorum (the request's original
  /// demand), pays the fill demand, installs the entry and completes every
  /// coalesced waiter in join order.
  void read(int node, const proto::RequestPtr& req, sim::SimTime demand,
            DoneFn done);

  /// Write-through-to-quorum: forward to the KV write path; on quorum
  /// commit, broadcast invalidations to every node holding the key.
  void write(int node, const proto::RequestPtr& req, sim::SimTime demand,
             DoneFn done);

  /// The kInvalidationStorm fault: every `storm_tick_interval` for
  /// `duration`, enqueue invalidations for the hottest `64 * intensity`
  /// Zipf ranks (key id == rank) on every node holding them — the cache
  /// analogue of a write burst sweeping the hot key set. Overlapping storms
  /// extend the end. Emits kStallStart/kStallStop on Tier::kCache so the
  /// causal-chain analyzer sees the episode.
  void begin_invalidation_storm(sim::SimTime duration, double intensity);
  /// Idempotent end backstop (also self-scheduled at the storm's end).
  void end_invalidation_storm();
  bool storm_active() const { return storm_active_; }

  void set_trace(obs::TraceCollector* t) { trace_ = t; }

  /// Recovery intervention: while on, every fill's backing fetch is delayed
  /// by a deterministic per-key jitter in [0, window) so a post-fault miss
  /// burst refills the store staggered instead of stampeding the quorum,
  /// and single-flight coalescing is imposed even when the config left it
  /// off — the waiters that pile up during the jitter join one fetch. The
  /// coalescing decision is latched per fill, so toggling the gate while
  /// fills are in flight is safe.
  void set_refill_gate(bool on,
                       sim::SimTime window = sim::SimTime::millis(40));
  bool refill_gate() const { return refill_gate_; }

  // -- topology ---------------------------------------------------------------
  const CacheConfig& config() const { return config_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const CacheStore& store(int n) const {
    return nodes_[static_cast<std::size_t>(n)].store;
  }
  kv::KvTier& backing() { return *kv_; }

  // -- accounting -------------------------------------------------------------
  const CacheStats& stats() const;
  /// Client-visible cache operations still outstanding (0 after drain).
  std::uint64_t ops_in_flight() const { return ops_in_flight_; }
  /// Invalidations queued or in service across all nodes (0 after drain).
  std::uint64_t invalidations_pending() const;

 private:
  struct NodeState {
    os::Node* node = nullptr;
    CacheStore store;
    /// In-flight fills by key; the vector holds the leader's completion
    /// first, then every coalesced waiter in join order.
    std::unordered_map<std::uint64_t, std::vector<DoneFn>> fills;
    std::deque<std::uint64_t> inval_queue;
    bool inval_busy = false;

    NodeState(os::Node* n, std::size_t capacity_entries)
        : node(n), store(capacity_entries) {}
  };

  void start_fill(int node, const proto::RequestPtr& req, sim::SimTime demand,
                  DoneFn done);
  void broadcast_invalidations(std::uint64_t key, std::uint64_t request);
  void enqueue_invalidation(int node, std::uint64_t key,
                            std::uint64_t request);
  void pump_invalidations(int node);
  void storm_tick();

  sim::Simulation& sim_;
  kv::KvTier* kv_;
  CacheConfig config_;
  obs::TraceCollector* trace_ = nullptr;
  std::vector<NodeState> nodes_;

  mutable CacheStats stats_;
  std::uint64_t ops_in_flight_ = 0;

  bool refill_gate_ = false;
  sim::SimTime refill_gate_window_ = sim::SimTime::millis(40);

  bool storm_active_ = false;
  sim::SimTime storm_end_;
  std::uint64_t storm_keys_ = 0;
  double storm_intensity_ = 0.0;
  sim::SimTime storm_tick_interval_ = sim::SimTime::millis(10);
};

}  // namespace ntier::cache
