#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/time.h"

namespace ntier::cache {

/// One node's key set: a bounded LRU with per-entry TTLs. Entries expire
/// lazily — an expired entry is discovered (and counted) at the lookup or
/// holds() probe that finds it, which is exactly when a memcached-style
/// cache pays the expiry cost. Every operation is keyed explicitly and no
/// output ever depends on hash-table iteration order, so the store is
/// byte-deterministic by construction.
class CacheStore {
 public:
  explicit CacheStore(std::size_t capacity_entries)
      : capacity_(capacity_entries ? capacity_entries : 1) {}

  /// Look a key up at `now`: a live entry is promoted to most-recently-used
  /// and counts a hit; a dead (expired) entry is erased and counts both an
  /// expiration and a miss.
  bool lookup(std::uint64_t key, sim::SimTime now);

  /// True when the key is resident and live at `now`, without promoting it
  /// (the invalidation broadcast's "does this node hold the key" probe).
  /// Expired entries found here are erased and counted.
  bool holds(std::uint64_t key, sim::SimTime now);

  /// Install (or refresh) a key with expiry `now + ttl`, evicting the
  /// least-recently-used entry when over capacity.
  void insert(std::uint64_t key, sim::SimTime now, sim::SimTime ttl);

  /// Drop a key; true when it was resident.
  bool invalidate(std::uint64_t key);

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t expirations() const { return expirations_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    sim::SimTime expires;
  };

  void erase(std::list<Entry>::iterator it);

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
};

}  // namespace ntier::cache
