#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/time.h"

namespace ntier::cache {

/// Configuration of the look-aside cache tier that fronts the KV data tier:
/// `nodes` cache servers, each with `bytes` of memory holding fixed-size
/// entries of `entry_bytes`, evicted LRU and expired after `ttl`. Writes
/// committed by the KV quorum broadcast invalidations to every cache node
/// holding the key; each node drains its invalidations from a bounded FIFO
/// queue whose backlog is itself a millibottleneck surface (an overflowing
/// queue *drops* invalidations — the TTL is the backstop that bounds how
/// long a dropped invalidation can leave a stale entry behind).
struct CacheConfig {
  int nodes = 2;                       // cache servers in the tier
  std::uint64_t bytes = 64ull << 20;   // memory per node
  std::uint32_t entry_bytes = 4096;    // memory charged per cached entry
  sim::SimTime ttl = sim::SimTime::seconds(10);  // entry time-to-live

  /// CPU demand of a cache lookup (hit or miss) on the owning node.
  sim::SimTime lookup_demand = sim::SimTime::micros(30);
  /// CPU demand of installing a fetched value after a miss.
  sim::SimTime fill_demand = sim::SimTime::micros(60);
  /// CPU demand of applying one queued invalidation.
  sim::SimTime invalidate_demand = sim::SimTime::micros(20);

  /// Bound on each node's pending-invalidation queue; overflow is counted
  /// as invalidations_dropped (no silent loss — the TTL cleans up).
  std::size_t invalidation_queue_capacity = 4096;

  /// Single-flight fill coalescing: concurrent misses on the same key at
  /// the same node join the one in-flight fill instead of each stampeding
  /// the backing store. Toggleable so the bench can show with/without.
  bool coalesce = true;

  /// Validate the geometry; on failure fills `error` with the reason
  /// (mirrors the CLI's rejection-message contract).
  bool validate(std::string* error) const;

  /// Canonical "nodes=2,bytes=67108864,entry=4096,ttl_ms=10000,..."
  /// rendering — round-trips through cache_config_from_string.
  std::string to_string() const;

  /// Entries one node can hold before LRU eviction kicks in.
  std::size_t capacity_entries() const {
    const std::uint64_t cap = entry_bytes ? bytes / entry_bytes : 0;
    return cap ? static_cast<std::size_t>(cap) : 1;
  }
};

/// Parse "key=value,key=value" (keys: nodes, bytes, entry, ttl_ms,
/// inval_queue, coalesce) over the defaults. Returns nullopt and fills
/// `error` on unknown keys, malformed numbers, or invalid geometry.
std::optional<CacheConfig> cache_config_from_string(const std::string& s,
                                                    std::string* error);

}  // namespace ntier::cache
