#include "obs/telemetry.h"

#include <charconv>

namespace ntier::obs {

// ---- MultiResTimeline --------------------------------------------------------

MultiResTimeline::MultiResTimeline(const TelemetryConfig& cfg)
    : fine_(cfg.fine_window),
      coarse_(cfg.coarse_window),
      fine_retention_(cfg.fine_retention ? cfg.fine_retention : 1),
      coarse_retention_(cfg.coarse_retention ? cfg.coarse_retention : 1),
      sketch_cfg_(cfg.sketch),
      run_sketch_(cfg.sketch) {
  if (fine_.ns() <= 0) fine_ = sim::SimTime::millis(50);
  if (coarse_.ns() < fine_.ns()) coarse_ = fine_;
}

void MultiResTimeline::evict_oldest_fine() {
  const std::size_t coarse_abs =
      static_cast<std::size_t>(fine_base_ * fine_.ns() / coarse_.ns());
  if (coarse_slots_.empty()) coarse_base_ = coarse_abs;
  while (coarse_base_ + coarse_slots_.size() <= coarse_abs)
    coarse_slots_.emplace_back(sketch_cfg_);
  Slot& target = coarse_slots_[coarse_abs - coarse_base_];
  Slot& src = fine_slots_.front();
  target.stats.merge(src.stats);
  target.sketch.merge(src.sketch);
  fine_slots_.pop_front();
  ++fine_base_;
  while (coarse_slots_.size() > coarse_retention_) {
    coarse_slots_.pop_front();
    ++coarse_base_;
    ++coarse_dropped_;
  }
}

void MultiResTimeline::advance_to(std::size_t fine_abs) {
  if (fine_slots_.empty()) fine_base_ = fine_abs;
  while (fine_base_ + fine_slots_.size() <= fine_abs) {
    fine_slots_.emplace_back(sketch_cfg_);
    if (fine_slots_.size() > fine_retention_) evict_oldest_fine();
  }
}

void MultiResTimeline::record(sim::SimTime t, double v) {
  std::size_t w = static_cast<std::size_t>(t.ns() / fine_.ns());
  if (!fine_slots_.empty() && w < fine_base_) w = fine_base_;  // late sample
  advance_to(w);
  Slot& slot = fine_slots_[w - fine_base_];
  slot.stats.add(v);
  slot.sketch.record(v);
  totals_.add(v);
  run_sketch_.record(v);
  ++recorded_;
}

const WindowStats* MultiResTimeline::fine_stats(std::size_t i) const {
  if (i < fine_base_ || i >= fine_end()) return nullptr;
  return &fine_slots_[i - fine_base_].stats;
}

const DDSketch* MultiResTimeline::fine_sketch(std::size_t i) const {
  if (i < fine_base_ || i >= fine_end()) return nullptr;
  return &fine_slots_[i - fine_base_].sketch;
}

double MultiResTimeline::fine_quantile(std::size_t i, double q) const {
  const DDSketch* s = fine_sketch(i);
  return s ? s->quantile(q) : 0.0;
}

const WindowStats* MultiResTimeline::coarse_stats(std::size_t i) const {
  if (i < coarse_base_ || i >= coarse_end()) return nullptr;
  return &coarse_slots_[i - coarse_base_].stats;
}

const DDSketch* MultiResTimeline::coarse_sketch(std::size_t i) const {
  if (i < coarse_base_ || i >= coarse_end()) return nullptr;
  return &coarse_slots_[i - coarse_base_].sketch;
}

// ---- Instrument / registry ---------------------------------------------------

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void csv_row(std::ostream& os, const std::string& name, double start_s,
             double width_s, const WindowStats& stats, const DDSketch& sketch) {
  std::string line = name;
  line += ',';
  append_double(line, start_s);
  line += ',';
  append_double(line, width_s);
  line += ',';
  append_double(line, static_cast<double>(stats.count));
  line += ',';
  append_double(line, stats.avg());
  line += ',';
  append_double(line, stats.max_or_zero());
  line += ',';
  append_double(line, sketch.quantile(0.50));
  line += ',';
  append_double(line, sketch.quantile(0.95));
  line += ',';
  append_double(line, sketch.quantile(0.99));
  line += '\n';
  os << line;
}

}  // namespace

void Instrument::to_csv(std::ostream& os) const {
  const MultiResTimeline& tl = timeline_;
  const double fine_s = tl.fine_window().to_seconds();
  const double coarse_s = tl.coarse_window().to_seconds();
  // Coarse history strictly before the live fine region, so rows never
  // double-count a window.
  const std::size_t fine_per_coarse = static_cast<std::size_t>(
      tl.coarse_window().ns() / tl.fine_window().ns());
  const std::size_t live_coarse_start =
      fine_per_coarse ? tl.fine_begin() / fine_per_coarse : tl.coarse_end();
  for (std::size_t c = tl.coarse_begin(); c < tl.coarse_end(); ++c) {
    if (c >= live_coarse_start) break;
    const WindowStats* stats = tl.coarse_stats(c);
    const DDSketch* sketch = tl.coarse_sketch(c);
    if (!stats || !stats->count) continue;
    csv_row(os, name_, static_cast<double>(c) * coarse_s, coarse_s, *stats,
            *sketch);
  }
  for (std::size_t f = tl.fine_begin(); f < tl.fine_end(); ++f) {
    const WindowStats* stats = tl.fine_stats(f);
    const DDSketch* sketch = tl.fine_sketch(f);
    if (!stats || !stats->count) continue;
    csv_row(os, name_, static_cast<double>(f) * fine_s, fine_s, *stats,
            *sketch);
  }
}

Instrument& TelemetryRegistry::instrument(const std::string& name, Tier tier,
                                          int node) {
  auto it = instruments_.find(name);
  if (it == instruments_.end())
    it = instruments_
             .emplace(name, std::make_unique<Instrument>(name, tier, node, cfg_))
             .first;
  return *it->second;
}

const Instrument* TelemetryRegistry::find(const std::string& name) const {
  auto it = instruments_.find(name);
  return it == instruments_.end() ? nullptr : it->second.get();
}

void TelemetryRegistry::to_csv(std::ostream& os) const {
  os << "instrument,window_start_s,width_s,count,avg,max,p50,p95,p99\n";
  for_each([&os](const Instrument& ins) { ins.to_csv(os); });
}

// ---- TelemetryFeed -----------------------------------------------------------

TelemetryFeed::TelemetryFeed(TelemetryRegistry& registry, int num_tomcats) {
  rt_ = &registry.instrument("client.rt_ms", Tier::kClient);
  retransmits_ = &registry.instrument("client.syn_retransmit", Tier::kClient);
  cache_hit_ = &registry.instrument("cache.hit", Tier::kCache);
  cache_backlog_ = &registry.instrument("cache.inval_backlog", Tier::kCache);
  committed_.reserve(static_cast<std::size_t>(num_tomcats));
  iowait_.reserve(static_cast<std::size_t>(num_tomcats));
  for (int i = 0; i < num_tomcats; ++i) {
    const std::string idx = std::to_string(i);
    committed_.push_back(
        &registry.instrument("tomcat" + idx + ".committed", Tier::kTomcat, i));
    iowait_.push_back(
        &registry.instrument("tomcat" + idx + ".iowait", Tier::kTomcat, i));
  }
  committed_now_.assign(static_cast<std::size_t>(num_tomcats), 0.0);
}

void TelemetryFeed::observe(const TraceEvent& e) {
  switch (e.kind) {
    case EventKind::kClientDone:
      if (e.aux == 0) rt_->record(e.at, e.value);
      break;
    case EventKind::kSynRetransmit:
      retransmits_->record(e.at, 1.0);
      break;
    case EventKind::kGetEndpointAttempt:
    case EventKind::kGetEndpointTimeout:
    case EventKind::kEndpointRelease: {
      const std::size_t w = static_cast<std::size_t>(e.worker);
      if (e.worker < 0 || w >= committed_.size()) break;
      committed_now_[w] += e.kind == EventKind::kGetEndpointAttempt ? 1.0 : -1.0;
      committed_[w]->record(e.at, committed_now_[w]);
      break;
    }
    case EventKind::kIoWait: {
      if (e.tier != Tier::kTomcat) break;
      const std::size_t n = static_cast<std::size_t>(e.node);
      if (e.node < 0 || n >= iowait_.size()) break;
      iowait_[n]->record(e.at, e.value);
      break;
    }
    case EventKind::kCacheHit:
      cache_hit_->record(e.at, 1.0);
      break;
    case EventKind::kCacheMiss:
      cache_hit_->record(e.at, 0.0);
      break;
    case EventKind::kCacheInvalidate:
      // value carries the queue depth at delivery (aux=+1) or the full
      // capacity at a drop (aux=-1) — either way, the backlog signal.
      cache_backlog_->record(e.at, e.value);
      break;
    default:
      break;
  }
}

}  // namespace ntier::obs
