#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace ntier::obs {

/// The fixed cross-tier event vocabulary. One request's life, in order:
/// client_send → (syn_retransmit | accept_drop)* → accept_enqueue? →
/// worker_pickup → get_endpoint_attempt → (get_endpoint_poll |
/// get_endpoint_skip | get_endpoint_timeout)* → endpoint_acquire →
/// backend_queue → service_start → service_end → endpoint_release →
/// client_done. Interleaved with those per-request events are the node-level
/// signals the paper's diagnosis correlates them against: pdflush/stall
/// episodes, iowait samples, lb_value updates and breaker transitions.
enum class EventKind : std::uint8_t {
  // -- client tier ------------------------------------------------------------
  kClientSend,      // first connection attempt (worker = client id)
  kSynRetransmit,   // dropped SYN re-sent after the RTO (aux = attempt #)
  kClientDone,      // response/failure at the client (value = response ms,
                    // aux = RequestOutcome)
  // -- front end (Apache) -----------------------------------------------------
  kAcceptEnqueue,   // parked in the listen backlog (value = resident)
  kAcceptDrop,      // backlog overflow: silent SYN drop (value = backlog size)
  kWorkerPickup,    // an MPM worker thread took the request (value = busy)
  // -- balancer (mod_jk) ------------------------------------------------------
  kGetEndpointAttempt,  // candidate chosen, endpoint hunt starts
                        // (worker = Tomcat idx, value = pool in_use)
  kGetEndpointPoll,     // Algorithm-1 wake-up re-check (value = waited ms)
  kGetEndpointTimeout,  // the acquirer gave up on this candidate
  kGetEndpointSkip,     // candidate passed over while ineligible
                        // (aux = WorkerState, 3 = breaker open)
  kEndpointAcquire,     // AJP connection obtained (value = pool in_use)
  kEndpointRelease,     // connection returned on response (value = in_use)
  // -- backend (Tomcat / MySQL) -----------------------------------------------
  kBackendQueue,    // entered the connector backlog (value = resident)
  kServiceStart,    // servlet thread started executing (value = busy threads)
  kServiceEnd,      // response leaves the backend (value = resident)
  // -- node-level signals -------------------------------------------------------
  kPdflushStart,    // writeback episode begins (value = dirty bytes claimed)
  kPdflushStop,     // writeback episode ends (value = bytes written)
  kStallStart,      // synthetic capacity stall begins (value = severity)
  kStallStop,       // synthetic capacity stall ends (value = severity)
  kBreakerState,    // circuit breaker transition (value: 0 closed, 1 open,
                    // 2 half-open)
  kLbValue,         // policy lb_value update (value = lb_value)
  kIoWait,          // periodic iowait sample (value = disk busy fraction)
  // -- probe subsystem (appended to keep prior numeric values stable) -----------
  kProbeSent,       // balancer probes a backend (value = pool size before)
  kProbeReply,      // probe answered (value = probed RIF, aux = latency µs)
  kProbeExpired,    // pooled result dropped (value = age ms; aux: 1 = stale,
                    // 2 = reuse budget spent, 3 = probe timeout)
  // -- overload control (appended to keep prior numeric values stable) ----------
  kAdmissionShed,   // limiter/CoDel refused work (value = limiter limit,
                    // aux = proto::ShedReason)
  kDeadlineExpired, // expired work shed at a tier (value = overdue ms,
                    // aux = proto::ShedReason)
  kLimitUpdate,     // AIMD limit adapted (value = new limit, aux = +1
                    // increase / -1 decrease)
  // -- KV data tier (appended to keep prior numeric values stable) --------------
  kKvQuorumRead,    // read quorum met (node = shard, value = wait ms,
                    // aux = down preference-list members at completion)
  kKvQuorumWrite,   // write quorum met (node = shard, value = wait ms,
                    // aux = down preference-list members at completion)
  kKvHandoffReplay, // one stashed hint replayed to its recovered home
                    // (node = home replica, worker = holder replica)
  kKvReadRepair,    // stale replica repaired after quorum divergence
                    // (node = shard, worker = repaired replica)
  kKvMigration,     // shard migration lifecycle (node = shard, worker =
                    // destination replica; aux = +1 start / 0 chunk / -1 done
                    // / -2 aborted)
};

const char* to_string(EventKind k);

/// Which tier emitted an event (the Perfetto "process" of its track).
enum class Tier : std::uint8_t {
  kClient,
  kApache,
  kBalancer,  // node = owning Apache, worker = Tomcat candidate
  kTomcat,
  kMysql,
  kKv,  // replicated KV data tier (node = shard or replica per EventKind)
};

const char* to_string(Tier t);

/// One trace event: what + where + which request + when. `node` is the
/// server index within its tier (or the Apache that owns the balancer);
/// `worker` is the Tomcat candidate for balancer events, the client id for
/// client events, and a thread-slot hint elsewhere (-1 = n/a). `value` and
/// `aux` carry the kind-specific payload documented on EventKind.
struct TraceEvent {
  sim::SimTime at;
  std::uint64_t request = 0;  // 0 = not a per-request event
  double value = 0.0;
  std::int32_t worker = -1;
  std::int32_t aux = 0;
  std::int16_t node = -1;
  EventKind kind = EventKind::kClientSend;
  Tier tier = Tier::kClient;
};

struct TraceConfig {
  /// Ring capacity in events (~48 B each). When full, the oldest events are
  /// overwritten and counted in dropped(); storage grows on demand, so an
  /// idle collector costs almost nothing.
  std::size_t capacity = 4u << 20;
};

/// Cross-tier event sink: a bounded ring of TraceEvents in emission order
/// (which, in a discrete-event simulation, is also timestamp order).
/// Instrumentation sites hold a `TraceCollector*` that is null when tracing
/// is off and emit through the NTIER_TRACE_EVENT macro below, so the
/// disabled path is one predictable branch — or nothing at all when the
/// whole subsystem is compiled out with -DNTIER_OBS_DISABLED.
class TraceCollector {
 public:
  explicit TraceCollector(TraceConfig config = {}) : config_(config) {}

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  void emit(sim::SimTime at, EventKind kind, Tier tier, int node, int worker,
            std::uint64_t request, double value = 0.0, std::int32_t aux = 0) {
    TraceEvent e;
    e.at = at;
    e.kind = kind;
    e.tier = tier;
    e.node = static_cast<std::int16_t>(node);
    e.worker = worker;
    e.request = request;
    e.value = value;
    e.aux = aux;
    push(e);
  }

  void push(const TraceEvent& e) {
    ++emitted_;
    if (ring_.size() < config_.capacity) {
      ring_.push_back(e);
      return;
    }
    // Full: overwrite the oldest event.
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }

  std::uint64_t emitted() const { return emitted_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }
  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return config_.capacity; }
  bool empty() const { return ring_.empty(); }

  /// Visit the retained events in chronological order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < ring_.size(); ++i)
      fn(ring_[(head_ + i) % ring_.size()]);
  }

  /// Chronological copy of the retained events (ring unwrapped).
  std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for_each([&out](const TraceEvent& e) { out.push_back(e); });
    return out;
  }

  void clear() {
    ring_.clear();
    head_ = 0;
    emitted_ = 0;
    dropped_ = 0;
  }

 private:
  TraceConfig config_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // oldest retained event once the ring wrapped
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace ntier::obs

// Emission macro used at every instrumentation site: a null-check when the
// subsystem is built in, nothing at all under -DNTIER_OBS_DISABLED (the
// arguments are not evaluated).
#ifndef NTIER_OBS_DISABLED
#define NTIER_TRACE_EVENT(collector, ...)             \
  do {                                                \
    if (collector) (collector)->emit(__VA_ARGS__);    \
  } while (0)
#else
#define NTIER_TRACE_EVENT(collector, ...) \
  do {                                    \
  } while (0)
#endif
