#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace ntier::obs {

/// The fixed cross-tier event vocabulary. One request's life, in order:
/// client_send → (syn_retransmit | accept_drop)* → accept_enqueue? →
/// worker_pickup → get_endpoint_attempt → (get_endpoint_poll |
/// get_endpoint_skip | get_endpoint_timeout)* → endpoint_acquire →
/// backend_queue → service_start → service_end → endpoint_release →
/// client_done. Interleaved with those per-request events are the node-level
/// signals the paper's diagnosis correlates them against: pdflush/stall
/// episodes, iowait samples, lb_value updates and breaker transitions.
enum class EventKind : std::uint8_t {
  // -- client tier ------------------------------------------------------------
  kClientSend,      // first connection attempt (worker = client id)
  kSynRetransmit,   // dropped SYN re-sent after the RTO (aux = attempt #)
  kClientDone,      // response/failure at the client (value = response ms,
                    // aux = RequestOutcome)
  // -- front end (Apache) -----------------------------------------------------
  kAcceptEnqueue,   // parked in the listen backlog (value = resident)
  kAcceptDrop,      // backlog overflow: silent SYN drop (value = backlog size)
  kWorkerPickup,    // an MPM worker thread took the request (value = busy)
  // -- balancer (mod_jk) ------------------------------------------------------
  kGetEndpointAttempt,  // candidate chosen, endpoint hunt starts
                        // (worker = Tomcat idx, value = pool in_use)
  kGetEndpointPoll,     // Algorithm-1 wake-up re-check (value = waited ms)
  kGetEndpointTimeout,  // the acquirer gave up on this candidate
  kGetEndpointSkip,     // candidate passed over while ineligible
                        // (aux = WorkerState, 3 = breaker open)
  kEndpointAcquire,     // AJP connection obtained (value = pool in_use)
  kEndpointRelease,     // connection returned on response (value = in_use)
  // -- backend (Tomcat / MySQL) -----------------------------------------------
  kBackendQueue,    // entered the connector backlog (value = resident)
  kServiceStart,    // servlet thread started executing (value = busy threads)
  kServiceEnd,      // response leaves the backend (value = resident)
  // -- node-level signals -------------------------------------------------------
  kPdflushStart,    // writeback episode begins (value = dirty bytes claimed)
  kPdflushStop,     // writeback episode ends (value = bytes written)
  kStallStart,      // synthetic capacity stall begins (value = severity)
  kStallStop,       // synthetic capacity stall ends (value = severity)
  kBreakerState,    // circuit breaker transition (value: 0 closed, 1 open,
                    // 2 half-open)
  kLbValue,         // policy lb_value update (value = lb_value)
  kIoWait,          // periodic iowait sample (value = disk busy fraction)
  // -- probe subsystem (appended to keep prior numeric values stable) -----------
  kProbeSent,       // balancer probes a backend (value = pool size before)
  kProbeReply,      // probe answered (value = probed RIF, aux = latency µs)
  kProbeExpired,    // pooled result dropped (value = age ms; aux: 1 = stale,
                    // 2 = reuse budget spent, 3 = probe timeout)
  // -- overload control (appended to keep prior numeric values stable) ----------
  kAdmissionShed,   // limiter/CoDel refused work (value = limiter limit,
                    // aux = proto::ShedReason)
  kDeadlineExpired, // expired work shed at a tier (value = overdue ms,
                    // aux = proto::ShedReason)
  kLimitUpdate,     // AIMD limit adapted (value = new limit, aux = +1
                    // increase / -1 decrease)
  // -- KV data tier (appended to keep prior numeric values stable) --------------
  kKvQuorumRead,    // read quorum met (node = shard, value = wait ms,
                    // aux = down preference-list members at completion)
  kKvQuorumWrite,   // write quorum met (node = shard, value = wait ms,
                    // aux = down preference-list members at completion)
  kKvHandoffReplay, // one stashed hint replayed to its recovered home
                    // (node = home replica, worker = holder replica)
  kKvReadRepair,    // stale replica repaired after quorum divergence
                    // (node = shard, worker = repaired replica)
  kKvMigration,     // shard migration lifecycle (node = shard, worker =
                    // destination replica; aux = +1 start / 0 chunk / -1 done
                    // / -2 aborted)
  // -- cache tier (appended to keep prior numeric values stable) ----------------
  kCacheHit,        // look-aside hit (node = cache node, value = resident
                    // entries after the lookup)
  kCacheMiss,       // look-aside miss (node = cache node, value = resident
                    // entries after the lookup)
  kCacheInvalidate, // invalidation resolved (node = cache node, value =
                    // backlog at emission, aux = +1 delivered / -1 dropped
                    // on a full queue)
  kCacheCoalesced,  // miss joined an in-flight fill instead of fetching
                    // (node = cache node, value = waiters on the key)
  // -- recovery orchestration (appended to keep prior numeric values stable) ----
  kRecoveryEpisode,      // sustained-degradation episode lifecycle (value =
                         // degraded-metric ratio vs baseline, aux = +1
                         // declared / -1 stepped down)
  kRecoveryIntervention, // one staged intervention toggled (worker =
                         // RecoveryStage, aux = +1 applied / -1 lifted,
                         // value = stage-specific level)
};

const char* to_string(EventKind k);

/// Which tier emitted an event (the Perfetto "process" of its track).
enum class Tier : std::uint8_t {
  kClient,
  kApache,
  kBalancer,  // node = owning Apache, worker = Tomcat candidate
  kTomcat,
  kMysql,
  kKv,  // replicated KV data tier (node = shard or replica per EventKind)
  kCache,  // look-aside cache tier (node = cache node; -1 = tier-wide)
};

const char* to_string(Tier t);

/// One trace event: what + where + which request + when. `node` is the
/// server index within its tier (or the Apache that owns the balancer);
/// `worker` is the Tomcat candidate for balancer events, the client id for
/// client events, and a thread-slot hint elsewhere (-1 = n/a). `value` and
/// `aux` carry the kind-specific payload documented on EventKind.
struct TraceEvent {
  sim::SimTime at;
  std::uint64_t request = 0;  // 0 = not a per-request event
  double value = 0.0;
  std::int32_t worker = -1;
  std::int32_t aux = 0;
  std::int16_t node = -1;
  EventKind kind = EventKind::kClientSend;
  Tier tier = Tier::kClient;
};

/// Anyone who wants to see every emitted event as it happens: the online
/// millibottleneck detector and the telemetry feed are sinks. observe() runs
/// on the emission path, so implementations must be cheap and must not emit
/// events themselves.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void observe(const TraceEvent& e) = 0;
};

/// Tail-based sampling: instead of retaining everything (or a blind head
/// sample), events are parked in a time-bounded holding buffer and the keep
/// decision is made when they age out — by which time the online detector
/// has had `horizon` of hindsight to mark the episode windows and VLRT
/// requests worth keeping. What survives: detector-marked ranges, marked
/// (VLRT) requests end to end, every Nth request as an unbiased head sample,
/// and the low-volume node-level signals that form the causal-chain
/// skeleton.
struct TailConfig {
  bool enabled = false;
  /// How long events stay in the holding buffer before the keep decision is
  /// final. Must exceed the longest response time a marked request can have
  /// (its earliest events must still be buffered when kClientDone arrives).
  sim::SimTime horizon = sim::SimTime::seconds(12);
  /// Keep every event of requests with id % head_every == 0 — a
  /// deterministic unbiased baseline population (id 0 is not used by the
  /// workload, so the sample is exactly 1/head_every of traffic).
  std::uint64_t head_every = 101;
};

struct TraceConfig {
  /// Ring capacity in events (~48 B each). When full, the oldest events are
  /// overwritten and counted in dropped(); storage grows on demand, so an
  /// idle collector costs almost nothing.
  std::size_t capacity = 4u << 20;
  /// Retain events in the bounded ring. Turned off when the collector exists
  /// only to feed sinks (online detection / telemetry without --trace) or
  /// when tail sampling replaces full retention.
  bool ring = true;
  /// Tail-based sampling (additive: ring and tail can both be on, which the
  /// detection bench uses to compare full vs sampled volume in one run).
  TailConfig tail;
};

/// Cross-tier event sink: a bounded ring of TraceEvents in emission order
/// (which, in a discrete-event simulation, is also timestamp order).
/// Instrumentation sites hold a `TraceCollector*` that is null when tracing
/// is off and emit through the NTIER_TRACE_EVENT macro below, so the
/// disabled path is one predictable branch — or nothing at all when the
/// whole subsystem is compiled out with -DNTIER_OBS_DISABLED.
class TraceCollector {
 public:
  explicit TraceCollector(TraceConfig config = {}) : config_(config) {}

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  void emit(sim::SimTime at, EventKind kind, Tier tier, int node, int worker,
            std::uint64_t request, double value = 0.0, std::int32_t aux = 0) {
    TraceEvent e;
    e.at = at;
    e.kind = kind;
    e.tier = tier;
    e.node = static_cast<std::int16_t>(node);
    e.worker = worker;
    e.request = request;
    e.value = value;
    e.aux = aux;
    push(e);
  }

  void push(const TraceEvent& e) {
    ++emitted_;
    for (TraceSink* s : sinks_) s->observe(e);
    if (config_.tail.enabled) tail_push(e);
    if (!config_.ring) return;
    if (ring_.size() < config_.capacity) {
      ring_.push_back(e);
      return;
    }
    // Full: overwrite the oldest event.
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }

  /// Register a sink that sees every event at emission time. Sinks are
  /// notified in registration order and must outlive the collector's use.
  void add_sink(TraceSink* sink) {
    if (sink) sinks_.push_back(sink);
  }

  std::uint64_t emitted() const { return emitted_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }
  std::size_t size() const {
    return config_.ring ? ring_.size() : tail_kept_.size();
  }
  std::size_t capacity() const { return config_.capacity; }
  bool empty() const { return size() == 0; }

  /// Visit the retained events in chronological order. With the ring on this
  /// is the full (bounded) trace; in tail-only mode it is the sampled trace
  /// and requires finish_tail() to have drained the holding buffer.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (config_.ring) {
      for (std::size_t i = 0; i < ring_.size(); ++i)
        fn(ring_[(head_ + i) % ring_.size()]);
    } else {
      for (const TraceEvent& e : tail_kept_) fn(e);
    }
  }

  /// Chronological copy of the retained events (ring unwrapped).
  std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(size());
    for_each([&out](const TraceEvent& e) { out.push_back(e); });
    return out;
  }

  // -- tail-based sampling ------------------------------------------------------
  bool tail_enabled() const { return config_.tail.enabled; }
  /// Keep every buffered and future event in [t0, t1]. `node` restricts the
  /// range to episode-relevant events of that Tomcat (balancer events
  /// committed to it, its backend events, retransmits and node-level
  /// signals); -1 keeps everything in the range.
  void mark_range(sim::SimTime t0, sim::SimTime t1, int node = -1);
  /// Keep every event of one request (the VLRT-chain guarantee: called at
  /// kClientDone, while the request's whole life is still inside `horizon`).
  void mark_request(std::uint64_t request) { tail_marked_requests_.insert(request); }
  /// Drain the holding buffer at end of run, finalising every keep decision.
  void finish_tail();
  /// Events that aged out of the holding buffer (keep decision made).
  std::uint64_t tail_seen() const { return tail_seen_; }
  std::uint64_t tail_kept() const { return tail_kept_count_; }
  double tail_kept_fraction() const {
    return tail_seen_ ? static_cast<double>(tail_kept_count_) /
                            static_cast<double>(tail_seen_)
                      : 0.0;
  }
  /// Chronological copy of the tail-sampled trace (requires finish_tail()).
  const std::vector<TraceEvent>& tail_events() const { return tail_kept_; }

  /// True when `e` is part of a Tomcat-`node` episode's causal-chain
  /// neighbourhood: node-level signals, balancer traffic committed to that
  /// worker, the worker's own backend events, and SYN retransmits.
  static bool episode_relevant(const TraceEvent& e, int node);

  void clear() {
    ring_.clear();
    head_ = 0;
    emitted_ = 0;
    dropped_ = 0;
    tail_buf_.clear();
    tail_kept_.clear();
    tail_marks_.clear();
    tail_marked_requests_.clear();
    tail_seen_ = 0;
    tail_kept_count_ = 0;
  }

 private:
  struct MarkRange {
    sim::SimTime t0;
    sim::SimTime t1;
    int node;
  };

  void tail_push(const TraceEvent& e);
  void tail_evict(const TraceEvent& e);
  bool tail_keep(const TraceEvent& e) const;

  TraceConfig config_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // oldest retained event once the ring wrapped
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;

  std::vector<TraceSink*> sinks_;

  std::deque<TraceEvent> tail_buf_;       // holding buffer, decision pending
  std::vector<TraceEvent> tail_kept_;     // sampled trace, chronological
  std::vector<MarkRange> tail_marks_;     // detector-marked episode windows
  std::unordered_set<std::uint64_t> tail_marked_requests_;
  std::uint64_t tail_seen_ = 0;
  std::uint64_t tail_kept_count_ = 0;
};

}  // namespace ntier::obs

// Emission macro used at every instrumentation site: a null-check when the
// subsystem is built in, nothing at all under -DNTIER_OBS_DISABLED (the
// arguments are not evaluated).
#ifndef NTIER_OBS_DISABLED
#define NTIER_TRACE_EVENT(collector, ...)             \
  do {                                                \
    if (collector) (collector)->emit(__VA_ARGS__);    \
  } while (0)
#else
#define NTIER_TRACE_EVENT(collector, ...) \
  do {                                    \
  } while (0)
#endif
