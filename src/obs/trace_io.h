#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace ntier::obs {

/// Serialisation formats for a collected trace.
enum class TraceFormat {
  kJsonl,   // one event per line — the ntier_trace analyzer's input
  kChrome,  // Chrome trace-event JSON, loadable in Perfetto / chrome://tracing
};

/// Parse "jsonl" / "chrome" (as accepted by --trace-format).
std::optional<TraceFormat> parse_trace_format(const std::string& s);

/// One event per line, fixed field order:
///   {"t_ns":N,"kind":"...","tier":"...","node":N,"worker":N,"req":N,
///    "value":V,"aux":N}
/// The byte stream is a pure function of the event sequence, so a
/// deterministic run yields a byte-identical file (the determinism test
/// relies on this).
void write_jsonl(std::ostream& os, const TraceCollector& trace);

/// Chrome trace-event JSON: instant events on one track per tier/server
/// ("pid" = tier, "tid" = server/worker lane, named via metadata events);
/// pdflush/stall episodes become B/E duration slices on their node's track
/// and backend service becomes per-request async spans.
void write_chrome_json(std::ostream& os, const TraceCollector& trace);

void write_trace(std::ostream& os, const TraceCollector& trace,
                 TraceFormat format);

/// Read a JSONL trace back (the inverse of write_jsonl). Unknown kinds or
/// malformed lines raise std::runtime_error naming the line number.
std::vector<TraceEvent> read_jsonl(std::istream& is);

/// Convenience: read a JSONL trace from a file path.
std::vector<TraceEvent> read_jsonl_file(const std::string& path);

}  // namespace ntier::obs
