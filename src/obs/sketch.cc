#include "obs/sketch.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace ntier::obs {

namespace {

// Shortest round-trip representation via std::to_chars: locale-independent
// and byte-deterministic (same rationale as trace_io's JSONL writer).
void append_double(std::string& out, double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void append_int(std::string& out, long long v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

const char* parse_double(const char* p, const char* end, double* out) {
  auto [ptr, ec] = std::from_chars(p, end, *out);
  return ec == std::errc{} ? ptr : nullptr;
}

const char* parse_u64(const char* p, const char* end, std::uint64_t* out) {
  auto [ptr, ec] = std::from_chars(p, end, *out);
  return ec == std::errc{} ? ptr : nullptr;
}

const char* parse_int(const char* p, const char* end, int* out) {
  auto [ptr, ec] = std::from_chars(p, end, *out);
  return ec == std::errc{} ? ptr : nullptr;
}

const char* expect(const char* p, const char* end, const char* lit) {
  while (p && p != end && *lit) {
    if (*p != *lit) return nullptr;
    ++p;
    ++lit;
  }
  return *lit ? nullptr : p;
}

}  // namespace

DDSketch::DDSketch(SketchConfig config) : config_(config) {
  if (!(config_.relative_accuracy > 0) || config_.relative_accuracy >= 1)
    config_.relative_accuracy = 0.02;
  if (config_.max_buckets < 2) config_.max_buckets = 2;
  gamma_ = (1.0 + config_.relative_accuracy) / (1.0 - config_.relative_accuracy);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

int DDSketch::index_of(double value) const {
  return static_cast<int>(std::ceil(std::log(value) * inv_log_gamma_));
}

double DDSketch::value_of(int index) const {
  // Midpoint of (gamma^(i-1), gamma^i] in the relative sense: within a
  // factor (1 ± relative_accuracy) of every value the bucket absorbed.
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void DDSketch::record(double value) { record_n(value, 1); }

void DDSketch::record_n(double value, std::uint64_t n) {
  if (n == 0) return;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_ += value * static_cast<double>(n);
  if (value <= 0) {
    zero_count_ += n;
    return;
  }
  buckets_[index_of(value)] += n;
  if (buckets_.size() > config_.max_buckets) collapse();
}

void DDSketch::collapse() {
  // Collapse the lowest buckets together until the bound holds; the
  // low-quantile estimates coarsen, the upper ones keep their guarantee.
  while (buckets_.size() > config_.max_buckets) {
    auto lowest = buckets_.begin();
    auto next = std::next(lowest);
    next->second += lowest->second;
    buckets_.erase(lowest);
  }
}

void DDSketch::merge(const DDSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  for (const auto& [idx, c] : other.buckets_) buckets_[idx] += c;
  if (buckets_.size() > config_.max_buckets) collapse();
}

double DDSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t cum = zero_count_;
  if (static_cast<double>(cum) > rank) return 0.0;
  for (const auto& [idx, c] : buckets_) {
    cum += c;
    if (static_cast<double>(cum) > rank) return value_of(idx);
  }
  return max_;
}

bool DDSketch::operator==(const DDSketch& other) const {
  return config_.relative_accuracy == other.config_.relative_accuracy &&
         config_.max_buckets == other.config_.max_buckets &&
         zero_count_ == other.zero_count_ && count_ == other.count_ &&
         sum_ == other.sum_ && min_ == other.min_ && max_ == other.max_ &&
         buckets_ == other.buckets_;
}

void DDSketch::clear() {
  buckets_.clear();
  zero_count_ = 0;
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::string DDSketch::serialize() const {
  std::string out = "ddsk1 a=";
  append_double(out, config_.relative_accuracy);
  out += " b=";
  append_u64(out, config_.max_buckets);
  out += " z=";
  append_u64(out, zero_count_);
  out += " n=";
  append_u64(out, count_);
  out += " s=";
  append_double(out, sum_);
  out += " lo=";
  append_double(out, min_);
  out += " hi=";
  append_double(out, max_);
  out += " |";
  for (const auto& [idx, c] : buckets_) {
    out += ' ';
    append_int(out, idx);
    out += ':';
    append_u64(out, c);
  }
  return out;
}

std::optional<DDSketch> DDSketch::deserialize(const std::string& bytes) {
  const char* p = bytes.data();
  const char* end = p + bytes.size();
  SketchConfig cfg;
  std::uint64_t zero = 0, count = 0, max_buckets = 0;
  double sum = 0, lo = 0, hi = 0;
  p = expect(p, end, "ddsk1 a=");
  if (p) p = parse_double(p, end, &cfg.relative_accuracy);
  p = expect(p, end, " b=");
  if (p) p = parse_u64(p, end, &max_buckets);
  p = expect(p, end, " z=");
  if (p) p = parse_u64(p, end, &zero);
  p = expect(p, end, " n=");
  if (p) p = parse_u64(p, end, &count);
  p = expect(p, end, " s=");
  if (p) p = parse_double(p, end, &sum);
  p = expect(p, end, " lo=");
  if (p) p = parse_double(p, end, &lo);
  p = expect(p, end, " hi=");
  if (p) p = parse_double(p, end, &hi);
  p = expect(p, end, " |");
  if (!p) return std::nullopt;
  cfg.max_buckets = static_cast<std::size_t>(max_buckets);
  DDSketch sketch(cfg);
  std::uint64_t bucketed = 0;
  while (p != end) {
    p = expect(p, end, " ");
    if (!p) return std::nullopt;
    int idx = 0;
    std::uint64_t c = 0;
    p = parse_int(p, end, &idx);
    p = expect(p, end, ":");
    if (p) p = parse_u64(p, end, &c);
    if (!p) return std::nullopt;
    sketch.buckets_[idx] += c;
    bucketed += c;
  }
  if (zero + bucketed != count) return std::nullopt;
  sketch.zero_count_ = zero;
  sketch.count_ = count;
  sketch.sum_ = sum;
  sketch.min_ = lo;
  sketch.max_ = hi;
  return sketch;
}

}  // namespace ntier::obs
