#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/sketch.h"
#include "obs/trace.h"
#include "sim/time.h"

namespace ntier::obs {

/// Always-on streaming telemetry: every instrument keeps a multi-resolution
/// timeline (a bounded ring of 50 ms fine windows that roll up into 1 s
/// coarse windows as they age out) plus DDSketches per window and for the
/// whole run — so per-window p50/p99/p99.9 exist at millibottleneck
/// granularity without retaining a single sample, and memory stays bounded
/// no matter how long the run is.
struct TelemetryConfig {
  bool enabled = false;
  /// Fine resolution (the paper's 50 ms monitoring granularity).
  sim::SimTime fine_window = sim::SimTime::millis(50);
  /// Coarse resolution fine windows roll up into as they age out.
  sim::SimTime coarse_window = sim::SimTime::seconds(1);
  /// Fine windows kept live (1200 x 50 ms = the last 60 s at full detail).
  std::size_t fine_retention = 1200;
  /// Coarse windows kept before the oldest are dropped entirely
  /// (4096 x 1 s ≈ 68 min of history — the memory bound).
  std::size_t coarse_retention = 4096;
  SketchConfig sketch;
};

/// count/sum/min/max of one aggregation window (mergeable for rollups).
struct WindowStats {
  std::int64_t count = 0;
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void add(double v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }
  void merge(const WindowStats& o) {
    count += o.count;
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }
  double avg() const { return count ? sum / static_cast<double>(count) : 0.0; }
  double max_or_zero() const { return count ? max : 0.0; }
  double min_or_zero() const { return count ? min : 0.0; }
};

/// The two-level timeline: record() lands in the fine ring; fine windows
/// that age past the retention bound merge into their coarse window; coarse
/// windows past their own bound are dropped (counted). A run-level
/// WindowStats + sketch always covers everything recorded.
class MultiResTimeline {
 public:
  explicit MultiResTimeline(const TelemetryConfig& cfg);

  /// Samples must arrive with non-decreasing window index (they do in a
  /// discrete-event simulation); a late sample is clamped into the oldest
  /// live fine window.
  void record(sim::SimTime t, double v);

  sim::SimTime fine_window() const { return fine_; }
  sim::SimTime coarse_window() const { return coarse_; }

  /// Live fine windows: absolute indices [fine_begin, fine_end).
  std::size_t fine_begin() const { return fine_base_; }
  std::size_t fine_end() const { return fine_base_ + fine_slots_.size(); }
  /// Stats of absolute fine window `i`; nullptr when evicted or unseen.
  const WindowStats* fine_stats(std::size_t i) const;
  const DDSketch* fine_sketch(std::size_t i) const;
  double fine_quantile(std::size_t i, double q) const;

  /// Rolled-up coarse windows: absolute indices [coarse_begin, coarse_end).
  std::size_t coarse_begin() const { return coarse_base_; }
  std::size_t coarse_end() const { return coarse_base_ + coarse_slots_.size(); }
  const WindowStats* coarse_stats(std::size_t i) const;
  const DDSketch* coarse_sketch(std::size_t i) const;

  const WindowStats& totals() const { return totals_; }
  const DDSketch& sketch() const { return run_sketch_; }
  std::uint64_t recorded() const { return recorded_; }
  /// Coarse windows dropped past the retention bound (memory stayed put).
  std::uint64_t coarse_dropped() const { return coarse_dropped_; }

 private:
  struct Slot {
    WindowStats stats;
    DDSketch sketch;
    explicit Slot(const SketchConfig& cfg) : sketch(cfg) {}
  };

  void advance_to(std::size_t fine_abs);
  void evict_oldest_fine();

  sim::SimTime fine_;
  sim::SimTime coarse_;
  std::size_t fine_retention_;
  std::size_t coarse_retention_;
  SketchConfig sketch_cfg_;

  std::deque<Slot> fine_slots_;    // front = absolute index fine_base_
  std::size_t fine_base_ = 0;
  std::deque<Slot> coarse_slots_;  // front = absolute index coarse_base_
  std::size_t coarse_base_ = 0;

  WindowStats totals_;
  DDSketch run_sketch_;
  std::uint64_t recorded_ = 0;
  std::uint64_t coarse_dropped_ = 0;
};

/// One named streaming instrument (e.g. "client.rt_ms", "tomcat2.committed").
class Instrument {
 public:
  Instrument(std::string name, Tier tier, int node, const TelemetryConfig& cfg)
      : name_(std::move(name)), tier_(tier), node_(node), timeline_(cfg) {}

  void record(sim::SimTime t, double v) { timeline_.record(t, v); }

  const std::string& name() const { return name_; }
  Tier tier() const { return tier_; }
  int node() const { return node_; }
  const MultiResTimeline& timeline() const { return timeline_; }

  /// CSV rows (no header): coarse windows first (rolled-up history), then
  /// the live fine windows. Columns:
  /// instrument,window_start_s,width_s,count,avg,max,p50,p95,p99
  void to_csv(std::ostream& os) const;

 private:
  std::string name_;
  Tier tier_;
  int node_;
  MultiResTimeline timeline_;
};

/// Owns every instrument of a run; iteration and CSV output are in name
/// order (std::map), so exports are byte-deterministic.
class TelemetryRegistry {
 public:
  explicit TelemetryRegistry(TelemetryConfig cfg = {}) : cfg_(std::move(cfg)) {}

  /// Get-or-create. Pointers remain stable for the registry's lifetime, so
  /// hot paths resolve their instrument once and record through the pointer.
  Instrument& instrument(const std::string& name, Tier tier = Tier::kClient,
                         int node = -1);
  const Instrument* find(const std::string& name) const;

  std::size_t size() const { return instruments_.size(); }
  const TelemetryConfig& config() const { return cfg_; }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [name, ins] : instruments_) fn(*ins);
  }

  /// CSV with header, all instruments stacked.
  void to_csv(std::ostream& os) const;

 private:
  TelemetryConfig cfg_;
  std::map<std::string, std::unique_ptr<Instrument>> instruments_;
};

/// The TraceSink that feeds the standard instruments from the cross-tier
/// event stream: client response times and retransmits, per-Tomcat committed
/// queues (rebuilt from balancer deltas, the same accounting the offline
/// analyzer uses) and iowait — plus, when a cache tier emits, the rolling
/// hit indicator ("cache.hit": 1 per hit, 0 per miss, so a window avg() is
/// the windowed hit ratio) and the invalidation-queue backlog sampled at
/// each delivery/drop. Instrument pointers are resolved once at
/// construction so the per-event cost is a switch plus a record().
class TelemetryFeed : public TraceSink {
 public:
  TelemetryFeed(TelemetryRegistry& registry, int num_tomcats);

  void observe(const TraceEvent& e) override;

 private:
  Instrument* rt_ = nullptr;
  Instrument* retransmits_ = nullptr;
  Instrument* cache_hit_ = nullptr;
  Instrument* cache_backlog_ = nullptr;
  std::vector<Instrument*> committed_;
  std::vector<Instrument*> iowait_;
  std::vector<double> committed_now_;
};

}  // namespace ntier::obs
