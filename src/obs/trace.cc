#include "obs/trace.h"

namespace ntier::obs {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kClientSend: return "client_send";
    case EventKind::kSynRetransmit: return "syn_retransmit";
    case EventKind::kClientDone: return "client_done";
    case EventKind::kAcceptEnqueue: return "accept_enqueue";
    case EventKind::kAcceptDrop: return "accept_drop";
    case EventKind::kWorkerPickup: return "worker_pickup";
    case EventKind::kGetEndpointAttempt: return "get_endpoint_attempt";
    case EventKind::kGetEndpointPoll: return "get_endpoint_poll";
    case EventKind::kGetEndpointTimeout: return "get_endpoint_timeout";
    case EventKind::kGetEndpointSkip: return "get_endpoint_skip";
    case EventKind::kEndpointAcquire: return "endpoint_acquire";
    case EventKind::kEndpointRelease: return "endpoint_release";
    case EventKind::kBackendQueue: return "backend_queue";
    case EventKind::kServiceStart: return "service_start";
    case EventKind::kServiceEnd: return "service_end";
    case EventKind::kPdflushStart: return "pdflush_start";
    case EventKind::kPdflushStop: return "pdflush_stop";
    case EventKind::kStallStart: return "stall_start";
    case EventKind::kStallStop: return "stall_stop";
    case EventKind::kBreakerState: return "breaker_state";
    case EventKind::kLbValue: return "lb_value";
    case EventKind::kIoWait: return "iowait";
    case EventKind::kProbeSent: return "probe_sent";
    case EventKind::kProbeReply: return "probe_reply";
    case EventKind::kProbeExpired: return "probe_expired";
    case EventKind::kAdmissionShed: return "admission_shed";
    case EventKind::kDeadlineExpired: return "deadline_expired";
    case EventKind::kLimitUpdate: return "limit_update";
    case EventKind::kKvQuorumRead: return "kv_quorum_read";
    case EventKind::kKvQuorumWrite: return "kv_quorum_write";
    case EventKind::kKvHandoffReplay: return "kv_handoff_replay";
    case EventKind::kKvReadRepair: return "kv_read_repair";
    case EventKind::kKvMigration: return "kv_migration";
  }
  return "?";
}

const char* to_string(Tier t) {
  switch (t) {
    case Tier::kClient: return "client";
    case Tier::kApache: return "apache";
    case Tier::kBalancer: return "balancer";
    case Tier::kTomcat: return "tomcat";
    case Tier::kMysql: return "mysql";
    case Tier::kKv: return "kv";
  }
  return "?";
}

}  // namespace ntier::obs
